// Package fpgarouter's top-level benchmarks regenerate the performance
// characteristics of every table and figure in the paper (see DESIGN.md §3
// for the experiment index) plus the ablation benches of DESIGN.md §5.
//
// Run with:
//
//	go test -bench=. -benchmem
package fpgarouter

import (
	"math/rand"
	"testing"

	"fpgarouter/internal/arbor"
	"fpgarouter/internal/circuits"
	"fpgarouter/internal/congest"
	"fpgarouter/internal/core"
	"fpgarouter/internal/experiments"
	"fpgarouter/internal/graph"
	"fpgarouter/internal/render"
	"fpgarouter/internal/router"
	"fpgarouter/internal/steiner"
)

// cpuInstance reproduces the paper's CPU-time instance shape: random
// graphs with |V| = 50, |E| = 1000, |N| = 5 ("several dozen milliseconds
// on a Sun/4").
func cpuInstance(seed int64) (*graph.Graph, []graph.NodeID) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomConnected(rng, 50, 1000, 10)
	return g, graph.RandomNet(rng, g, 5)
}

func benchAlg(b *testing.B, fn func(*graph.SPTCache, []graph.NodeID) (graph.Tree, error)) {
	g, net := cpuInstance(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache := graph.NewSPTCache(g)
		if _, err := fn(cache, net); err != nil {
			b.Fatal(err)
		}
	}
}

// CPU-time comparison (paper Section 5, |V|=50, |E|=1000, |N|=5).
func BenchmarkRandomGraphKMB(b *testing.B)  { benchAlg(b, steiner.KMB) }
func BenchmarkRandomGraphZEL(b *testing.B)  { benchAlg(b, steiner.ZEL) }
func BenchmarkRandomGraphIKMB(b *testing.B) { benchAlg(b, core.IKMB) }
func BenchmarkRandomGraphIZEL(b *testing.B) { benchAlg(b, core.IZEL) }
func BenchmarkRandomGraphDJKA(b *testing.B) { benchAlg(b, arbor.DJKA) }
func BenchmarkRandomGraphDOM(b *testing.B)  { benchAlg(b, arbor.DOM) }
func BenchmarkRandomGraphPFA(b *testing.B)  { benchAlg(b, arbor.PFA) }
func BenchmarkRandomGraphIDOM(b *testing.B) { benchAlg(b, core.IDOM) }

// BenchmarkTable1Cell regenerates one Table 1 cell: an 8-pin net routed by
// all eight algorithms on a medium-congestion 20×20 grid.
func BenchmarkTable1Cell(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g, err := congest.NewCongestedGrid(rng, 20)
	if err != nil {
		b.Fatal(err)
	}
	net := graph.RandomNet(rng, g.Graph, 8)
	algs := experiments.Table1Algorithms()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache := graph.NewSPTCache(g.Graph)
		for _, a := range algs {
			if _, err := a.Fn(cache, net); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// synthBench synthesizes a benchmark circuit once per run.
func synthBench(b *testing.B, name string) *circuits.Circuit {
	b.Helper()
	spec, ok := circuits.SpecByName(name)
	if !ok {
		b.Fatalf("unknown circuit %s", name)
	}
	ckt, err := circuits.Synthesize(spec, 1)
	if err != nil {
		b.Fatal(err)
	}
	return ckt
}

// BenchmarkTable2RouteBusc routes the smallest Table 2 circuit (busc,
// Xilinx 3000) at the paper's width with the IKMB router.
func BenchmarkTable2RouteBusc(b *testing.B) {
	ckt := synthBench(b, "busc")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := router.Route(ckt, 7, router.Options{MaxPasses: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3RouteTerm1 routes the smallest Table 3 circuit (term1,
// Xilinx 4000) at the paper's width with the IKMB router.
func BenchmarkTable3RouteTerm1(b *testing.B) {
	ckt := synthBench(b, "term1")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := router.Route(ckt, 8, router.Options{MaxPasses: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4 compares the three router algorithms of Table 4 on term1
// at a width that accommodates all of them.
func BenchmarkTable4(b *testing.B) {
	ckt := synthBench(b, "term1")
	for _, alg := range []string{router.AlgIKMB, router.AlgPFA, router.AlgIDOM} {
		b.Run(alg, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := router.Route(ckt, 9, router.Options{Algorithm: alg, MaxPasses: 8}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable5Metrics measures the per-net metric extraction used by
// Table 5 (wirelength and max pathlength of every routed net).
func BenchmarkTable5Metrics(b *testing.B) {
	ckt := synthBench(b, "term1")
	res, err := router.Route(ckt, 9, router.Options{MaxPasses: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total, path := 0.0, 0.0
		for _, nr := range res.Nets {
			total += nr.Wirelength
			path += nr.MaxPath
		}
		if total <= 0 || path <= 0 {
			b.Fatal("bad metrics")
		}
	}
}

// Figure benches: the gadget families of Figures 10, 11 and 14 and the
// Figure 4 instance search.
func BenchmarkFigure4Search(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10PFA(b *testing.B) {
	gad := experiments.NewFigure10(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache := graph.NewSPTCache(gad.G)
		if _, err := arbor.PFA(cache, gad.Net); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure11Staircase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure11([]int{8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure14IDOM(b *testing.B) {
	gad := experiments.NewFigure14(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache := graph.NewSPTCache(gad.G)
		if _, err := core.IDOM(cache, gad.Net); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure16Render(b *testing.B) {
	ckt := synthBench(b, "busc")
	res, fab, err := router.RouteWithFabric(ckt, 7, router.Options{MaxPasses: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := render.SVG(fab, res); len(s) == 0 {
			b.Fatal("empty SVG")
		}
		if s := render.UtilizationASCII(fab); len(s) == 0 {
			b.Fatal("empty ASCII")
		}
	}
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkIGMSTBatchedVsSingle isolates the batched Steiner-point
// admission against one-candidate-per-round on a Table 1 style instance.
func BenchmarkIGMSTBatchedVsSingle(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g, err := congest.NewCongestedGrid(rng, 10)
	if err != nil {
		b.Fatal(err)
	}
	net := graph.RandomNet(rng, g.Graph, 8)
	for _, batched := range []bool{false, true} {
		name := "single"
		if batched {
			name = "batched"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cache := graph.NewSPTCache(g.Graph)
				if _, err := core.IGMST(cache, net, steiner.KMB, core.Options{Batched: batched}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIKMBCandidateScope compares the full-V candidate scan against
// the bounding-box pool the router uses.
func BenchmarkIKMBCandidateScope(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g, err := congest.NewCongestedGrid(rng, 10)
	if err != nil {
		b.Fatal(err)
	}
	net := graph.RandomNet(rng, g.Graph, 5)
	// Bounding-box pool over the grid coordinates.
	minX, minY, maxX, maxY := congest.GridSize, congest.GridSize, 0, 0
	for _, v := range net {
		x, y := g.Coords(v)
		minX, maxX = min(minX, x), max(maxX, x)
		minY, maxY = min(minY, y), max(maxY, y)
	}
	var pool []graph.NodeID
	for y := max(0, minY-2); y <= min(congest.GridSize-1, maxY+2); y++ {
		for x := max(0, minX-2); x <= min(congest.GridSize-1, maxX+2); x++ {
			pool = append(pool, g.Node(x, y))
		}
	}
	cases := []struct {
		name string
		opts core.Options
	}{
		{"fullscan", core.Options{}},
		{"bbox", core.Options{Candidates: pool}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cache := graph.NewSPTCache(g.Graph)
				if _, err := core.IGMST(cache, net, steiner.KMB, c.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIKMBSSSPCache quantifies the shared shortest-paths cache: the
// "nocache" variant hands the template a heuristic that recomputes its own
// cache on every evaluation.
func BenchmarkIKMBSSSPCache(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g, err := congest.NewCongestedGrid(rng, 10)
	if err != nil {
		b.Fatal(err)
	}
	net := graph.RandomNet(rng, g.Graph, 5)
	uncachedKMB := func(_ *graph.SPTCache, n []graph.NodeID) (graph.Tree, error) {
		return steiner.KMB(graph.NewSPTCache(g.Graph), n)
	}
	cases := []struct {
		name string
		h    steiner.Heuristic
	}{
		{"cache", steiner.KMB},
		{"nocache", uncachedKMB},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cache := graph.NewSPTCache(g.Graph)
				if _, err := core.IGMST(cache, net, c.h, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIKMB_Pooled runs the iterated KMB construction through one
// reused Dijkstra scratch, releasing the per-net cache each iteration so
// SPT buffers recycle — the router's steady-state allocation profile.
func BenchmarkIKMB_Pooled(b *testing.B) {
	g, net := cpuInstance(1)
	s := graph.NewDijkstraScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache := graph.NewSPTCache(g).WithScratch(s)
		if _, err := core.IKMB(cache, net); err != nil {
			b.Fatal(err)
		}
		cache.Release()
	}
}

// BenchmarkIKMB_Unpooled is the pre-refactor baseline: every iteration
// allocates a private scratch and abandons its SPTs to the collector.
func BenchmarkIKMB_Unpooled(b *testing.B) {
	g, net := cpuInstance(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache := graph.NewSPTCache(g)
		if _, err := core.IKMB(cache, net); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCandidateScan measures the iterated template's candidate-scan
// round at fixed worker counts on a denser instance (|V| = 400, |N| = 8,
// full-graph pool) where one round carries enough base-heuristic work for
// sharding to matter. Seq (workers=1) is the regression oracle the parallel
// scan is guaranteed bit-identical to; interpret the pair together with the
// GOMAXPROCS it ran under.
func BenchmarkCandidateScan(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomConnected(rng, 400, 3000, 10)
	net := graph.RandomNet(rng, g, 8)
	for _, c := range []struct {
		name    string
		workers int
	}{{"Seq", 1}, {"Par", 8}} {
		b.Run(c.name, func(b *testing.B) {
			s := graph.NewDijkstraScratch()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cache := graph.NewSPTCache(g).WithScratch(s)
				if _, _, err := core.IGMSTStats(cache, net, steiner.KMB, core.Options{Workers: c.workers}); err != nil {
					b.Fatal(err)
				}
				cache.Release()
			}
		})
	}
}

// BenchmarkMinWidthParallel measures the concurrent minimum-width search on
// the smallest Table 2 circuit; BenchmarkMinWidthSeq is the sequential
// reference it is guaranteed to agree with.
func BenchmarkMinWidthParallel(b *testing.B) {
	ckt := synthBench(b, "busc")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := router.MinWidth(ckt, 7, router.Options{MaxPasses: 6}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinWidthSeq(b *testing.B) {
	ckt := synthBench(b, "busc")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := router.MinWidthSeq(nil, ckt, 7, router.Options{MaxPasses: 6}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouterOrdering compares move-to-front reordering against static
// ordering at a width tight enough to require retries.
func BenchmarkRouterOrdering(b *testing.B) {
	ckt := synthBench(b, "term1")
	for _, noMTF := range []bool{false, true} {
		name := "movetofront"
		if noMTF {
			name = "static"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Errors are acceptable here: the comparison is about the
				// work each ordering policy does at a tight width.
				_, _ = router.Route(ckt, 8, router.Options{MaxPasses: 6, NoMoveToFront: noMTF})
			}
		})
	}
}

// BenchmarkSegmentation compares routing the same circuit on single-length
// channels vs a double-line mix (the segmented-channel architecture
// extension).
func BenchmarkSegmentation(b *testing.B) {
	ckt := synthBench(b, "term1")
	mixes := map[string][]int{
		"single":  nil,
		"doubles": {1, 1, 1, 2, 1, 1, 1, 2, 1, 2},
	}
	for name, mix := range mixes {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := router.Route(ckt, 10, router.Options{MaxPasses: 8, SegLens: mix}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTradeoffBaselines measures the BRBC / Prim-Dijkstra trade-off
// constructions on the paper's CPU instance shape.
func BenchmarkTradeoffBaselines(b *testing.B) {
	g, net := cpuInstance(6)
	b.Run("prim-dijkstra", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cache := graph.NewSPTCache(g)
			if _, err := arbor.PrimDijkstra(cache, net, 0.5); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("brbc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cache := graph.NewSPTCache(g)
			if _, err := arbor.BRBC(cache, net, 0.5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDijkstraStopSet measures the early-termination Dijkstra against
// the full-graph run on a busc-sized fabric.
func BenchmarkDijkstraStopSet(b *testing.B) {
	ckt := synthBench(b, "busc")
	res, fab, err := router.RouteWithFabric(ckt, 8, router.Options{MaxPasses: 8})
	if err != nil {
		b.Fatal(err)
	}
	_ = res
	g := fab.Graph()
	src := fab.PinNode(ckt.Nets[0].Pins[0])
	stop := make([]graph.NodeID, 0, len(ckt.Nets[0].Pins))
	for _, p := range ckt.Nets[0].Pins {
		stop = append(stop, fab.PinNode(p))
	}
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.Dijkstra(src)
		}
	})
	b.Run("stopset", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.DijkstraWithin(src, stop)
		}
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
