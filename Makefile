# Development targets for the fpgarouter repository.

GO ?= go

.PHONY: all build test check chaos bench bench-json tables serve clean

all: build

build:
	$(GO) build ./...

# Tier-1 verification: what must stay green on every commit.
test:
	$(GO) build ./... && $(GO) test ./...

# Full check: build, vet, optional deep linters, and the test suite under
# the race detector (the parallel minimum-width search makes -race
# load-bearing). staticcheck and fieldalignment run only when installed —
# the CI image may not ship them, and `make check` must work offline.
check:
	$(GO) build ./...
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	@if command -v fieldalignment >/dev/null 2>&1; then \
		fieldalignment ./internal/graph/ || true; \
	else \
		echo "fieldalignment not installed; skipping (go install golang.org/x/tools/go/analysis/passes/fieldalignment/cmd/fieldalignment@latest)"; \
	fi
	$(GO) test -race ./...

# Fault-injection suite (internal/faultpoint): worker panics, injected
# transient errors, deadline-interrupted searches — the daemon must
# survive and degrade gracefully, with no data races.
chaos:
	$(GO) test -race -run 'Chaos|Fault' ./...

# Router micro-benchmarks (human-readable).
bench:
	$(GO) test -bench 'IKMB_|MinWidth|CandidateScan' -benchmem -run '^$$' .

# Machine-readable benchmark results for cross-commit comparison.
bench-json:
	$(GO) run ./cmd/tables -bench-json BENCH_router.json

# Regenerate the paper's tables and figures (slow).
tables:
	$(GO) run ./cmd/tables -all

# Launch the routing service daemon locally (see README "Running the
# service" for the submit/status/result curl examples).
serve:
	$(GO) run ./cmd/routed -addr :8080

clean:
	$(GO) clean ./...
	rm -f BENCH_router.json
