// Command steinercli runs all eight tree constructions of the paper on a
// random instance — a congested grid graph (Table 1 style) or a random
// connected graph — and prints a side-by-side comparison of wirelength and
// maximum source-sink pathlength.
//
// Usage:
//
//	steinercli                       # 5-pin net on an uncongested 20x20 grid
//	steinercli -pins 8 -congest 20   # Table 1's medium congestion level
//	steinercli -random -v 50 -e 1000 # the paper's CPU-time instance shape
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"fpgarouter/internal/congest"
	"fpgarouter/internal/experiments"
	"fpgarouter/internal/graph"
	"fpgarouter/internal/steiner"
)

func main() {
	var (
		pins    = flag.Int("pins", 5, "number of net pins (first is the source)")
		k       = flag.Int("congest", 0, "pre-routed nets congesting the grid (Table 1: 0, 10, 20)")
		seed    = flag.Int64("seed", time.Now().UnixNano(), "workload seed (default random)")
		random  = flag.Bool("random", false, "use a random connected graph instead of a grid")
		nNodes  = flag.Int("v", 50, "random graph nodes")
		nEdges  = flag.Int("e", 1000, "random graph edges")
		showOpt = flag.Bool("opt", true, "also compute the exact Steiner optimum (small nets)")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var g *graph.Graph
	if *random {
		g = graph.RandomConnected(rng, *nNodes, *nEdges, 10)
	} else {
		gg, err := congest.NewCongestedGrid(rng, *k)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		g = gg.Graph
	}
	net := graph.RandomNet(rng, g, *pins)
	cache := graph.NewSPTCache(g)
	optPath := congest.OptimalMaxPathlength(g, net)

	fmt.Printf("net: %v (source %d), |V|=%d |E|=%d, seed %d\n",
		net, net[0], g.NumNodes(), g.NumEdges(), *seed)
	fmt.Printf("%-6s %12s %12s %12s\n", "alg", "wirelength", "maxpath", "time")
	for _, alg := range experiments.Table1Algorithms() {
		start := time.Now()
		tree, err := alg.Fn(cache, net)
		elapsed := time.Since(start)
		if err != nil {
			fmt.Printf("%-6s failed: %v\n", alg.Name, err)
			continue
		}
		mp := graph.MaxPathlength(g, tree, net[0], net[1:])
		fmt.Printf("%-6s %12.2f %12.2f %12v\n", alg.Name, tree.Cost, mp, elapsed.Round(time.Microsecond))
	}
	fmt.Printf("%-6s %12s %12.2f\n", "OPTpath", "-", optPath)
	if *showOpt && *pins <= steiner.MaxExactTerminals {
		start := time.Now()
		opt, err := steiner.ExactCost(cache, net)
		if err == nil {
			fmt.Printf("%-6s %12.2f %12s %12v (Dreyfus–Wagner)\n", "OPT", opt, "-", time.Since(start).Round(time.Microsecond))
		}
	}
}
