// Command routed is the routing service daemon: an HTTP JSON API over a
// bounded job queue and a worker pool (see internal/service). Clients
// submit routing jobs — a named paper circuit or an inline netlist, mode
// "route" or "minwidth", router options and an optional deadline — then
// poll status and fetch results.
//
// Usage:
//
//	routed -addr :8080 -workers 4 -queue 64 -grace 15s
//
//	curl -s localhost:8080/jobs -d '{"mode":"minwidth","circuit":"busc"}'
//	curl -s localhost:8080/jobs/job-000001
//	curl -s localhost:8080/jobs/job-000001/result
//	curl -s localhost:8080/healthz   # liveness: 200 while the process serves
//	curl -s localhost:8080/readyz    # readiness: 503 when draining/saturated
//	curl -s localhost:8080/metrics
//
// Jobs may carry "timeout_ms", "max_retries", and "retry_backoff_ms":
// transiently failing attempts (recovered worker panics) are retried with
// exponential backoff, and a job interrupted by its deadline still serves
// its best partial result with "complete": false.
//
// SIGINT/SIGTERM starts a graceful shutdown: the listener closes, running
// jobs drain under -grace, and whatever is still in flight afterwards is
// canceled cooperatively.
//
// With -journal-dir set, the service is durable: every job lifecycle event
// is written to an fsynced write-ahead journal, completed results are filed
// in a content-addressed store (also the idempotency cache for duplicate
// submissions), and parallel-mode routes checkpoint their pathfinder state
// every -checkpoint-every iterations / -checkpoint-period of wall clock.
// After a crash, the next start replays the journal: finished jobs serve
// their results again, interrupted jobs re-enqueue, and checkpointed routes
// resume from their latest snapshot — bit-identical to an uninterrupted
// run. Without the flag, everything stays in-memory exactly as before.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fpgarouter/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS capped at 4)")
		queue      = flag.Int("queue", 64, "bounded job-queue depth")
		grace      = flag.Duration("grace", 15*time.Second, "shutdown grace period for draining jobs")
		journalDir = flag.String("journal-dir", "", "durability directory (journal + result store); empty = in-memory only")
		ckptEvery  = flag.Int("checkpoint-every", 8, "checkpoint parallel routes every N pathfinder iterations (0 = off)")
		ckptPeriod = flag.Duration("checkpoint-period", 10*time.Second, "checkpoint parallel routes at least this often (0 = off)")
	)
	flag.Parse()

	cfg := service.Config{Workers: *workers, QueueDepth: *queue}
	var svc *service.Service
	if *journalDir != "" {
		cfg.CheckpointEvery = *ckptEvery
		cfg.CheckpointPeriod = *ckptPeriod
		var report service.RecoveryReport
		var err error
		svc, report, err = service.OpenDurable(*journalDir, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("routed: journal %s: replayed %d records (%d completed, %d requeued, %d resumed from checkpoint",
			*journalDir, report.ReplayedRecords, report.Completed, report.Requeued, report.Resumed)
		if report.SalvagedBytes > 0 {
			fmt.Printf(", salvaged %d torn bytes", report.SalvagedBytes)
		}
		if len(report.Unrecoverable) > 0 {
			fmt.Printf(", %d unrecoverable", len(report.Unrecoverable))
		}
		fmt.Println(")")
	} else {
		svc = service.New(cfg)
	}
	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("routed: listening on %s\n", *addr)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Printf("routed: shutting down (grace %v)\n", *grace)
	graceCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	srv.Shutdown(graceCtx) // stop accepting; in-flight HTTP finishes
	if err := svc.Shutdown(graceCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	} else if errors.Is(err, context.DeadlineExceeded) {
		fmt.Println("routed: grace period expired, in-flight jobs canceled")
	}
	fmt.Println("routed: drained")
}
