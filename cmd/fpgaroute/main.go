// Command fpgaroute synthesizes one of the paper's benchmark circuits and
// routes it, optionally searching for the minimum channel width and
// rendering the solution.
//
// Usage:
//
//	fpgaroute -circuit busc                  # route at the best known width
//	fpgaroute -circuit alu4 -alg idom -min   # minimum-width search with IDOM
//	fpgaroute -circuit busc -width 9 -svg out.svg -ascii
//	fpgaroute -list                          # list available circuits
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"fpgarouter/internal/circuits"
	"fpgarouter/internal/prof"
	"fpgarouter/internal/render"
	"fpgarouter/internal/router"
	"fpgarouter/internal/stats"
)

func main() {
	var (
		name     = flag.String("circuit", "busc", "benchmark circuit name")
		alg      = flag.String("alg", "ikmb", "routing algorithm: kmb|zel|sph|ikmb|izel|isph|djka|dom|pfa|idom")
		netlist  = flag.String("netlist", "", "route this netlist file instead of a synthesized benchmark")
		critical = flag.String("critical", "", "comma-separated net IDs to route as critical nets (with idom)")
		width    = flag.Int("width", 0, "channel width (0 = paper's best known)")
		minW     = flag.Bool("min", false, "search for the minimum channel width")
		passes   = flag.Int("passes", 0, "feasibility pass threshold (0 = mode default: 20 sequential, 96 parallel)")
		seed     = flag.Int64("seed", 1, "netlist synthesis seed")
		svgOut   = flag.String("svg", "", "write an SVG plot of the routed solution")
		ascii    = flag.Bool("ascii", false, "print an ASCII channel-utilization map")
		list     = flag.Bool("list", false, "list available benchmark circuits")
		useStats = flag.Bool("stats", false, "print router work counters (SSSP runs, rip-ups, congestion histogram)")
		timeout  = flag.Duration("timeout", 0, "abandon the run after this long (0 = unbounded)")
		workers  = flag.Int("cand-workers", 0, "candidate-scan worker goroutines per net (0 = GOMAXPROCS capped at 8, 1 = sequential)")
		single   = flag.Bool("single", false, "single-step Steiner-point admission (one candidate per scan round, the paper's Figure 5 template)")
		lazy     = flag.Bool("lazy", false, "lazy-greedy candidate scans (stale-gain queue with exactness fallback; far fewer evaluations, wirelength may deviate <0.1%; arms under -single)")
		goal     = flag.Bool("goal", false, "goal-directed search (A* toward each net's pins under the fabric's coordinate bound, bidirectional Dijkstra for 2-pin nets; exact costs, equal-cost paths may differ; always on under -parallel)")
		parallel = flag.Bool("parallel", false, "net-parallel negotiated-congestion routing (internal/pathfinder): all nets route concurrently each iteration against Lagrangian edge prices")
		netWork  = flag.Int("net-workers", 0, "net-routing worker goroutines in -parallel mode (0 = GOMAXPROCS capped at 8; results are identical for any worker count)")
		increm   = flag.Bool("incremental", false, "incremental rip-up in -parallel mode: contested nets keep the non-overflowed fragment of their tree and reconnect orphaned pins by multi-source search; reduce/reprice run as deltas")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// os.Exit skips defers, so every exit path below goes through exit()
	// to flush the profiles first; the defer covers the normal return.
	defer stopProf()
	exit := func(code int) {
		stopProf()
		os.Exit(code)
	}

	if *list {
		fmt.Println("3000-series (Table 2):")
		for _, s := range circuits.Table2Circuits {
			fmt.Printf("  %-10s %2dx%-2d  %4d nets\n", s.Name, s.Cols, s.Rows, s.TotalNets())
		}
		fmt.Println("4000-series (Tables 3-5):")
		for _, s := range circuits.Table3Circuits {
			fmt.Printf("  %-10s %2dx%-2d  %4d nets\n", s.Name, s.Cols, s.Rows, s.TotalNets())
		}
		return
	}

	var ckt *circuits.Circuit
	var spec circuits.Spec
	if *netlist != "" {
		f, err := os.Open(*netlist)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		ckt, err = circuits.Parse(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		spec = ckt.Spec
		if spec.PaperIKMB == 0 {
			spec.PaperIKMB = 8 // neutral starting width for external netlists
		}
	} else {
		var ok bool
		spec, ok = circuits.SpecByName(*name)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown circuit %q (try -list)\n", *name)
			exit(2)
		}
		var err error
		ckt, err = circuits.Synthesize(spec, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
	}
	opts := router.Options{Algorithm: *alg, MaxPasses: *passes, CandidateWorkers: *workers, SingleStep: *single, LazyScan: *lazy, GoalDirected: *goal, Parallel: *parallel, NetWorkers: *netWork, IncrementalReroute: *increm}
	if *critical != "" {
		for _, tok := range strings.Split(*critical, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad -critical net id %q\n", tok)
				exit(2)
			}
			opts.CriticalNets = append(opts.CriticalNets, id)
		}
	}

	var col *stats.Collector
	if *useStats {
		col = stats.New()
	}
	ctx := router.NewContext(col)
	defer ctx.Close()
	printStats := func() {
		if col != nil {
			fmt.Print(col.Snapshot())
		}
	}
	cc := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		cc, cancel = context.WithTimeout(cc, *timeout)
		defer cancel()
	}

	start := time.Now()
	if *minW {
		w, res, complete, err := router.MinWidthContext(cc, ctx, ckt, spec.PaperIKMB, opts)
		if err != nil && res == nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		if complete {
			fmt.Printf("%s: minimum channel width %d (%d passes at that width, %.0f wirelength, %v)\n",
				spec.Name, w, res.Passes, res.Wirelength, time.Since(start).Round(time.Millisecond))
		} else {
			// Interrupted mid-search with a feasible width in hand: report the
			// best-so-far answer, flagged as an upper bound.
			fmt.Fprintf(os.Stderr, "search interrupted: %v\n", err)
			fmt.Printf("%s: best feasible channel width %d (search incomplete; %d passes at that width, %.0f wirelength, %v)\n",
				spec.Name, w, res.Passes, res.Wirelength, time.Since(start).Round(time.Millisecond))
		}
		printStats()
		if !complete {
			exit(1)
		}
		return
	}

	w := *width
	if w == 0 {
		w = spec.PaperIKMB
	}
	res, fab, err := router.RouteWithFabricContext(cc, ctx, ckt, w, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "routing failed: %v\n", err)
		if res != nil && res.Partial {
			fmt.Fprintf(os.Stderr, "partial result: %d/%d nets routed at width %d (%d pass(es), wirelength %.1f)\n",
				res.RoutedNets, len(res.Nets), w, res.Passes, res.Wirelength)
		}
		exit(1)
	}
	fmt.Printf("%s routed at width %d: %d pass(es), wirelength %.1f, max span utilization %d/%d, %v\n",
		spec.Name, w, res.Passes, res.Wirelength, res.MaxUtil, w, time.Since(start).Round(time.Millisecond))
	printStats()
	if *ascii {
		fmt.Print(render.UtilizationASCII(fab))
	}
	if *svgOut != "" {
		if err := os.WriteFile(*svgOut, []byte(render.SVG(fab, res)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		fmt.Printf("SVG written to %s\n", *svgOut)
	}
}
