// Benchmark JSON emission: `tables -bench-json FILE` runs the router
// micro-benchmarks that track this repository's performance work — pooled
// vs unpooled iterated KMB, and the parallel vs sequential minimum-width
// search — via testing.Benchmark and writes machine-readable results.
// CI and the experiments harness diff these files across commits.
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"fpgarouter/internal/circuits"
	"fpgarouter/internal/core"
	"fpgarouter/internal/graph"
	"fpgarouter/internal/router"
	"fpgarouter/internal/steiner"
)

// BenchResult is one benchmark's outcome in the emitted JSON file.
// GoMaxProcs is recorded per entry — not just in the file header — because
// the parallel benchmarks' numbers are meaningless without the hardware
// parallelism they ran under, and entries from different runs get merged
// into comparison sheets.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	GoMaxProcs  int     `json:"gomaxprocs"`
}

// benchFile is the emitted document: results plus enough provenance to
// compare runs.
type benchFile struct {
	GeneratedAt string        `json:"generated_at"`
	GoMaxProcs  int           `json:"gomaxprocs"`
	Results     []BenchResult `json:"results"`
}

// benchInstance mirrors the root benchmarks' CPU-time instance shape
// (|V| = 50, |E| = 1000, |N| = 5, the paper's Section 5 timing setup).
func benchInstance(seed int64) (*graph.Graph, []graph.NodeID) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomConnected(rng, 50, 1000, 10)
	return g, graph.RandomNet(rng, g, 5)
}

// scanInstance is a denser instance sized so one IGMST candidate-scan round
// does enough base-heuristic work for sharding to be visible (|V| = 400,
// |E| = 3000, |N| = 8, full-graph candidate pool).
func scanInstance(seed int64) (*graph.Graph, []graph.NodeID) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomConnected(rng, 400, 3000, 10)
	return g, graph.RandomNet(rng, g, 8)
}

// writeBenchJSON runs the tracked micro-benchmarks and writes path. quick
// skips the whole-circuit benchmarks (minimum-width searches and full busc
// routes), leaving a CI-smoke-sized subset that still exercises the pooled
// cache and the parallel candidate scan.
func writeBenchJSON(path string, quick bool) error {
	g, net := benchInstance(1)
	sg, snet := scanInstance(2)
	spec, ok := circuits.SpecByName("busc")
	if !ok {
		return fmt.Errorf("bench-json: circuit busc not registered")
	}
	ckt, err := circuits.Synthesize(spec, 1)
	if err != nil {
		return err
	}
	mwOpts := router.Options{MaxPasses: 6}
	// benchScan measures the iterated template end-to-end at a fixed worker
	// count; the Seq/Par pair isolates the candidate-scan parallelization
	// (identical work, identical results, different fan-out).
	benchScan := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			s := graph.NewDijkstraScratch()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cache := graph.NewSPTCache(sg).WithScratch(s)
				if _, _, err := core.IGMSTStats(cache, snet, steiner.KMB, core.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
				cache.Release()
			}
		}
	}
	// benchRoute measures the full router on busc at the paper's width.
	benchRoute := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := router.Route(ckt, spec.PaperIKMB, router.Options{MaxPasses: 6, CandidateWorkers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	type bench struct {
		name string
		fn   func(b *testing.B)
	}
	benches := []bench{
		{"BenchmarkIKMB_Pooled", func(b *testing.B) {
			s := graph.NewDijkstraScratch()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cache := graph.NewSPTCache(g).WithScratch(s)
				if _, err := core.IKMB(cache, net); err != nil {
					b.Fatal(err)
				}
				cache.Release()
			}
		}},
		{"BenchmarkIKMB_Unpooled", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.IKMB(graph.NewSPTCache(g), net); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"BenchmarkCandidateScanSeq", benchScan(1)},
		{"BenchmarkCandidateScanPar", benchScan(8)},
	}
	if !quick {
		benches = append(benches,
			bench{"BenchmarkRouteBuscSeq", benchRoute(1)},
			bench{"BenchmarkRouteBuscPar", benchRoute(8)},
			bench{"BenchmarkMinWidthParallel", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := router.MinWidth(ckt, 7, mwOpts); err != nil {
						b.Fatal(err)
					}
				}
			}},
			bench{"BenchmarkMinWidthSeq", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := router.MinWidthSeq(nil, ckt, 7, mwOpts); err != nil {
						b.Fatal(err)
					}
				}
			}},
		)
	}
	// Warm-up. The first testing.Benchmark in a fresh process measures a few
	// percent slow: the GC heap is still growing toward its steady state, so
	// the earliest iterations pay extra collections. Unwarmed, this showed up
	// as a phantom ~4% gap between IKMB_Pooled and IKMB_Unpooled — whichever
	// ran first lost (under `go test -bench` the pooled variant is
	// consistently the faster one). Burn the same workload first so every
	// entry measures against a settled heap.
	for i := 0; i < 300; i++ {
		if _, err := core.IKMB(graph.NewSPTCache(g), net); err != nil {
			return err
		}
	}
	out := benchFile{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}
	for _, bench := range benches {
		fmt.Fprintf(os.Stderr, "bench-json: running %s\n", bench.name)
		r := testing.Benchmark(bench.fn)
		out.Results = append(out.Results, BenchResult{
			Name:        bench.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			GoMaxProcs:  runtime.GOMAXPROCS(0),
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("benchmark results written to %s\n", path)
	return nil
}
