// Benchmark JSON emission: `tables -bench-json FILE` runs the router
// micro-benchmarks that track this repository's performance work — pooled
// vs unpooled iterated KMB, and the parallel vs sequential minimum-width
// search — via testing.Benchmark and writes machine-readable results.
// CI and the experiments harness diff these files across commits.
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"fpgarouter/internal/circuits"
	"fpgarouter/internal/core"
	"fpgarouter/internal/graph"
	"fpgarouter/internal/router"
)

// BenchResult is one benchmark's outcome in the emitted JSON file.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// benchFile is the emitted document: results plus enough provenance to
// compare runs.
type benchFile struct {
	GeneratedAt string        `json:"generated_at"`
	GoMaxProcs  int           `json:"gomaxprocs"`
	Results     []BenchResult `json:"results"`
}

// benchInstance mirrors the root benchmarks' CPU-time instance shape
// (|V| = 50, |E| = 1000, |N| = 5, the paper's Section 5 timing setup).
func benchInstance(seed int64) (*graph.Graph, []graph.NodeID) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomConnected(rng, 50, 1000, 10)
	return g, graph.RandomNet(rng, g, 5)
}

func writeBenchJSON(path string) error {
	g, net := benchInstance(1)
	spec, ok := circuits.SpecByName("busc")
	if !ok {
		return fmt.Errorf("bench-json: circuit busc not registered")
	}
	ckt, err := circuits.Synthesize(spec, 1)
	if err != nil {
		return err
	}
	mwOpts := router.Options{MaxPasses: 6}
	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"BenchmarkIKMB_Pooled", func(b *testing.B) {
			s := graph.NewDijkstraScratch()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cache := graph.NewSPTCache(g).WithScratch(s)
				if _, err := core.IKMB(cache, net); err != nil {
					b.Fatal(err)
				}
				cache.Release()
			}
		}},
		{"BenchmarkIKMB_Unpooled", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.IKMB(graph.NewSPTCache(g), net); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"BenchmarkMinWidthParallel", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := router.MinWidth(ckt, 7, mwOpts); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"BenchmarkMinWidthSeq", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := router.MinWidthSeq(nil, ckt, 7, mwOpts); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
	out := benchFile{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}
	for _, bench := range benches {
		fmt.Fprintf(os.Stderr, "bench-json: running %s\n", bench.name)
		r := testing.Benchmark(bench.fn)
		out.Results = append(out.Results, BenchResult{
			Name:        bench.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("benchmark results written to %s\n", path)
	return nil
}
