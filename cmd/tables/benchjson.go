// Benchmark JSON emission: `tables -bench-json FILE` runs the router
// micro-benchmarks that track this repository's performance work — pooled
// vs unpooled iterated KMB, and the parallel vs sequential minimum-width
// search — via testing.Benchmark and writes machine-readable results.
// CI and the experiments harness diff these files across commits.
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"testing"
	"time"

	"fpgarouter/internal/circuits"
	"fpgarouter/internal/core"
	"fpgarouter/internal/fpga"
	"fpgarouter/internal/graph"
	"fpgarouter/internal/router"
	"fpgarouter/internal/stats"
	"fpgarouter/internal/steiner"
)

// BenchResult is one benchmark's outcome in the emitted JSON file.
// GoMaxProcs is recorded per entry — not just in the file header — because
// the parallel benchmarks' numbers are meaningless without the hardware
// parallelism they ran under, and entries from different runs get merged
// into comparison sheets.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	// EvalsPerOp and EvalsSavedPerOp are recorded for the CandidateScan
	// entries: base-heuristic evaluations one operation performs, and how
	// many the lazy queue avoided versus the exhaustive scan. They come
	// from one untimed instrumented run (the construction is
	// deterministic, so every timed iteration does identical work).
	EvalsPerOp      int64 `json:"evals_per_op,omitempty"`
	EvalsSavedPerOp int64 `json:"evals_saved_per_op,omitempty"`
	// ExpandedNodesPerOp is recorded for the SSSP entries: nodes settled by
	// one operation (from one untimed instrumented run — the searches are
	// deterministic). It is the work metric that separates goal-directed
	// search from plain Dijkstra beyond wall-clock noise: SSSP_AStar must
	// expand strictly fewer nodes than SSSP_CSR/SSSP_Legacy on busc.
	ExpandedNodesPerOp int64 `json:"expanded_nodes_per_op,omitempty"`
	// IterationsPerOp is recorded for the RouteBuscParallel entries: the
	// negotiated-congestion iterations one converged route performs (from
	// one untimed instrumented run — the engine is deterministic, and
	// worker count does not change the iteration trajectory). The
	// Parallel1/Parallel4 pair therefore does identical routing work, so
	// their ns_per_op ratio is the net-level parallel speedup.
	IterationsPerOp int64 `json:"iterations_per_op,omitempty"`
	// EdgesRippedPerOp / EdgesRetainedPerOp are recorded for the
	// RouteZ03Parallel entries: previous-tree edges discarded and kept
	// across one converged route's iterations. The Full entry rips
	// everything (retained 0); the Incremental entry's retained share is
	// the partial rip-up working.
	EdgesRippedPerOp   int64 `json:"edges_ripped_per_op,omitempty"`
	EdgesRetainedPerOp int64 `json:"edges_retained_per_op,omitempty"`
}

// benchFile is the emitted document: results plus enough provenance to
// compare runs.
type benchFile struct {
	GeneratedAt string        `json:"generated_at"`
	GitCommit   string        `json:"git_commit"`
	GoVersion   string        `json:"go_version"`
	GoMaxProcs  int           `json:"gomaxprocs"`
	Results     []BenchResult `json:"results"`
}

// gitCommit resolves the commit the binary is benchmarking: the working
// tree's HEAD when run inside a checkout, else the VCS stamp Go embeds at
// build time, else "unknown" — entries stay attributable across PRs even
// when the binary travels without its repository.
func gitCommit() string {
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		if s := strings.TrimSpace(string(out)); s != "" {
			return s
		}
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, set := range bi.Settings {
			if set.Key == "vcs.revision" && set.Value != "" {
				return set.Value
			}
		}
	}
	return "unknown"
}

// benchInstance mirrors the root benchmarks' CPU-time instance shape
// (|V| = 50, |E| = 1000, |N| = 5, the paper's Section 5 timing setup).
func benchInstance(seed int64) (*graph.Graph, []graph.NodeID) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomConnected(rng, 50, 1000, 10)
	return g, graph.RandomNet(rng, g, 5)
}

// scanInstance is a denser instance sized so one IGMST candidate-scan round
// does enough base-heuristic work for sharding to be visible, and the net
// is wide enough that the construction admits several Steiner points —
// multiple scan rounds are what the lazy queue amortizes its priming scan
// over (|V| = 400, |E| = 3000, |N| = 12, full-graph candidate pool,
// 3 admissions at seed 2).
func scanInstance(seed int64) (*graph.Graph, []graph.NodeID) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomConnected(rng, 400, 3000, 10)
	return g, graph.RandomNet(rng, g, 12)
}

// writeBenchJSON runs the tracked micro-benchmarks and writes path. quick
// skips the whole-circuit benchmarks (minimum-width searches and full busc
// routes), leaving a CI-smoke-sized subset that still exercises the pooled
// cache and the parallel candidate scan.
func writeBenchJSON(path string, quick bool) error {
	g, net := benchInstance(1)
	sg, snet := scanInstance(2)
	spec, ok := circuits.SpecByName("busc")
	if !ok {
		return fmt.Errorf("bench-json: circuit busc not registered")
	}
	ckt, err := circuits.Synthesize(spec, 1)
	if err != nil {
		return err
	}
	mwOpts := router.Options{MaxPasses: 6}
	// benchScan measures the iterated template end-to-end at a fixed worker
	// count; the Seq/Par pair isolates the candidate-scan parallelization
	// (identical work, identical results, different fan-out) and the Lazy
	// pair isolates the stale-gain queue (identical results on this
	// fixture — its gains stay diminishing — and far fewer evaluations;
	// see core.lazyQueue for the exactness contract on instances where
	// they do not).
	benchScan := func(workers int, lazy bool) func(b *testing.B) {
		return func(b *testing.B) {
			s := graph.NewDijkstraScratch()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cache := graph.NewSPTCache(sg).WithScratch(s)
				if _, _, err := core.IGMSTStats(cache, snet, steiner.KMB, core.Options{Workers: workers, Lazy: lazy}); err != nil {
					b.Fatal(err)
				}
				cache.Release()
			}
		}
	}
	// scanWork instruments one untimed run of the same workload, giving the
	// evals_per_op/evals_saved_per_op provenance for the scan entries.
	scanWork := func(workers int, lazy bool) (evals, saved int64) {
		cache := graph.NewSPTCache(sg)
		defer cache.Release()
		_, st, err := core.IGMSTStats(cache, snet, steiner.KMB, core.Options{Workers: workers, Lazy: lazy})
		if err != nil {
			return 0, 0
		}
		return st.Evaluations, st.EvaluationsSaved
	}
	// benchRoute measures the full router on busc at the paper's width.
	benchRoute := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := router.Route(ckt, spec.PaperIKMB, router.Options{MaxPasses: 6, CandidateWorkers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	// The SSSP trio times one early-stopping shortest-path sweep over real
	// busc nets on the paper fabric: the pre-CSR adjacency walk
	// (SSSP_Legacy), the CSR weight-stream loop (SSSP_CSR — identical
	// results, better locality), and the goal-directed stop-set search
	// under the fabric's coordinate bound (SSSP_AStar — identical terminal
	// distances, strictly fewer expanded nodes). One op = one SSSP per
	// sampled net, on a warm scratch with the SPT recycled.
	fab, err := fpga.NewFabric(ckt.ArchAt(10))
	if err != nil {
		return err
	}
	var ssspNets [][]graph.NodeID
	for _, net := range ckt.Nets {
		terms := make([]graph.NodeID, len(net.Pins))
		for j, p := range net.Pins {
			terms[j] = fab.PinNode(p)
		}
		ssspNets = append(ssspNets, terms)
		if len(ssspNets) == 32 {
			break
		}
	}
	const (
		ssspLegacy = iota
		ssspCSR
		ssspAStar
	)
	runSSSP := func(mode int, s *graph.DijkstraScratch) {
		gg := fab.Graph()
		bnd := fab.Bounds()
		for _, terms := range ssspNets {
			var t *graph.SPT
			switch mode {
			case ssspLegacy:
				t = gg.LegacyDijkstra(s, terms[0], terms)
			case ssspCSR:
				t = gg.DijkstraWithinScratch(s, terms[0], terms)
			default:
				t = gg.DijkstraWithinBounded(s, terms[0], terms, bnd)
			}
			s.RecycleSPT(t)
		}
	}
	benchSSSP := func(mode int) func(b *testing.B) {
		return func(b *testing.B) {
			s := graph.NewDijkstraScratch()
			runSSSP(mode, s) // warm the scratch buffers before timing
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runSSSP(mode, s)
			}
		}
	}
	ssspExpanded := func(mode int) int64 {
		s := graph.NewDijkstraScratch()
		before := s.Settled
		runSSSP(mode, s)
		return s.Settled - before
	}
	// benchParallel measures the pathfinder-mode router on busc at the
	// paper's width with a fixed net-worker count; pfIters instruments one
	// untimed run for the iterations_per_op provenance.
	benchParallel := func(netWorkers int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := router.Route(ckt, spec.PaperIKMB, router.Options{Parallel: true, NetWorkers: netWorkers}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	pfIters := func() int64 {
		res, err := router.Route(ckt, spec.PaperIKMB, router.Options{Parallel: true})
		if err != nil {
			return 0
		}
		return int64(res.Passes)
	}
	type bench struct {
		name   string
		fn     func(b *testing.B)
		work   func() (evals, saved int64)
		expand func() int64
		iters  func() int64
	}
	benches := []bench{
		{name: "BenchmarkIKMB_Pooled", fn: func(b *testing.B) {
			s := graph.NewDijkstraScratch()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cache := graph.NewSPTCache(g).WithScratch(s)
				if _, err := core.IKMB(cache, net); err != nil {
					b.Fatal(err)
				}
				cache.Release()
			}
		}},
		{name: "BenchmarkIKMB_Unpooled", fn: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.IKMB(graph.NewSPTCache(g), net); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "BenchmarkCandidateScanSeq", fn: benchScan(1, false), work: func() (int64, int64) { return scanWork(1, false) }},
		{name: "BenchmarkCandidateScanPar", fn: benchScan(8, false), work: func() (int64, int64) { return scanWork(8, false) }},
		{name: "BenchmarkCandidateScanLazySeq", fn: benchScan(1, true), work: func() (int64, int64) { return scanWork(1, true) }},
		{name: "BenchmarkCandidateScanLazyPar", fn: benchScan(8, true), work: func() (int64, int64) { return scanWork(8, true) }},
		{name: "BenchmarkSSSP_Legacy", fn: benchSSSP(ssspLegacy), expand: func() int64 { return ssspExpanded(ssspLegacy) }},
		{name: "BenchmarkSSSP_CSR", fn: benchSSSP(ssspCSR), expand: func() int64 { return ssspExpanded(ssspCSR) }},
		{name: "BenchmarkSSSP_AStar", fn: benchSSSP(ssspAStar), expand: func() int64 { return ssspExpanded(ssspAStar) }},
	}
	if !quick {
		benches = append(benches,
			bench{name: "BenchmarkRouteBuscSeq", fn: benchRoute(1)},
			bench{name: "BenchmarkRouteBuscPar", fn: benchRoute(8)},
			bench{name: "BenchmarkRouteBuscParallel1", fn: benchParallel(1), iters: pfIters},
			bench{name: "BenchmarkRouteBuscParallel4", fn: benchParallel(4), iters: pfIters},
			bench{name: "BenchmarkMinWidthParallel", fn: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := router.MinWidth(ckt, 7, mwOpts); err != nil {
						b.Fatal(err)
					}
				}
			}},
			bench{name: "BenchmarkMinWidthSeq", fn: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := router.MinWidthSeq(nil, ckt, 7, mwOpts); err != nil {
						b.Fatal(err)
					}
				}
			}},
		)
	}
	// Warm-up. The first testing.Benchmark in a fresh process measures a few
	// percent slow: the GC heap is still growing toward its steady state, so
	// the earliest iterations pay extra collections. Unwarmed, this showed up
	// as a phantom ~4% gap between IKMB_Pooled and IKMB_Unpooled — whichever
	// ran first lost (under `go test -bench` the pooled variant is
	// consistently the faster one). Burn the same workload first so every
	// entry measures against a settled heap.
	for i := 0; i < 300; i++ {
		if _, err := core.IKMB(graph.NewSPTCache(g), net); err != nil {
			return err
		}
	}
	out := benchFile{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GitCommit:   gitCommit(),
		GoVersion:   runtime.Version(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}
	for _, bench := range benches {
		fmt.Fprintf(os.Stderr, "bench-json: running %s\n", bench.name)
		r := testing.Benchmark(bench.fn)
		res := BenchResult{
			Name:        bench.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			GoMaxProcs:  runtime.GOMAXPROCS(0),
		}
		if bench.work != nil {
			res.EvalsPerOp, res.EvalsSavedPerOp = bench.work()
		}
		if bench.expand != nil {
			res.ExpandedNodesPerOp = bench.expand()
		}
		if bench.iters != nil {
			res.IterationsPerOp = bench.iters()
		}
		out.Results = append(out.Results, res)
	}
	if !quick {
		// The z03 stress case is the incremental rip-up showcase: the
		// hardest paper circuit, ~10 minutes per converged full-reroute run —
		// far too slow for testing.Benchmark's auto-scaling, and the engine
		// is deterministic, so one hand-timed run is the benchmark. A stats
		// collector supplies the rip-up provenance for each entry.
		z03spec, ok := circuits.SpecByName("z03")
		if !ok {
			return fmt.Errorf("bench-json: circuit z03 not registered")
		}
		z03, err := circuits.Synthesize(z03spec, 1)
		if err != nil {
			return err
		}
		benchZ03 := func(name string, incremental bool) (BenchResult, error) {
			fmt.Fprintf(os.Stderr, "bench-json: running %s (single hand-timed run)\n", name)
			col := stats.New()
			rctx := router.NewContext(col)
			defer rctx.Close()
			start := time.Now()
			res, err := router.RouteCtx(rctx, z03, z03spec.PaperIKMB, router.Options{Parallel: true, IncrementalReroute: incremental})
			if err != nil {
				return BenchResult{}, fmt.Errorf("%s: %w", name, err)
			}
			snap := col.Snapshot()
			return BenchResult{
				Name:               name,
				Iterations:         1,
				NsPerOp:            float64(time.Since(start).Nanoseconds()),
				GoMaxProcs:         runtime.GOMAXPROCS(0),
				IterationsPerOp:    int64(res.Passes),
				EdgesRippedPerOp:   snap.EdgesRipped,
				EdgesRetainedPerOp: snap.EdgesRetained,
			}, nil
		}
		for _, z := range []struct {
			name string
			inc  bool
		}{
			{"BenchmarkRouteZ03ParallelFull", false},
			{"BenchmarkRouteZ03ParallelIncremental", true},
		} {
			res, err := benchZ03(z.name, z.inc)
			if err != nil {
				return err
			}
			out.Results = append(out.Results, res)
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("benchmark results written to %s\n", path)
	return nil
}
