// Command tables regenerates every table and figure of the paper's
// evaluation section on the synthesized benchmark suite.
//
// Usage:
//
//	tables -all                     # everything (tables 1-5, figures 4,10,11,14,16)
//	tables -table 1 [-nets 50]      # Table 1 on 50 nets per cell (paper's count)
//	tables -table 2                 # Table 2 (3000-series channel widths)
//	tables -figure 14               # one figure experiment
//	tables -quick -all              # reduced pass/net counts for a fast pass
//	tables -figure 16 -svg out.svg  # also write the routing plot SVG
//
// Absolute numbers depend on the synthesized netlists (see DESIGN.md §4);
// the printed output includes the paper's published values alongside ours.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"fpgarouter/internal/circuits"
	"fpgarouter/internal/experiments"
	"fpgarouter/internal/prof"
	"fpgarouter/internal/stats"
)

func main() {
	var (
		table      = flag.Int("table", 0, "regenerate one table (1-5)")
		figure     = flag.Int("figure", 0, "regenerate one figure (4, 10, 11, 14, 16)")
		all        = flag.Bool("all", false, "regenerate everything")
		quick      = flag.Bool("quick", false, "reduced nets/passes for a fast smoke run")
		seed       = flag.Int64("seed", 1, "benchmark synthesis / workload seed")
		nets       = flag.Int("nets", 50, "nets per Table 1 cell")
		passes     = flag.Int("passes", 0, "router feasibility pass threshold (0 = mode default: 20 sequential, 96 parallel)")
		svgOut     = flag.String("svg", "", "write the Figure 16 SVG to this file")
		tradeoff   = flag.Bool("tradeoff", false, "run the BRBC / Prim-Dijkstra trade-off study (Section 2 comparison)")
		segment    = flag.String("segmentation", "", "run the channel-segmentation study on this circuit (e.g. term1)")
		useStats   = flag.Bool("stats", false, "print aggregate router work counters after the sweeps")
		benchOut   = flag.String("bench-json", "", "run the router micro-benchmarks and write JSON results to this file")
		benchQuick = flag.Bool("bench-quick", false, "with -bench-json: skip the whole-circuit benchmarks (CI smoke subset)")
		timeout    = flag.Duration("timeout", 0, "abandon the table/figure sweeps after this long (0 = unbounded)")
		workers    = flag.Int("cand-workers", 0, "candidate-scan worker goroutines per net (0 = GOMAXPROCS capped at 8, 1 = sequential)")
		singleStep = flag.Bool("single", false, "single-step Steiner-point admission (one candidate per scan round, the paper's Figure 5 template)")
		lazy       = flag.Bool("lazy", false, "lazy-greedy candidate scans (stale-gain queue with exactness fallback; far fewer evaluations, wirelength may deviate <0.1%; arms under -single)")
		goal       = flag.Bool("goal", false, "goal-directed search (A* toward each net's pins under the fabric's coordinate bound; exact costs, equal-cost paths may differ; always on under -parallel)")
		parallel   = flag.Bool("parallel", false, "net-parallel negotiated-congestion routing (internal/pathfinder) for the table sweeps")
		netWork    = flag.Int("net-workers", 0, "net-routing worker goroutines in -parallel mode (0 = GOMAXPROCS capped at 8; results are identical for any worker count)")
		increm     = flag.Bool("incremental", false, "incremental rip-up in -parallel mode: contested nets keep the non-overflowed fragment of their tree and reconnect orphaned pins; reduce/reprice run as deltas")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// os.Exit skips defers, so every exit path below goes through exit()
	// to flush the profiles first; the defer covers the normal return.
	defer stopProf()
	exit := func(code int) {
		stopProf()
		os.Exit(code)
	}
	if *benchOut != "" {
		if err := writeBenchJSON(*benchOut, *benchQuick); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		if !*all && *table == 0 && *figure == 0 && !*tradeoff && *segment == "" {
			return
		}
	}
	if !*all && *table == 0 && *figure == 0 && !*tradeoff && *segment == "" && *benchOut == "" {
		flag.Usage()
		exit(2)
	}
	if *quick {
		if *nets > 15 {
			*nets = 15
		}
		if *passes == 0 || *passes > 8 {
			*passes = 8
		}
	}
	cfg := experiments.RouterConfig{Seed: *seed, MaxPasses: *passes, CandidateWorkers: *workers, SingleStep: *singleStep, LazyScan: *lazy, GoalDirected: *goal, Parallel: *parallel, NetWorkers: *netWork, IncrementalReroute: *increm}
	if *timeout > 0 {
		cc, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		cfg.Ctx = cc
	}
	if *useStats {
		cfg.Stats = stats.New()
		defer func() { fmt.Print(cfg.Stats.Snapshot()) }()
	}

	run := func(name string, f func() error) {
		start := time.Now()
		fmt.Printf("=== %s ===\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			exit(1)
		}
		fmt.Printf("(%s took %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(t int) bool { return *all || *table == t }
	wantFig := func(f int) bool { return *all || *figure == f }

	if want(1) {
		run("Table 1", func() error {
			blocks, err := experiments.Table1(*seed, *nets)
			if err != nil {
				return err
			}
			experiments.PrintTable1(os.Stdout, blocks)
			return nil
		})
	}
	if want(2) {
		run("Table 2", func() error {
			rows, err := experiments.Table2(cfg)
			if err != nil {
				return err
			}
			experiments.PrintTable2(os.Stdout, rows)
			return nil
		})
	}
	if want(3) {
		run("Table 3", func() error {
			rows, err := experiments.Table3(cfg)
			if err != nil {
				return err
			}
			experiments.PrintTable3(os.Stdout, rows)
			return nil
		})
	}
	if want(4) {
		run("Table 4", func() error {
			rows, err := experiments.Table4(cfg)
			if err != nil {
				return err
			}
			experiments.PrintTable4(os.Stdout, rows)
			return nil
		})
	}
	if want(5) {
		run("Table 5", func() error {
			rows, err := experiments.Table5(cfg)
			if err != nil {
				return err
			}
			experiments.PrintTable5(os.Stdout, rows)
			return nil
		})
	}
	if wantFig(4) {
		run("Figure 4", func() error {
			r, err := experiments.Figure4()
			if err != nil {
				return err
			}
			experiments.PrintFigure4(os.Stdout, r)
			return nil
		})
	}
	if wantFig(10) {
		run("Figure 10", func() error {
			rows, err := experiments.Figure10([]int{2, 4, 8, 16, 32})
			if err != nil {
				return err
			}
			experiments.PrintFigure10(os.Stdout, rows)
			return nil
		})
	}
	if wantFig(11) {
		run("Figure 11", func() error {
			rows, err := experiments.Figure11([]int{4, 6, 8, 10})
			if err != nil {
				return err
			}
			experiments.PrintFigure11(os.Stdout, rows)
			return nil
		})
	}
	if wantFig(14) {
		run("Figure 14", func() error {
			rows, err := experiments.Figure14([]int{2, 3, 4, 5, 6, 7})
			if err != nil {
				return err
			}
			experiments.PrintFigure14(os.Stdout, rows)
			return nil
		})
	}
	if *all || *tradeoff {
		run("Tradeoff study", func() error {
			rows, err := experiments.Tradeoff(*seed, *nets, 10)
			if err != nil {
				return err
			}
			experiments.PrintTradeoff(os.Stdout, rows, 10)
			return nil
		})
	}
	if *segment != "" {
		run("Segmentation study", func() error {
			spec, ok := circuits.SpecByName(*segment)
			if !ok {
				return fmt.Errorf("unknown circuit %q", *segment)
			}
			rows, err := experiments.Segmentation(*segment, *seed, spec.PaperIKMB+2, *passes)
			if err != nil {
				return err
			}
			experiments.PrintSegmentation(os.Stdout, *segment, rows)
			return nil
		})
	}
	if wantFig(16) {
		run("Figure 16", func() error {
			r, err := experiments.Figure16(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("busc routed at width %d in %d pass(es)\n%s", r.Width, r.Passes, r.ASCII)
			if *svgOut != "" {
				if err := os.WriteFile(*svgOut, []byte(r.SVG), 0o644); err != nil {
					return err
				}
				fmt.Printf("SVG written to %s\n", *svgOut)
			}
			return nil
		})
	}
}
