module fpgarouter

go 1.22
