module fpgarouter

go 1.23
