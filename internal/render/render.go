// Package render draws routed FPGA solutions, reproducing Figure 16's
// routing plot for the busc circuit: an SVG with logic blocks, channel
// wires colored per net, and an ASCII channel-utilization map for
// terminals.
package render

import (
	"fmt"
	"strings"

	"fpgarouter/internal/fpga"
	"fpgarouter/internal/graph"
	"fpgarouter/internal/router"
)

// UtilizationASCII renders a channel-utilization heat map of the committed
// routing: one cell per switch block, with the utilization of the channel
// spans to its right (horizontal) and below (vertical) shown as digits
// (0-9, then letters).
func UtilizationASCII(fab *fpga.Fabric) string {
	util := fab.SpanUtilization()
	digit := func(u int32) byte {
		switch {
		case u < 10:
			return byte('0' + u)
		case u < 36:
			return byte('a' + u - 10)
		default:
			return '#'
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "channel utilization (W = %d): '.' = block, digits = wires used per span\n", fab.W)
	for j := 0; j <= fab.Rows; j++ {
		// Switch block row: horizontal spans.
		for i := 0; i <= fab.Cols; i++ {
			b.WriteByte('+')
			if i < fab.Cols {
				b.WriteByte(digit(util[fab.HSpanIndex(i, j)]))
			}
		}
		b.WriteByte('\n')
		if j == fab.Rows {
			break
		}
		// Block row: vertical spans interleaved with blocks.
		for i := 0; i <= fab.Cols; i++ {
			b.WriteByte(digit(util[fab.VSpanIndex(i, j)]))
			if i < fab.Cols {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// netColor returns a stable, well-spread color for net index i.
func netColor(i int) string {
	hue := (i * 47) % 360
	return fmt.Sprintf("hsl(%d,70%%,45%%)", hue)
}

// SVG renders the routed circuit as an SVG document: gray logic blocks,
// light channel grid, and per-net colored routes (Figure 16 style).
func SVG(fab *fpga.Fabric, res *router.Result) string {
	const cell = 26.0 // pixels between adjacent switch blocks
	const blockPad = 5.0
	width := float64(fab.Cols)*cell + 2*cell
	height := float64(fab.Rows)*cell + 2*cell
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")
	// Logic blocks.
	for y := 0; y < fab.Rows; y++ {
		for x := 0; x < fab.Cols; x++ {
			bx := cell + float64(x)*cell + blockPad
			by := cell + float64(y)*cell + blockPad
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#d8d8d8" stroke="#999" stroke-width="0.5"/>`+"\n",
				bx, by, cell-2*blockPad, cell-2*blockPad)
		}
	}
	// Routed nets: draw each tree edge as a line between its endpoints'
	// plot coordinates.
	for i, nr := range res.Nets {
		color := netColor(i)
		for _, id := range nr.Tree.Edges {
			e := fab.Graph().Edge(id)
			x1, y1, ok1 := plotCoord(fab, e.U, cell)
			x2, y2, ok2 := plotCoord(fab, e.V, cell)
			if !ok1 || !ok2 {
				continue
			}
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1.1"/>`+"\n",
				x1, y1, x2, y2, color)
		}
		// Mark the source pin.
		if len(nr.Tree.Edges) > 0 {
			// Tree edges are over the fabric graph; the source pin node is
			// known from the circuit, but Result stores only trees, so we
			// mark tree endpoints that are pins instead.
			for _, id := range nr.Tree.Edges {
				e := fab.Graph().Edge(id)
				for _, v := range []graph.NodeID{e.U, e.V} {
					if _, isPin := fab.PinOf(v); isPin {
						x, y, _ := plotCoord(fab, v, cell)
						fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="1.6" fill="%s"/>`+"\n", x, y, color)
					}
				}
			}
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// plotCoord maps a routing-graph node to plot coordinates: switch-block
// nodes spread their tracks slightly around the block corner; pins sit on
// their block's side.
func plotCoord(fab *fpga.Fabric, v graph.NodeID, cell float64) (float64, float64, bool) {
	if i, j, t, ok := fab.SBCoords(v); ok {
		off := (float64(t) - float64(fab.W-1)/2) * (cell * 0.55 / float64(fab.W))
		return cell/2 + float64(i)*cell + off, cell/2 + float64(j)*cell + off, true
	}
	if p, ok := fab.PinOf(v); ok {
		bx := cell + float64(p.X)*cell
		by := cell + float64(p.Y)*cell
		frac := (float64(p.Index) + 1) / (float64(fab.PinsPerSide) + 1)
		size := cell - 10
		switch p.Side {
		case fpga.North:
			return bx + frac*size, by - 3, true
		case fpga.South:
			return bx + frac*size, by + size + 3, true
		case fpga.West:
			return bx - 3, by + frac*size, true
		case fpga.East:
			return bx + size + 3, by + frac*size, true
		}
	}
	return 0, 0, false
}
