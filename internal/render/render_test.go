package render

import (
	"strings"
	"testing"

	"fpgarouter/internal/circuits"
	"fpgarouter/internal/fpga"
	"fpgarouter/internal/router"
)

func routedTiny(t *testing.T) (*router.Result, *fpga.Fabric, *circuits.Circuit) {
	t.Helper()
	spec := circuits.Spec{
		Name: "tiny", Series: circuits.Series4000, Cols: 4, Rows: 4,
		Nets2_3: 8, Nets4_10: 2,
	}
	ckt, err := circuits.Synthesize(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, fab, err := router.RouteWithFabric(ckt, 7, router.Options{MaxPasses: 8})
	if err != nil {
		t.Fatal(err)
	}
	return res, fab, ckt
}

func TestUtilizationASCIIShape(t *testing.T) {
	_, fab, _ := routedTiny(t)
	out := UtilizationASCII(fab)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + alternating SB rows (Rows+1) and block rows (Rows).
	want := 1 + (fab.Rows + 1) + fab.Rows
	if len(lines) != want {
		t.Fatalf("lines = %d, want %d\n%s", len(lines), want, out)
	}
	// Every block row must contain the block marker.
	for i := 2; i < len(lines); i += 2 {
		if !strings.Contains(lines[i], ".") {
			t.Fatalf("block row %d missing '.': %q", i, lines[i])
		}
	}
	// Some span must be utilized.
	if !strings.ContainsAny(out, "123456789") {
		t.Fatal("no utilized spans rendered")
	}
}

func TestUtilizationDigitsRespectWidth(t *testing.T) {
	_, fab, _ := routedTiny(t)
	out := UtilizationASCII(fab)
	for _, c := range out {
		if c >= '0' && c <= '9' && int(c-'0') > fab.W {
			t.Fatalf("utilization digit %c exceeds channel width %d", c, fab.W)
		}
	}
}

func TestSVGWellFormed(t *testing.T) {
	res, fab, _ := routedTiny(t)
	svg := SVG(fab, res)
	for _, want := range []string{"<svg", "</svg>", "<rect", "<line", "stroke"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// One gray rect per logic block.
	if got := strings.Count(svg, `fill="#d8d8d8"`); got != fab.Cols*fab.Rows {
		t.Fatalf("blocks rendered = %d, want %d", got, fab.Cols*fab.Rows)
	}
	// Each routed net contributes at least one line.
	lines := strings.Count(svg, "<line")
	if lines == 0 {
		t.Fatal("no routed wires rendered")
	}
}

func TestNetColorsStableAndSpread(t *testing.T) {
	a, b := netColor(0), netColor(1)
	if a == b {
		t.Fatal("adjacent nets share a color")
	}
	if a != netColor(0) {
		t.Fatal("color not stable")
	}
}
