package arbor

import (
	"fmt"
	"sort"

	"fpgarouter/internal/graph"
)

// This file implements the two wirelength/radius trade-off baselines the
// paper positions PFA and IDOM against (Section 2): the bounded-radius
// bounded-cost construction of Cong, Kahng, Robins, Sarrafzadeh and Wong
// (BRBC), and the Prim–Dijkstra trade-off of Alpert, Hu, Huang, Kahng and
// Karger (AHHK). Both interpolate between a minimum spanning tree and a
// shortest-paths tree; neither can produce a shortest-paths tree of
// minimum wirelength, which is exactly the gap the arborescence
// constructions close.

// PrimDijkstra builds a routing tree with the AHHK trade-off parameter
// c ∈ [0, 1]: the tree over the net's distance graph is grown by
// repeatedly attaching the terminal v minimizing
//
//	c·ℓ(u) + dist(u, v)
//
// over tree nodes u, where ℓ(u) is u's pathlength from the source in the
// growing tree. c = 0 degenerates to Prim (an MST over the distance graph,
// KMB-like wirelength), c = 1 to Dijkstra (a shortest-paths star, DJKA-like
// radius). The distance-graph tree is expanded into shortest paths and
// finalized into a tree over the underlying graph.
func PrimDijkstra(cache *graph.SPTCache, net []graph.NodeID, c float64) (graph.Tree, error) {
	if c < 0 || c > 1 {
		return graph.Tree{}, fmt.Errorf("arbor: Prim-Dijkstra parameter c=%v outside [0,1]", c)
	}
	if _, err := checkNet(cache, net); err != nil {
		return graph.Tree{}, err
	}
	if len(net) == 1 {
		return graph.Tree{Edges: []graph.EdgeID{}}, nil
	}
	k := len(net)
	inTree := make([]bool, k)
	pathLen := make([]float64, k) // ℓ(v): pathlength from source in the tree
	bestKey := make([]float64, k)
	bestFrom := make([]int, k)
	for i := range bestKey {
		bestKey[i] = graph.Inf()
		bestFrom[i] = -1
	}
	bestKey[0] = 0
	var union []graph.EdgeID
	for iter := 0; iter < k; iter++ {
		u := -1
		for v := 0; v < k; v++ {
			if !inTree[v] && (u < 0 || bestKey[v] < bestKey[u]) {
				u = v
			}
		}
		if bestKey[u] == graph.Inf() {
			return graph.Tree{}, ErrNoRoute
		}
		inTree[u] = true
		if from := bestFrom[u]; from >= 0 {
			pathLen[u] = pathLen[from] + cache.Dist(net[from], net[u])
			union = append(union, cache.Path(net[from], net[u])...)
		}
		for v := 0; v < k; v++ {
			if inTree[v] {
				continue
			}
			key := c*pathLen[u] + cache.Dist(net[u], net[v])
			if key < bestKey[v] {
				bestKey[v] = key
				bestFrom[v] = u
			}
		}
	}
	return finalize(cache, union, net)
}

// BRBC builds a bounded-radius bounded-cost routing tree with parameter
// eps ≥ 0: the tree's radius is at most (1+eps) times the shortest-path
// radius, and its cost at most (1 + 2/eps) times the distance-graph MST.
// It walks a depth-first tour of the distance-graph MST, accumulating the
// tour length and splicing in a direct shortest path from the source
// whenever the accumulated slack would violate the radius bound (the
// construction of Cong et al., adapted to the net's distance graph).
// eps = 0 yields a shortest-paths star (Dijkstra-like).
func BRBC(cache *graph.SPTCache, net []graph.NodeID, eps float64) (graph.Tree, error) {
	if eps < 0 {
		return graph.Tree{}, fmt.Errorf("arbor: BRBC parameter eps=%v negative", eps)
	}
	src, err := checkNet(cache, net)
	if err != nil {
		return graph.Tree{}, err
	}
	if len(net) == 1 {
		return graph.Tree{Edges: []graph.EdgeID{}}, nil
	}
	k := len(net)

	// Distance-graph MST (Prim), kept as an adjacency list for the tour.
	parent := make([]int, k)
	inTree := make([]bool, k)
	best := make([]float64, k)
	for i := range best {
		best[i] = graph.Inf()
		parent[i] = -1
	}
	best[0] = 0
	adj := make([][]int, k)
	for iter := 0; iter < k; iter++ {
		u := -1
		for v := 0; v < k; v++ {
			if !inTree[v] && (u < 0 || best[v] < best[u]) {
				u = v
			}
		}
		if best[u] == graph.Inf() {
			return graph.Tree{}, ErrNoRoute
		}
		inTree[u] = true
		if parent[u] >= 0 {
			adj[parent[u]] = append(adj[parent[u]], u)
			adj[u] = append(adj[u], parent[u])
		}
		for v := 0; v < k; v++ {
			if !inTree[v] {
				if d := cache.Dist(net[u], net[v]); d < best[v] {
					best[v] = d
					parent[v] = u
				}
			}
		}
	}
	for i := range adj {
		sort.Ints(adj[i]) // deterministic tour
	}

	// Depth-first traversal from the source. Each terminal keeps its MST
	// parent edge while its tree pathlength stays within (1+eps) of its
	// shortest-path radius; otherwise a direct shortest path from the
	// source is spliced in (resetting its pathlength to the radius). This
	// enforces the BRBC radius bound directly; the spliced paths are the
	// construction's extra cost, bounded by the tour-charging argument of
	// Cong et al.
	type edgePick struct{ u, v int }
	var picks []edgePick
	visited := make([]bool, k)
	// treeDist[v]: v's pathlength from the source through the picked edges.
	treeDist := make([]float64, k)
	var dfs func(int)
	dfs = func(u int) {
		visited[u] = true
		for _, v := range adj[u] {
			if visited[v] {
				continue
			}
			radius := src.Dist[net[v]]
			if through := treeDist[u] + cache.Dist(net[u], net[v]); through <= (1+eps)*radius+Eps {
				// Keep the MST edge: the radius bound still holds.
				picks = append(picks, edgePick{u, v})
				treeDist[v] = through
			} else {
				// Splice in a direct shortest path from the source.
				picks = append(picks, edgePick{0, v})
				treeDist[v] = radius
			}
			dfs(v)
		}
	}
	dfs(0)

	var union []graph.EdgeID
	for _, p := range picks {
		union = append(union, cache.Path(net[p.u], net[p.v])...)
	}
	return finalize(cache, union, net)
}

// Radius returns the maximum source-sink tree pathlength of t (the radius
// criterion the trade-off constructions bound).
func Radius(cache *graph.SPTCache, t graph.Tree, net []graph.NodeID) float64 {
	return graph.MaxPathlength(cache.Graph(), t, net[0], net[1:])
}
