package arbor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpgarouter/internal/graph"
)

// intGrid returns a grid graph with integer weights drawn from {1, 2, 3},
// so dominance equalities are exact in floating point.
func intGrid(rng *rand.Rand, w, h int) *graph.GridGraph {
	g := graph.NewGrid(w, h, 1)
	for id := 0; id < g.NumEdges(); id++ {
		g.SetWeight(graph.EdgeID(id), float64(1+rng.Intn(3)))
	}
	return g
}

// Property: the dominance relation (w.r.t. a fixed source) is reflexive
// and transitive, and dominated nodes are never farther from the source.
func TestQuickDominanceIsPreorder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := intGrid(rng, 4+rng.Intn(3), 4+rng.Intn(3))
		c := cacheFor(g.Graph)
		n0 := graph.NodeID(rng.Intn(g.NumNodes()))
		src := c.Tree(n0)
		nodes := make([]graph.NodeID, 6)
		for i := range nodes {
			nodes[i] = graph.NodeID(rng.Intn(g.NumNodes()))
		}
		for _, p := range nodes {
			if !Dominates(c, n0, p, p) {
				return false // reflexivity
			}
			if !Dominates(c, n0, p, n0) {
				return false // everything dominates the source
			}
			for _, s := range nodes {
				if Dominates(c, n0, p, s) && src.Dist[s] > src.Dist[p]+Eps {
					return false // dominated nodes are nearer
				}
				for _, r := range nodes {
					if Dominates(c, n0, p, s) && Dominates(c, n0, s, r) &&
						!Dominates(c, n0, p, r) {
						return false // transitivity
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: MaxDom(p, q) is dominated by both p and q, and no node
// dominated by both lies strictly farther from the source.
func TestQuickMaxDomIsMaximalCommonDominated(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := intGrid(rng, 4+rng.Intn(3), 4+rng.Intn(3))
		c := cacheFor(g.Graph)
		n0 := graph.NodeID(rng.Intn(g.NumNodes()))
		p := graph.NodeID(rng.Intn(g.NumNodes()))
		q := graph.NodeID(rng.Intn(g.NumNodes()))
		m := MaxDom(c, n0, p, q)
		if m == graph.None {
			return false // source always qualifies
		}
		if !Dominates(c, n0, p, m) || !Dominates(c, n0, q, m) {
			return false
		}
		src := c.Tree(n0)
		for v := 0; v < g.NumNodes(); v++ {
			vv := graph.NodeID(v)
			if Dominates(c, n0, p, vv) && Dominates(c, n0, q, vv) &&
				src.Dist[vv] > src.Dist[m]+Eps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// MaxDom of a node with itself is the node.
func TestMaxDomSelf(t *testing.T) {
	g := graph.NewGrid(4, 4, 1)
	c := cacheFor(g.Graph)
	p := g.Node(3, 2)
	if m := MaxDom(c, g.Node(0, 0), p, p); m != p {
		t.Fatalf("MaxDom(p,p) = %d, want %d", m, p)
	}
}
