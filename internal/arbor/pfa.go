package arbor

import (
	"sort"

	"fpgarouter/internal/graph"
)

// pairRec is a cached MaxDom computation for an unordered active pair.
type pairRec struct {
	p, q graph.NodeID
	m    graph.NodeID
	dist float64 // minpath(n0, m)
}

// PFA is the Path-Folding Arborescence heuristic of Section 4.1, the graph
// generalization of the RSA construction of Rao et al.: starting from the
// net, repeatedly replace the pair {p, q} whose MaxDom(p, q) lies farthest
// from the source with that single merge point, then connect every produced
// node to the nearest node it dominates using shortest paths.
//
// The performance ratio is 2 on grid graphs (tight, Figure 11) and Θ(N) in
// the worst case on arbitrary weighted graphs (Figure 10); in practice its
// wirelength is on par with the best Steiner tree heuristics while keeping
// every source-sink path shortest.
func PFA(cache *graph.SPTCache, net []graph.NodeID) (graph.Tree, error) {
	src, err := checkNet(cache, net)
	if err != nil {
		return graph.Tree{}, err
	}
	if len(net) == 1 {
		return graph.Tree{Edges: []graph.EdgeID{}}, nil
	}
	n0 := net[0]

	// M accumulates the nodes to be spanned: the net plus every MaxDom
	// merge point produced during folding.
	inM := make(map[graph.NodeID]bool, 2*len(net))
	M := append([]graph.NodeID(nil), net...)
	for _, v := range net {
		inM[v] = true
	}

	// Active set and the list of cached MaxDom records. Records whose p or
	// q has been deactivated are skipped lazily (the paper keeps an ordered
	// list keyed by decreasing MaxDom distance; a rescan over O(|N|^2)
	// records is equivalent and simpler).
	active := make(map[graph.NodeID]bool, len(net))
	var act []graph.NodeID
	for _, v := range net {
		active[v] = true
		act = append(act, v)
	}
	var recs []pairRec
	for i := 0; i < len(act); i++ {
		for j := i + 1; j < len(act); j++ {
			p, q := act[i], act[j]
			m := MaxDom(cache, n0, p, q)
			recs = append(recs, pairRec{p, q, m, src.Dist[m]})
		}
	}

	nActive := len(act)
	for nActive > 1 {
		// Find the valid record with maximum minpath(n0, m); tie-break by
		// (m, p, q) for determinism.
		best := -1
		for i, r := range recs {
			if !active[r.p] || !active[r.q] {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			b := recs[best]
			if r.dist > b.dist+Eps ||
				(r.dist > b.dist-Eps && (r.m < b.m || (r.m == b.m && (r.p < b.p || (r.p == b.p && r.q < b.q))))) {
				best = i
			}
		}
		if best < 0 {
			break // no valid pair (cannot happen with nActive > 1)
		}
		r := recs[best]
		active[r.p] = false
		active[r.q] = false
		nActive -= 2
		if !inM[r.m] {
			inM[r.m] = true
			M = append(M, r.m)
		}
		if !active[r.m] {
			active[r.m] = true
			nActive++
			// New pairs involving the merge point.
			for _, x := range act {
				if active[x] && x != r.m {
					m := MaxDom(cache, n0, r.m, x)
					recs = append(recs, pairRec{r.m, x, m, src.Dist[m]})
				}
			}
			act = append(act, r.m)
		}
	}

	// Connect each node of M to the nearest node of M that it dominates
	// (grounded at the source via the well-founded order in before).
	var union []graph.EdgeID
	for _, p := range M {
		if p == n0 {
			continue
		}
		s := chooseDominatedParent(cache, src, n0, p, M)
		union = append(union, cache.Tree(s).PathTo(p)...)
	}
	sort.Slice(union, func(i, j int) bool { return union[i] < union[j] })
	return finalize(cache, union, net)
}
