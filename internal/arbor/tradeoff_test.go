package arbor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpgarouter/internal/graph"
)

func TestPrimDijkstraEndpoints(t *testing.T) {
	// At c = 1 the construction behaves like a shortest-paths tree: every
	// sink's tree pathlength equals its graph distance. At c = 0 it is a
	// distance-graph MST (KMB-like): wirelength no worse than c = 1's.
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 15; trial++ {
		g := graph.RandomConnected(rng, 30, 90, 7)
		net := graph.RandomNet(rng, g, 6)
		c := cacheFor(g)
		spt, err := PrimDijkstra(c, net, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyArborescence(c, spt, net); err != nil {
			t.Fatalf("c=1 tree is not an arborescence: %v", err)
		}
		mstLike, err := PrimDijkstra(c, net, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := graph.ValidateTree(g, mstLike, net); err != nil {
			t.Fatal(err)
		}
		if mstLike.Cost > spt.Cost+1e-9 && trial == -1 {
			// Not a hard guarantee per instance; kept as documentation of
			// the expected trend (asserted on aggregate below).
			t.Fatal("unexpected")
		}
	}
}

func TestPrimDijkstraMonotoneTradeoffAggregate(t *testing.T) {
	// Across many instances, average radius decreases and average cost
	// increases as c goes 0 → 1.
	rng := rand.New(rand.NewSource(10))
	cs := []float64{0, 0.5, 1}
	sumCost := make([]float64, len(cs))
	sumRad := make([]float64, len(cs))
	for trial := 0; trial < 25; trial++ {
		g := graph.RandomConnected(rng, 40, 120, 7)
		net := graph.RandomNet(rng, g, 7)
		c := cacheFor(g)
		for i, cv := range cs {
			tr, err := PrimDijkstra(c, net, cv)
			if err != nil {
				t.Fatal(err)
			}
			sumCost[i] += tr.Cost
			sumRad[i] += Radius(c, tr, net)
		}
	}
	if !(sumRad[0] >= sumRad[1] && sumRad[1] >= sumRad[2]) {
		t.Fatalf("radius not decreasing in c: %v", sumRad)
	}
	if sumCost[2] < sumCost[0] {
		t.Fatalf("cost at c=1 below cost at c=0 on aggregate: %v", sumCost)
	}
}

func TestPrimDijkstraRejectsBadParameter(t *testing.T) {
	g := graph.NewGrid(3, 3, 1)
	c := cacheFor(g.Graph)
	if _, err := PrimDijkstra(c, []graph.NodeID{0, 8}, -0.1); err == nil {
		t.Fatal("negative c accepted")
	}
	if _, err := PrimDijkstra(c, []graph.NodeID{0, 8}, 1.5); err == nil {
		t.Fatal("c > 1 accepted")
	}
}

func TestBRBCRadiusBound(t *testing.T) {
	// The defining property: tree radius ≤ (1+eps) × shortest-path radius.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(rng, 30, 90, 7)
		net := graph.RandomNet(rng, g, 2+rng.Intn(6))
		c := cacheFor(g)
		for _, eps := range []float64{0, 0.25, 1, 4} {
			tr, err := BRBC(c, net, eps)
			if err != nil {
				return false
			}
			if graph.ValidateTree(g, tr, net) != nil {
				return false
			}
			src := c.Tree(net[0])
			td := graph.TreeDists(g, tr, net[0])
			for _, s := range net[1:] {
				if td[s] > (1+eps)*src.Dist[s]+1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBRBCZeroEpsIsShortestPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := graph.RandomConnected(rng, 30, 90, 7)
	net := graph.RandomNet(rng, g, 6)
	c := cacheFor(g)
	tr, err := BRBC(c, net, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyArborescence(c, tr, net); err != nil {
		t.Fatalf("eps=0 BRBC not an arborescence: %v", err)
	}
}

func TestBRBCRejectsNegativeEps(t *testing.T) {
	g := graph.NewGrid(3, 3, 1)
	if _, err := BRBC(cacheFor(g.Graph), []graph.NodeID{0, 8}, -1); err == nil {
		t.Fatal("negative eps accepted")
	}
}

// The paper's Section 2 claim: tuned fully toward pathlength, the trade-off
// methods produce plain shortest-paths trees — PFA/IDOM achieve the same
// optimal pathlength with no more (usually less) wirelength.
func TestTradeoffMethodsCannotBeatPFAAtOptimalRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var pdCost, brbcCost, pfaCost float64
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomConnected(rng, 40, 120, 7)
		net := graph.RandomNet(rng, g, 6)
		c := cacheFor(g)
		pd, err := PrimDijkstra(c, net, 1)
		if err != nil {
			t.Fatal(err)
		}
		br, err := BRBC(c, net, 0)
		if err != nil {
			t.Fatal(err)
		}
		pf, err := PFA(c, net)
		if err != nil {
			t.Fatal(err)
		}
		pdCost += pd.Cost
		brbcCost += br.Cost
		pfaCost += pf.Cost
	}
	if pfaCost > pdCost+1e-9 || pfaCost > brbcCost+1e-9 {
		t.Fatalf("PFA aggregate %v should not exceed PD(1) %v or BRBC(0) %v", pfaCost, pdCost, brbcCost)
	}
}
