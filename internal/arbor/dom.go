package arbor

import (
	"sort"

	"fpgarouter/internal/graph"
)

// before reports whether node a precedes node b in the well-founded order
// used to ground arborescence constructions at the source: the source is the
// absolute minimum; other nodes are ordered by (distance from source, node
// ID). Connecting each node only to dominated nodes that precede it makes
// the union of connection paths acyclic even in the presence of zero-weight
// edges (which the worst-case gadgets of Figures 10 and 14 use).
func before(src *graph.SPT, n0, a, b graph.NodeID) bool {
	if a == n0 {
		return b != n0
	}
	if b == n0 {
		return false
	}
	da, db := src.Dist[a], src.Dist[b]
	if da < db-Eps {
		return true
	}
	if db < da-Eps {
		return false
	}
	return a < b
}

// DOM is the spanning-arborescence heuristic of Section 4.2: a restricted
// PFA in which merge points are constrained to net nodes. Each sink is
// connected by a shortest path to the nearest net node it dominates
// (equivalently: a minimum-cost shortest-paths tree over the distance
// graph), and the union is finalized into a shortest-paths tree.
//
// DOM is the base construction iterated by core.IDOM.
func DOM(cache *graph.SPTCache, net []graph.NodeID) (graph.Tree, error) {
	src, err := checkNet(cache, net)
	if err != nil {
		return graph.Tree{}, err
	}
	if len(net) == 1 {
		return graph.Tree{Edges: []graph.EdgeID{}}, nil
	}
	n0 := net[0]
	var union []graph.EdgeID
	for _, ni := range net[1:] {
		parent := chooseDominatedParent(cache, src, n0, ni, net)
		union = append(union, cache.Path(parent, ni)...)
	}
	return finalize(cache, union, net)
}

// chooseDominatedParent returns the member of pool nearest to v (by
// shortest-path distance) that v dominates and that precedes v in the
// grounding order. The source always qualifies, so a parent always exists.
// Distances are read through the cache's symmetric lookup, so evaluating a
// candidate Steiner node v costs no fresh Dijkstra runs.
func chooseDominatedParent(cache *graph.SPTCache, src *graph.SPT, n0, v graph.NodeID, pool []graph.NodeID) graph.NodeID {
	dv := src.Dist[v]
	best := graph.None
	bestD := graph.Inf()
	for _, s := range pool {
		if s == v || !before(src, n0, s, v) {
			continue
		}
		dsv := cache.Dist(s, v)
		if dsv == graph.Inf() {
			continue
		}
		// v dominates s: dist(n0,v) = dist(n0,s) + dist(s,v).
		if ds := src.Dist[s]; ds+dsv > dv+Eps {
			continue
		}
		if dsv < bestD-Eps || (dsv < bestD+Eps && (best == graph.None || before(src, n0, s, best))) {
			bestD = dsv
			best = s
		}
	}
	return best
}

// finalize turns a union of shortest paths into a shortest-paths tree: it
// runs Dijkstra restricted to the union's edges, extracts the tree paths
// from the source to every sink, and keeps only those. Provided the union
// contains a shortest (in G) path to every sink — which the DOM/PFA
// constructions guarantee — the result is an arborescence over G.
//
// The Dijkstra here works on compact local structures sized by the union,
// not by |V(G)|: this is the hot path of every IDOM candidate evaluation.
func finalize(cache *graph.SPTCache, union []graph.EdgeID, net []graph.NodeID) (graph.Tree, error) {
	g := cache.Graph()
	adj := make(map[graph.NodeID][]graph.Arc, 2*len(union))
	dedup := cache.EdgeSet()
	for _, id := range union {
		if !dedup.Add(id) {
			continue
		}
		e := g.Edge(id)
		adj[e.U] = append(adj[e.U], graph.Arc{To: e.V, ID: id})
		adj[e.V] = append(adj[e.V], graph.Arc{To: e.U, ID: id})
	}
	type item struct {
		d float64
		v graph.NodeID
	}
	dist := make(map[graph.NodeID]float64, len(adj))
	parent := make(map[graph.NodeID]graph.EdgeID, len(adj))
	prev := make(map[graph.NodeID]graph.NodeID, len(adj))
	done := make(map[graph.NodeID]bool, len(adj))
	heap := []item{{0, net[0]}}
	dist[net[0]] = 0
	push := func(it item) {
		heap = append(heap, it)
		for i := len(heap) - 1; i > 0; {
			p := (i - 1) / 2
			if heap[p].d <= heap[i].d {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	for len(heap) > 0 {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			l, r, s := 2*i+1, 2*i+2, i
			if l < len(heap) && heap[l].d < heap[s].d {
				s = l
			}
			if r < len(heap) && heap[r].d < heap[s].d {
				s = r
			}
			if s == i {
				break
			}
			heap[i], heap[s] = heap[s], heap[i]
			i = s
		}
		u := top.v
		if done[u] {
			continue
		}
		done[u] = true
		for _, a := range adj[u] {
			if done[a.To] {
				continue
			}
			nd := dist[u] + g.Weight(a.ID)
			if old, ok := dist[a.To]; !ok || nd < old {
				dist[a.To] = nd
				parent[a.To] = a.ID
				prev[a.To] = u
				push(item{nd, a.To})
			}
		}
	}
	// Re-acquiring the pooled edge set here is safe: dedup above is no
	// longer consulted once the local adjacency is built.
	seen := cache.EdgeSet()
	var edges []graph.EdgeID
	for _, sink := range net[1:] {
		if _, ok := dist[sink]; !ok {
			return graph.Tree{}, ErrNoRoute
		}
		for v := sink; v != net[0]; v = prev[v] {
			id := parent[v]
			if !seen.Add(id) {
				break // the rest of the path to the source is shared
			}
			edges = append(edges, id)
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
	return graph.NewTree(g, edges), nil
}
