// Package arbor implements graph Steiner arborescence constructions for
// critical-net routing (Section 4 of Alexander & Robins, DAC 1995): trees in
// which every source-sink path is a shortest path in the underlying graph,
// with total wirelength as the secondary objective.
//
// It provides the dominance relation and MaxDom operator on arbitrary
// weighted graphs, the DJKA baseline (pruned Dijkstra tree), the DOM
// spanning-arborescence construction, and the PFA path-folding heuristic.
// The iterated IDOM construction lives in package core with the other
// iterated algorithms.
package arbor

import (
	"errors"
	"fmt"

	"fpgarouter/internal/graph"
)

// ErrNoRoute is returned when a net's pins are not all reachable from the
// source through enabled edges.
var ErrNoRoute = errors.New("arbor: net pins not connected")

// Eps is the tolerance used when comparing path-length sums; edge weights in
// this repository are small magnitudes, so an absolute epsilon suffices.
const Eps = 1e-9

// Dominates reports whether p dominates s with respect to source n0
// (Definition 4.1): minpath(n0, p) = minpath(n0, s) + minpath(s, p), i.e.
// some shortest path from the source to p passes through s.
func Dominates(cache *graph.SPTCache, n0, p, s graph.NodeID) bool {
	dp := cache.Tree(n0).Dist[p]
	ds := cache.Tree(n0).Dist[s]
	dsp := cache.Dist(s, p)
	if dp == graph.Inf() || ds == graph.Inf() || dsp == graph.Inf() {
		return false
	}
	return dp >= ds+dsp-Eps && dp <= ds+dsp+Eps
}

// MaxDom returns a node m dominated by both p and q that maximizes
// minpath(n0, m), i.e. the farthest point from the source through which
// shortest paths to both p and q can be routed. The source itself is
// dominated by every node, so MaxDom always exists for reachable p, q.
// Ties are broken by smaller node ID for determinism.
func MaxDom(cache *graph.SPTCache, n0, p, q graph.NodeID) graph.NodeID {
	src := cache.Tree(n0)
	dp := cache.Tree(p)
	dq := cache.Tree(q)
	dnp := src.Dist[p]
	dnq := src.Dist[q]
	best := graph.None
	bestDist := -1.0
	n := cache.Graph().NumNodes()
	for v := 0; v < n; v++ {
		dv := src.Dist[v]
		if dv == graph.Inf() {
			continue
		}
		if dv+dp.Dist[v] > dnp+Eps || dv+dq.Dist[v] > dnq+Eps {
			continue // v not dominated by p or by q
		}
		if dv > bestDist+Eps {
			bestDist = dv
			best = graph.NodeID(v)
		}
	}
	return best
}

// checkNet validates the net and returns the source SPT. Like
// steiner.CheckNet it runs once per base-heuristic evaluation (DOM is the
// IDOM candidate scan's inner loop), so the duplicate check uses the
// cache's pooled node set; the range check comes first because the set
// indexes by pin ID.
func checkNet(cache *graph.SPTCache, net []graph.NodeID) (*graph.SPT, error) {
	if len(net) == 0 {
		return nil, errors.New("arbor: empty net")
	}
	n := cache.Graph().NumNodes()
	for _, v := range net {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("arbor: pin %d out of range", v)
		}
	}
	seen := cache.NodeSet()
	for _, v := range net {
		if !seen.Add(v) {
			return nil, fmt.Errorf("arbor: duplicate pin %d", v)
		}
	}
	src := cache.Tree(net[0])
	for _, v := range net[1:] {
		if !src.Reachable(v) {
			return nil, ErrNoRoute
		}
	}
	return src, nil
}

// DJKA is the Dijkstra-based GSA baseline of Section 5: compute a
// shortest-paths tree rooted at the source, then delete edges not contained
// in any source-to-sink path. Pathlengths are optimal by construction; no
// effort is made to share wire between sinks beyond what the SPT happens to
// share.
func DJKA(cache *graph.SPTCache, net []graph.NodeID) (graph.Tree, error) {
	src, err := checkNet(cache, net)
	if err != nil {
		return graph.Tree{}, err
	}
	seen := cache.EdgeSet()
	var edges []graph.EdgeID
	for _, sink := range net[1:] {
		for _, id := range src.PathTo(sink) {
			if seen.Add(id) {
				edges = append(edges, id)
			}
		}
	}
	return graph.NewTree(cache.Graph(), edges), nil
}

// VerifyArborescence checks that tree t spans net, is a tree, and that the
// path in t from the source (net[0]) to every sink has cost equal to the
// shortest-path distance in the cache's graph. It returns the first
// violation found, or nil.
func VerifyArborescence(cache *graph.SPTCache, t graph.Tree, net []graph.NodeID) error {
	g := cache.Graph()
	if err := graph.ValidateTree(g, t, net); err != nil {
		return err
	}
	if len(net) <= 1 {
		return nil
	}
	src := cache.Tree(net[0])
	td := graph.TreeDists(g, t, net[0])
	for _, sink := range net[1:] {
		want := src.Dist[sink]
		got, ok := td[sink]
		if !ok {
			return fmt.Errorf("arbor: sink %d not in tree", sink)
		}
		if got > want+Eps {
			return fmt.Errorf("arbor: sink %d path %.6f exceeds shortest %.6f", sink, got, want)
		}
	}
	return nil
}
