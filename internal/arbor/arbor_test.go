package arbor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpgarouter/internal/graph"
)

func cacheFor(g *graph.Graph) *graph.SPTCache { return graph.NewSPTCache(g) }

func TestDominatesLine(t *testing.T) {
	// 0 -1- 1 -1- 2: node 2 dominates 1 (path 0→2 passes 1), not vice versa.
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	c := cacheFor(g)
	if !Dominates(c, 0, 2, 1) {
		t.Fatal("2 should dominate 1")
	}
	if Dominates(c, 0, 1, 2) {
		t.Fatal("1 should not dominate 2")
	}
	if !Dominates(c, 0, 2, 0) {
		t.Fatal("every node dominates the source")
	}
	if !Dominates(c, 0, 2, 2) {
		t.Fatal("every node dominates itself")
	}
}

func TestDominatesOffPath(t *testing.T) {
	// Diamond: 0-1, 0-2 (unit), 1-3, 2-3 (unit). 3 dominates both 1 and 2;
	// 1 does not dominate 2.
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 1)
	c := cacheFor(g)
	if !Dominates(c, 0, 3, 1) || !Dominates(c, 0, 3, 2) {
		t.Fatal("3 should dominate 1 and 2")
	}
	if Dominates(c, 0, 1, 2) || Dominates(c, 0, 2, 1) {
		t.Fatal("siblings should not dominate each other")
	}
}

func TestMaxDomGrid(t *testing.T) {
	// 3×3 grid, source at (0,0). MaxDom((2,0),(0,2)) is the source;
	// MaxDom((2,1),(1,2)) is (1,1).
	g := graph.NewGrid(3, 3, 1)
	c := cacheFor(g.Graph)
	n0 := g.Node(0, 0)
	if m := MaxDom(c, n0, g.Node(2, 0), g.Node(0, 2)); m != n0 {
		t.Fatalf("MaxDom of perpendicular arms = %d, want source %d", m, n0)
	}
	if m := MaxDom(c, n0, g.Node(2, 1), g.Node(1, 2)); m != g.Node(1, 1) {
		t.Fatalf("MaxDom = %d, want %d", m, g.Node(1, 1))
	}
	// MaxDom of two collinear nodes is the nearer one.
	if m := MaxDom(c, n0, g.Node(2, 0), g.Node(1, 0)); m != g.Node(1, 0) {
		t.Fatalf("collinear MaxDom = %d, want %d", m, g.Node(1, 0))
	}
}

func TestDJKALine(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	c := cacheFor(g)
	net := []graph.NodeID{0, 2}
	tr, err := DJKA(c, net)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Cost != 2 || len(tr.Edges) != 2 {
		t.Fatalf("DJKA line: %+v", tr)
	}
	if err := VerifyArborescence(c, tr, net); err != nil {
		t.Fatal(err)
	}
}

func TestDJKAPrunesOffPathEdges(t *testing.T) {
	// Sinks share a prefix; the SPT contains extra nodes but DJKA keeps
	// only edges on source-sink paths.
	g := graph.NewGrid(4, 4, 1)
	c := cacheFor(g.Graph)
	net := []graph.NodeID{g.Node(0, 0), g.Node(3, 0)}
	tr, err := DJKA(c, net)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Cost != 3 {
		t.Fatalf("cost = %v, want 3", tr.Cost)
	}
}

func TestDJKANoRoute(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	if _, err := DJKA(cacheFor(g), []graph.NodeID{0, 2}); err != ErrNoRoute {
		t.Fatalf("err = %v", err)
	}
}

func TestDOMSharesPaths(t *testing.T) {
	// Source (0,0); sinks (2,2) and (2,1): (2,2) dominates (2,1), so DOM
	// connects (2,2) through (2,1), sharing the prefix.
	g := graph.NewGrid(3, 3, 1)
	c := cacheFor(g.Graph)
	net := []graph.NodeID{g.Node(0, 0), g.Node(2, 2), g.Node(2, 1)}
	tr, err := DOM(c, net)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyArborescence(c, tr, net); err != nil {
		t.Fatal(err)
	}
	if tr.Cost != 4 {
		t.Fatalf("DOM cost = %v, want 4 (shared prefix)", tr.Cost)
	}
}

func TestPFAUsesSteinerMergePoints(t *testing.T) {
	// Source (0,0); sinks (2,1) and (1,2). DOM cannot share (neither sink
	// dominates the other), but PFA merges at MaxDom = (1,1), saving wire.
	g := graph.NewGrid(3, 3, 1)
	c := cacheFor(g.Graph)
	net := []graph.NodeID{g.Node(0, 0), g.Node(2, 1), g.Node(1, 2)}
	pfa, err := PFA(c, net)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyArborescence(c, pfa, net); err != nil {
		t.Fatal(err)
	}
	if pfa.Cost != 4 {
		t.Fatalf("PFA cost = %v, want 4 (merge at (1,1))", pfa.Cost)
	}
	// No net node dominates another here, so DOM falls back to per-sink
	// shortest paths; any sharing it gets is incidental (common SPT
	// prefixes), so it can never beat PFA's explicit merge.
	dom, err := DOM(c, net)
	if err != nil {
		t.Fatal(err)
	}
	if dom.Cost < pfa.Cost {
		t.Fatalf("DOM cost %v beat PFA cost %v", dom.Cost, pfa.Cost)
	}
}

func TestSingleSinkAllAlgorithmsAreShortestPath(t *testing.T) {
	g := graph.NewGrid(5, 5, 1)
	c := cacheFor(g.Graph)
	net := []graph.NodeID{g.Node(0, 0), g.Node(4, 3)}
	for name, alg := range map[string]func(*graph.SPTCache, []graph.NodeID) (graph.Tree, error){
		"DJKA": DJKA, "DOM": DOM, "PFA": PFA,
	} {
		tr, err := alg(c, net)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tr.Cost != 7 {
			t.Fatalf("%s cost = %v, want 7", name, tr.Cost)
		}
	}
}

func TestSinglePinNets(t *testing.T) {
	g := graph.NewGrid(3, 3, 1)
	c := cacheFor(g.Graph)
	for name, alg := range map[string]func(*graph.SPTCache, []graph.NodeID) (graph.Tree, error){
		"DJKA": DJKA, "DOM": DOM, "PFA": PFA,
	} {
		tr, err := alg(c, []graph.NodeID{4})
		if err != nil || len(tr.Edges) != 0 {
			t.Fatalf("%s single pin: %+v %v", name, tr, err)
		}
	}
}

func TestDuplicatePinRejected(t *testing.T) {
	g := graph.NewGrid(3, 3, 1)
	c := cacheFor(g.Graph)
	if _, err := DOM(c, []graph.NodeID{0, 1, 1}); err == nil {
		t.Fatal("duplicate pin accepted")
	}
}

// Property: on random connected graphs all three constructions return
// arborescences (valid trees with optimal source-sink pathlengths), and
// PFA/DOM never use more wire than DJKA... (not guaranteed per-instance;
// only the shortest-path property and validity are universal).
func TestQuickArborescenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		g := graph.RandomConnected(rng, n, n*3, 8)
		k := 2 + rng.Intn(5)
		if k > n {
			k = n
		}
		net := graph.RandomNet(rng, g, k)
		c := cacheFor(g)
		for _, alg := range []func(*graph.SPTCache, []graph.NodeID) (graph.Tree, error){DJKA, DOM, PFA} {
			tr, err := alg(c, net)
			if err != nil {
				return false
			}
			if VerifyArborescence(c, tr, net) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Zero-weight edges are used by the paper's worst-case gadgets; the
// constructions must remain acyclic and grounded.
func TestZeroWeightEdgesSafe(t *testing.T) {
	g := graph.New(6)
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 2, 0)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 4, 0)
	g.AddEdge(4, 5, 1)
	g.AddEdge(0, 5, 2)
	c := cacheFor(g)
	net := []graph.NodeID{0, 3, 5}
	for name, alg := range map[string]func(*graph.SPTCache, []graph.NodeID) (graph.Tree, error){
		"DJKA": DJKA, "DOM": DOM, "PFA": PFA,
	} {
		tr, err := alg(c, net)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := VerifyArborescence(c, tr, net); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
