package faultpoint

import (
	"errors"
	"testing"
	"time"
)

func TestFaultDisarmedIsNoOp(t *testing.T) {
	Reset()
	if err := Hit("anything"); err != nil {
		t.Fatalf("disarmed Hit returned %v", err)
	}
	Check("anything") // must not panic
	if Hits("anything") != 0 || Fired("anything") != 0 {
		t.Fatal("disarmed point accumulated counters")
	}
}

func TestFaultNthSchedule(t *testing.T) {
	t.Cleanup(Reset)
	sentinel := errors.New("injected")
	Arm("p", Plan{Action: Error, Err: sentinel, Nth: 3})
	for i := 1; i <= 5; i++ {
		err := Hit("p")
		if (i == 3) != (err != nil) {
			t.Fatalf("hit %d: err %v", i, err)
		}
		if err != nil && !errors.Is(err, sentinel) {
			t.Fatalf("hit %d: wrong error %v", i, err)
		}
	}
	if Hits("p") != 5 || Fired("p") != 1 {
		t.Fatalf("hits=%d fired=%d, want 5/1", Hits("p"), Fired("p"))
	}
}

func TestFaultEveryWithTimesBudget(t *testing.T) {
	t.Cleanup(Reset)
	Arm("p", Plan{Action: Error, Err: errors.New("x"), Every: 2, Times: 2})
	var fires int
	for i := 0; i < 10; i++ {
		if Hit("p") != nil {
			fires++
		}
	}
	if fires != 2 || Fired("p") != 2 {
		t.Fatalf("fires=%d Fired=%d, want 2/2", fires, Fired("p"))
	}
}

func TestFaultSeededScheduleIsDeterministic(t *testing.T) {
	t.Cleanup(Reset)
	run := func(seed uint64) []bool {
		Arm("p", Plan{Action: Error, Err: errors.New("x"), Prob: 0.3, Seed: seed})
		out := make([]bool, 64)
		for i := range out {
			out[i] = Hit("p") != nil
		}
		return out
	}
	a, b := run(7), run(7)
	other := run(8)
	same, diff := true, false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != other[i] {
			diff = true
		}
	}
	if !same {
		t.Fatal("equal seeds produced different schedules")
	}
	if !diff {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
	var fires int
	for _, f := range a {
		if f {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Fatalf("degenerate seeded schedule: %d/%d fires", fires, len(a))
	}
}

func TestFaultPanicActionAndCheckEscalation(t *testing.T) {
	t.Cleanup(Reset)
	Arm("p", Plan{Action: Panic, Nth: 1})
	func() {
		defer func() {
			inj, ok := recover().(*Injected)
			if !ok || inj.Site != "p" {
				t.Fatalf("recovered %v, want *Injected at p", inj)
			}
		}()
		Check("p")
	}()

	// An Error action at a no-error-return site escalates to a panic that
	// still carries the armed error.
	sentinel := errors.New("escalate me")
	Arm("q", Plan{Action: Error, Err: sentinel, Every: 1})
	func() {
		defer func() {
			inj, ok := recover().(*Injected)
			if !ok || inj.Site != "q" || !errors.Is(inj.Err, sentinel) {
				t.Fatalf("recovered %v, want escalated Injected wrapping sentinel", inj)
			}
		}()
		Check("q")
	}()
}

func TestFaultDelayAction(t *testing.T) {
	t.Cleanup(Reset)
	Arm("p", Plan{Action: Delay, Delay: 20 * time.Millisecond, Nth: 1})
	start := time.Now()
	if err := Hit("p"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delay action slept only %v", d)
	}
}

func TestFaultDisarmLeavesOthersArmed(t *testing.T) {
	t.Cleanup(Reset)
	Arm("a", Plan{Action: Error, Err: errors.New("a"), Every: 1})
	Arm("b", Plan{Action: Error, Err: errors.New("b"), Every: 1})
	Disarm("a")
	if Hit("a") != nil {
		t.Fatal("disarmed point still fires")
	}
	if Hit("b") == nil {
		t.Fatal("unrelated point was disarmed")
	}
}
