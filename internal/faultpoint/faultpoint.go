// Package faultpoint is the router's deterministic fault-injection
// harness: named fault points compiled into the hot paths (SSSP expansion,
// candidate-scan workers, pass boundaries, the service worker loop) that
// cost one atomic load when disarmed and, in tests, can be armed to panic,
// inject an error, or delay on a chosen schedule of hits.
//
// Production never arms anything: the process-wide registry pointer stays
// nil and every Hit/Check call is a nil-check that returns immediately. A
// test arms a site with Arm (typically deferring Reset via t.Cleanup),
// drives the system, and asserts it degrades the way the fault-tolerance
// layer promises — the chaos suites in internal/service and internal/core
// are the intended consumers.
//
// Schedules are deterministic: a plan fires on the Nth hit, on every
// Every-th hit, or pseudo-randomly per hit from a seeded splitmix64
// sequence over the hit index — never from global randomness — so a failing
// chaos run replays exactly.
package faultpoint

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Site names compiled into the hot paths. Each constant documents where the
// point sits and which actions the site supports; sites without an error
// return escalate an armed Error action to a panic (see Check).
const (
	// SSSPExpand fires at the start of every Dijkstra execution
	// (graph.dijkstraWith). Panic/Delay only.
	SSSPExpand = "graph/sssp-expand"
	// ScanWorker fires before each candidate evaluation inside a parallel
	// candidate-scan worker goroutine (core/scan.go). Panic/Delay only; a
	// panic here exercises the worker→caller panic funnel.
	ScanWorker = "core/scan-worker"
	// PassBoundary fires at the top of every rip-up/re-route pass
	// (router.routeOnFabric). All actions; an injected error surfaces from
	// Route with the best partial result so far.
	PassBoundary = "router/pass-boundary"
	// ServiceWorker fires at the top of every job attempt on a service
	// worker (internal/service). All actions; an injected error is
	// classified by the service's retry policy.
	ServiceWorker = "service/worker-loop"
	// PathfinderWorker fires before each net a pathfinder iteration worker
	// routes (internal/pathfinder). All actions; an injected error aborts
	// the route deterministically (lowest net index wins), a panic
	// exercises the worker→caller panic funnel.
	PathfinderWorker = "pathfinder/net-worker"
	// JournalAppend fires before each record is framed and written to the
	// write-ahead journal (internal/journal). An injected error simulates a
	// full or failing disk: the journal degrades to read-only and the
	// service keeps running in-memory (chaos suite).
	JournalAppend = "journal/append"
	// JournalFsync fires before the fsync that seals an appended journal
	// record. An injected error exercises the same read-only degradation
	// after the data was written but not durably flushed.
	JournalFsync = "journal/fsync"
)

// Action selects what an armed point does when its schedule fires.
type Action int

const (
	// Panic raises panic(&Injected{Site: name}).
	Panic Action = iota
	// Error returns Plan.Err from Hit (sites without an error return
	// escalate to a panic via Check).
	Error
	// Delay sleeps Plan.Delay, then continues normally.
	Delay
)

// Plan describes when an armed point fires and what it does. Exactly one of
// Nth, Every, or Prob should be set; a zero plan never fires.
type Plan struct {
	Action Action
	// Err is the error injected by Action Error (required for that action).
	Err error
	// Delay is the sleep injected by Action Delay.
	Delay time.Duration

	// Nth fires on exactly the Nth hit of the point (1-based).
	Nth int64
	// Every fires on every Every-th hit (hit numbers Every, 2·Every, …).
	Every int64
	// Prob fires on each hit with this probability, decided by a
	// deterministic splitmix64 stream over (Seed, hit number).
	Prob float64
	// Seed seeds the Prob stream; two runs with equal seeds fire on the
	// same hit numbers.
	Seed uint64
	// Times caps the total number of fires (0 = unlimited).
	Times int64
}

// fires reports whether the plan triggers on 1-based hit number n.
func (p Plan) fires(n int64) bool {
	switch {
	case p.Nth > 0:
		return n == p.Nth
	case p.Every > 0:
		return n%p.Every == 0
	case p.Prob > 0:
		return unitFloat(splitmix64(p.Seed+uint64(n))) < p.Prob
	}
	return false
}

// point is one armed site: its plan plus hit/fire accounting.
type point struct {
	plan  Plan
	hits  atomic.Int64
	fired atomic.Int64
}

// registry holds every armed point. The whole registry is swapped
// atomically so the disarmed fast path is a single pointer load.
type registry struct {
	mu     sync.RWMutex
	points map[string]*point
}

var active atomic.Pointer[registry]

// Injected is the value raised by an armed Panic action (and by Check when
// an Error action fires at a site that cannot propagate errors).
type Injected struct {
	Site string
	Err  error // non-nil only when escalated from an Error action
}

func (i *Injected) Error() string {
	if i.Err != nil {
		return fmt.Sprintf("faultpoint: injected at %s: %v", i.Site, i.Err)
	}
	return fmt.Sprintf("faultpoint: injected panic at %s", i.Site)
}

// GoroutinePanic carries a panic recovered on a helper goroutine (a
// candidate-scan worker, a width probe) to the goroutine that owns the
// work, where it is re-raised. Stack is the helper goroutine's stack at the
// original panic site, which the re-raise would otherwise lose; the
// service's panic isolation surfaces it on failed jobs.
type GoroutinePanic struct {
	Value any
	Stack []byte
}

func (g *GoroutinePanic) String() string {
	return fmt.Sprintf("panic on helper goroutine: %v", g.Value)
}

// Arm installs (or replaces) the plan for a named site, creating the
// registry if this is the first armed point. Tests pair it with a deferred
// Reset.
func Arm(name string, p Plan) {
	r := active.Load()
	if r == nil {
		r = &registry{points: make(map[string]*point)}
		if !active.CompareAndSwap(nil, r) {
			r = active.Load()
		}
	}
	r.mu.Lock()
	r.points[name] = &point{plan: p}
	r.mu.Unlock()
}

// Disarm removes one site's plan, leaving other armed points in place.
func Disarm(name string) {
	if r := active.Load(); r != nil {
		r.mu.Lock()
		delete(r.points, name)
		r.mu.Unlock()
	}
}

// Reset disarms every point and restores the production nil registry.
func Reset() { active.Store(nil) }

// Hits returns how many times the named point was evaluated since it was
// armed (0 if not armed).
func Hits(name string) int64 {
	if pt := find(name); pt != nil {
		return pt.hits.Load()
	}
	return 0
}

// Fired returns how many times the named point actually triggered its
// action (0 if not armed).
func Fired(name string) int64 {
	if pt := find(name); pt != nil {
		return pt.fired.Load()
	}
	return 0
}

func find(name string) *point {
	r := active.Load()
	if r == nil {
		return nil
	}
	r.mu.RLock()
	pt := r.points[name]
	r.mu.RUnlock()
	return pt
}

// Hit evaluates the named fault point: nil when disarmed or when the
// schedule does not fire, the armed error for an Error action, and it does
// not return at all for a Panic action. This is the form for sites that can
// propagate an error; sites that cannot should call Check.
func Hit(name string) error {
	r := active.Load()
	if r == nil {
		return nil // production fast path: one atomic load
	}
	r.mu.RLock()
	pt := r.points[name]
	r.mu.RUnlock()
	if pt == nil {
		return nil
	}
	n := pt.hits.Add(1)
	if !pt.plan.fires(n) {
		return nil
	}
	if pt.plan.Times > 0 {
		if f := pt.fired.Add(1); f > pt.plan.Times {
			pt.fired.Add(-1) // budget exhausted: this hit does not fire
			return nil
		}
	} else {
		pt.fired.Add(1)
	}
	switch pt.plan.Action {
	case Panic:
		panic(&Injected{Site: name})
	case Delay:
		time.Sleep(pt.plan.Delay)
		return nil
	default:
		return pt.plan.Err
	}
}

// Check is Hit for sites without an error return (SSSP expansion, scan
// workers): an armed Error action escalates to panic(&Injected) rather than
// being silently dropped.
func Check(name string) {
	if err := Hit(name); err != nil {
		panic(&Injected{Site: name, Err: err})
	}
}

// splitmix64 is the SplitMix64 mixing function: a tiny, well-distributed
// hash from a counter to 64 pseudo-random bits.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unitFloat maps 64 random bits to a float64 in [0, 1).
func unitFloat(x uint64) float64 {
	return float64(x>>11) / float64(uint64(1)<<53)
}
