// Package delay estimates signal propagation delay through routed trees
// with the distributed-RC (Elmore) model. The paper motivates its
// arborescence constructions by signal delay — "we may wish to reduce
// signal propagation delay through critical paths by using the most direct
// interconnections" — and notes the constructions "can be easily tuned to
// the specific parasitics of the underlying technology"; this package
// provides that evaluation layer: given any routing tree over a weighted
// graph, it computes per-sink Elmore delays from technology parameters.
package delay

import (
	"errors"
	"fmt"

	"fpgarouter/internal/graph"
)

// Params are lumped technology parasitics. Each routing-graph edge of
// length L contributes resistance RUnit·L + RSwitch and capacitance
// CUnit·L + CSwitch (the switch terms model the programmable switch
// crossed when a route uses the edge); the source drives the tree through
// RDriver, and each net sink adds CSink of load.
type Params struct {
	RUnit   float64 // resistance per unit wirelength
	CUnit   float64 // capacitance per unit wirelength
	RSwitch float64 // resistance of one programmable switch
	CSwitch float64 // capacitance of one programmable switch
	RDriver float64 // source driver output resistance
	CSink   float64 // input capacitance of a sink pin
}

// Xilinx4000Like returns parasitics of plausible mid-90s antifuse/SRAM
// FPGA magnitude (normalized units): switch resistance dominates wire
// resistance, which is why minimizing both pathlength (switches crossed)
// and wirelength matters.
func Xilinx4000Like() Params {
	return Params{RUnit: 1, CUnit: 1, RSwitch: 8, CSwitch: 0.5, RDriver: 4, CSink: 2}
}

// ErrNotSpanned is returned when a requested sink is not in the tree.
var ErrNotSpanned = errors.New("delay: sink not spanned by tree")

// Elmore computes the Elmore delay from net[0] to every sink of the net
// through tree t, which must span the net, interpreting each edge's graph
// weight as its wirelength. It returns per-sink delays (indexed like
// net[1:]) and the maximum.
//
// Routed FPGA trees carry congestion in their live edge weights; for those,
// use ElmoreFunc with the fabric's base wirelength accessor instead.
func Elmore(g *graph.Graph, t graph.Tree, net []graph.NodeID, p Params) ([]float64, float64, error) {
	return ElmoreFunc(g, t, net, p, func(id graph.EdgeID) float64 { return g.Weight(id) })
}

// ElmoreFunc is Elmore with an explicit edge-length accessor.
func ElmoreFunc(g *graph.Graph, t graph.Tree, net []graph.NodeID, p Params, lenOf func(graph.EdgeID) float64) ([]float64, float64, error) {
	if len(net) == 0 {
		return nil, 0, errors.New("delay: empty net")
	}
	src := net[0]
	// Tree adjacency.
	adj := make(map[graph.NodeID][]graph.Arc, 2*len(t.Edges))
	for _, id := range t.Edges {
		e := g.Edge(id)
		adj[e.U] = append(adj[e.U], graph.Arc{To: e.V, ID: id})
		adj[e.V] = append(adj[e.V], graph.Arc{To: e.U, ID: id})
	}
	isSink := make(map[graph.NodeID]bool, len(net)-1)
	for _, s := range net[1:] {
		isSink[s] = true
	}

	// Root the tree at the source (iterative DFS), recording parents in
	// visit order so subtree capacitances can be accumulated bottom-up.
	type frame struct {
		node   graph.NodeID
		parent graph.NodeID
		edge   graph.EdgeID
	}
	order := make([]frame, 0, len(adj))
	stack := []frame{{src, graph.None, graph.None}}
	seen := map[graph.NodeID]bool{src: true}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, f)
		for _, a := range adj[f.node] {
			if !seen[a.To] {
				seen[a.To] = true
				stack = append(stack, frame{a.To, f.node, a.ID})
			}
		}
	}
	for _, s := range net[1:] {
		if !seen[s] {
			return nil, 0, fmt.Errorf("%w: sink %d", ErrNotSpanned, s)
		}
	}

	// Bottom-up: subtree capacitance below each node (node's own sink load
	// plus, for non-root nodes, the capacitance of the edge to the parent
	// is accounted at delay time).
	subC := make(map[graph.NodeID]float64, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		f := order[i]
		c := 0.0
		if isSink[f.node] {
			c += p.CSink
		}
		for _, a := range adj[f.node] {
			if a.To != f.parent && seen[a.To] {
				// Child subtree plus the connecting edge's capacitance.
				c += subC[a.To] + p.CUnit*lenOf(a.ID) + p.CSwitch
			}
		}
		subC[f.node] = c
	}

	// Top-down: Elmore delay. The driver charges the whole tree; each edge
	// adds R_edge × (half its own C + everything below it).
	delays := make(map[graph.NodeID]float64, len(order))
	totalC := subC[src]
	delays[src] = p.RDriver * totalC
	for _, f := range order[1:] {
		l := lenOf(f.edge)
		rEdge := p.RUnit*l + p.RSwitch
		cEdge := p.CUnit*l + p.CSwitch
		delays[f.node] = delays[f.parent] + rEdge*(cEdge/2+subC[f.node])
	}

	out := make([]float64, len(net)-1)
	maxd := 0.0
	for i, s := range net[1:] {
		out[i] = delays[s]
		if out[i] > maxd {
			maxd = out[i]
		}
	}
	return out, maxd, nil
}

// CriticalSink returns the index (into net[1:]) and delay of the slowest
// sink of the routed tree.
func CriticalSink(g *graph.Graph, t graph.Tree, net []graph.NodeID, p Params) (int, float64, error) {
	d, _, err := Elmore(g, t, net, p)
	if err != nil {
		return 0, 0, err
	}
	best, bd := 0, 0.0
	for i, v := range d {
		if v > bd {
			best, bd = i, v
		}
	}
	return best, bd, nil
}
