package delay

import (
	"math"
	"math/rand"
	"testing"

	"fpgarouter/internal/arbor"
	"fpgarouter/internal/congest"
	"fpgarouter/internal/core"
	"fpgarouter/internal/graph"
)

func TestElmoreSingleWireClosedForm(t *testing.T) {
	// One edge src--sink of length 3: the delay follows directly from the
	// π-model formula.
	g := graph.New(2)
	g.AddEdge(0, 1, 3)
	tr := graph.NewTree(g, []graph.EdgeID{0})
	p := Params{RUnit: 2, CUnit: 1, RSwitch: 5, CSwitch: 0.5, RDriver: 4, CSink: 2}
	d, maxd, err := Elmore(g, tr, []graph.NodeID{0, 1}, p)
	if err != nil {
		t.Fatal(err)
	}
	cEdge := p.CUnit*3 + p.CSwitch // 3.5
	rEdge := p.RUnit*3 + p.RSwitch // 11
	want := p.RDriver*(cEdge+p.CSink) + rEdge*(cEdge/2+p.CSink)
	if math.Abs(d[0]-want) > 1e-9 || math.Abs(maxd-want) > 1e-9 {
		t.Fatalf("delay = %v, want %v", d[0], want)
	}
}

func TestElmoreMonotoneInPathLength(t *testing.T) {
	// On a chain, farther sinks see strictly larger delay.
	g := graph.New(5)
	var edges []graph.EdgeID
	for i := 0; i < 4; i++ {
		edges = append(edges, g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1))
	}
	tr := graph.NewTree(g, edges)
	net := []graph.NodeID{0, 1, 2, 3, 4}
	d, _, err := Elmore(g, tr, net, Xilinx4000Like())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(d); i++ {
		if d[i] <= d[i-1] {
			t.Fatalf("delay not increasing along chain: %v", d)
		}
	}
}

func TestElmoreSharedTrunkCouplesSinks(t *testing.T) {
	// A Y tree: adding load on one branch raises the delay of the other
	// (through the shared trunk) — the distributed-RC behaviour a pure
	// pathlength metric misses.
	build := func(extraLoad bool) float64 {
		g := graph.New(5)
		e01 := g.AddEdge(0, 1, 2)
		e12 := g.AddEdge(1, 2, 2)
		e13 := g.AddEdge(1, 3, 2)
		edges := []graph.EdgeID{e01, e12, e13}
		net := []graph.NodeID{0, 2, 3}
		if extraLoad {
			e34 := g.AddEdge(3, 4, 4)
			edges = append(edges, e34)
			net = append(net, 4)
		}
		tr := graph.NewTree(g, edges)
		d, _, err := Elmore(g, tr, net, Xilinx4000Like())
		if err != nil {
			t.Fatal(err)
		}
		return d[0] // delay of sink 2, same position in both variants
	}
	if light, heavy := build(false), build(true); heavy <= light {
		t.Fatalf("extra branch load did not increase sibling delay: %v vs %v", light, heavy)
	}
}

func TestElmoreUnspannedSink(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	tr := graph.NewTree(g, []graph.EdgeID{0})
	if _, _, err := Elmore(g, tr, []graph.NodeID{0, 2}, Xilinx4000Like()); err == nil {
		t.Fatal("unspanned sink accepted")
	}
}

func TestCriticalSink(t *testing.T) {
	g := graph.New(4)
	e01 := g.AddEdge(0, 1, 1)
	e12 := g.AddEdge(1, 2, 1)
	e13 := g.AddEdge(1, 3, 10)
	tr := graph.NewTree(g, []graph.EdgeID{e01, e12, e13})
	idx, d, err := CriticalSink(g, tr, []graph.NodeID{0, 2, 3}, Xilinx4000Like())
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 || d <= 0 {
		t.Fatalf("critical sink = %d (%v), want 1 (the distant sink)", idx, d)
	}
}

// Aggregate: arborescence routing (IDOM) yields lower maximum Elmore delay
// than pure wirelength routing (IKMB) on congested grids — the performance
// claim that motivates the paper.
func TestArborescencesReduceElmoreDelayAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := Xilinx4000Like()
	var ikmbSum, idomSum float64
	for trial := 0; trial < 12; trial++ {
		g, err := congest.NewCongestedGrid(rng, 15)
		if err != nil {
			t.Fatal(err)
		}
		net := graph.RandomNet(rng, g.Graph, 6)
		cache := graph.NewSPTCache(g.Graph)
		ikmb, err := core.IKMB(cache, net)
		if err != nil {
			t.Fatal(err)
		}
		idom, err := core.IDOM(cache, net)
		if err != nil {
			t.Fatal(err)
		}
		if err := arbor.VerifyArborescence(cache, idom, net); err != nil {
			t.Fatal(err)
		}
		_, di, err := Elmore(g.Graph, ikmb, net, p)
		if err != nil {
			t.Fatal(err)
		}
		_, dd, err := Elmore(g.Graph, idom, net, p)
		if err != nil {
			t.Fatal(err)
		}
		ikmbSum += di
		idomSum += dd
	}
	if idomSum >= ikmbSum {
		t.Fatalf("IDOM aggregate max delay %v not below IKMB %v", idomSum, ikmbSum)
	}
}
