package pathfinder

import (
	"testing"
)

// benchRouteBusc times a full converged pathfinder run on busc at the
// paper's width. The Full/Incremental pair isolates partial rip-up: both
// converge from the same starting point, so their ns_per_op ratio (and the
// edges_ripped contrast in the bench-json provenance) is the incremental
// saving.
func benchRouteBusc(b *testing.B, incremental bool) {
	spec := specNamed(b, "busc")
	fab, ckt := synth(b, spec, spec.PaperIKMB)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Route(fab, ckt.Nets, Config{Incremental: incremental})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged {
			b.Fatal("no convergence at the paper width")
		}
	}
}

func BenchmarkRouteBuscFull(b *testing.B)        { benchRouteBusc(b, false) }
func BenchmarkRouteBuscIncremental(b *testing.B) { benchRouteBusc(b, true) }

// TestRouteAllocsBounded pins the per-run pooling: workers, overlays and
// reconnect buffers are acquired once per run and reused by every
// iteration, so a whole incremental route allocates a bounded amount —
// dominated by the per-run engine arrays and the per-net trees, not by
// anything per-iteration. The threshold is ~2× the measured steady-state
// count (term1 at the paper width, sequential workers), so it only fires on
// a structural regression such as re-acquiring scratch or overlays inside
// the iteration loop.
func TestRouteAllocsBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is a long-mode check")
	}
	spec := specNamed(t, "term1")
	fab, ckt := synth(t, spec, spec.PaperIKMB)
	// Warm the shared scratch pool so the measurement sees steady state.
	if _, err := Route(fab, ckt.Nets, Config{Workers: 1, Incremental: true}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		res, err := Route(fab, ckt.Nets, Config{Workers: 1, Incremental: true})
		if err != nil || !res.Converged {
			t.Fatalf("route failed: %v (converged=%v)", err, res != nil && res.Converged)
		}
	})
	const limit = 2000000
	if allocs > limit {
		t.Fatalf("incremental route allocated %.0f objects, limit %d — per-iteration state is no longer pooled", allocs, limit)
	}
}
