// Package pathfinder is the net-parallel negotiated-congestion router: all
// nets of a circuit are routed concurrently against a frozen routing graph
// under soft congestion prices (PathFinder history costs maintained as
// Lagrange multipliers), instead of one at a time on a mutating fabric.
//
// Each iteration (a) routes every contested net independently — workers
// share nothing but the read-only CSR graph and an immutable price array,
// each searching under its own graph.Overlay — (b) reduces per-resource
// usage over all trees in fixed net order, and (c) raises history prices by
// sub-gradient steps on overcapacity resources. Iteration stops at zero
// overflow (every capacity-one wire and jog is used by at most one net, so
// the trees commit as electrically disjoint routes) or at the iteration
// budget, whichever comes first.
//
// Per-edge effective weight during iteration k is
//
//	base + hist[res(e)] + presFac_k·usage[res(e)] − ownShare + jitter
//
// where hist accumulates HistStep·(usage−1) on every overflowed resource
// (monotone non-decreasing — the Lagrangian multiplier), the present-
// sharing term prices last iteration's usage with a geometrically growing
// presFac, ownShare removes the net's own contribution so an uncontested
// net keeps its tree, and jitter is a deterministic per-(net, edge)
// tie-break of relative size JitterEps that stops symmetric nets from
// ping-ponging between equal-cost alternatives in lockstep.
//
// Determinism contract: a net's route is a pure function of the frozen
// graph, the iteration's shared prices, the net's own previous tree, and
// the net's identity — never of goroutine scheduling. Workers copy the
// shared prices into a private overlay once per iteration and restore the
// entries they perturb after every net; the reduce walks nets in index
// order using integer usage counts. Results are therefore bit-identical
// for a fixed Config.Seed across every Workers setting (asserted under
// -race by the router's pathfinder parity suite).
package pathfinder

import (
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"fpgarouter/internal/circuits"
	"fpgarouter/internal/core"
	"fpgarouter/internal/faultpoint"
	"fpgarouter/internal/fpga"
	"fpgarouter/internal/graph"
	"fpgarouter/internal/stats"
	"fpgarouter/internal/steiner"
)

// Algorithm names accepted by Config.Algorithm. The pathfinder routes each
// net with a Steiner construction that reads every edge weight through the
// worker's overlay; only the cache-mediated constructions qualify.
const (
	AlgKMB  = "kmb"
	AlgIKMB = "ikmb"
)

// maxWorkers caps the default net-routing fan-out.
const maxWorkers = 8

// Config parameterizes a pathfinder run. The zero value is completed by
// defaults: IKMB, GOMAXPROCS workers (capped at 8), 96 iterations,
// HistStep 0.4, PresFac 1 growing ×2 per iteration capped at 16, jitter 1e-3.
type Config struct {
	// Algorithm selects the per-net construction (AlgIKMB default, AlgKMB).
	Algorithm string
	// Workers bounds the net-routing goroutines. 0 selects the default
	// (GOMAXPROCS capped at 8); values below 1 force sequential routing.
	// Results are bit-identical at every setting.
	Workers int
	// MaxIters is the iteration budget before giving up (default 96).
	MaxIters int
	// BBoxMargin widens each net's Steiner-candidate bounding box.
	BBoxMargin int
	// MaxPool caps each net's candidate pool (0 = unlimited).
	MaxPool int
	// SingleStep forces one-candidate-per-round admission in IKMB.
	SingleStep bool
	// Lazy enables the lazy-greedy candidate scan inside IKMB.
	Lazy bool
	// HistStep is the sub-gradient step: every iteration adds
	// HistStep·(usage−1) to each overflowed resource's history price.
	HistStep float64
	// PresFac is the first priced iteration's present-sharing factor.
	PresFac float64
	// PresMult grows PresFac geometrically per iteration.
	PresMult float64
	// PresMax caps the present factor (default 16): unbounded growth would
	// eventually dwarf the base geometry and the jitter (which scales with
	// the present factor) would randomize late-iteration routes. Once the
	// cap is reached the monotone history prices carry the pressure.
	PresMax float64
	// SeqBelow is the Gauss-Seidel cutover: once the contested set is at
	// most SeqBelow nets, iterations route it sequentially in net-index
	// order against LIVE usage pricing instead of fanning out against
	// frozen prices. Frozen-price (Jacobi) iterations resolve small
	// standoffs slowly — two nets sharing one wire each gain only
	// HistStep of pressure per iteration — while the sequential pass
	// settles them immediately: the first net keeps the resource at its
	// now-unshared price, the second sees the full present penalty and
	// detours. The cutover depends only on the contested count, so
	// results stay worker-count invariant (default 8; negative disables).
	SeqBelow int
	// SeqAfter bounds the frozen-price (Jacobi) phase: past this iteration
	// every contested set is routed sequentially, whatever its size. Jacobi
	// fan-out collapses congestion fast while the contested set is large,
	// but on the hardest instances it plateaus — rival nets keep swapping
	// between the same wires under prices that only move between
	// iterations — and the live-priced Gauss-Seidel pass is what actually
	// finishes the negotiation. The trigger depends only on the iteration
	// number, so results stay worker-count invariant (default 48; negative
	// disables the escalation).
	SeqAfter int
	// JitterEps scales the deterministic per-(net, edge) tie-break noise,
	// relative to the current present factor. 0 selects the default (1e-3);
	// negative disables jitter.
	JitterEps float64
	// Incremental enables partial rip-up-and-reroute in the frozen-price
	// (Jacobi) iterations: a contested net keeps the fragment of its
	// previous tree that touches no overflowed resource and reconnects its
	// orphaned pins by multi-source search seeded from the fragment, while
	// reduce and reprice run as deltas over only the changed state (see
	// incremental.go). The Gauss-Seidel endgame still reroutes in full —
	// its live pricing is what settles the last standoffs. Determinism is
	// unchanged: results stay bit-identical across Workers settings.
	Incremental bool
	// Seed seeds the jitter hash; fixed seed ⇒ bit-identical results.
	Seed uint64
	// Stats receives iteration and per-net counters when non-nil.
	Stats *stats.Collector
	// Cancel, when non-nil, is polled at iteration boundaries; a non-nil
	// return aborts the run with that error and a partial Result.
	Cancel func() error
	// CheckpointFn, when non-nil, receives a serializable snapshot of the
	// run at iteration boundaries chosen by CheckpointEvery and
	// CheckpointPeriod. Emission never perturbs the run: results with and
	// without checkpointing are bit-identical. The callback runs on the
	// engine's goroutine; it should not block for long.
	CheckpointFn func(*Checkpoint)
	// CheckpointEvery emits a checkpoint every Nth iteration, counted in
	// absolute iteration numbers so a resumed run keeps the original
	// cadence (0 disables the iteration trigger).
	CheckpointEvery int
	// CheckpointPeriod emits a checkpoint when this much wall-clock time
	// passed since the last one, evaluated at iteration boundaries
	// (0 disables the time trigger).
	CheckpointPeriod time.Duration
	// Resume restarts a run from a prior Checkpoint instead of iteration 1.
	// The circuit, fabric, and deterministic Config knobs must match the
	// checkpointed run (guarded fields are validated; an incompatible
	// checkpoint fails the run). The resumed run's Result is bit-identical
	// to the uninterrupted run's.
	Resume *Checkpoint
	// hooks lets in-package tests observe the engine after each reprice and
	// reduce — the incremental-vs-full parity suite. Always nil in
	// production.
	hooks *debugHooks
}

func (c Config) withDefaults() Config {
	if c.Algorithm == "" {
		c.Algorithm = AlgIKMB
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers > maxWorkers {
			c.Workers = maxWorkers
		}
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.MaxIters <= 0 {
		c.MaxIters = 96
	}
	if c.HistStep == 0 {
		c.HistStep = 0.4
	}
	if c.PresFac == 0 {
		c.PresFac = 1
	}
	if c.PresMult == 0 {
		c.PresMult = 2
	}
	if c.PresMax == 0 {
		c.PresMax = 16
	}
	switch {
	case c.SeqBelow == 0:
		c.SeqBelow = 8
	case c.SeqBelow < 0:
		c.SeqBelow = 0
	}
	switch {
	case c.SeqAfter == 0:
		c.SeqAfter = 48
	case c.SeqAfter < 0:
		c.SeqAfter = math.MaxInt
	}
	switch {
	case c.JitterEps == 0:
		c.JitterEps = 1e-3
	case c.JitterEps < 0:
		c.JitterEps = 0
	}
	return c
}

// IterStat records one iteration's outcome for convergence analysis (and
// the monotonicity tests: HistSum never decreases across a run).
type IterStat struct {
	Rerouted     int     // nets routed this iteration
	Overflow     int     // resources over capacity after the reduce
	PriceUpdates int     // history prices raised by the sub-gradient step
	HistSum      float64 // total history price after the update
}

// Result is the outcome of a pathfinder run. Trees is indexed by net;
// with Converged the trees are mutually resource-disjoint and commit
// cleanly. Without it, FailedNets lists the nets still touching an
// overcapacity resource — the remaining nets are provably disjoint (a
// resource used by two nets is overflowed, putting both nets in the failed
// set), so a partial commit of the rest is always valid.
type Result struct {
	Trees      []graph.Tree
	Iterations int
	Converged  bool
	Overflow   int   // overflowed resources after the final iteration
	FailedNets []int // net indices without a committable tree
	NetRoutes  int64 // total per-net route executions across iterations
	History    []IterStat
	// Rip-up accounting (summed over iterations ≥ 2, where a previous tree
	// exists): EdgesRipped counts previous-tree edges discarded before
	// rerouting, EdgesRetained the edges kept by partial rip-up, and
	// IncrementalReroutes the nets that reconnected from a retained
	// fragment instead of rebuilding. Full-reroute mode rips everything, so
	// it reports EdgesRipped with zero retained.
	EdgesRipped         int64
	EdgesRetained       int64
	IncrementalReroutes int64
}

// engine holds one run's precomputed fabric facts and shared iteration
// state. Shared slices are read-only while workers run; workers write only
// trees (disjoint indices) and their own private state.
type engine struct {
	cfg  Config
	fab  *fpga.Fabric
	g    *graph.Graph
	nets []circuits.Net

	// Capacity-one resources: wires 0..numWires-1 (a wire's segments and
	// taps live and die together, exactly as CommitNet claims them), then
	// one resource per switch-block jog edge (CommitNet disables used jogs
	// individually). edgeRes maps every edge to its resource; resource r's
	// edges are resEdgeIx[resOff[r]:resOff[r+1]], a prefix-summed flat
	// index built once at setup (ascending edge IDs within each resource).
	numWires  int
	edgeRes   []int32
	resOff    []int32
	resEdgeIx []graph.EdgeID

	// blockedTmpl has every logic-block pin node blocked: pins are not
	// routing switches, so a route may only enter the pins of its own net.
	// Workers load it once and unblock/re-block terminals per net — the
	// overlay equivalent of the sequential router's BeginNet.
	blockedTmpl []uint64

	hist        []float64 // per-resource history price (Lagrange multipliers)
	usage       []int32   // per-resource usage from the latest reduce
	sharedPrice []float64 // per-edge price frozen for the current iteration
	priced      []graph.EdgeID
	trees       []graph.Tree

	resEp []uint32 // reduce-side per-resource epoch marks
	ep    uint32

	// workers persists the routing goroutines' private state (scratch,
	// overlay, reconnect buffers) across iterations; releaseWorkers returns
	// everything to the pools once per run instead of once per iteration.
	workers []*worker

	// inc is the incremental-mode delta state (nil when Config.Incremental
	// is off); iterRipped/iterRetained/iterIncRe accumulate the current
	// iteration's rip-up accounting (summed from workers after the barrier,
	// so worker-count invariant).
	inc        *incState
	iterRipped int64
	iterRetain int64
	iterIncRe  int64

	// lastCkpt anchors Config.CheckpointPeriod's wall-clock trigger.
	lastCkpt time.Time
}

// Route routes every net of nets on fab's routing graph. The fabric must be
// in its reset state (nothing claimed, base weights); Route never mutates
// it — the caller commits the returned trees. On abort (cancellation, an
// injected fault, a disconnected net) the error is returned alongside the
// partial Result; non-convergence within the budget returns Converged
// false with a nil error, leaving the unroutable-at-this-width decision to
// the caller.
func Route(fab *fpga.Fabric, nets []circuits.Net, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Algorithm != AlgKMB && cfg.Algorithm != AlgIKMB {
		return nil, fmt.Errorf("pathfinder: algorithm %q is not overlay-capable (want %q or %q)", cfg.Algorithm, AlgIKMB, AlgKMB)
	}
	g := fab.Graph()
	e := &engine{
		cfg:  cfg,
		fab:  fab,
		g:    g,
		nets: nets,
	}
	e.numWires = fab.NumWires()
	e.edgeRes = make([]int32, g.NumEdges())
	numJogs := 0
	for id := 0; id < g.NumEdges(); id++ {
		if w := fab.WireOfEdge(graph.EdgeID(id)); w >= 0 {
			e.edgeRes[id] = int32(w)
		} else {
			e.edgeRes[id] = int32(e.numWires + numJogs)
			numJogs++
		}
	}
	numRes := e.numWires + numJogs
	// Prefix-summed resource→edge index: count, scan, scatter in edge-ID
	// order, so each resource's edge list comes out ascending.
	e.resOff = make([]int32, numRes+1)
	for _, r := range e.edgeRes {
		e.resOff[r+1]++
	}
	for r := 0; r < numRes; r++ {
		e.resOff[r+1] += e.resOff[r]
	}
	e.resEdgeIx = make([]graph.EdgeID, len(e.edgeRes))
	cur := make([]int32, numRes)
	copy(cur, e.resOff[:numRes])
	for id, r := range e.edgeRes {
		e.resEdgeIx[cur[r]] = graph.EdgeID(id)
		cur[r]++
	}
	e.blockedTmpl = make([]uint64, (g.NumNodes()+63)/64)
	lo, hi := fab.PinNodeRange()
	for v := lo; v < hi; v++ {
		e.blockedTmpl[v>>6] |= 1 << (uint(v) & 63)
	}
	e.hist = make([]float64, numRes)
	e.usage = make([]int32, numRes)
	e.sharedPrice = make([]float64, g.NumEdges())
	e.trees = make([]graph.Tree, len(nets))
	e.resEp = make([]uint32, numRes)
	if cfg.Incremental {
		e.inc = &incState{
			resActive:   make([]bool, numRes),
			touchedMark: make([]bool, numRes),
		}
	}
	return e.run()
}

// resEdges returns every edge of resource r (a wire's segment and tap
// edges, or the single jog edge) from the flat prefix-summed index.
func (e *engine) resEdges(r int32) []graph.EdgeID {
	return e.resEdgeIx[e.resOff[r]:e.resOff[r+1]]
}

// run is the iteration loop: price → parallel route → reduce → update.
func (e *engine) run() (*Result, error) {
	defer e.releaseWorkers()
	res := &Result{Trees: e.trees}
	reroute := make([]int32, 0, len(e.nets))
	// Incremental mode ends with one polish pass: reconnected trees are
	// accretions of patches that can lock in detours, so on first reaching
	// zero overflow every net is rebuilt in full, sequentially under live
	// prices (the Gauss-Seidel machinery), and the loop re-confirms zero
	// overflow before declaring convergence. One extra pass buys back the
	// wirelength the patches gave up.
	polished, forceSeq := false, false
	startIter := 1
	if ck := e.cfg.Resume; ck != nil {
		if err := e.restore(ck, res); err != nil {
			return res, err
		}
		startIter = ck.Iteration + 1
		reroute = append(reroute, ck.Reroute...)
		polished, forceSeq = ck.Polished, ck.ForceSeq
	} else {
		for i := range e.nets {
			reroute = append(reroute, int32(i))
		}
	}
	e.lastCkpt = time.Now()
	for iter := startIter; iter <= e.cfg.MaxIters; iter++ {
		if e.cfg.Cancel != nil {
			if err := e.cfg.Cancel(); err != nil {
				e.fail(res, reroute)
				return res, err
			}
		}
		res.Iterations = iter
		// presFac for this iteration's present-sharing term. Iteration 1
		// routes at zero prices — every net gets its unconstrained shortest
		// Steiner tree, the Lagrangian's initial point.
		presFac := 0.0
		if iter >= 2 {
			presFac = e.cfg.PresFac
			for k := 2; k < iter && presFac < e.cfg.PresMax; k++ {
				presFac *= e.cfg.PresMult
			}
			if presFac > e.cfg.PresMax {
				presFac = e.cfg.PresMax
			}
		}
		if e.inc != nil {
			e.repriceDelta(presFac)
		} else {
			e.reprice(presFac)
		}
		if h := e.cfg.hooks; h != nil && h.afterReprice != nil {
			h.afterReprice(e, iter, presFac)
		}
		var err error
		seq := forceSeq || iter >= 2 && (len(reroute) <= e.cfg.SeqBelow || iter > e.cfg.SeqAfter)
		forceSeq = false
		if seq {
			err = e.routeSeq(reroute, presFac)
		} else {
			if e.inc != nil {
				// Snapshot the rerouted nets' current trees (slice headers
				// only — routing always builds fresh edge slices) so the
				// delta reduce can subtract them after workers overwrite.
				e.inc.prevSnap = e.inc.prevSnap[:0]
				for _, i32 := range reroute {
					e.inc.prevSnap = append(e.inc.prevSnap, e.trees[i32])
				}
			}
			err = e.routeAll(reroute, iter, presFac)
		}
		if err != nil {
			e.fail(res, reroute)
			return res, err
		}
		var overflow, priceUpdates int
		var histSum float64
		if e.inc != nil {
			overflow, priceUpdates, histSum = e.reduceDelta(reroute, seq)
		} else {
			overflow, priceUpdates, histSum = e.reduce()
		}
		if h := e.cfg.hooks; h != nil && h.afterReduce != nil {
			h.afterReduce(e, iter)
		}
		e.cfg.Stats.AddPathfinderIteration(int64(overflow), int64(priceUpdates))
		e.cfg.Stats.AddIncremental(e.iterIncRe, e.iterRipped, e.iterRetain)
		res.EdgesRipped += e.iterRipped
		res.EdgesRetained += e.iterRetain
		res.IncrementalReroutes += e.iterIncRe
		e.iterRipped, e.iterRetain, e.iterIncRe = 0, 0, 0
		res.History = append(res.History, IterStat{
			Rerouted:     len(reroute),
			Overflow:     overflow,
			PriceUpdates: priceUpdates,
			HistSum:      histSum,
		})
		res.NetRoutes += int64(len(reroute))
		if overflow == 0 {
			if !(e.inc != nil && !polished && iter < e.cfg.MaxIters) {
				res.Converged = true
				return res, nil
			}
			polished, forceSeq = true, true
			reroute = reroute[:0]
			for i := range e.nets {
				reroute = append(reroute, int32(i))
			}
		} else {
			// Selective rip-up: only nets touching an overflowed resource
			// renegotiate; everyone else keeps their tree (and keeps pricing
			// it through the usage term).
			reroute = e.contested(reroute[:0])
		}
		// Checkpoint at the boundary, after the next iteration's rip-up set
		// and polish flags are decided — the snapshot then fully determines
		// the continuation.
		e.maybeCheckpoint(iter, res, reroute, polished, forceSeq)
	}
	res.Overflow = e.overflowCount()
	e.fail(res, e.contested(nil))
	return res, nil
}

// reprice freezes this iteration's shared per-edge price array:
// hist[res] + presFac·usage[res] on every edge, and rebuilds the priced
// edge list (ascending edge ID) that workers perturb and restore per net.
func (e *engine) reprice(presFac float64) {
	e.priced = e.priced[:0]
	for id, r := range e.edgeRes {
		p := e.hist[r] + presFac*float64(e.usage[r])
		e.sharedPrice[id] = p
		if p != 0 {
			e.priced = append(e.priced, graph.EdgeID(id))
		}
	}
}

// netError is a per-net routing failure; workers keep the lowest net index
// so the surfaced error is scheduling-independent.
type netError struct {
	idx int
	err error
}

// acquireWorkers grows the engine's persistent worker pool to n and returns
// the first n workers. Scratches and overlays are created once per run and
// reused by every iteration; callers refresh overlay prices and blocks
// before fanning out.
func (e *engine) acquireWorkers(n int) []*worker {
	for len(e.workers) < n {
		s := graph.AcquireScratch()
		e.workers = append(e.workers, &worker{
			scratch: s,
			ov:      graph.NewOverlay(e.g),
			resEp:   make([]uint32, len(e.resEp)),
			runs0:   s.Runs,
			pushes0: s.HeapPushes,
		})
	}
	return e.workers[:n]
}

// releaseWorkers returns every pooled scratch at the end of the run (via
// run's defer, so abort and panic paths are covered too), discarding those
// whose goroutine panicked mid-route, and records the run's total SSSP
// work.
func (e *engine) releaseWorkers() {
	var runs, pushes int64
	for _, wk := range e.workers {
		if wk.poisoned {
			graph.DiscardScratch(wk.scratch)
			continue
		}
		runs += wk.scratch.Runs - wk.runs0
		pushes += wk.scratch.HeapPushes - wk.pushes0
		graph.ReleaseScratch(wk.scratch)
	}
	e.workers = e.workers[:0]
	e.cfg.Stats.AddSSSP(runs, pushes)
}

// worker is one net-routing goroutine's private state, reused across
// iterations (the engine keeps workers alive for the whole run).
type worker struct {
	scratch *graph.DijkstraScratch
	ov      *graph.Overlay
	terms   []graph.NodeID
	stop    []graph.NodeID
	resEp   []uint32
	ep      uint32
	// Reconnect buffers (incremental mode): kept/out hold the surviving and
	// rebuilt edge sets, seeds/orphans the search frontier, parent the
	// union-find over dense fragment slots, seen the epoch-stamped
	// fragment-membership marks.
	kept    []graph.EdgeID
	out     []graph.EdgeID
	seeds   []graph.Seed
	orphans []graph.NodeID
	parent  []int32
	seen    []uint32
	seenEp  uint32
	// Per-iteration rip-up accounting, drained into the engine after the
	// iteration barrier (integer sums over the net list — order-free).
	ripped      int64
	retained    int64
	increroutes int64
	// baseline scratch counters for the run-end SSSP accounting.
	runs0, pushes0 int64
	poisoned       bool
	fail           *netError
	panicked       *faultpoint.GoroutinePanic
}

// routeAll routes every net of list concurrently over the engine's worker
// pool. Work is distributed by an atomic cursor — which worker routes which
// net is scheduling-dependent, but irrelevant: every worker would produce
// the identical tree. Panics are funneled to this goroutine and re-raised
// (lowest worker slot first); injected errors abort with the lowest failed
// net index.
func (e *engine) routeAll(list []int32, iter int, presFac float64) error {
	nw := e.cfg.Workers
	if nw > len(list) {
		nw = len(list)
	}
	if nw < 1 {
		nw = 1
	}
	workers := e.acquireWorkers(nw)
	for _, wk := range workers {
		copy(wk.ov.Prices(), e.sharedPrice)
		wk.ov.LoadBlocked(e.blockedTmpl)
	}

	var cursor atomic.Int64
	var wg sync.WaitGroup
	for k := range workers {
		wg.Add(1)
		go func(wk *worker) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					wk.panicked = &faultpoint.GoroutinePanic{Value: p, Stack: debug.Stack()}
					wk.poisoned = true
				}
			}()
			for {
				i := cursor.Add(1) - 1
				if int(i) >= len(list) {
					return
				}
				idx := int(list[i])
				if err := faultpoint.Hit(faultpoint.PathfinderWorker); err != nil {
					wk.record(idx, err)
					continue
				}
				start := time.Now()
				tree, err := e.routeNet(wk, idx, iter, presFac)
				e.cfg.Stats.ObserveNet(time.Since(start), err == nil)
				if err != nil {
					wk.record(idx, err)
					continue
				}
				e.trees[idx] = tree
			}
		}(workers[k])
	}
	wg.Wait()
	for _, wk := range workers {
		if wk.panicked != nil {
			panic(wk.panicked)
		}
	}
	for _, wk := range workers {
		e.iterRipped += wk.ripped
		e.iterRetain += wk.retained
		e.iterIncRe += wk.increroutes
		wk.ripped, wk.retained, wk.increroutes = 0, 0, 0
	}
	var worst *netError
	for _, wk := range workers {
		if wk.fail != nil && (worst == nil || wk.fail.idx < worst.idx) {
			worst = wk.fail
		}
	}
	if worst != nil {
		return fmt.Errorf("pathfinder: net %d: %w", worst.idx, worst.err)
	}
	return nil
}

// routeSeq is the Gauss-Seidel pass (Config.SeqBelow / Config.SeqAfter):
// the contested nets route one at a time in net-index order, each seeing
// the nets before it already moved. Rip-up removes the net's own share from live
// usage (so no own-share discount is needed) and commit re-prices the new
// tree's resources for the nets after it — exactly the sequential
// PathFinder semantics the frozen-price iterations approximate. Jitter is
// omitted: sequential updates cannot livelock on symmetric ties. Runs on
// the caller's goroutine; a first error aborts at the lowest net index by
// construction.
func (e *engine) routeSeq(list []int32, presFac float64) error {
	wk := e.acquireWorkers(1)[0]
	copy(wk.ov.Prices(), e.sharedPrice)
	wk.ov.LoadBlocked(e.blockedTmpl)
	defer func() {
		if p := recover(); p != nil {
			// Poison the scratch; run's releaseWorkers discards it.
			wk.poisoned = true
			panic(p)
		}
	}()
	pr := wk.ov.Prices()
	// adjust moves one tree in or out of live usage and re-prices every
	// edge of the touched resources. In incremental mode it also feeds the
	// delta bookkeeping: usage is live here, so the reduce skips its delta
	// pass and only these marks tell the next reprice what moved.
	adjust := func(tree graph.Tree, delta int32) {
		wk.ep++
		for _, id := range tree.Edges {
			r := e.edgeRes[id]
			if wk.resEp[r] == wk.ep {
				continue
			}
			wk.resEp[r] = wk.ep
			e.usage[r] += delta
			if e.inc != nil {
				e.touchRes(r)
				if delta > 0 {
					e.activateRes(r)
				}
			}
			p := e.hist[r] + presFac*float64(e.usage[r])
			for _, re := range e.resEdges(r) {
				pr[re] = p
			}
		}
	}
	for _, i32 := range list {
		idx := int(i32)
		if err := faultpoint.Hit(faultpoint.PathfinderWorker); err != nil {
			return fmt.Errorf("pathfinder: net %d: %w", idx, err)
		}
		e.iterRipped += int64(len(e.trees[idx].Edges))
		adjust(e.trees[idx], -1)
		net := e.nets[idx]
		terms := wk.terms[:0]
		for _, p := range net.Pins {
			terms = append(terms, e.fab.PinNode(p))
		}
		wk.terms = terms
		for _, v := range terms {
			wk.ov.Unblock(v)
		}
		start := time.Now()
		tree, err := e.construct(wk, terms, net.Pins)
		e.cfg.Stats.ObserveNet(time.Since(start), err == nil)
		for _, v := range terms {
			wk.ov.Block(v)
		}
		if err != nil {
			return fmt.Errorf("pathfinder: net %d: %w", idx, err)
		}
		e.trees[idx] = tree
		adjust(tree, +1)
	}
	return nil
}

func (wk *worker) record(idx int, err error) {
	if wk.fail == nil || idx < wk.fail.idx {
		wk.fail = &netError{idx: idx, err: err}
	}
}

// routeNet routes one net against the worker's overlay. The overlay enters
// and leaves in the shared iteration state (prices = sharedPrice, all pins
// blocked); in between it carries the net's private view — terminals
// unblocked, the net's own present share discounted so its current tree is
// not priced against itself, and jitter on every priced edge.
func (e *engine) routeNet(wk *worker, idx, iter int, presFac float64) (graph.Tree, error) {
	net := e.nets[idx]
	terms := wk.terms[:0]
	for _, p := range net.Pins {
		terms = append(terms, e.fab.PinNode(p))
	}
	wk.terms = terms
	for _, v := range terms {
		wk.ov.Unblock(v)
	}
	pr := wk.ov.Prices()
	if iter >= 2 {
		// Own-share discount: sharedPrice includes presFac·usage where
		// usage counts this net's previous tree once per resource; remove
		// exactly that share on every edge of those resources. Every such
		// resource has usage ≥ 1, so its edges are in the priced list and
		// the post-net restore below covers the discount too.
		if prev := e.trees[idx]; len(prev.Edges) != 0 {
			wk.ep++
			for _, id := range prev.Edges {
				r := e.edgeRes[id]
				if wk.resEp[r] == wk.ep {
					continue
				}
				wk.resEp[r] = wk.ep
				for _, re := range e.resEdges(r) {
					pr[re] -= presFac
				}
			}
		}
		// Deterministic tie-break jitter, scaled to the present factor so
		// it never outweighs a real price difference. It depends on the
		// net's identity, not on scheduling, so symmetric nets stop
		// mirroring each other's moves while results stay worker-count
		// invariant.
		if eps := e.cfg.JitterEps * presFac; eps > 0 {
			for _, id := range e.priced {
				pr[id] += eps * hash01(e.cfg.Seed, int32(idx), int32(id))
			}
		}
	}
	var (
		tree graph.Tree
		err  error
		done bool
	)
	if e.inc != nil && iter >= 2 {
		tree, done = e.reconnect(wk, idx, terms)
	}
	if !done {
		if iter >= 2 {
			// Full rebuild rips the whole previous tree (also the
			// incremental fallback path when no fragment survived).
			wk.ripped += int64(len(e.trees[idx].Edges))
		}
		tree, err = e.construct(wk, terms, net.Pins)
	}
	for _, id := range e.priced {
		pr[id] = e.sharedPrice[id]
	}
	for _, v := range terms {
		wk.ov.Block(v)
	}
	return tree, err
}

// construct runs the per-net tree construction under the worker's overlay.
// Goal-directed search is unconditional here: the pathfinder has no
// bit-for-bit tie to the paper's Dijkstra reference (that binds only the
// sequential oracle), and the fabric's coordinate bound stays admissible
// under any non-negative pricing state.
func (e *engine) construct(wk *worker, terms []graph.NodeID, pins []fpga.Pin) (graph.Tree, error) {
	if len(terms) == 2 && terms[0] != terms[1] {
		_, path, ok := e.g.BiDijkstraOverlay(wk.scratch, terms[0], terms[1], wk.ov)
		if !ok {
			return graph.Tree{}, steiner.ErrNoRoute
		}
		return graph.NewTree(e.g, path), nil
	}
	var pool []graph.NodeID
	stop := append(wk.stop[:0], terms...)
	if e.cfg.Algorithm == AlgIKMB {
		pool = e.fab.SteinerPool(pins, e.cfg.BBoxMargin, e.cfg.MaxPool)
		stop = append(stop, pool...)
	}
	wk.stop = stop
	cache := graph.NewSPTCacheWithin(e.g, stop).
		WithScratch(wk.scratch).
		WithBounds(e.fab.Bounds()).
		WithOverlay(wk.ov)
	defer cache.Release()
	if e.cfg.Algorithm == AlgKMB {
		return steiner.KMB(cache, terms)
	}
	// Candidate scans stay sequential inside each net: the parallelism
	// budget belongs to the net level here, and nested fan-out would only
	// thrash the scheduler.
	tree, st, err := core.IGMSTStats(cache, terms, steiner.KMB, core.Options{
		Candidates: pool,
		Batched:    !e.cfg.SingleStep,
		Workers:    1,
		Lazy:       e.cfg.Lazy,
	})
	e.cfg.Stats.AddCandidateWork(st.Evaluations, st.PointsChosen)
	e.cfg.Stats.AddLazyScan(st.LazyHits, st.FullRescans, st.EvaluationsSaved)
	return tree, err
}

// reduce recounts per-resource usage over every tree in net-index order
// (integer counts — no float accumulation, so the result is independent of
// which worker routed which net) and applies the sub-gradient update:
// hist[r] += HistStep·(usage[r]−1) on every overcapacity resource.
func (e *engine) reduce() (overflow, priceUpdates int, histSum float64) {
	clear(e.usage)
	for idx := range e.trees {
		e.ep++
		for _, id := range e.trees[idx].Edges {
			r := e.edgeRes[id]
			if e.resEp[r] == e.ep {
				continue
			}
			e.resEp[r] = e.ep
			e.usage[r]++
		}
	}
	for r, u := range e.usage {
		if u > 1 {
			overflow++
			e.hist[r] += e.cfg.HistStep * float64(u-1)
			priceUpdates++
		}
	}
	for _, h := range e.hist {
		histSum += h
	}
	return overflow, priceUpdates, histSum
}

// contested appends (in ascending net order) every net whose tree touches
// an overcapacity resource — the rip-up set for the next iteration.
func (e *engine) contested(into []int32) []int32 {
	for idx := range e.trees {
		for _, id := range e.trees[idx].Edges {
			if e.usage[e.edgeRes[id]] > 1 {
				into = append(into, int32(idx))
				break
			}
		}
	}
	return into
}

func (e *engine) overflowCount() int {
	n := 0
	for _, u := range e.usage {
		if u > 1 {
			n++
		}
	}
	return n
}

// fail marks res partial: the failed set is the given contested list (for
// aborts mid-iteration, the nets that were up for rerouting). Their trees
// are dropped from the result so the remaining trees are exactly the
// mutually disjoint, committable ones.
func (e *engine) fail(res *Result, contested []int32) {
	for _, idx := range contested {
		res.FailedNets = append(res.FailedNets, int(idx))
		e.trees[idx] = graph.Tree{}
	}
}

// hash01 maps (seed, net, edge) to a deterministic float in [0, 1) via
// SplitMix64 — the jitter stream, independent of any global randomness.
func hash01(seed uint64, net, edge int32) float64 {
	x := seed ^ uint64(uint32(net))<<32 ^ uint64(uint32(edge))
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}
