package pathfinder

import (
	"fmt"
	"slices"
	"time"

	"fpgarouter/internal/graph"
)

// This file is the checkpoint/resume machinery behind Config.CheckpointFn
// and Config.Resume: a Checkpoint captures the engine's complete
// deterministic state at an iteration boundary, and a resumed run restores
// it and continues bit-identically to the run that was interrupted.
//
// Why an iteration boundary is enough: between iterations the engine's
// state is exactly (iteration counter, history prices, the per-net trees,
// the next rip-up set, and the polish flags). Everything else is derived —
// usage is an integer recount over the trees, the shared price array is a
// pure function of hist/usage/presFac, presFac a pure function of the
// iteration number, and the incremental-mode active set is reconstructible
// as every resource with non-zero usage or history (resources outside it
// provably price to zero, see incremental.go). Worker scratch is rebuilt
// per run and never part of the contract. The parity suite asserts that
// interrupting at any checkpoint boundary and resuming reproduces the
// uninterrupted run's trees, history trajectory, and counters bit for bit
// across Workers settings.
//
// Serialization: the struct is plain JSON. Go's encoding/json emits the
// shortest float64 representation that round-trips exactly, so history
// prices and tree costs survive a disk round trip bit-identically.

// Checkpoint is a serializable snapshot of a pathfinder run after
// Iteration completed iterations. Produce one via Config.CheckpointFn,
// resume from it via Config.Resume on a run with the same fabric, nets,
// and Config. Treat it as immutable: tree edge slices are shared with the
// engine (they are never mutated after construction, only replaced).
type Checkpoint struct {
	// Iteration is the number of completed iterations; a resumed run
	// continues at Iteration+1.
	Iteration int `json:"iteration"`
	// Polished and ForceSeq carry the incremental-mode polish-pass state
	// machine across the boundary.
	Polished bool `json:"polished,omitempty"`
	ForceSeq bool `json:"force_seq,omitempty"`
	// Hist is the per-resource history price array (the Lagrange
	// multipliers) after Iteration's sub-gradient update.
	Hist []float64 `json:"hist"`
	// Trees is every net's committed tree after Iteration.
	Trees []graph.Tree `json:"trees"`
	// Reroute is the contested set the next iteration will rip up.
	Reroute []int32 `json:"reroute"`
	// History is the per-iteration trajectory so far; restored so the
	// final Result matches the uninterrupted run's.
	History []IterStat `json:"history"`
	// Result accumulators (see Result): restored verbatim so the resumed
	// run's totals equal the uninterrupted run's.
	NetRoutes           int64 `json:"net_routes"`
	EdgesRipped         int64 `json:"edges_ripped,omitempty"`
	EdgesRetained       int64 `json:"edges_retained,omitempty"`
	IncrementalReroutes int64 `json:"incremental_reroutes,omitempty"`
	// Compatibility guards: a resume against a different circuit, fabric,
	// algorithm, mode, or jitter seed is rejected instead of silently
	// producing garbage.
	Nets        int    `json:"nets"`
	Resources   int    `json:"resources"`
	Algorithm   string `json:"algorithm"`
	Incremental bool   `json:"incremental"`
	Seed        uint64 `json:"seed"`
}

// snapshot captures the engine state after iteration iter completed and
// the next rip-up set was chosen. Slices holding engine-mutated state
// (hist, the tree and history slice headers, the reused reroute buffer)
// are cloned; tree edge arrays are shared — they are immutable by the
// engine's build-fresh-replace-whole-tree discipline.
func (e *engine) snapshot(iter int, res *Result, reroute []int32, polished, forceSeq bool) *Checkpoint {
	return &Checkpoint{
		Iteration:           iter,
		Polished:            polished,
		ForceSeq:            forceSeq,
		Hist:                slices.Clone(e.hist),
		Trees:               slices.Clone(e.trees),
		Reroute:             slices.Clone(reroute),
		History:             slices.Clone(res.History),
		NetRoutes:           res.NetRoutes,
		EdgesRipped:         res.EdgesRipped,
		EdgesRetained:       res.EdgesRetained,
		IncrementalReroutes: res.IncrementalReroutes,
		Nets:                len(e.nets),
		Resources:           len(e.hist),
		Algorithm:           e.cfg.Algorithm,
		Incremental:         e.inc != nil,
		Seed:                e.cfg.Seed,
	}
}

// maybeCheckpoint emits a snapshot to Config.CheckpointFn when the
// iteration cadence (CheckpointEvery, in absolute iteration numbers, so a
// resumed run keeps the original rhythm) or the wall-clock period
// (CheckpointPeriod) is due. Emission never alters engine state, so runs
// with and without checkpointing are bit-identical.
func (e *engine) maybeCheckpoint(iter int, res *Result, reroute []int32, polished, forceSeq bool) {
	fn := e.cfg.CheckpointFn
	if fn == nil {
		return
	}
	due := e.cfg.CheckpointEvery > 0 && iter%e.cfg.CheckpointEvery == 0
	if !due && e.cfg.CheckpointPeriod > 0 && time.Since(e.lastCkpt) >= e.cfg.CheckpointPeriod {
		due = true
	}
	if !due {
		return
	}
	e.lastCkpt = time.Now()
	fn(e.snapshot(iter, res, reroute, polished, forceSeq))
}

// restore rebuilds the engine's iteration state from ck: history prices
// and trees verbatim, usage by the same integer recount the reduce runs,
// the incremental active set from the usage/history support, and the
// Result accumulators so final totals match the uninterrupted run.
func (e *engine) restore(ck *Checkpoint, res *Result) error {
	switch {
	case ck.Iteration < 1:
		return fmt.Errorf("pathfinder: checkpoint has no completed iteration (%d)", ck.Iteration)
	case ck.Nets != len(e.nets) || len(ck.Trees) != len(e.nets):
		return fmt.Errorf("pathfinder: checkpoint covers %d nets (trees %d), run has %d", ck.Nets, len(ck.Trees), len(e.nets))
	case ck.Resources != len(e.hist) || len(ck.Hist) != len(e.hist):
		return fmt.Errorf("pathfinder: checkpoint covers %d resources (hist %d), fabric has %d", ck.Resources, len(ck.Hist), len(e.hist))
	case ck.Algorithm != e.cfg.Algorithm:
		return fmt.Errorf("pathfinder: checkpoint algorithm %q, run configured %q", ck.Algorithm, e.cfg.Algorithm)
	case ck.Incremental != (e.inc != nil):
		return fmt.Errorf("pathfinder: checkpoint incremental=%v, run configured %v", ck.Incremental, e.inc != nil)
	case ck.Seed != e.cfg.Seed:
		return fmt.Errorf("pathfinder: checkpoint seed %d, run configured %d", ck.Seed, e.cfg.Seed)
	case len(ck.History) != ck.Iteration:
		return fmt.Errorf("pathfinder: checkpoint history has %d entries for %d iterations", len(ck.History), ck.Iteration)
	}
	copy(e.hist, ck.Hist)
	copy(e.trees, ck.Trees)
	clear(e.usage)
	for idx := range e.trees {
		e.ep++
		for _, id := range e.trees[idx].Edges {
			r := e.edgeRes[id]
			if e.resEp[r] == e.ep {
				continue
			}
			e.resEp[r] = e.ep
			e.usage[r]++
		}
	}
	if e.inc != nil {
		// Reconstruct the active set from its support: every resource some
		// tree uses or with accumulated history. Activation order differs
		// from the original run, but only write order depends on it — the
		// price arrays and the ascending activeEdges index come out
		// identical (see the incremental.go invariants).
		for r := range e.usage {
			if e.usage[r] > 0 || e.hist[r] != 0 {
				e.activateRes(int32(r))
			}
		}
	}
	res.Iterations = ck.Iteration
	res.History = slices.Clone(ck.History)
	res.NetRoutes = ck.NetRoutes
	res.EdgesRipped = ck.EdgesRipped
	res.EdgesRetained = ck.EdgesRetained
	res.IncrementalReroutes = ck.IncrementalReroutes
	return nil
}
