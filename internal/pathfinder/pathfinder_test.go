package pathfinder

import (
	"errors"
	"os"
	"testing"

	"fpgarouter/internal/circuits"
	"fpgarouter/internal/faultpoint"
	"fpgarouter/internal/fpga"
	"fpgarouter/internal/graph"
	"fpgarouter/internal/stats"
)

// synth builds the circuit and a fabric at channel width w.
func synth(t testing.TB, spec circuits.Spec, w int) (*fpga.Fabric, *circuits.Circuit) {
	t.Helper()
	ckt, err := circuits.Synthesize(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	fab, err := fpga.NewFabric(ckt.ArchAt(w))
	if err != nil {
		t.Fatal(err)
	}
	return fab, ckt
}

func specNamed(t testing.TB, name string) circuits.Spec {
	t.Helper()
	spec, ok := circuits.SpecByName(name)
	if !ok {
		t.Fatalf("circuit %s not registered", name)
	}
	return spec
}

// TestHistoryMonotone: history prices are Lagrange multipliers driven by a
// non-negative sub-gradient step, so their sum must never decrease across
// iterations — the invariant that makes the negotiation converge instead
// of oscillate.
func TestHistoryMonotone(t *testing.T) {
	spec := specNamed(t, "term1")
	fab, ckt := synth(t, spec, spec.PaperIKMB)
	res, err := Route(fab, ckt.Nets, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 {
		t.Fatal("no iteration history recorded")
	}
	prev := 0.0
	updates := 0
	for i, st := range res.History {
		if st.HistSum < prev {
			t.Fatalf("iteration %d: HistSum %v < previous %v (history prices must be monotone non-decreasing)", i+1, st.HistSum, prev)
		}
		prev = st.HistSum
		updates += st.PriceUpdates
	}
	if updates == 0 {
		t.Fatal("no price updates at the paper's width: the fixture no longer exercises congestion")
	}
}

// TestConvergesPaperCircuits: the engine must reach zero overflow on every
// paper benchmark at the width the paper's own router achieved, within the
// default iteration budget. The default run keeps a representative subset
// (the fourteen-circuit sweep is minutes of wall clock and has its own CI
// job); PATHFINDER_FULL_CIRCUITS=1 covers all fourteen, and short mode
// trims to the two smallest.
func TestConvergesPaperCircuits(t *testing.T) {
	specs := []circuits.Spec{
		specNamed(t, "busc"), specNamed(t, "term1"),
		specNamed(t, "9symml"), specNamed(t, "apex7"),
	}
	if os.Getenv("PATHFINDER_FULL_CIRCUITS") != "" {
		specs = append(append([]circuits.Spec{}, circuits.Table2Circuits...), circuits.Table3Circuits...)
	}
	if testing.Short() {
		specs = []circuits.Spec{specNamed(t, "term1"), specNamed(t, "9symml")}
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			fab, ckt := synth(t, spec, spec.PaperIKMB)
			res, err := Route(fab, ckt.Nets, Config{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("no convergence at width %d: %d overflowed resources, %d failed nets after %d iterations",
					spec.PaperIKMB, res.Overflow, len(res.FailedNets), res.Iterations)
			}
			g := fab.Graph()
			for i, net := range ckt.Nets {
				terms := make([]graph.NodeID, len(net.Pins))
				for j, p := range net.Pins {
					terms[j] = fab.PinNode(p)
				}
				if err := graph.ValidateTree(g, res.Trees[i], terms); err != nil {
					t.Fatalf("net %d: %v", i, err)
				}
			}
		})
	}
}

// TestWorkerParityAcrossCounts: the determinism contract — the full Result
// (trees, iteration trajectory, history) is bit-identical for any worker
// count. CI runs this under -race at GOMAXPROCS 1 and 4.
func TestWorkerParityAcrossCounts(t *testing.T) {
	spec := specNamed(t, "term1")
	var want *Result
	for _, workers := range []int{1, 2, 4, 8} {
		fab, ckt := synth(t, spec, spec.PaperIKMB)
		res, err := Route(fab, ckt.Nets, Config{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = res
			continue
		}
		if res.Iterations != want.Iterations || res.Converged != want.Converged {
			t.Fatalf("workers=%d: %d iterations (converged=%v), workers=1 had %d (converged=%v)",
				workers, res.Iterations, res.Converged, want.Iterations, want.Converged)
		}
		for i := range want.Trees {
			if res.Trees[i].Cost != want.Trees[i].Cost {
				t.Fatalf("workers=%d: net %d cost %v != %v", workers, i, res.Trees[i].Cost, want.Trees[i].Cost)
			}
			if len(res.Trees[i].Edges) != len(want.Trees[i].Edges) {
				t.Fatalf("workers=%d: net %d has %d edges, want %d", workers, i, len(res.Trees[i].Edges), len(want.Trees[i].Edges))
			}
			for j, id := range want.Trees[i].Edges {
				if res.Trees[i].Edges[j] != id {
					t.Fatalf("workers=%d: net %d edge %d is %d, want %d", workers, i, j, res.Trees[i].Edges[j], id)
				}
			}
		}
		for i, st := range want.History {
			if res.History[i] != st {
				t.Fatalf("workers=%d: iteration %d stat %+v != %+v", workers, i+1, res.History[i], st)
			}
		}
	}
}

// TestStatsCounters: a run with a collector attached reports its
// iterations and pricing work through the observability layer.
func TestStatsCounters(t *testing.T) {
	spec := specNamed(t, "term1")
	fab, ckt := synth(t, spec, spec.PaperIKMB)
	col := stats.New()
	res, err := Route(fab, ckt.Nets, Config{Stats: col})
	if err != nil {
		t.Fatal(err)
	}
	snap := col.Snapshot()
	if snap.PathfinderIters != int64(res.Iterations) {
		t.Fatalf("collector saw %d iterations, result says %d", snap.PathfinderIters, res.Iterations)
	}
	if snap.PriceUpdates == 0 {
		t.Fatal("no price updates recorded")
	}
	if snap.NetsRouted != res.NetRoutes {
		t.Fatalf("collector saw %d net routes, result says %d", snap.NetsRouted, res.NetRoutes)
	}
	if snap.SSSPRuns == 0 {
		t.Fatal("no SSSP runs recorded from the iteration workers")
	}
}

// TestChaosPathfinderWorkerError: an error injected inside an iteration
// worker aborts the run deterministically — the lowest affected net index
// wins regardless of which worker goroutine hit the fault first.
func TestChaosPathfinderWorkerError(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	spec := specNamed(t, "term1")
	errInjected := errors.New("injected worker fault")
	var firstMsg string
	for run := 0; run < 2; run++ {
		fab, ckt := synth(t, spec, spec.PaperIKMB)
		faultpoint.Arm(faultpoint.PathfinderWorker, faultpoint.Plan{Action: faultpoint.Error, Err: errInjected, Every: 40})
		_, err := Route(fab, ckt.Nets, Config{Workers: 4})
		faultpoint.Reset()
		if !errors.Is(err, errInjected) {
			t.Fatalf("run %d: want the injected error, got %v", run, err)
		}
		if run == 0 {
			firstMsg = err.Error()
		} else if err.Error() != firstMsg {
			t.Fatalf("error not deterministic across runs: %q vs %q", firstMsg, err.Error())
		}
	}
}

// TestChaosPathfinderWorkerPanicFunneled: a panic on an iteration worker
// re-raises on the caller as *faultpoint.GoroutinePanic carrying the
// worker's stack, and the poisoned scratch is discarded, not pooled.
func TestChaosPathfinderWorkerPanicFunneled(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	spec := specNamed(t, "term1")
	fab, ckt := synth(t, spec, spec.PaperIKMB)
	baseline := graph.LiveScratches()
	faultpoint.Arm(faultpoint.PathfinderWorker, faultpoint.Plan{Action: faultpoint.Panic, Nth: 25})
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("armed worker panic did not propagate to the caller")
		}
		gp, ok := p.(*faultpoint.GoroutinePanic)
		if !ok {
			t.Fatalf("panic value %T, want *faultpoint.GoroutinePanic", p)
		}
		if _, ok := gp.Value.(*faultpoint.Injected); !ok {
			t.Fatalf("funneled value %T, want *faultpoint.Injected", gp.Value)
		}
		if len(gp.Stack) == 0 {
			t.Fatal("funneled panic lost the worker goroutine's stack")
		}
		if live := graph.LiveScratches(); live > baseline {
			t.Fatalf("panic leaked %d pooled scratches", live-baseline)
		}
	}()
	_, _ = Route(fab, ckt.Nets, Config{Workers: 4})
}
