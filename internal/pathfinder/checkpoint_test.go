package pathfinder

import (
	"encoding/json"
	"reflect"
	"testing"
)

// The checkpoint/resume parity suite: a run interrupted at ANY checkpoint
// boundary and resumed — including through a JSON round trip, the on-disk
// path — must finish bit-identical to the uninterrupted run, at every
// Workers setting and in both full and incremental rip-up modes. This is
// the contract the service's crash recovery stands on.

// captureAll runs the fixture to completion while collecting a checkpoint
// at every iteration boundary, returning the checkpoints and the
// uninterrupted reference Result.
func captureAll(t *testing.T, cfg Config) ([]*Checkpoint, *Result) {
	t.Helper()
	spec := specNamed(t, "term1")
	fab, ckt := synth(t, spec, spec.PaperIKMB)
	var cks []*Checkpoint
	cfg.CheckpointEvery = 1
	cfg.CheckpointFn = func(ck *Checkpoint) { cks = append(cks, ck) }
	res, err := Route(fab, ckt.Nets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("reference run did not converge")
	}
	if len(cks) == 0 {
		t.Fatal("no checkpoints captured")
	}
	// The final iteration converges and returns before the emission point,
	// so the last checkpoint covers an earlier iteration.
	if last := cks[len(cks)-1].Iteration; last >= res.Iterations {
		t.Fatalf("last checkpoint at iteration %d, run converged at %d", last, res.Iterations)
	}
	return cks, res
}

// assertSameResult compares every deterministic field of two Results bit
// for bit: trees (edges and float64 costs), the full per-iteration history,
// and all counters.
func assertSameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Iterations != want.Iterations || got.Converged != want.Converged || got.Overflow != want.Overflow {
		t.Fatalf("%s: (iters, converged, overflow) = (%d, %v, %d), want (%d, %v, %d)",
			label, got.Iterations, got.Converged, got.Overflow, want.Iterations, want.Converged, want.Overflow)
	}
	if got.NetRoutes != want.NetRoutes {
		t.Fatalf("%s: NetRoutes = %d, want %d", label, got.NetRoutes, want.NetRoutes)
	}
	if got.EdgesRipped != want.EdgesRipped || got.EdgesRetained != want.EdgesRetained ||
		got.IncrementalReroutes != want.IncrementalReroutes {
		t.Fatalf("%s: rip-up counters (%d, %d, %d), want (%d, %d, %d)", label,
			got.EdgesRipped, got.EdgesRetained, got.IncrementalReroutes,
			want.EdgesRipped, want.EdgesRetained, want.IncrementalReroutes)
	}
	if len(got.History) != len(want.History) {
		t.Fatalf("%s: history has %d entries, want %d", label, len(got.History), len(want.History))
	}
	for i := range want.History {
		if got.History[i] != want.History[i] {
			t.Fatalf("%s: history[%d] = %+v, want %+v", label, i, got.History[i], want.History[i])
		}
	}
	if len(got.Trees) != len(want.Trees) {
		t.Fatalf("%s: %d trees, want %d", label, len(got.Trees), len(want.Trees))
	}
	for i := range want.Trees {
		if got.Trees[i].Cost != want.Trees[i].Cost || !reflect.DeepEqual(got.Trees[i].Edges, want.Trees[i].Edges) {
			t.Fatalf("%s: tree %d differs (cost %v vs %v)", label, i, got.Trees[i].Cost, want.Trees[i].Cost)
		}
	}
}

// TestCheckpointResumeParity: resume from every captured checkpoint, for
// Workers ∈ {1, 4} × Incremental ∈ {off, on}, and require the resumed
// Result bit-identical to the uninterrupted run. The checkpoint is pushed
// through a JSON round trip first — exactly what the service's on-disk
// checkpoint store does.
func TestCheckpointResumeParity(t *testing.T) {
	spec := specNamed(t, "term1")
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"w1", Config{Workers: 1, Seed: 7}},
		{"w4", Config{Workers: 4, Seed: 7}},
		{"w1-inc", Config{Workers: 1, Seed: 7, Incremental: true}},
		{"w4-inc", Config{Workers: 4, Seed: 7, Incremental: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cks, want := captureAll(t, tc.cfg)
			// Every boundary is the real contract, but under -short (the CI
			// race matrix) resuming from ~30 checkpoints × 4 configs is the
			// suite's long pole: sample first, middle, and last. The CI
			// crash-recovery job runs the exhaustive variant without -short.
			if testing.Short() && len(cks) > 3 {
				cks = []*Checkpoint{cks[0], cks[len(cks)/2], cks[len(cks)-1]}
			}
			for _, ck := range cks {
				data, err := json.Marshal(ck)
				if err != nil {
					t.Fatal(err)
				}
				restored := new(Checkpoint)
				if err := json.Unmarshal(data, restored); err != nil {
					t.Fatal(err)
				}
				fab, ckt := synth(t, spec, spec.PaperIKMB)
				cfg := tc.cfg
				cfg.Resume = restored
				got, err := Route(fab, ckt.Nets, cfg)
				if err != nil {
					t.Fatalf("resume from iteration %d: %v", ck.Iteration, err)
				}
				assertSameResult(t, "resume@"+itoa(ck.Iteration), got, want)
			}
		})
	}
}

// TestCheckpointResumeCrossWorkers: a checkpoint written by a Workers=1 run
// resumes under Workers=4 (and vice versa) with identical results — the
// worker-count-invariance contract extends across the checkpoint boundary.
func TestCheckpointResumeCrossWorkers(t *testing.T) {
	spec := specNamed(t, "term1")
	cks, want := captureAll(t, Config{Workers: 1, Seed: 7})
	mid := cks[len(cks)/2]
	for _, w := range []int{1, 4} {
		fab, ckt := synth(t, spec, spec.PaperIKMB)
		got, err := Route(fab, ckt.Nets, Config{Workers: w, Seed: 7, Resume: mid})
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, "cross-workers", got, want)
	}
}

// TestCheckpointEmissionIsTransparent: a run with checkpointing enabled is
// bit-identical to one without — emission must never perturb the engine.
func TestCheckpointEmissionIsTransparent(t *testing.T) {
	spec := specNamed(t, "term1")
	fab, ckt := synth(t, spec, spec.PaperIKMB)
	plain, err := Route(fab, ckt.Nets, Config{Workers: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	_, withCk := captureAll(t, Config{Workers: 4, Seed: 7})
	assertSameResult(t, "checkpointing-on", withCk, plain)
}

// TestCheckpointCadence: CheckpointEvery=K emits exactly at iterations
// divisible by K, and a resumed run keeps the absolute cadence.
func TestCheckpointCadence(t *testing.T) {
	spec := specNamed(t, "term1")
	fab, ckt := synth(t, spec, spec.PaperIKMB)
	var iters []int
	res, err := Route(fab, ckt.Nets, Config{
		Workers:         2,
		Seed:            7,
		CheckpointEvery: 3,
		CheckpointFn:    func(ck *Checkpoint) { iters = append(iters, ck.Iteration) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) == 0 {
		t.Skip("run converged before the first cadence point")
	}
	for i, it := range iters {
		if it%3 != 0 {
			t.Fatalf("checkpoint %d at iteration %d, want a multiple of 3", i, it)
		}
		if it >= res.Iterations {
			t.Fatalf("checkpoint at iteration %d, but the run returned at %d before emission", it, res.Iterations)
		}
	}
}

// TestCheckpointResumeGuards: incompatible checkpoints are rejected with an
// error, never silently resumed.
func TestCheckpointResumeGuards(t *testing.T) {
	spec := specNamed(t, "term1")
	cks, _ := captureAll(t, Config{Workers: 1, Seed: 7})
	base := cks[0]
	for _, tc := range []struct {
		name   string
		mutate func(*Checkpoint)
		cfg    Config
	}{
		{"seed", func(ck *Checkpoint) {}, Config{Workers: 1, Seed: 8}},
		{"incremental", func(ck *Checkpoint) {}, Config{Workers: 1, Seed: 7, Incremental: true}},
		{"algorithm", func(ck *Checkpoint) {}, Config{Workers: 1, Seed: 7, Algorithm: AlgKMB}},
		{"nets", func(ck *Checkpoint) { ck.Nets++ }, Config{Workers: 1, Seed: 7}},
		{"resources", func(ck *Checkpoint) { ck.Resources++ }, Config{Workers: 1, Seed: 7}},
		{"history", func(ck *Checkpoint) { ck.History = ck.History[:0] }, Config{Workers: 1, Seed: 7}},
		{"iteration", func(ck *Checkpoint) { ck.Iteration = 0 }, Config{Workers: 1, Seed: 7}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ck := *base
			tc.mutate(&ck)
			fab, ckt := synth(t, spec, spec.PaperIKMB)
			cfg := tc.cfg
			cfg.Resume = &ck
			if _, err := Route(fab, ckt.Nets, cfg); err == nil {
				t.Fatal("incompatible checkpoint resumed without error")
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
