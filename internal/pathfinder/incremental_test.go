package pathfinder

import (
	"fmt"
	"testing"

	"fpgarouter/internal/graph"
	"fpgarouter/internal/stats"
)

// TestIncrementalParityWithFullBookkeeping runs the incremental engine with
// debug hooks that rebuild the pricing and usage state from scratch after
// every reprice and reduce, asserting the delta bookkeeping is bit-equal to
// the full-rebuild oracle: the sharedPrice array, the priced-edge list
// (contents and order), the usage recount, and the history prices. CI runs
// this under -race at Workers 1 and 4.
func TestIncrementalParityWithFullBookkeeping(t *testing.T) {
	names := []string{"term1", "9symml"}
	if testing.Short() {
		names = names[:1]
	}
	for _, name := range names {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(t *testing.T) {
				spec := specNamed(t, name)
				fab, ckt := synth(t, spec, spec.PaperIKMB)
				var mark []uint32
				var ep uint32
				hooks := &debugHooks{
					afterReprice: func(e *engine, iter int, presFac float64) {
						var wantPriced []graph.EdgeID
						for id, r := range e.edgeRes {
							p := e.hist[r] + presFac*float64(e.usage[r])
							if e.sharedPrice[id] != p {
								t.Fatalf("iter %d: sharedPrice[%d] = %v, full reprice computes %v", iter, id, e.sharedPrice[id], p)
							}
							if p != 0 {
								wantPriced = append(wantPriced, graph.EdgeID(id))
							}
						}
						if len(e.priced) != len(wantPriced) {
							t.Fatalf("iter %d: priced list has %d edges, full reprice has %d", iter, len(e.priced), len(wantPriced))
						}
						for i, id := range wantPriced {
							if e.priced[i] != id {
								t.Fatalf("iter %d: priced[%d] = %d, full reprice has %d", iter, i, e.priced[i], id)
							}
						}
					},
					afterReduce: func(e *engine, iter int) {
						if mark == nil {
							mark = make([]uint32, len(e.usage))
						}
						want := make([]int32, len(e.usage))
						for idx := range e.trees {
							ep++
							for _, id := range e.trees[idx].Edges {
								r := e.edgeRes[id]
								if mark[r] == ep {
									continue
								}
								mark[r] = ep
								want[r]++
							}
						}
						for r := range want {
							if e.usage[r] != want[r] {
								t.Fatalf("iter %d: usage[%d] = %d, full recount gives %d", iter, r, e.usage[r], want[r])
							}
						}
					},
				}
				res, err := Route(fab, ckt.Nets, Config{Incremental: true, Workers: workers, hooks: hooks})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Converged {
					t.Fatalf("no convergence at width %d after %d iterations (overflow %d)", spec.PaperIKMB, res.Iterations, res.Overflow)
				}
				if res.IncrementalReroutes == 0 || res.EdgesRetained == 0 {
					t.Fatalf("parity run never exercised partial rip-up: %d reconnects, %d edges retained", res.IncrementalReroutes, res.EdgesRetained)
				}
			})
		}
	}
}

// TestIncrementalConvergesPaperCircuits: partial rip-up must still reach
// zero overflow at the paper widths, produce valid trees, and actually
// retain fragments (otherwise it silently degraded to full reroute).
func TestIncrementalConvergesPaperCircuits(t *testing.T) {
	names := []string{"busc", "term1", "9symml", "apex7"}
	if testing.Short() {
		names = []string{"term1", "9symml"}
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec := specNamed(t, name)
			fab, ckt := synth(t, spec, spec.PaperIKMB)
			res, err := Route(fab, ckt.Nets, Config{Incremental: true})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("no convergence at width %d: %d overflowed resources after %d iterations",
					spec.PaperIKMB, res.Overflow, res.Iterations)
			}
			g := fab.Graph()
			for i, net := range ckt.Nets {
				terms := make([]graph.NodeID, len(net.Pins))
				for j, p := range net.Pins {
					terms[j] = fab.PinNode(p)
				}
				if err := graph.ValidateTree(g, res.Trees[i], terms); err != nil {
					t.Fatalf("net %d: %v", i, err)
				}
			}
			if res.EdgesRetained == 0 {
				t.Fatal("incremental run retained zero edges: partial rip-up never engaged")
			}
		})
	}
}

// TestIncrementalWorkerParityAcrossCounts extends the determinism contract
// to incremental mode: trees, iteration history and the rip-up accounting
// (ripped/retained/reconnect totals) are bit-identical at every worker
// count, because rip decisions read only the frozen usage array and the
// counters are order-free integer sums drained after the barrier.
func TestIncrementalWorkerParityAcrossCounts(t *testing.T) {
	spec := specNamed(t, "term1")
	var want *Result
	for _, workers := range []int{1, 2, 4, 8} {
		fab, ckt := synth(t, spec, spec.PaperIKMB)
		res, err := Route(fab, ckt.Nets, Config{Workers: workers, Incremental: true})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = res
			continue
		}
		if res.Iterations != want.Iterations || res.Converged != want.Converged {
			t.Fatalf("workers=%d: %d iterations (converged=%v), workers=1 had %d (converged=%v)",
				workers, res.Iterations, res.Converged, want.Iterations, want.Converged)
		}
		if res.EdgesRipped != want.EdgesRipped || res.EdgesRetained != want.EdgesRetained || res.IncrementalReroutes != want.IncrementalReroutes {
			t.Fatalf("workers=%d: rip-up accounting (%d ripped, %d retained, %d reconnects) != workers=1 (%d, %d, %d)",
				workers, res.EdgesRipped, res.EdgesRetained, res.IncrementalReroutes,
				want.EdgesRipped, want.EdgesRetained, want.IncrementalReroutes)
		}
		for i := range want.Trees {
			if len(res.Trees[i].Edges) != len(want.Trees[i].Edges) {
				t.Fatalf("workers=%d: net %d has %d edges, want %d", workers, i, len(res.Trees[i].Edges), len(want.Trees[i].Edges))
			}
			for j, id := range want.Trees[i].Edges {
				if res.Trees[i].Edges[j] != id {
					t.Fatalf("workers=%d: net %d edge %d is %d, want %d", workers, i, j, res.Trees[i].Edges[j], id)
				}
			}
		}
		for i, st := range want.History {
			if res.History[i] != st {
				t.Fatalf("workers=%d: iteration %d stat %+v != %+v", workers, i+1, res.History[i], st)
			}
		}
	}
}

// TestIncrementalStatsCounters: the observability layer sees the same
// rip-up accounting the Result reports, plus the delta-reduce savings.
func TestIncrementalStatsCounters(t *testing.T) {
	spec := specNamed(t, "term1")
	fab, ckt := synth(t, spec, spec.PaperIKMB)
	col := stats.New()
	res, err := Route(fab, ckt.Nets, Config{Incremental: true, Stats: col})
	if err != nil {
		t.Fatal(err)
	}
	snap := col.Snapshot()
	if snap.IncrementalReroutes != res.IncrementalReroutes {
		t.Fatalf("collector saw %d reconnects, result says %d", snap.IncrementalReroutes, res.IncrementalReroutes)
	}
	if snap.EdgesRipped != res.EdgesRipped || snap.EdgesRetained != res.EdgesRetained {
		t.Fatalf("collector saw %d/%d ripped/retained, result says %d/%d",
			snap.EdgesRipped, snap.EdgesRetained, res.EdgesRipped, res.EdgesRetained)
	}
	if snap.ReduceEdgesSkipped == 0 {
		t.Fatal("delta reduce recorded no skipped edges")
	}
}

// TestFullModeRipAccounting: full-reroute mode reports every previous-tree
// edge as ripped with zero retained — the contrast the benchmarks print.
func TestFullModeRipAccounting(t *testing.T) {
	spec := specNamed(t, "term1")
	fab, ckt := synth(t, spec, spec.PaperIKMB)
	res, err := Route(fab, ckt.Nets, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgesRipped == 0 {
		t.Fatal("full mode recorded no ripped edges despite rerouting contested nets")
	}
	if res.EdgesRetained != 0 || res.IncrementalReroutes != 0 {
		t.Fatalf("full mode reports %d retained edges and %d reconnects; both must be zero",
			res.EdgesRetained, res.IncrementalReroutes)
	}
}
