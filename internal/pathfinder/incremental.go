package pathfinder

import (
	"slices"

	"fpgarouter/internal/graph"
)

// This file is the incremental rip-up-and-reroute machinery behind
// Config.Incremental: partial tree reuse (reconnect), delta usage
// accounting (reduceDelta) and delta repricing (repriceDelta). The
// full-rebuild paths in pathfinder.go remain the semantic oracle — the
// parity suite asserts the delta bookkeeping reproduces their usage,
// history and priced-edge arrays bit for bit after every iteration.
//
// Invariants the delta bookkeeping maintains:
//
//   - usage[r] equals the full recount over all trees: reduceDelta applies
//     −1 for each distinct resource of a rerouted net's old tree and +1
//     for its new tree (resources in both cancel), and nets whose tree did
//     not change contribute exactly their old count.
//   - A resource is "active" from the first moment any tree uses it, and
//     stays active forever (history prices never decay). Inactive
//     resources provably have hist = usage = 0, so their edges' shared
//     price is 0 without ever being written.
//   - activeEdges is the ascending-edge-ID list of all active resources'
//     edges; filtering it by price ≠ 0 reproduces the full reprice's
//     priced list exactly (any edge with a non-zero price belongs to a
//     resource with hist > 0 or usage > 0, which is active).
//   - touched marks resources whose usage or history changed since the
//     last reprice; when the present factor is unchanged, only their edges
//     need rewriting. A present-factor change rewrites every active
//     resource (the presFac·usage term moved everywhere usage > 0, and
//     rewriting the rest is harmless).
type incState struct {
	resActive   []bool         // resource → has ever been used by a tree
	activeRes   []int32        // activation-ordered list of active resources
	activeEdges []graph.EdgeID // ascending edge IDs of active resources
	newActive   []graph.EdgeID // edges activated since the last reprice
	mergeBuf    []graph.EdgeID // spare buffer for the sorted merge
	touchedMark []bool         // resource → in touched since last reprice
	touched     []int32        // resources with changed usage or history
	prevSnap    []graph.Tree   // rerouted nets' old trees, one iteration
	lastPres    float64        // present factor of the last reprice
	havePres    bool
}

// debugHooks exposes the engine to in-package tests at the two points
// where the delta bookkeeping must agree with a from-scratch rebuild.
// Production configs leave it nil.
type debugHooks struct {
	afterReprice func(e *engine, iter int, presFac float64)
	afterReduce  func(e *engine, iter int)
}

// touchRes marks r's usage or history as changed since the last reprice.
func (e *engine) touchRes(r int32) {
	if !e.inc.touchedMark[r] {
		e.inc.touchedMark[r] = true
		e.inc.touched = append(e.inc.touched, r)
	}
}

// activateRes brings r into the priced universe the first time a tree
// uses it, queueing its edges for the sorted activeEdges merge.
func (e *engine) activateRes(r int32) {
	if !e.inc.resActive[r] {
		e.inc.resActive[r] = true
		e.inc.activeRes = append(e.inc.activeRes, r)
		e.inc.newActive = append(e.inc.newActive, e.resEdges(r)...)
	}
}

// repriceDelta is the incremental reprice: instead of recomputing every
// edge's price, it rewrites only the edges of touched resources (or of all
// active resources when the present factor moved) and rebuilds the priced
// list by filtering the sorted active-edge index. Produces bit-identical
// sharedPrice and priced arrays to reprice (same arithmetic expression,
// same inputs, same list order).
func (e *engine) repriceDelta(presFac float64) {
	if len(e.inc.newActive) > 0 {
		slices.Sort(e.inc.newActive)
		merged := e.inc.mergeBuf[:0]
		a, b := e.inc.activeEdges, e.inc.newActive
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			if a[i] < b[j] {
				merged = append(merged, a[i])
				i++
			} else {
				merged = append(merged, b[j])
				j++
			}
		}
		merged = append(merged, a[i:]...)
		merged = append(merged, b[j:]...)
		e.inc.activeEdges, e.inc.mergeBuf = merged, a[:0]
		e.inc.newActive = e.inc.newActive[:0]
	}
	if !e.inc.havePres || presFac != e.inc.lastPres {
		for _, r := range e.inc.activeRes {
			p := e.hist[r] + presFac*float64(e.usage[r])
			for _, id := range e.resEdges(r) {
				e.sharedPrice[id] = p
			}
		}
	} else {
		for _, r := range e.inc.touched {
			p := e.hist[r] + presFac*float64(e.usage[r])
			for _, id := range e.resEdges(r) {
				e.sharedPrice[id] = p
			}
		}
	}
	e.inc.lastPres, e.inc.havePres = presFac, true
	for _, r := range e.inc.touched {
		e.inc.touchedMark[r] = false
	}
	e.inc.touched = e.inc.touched[:0]
	e.priced = e.priced[:0]
	for _, id := range e.inc.activeEdges {
		if e.sharedPrice[id] != 0 {
			e.priced = append(e.priced, id)
		}
	}
}

// reduceDelta is the incremental reduce: usage moves only by the rerouted
// nets' old-tree/new-tree deltas (usageLive skips even that — the
// Gauss-Seidel pass already adjusted usage net by net). The overflow count,
// sub-gradient history update and HistSum sweep are unchanged from reduce —
// they are O(resources), cheap, and running the identical statements in the
// identical order keeps hist and the IterStats bit-equal to the oracle.
func (e *engine) reduceDelta(list []int32, usageLive bool) (overflow, priceUpdates int, histSum float64) {
	var walked int64
	if !usageLive {
		for i, i32 := range list {
			idx := int(i32)
			old := e.inc.prevSnap[i]
			e.ep++
			for _, id := range old.Edges {
				r := e.edgeRes[id]
				if e.resEp[r] == e.ep {
					continue
				}
				e.resEp[r] = e.ep
				e.usage[r]--
				e.touchRes(r)
			}
			e.ep++
			for _, id := range e.trees[idx].Edges {
				r := e.edgeRes[id]
				if e.resEp[r] == e.ep {
					continue
				}
				e.resEp[r] = e.ep
				e.usage[r]++
				e.touchRes(r)
				e.activateRes(r)
			}
			walked += int64(len(old.Edges) + len(e.trees[idx].Edges))
			e.inc.prevSnap[i] = graph.Tree{}
		}
	}
	// Delta-reduce savings: the full recount walks every tree's edges; the
	// delta walked only the rerouted nets' old and new trees.
	var total int64
	for i := range e.trees {
		total += int64(len(e.trees[i].Edges))
	}
	if saved := total - walked; saved > 0 {
		e.cfg.Stats.AddDeltaReduce(saved)
	}
	for r, u := range e.usage {
		if u > 1 {
			overflow++
			e.hist[r] += e.cfg.HistStep * float64(u-1)
			priceUpdates++
			e.touchRes(int32(r))
		}
	}
	for _, h := range e.hist {
		histSum += h
	}
	return overflow, priceUpdates, histSum
}

// reconnect is the partial rip-up: keep the edges of the net's previous
// tree whose resources are not overflowed, retain the connected fragment
// containing the source terminal (kept edges cut off from it are ripped
// too — a detached fragment no longer routes anything), and reattach each
// orphaned terminal by a goal-directed multi-source search seeded from the
// whole fragment at distance zero. The searches run under the worker's
// overlay after the own-share discount and jitter were applied, so
// reconnection paths are priced by exactly the same effective-weight
// formula as a full reroute. Pendant non-terminal stubs left where cuts
// happened are pruned at the end.
//
// The decision of what to rip depends only on the frozen usage array and
// the net's own previous tree, and the searches only on the overlay and
// net identity — never on scheduling — so the determinism contract holds.
//
// Returns done=false when partial reuse is impossible or useless (no
// previous tree, every edge overflowed, the source's fragment is empty, or
// an orphan is unreachable from the fragment): the caller falls back to
// the full construction.
func (e *engine) reconnect(wk *worker, idx int, terms []graph.NodeID) (graph.Tree, bool) {
	prev := e.trees[idx]
	if len(prev.Edges) == 0 || len(terms) < 2 {
		return graph.Tree{}, false
	}
	kept := wk.kept[:0]
	for _, id := range prev.Edges {
		if e.usage[e.edgeRes[id]] <= 1 {
			kept = append(kept, id)
		}
	}
	wk.kept = kept
	if len(kept) == 0 {
		return graph.Tree{}, false
	}
	// Connected components of the kept edges: dense-slot the endpoints and
	// union-find over a worker-local grow-only parent array.
	ns := wk.scratch.NodeSet(e.g.NumNodes())
	parent := wk.parent[:0]
	slot := func(v graph.NodeID) int32 {
		s := ns.Slot(v)
		for int(s) >= len(parent) {
			parent = append(parent, int32(len(parent)))
		}
		return s
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	for _, id := range kept {
		ed := e.g.Edge(id)
		ra, rb := find(slot(ed.U)), find(slot(ed.V))
		if ra != rb {
			parent[rb] = ra
		}
	}
	wk.parent = parent
	src := terms[0]
	if !ns.Has(src) {
		// No kept edge touches the source: the retained fragment is the bare
		// source node and reconnection would degenerate to a full reroute
		// with a worse construction. Let the full path handle it.
		return graph.Tree{}, false
	}
	root := find(slot(src))
	// Collect the source's fragment: its edges become the tree skeleton,
	// its nodes the zero-distance seed set. seen marks fragment membership.
	if len(wk.seen) < e.g.NumNodes() {
		wk.seen = make([]uint32, e.g.NumNodes())
		wk.seenEp = 0
	}
	wk.seenEp++
	if wk.seenEp == 0 {
		clear(wk.seen)
		wk.seenEp = 1
	}
	seeds := wk.seeds[:0]
	out := wk.out[:0]
	retained := 0
	addSeed := func(v graph.NodeID) {
		if wk.seen[v] != wk.seenEp {
			wk.seen[v] = wk.seenEp
			seeds = append(seeds, graph.Seed{Node: v})
		}
	}
	for _, id := range kept {
		ed := e.g.Edge(id)
		if find(slot(ed.U)) != root {
			continue
		}
		out = append(out, id)
		retained++
		addSeed(ed.U)
		addSeed(ed.V)
	}
	addSeed(src)
	orphans := wk.orphans[:0]
	for _, tn := range terms {
		if wk.seen[tn] == wk.seenEp {
			continue
		}
		dup := false
		for _, o := range orphans {
			if o == tn {
				dup = true
				break
			}
		}
		if !dup {
			orphans = append(orphans, tn)
		}
	}
	b := e.fab.Bounds()
	for len(orphans) > 0 {
		h := b.ToSet(orphans)
		goal, spt := e.g.AStarFromAnyOverlay(wk.scratch, seeds, orphans, wk.ov, h)
		if goal == graph.None {
			wk.scratch.RecycleSPT(spt)
			wk.seeds, wk.orphans, wk.out = seeds, orphans, out
			return graph.Tree{}, false
		}
		// Walk the path back to the fragment, adding its edges to the tree
		// and its nodes to the seed set for the remaining orphans.
		for v := goal; spt.ParentEdge[v] != graph.None; v = spt.ParentNode[v] {
			out = append(out, spt.ParentEdge[v])
			wk.seen[v] = wk.seenEp
			seeds = append(seeds, graph.Seed{Node: v})
		}
		wk.scratch.RecycleSPT(spt)
		for i, o := range orphans {
			if o == goal {
				orphans = append(orphans[:i], orphans[i+1:]...)
				break
			}
		}
	}
	wk.seeds, wk.orphans, wk.out = seeds, orphans, out
	wk.increroutes++
	wk.retained += int64(retained)
	wk.ripped += int64(len(prev.Edges) - retained)
	return graph.PruneTree(e.g, out, terms), true
}
