// Package rect implements rectilinear (Manhattan-plane) Steiner tree
// constructions: the rectilinear minimum spanning tree and the Iterated
// 1-Steiner heuristic of Kahng and Robins, which the paper's IGMST template
// generalizes ("IGMST generalizes the Iterated 1-Steiner heuristic of
// Kahng and Robins where H is an ordinary rectilinear minimum spanning
// tree construction", Section 3). Section 5 further notes that IKMB and
// Iterated 1-Steiner yield identical solutions on geometric instances when
// the Hanan grid is used as the underlying graph — an equivalence the
// package's tests verify against the graph-domain implementation.
package rect

import (
	"fmt"
	"sort"

	"fpgarouter/internal/graph"
)

// Point is a point in the Manhattan plane.
type Point struct {
	X, Y int
}

func dist(a, b Point) int {
	dx := a.X - b.X
	if dx < 0 {
		dx = -dx
	}
	dy := a.Y - b.Y
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// MSTCost returns the cost of a rectilinear minimum spanning tree over the
// points (Prim, O(n²) — the instances here are nets, not clouds).
func MSTCost(pts []Point) int {
	n := len(pts)
	if n <= 1 {
		return 0
	}
	const inf = int(^uint(0) >> 1)
	inTree := make([]bool, n)
	best := make([]int, n)
	for i := range best {
		best[i] = inf
	}
	best[0] = 0
	total := 0
	for iter := 0; iter < n; iter++ {
		u := -1
		for v := 0; v < n; v++ {
			if !inTree[v] && (u < 0 || best[v] < best[u]) {
				u = v
			}
		}
		inTree[u] = true
		total += best[u]
		for v := 0; v < n; v++ {
			if !inTree[v] {
				if d := dist(pts[u], pts[v]); d < best[v] {
					best[v] = d
				}
			}
		}
	}
	return total
}

// HananCandidates returns the Hanan grid points of the point set (every
// intersection of a horizontal and a vertical line through an input
// point), excluding the input points themselves.
func HananCandidates(pts []Point) []Point {
	xs := map[int]bool{}
	ys := map[int]bool{}
	in := map[Point]bool{}
	for _, p := range pts {
		xs[p.X] = true
		ys[p.Y] = true
		in[p] = true
	}
	sortedXs := make([]int, 0, len(xs))
	for x := range xs {
		sortedXs = append(sortedXs, x)
	}
	sort.Ints(sortedXs)
	sortedYs := make([]int, 0, len(ys))
	for y := range ys {
		sortedYs = append(sortedYs, y)
	}
	sort.Ints(sortedYs)
	var out []Point
	for _, x := range sortedXs {
		for _, y := range sortedYs {
			p := Point{x, y}
			if !in[p] {
				out = append(out, p)
			}
		}
	}
	return out
}

// Iterated1Steiner runs the Kahng–Robins Iterated 1-Steiner heuristic:
// repeatedly add the Hanan candidate that maximizes the rectilinear MST
// savings, stopping when no candidate saves wire. It returns the final MST
// cost over terminals plus chosen Steiner points (degree-≤2 Steiner point
// cleanup is implicit in the cost: a candidate that stops helping would
// not have been admitted with positive savings).
func Iterated1Steiner(terminals []Point) int {
	pts := append([]Point(nil), terminals...)
	base := MSTCost(pts)
	for {
		cands := HananCandidates(pts)
		bestGain := 0
		bestIdx := -1
		for i, c := range cands {
			cost := MSTCost(append(pts, c))
			if gain := base - cost; gain > bestGain {
				bestGain = gain
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			return base
		}
		pts = append(pts, cands[bestIdx])
		base -= bestGain
	}
}

// HananGraph builds the Hanan grid of the point set as a weighted graph
// (nodes at every grid intersection, edges between grid-adjacent
// intersections weighted by rectilinear distance) and returns the terminal
// node IDs, so the graph-domain constructions can run on the geometric
// instance.
func HananGraph(pts []Point) (*graph.Graph, []graph.NodeID, error) {
	if len(pts) == 0 {
		return nil, nil, fmt.Errorf("rect: empty point set")
	}
	xs := map[int]bool{}
	ys := map[int]bool{}
	for _, p := range pts {
		xs[p.X] = true
		ys[p.Y] = true
	}
	sortedXs := make([]int, 0, len(xs))
	for x := range xs {
		sortedXs = append(sortedXs, x)
	}
	sort.Ints(sortedXs)
	sortedYs := make([]int, 0, len(ys))
	for y := range ys {
		sortedYs = append(sortedYs, y)
	}
	sort.Ints(sortedYs)
	xi := map[int]int{}
	for i, x := range sortedXs {
		xi[x] = i
	}
	yi := map[int]int{}
	for i, y := range sortedYs {
		yi[y] = i
	}
	cols, rows := len(sortedXs), len(sortedYs)
	g := graph.New(cols * rows)
	node := func(ix, iy int) graph.NodeID { return graph.NodeID(iy*cols + ix) }
	for iy := 0; iy < rows; iy++ {
		for ix := 0; ix < cols; ix++ {
			if ix+1 < cols {
				w := float64(sortedXs[ix+1] - sortedXs[ix])
				g.AddEdge(node(ix, iy), node(ix+1, iy), w)
			}
			if iy+1 < rows {
				w := float64(sortedYs[iy+1] - sortedYs[iy])
				g.AddEdge(node(ix, iy), node(ix, iy+1), w)
			}
		}
	}
	terms := make([]graph.NodeID, len(pts))
	for i, p := range pts {
		terms[i] = node(xi[p.X], yi[p.Y])
	}
	return g, terms, nil
}
