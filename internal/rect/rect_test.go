package rect

import (
	"math/rand"
	"testing"

	"fpgarouter/internal/core"
	"fpgarouter/internal/graph"
	"fpgarouter/internal/steiner"
)

func TestMSTCostKnown(t *testing.T) {
	// Unit square: MST = 3 sides.
	pts := []Point{{0, 0}, {1, 0}, {0, 1}, {1, 1}}
	if got := MSTCost(pts); got != 3 {
		t.Fatalf("MST = %d, want 3", got)
	}
	if MSTCost(pts[:1]) != 0 || MSTCost(nil) != 0 {
		t.Fatal("degenerate MSTs should be 0")
	}
}

func TestHananCandidates(t *testing.T) {
	// Three corners of a rectangle: one Hanan candidate (the 4th corner).
	pts := []Point{{0, 0}, {4, 0}, {0, 3}}
	c := HananCandidates(pts)
	if len(c) != 1 || c[0] != (Point{4, 3}) {
		t.Fatalf("candidates = %v", c)
	}
}

func TestIterated1SteinerCross(t *testing.T) {
	// A plus sign: four arms at distance 2 from the crossing point. The
	// MST costs 3 arms' pairwise connections; I1S finds the crossing.
	pts := []Point{{2, 0}, {2, 4}, {0, 2}, {4, 2}}
	mst := MSTCost(pts)
	i1s := Iterated1Steiner(pts)
	if i1s != 8 {
		t.Fatalf("I1S = %d, want 8 (the cross)", i1s)
	}
	if mst <= i1s {
		t.Fatalf("MST %d should exceed I1S %d on the cross", mst, i1s)
	}
}

func TestHananGraphDistances(t *testing.T) {
	pts := []Point{{0, 0}, {5, 0}, {0, 7}, {5, 7}}
	g, terms, err := HananGraph(pts)
	if err != nil {
		t.Fatal(err)
	}
	spt := g.Dijkstra(terms[0])
	if spt.Dist[terms[3]] != 12 {
		t.Fatalf("Hanan graph distance = %v, want 12", spt.Dist[terms[3]])
	}
}

// The paper's Section 5 note: "IKMB and the Iterated 1-Steiner heuristic of
// Kahng and Robins yield identical solutions for geometric instances (i.e.,
// when using the Hanan grid as the underlying graph)". On random point
// sets our two implementations agree on most instances; where they differ,
// the graph-domain IKMB is strictly better, because KMB's second MST pass
// over expanded paths creates junction Steiner points for free that the
// plain rectilinear-MST base of Iterated 1-Steiner has to discover one
// candidate at a time. The test asserts IKMB ≤ I1S always, equality on the
// majority, and the usual optimality sandwich.
func TestIKMBEqualsIterated1SteinerOnHananGrid(t *testing.T) {
	equal, total := 0, 0
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(3)
		seen := map[Point]bool{}
		var pts []Point
		for len(pts) < n {
			p := Point{rng.Intn(9), rng.Intn(9)}
			if !seen[p] {
				seen[p] = true
				pts = append(pts, p)
			}
		}
		geo := Iterated1Steiner(pts)
		g, terms, err := HananGraph(pts)
		if err != nil {
			t.Fatal(err)
		}
		cache := graph.NewSPTCache(g)
		ikmb, err := core.IKMB(cache, terms)
		if err != nil {
			t.Fatal(err)
		}
		got := int(ikmb.Cost + 0.5)
		total++
		if got == geo {
			equal++
		} else if got > geo {
			t.Fatalf("trial %d (%v): IKMB %v worse than I1S %d", trial, pts, ikmb.Cost, geo)
		}
		// Both sit between the Steiner optimum and the rectilinear MST.
		opt, err := steiner.ExactCost(cache, terms)
		if err == nil {
			if ikmb.Cost < opt-1e-9 {
				t.Fatalf("trial %d: IKMB %v below optimum %v", trial, ikmb.Cost, opt)
			}
		}
		if float64(MSTCost(pts)) < ikmb.Cost-1e-9 {
			t.Fatalf("trial %d: IKMB %v above the MST %d", trial, ikmb.Cost, MSTCost(pts))
		}
	}
	if equal*2 < total {
		t.Fatalf("IKMB matched I1S on only %d of %d instances", equal, total)
	}
}
