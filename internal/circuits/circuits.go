// Package circuits provides the benchmark workloads for the router
// experiments. The paper evaluates fourteen industrial circuits (from Rose
// and Brown's benchmark suite) that were distributed privately in 1995 and
// are not reconstructible from the paper; this package synthesizes placed
// netlists statistically matched to the published per-circuit data: FPGA
// array size, net count, and the pin-count histogram of Tables 2 and 3.
// Synthesis is deterministic per (spec, seed), uses locality-biased sink
// placement (most connections are short, a fraction are global — the usual
// Rent-style structure of placed netlists), and assigns every net terminal
// a distinct physical logic-block pin.
package circuits

import (
	"fmt"
	"math/rand"
	"sort"

	"fpgarouter/internal/fpga"
)

// Series selects the FPGA family (and thus routing flexibilities) a circuit
// targets.
type Series int

const (
	// Series3000 is the Xilinx 3000 family: Fs = 6, Fc = ⌈0.6W⌉ (Table 2).
	Series3000 Series = iota
	// Series4000 is the Xilinx 4000 family: Fs = 3, Fc = W (Tables 3–5).
	Series4000
)

func (s Series) String() string {
	if s == Series3000 {
		return "Xilinx3000"
	}
	return "Xilinx4000"
}

// Spec describes a benchmark circuit: the published statistics a synthetic
// netlist must match.
type Spec struct {
	Name       string
	Series     Series
	Cols, Rows int
	Nets2_3    int // nets with 2–3 pins
	Nets4_10   int // nets with 4–10 pins
	NetsOver10 int // nets with more than 10 pins

	// Published minimum channel widths from the literature, for the
	// comparison columns of Tables 2–4 (0 = not reported).
	CGE, SEGA, GBP int
	// PaperIKMB/PFA/IDOM are the widths the paper's own router achieved,
	// recorded for EXPERIMENTS.md comparisons (Tables 2–4).
	PaperIKMB, PaperPFA, PaperIDOM int
	// Table5W is the fixed channel width used in Table 5 (0 = circuit not
	// in Table 5).
	Table5W int
}

// TotalNets returns the circuit's net count.
func (s Spec) TotalNets() int { return s.Nets2_3 + s.Nets4_10 + s.NetsOver10 }

// ArchAt returns the circuit's architecture at channel width w.
func (s Spec) ArchAt(w int) fpga.Arch {
	if s.Series == Series3000 {
		return fpga.Xilinx3000(s.Cols, s.Rows, w)
	}
	return fpga.Xilinx4000(s.Cols, s.Rows, w)
}

// Table2Circuits are the five 3000-series circuits of Table 2.
var Table2Circuits = []Spec{
	{Name: "busc", Series: Series3000, Cols: 12, Rows: 13, Nets2_3: 115, Nets4_10: 28, NetsOver10: 8, CGE: 10, PaperIKMB: 7},
	{Name: "dma", Series: Series3000, Cols: 16, Rows: 18, Nets2_3: 139, Nets4_10: 52, NetsOver10: 22, CGE: 10, PaperIKMB: 9},
	{Name: "bnre", Series: Series3000, Cols: 21, Rows: 22, Nets2_3: 255, Nets4_10: 70, NetsOver10: 27, CGE: 12, PaperIKMB: 9},
	{Name: "dfsm", Series: Series3000, Cols: 22, Rows: 23, Nets2_3: 361, Nets4_10: 26, NetsOver10: 33, CGE: 10, PaperIKMB: 9},
	{Name: "z03", Series: Series3000, Cols: 26, Rows: 27, Nets2_3: 398, Nets4_10: 176, NetsOver10: 34, CGE: 13, PaperIKMB: 11},
}

// Table3Circuits are the nine 4000-series circuits of Tables 3–5.
var Table3Circuits = []Spec{
	{Name: "alu4", Series: Series4000, Cols: 19, Rows: 17, Nets2_3: 165, Nets4_10: 69, NetsOver10: 21, SEGA: 15, GBP: 14, PaperIKMB: 11, PaperPFA: 14, PaperIDOM: 13, Table5W: 14},
	{Name: "apex7", Series: Series4000, Cols: 12, Rows: 10, Nets2_3: 83, Nets4_10: 30, NetsOver10: 2, SEGA: 13, GBP: 11, PaperIKMB: 10, PaperPFA: 11, PaperIDOM: 11, Table5W: 11},
	{Name: "term1", Series: Series4000, Cols: 10, Rows: 9, Nets2_3: 65, Nets4_10: 21, NetsOver10: 2, SEGA: 10, GBP: 10, PaperIKMB: 8, PaperPFA: 9, PaperIDOM: 9, Table5W: 9},
	{Name: "example2", Series: Series4000, Cols: 14, Rows: 12, Nets2_3: 171, Nets4_10: 25, NetsOver10: 9, SEGA: 17, GBP: 13, PaperIKMB: 11, PaperPFA: 13, PaperIDOM: 13, Table5W: 13},
	{Name: "too_large", Series: Series4000, Cols: 14, Rows: 14, Nets2_3: 128, Nets4_10: 46, NetsOver10: 12, SEGA: 12, GBP: 12, PaperIKMB: 10, PaperPFA: 12, PaperIDOM: 12, Table5W: 12},
	{Name: "k2", Series: Series4000, Cols: 22, Rows: 20, Nets2_3: 241, Nets4_10: 146, NetsOver10: 17, SEGA: 17, GBP: 17, PaperIKMB: 15, PaperPFA: 17, PaperIDOM: 17, Table5W: 17},
	{Name: "vda", Series: Series4000, Cols: 17, Rows: 16, Nets2_3: 132, Nets4_10: 80, NetsOver10: 13, SEGA: 13, GBP: 13, PaperIKMB: 12, PaperPFA: 14, PaperIDOM: 13, Table5W: 14},
	{Name: "9symml", Series: Series4000, Cols: 11, Rows: 10, Nets2_3: 60, Nets4_10: 11, NetsOver10: 8, SEGA: 10, GBP: 9, PaperIKMB: 8, PaperPFA: 9, PaperIDOM: 8, Table5W: 9},
	{Name: "alu2", Series: Series4000, Cols: 15, Rows: 13, Nets2_3: 109, Nets4_10: 26, NetsOver10: 18, SEGA: 11, GBP: 11, PaperIKMB: 9, PaperPFA: 11, PaperIDOM: 10, Table5W: 11},
}

// SpecByName finds a benchmark spec by name across both tables.
func SpecByName(name string) (Spec, bool) {
	for _, s := range append(append([]Spec(nil), Table2Circuits...), Table3Circuits...) {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Net is a placed net: the first pin is the signal source, the rest are
// sinks.
type Net struct {
	ID   int
	Pins []fpga.Pin
}

// Circuit is a synthesized placed netlist targeting a spec's FPGA.
type Circuit struct {
	Spec
	Nets []Net
}

// Synthesize generates a placed netlist matching spec's statistics.
// Generation is deterministic for a given (spec, seed) pair.
func Synthesize(spec Spec, seed int64) (*Circuit, error) {
	pinsPerSide := spec.ArchAt(4).PinsPerSide
	gen := &generator{
		spec:  spec,
		rng:   rand.New(rand.NewSource(seed)),
		used:  make(map[fpga.Pin]bool),
		pps:   pinsPerSide,
		freeC: make([]int, spec.Cols*spec.Rows),
	}
	for i := range gen.freeC {
		gen.freeC[i] = 4 * pinsPerSide
	}

	// Draw all pin counts first so capacity problems surface immediately.
	var counts []int
	for i := 0; i < spec.NetsOver10; i++ {
		counts = append(counts, gen.pinCountOver10())
	}
	for i := 0; i < spec.Nets4_10; i++ {
		counts = append(counts, gen.pinCount4_10())
	}
	for i := 0; i < spec.Nets2_3; i++ {
		counts = append(counts, gen.pinCount2_3())
	}
	demand := 0
	for _, c := range counts {
		demand += c
	}
	if capacity := spec.Cols * spec.Rows * 4 * pinsPerSide; demand > capacity {
		return nil, fmt.Errorf("circuits: %s demands %d pins, fabric has %d", spec.Name, demand, capacity)
	}

	// Largest nets first: they need the most contiguous free pins.
	ckt := &Circuit{Spec: spec}
	for i, k := range counts {
		net, err := gen.placeNet(i, k)
		if err != nil {
			return nil, err
		}
		ckt.Nets = append(ckt.Nets, net)
	}
	// Present nets in a stable order (by ID) regardless of generation
	// bucket ordering.
	sort.Slice(ckt.Nets, func(a, b int) bool { return ckt.Nets[a].ID < ckt.Nets[b].ID })
	return ckt, nil
}

type generator struct {
	spec  Spec
	rng   *rand.Rand
	used  map[fpga.Pin]bool
	pps   int
	freeC []int // free pin count per block
}

func (g *generator) pinCount2_3() int {
	if g.rng.Float64() < 0.55 {
		return 2
	}
	return 3
}

func (g *generator) pinCount4_10() int {
	// Skewed toward the small end, like real netlist fanout distributions.
	r := g.rng.Float64()
	return 4 + int(6*r*r*0.999)
}

func (g *generator) pinCountOver10() int {
	r := g.rng.Float64()
	return 11 + int(14*r*r*0.999)
}

// placeNet places a k-pin net: a random source block, sinks drawn from a
// locality-biased mixture, each endpoint on a distinct block with a free
// pin.
func (g *generator) placeNet(id, k int) (Net, error) {
	cols, rows := g.spec.Cols, g.spec.Rows
	// Placed netlists are local: placement minimizes wirelength, so net
	// spread grows sublinearly with array size (Rent-style). A near-
	// constant Gaussian radius with a small size-dependent term matches
	// the published minimum channel widths' scaling across the benchmark
	// suite (busc at 12×13 up to z03 at 26×27 route within a few tracks
	// of each other).
	sigma := 2.0 + float64(max(cols, rows))/20.0
	if k <= 3 {
		sigma *= 0.7 // 2–3 pin nets are the shortest in placed designs
	}
	var blocks []int
	inNet := make(map[int]bool, k)
	// Source.
	srcBlk := g.randomFreeBlock()
	if srcBlk < 0 {
		return Net{}, fmt.Errorf("circuits: no free pins left for net %d", id)
	}
	blocks = append(blocks, srcBlk)
	inNet[srcBlk] = true
	sx, sy := srcBlk%cols, srcBlk/cols
	for len(blocks) < k {
		var bx, by int
		if g.rng.Float64() < 0.88 {
			// Local connection: Gaussian around the source.
			bx = min(max(sx+int(g.rng.NormFloat64()*sigma+0.5), 0), cols-1)
			by = min(max(sy+int(g.rng.NormFloat64()*sigma+0.5), 0), rows-1)
		} else {
			// Global connection: uniform anywhere.
			bx = g.rng.Intn(cols)
			by = g.rng.Intn(rows)
		}
		blk := by*cols + bx
		blk = g.nearestFreeBlock(blk, inNet)
		if blk < 0 {
			return Net{}, fmt.Errorf("circuits: no free block for net %d", id)
		}
		blocks = append(blocks, blk)
		inNet[blk] = true
	}
	net := Net{ID: id, Pins: make([]fpga.Pin, 0, k)}
	for _, blk := range blocks {
		p, err := g.takePin(blk)
		if err != nil {
			return Net{}, err
		}
		net.Pins = append(net.Pins, p)
	}
	return net, nil
}

// randomFreeBlock returns a uniformly random block with a free pin.
func (g *generator) randomFreeBlock() int {
	n := g.spec.Cols * g.spec.Rows
	for tries := 0; tries < 4*n; tries++ {
		blk := g.rng.Intn(n)
		if g.freeC[blk] > 0 {
			return blk
		}
	}
	for blk, c := range g.freeC {
		if c > 0 {
			return blk
		}
	}
	return -1
}

// nearestFreeBlock finds the block nearest to want (in Manhattan rings)
// that still has a free pin and is not already in the net.
func (g *generator) nearestFreeBlock(want int, exclude map[int]bool) int {
	cols, rows := g.spec.Cols, g.spec.Rows
	wx, wy := want%cols, want/cols
	maxR := cols + rows
	for r := 0; r <= maxR; r++ {
		// Walk the ring at Manhattan radius r deterministically.
		for dx := -r; dx <= r; dx++ {
			dy := r - absInt(dx)
			for _, sy := range []int{dy, -dy} {
				x, y := wx+dx, wy+sy
				if x < 0 || x >= cols || y < 0 || y >= rows {
					continue
				}
				blk := y*cols + x
				if g.freeC[blk] > 0 && !exclude[blk] {
					return blk
				}
				if dy == 0 {
					break // avoid double-visiting the dy == -dy cell
				}
			}
		}
	}
	return -1
}

// takePin claims a random free pin on the block.
func (g *generator) takePin(blk int) (fpga.Pin, error) {
	cols := g.spec.Cols
	x, y := blk%cols, blk/cols
	total := 4 * g.pps
	start := g.rng.Intn(total)
	for d := 0; d < total; d++ {
		slot := (start + d) % total
		p := fpga.Pin{X: x, Y: y, Side: fpga.Side(slot / g.pps), Index: slot % g.pps}
		if !g.used[p] {
			g.used[p] = true
			g.freeC[blk]--
			return p, nil
		}
	}
	return fpga.Pin{}, fmt.Errorf("circuits: block (%d,%d) has no free pin", x, y)
}

// PinHistogram returns the number of nets with 2–3, 4–10, and >10 pins.
func (c *Circuit) PinHistogram() (n23, n410, nOver int) {
	for _, n := range c.Nets {
		switch k := len(n.Pins); {
		case k <= 3:
			n23++
		case k <= 10:
			n410++
		default:
			nOver++
		}
	}
	return
}

// absInt is the one arithmetic helper the stdlib still lacks for ints
// (max/min are builtins since Go 1.21; see nearestFreeBlock's ring walk).
func absInt(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
