package circuits

import (
	"testing"

	"fpgarouter/internal/fpga"
)

func TestSpecTotalsMatchPaper(t *testing.T) {
	// Table 2 totals: 1744 nets = 1268 + 352 + 124.
	var nets, n23, n410, nOver int
	for _, s := range Table2Circuits {
		nets += s.TotalNets()
		n23 += s.Nets2_3
		n410 += s.Nets4_10
		nOver += s.NetsOver10
	}
	if nets != 1744 || n23 != 1268 || n410 != 352 || nOver != 124 {
		t.Fatalf("table 2 totals: %d %d %d %d", nets, n23, n410, nOver)
	}
	// Table 3 totals: 1710 nets = 1154 + 454 + 102.
	nets, n23, n410, nOver = 0, 0, 0, 0
	for _, s := range Table3Circuits {
		nets += s.TotalNets()
		n23 += s.Nets2_3
		n410 += s.Nets4_10
		nOver += s.NetsOver10
	}
	if nets != 1710 || n23 != 1154 || n410 != 454 || nOver != 102 {
		t.Fatalf("table 3 totals: %d %d %d %d", nets, n23, n410, nOver)
	}
	// Published comparator totals: CGE 55; SEGA 118; GBP 110; paper router
	// 45 (3000) and 94 (4000).
	cge, ours3 := 0, 0
	for _, s := range Table2Circuits {
		cge += s.CGE
		ours3 += s.PaperIKMB
	}
	if cge != 55 || ours3 != 45 {
		t.Fatalf("table 2 widths: CGE %d ours %d", cge, ours3)
	}
	sega, gbp, ours4, pfa, idom := 0, 0, 0, 0, 0
	for _, s := range Table3Circuits {
		sega += s.SEGA
		gbp += s.GBP
		ours4 += s.PaperIKMB
		pfa += s.PaperPFA
		idom += s.PaperIDOM
	}
	if sega != 118 || gbp != 110 || ours4 != 94 {
		t.Fatalf("table 3 widths: SEGA %d GBP %d ours %d", sega, gbp, ours4)
	}
	if pfa != 110 || idom != 106 {
		t.Fatalf("table 4 widths: PFA %d IDOM %d", pfa, idom)
	}
}

func TestSpecByName(t *testing.T) {
	s, ok := SpecByName("busc")
	if !ok || s.Cols != 12 || s.Rows != 13 {
		t.Fatalf("busc lookup: %+v %v", s, ok)
	}
	if _, ok := SpecByName("nonesuch"); ok {
		t.Fatal("bogus name found")
	}
}

func TestSynthesizeMatchesHistogram(t *testing.T) {
	for _, spec := range append(append([]Spec(nil), Table2Circuits...), Table3Circuits...) {
		ckt, err := Synthesize(spec, 1)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if len(ckt.Nets) != spec.TotalNets() {
			t.Fatalf("%s: %d nets, want %d", spec.Name, len(ckt.Nets), spec.TotalNets())
		}
		n23, n410, nOver := ckt.PinHistogram()
		if n23 != spec.Nets2_3 || n410 != spec.Nets4_10 || nOver != spec.NetsOver10 {
			t.Fatalf("%s: histogram %d/%d/%d, want %d/%d/%d",
				spec.Name, n23, n410, nOver, spec.Nets2_3, spec.Nets4_10, spec.NetsOver10)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a, err := Synthesize(Table2Circuits[0], 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(Table2Circuits[0], 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Nets {
		if len(a.Nets[i].Pins) != len(b.Nets[i].Pins) {
			t.Fatalf("net %d differs in size", i)
		}
		for j := range a.Nets[i].Pins {
			if a.Nets[i].Pins[j] != b.Nets[i].Pins[j] {
				t.Fatalf("net %d pin %d differs", i, j)
			}
		}
	}
	c, err := Synthesize(Table2Circuits[0], 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Nets {
		for j := range a.Nets[i].Pins {
			if j >= len(c.Nets[i].Pins) || a.Nets[i].Pins[j] != c.Nets[i].Pins[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical netlists")
	}
}

func TestSynthesizePinsUniqueAndDistinctBlocks(t *testing.T) {
	ckt, err := Synthesize(Table3Circuits[0], 7) // alu4
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[fpga.Pin]bool)
	for _, n := range ckt.Nets {
		if len(n.Pins) < 2 {
			t.Fatalf("net %d has %d pins", n.ID, len(n.Pins))
		}
		blocks := make(map[[2]int]bool)
		for _, p := range n.Pins {
			if seen[p] {
				t.Fatalf("pin %v used by two nets", p)
			}
			seen[p] = true
			key := [2]int{p.X, p.Y}
			if blocks[key] {
				t.Fatalf("net %d touches block (%d,%d) twice", n.ID, p.X, p.Y)
			}
			blocks[key] = true
			if p.X < 0 || p.X >= ckt.Cols || p.Y < 0 || p.Y >= ckt.Rows {
				t.Fatalf("pin %v outside array", p)
			}
		}
	}
}

func TestSynthesizeLocalityBias(t *testing.T) {
	// Mean sink distance should be well below the uniform-placement
	// expectation (≈ (Cols+Rows)/3 for uniform points).
	spec := Table2Circuits[4] // z03, 26×27
	ckt, err := Synthesize(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	var cnt int
	for _, n := range ckt.Nets {
		src := n.Pins[0]
		for _, p := range n.Pins[1:] {
			sum += float64(absInt(p.X-src.X) + absInt(p.Y-src.Y))
			cnt++
		}
	}
	mean := sum / float64(cnt)
	uniform := float64(spec.Cols+spec.Rows) / 3.0
	if mean >= uniform {
		t.Fatalf("mean sink distance %.2f not below uniform %.2f; no locality", mean, uniform)
	}
	if mean < 1 {
		t.Fatalf("mean sink distance %.2f implausibly small", mean)
	}
}
