package circuits

import (
	"encoding/json"
	"fmt"

	"fpgarouter/internal/fpga"
)

// The JSON wire format.
//
// This is the machine interface mirror of the line-oriented netlist text
// format (io.go): cmd/routed accepts inline netlists in this shape, and
// test fixtures use it for golden round trips. Pins reuse the text format's
// "x,y,SIDE,index" tuple so both formats validate identically:
//
//	{
//	  "name": "busc", "series": "3000", "cols": 12, "rows": 13,
//	  "nets": [
//	    {"id": 0, "pins": ["3,4,N,0", "5,4,S,1", "3,6,E,0"]},
//	    {"id": 1, "pins": ["0,0,E,0", "1,1,W,0"]}
//	  ]
//	}
//
// Only the structural fields travel: published-width metadata of the Spec
// (CGE, PaperIKMB, …) is dropped on encode, and the pin histogram is
// rebuilt on decode, exactly as the text parser does.

type circuitWire struct {
	Name   string    `json:"name"`
	Series string    `json:"series"`
	Cols   int       `json:"cols"`
	Rows   int       `json:"rows"`
	Nets   []netWire `json:"nets"`
}

type netWire struct {
	ID   int      `json:"id"`
	Pins []string `json:"pins"`
}

// MarshalJSON encodes the circuit in the JSON wire format.
func (c *Circuit) MarshalJSON() ([]byte, error) {
	w := circuitWire{Name: c.Name, Series: "4000", Cols: c.Cols, Rows: c.Rows}
	if c.Series == Series3000 {
		w.Series = "3000"
	}
	w.Nets = make([]netWire, len(c.Nets))
	for i, n := range c.Nets {
		pins := make([]string, len(n.Pins))
		for j, p := range n.Pins {
			pins[j] = fmt.Sprintf("%d,%d,%s,%d", p.X, p.Y, p.Side, p.Index)
		}
		w.Nets[i] = netWire{ID: n.ID, Pins: pins}
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes a circuit from the JSON wire format, applying the
// same validation as the text parser: a positive array size, every pin
// inside the array, and at least two pins per net.
func (c *Circuit) UnmarshalJSON(data []byte) error {
	var w circuitWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	var series Series
	switch w.Series {
	case "3000":
		series = Series3000
	case "4000":
		series = Series4000
	default:
		return fmt.Errorf("circuits: unknown series %q", w.Series)
	}
	if w.Cols < 1 || w.Rows < 1 {
		return fmt.Errorf("circuits: bad array size %dx%d", w.Cols, w.Rows)
	}
	out := Circuit{Spec: Spec{Name: w.Name, Series: series, Cols: w.Cols, Rows: w.Rows}}
	for _, nw := range w.Nets {
		net := Net{ID: nw.ID, Pins: make([]fpga.Pin, 0, len(nw.Pins))}
		for _, tok := range nw.Pins {
			p, err := parsePin(tok, w.Cols, w.Rows)
			if err != nil {
				return fmt.Errorf("circuits: net %d: %w", nw.ID, err)
			}
			net.Pins = append(net.Pins, p)
		}
		if len(net.Pins) < 2 {
			return fmt.Errorf("circuits: net %d has fewer than 2 pins", nw.ID)
		}
		out.Nets = append(out.Nets, net)
	}
	out.rebuildHistogram()
	*c = out
	return nil
}

// rebuildHistogram refreshes the Spec's pin-count statistics from the
// actual nets (shared by the text parser and the JSON decoder).
func (c *Circuit) rebuildHistogram() {
	c.Nets2_3, c.Nets4_10, c.NetsOver10 = c.PinHistogram()
}
