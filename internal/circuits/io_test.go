package circuits

import (
	"bytes"
	"strings"
	"testing"
)

func TestNetlistRoundTrip(t *testing.T) {
	orig, err := Synthesize(Table3Circuits[2], 5) // term1
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Name != orig.Name || parsed.Cols != orig.Cols || parsed.Rows != orig.Rows || parsed.Series != orig.Series {
		t.Fatalf("header mismatch: %+v vs %+v", parsed.Spec, orig.Spec)
	}
	if len(parsed.Nets) != len(orig.Nets) {
		t.Fatalf("nets = %d, want %d", len(parsed.Nets), len(orig.Nets))
	}
	for i := range orig.Nets {
		if parsed.Nets[i].ID != orig.Nets[i].ID {
			t.Fatalf("net %d id mismatch", i)
		}
		for j := range orig.Nets[i].Pins {
			if parsed.Nets[i].Pins[j] != orig.Nets[i].Pins[j] {
				t.Fatalf("net %d pin %d: %v != %v", i, j, parsed.Nets[i].Pins[j], orig.Nets[i].Pins[j])
			}
		}
	}
	n23, n410, nOver := parsed.PinHistogram()
	if n23 != parsed.Nets2_3 || n410 != parsed.Nets4_10 || nOver != parsed.NetsOver10 {
		t.Fatal("histogram not rebuilt from parsed nets")
	}
}

func TestParseValid(t *testing.T) {
	in := `# comment
circuit demo 4000 4 4

net 0 0,0,N,0 1,1,S,0
net 1 2,2,E,1 3,3,W,2 0,3,N,1
`
	ckt, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ckt.Name != "demo" || ckt.Series != Series4000 || len(ckt.Nets) != 2 {
		t.Fatalf("parsed: %+v", ckt.Spec)
	}
	if len(ckt.Nets[1].Pins) != 3 {
		t.Fatalf("net 1 pins = %d", len(ckt.Nets[1].Pins))
	}
	if ckt.Nets2_3 != 2 {
		t.Fatalf("histogram: %d", ckt.Nets2_3)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"no-header", "net 0 0,0,N,0 1,1,S,0\n"},
		{"dup-header", "circuit a 4000 2 2\ncircuit b 4000 2 2\n"},
		{"bad-series", "circuit a 5000 2 2\n"},
		{"bad-size", "circuit a 4000 0 2\n"},
		{"short-net", "circuit a 4000 2 2\nnet 0 0,0,N,0\n"},
		{"bad-pin", "circuit a 4000 2 2\nnet 0 0,0,N 1,1,S,0\n"},
		{"bad-side", "circuit a 4000 2 2\nnet 0 0,0,Q,0 1,1,S,0\n"},
		{"pin-out-of-array", "circuit a 4000 2 2\nnet 0 5,0,N,0 1,1,S,0\n"},
		{"bad-id", "circuit a 4000 2 2\nnet x 0,0,N,0 1,1,S,0\n"},
		{"unknown-directive", "circuit a 4000 2 2\nblob\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(c.in)); err == nil {
				t.Fatalf("input %q accepted", c.in)
			}
		})
	}
}
