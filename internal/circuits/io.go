package circuits

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"fpgarouter/internal/fpga"
)

// The netlist text format.
//
// A circuit file is line-oriented; '#' starts a comment, blank lines are
// ignored. The header names the circuit, its FPGA family and array size;
// each net line lists its pins as x,y,SIDE,index tuples (SIDE one of
// N/E/S/W), the first pin being the signal source:
//
//	circuit busc 3000 12 13
//	net 0 3,4,N,0 5,4,S,1 3,6,E,0
//	net 1 0,0,E,0 1,1,W,0
//
// This is the interchange format for cmd/fpgaroute's -netlist flag and the
// Write/Parse round trip below.

// WriteTo serializes the circuit in the netlist text format.
func (c *Circuit) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(k int, err error) error {
		n += int64(k)
		return err
	}
	series := "4000"
	if c.Series == Series3000 {
		series = "3000"
	}
	if err := count(fmt.Fprintf(bw, "# fpgarouter netlist\ncircuit %s %s %d %d\n",
		c.Name, series, c.Cols, c.Rows)); err != nil {
		return n, err
	}
	for _, net := range c.Nets {
		if err := count(fmt.Fprintf(bw, "net %d", net.ID)); err != nil {
			return n, err
		}
		for _, p := range net.Pins {
			if err := count(fmt.Fprintf(bw, " %d,%d,%s,%d", p.X, p.Y, p.Side, p.Index)); err != nil {
				return n, err
			}
		}
		if err := count(fmt.Fprintln(bw)); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Parse reads a circuit in the netlist text format. The returned circuit's
// Spec carries the parsed name, series and array size; statistics fields
// (pin histogram) are filled from the parsed nets.
func Parse(r io.Reader) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var ckt *Circuit
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "circuit":
			if ckt != nil {
				return nil, fmt.Errorf("circuits: line %d: duplicate circuit header", lineNo)
			}
			if len(fields) != 5 {
				return nil, fmt.Errorf("circuits: line %d: want 'circuit <name> <series> <cols> <rows>'", lineNo)
			}
			var series Series
			switch fields[2] {
			case "3000":
				series = Series3000
			case "4000":
				series = Series4000
			default:
				return nil, fmt.Errorf("circuits: line %d: unknown series %q", lineNo, fields[2])
			}
			cols, err1 := strconv.Atoi(fields[3])
			rows, err2 := strconv.Atoi(fields[4])
			if err1 != nil || err2 != nil || cols < 1 || rows < 1 {
				return nil, fmt.Errorf("circuits: line %d: bad array size %q x %q", lineNo, fields[3], fields[4])
			}
			ckt = &Circuit{Spec: Spec{Name: fields[1], Series: series, Cols: cols, Rows: rows}}
		case "net":
			if ckt == nil {
				return nil, fmt.Errorf("circuits: line %d: net before circuit header", lineNo)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("circuits: line %d: net needs an id and at least 2 pins... got %d fields", lineNo, len(fields))
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("circuits: line %d: bad net id %q", lineNo, fields[1])
			}
			net := Net{ID: id}
			for _, tok := range fields[2:] {
				p, err := parsePin(tok, ckt.Cols, ckt.Rows)
				if err != nil {
					return nil, fmt.Errorf("circuits: line %d: %w", lineNo, err)
				}
				net.Pins = append(net.Pins, p)
			}
			if len(net.Pins) < 2 {
				return nil, fmt.Errorf("circuits: line %d: net %d has fewer than 2 pins", lineNo, id)
			}
			ckt.Nets = append(ckt.Nets, net)
		default:
			return nil, fmt.Errorf("circuits: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if ckt == nil {
		return nil, fmt.Errorf("circuits: missing circuit header")
	}
	ckt.rebuildHistogram()
	return ckt, nil
}

// parsePin parses an "x,y,SIDE,index" tuple.
func parsePin(tok string, cols, rows int) (fpga.Pin, error) {
	parts := strings.Split(tok, ",")
	if len(parts) != 4 {
		return fpga.Pin{}, fmt.Errorf("bad pin %q (want x,y,SIDE,index)", tok)
	}
	x, err1 := strconv.Atoi(parts[0])
	y, err2 := strconv.Atoi(parts[1])
	idx, err3 := strconv.Atoi(parts[3])
	if err1 != nil || err2 != nil || err3 != nil {
		return fpga.Pin{}, fmt.Errorf("bad pin %q", tok)
	}
	var side fpga.Side
	switch parts[2] {
	case "N":
		side = fpga.North
	case "E":
		side = fpga.East
	case "S":
		side = fpga.South
	case "W":
		side = fpga.West
	default:
		return fpga.Pin{}, fmt.Errorf("bad pin side %q in %q", parts[2], tok)
	}
	if x < 0 || x >= cols || y < 0 || y >= rows || idx < 0 {
		return fpga.Pin{}, fmt.Errorf("pin %q outside the %dx%d array", tok, cols, rows)
	}
	return fpga.Pin{X: x, Y: y, Side: side, Index: idx}, nil
}
