package circuits

import (
	"encoding/json"
	"strings"
	"testing"

	"fpgarouter/internal/fpga"
)

// goldenCircuitJSON is the frozen wire-format encoding of a tiny
// hand-built circuit. If this test breaks, the wire format changed — bump
// service clients deliberately, don't just re-record.
const goldenCircuitJSON = `{"name":"wiretest","series":"3000","cols":3,"rows":2,` +
	`"nets":[{"id":0,"pins":["0,0,N,0","2,1,S,1","1,0,E,0"]},` +
	`{"id":1,"pins":["0,1,W,2","2,0,N,1"]}]}`

func goldenCircuit() *Circuit {
	return &Circuit{
		Spec: Spec{Name: "wiretest", Series: Series3000, Cols: 3, Rows: 2},
		Nets: []Net{
			{ID: 0, Pins: []fpga.Pin{
				{X: 0, Y: 0, Side: fpga.North, Index: 0},
				{X: 2, Y: 1, Side: fpga.South, Index: 1},
				{X: 1, Y: 0, Side: fpga.East, Index: 0},
			}},
			{ID: 1, Pins: []fpga.Pin{
				{X: 0, Y: 1, Side: fpga.West, Index: 2},
				{X: 2, Y: 0, Side: fpga.North, Index: 1},
			}},
		},
	}
}

func TestCircuitJSONGolden(t *testing.T) {
	data, err := json.Marshal(goldenCircuit())
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != goldenCircuitJSON {
		t.Fatalf("wire format drifted:\n got %s\nwant %s", data, goldenCircuitJSON)
	}
	var back Circuit
	if err := json.Unmarshal([]byte(goldenCircuitJSON), &back); err != nil {
		t.Fatal(err)
	}
	want := goldenCircuit()
	if back.Name != want.Name || back.Series != want.Series || back.Cols != want.Cols || back.Rows != want.Rows {
		t.Fatalf("header drifted: %+v", back.Spec)
	}
	if back.Nets2_3 != 2 || back.Nets4_10 != 0 || back.NetsOver10 != 0 {
		t.Fatalf("histogram not rebuilt: %+v", back.Spec)
	}
	if len(back.Nets) != len(want.Nets) {
		t.Fatalf("net count %d vs %d", len(back.Nets), len(want.Nets))
	}
	for i := range want.Nets {
		if back.Nets[i].ID != want.Nets[i].ID {
			t.Fatalf("net %d id %d vs %d", i, back.Nets[i].ID, want.Nets[i].ID)
		}
		for j, p := range want.Nets[i].Pins {
			if back.Nets[i].Pins[j] != p {
				t.Fatalf("net %d pin %d: %v vs %v", i, j, back.Nets[i].Pins[j], p)
			}
		}
	}
}

// TestCircuitJSONRoundTripSynthesized: synthesize → encode → decode must
// preserve every net and pin exactly, and re-encoding must be stable.
func TestCircuitJSONRoundTripSynthesized(t *testing.T) {
	ckt, err := Synthesize(Table2Circuits[0], 1) // busc
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(ckt)
	if err != nil {
		t.Fatal(err)
	}
	var back Circuit
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Nets) != len(ckt.Nets) {
		t.Fatalf("net count %d vs %d", len(back.Nets), len(ckt.Nets))
	}
	for i := range ckt.Nets {
		if back.Nets[i].ID != ckt.Nets[i].ID || len(back.Nets[i].Pins) != len(ckt.Nets[i].Pins) {
			t.Fatalf("net %d shape drifted", i)
		}
		for j := range ckt.Nets[i].Pins {
			if back.Nets[i].Pins[j] != ckt.Nets[i].Pins[j] {
				t.Fatalf("net %d pin %d drifted", i, j)
			}
		}
	}
	h23, h410, hov := back.PinHistogram()
	if h23 != back.Nets2_3 || h410 != back.Nets4_10 || hov != back.NetsOver10 {
		t.Fatalf("decoded histogram inconsistent")
	}
	again, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Fatal("re-encoding not stable")
	}
}

func TestCircuitJSONRejects(t *testing.T) {
	cases := map[string]string{
		"bad series":   `{"name":"x","series":"5000","cols":3,"rows":3,"nets":[]}`,
		"bad size":     `{"name":"x","series":"4000","cols":0,"rows":3,"nets":[]}`,
		"bad pin":      `{"name":"x","series":"4000","cols":3,"rows":3,"nets":[{"id":0,"pins":["9,9,N,0","0,0,N,0"]}]}`,
		"bad side":     `{"name":"x","series":"4000","cols":3,"rows":3,"nets":[{"id":0,"pins":["0,0,Q,0","1,1,N,0"]}]}`,
		"one-pin net":  `{"name":"x","series":"4000","cols":3,"rows":3,"nets":[{"id":0,"pins":["0,0,N,0"]}]}`,
		"not a struct": `[1,2,3]`,
	}
	for name, in := range cases {
		var c Circuit
		if err := json.Unmarshal([]byte(in), &c); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		} else if !strings.Contains(err.Error(), "circuits") && name != "not a struct" {
			t.Errorf("%s: error %q lacks package prefix", name, err)
		}
	}
}
