package stats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilCollectorIsSafe exercises every record method and Snapshot on a nil
// receiver: the zero-cost-when-absent contract.
func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Fatal("nil collector reports enabled")
	}
	c.AddSSSP(3, 17)
	c.ObserveNet(time.Millisecond, true)
	c.AddPass()
	c.AddRipUps(2)
	c.AddWidthProbe()
	c.AddCandidateWork(5, 1)
	c.RecordCongestion([]int32{1, 2}, 4)
	if s := c.Snapshot(); s != (Snapshot{}) {
		t.Fatalf("nil collector snapshot %+v", s)
	}
}

func TestCountersAccumulate(t *testing.T) {
	c := New()
	c.AddSSSP(3, 40)
	c.AddSSSP(2, 10)
	c.ObserveNet(2*time.Millisecond, true)
	c.ObserveNet(5*time.Millisecond, false)
	c.ObserveNet(time.Millisecond, true)
	c.AddPass()
	c.AddPass()
	c.AddRipUps(4)
	c.AddWidthProbe()
	c.AddCandidateWork(100, 7)
	s := c.Snapshot()
	if s.SSSPRuns != 5 || s.HeapPushes != 50 {
		t.Fatalf("SSSP %d/%d", s.SSSPRuns, s.HeapPushes)
	}
	if s.NetsRouted != 2 || s.NetFailures != 1 {
		t.Fatalf("nets %d/%d", s.NetsRouted, s.NetFailures)
	}
	if s.NetTime != 8*time.Millisecond || s.MaxNetTime != 5*time.Millisecond {
		t.Fatalf("time %v max %v", s.NetTime, s.MaxNetTime)
	}
	if s.Passes != 2 || s.RipUps != 4 || s.WidthProbes != 1 {
		t.Fatalf("passes %d ripups %d probes %d", s.Passes, s.RipUps, s.WidthProbes)
	}
	if s.CandidateEvals != 100 || s.SteinerPoints != 7 {
		t.Fatalf("candidates %d/%d", s.CandidateEvals, s.SteinerPoints)
	}
}

// TestCongestionHistogram checks bucket assignment (decile bins, full spans
// clamped into the last) and that every span lands somewhere.
func TestCongestionHistogram(t *testing.T) {
	c := New()
	used := []int32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 10}
	c.RecordCongestion(used, 10)
	s := c.Snapshot()
	var sum int64
	for _, n := range s.Congestion {
		sum += n
	}
	if sum != int64(len(used)) {
		t.Fatalf("histogram holds %d spans, want %d", sum, len(used))
	}
	if s.Congestion[0] != 1 { // only utilization 0
		t.Fatalf("bucket 0 = %d", s.Congestion[0])
	}
	if s.Congestion[CongestionBuckets-1] != 3 { // 9/10 and the two full spans
		t.Fatalf("last bucket = %d", s.Congestion[CongestionBuckets-1])
	}
	// Zero width records nothing (and must not divide by zero).
	c2 := New()
	c2.RecordCongestion(used, 0)
	if c2.Snapshot() != (Snapshot{}) {
		t.Fatal("zero-width congestion recorded")
	}
}

// TestConcurrentRecording hammers one collector from many goroutines — the
// sharing model of the parallel width search — and checks totals.
func TestConcurrentRecording(t *testing.T) {
	c := New()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.AddSSSP(1, 2)
				c.ObserveNet(time.Microsecond, i%2 == 0)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.SSSPRuns != workers*per || s.HeapPushes != 2*workers*per {
		t.Fatalf("SSSP %d/%d", s.SSSPRuns, s.HeapPushes)
	}
	if s.NetsRouted+s.NetFailures != workers*per {
		t.Fatalf("nets %d+%d", s.NetsRouted, s.NetFailures)
	}
}

func TestSnapshotString(t *testing.T) {
	c := New()
	c.AddSSSP(12, 345)
	c.AddPass()
	out := c.Snapshot().String()
	for _, want := range []string{"router stats:", "SSSP runs", "12", "345", "congestion"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotWritePrometheus(t *testing.T) {
	c := New()
	c.AddSSSP(12, 345)
	c.AddPass()
	c.AddWidthProbe()
	c.ObserveNet(1500*time.Microsecond, true)
	c.RecordCongestion([]int32{0, 5, 10}, 10)
	var b strings.Builder
	c.Snapshot().WritePrometheus(&b, "fpgarouter")
	out := b.String()
	for _, want := range []string{
		"# TYPE fpgarouter_sssp_runs_total counter",
		"fpgarouter_sssp_runs_total 12",
		"fpgarouter_heap_pushes_total 345",
		"fpgarouter_passes_total 1",
		"fpgarouter_width_probes_total 1",
		"fpgarouter_net_time_seconds_total 0.0015",
		`fpgarouter_span_utilization_spans{decile="0"} 1`,
		`fpgarouter_span_utilization_spans{decile="9"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
