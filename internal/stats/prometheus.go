package stats

import (
	"fmt"
	"io"
)

// WritePrometheus writes the snapshot's counters in the Prometheus text
// exposition format, each metric name prefixed with prefix (for example
// "fpgarouter"). The service's /metrics endpoint (cmd/routed) composes this
// with its own job-queue gauges; it is equally usable for ad-hoc scraping
// of a batch run.
func (s Snapshot) WritePrometheus(w io.Writer, prefix string) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s_%s %s\n# TYPE %s_%s counter\n%s_%s %d\n",
			prefix, name, help, prefix, name, prefix, name, v)
	}
	counter("sssp_runs_total", "Dijkstra executions.", s.SSSPRuns)
	counter("heap_pushes_total", "Dijkstra heap insertions.", s.HeapPushes)
	counter("nets_routed_total", "Successful single-net routes.", s.NetsRouted)
	counter("net_failures_total", "Failed single-net route attempts.", s.NetFailures)
	counter("passes_total", "Rip-up/re-route passes.", s.Passes)
	counter("ripups_total", "Nets ripped up after failed passes.", s.RipUps)
	counter("width_probes_total", "Route calls issued by channel-width searches.", s.WidthProbes)
	counter("candidate_evals_total", "Steiner-candidate evaluations.", s.CandidateEvals)
	counter("steiner_points_total", "Steiner points admitted.", s.SteinerPoints)
	counter("lazy_scan_hits_total", "Scan rounds the lazy queue served with a partial evaluation.", s.LazyHits)
	counter("full_rescans_total", "Lazy-scan exactness fallbacks to an exhaustive rescan.", s.FullRescans)
	counter("evaluations_saved_total", "Base-heuristic evaluations avoided by the lazy scan.", s.EvalsSaved)
	counter("parallel_scans_total", "Candidate-scan rounds fanned out over workers.", s.ParallelScans)
	counter("job_retries_total", "Service-job retries after transient failures.", s.JobRetries)
	counter("worker_panics_total", "Worker panics recovered by per-job isolation.", s.JobPanics)
	counter("partial_results_total", "Interrupted runs that returned a partial result.", s.PartialResults)
	counter("pathfinder_iterations_total", "Negotiated-congestion iterations of the parallel router.", s.PathfinderIters)
	counter("overflow_edges", "Overcapacity resources summed over pathfinder iterations.", s.OverflowEdges)
	counter("price_updates_total", "History-price sub-gradient updates applied by pathfinder reduces.", s.PriceUpdates)
	counter("incremental_reroutes_total", "Nets reconnected from a retained fragment by partial rip-up.", s.IncrementalReroutes)
	counter("edges_ripped_total", "Previous-tree edges discarded before rerouting.", s.EdgesRipped)
	counter("edges_retained_total", "Previous-tree edges kept by partial rip-up.", s.EdgesRetained)
	counter("reduce_edges_skipped_total", "Tree edges the delta reduce skipped versus a full recount.", s.ReduceEdgesSkipped)
	counter("checkpoints_written_total", "Pathfinder checkpoints persisted to the durable store.", s.CheckpointsWritten)
	counter("jobs_recovered_total", "Interrupted jobs re-enqueued by journal replay at startup.", s.JobsRecovered)
	counter("journal_replay_records_total", "Intact journal records read back at startup.", s.JournalReplayRecords)
	counter("journal_append_errors_total", "Journal appends dropped after read-only degradation.", s.JournalAppendErrors)

	fmt.Fprintf(w, "# HELP %s_scan_wall_seconds_total Wall-clock time of parallel candidate scans.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_scan_wall_seconds_total counter\n", prefix)
	fmt.Fprintf(w, "%s_scan_wall_seconds_total %g\n", prefix, s.ScanWall.Seconds())
	fmt.Fprintf(w, "# HELP %s_scan_cpu_seconds_total Summed per-worker busy time of parallel candidate scans.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_scan_cpu_seconds_total counter\n", prefix)
	fmt.Fprintf(w, "%s_scan_cpu_seconds_total %g\n", prefix, s.ScanCPU.Seconds())

	fmt.Fprintf(w, "# HELP %s_net_time_seconds_total Cumulative single-net routing time.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_net_time_seconds_total counter\n", prefix)
	fmt.Fprintf(w, "%s_net_time_seconds_total %g\n", prefix, s.NetTime.Seconds())
	fmt.Fprintf(w, "# HELP %s_net_time_max_seconds Slowest single-net route observed.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_net_time_max_seconds gauge\n", prefix)
	fmt.Fprintf(w, "%s_net_time_max_seconds %g\n", prefix, s.MaxNetTime.Seconds())

	fmt.Fprintf(w, "# HELP %s_span_utilization_spans Channel spans binned by utilization decile at final fabric states.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_span_utilization_spans counter\n", prefix)
	for i, n := range s.Congestion {
		fmt.Fprintf(w, "%s_span_utilization_spans{decile=\"%d\"} %d\n", prefix, i, n)
	}
}
