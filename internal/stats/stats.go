// Package stats is the router's observability layer: a concurrency-safe
// collector of per-pass work counters (SSSP invocations, heap pushes,
// rip-ups, candidate-scan evaluations, per-net routing time, channel-span
// congestion histogram) that costs nothing when absent.
//
// Every record method is a no-op on a nil *Collector, so the router
// unconditionally calls them and callers opt in by attaching a collector to
// their routing Context (cmd/fpgaroute -stats, cmd/tables -stats, or the
// experiments harnesses). All counters are atomics: one collector can be
// shared by the concurrent width probes of the parallel MinWidth search.
package stats

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// CongestionBuckets is the number of bins in the span-utilization
// histogram: bucket i covers utilization fractions [i/10, (i+1)/10), with
// fully used spans landing in the last bucket.
const CongestionBuckets = 10

// Collector accumulates router work counters. The zero value is ready to
// use; a nil *Collector is also valid and records nothing.
type Collector struct {
	ssspRuns     atomic.Int64
	heapPushes   atomic.Int64
	netsRouted   atomic.Int64
	netFailures  atomic.Int64
	netTimeNs    atomic.Int64
	maxNetTimeNs atomic.Int64
	passes       atomic.Int64
	ripUps       atomic.Int64
	widthProbes  atomic.Int64
	candEvals    atomic.Int64
	steinerPts   atomic.Int64
	lazyHits     atomic.Int64
	fullRescans  atomic.Int64
	evalsSaved   atomic.Int64
	parScans     atomic.Int64
	scanWallNs   atomic.Int64
	scanCPUNs    atomic.Int64
	jobRetries   atomic.Int64
	jobPanics    atomic.Int64
	partials     atomic.Int64
	pfIters      atomic.Int64
	pfOverflow   atomic.Int64
	pfPriceUpds  atomic.Int64
	incReroutes  atomic.Int64
	edgesRipped  atomic.Int64
	edgesKept    atomic.Int64
	reduceSkip   atomic.Int64
	ckptWritten  atomic.Int64
	jobsRecov    atomic.Int64
	jrnlReplayed atomic.Int64
	jrnlErrors   atomic.Int64
	congestion   [CongestionBuckets]atomic.Int64
}

// New returns an empty collector.
func New() *Collector { return new(Collector) }

// Enabled reports whether the collector actually records (non-nil).
func (c *Collector) Enabled() bool { return c != nil }

// AddSSSP records runs Dijkstra executions performing pushes heap
// insertions (the router feeds deltas of its scratch's counters per net).
func (c *Collector) AddSSSP(runs, pushes int64) {
	if c == nil {
		return
	}
	c.ssspRuns.Add(runs)
	c.heapPushes.Add(pushes)
}

// ObserveNet records one net-routing attempt: its wall time and outcome.
func (c *Collector) ObserveNet(d time.Duration, ok bool) {
	if c == nil {
		return
	}
	if ok {
		c.netsRouted.Add(1)
	} else {
		c.netFailures.Add(1)
	}
	ns := d.Nanoseconds()
	c.netTimeNs.Add(ns)
	for {
		old := c.maxNetTimeNs.Load()
		if ns <= old || c.maxNetTimeNs.CompareAndSwap(old, ns) {
			break
		}
	}
}

// AddPass records one rip-up/re-route pass.
func (c *Collector) AddPass() {
	if c == nil {
		return
	}
	c.passes.Add(1)
}

// AddRipUps records n nets ripped up for re-routing after a failed pass.
func (c *Collector) AddRipUps(n int64) {
	if c == nil {
		return
	}
	c.ripUps.Add(n)
}

// AddWidthProbe records one Route call issued by a channel-width search.
func (c *Collector) AddWidthProbe() {
	if c == nil {
		return
	}
	c.widthProbes.Add(1)
}

// AddCandidateWork records an iterated construction's candidate-scan work:
// evals base-heuristic evaluations and points admitted Steiner points.
func (c *Collector) AddCandidateWork(evals, points int64) {
	if c == nil {
		return
	}
	c.candEvals.Add(evals)
	c.steinerPts.Add(points)
}

// AddLazyScan records the lazy candidate-scan queue's outcomes: hits rounds
// served with a partial evaluation, rescans exactness fallbacks, and saved
// net base-heuristic evaluations avoided versus the exhaustive scan.
func (c *Collector) AddLazyScan(hits, rescans, saved int64) {
	if c == nil {
		return
	}
	c.lazyHits.Add(hits)
	c.fullRescans.Add(rescans)
	c.evalsSaved.Add(saved)
}

// AddScans records n parallel candidate-scan rounds (rounds that actually
// fanned out over more than one worker goroutine), with their total
// wall-clock and summed per-worker busy time. cpu/wall is the achieved scan
// parallelism; sequential scans record nothing.
func (c *Collector) AddScans(n int64, wall, cpu time.Duration) {
	if c == nil || n == 0 {
		return
	}
	c.parScans.Add(n)
	c.scanWallNs.Add(wall.Nanoseconds())
	c.scanCPUNs.Add(cpu.Nanoseconds())
}

// AddJobRetry records one retry of a transiently failed service job.
func (c *Collector) AddJobRetry() {
	if c == nil {
		return
	}
	c.jobRetries.Add(1)
}

// AddJobPanic records one worker panic recovered by the service's per-job
// isolation (the routing context involved is discarded, not pooled).
func (c *Collector) AddJobPanic() {
	if c == nil {
		return
	}
	c.jobPanics.Add(1)
}

// AddPartialResult records one interrupted run that still surrendered a
// partial result (graceful degradation) instead of a bare error.
func (c *Collector) AddPartialResult() {
	if c == nil {
		return
	}
	c.partials.Add(1)
}

// AddPathfinderIteration records one negotiated-congestion iteration of the
// parallel router: how many resources ended the iteration over capacity and
// how many history-price sub-gradient updates the reduce applied.
func (c *Collector) AddPathfinderIteration(overflow, priceUpdates int64) {
	if c == nil {
		return
	}
	c.pfIters.Add(1)
	c.pfOverflow.Add(overflow)
	c.pfPriceUpds.Add(priceUpdates)
}

// AddIncremental records one pathfinder iteration's rip-up accounting:
// reroutes nets reconnected from a retained fragment (incremental mode),
// ripped previous-tree edges discarded before rerouting (both modes), and
// retained previous-tree edges kept by partial rip-up.
func (c *Collector) AddIncremental(reroutes, ripped, retained int64) {
	if c == nil {
		return
	}
	c.incReroutes.Add(reroutes)
	c.edgesRipped.Add(ripped)
	c.edgesKept.Add(retained)
}

// AddDeltaReduce records tree edges the delta reduce did not have to walk
// compared to the full recount over every net's tree.
func (c *Collector) AddDeltaReduce(skipped int64) {
	if c == nil {
		return
	}
	c.reduceSkip.Add(skipped)
}

// AddCheckpointWritten records one pathfinder checkpoint persisted to the
// durable store.
func (c *Collector) AddCheckpointWritten() {
	if c == nil {
		return
	}
	c.ckptWritten.Add(1)
}

// AddJobsRecovered records n interrupted jobs re-enqueued (or results
// re-served) by journal replay at startup.
func (c *Collector) AddJobsRecovered(n int64) {
	if c == nil {
		return
	}
	c.jobsRecov.Add(n)
}

// AddJournalReplay records n intact journal records read back at startup.
func (c *Collector) AddJournalReplay(n int64) {
	if c == nil {
		return
	}
	c.jrnlReplayed.Add(n)
}

// AddJournalError records one journal append dropped because the journal
// degraded (or was degrading) to read-only.
func (c *Collector) AddJournalError() {
	if c == nil {
		return
	}
	c.jrnlErrors.Add(1)
}

// RecordCongestion bins each channel span's utilization fraction
// (used/width) into the congestion histogram; the router records the final
// fabric state of each successfully routed circuit.
func (c *Collector) RecordCongestion(used []int32, width int) {
	if c == nil || width <= 0 {
		return
	}
	for _, u := range used {
		b := int(u) * CongestionBuckets / width
		if b >= CongestionBuckets {
			b = CongestionBuckets - 1
		}
		if b < 0 {
			b = 0
		}
		c.congestion[b].Add(1)
	}
}

// Snapshot is a plain-value copy of the collector's counters.
type Snapshot struct {
	SSSPRuns       int64
	HeapPushes     int64
	NetsRouted     int64
	NetFailures    int64
	NetTime        time.Duration
	MaxNetTime     time.Duration
	Passes         int64
	RipUps         int64
	WidthProbes    int64
	CandidateEvals int64
	SteinerPoints  int64
	LazyHits       int64
	FullRescans    int64
	EvalsSaved     int64
	ParallelScans  int64
	ScanWall       time.Duration
	ScanCPU        time.Duration
	JobRetries     int64
	JobPanics      int64
	PartialResults int64
	// Pathfinder counters: negotiated-congestion iterations, overflowed
	// resources summed over iterations, and history-price updates applied.
	PathfinderIters int64
	OverflowEdges   int64
	PriceUpdates    int64
	// Incremental rip-up accounting: nets reconnected from a retained
	// fragment, previous-tree edges ripped vs retained, and tree edges the
	// delta reduce skipped walking relative to a full recount.
	IncrementalReroutes int64
	EdgesRipped         int64
	EdgesRetained       int64
	ReduceEdgesSkipped  int64
	// Durability counters: pathfinder checkpoints persisted, jobs recovered
	// by journal replay, journal records replayed at startup, and appends
	// dropped after the journal degraded to read-only.
	CheckpointsWritten   int64
	JobsRecovered        int64
	JournalReplayRecords int64
	JournalAppendErrors  int64
	Congestion           [CongestionBuckets]int64
}

// Snapshot returns a consistent-enough copy of the counters (each field is
// read atomically; cross-field skew is possible while routing is live).
func (c *Collector) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	s := Snapshot{
		SSSPRuns:       c.ssspRuns.Load(),
		HeapPushes:     c.heapPushes.Load(),
		NetsRouted:     c.netsRouted.Load(),
		NetFailures:    c.netFailures.Load(),
		NetTime:        time.Duration(c.netTimeNs.Load()),
		MaxNetTime:     time.Duration(c.maxNetTimeNs.Load()),
		Passes:         c.passes.Load(),
		RipUps:         c.ripUps.Load(),
		WidthProbes:    c.widthProbes.Load(),
		CandidateEvals: c.candEvals.Load(),
		SteinerPoints:  c.steinerPts.Load(),
		LazyHits:       c.lazyHits.Load(),
		FullRescans:    c.fullRescans.Load(),
		EvalsSaved:     c.evalsSaved.Load(),
		ParallelScans:  c.parScans.Load(),
		ScanWall:       time.Duration(c.scanWallNs.Load()),
		ScanCPU:        time.Duration(c.scanCPUNs.Load()),
		JobRetries:     c.jobRetries.Load(),
		JobPanics:      c.jobPanics.Load(),
		PartialResults: c.partials.Load(),

		PathfinderIters: c.pfIters.Load(),
		OverflowEdges:   c.pfOverflow.Load(),
		PriceUpdates:    c.pfPriceUpds.Load(),

		IncrementalReroutes: c.incReroutes.Load(),
		EdgesRipped:         c.edgesRipped.Load(),
		EdgesRetained:       c.edgesKept.Load(),
		ReduceEdgesSkipped:  c.reduceSkip.Load(),

		CheckpointsWritten:   c.ckptWritten.Load(),
		JobsRecovered:        c.jobsRecov.Load(),
		JournalReplayRecords: c.jrnlReplayed.Load(),
		JournalAppendErrors:  c.jrnlErrors.Load(),
	}
	for i := range c.congestion {
		s.Congestion[i] = c.congestion[i].Load()
	}
	return s
}

// String renders the snapshot as the multi-line report printed by the
// -stats flags of cmd/fpgaroute and cmd/tables.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "router stats:\n")
	fmt.Fprintf(&b, "  SSSP runs          %d (heap pushes %d)\n", s.SSSPRuns, s.HeapPushes)
	fmt.Fprintf(&b, "  nets routed        %d (failures %d, rip-ups %d)\n", s.NetsRouted, s.NetFailures, s.RipUps)
	fmt.Fprintf(&b, "  passes             %d (width probes %d)\n", s.Passes, s.WidthProbes)
	fmt.Fprintf(&b, "  candidate evals    %d (Steiner points admitted %d)\n", s.CandidateEvals, s.SteinerPoints)
	if s.LazyHits+s.FullRescans+s.EvalsSaved != 0 {
		fmt.Fprintf(&b, "  lazy scan          hits %d, full rescans %d, evaluations saved %d\n",
			s.LazyHits, s.FullRescans, s.EvalsSaved)
	}
	if s.ParallelScans > 0 {
		par := 0.0
		if s.ScanWall > 0 {
			par = float64(s.ScanCPU) / float64(s.ScanWall)
		}
		fmt.Fprintf(&b, "  parallel scans     %d (wall %v, cpu %v, parallelism %.2fx)\n", s.ParallelScans, s.ScanWall.Round(time.Microsecond), s.ScanCPU.Round(time.Microsecond), par)
	}
	if s.PathfinderIters > 0 {
		fmt.Fprintf(&b, "  pathfinder         iterations %d, overflow edges %d, price updates %d\n",
			s.PathfinderIters, s.OverflowEdges, s.PriceUpdates)
	}
	if s.EdgesRipped+s.EdgesRetained+s.IncrementalReroutes+s.ReduceEdgesSkipped > 0 {
		fmt.Fprintf(&b, "  incremental        reroutes %d, edges ripped %d, edges retained %d, reduce edges skipped %d\n",
			s.IncrementalReroutes, s.EdgesRipped, s.EdgesRetained, s.ReduceEdgesSkipped)
	}
	if s.JobRetries+s.JobPanics+s.PartialResults > 0 {
		fmt.Fprintf(&b, "  fault tolerance    retries %d, recovered panics %d, partial results %d\n",
			s.JobRetries, s.JobPanics, s.PartialResults)
	}
	if s.CheckpointsWritten+s.JobsRecovered+s.JournalReplayRecords+s.JournalAppendErrors > 0 {
		fmt.Fprintf(&b, "  durability         checkpoints written %d, jobs recovered %d, journal records replayed %d, append errors %d\n",
			s.CheckpointsWritten, s.JobsRecovered, s.JournalReplayRecords, s.JournalAppendErrors)
	}
	avg := time.Duration(0)
	if n := s.NetsRouted + s.NetFailures; n > 0 {
		avg = s.NetTime / time.Duration(n)
	}
	fmt.Fprintf(&b, "  net time           total %v, avg %v, max %v\n", s.NetTime.Round(time.Microsecond), avg.Round(time.Microsecond), s.MaxNetTime.Round(time.Microsecond))
	fmt.Fprintf(&b, "  congestion (spans by utilization decile): ")
	for i, n := range s.Congestion {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", n)
	}
	b.WriteByte('\n')
	return b.String()
}
