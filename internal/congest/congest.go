// Package congest generates the Table 1 workload of Section 5: random nets
// on 20×20 grid graphs whose edge weights model congestion induced by
// previously-routed nets. Starting from unit weights, k uniformly
// distributed nets of 2–5 pins are routed with KMB and the weight of every
// edge used is incremented, raising the average edge weight w̄ — the paper
// reports w̄ = 1.00 (k = 0), 1.28 (k = 10), and 1.55 (k = 20).
package congest

import (
	"math/rand"

	"fpgarouter/internal/graph"
	"fpgarouter/internal/steiner"
)

// Level describes one congestion level of Table 1.
type Level struct {
	Name      string
	PreRouted int     // k: nets pre-routed with KMB
	PaperMean float64 // w̄ reported in the paper
}

// Levels are the paper's three congestion levels.
var Levels = []Level{
	{Name: "none", PreRouted: 0, PaperMean: 1.00},
	{Name: "low", PreRouted: 10, PaperMean: 1.28},
	{Name: "medium", PreRouted: 20, PaperMean: 1.55},
}

// GridSize is the grid used throughout Table 1 (20×20 nodes).
const GridSize = 20

// NewCongestedGrid returns a GridSize×GridSize grid with k pre-routed nets'
// congestion applied: each pre-routed net has 2–5 uniformly-placed pins, is
// routed with KMB, and increments the weight of every edge it uses by 1.
//
// The pre-nets route through a graph.Overlay rather than by mutating the
// grid's weights mid-sequence: each net sees base weight + accumulated
// prices, and the prices are folded into the grid only once, after the
// last net. The search results are identical either way (the increments
// are small integers, exact in float64), but the overlay keeps the shared
// graph immutable while routing — the same pattern the parallel
// pathfinder relies on for concurrent searches.
func NewCongestedGrid(rng *rand.Rand, k int) (*graph.GridGraph, error) {
	g := graph.NewGrid(GridSize, GridSize, 1)
	ov := graph.NewOverlay(g.Graph)
	for i := 0; i < k; i++ {
		pins := 2 + rng.Intn(4)
		net := graph.RandomNet(rng, g.Graph, pins)
		cache := graph.NewSPTCache(g.Graph).WithOverlay(ov)
		tree, err := steiner.KMB(cache, net)
		if err != nil {
			return nil, err
		}
		for _, id := range tree.Edges {
			ov.AddPrice(id, 1)
		}
	}
	for id, p := range ov.Prices() {
		if p != 0 {
			g.AddWeight(graph.EdgeID(id), p)
		}
	}
	return g, nil
}

// OptimalMaxPathlength returns the best achievable maximum source-sink
// pathlength for a net: the largest shortest-path distance from the source
// to any sink (every arborescence attains it; no tree can do better).
func OptimalMaxPathlength(g *graph.Graph, net []graph.NodeID) float64 {
	spt := g.Dijkstra(net[0])
	maxd := 0.0
	for _, s := range net[1:] {
		if d := spt.Dist[s]; d > maxd {
			maxd = d
		}
	}
	return maxd
}
