package congest

import (
	"math"
	"math/rand"
	"testing"

	"fpgarouter/internal/graph"
	"fpgarouter/internal/steiner"
)

func TestLevelsMatchPaper(t *testing.T) {
	if len(Levels) != 3 {
		t.Fatalf("levels = %d", len(Levels))
	}
	if Levels[0].PreRouted != 0 || Levels[1].PreRouted != 10 || Levels[2].PreRouted != 20 {
		t.Fatalf("pre-routed counts: %+v", Levels)
	}
	if Levels[1].PaperMean != 1.28 || Levels[2].PaperMean != 1.55 {
		t.Fatalf("paper means: %+v", Levels)
	}
}

func TestUncongestedGridIsUnitWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := NewCongestedGrid(rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.W != GridSize || g.H != GridSize {
		t.Fatalf("grid %dx%d", g.W, g.H)
	}
	if mw := g.MeanWeight(); mw != 1.0 {
		t.Fatalf("mean weight %v, want 1.0", mw)
	}
}

func TestCongestionRaisesMeanWeightTowardPaper(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var means [3]float64
	const trials = 10
	for i, level := range Levels {
		for n := 0; n < trials; n++ {
			g, err := NewCongestedGrid(rng, level.PreRouted)
			if err != nil {
				t.Fatal(err)
			}
			means[i] += g.MeanWeight()
		}
		means[i] /= trials
	}
	if !(means[0] < means[1] && means[1] < means[2]) {
		t.Fatalf("means not increasing: %v", means)
	}
	// Within ~15% of the paper's reported w̄ values.
	for i, level := range Levels {
		if level.PaperMean == 0 {
			continue
		}
		if rel := math.Abs(means[i]-level.PaperMean) / level.PaperMean; rel > 0.15 {
			t.Fatalf("level %s mean %v too far from paper %v", level.Name, means[i], level.PaperMean)
		}
	}
}

func TestCongestionOnlyIncrements(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := NewCongestedGrid(rng, 15)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < g.NumEdges(); id++ {
		w := g.Weight(graph.EdgeID(id))
		if w < 1 || w != math.Trunc(w) {
			t.Fatalf("edge %d weight %v: must be integer ≥ 1", id, w)
		}
	}
}

func TestOptimalMaxPathlength(t *testing.T) {
	g := graph.NewGrid(5, 5, 1)
	net := []graph.NodeID{g.Node(0, 0), g.Node(4, 0), g.Node(2, 3)}
	if got := OptimalMaxPathlength(g.Graph, net); got != 5 {
		t.Fatalf("optimal max pathlength = %v, want 5", got)
	}
	// Single-pin net: zero.
	if got := OptimalMaxPathlength(g.Graph, net[:1]); got != 0 {
		t.Fatalf("single pin = %v", got)
	}
}

// mutatingCongestedGrid is the historical implementation that bumped the
// shared grid's weights after each pre-net. Kept only as the oracle for
// TestOverlayMatchesMutation.
func mutatingCongestedGrid(rng *rand.Rand, k int) (*graph.GridGraph, error) {
	g := graph.NewGrid(GridSize, GridSize, 1)
	for i := 0; i < k; i++ {
		pins := 2 + rng.Intn(4)
		net := graph.RandomNet(rng, g.Graph, pins)
		cache := graph.NewSPTCache(g.Graph)
		tree, err := steiner.KMB(cache, net)
		if err != nil {
			return nil, err
		}
		for _, id := range tree.Edges {
			g.AddWeight(id, 1)
		}
	}
	return g, nil
}

// TestOverlayMatchesMutation pins the overlay refactor of NewCongestedGrid
// to the original weight-mutating loop: every pre-net sees base + price,
// and since the increments are small integers (exact in float64), the two
// must produce bit-identical final weights.
func TestOverlayMatchesMutation(t *testing.T) {
	for _, k := range []int{0, 10, 20} {
		got, err := NewCongestedGrid(rand.New(rand.NewSource(7)), k)
		if err != nil {
			t.Fatal(err)
		}
		want, err := mutatingCongestedGrid(rand.New(rand.NewSource(7)), k)
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < want.NumEdges(); id++ {
			if gw, ww := got.Weight(graph.EdgeID(id)), want.Weight(graph.EdgeID(id)); gw != ww {
				t.Fatalf("k=%d edge %d: overlay weight %v != mutation weight %v", k, id, gw, ww)
			}
		}
	}
}
