package fpga3d

import (
	"testing"

	"fpgarouter/internal/circuits"
	"fpgarouter/internal/fpga"
	"fpgarouter/internal/graph"
)

func TestArchValidate(t *testing.T) {
	bad := []Arch{
		{Cols: 0, Rows: 1, Layers: 1, W: 1, Fc: 1, ViaEvery: 1, PinsPerSide: 1},
		{Cols: 1, Rows: 1, Layers: 0, W: 1, Fc: 1, ViaEvery: 1, PinsPerSide: 1},
		{Cols: 1, Rows: 1, Layers: 1, W: 1, Fc: 2, ViaEvery: 1, PinsPerSide: 1},
		{Cols: 1, Rows: 1, Layers: 1, W: 1, Fc: 1, ViaEvery: 0, PinsPerSide: 1},
		{Cols: 1, Rows: 1, Layers: 1, W: 1, Fc: 1, ViaEvery: 1, ViaLength: -1, PinsPerSide: 1},
	}
	for i, a := range bad {
		if a.Validate() == nil {
			t.Fatalf("case %d accepted: %+v", i, a)
		}
	}
	if err := DefaultArch(3, 3, 2, 4).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCrossLayerConnectivity(t *testing.T) {
	f, err := NewFabric3D(DefaultArch(3, 3, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	src := Pin3D{Layer: 0, Pin: fpga.Pin{X: 0, Y: 0, Side: fpga.North}}
	dst := Pin3D{Layer: 2, Pin: fpga.Pin{X: 2, Y: 2, Side: fpga.South, Index: 1}}
	f.BeginNet([]Pin3D{src, dst})
	spt := f.Graph().Dijkstra(f.PinNode(src))
	if !spt.Reachable(f.PinNode(dst)) {
		t.Fatal("cross-layer pins not connected")
	}
	// The path must cross two layers: its cost includes ≥ 2 via lengths.
	if spt.Dist[f.PinNode(dst)] < 2*f.ViaLength {
		t.Fatalf("cross-layer distance %v implausibly small", spt.Dist[f.PinNode(dst)])
	}
}

func TestViaSparsity(t *testing.T) {
	dense, err := NewFabric3D(Arch{Cols: 2, Rows: 2, Layers: 2, W: 4, Fc: 4, ViaEvery: 1, ViaLength: 1, PinsPerSide: 1})
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := NewFabric3D(Arch{Cols: 2, Rows: 2, Layers: 2, W: 4, Fc: 4, ViaEvery: 4, ViaLength: 1, PinsPerSide: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dense.Graph().NumEdges() <= sparse.Graph().NumEdges() {
		t.Fatal("denser via grid should add more edges")
	}
}

func TestSingleLayerEqualsNoVias(t *testing.T) {
	f, err := NewFabric3D(DefaultArch(3, 3, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	// All node IDs must be within one layer's range.
	if f.Graph().NumNodes() != f.perLayer {
		t.Fatalf("single-layer fabric has %d nodes, want %d", f.Graph().NumNodes(), f.perLayer)
	}
}

func TestCommitAndReset(t *testing.T) {
	f, err := NewFabric3D(DefaultArch(3, 3, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	pins := []Pin3D{
		{Layer: 0, Pin: fpga.Pin{X: 0, Y: 0, Side: fpga.North}},
		{Layer: 1, Pin: fpga.Pin{X: 2, Y: 2, Side: fpga.South}},
	}
	f.BeginNet(pins)
	spt := f.Graph().Dijkstra(f.PinNode(pins[0]))
	tree := graph.NewTree(f.Graph(), spt.PathTo(f.PinNode(pins[1])))
	f.CommitNet(tree)
	for _, id := range tree.Edges {
		if f.Graph().Enabled(id) {
			t.Fatal("committed edge still enabled")
		}
	}
	f.Reset()
	for _, id := range tree.Edges {
		if !f.Graph().Enabled(id) {
			t.Fatal("edge still disabled after reset")
		}
	}
}

func TestFoldPlacement(t *testing.T) {
	spec := circuits.Spec{Name: "t", Series: circuits.Series4000, Cols: 4, Rows: 6, Nets2_3: 6, Nets4_10: 2}
	ckt, err := circuits.Synthesize(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	arch, nets, err := FoldPlacement(ckt, 3)
	if err != nil {
		t.Fatal(err)
	}
	if arch.Rows != 2 || arch.Layers != 3 {
		t.Fatalf("folded arch: %+v", arch)
	}
	if len(nets) != len(ckt.Nets) {
		t.Fatal("net count changed by folding")
	}
	for i, pins := range nets {
		for j, p := range pins {
			orig := ckt.Nets[i].Pins[j]
			y := p.Pin.Y
			if p.Layer%2 == 1 {
				y = arch.Rows - 1 - y // undo the boustrophedon mirror
			}
			if p.Layer*arch.Rows+y != orig.Y || p.Pin.X != orig.X {
				t.Fatalf("net %d pin %d folded incorrectly: %v from %v", i, j, p, orig)
			}
		}
	}
}

// The headline 3D claim: folding a tall 2D array into layers shortens the
// interconnect of vertically-spanning nets on the same netlist. The test
// netlist is built by hand with column-spanning 2-pin nets (the nets that
// benefit from stacking) plus a few local ones.
func TestStackingReducesWirelength(t *testing.T) {
	ckt := &circuits.Circuit{Spec: circuits.Spec{
		Name: "t3d", Series: circuits.Series4000, Cols: 6, Rows: 8,
	}}
	id := 0
	addNet := func(pins ...fpga.Pin) {
		ckt.Nets = append(ckt.Nets, circuits.Net{ID: id, Pins: pins})
		id++
	}
	// Column spanners: (x, 0) → (x, 7).
	for x := 0; x < 6; x++ {
		addNet(
			fpga.Pin{X: x, Y: 0, Side: fpga.North},
			fpga.Pin{X: x, Y: 7, Side: fpga.South},
		)
	}
	// A few local nets for realism.
	for x := 0; x < 5; x++ {
		addNet(
			fpga.Pin{X: x, Y: 3, Side: fpga.East},
			fpga.Pin{X: x + 1, Y: 3, Side: fpga.West},
		)
	}
	route := func(layers int) float64 {
		arch, nets, err := FoldPlacement(ckt, layers)
		if err != nil {
			t.Fatal(err)
		}
		arch.W = 14 // generous width: the study compares wirelength, not capacity
		arch.Fc = arch.W
		fab, err := NewFabric3D(arch)
		if err != nil {
			t.Fatal(err)
		}
		wl, err := fab.RouteAll(nets)
		if err != nil {
			t.Fatal(err)
		}
		return wl
	}
	flat := route(1)
	stacked := route(2)
	if stacked >= flat {
		t.Fatalf("2-layer wirelength %v not below flat %v", stacked, flat)
	}
}
