// Package fpga3d generalizes the routing model to three-dimensional FPGAs,
// the extension the paper's conclusion points to ("all of our methods
// generalize to three-dimensional FPGAs", citing Alexander et al.'s 3D-FPGA
// work). A 3D fabric stacks L symmetrical-array layers and joins vertically
// adjacent switch blocks with via edges on a configurable subset of tracks.
//
// Because every routing algorithm in this repository operates on plain
// weighted graphs, nothing in the algorithm layer changes: the 3D fabric is
// just another graph. The package also provides a folding placement (a 2D
// netlist's rows are wrapped across layers) and a sequential net router so
// 2D and 3D wirelength can be compared on identical netlists — the
// experiment behind the 3D-FPGA papers' headline that stacking shortens
// interconnect.
package fpga3d

import (
	"errors"
	"fmt"

	"fpgarouter/internal/circuits"
	"fpgarouter/internal/core"
	"fpgarouter/internal/fpga"
	"fpgarouter/internal/graph"
	"fpgarouter/internal/steiner"
)

// Arch describes a 3D symmetrical-array FPGA.
type Arch struct {
	Cols, Rows, Layers int
	W                  int // channel width per layer
	Fc                 int // connection-block flexibility
	// ViaEvery enables vertical via edges at every ViaEvery-th track of
	// each switch-block column (1 = all tracks, 2 = half, ...).
	ViaEvery int
	// ViaLength is the wirelength cost of one inter-layer via.
	ViaLength float64
	// PinsPerSide matches the 2D model.
	PinsPerSide int
}

// DefaultArch returns a 3D architecture comparable to the Xilinx-4000-style
// 2D model: disjoint switch blocks, Fc = W, vias on every other track with
// length 1 (an inter-layer hop costs about one channel span).
func DefaultArch(cols, rows, layers, w int) Arch {
	return Arch{
		Cols: cols, Rows: rows, Layers: layers, W: w,
		Fc: w, ViaEvery: 2, ViaLength: 1, PinsPerSide: 3,
	}
}

// Validate checks the architecture parameters.
func (a Arch) Validate() error {
	switch {
	case a.Cols < 1 || a.Rows < 1 || a.Layers < 1:
		return fmt.Errorf("fpga3d: array %dx%dx%d invalid", a.Cols, a.Rows, a.Layers)
	case a.W < 1:
		return fmt.Errorf("fpga3d: width %d invalid", a.W)
	case a.Fc < 1 || a.Fc > a.W:
		return fmt.Errorf("fpga3d: Fc=%d out of range", a.Fc)
	case a.ViaEvery < 1:
		return fmt.Errorf("fpga3d: ViaEvery=%d invalid", a.ViaEvery)
	case a.ViaLength < 0:
		return fmt.Errorf("fpga3d: ViaLength=%v invalid", a.ViaLength)
	case a.PinsPerSide < 1:
		return fmt.Errorf("fpga3d: PinsPerSide=%d invalid", a.PinsPerSide)
	}
	return nil
}

// Pin3D is a logic block pin in the stacked array.
type Pin3D struct {
	Layer int
	Pin   fpga.Pin
}

// Fabric3D is an instantiated 3D routing graph. Capacity is per edge: a
// committed net disables every edge it used (the simpler of the two
// capacity models in this repository; the 2D fabric's whole-wire claiming
// refines it for channel-width experiments, which are inherently 2D).
type Fabric3D struct {
	Arch
	g        *graph.Graph
	perLayer int // nodes per layer
	numSB    int // switch-block/track nodes per layer
	baseW    []float64
	pinTaps  map[graph.NodeID][]graph.EdgeID
	consumed map[graph.EdgeID]bool // edges claimed by committed nets

	bounds *graph.CoordBounds // immutable node coordinates for goal-directed search
}

// NewFabric3D builds the stacked routing graph.
func NewFabric3D(a Arch) (*Fabric3D, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	f := &Fabric3D{Arch: a}
	f.numSB = (a.Cols + 1) * (a.Rows + 1) * a.W
	numPins := a.Cols * a.Rows * 4 * a.PinsPerSide
	f.perLayer = f.numSB + numPins
	f.g = graph.New(f.perLayer * a.Layers)
	f.pinTaps = make(map[graph.NodeID][]graph.EdgeID, numPins*a.Layers)

	add := func(u, v graph.NodeID, w float64) graph.EdgeID {
		id := f.g.AddEdge(u, v, w)
		f.baseW = append(f.baseW, w)
		return id
	}

	for l := 0; l < a.Layers; l++ {
		// Intra-layer channel segments (disjoint switch blocks: one node
		// per (SB, track), same encoding as the 2D fabric).
		for j := 0; j <= a.Rows; j++ {
			for i := 0; i < a.Cols; i++ {
				for t := 0; t < a.W; t++ {
					add(f.sbNode(l, i, j, t), f.sbNode(l, i+1, j, t), fpga.SegmentLength)
				}
			}
		}
		for j := 0; j < a.Rows; j++ {
			for i := 0; i <= a.Cols; i++ {
				for t := 0; t < a.W; t++ {
					add(f.sbNode(l, i, j, t), f.sbNode(l, i, j+1, t), fpga.SegmentLength)
				}
			}
		}
		// Connection blocks.
		pinOrdinal := 0
		for y := 0; y < a.Rows; y++ {
			for x := 0; x < a.Cols; x++ {
				for _, side := range []fpga.Side{fpga.North, fpga.East, fpga.South, fpga.West} {
					for k := 0; k < a.PinsPerSide; k++ {
						pin := Pin3D{Layer: l, Pin: fpga.Pin{X: x, Y: y, Side: side, Index: k}}
						pn := f.PinNode(pin)
						sbA, sbB := f.pinSpanSBs(pin)
						for c := 0; c < a.Fc; c++ {
							t := (pinOrdinal + c*a.W/a.Fc) % a.W
							e1 := add(pn, sbA+graph.NodeID(t), fpga.TapLength)
							e2 := add(pn, sbB+graph.NodeID(t), fpga.TapLength)
							f.pinTaps[pn] = append(f.pinTaps[pn], e1, e2)
						}
						pinOrdinal++
					}
				}
			}
		}
	}
	// Vias between vertically adjacent switch blocks.
	for l := 0; l+1 < a.Layers; l++ {
		for j := 0; j <= a.Rows; j++ {
			for i := 0; i <= a.Cols; i++ {
				for t := 0; t < a.W; t += a.ViaEvery {
					add(f.sbNode(l, i, j, t), f.sbNode(l+1, i, j, t), a.ViaLength)
				}
			}
		}
	}
	// Edge set is final (routing only disables edges); freeze once so the
	// CSR layout never rebuilds lazily under concurrent scans.
	f.g.Freeze()
	f.buildBounds()
	return f, nil
}

// buildBounds assigns every node a 3D coordinate: switch block (l, i, j) at
// (i, j, l·ViaLength), pins at their span midpoint on their layer. Segment
// edges cost exactly their planar displacement, vias exactly their Z
// displacement, and taps exactly TapLength = half a span, so the L1
// distance between coordinates is an admissible consistent lower bound.
// The 3D fabric never reweights edges (CommitNet only disables them), so
// the bound stays valid for the fabric's whole life.
func (f *Fabric3D) buildBounds() {
	n := f.g.NumNodes()
	xs := make([]float64, n)
	ys := make([]float64, n)
	zs := make([]float64, n)
	cols1 := f.Cols + 1
	for l := 0; l < f.Layers; l++ {
		base := l * f.perLayer
		z := float64(l) * f.ViaLength
		for j := 0; j <= f.Rows; j++ {
			for i := 0; i < cols1; i++ {
				for t := 0; t < f.W; t++ {
					v := base + (j*cols1+i)*f.W + t
					xs[v], ys[v], zs[v] = float64(i), float64(j), z
				}
			}
		}
		for y := 0; y < f.Rows; y++ {
			for x := 0; x < f.Cols; x++ {
				for side := fpga.North; side <= fpga.West; side++ {
					for k := 0; k < f.PinsPerSide; k++ {
						v := f.PinNode(Pin3D{Layer: l, Pin: fpga.Pin{X: x, Y: y, Side: side, Index: k}})
						switch side {
						case fpga.South:
							xs[v], ys[v] = float64(x)+0.5, float64(y)
						case fpga.North:
							xs[v], ys[v] = float64(x)+0.5, float64(y)+1
						case fpga.West:
							xs[v], ys[v] = float64(x), float64(y)+0.5
						case fpga.East:
							xs[v], ys[v] = float64(x)+1, float64(y)+0.5
						}
						zs[v] = z
					}
				}
			}
		}
	}
	f.bounds = &graph.CoordBounds{X: xs, Y: ys, Z: zs}
}

// Bounds returns the fabric's admissible distance lower bound for
// goal-directed search; immutable and safe to share across searches.
func (f *Fabric3D) Bounds() *graph.CoordBounds { return f.bounds }

func (f *Fabric3D) sbNode(layer, i, j, t int) graph.NodeID {
	return graph.NodeID(layer*f.perLayer + (j*(f.Cols+1)+i)*f.W + t)
}

// PinNode returns the routing-graph node of a pin.
func (f *Fabric3D) PinNode(p Pin3D) graph.NodeID {
	if p.Layer < 0 || p.Layer >= f.Layers {
		panic(fmt.Sprintf("fpga3d: layer %d out of range", p.Layer))
	}
	idx := ((p.Pin.Y*f.Cols+p.Pin.X)*4+int(p.Pin.Side))*f.PinsPerSide + p.Pin.Index
	return graph.NodeID(p.Layer*f.perLayer + f.numSB + idx)
}

// pinSpanSBs returns the track-0 switch-block nodes bounding a pin's span.
func (f *Fabric3D) pinSpanSBs(p Pin3D) (graph.NodeID, graph.NodeID) {
	l, x, y := p.Layer, p.Pin.X, p.Pin.Y
	switch p.Pin.Side {
	case fpga.South:
		return f.sbNode(l, x, y, 0), f.sbNode(l, x+1, y, 0)
	case fpga.North:
		return f.sbNode(l, x, y+1, 0), f.sbNode(l, x+1, y+1, 0)
	case fpga.West:
		return f.sbNode(l, x, y, 0), f.sbNode(l, x, y+1, 0)
	case fpga.East:
		return f.sbNode(l, x+1, y, 0), f.sbNode(l, x+1, y+1, 0)
	}
	panic("fpga3d: bad side")
}

// Graph exposes the routing graph.
func (f *Fabric3D) Graph() *graph.Graph { return f.g }

// BeginNet disables the connection-block taps of every pin not in pins
// (mirroring the 2D fabric's rule that pins are not routing switches);
// already-consumed tap edges stay disabled.
func (f *Fabric3D) BeginNet(pins []Pin3D) {
	active := make(map[graph.NodeID]bool, len(pins))
	for _, p := range pins {
		active[f.PinNode(p)] = true
	}
	for node, taps := range f.pinTaps {
		on := active[node]
		for _, e := range taps {
			if f.consumed == nil || !f.consumed[e] {
				f.g.SetEnabled(e, on)
			}
		}
	}
}

// CommitNet disables every edge of the routed tree so later nets stay
// electrically disjoint.
func (f *Fabric3D) CommitNet(t graph.Tree) {
	if f.consumed == nil {
		f.consumed = make(map[graph.EdgeID]bool)
	}
	for _, id := range t.Edges {
		f.consumed[id] = true
		f.g.SetEnabled(id, false)
	}
}

// Reset re-enables all edges.
func (f *Fabric3D) Reset() {
	f.consumed = nil
	for id := 0; id < f.g.NumEdges(); id++ {
		f.g.SetEnabled(graph.EdgeID(id), true)
	}
}

// BaseWirelength sums the uncongested lengths of a tree's edges.
func (f *Fabric3D) BaseWirelength(t graph.Tree) float64 {
	total := 0.0
	for _, id := range t.Edges {
		total += f.baseW[id]
	}
	return total
}

// ErrNoPlace reports that a netlist cannot be folded onto the 3D array.
var ErrNoPlace = errors.New("fpga3d: netlist does not fit the stacked array")

// FoldPlacement maps a 2D netlist onto an L-layer stack by accordion
// folding (boustrophedon): block row y goes to layer y / rowsPerLayer, and
// odd layers are mirrored so rows adjacent across a fold boundary end up
// vertically aligned — a connection that crossed the boundary in 2D
// becomes a single via hop in 3D.
func FoldPlacement(ckt *circuits.Circuit, layers int) (Arch, [][]Pin3D, error) {
	rowsPerLayer := (ckt.Rows + layers - 1) / layers
	arch := DefaultArch(ckt.Cols, rowsPerLayer, layers, 1)
	arch.PinsPerSide = ckt.ArchAt(4).PinsPerSide
	var nets [][]Pin3D
	for _, n := range ckt.Nets {
		var pins []Pin3D
		for _, p := range n.Pins {
			layer := p.Y / rowsPerLayer
			if layer >= layers {
				return Arch{}, nil, ErrNoPlace
			}
			y := p.Y % rowsPerLayer
			if layer%2 == 1 {
				y = rowsPerLayer - 1 - y // mirror odd layers
			}
			pins = append(pins, Pin3D{
				Layer: layer,
				Pin:   fpga.Pin{X: p.X, Y: y, Side: p.Side, Index: p.Index},
			})
		}
		nets = append(nets, pins)
	}
	return arch, nets, nil
}

// RouteAll routes every net sequentially with IKMB on the 3D graph,
// committing each tree; it returns total wirelength or an error if any net
// fails (the 3D study routes at generous widths, so no rip-up pass loop is
// needed).
func (f *Fabric3D) RouteAll(nets [][]Pin3D) (float64, error) {
	total := 0.0
	for i, pins := range nets {
		f.BeginNet(pins)
		terms := make([]graph.NodeID, len(pins))
		for j, p := range pins {
			terms[j] = f.PinNode(p)
		}
		cache := graph.NewSPTCacheWithin(f.g, terms)
		// Candidate scan elided (empty pool): plain KMB keeps the 3D study
		// fast and applies the identical construction in 2D and 3D.
		tree, err := core.IGMST(cache, terms, steiner.KMB, core.Options{
			Candidates: []graph.NodeID{},
		})
		if err != nil {
			return 0, fmt.Errorf("fpga3d: net %d: %w", i, err)
		}
		f.CommitNet(tree)
		total += f.BaseWirelength(tree)
	}
	return total, nil
}
