package fpga3d

import (
	"math"
	"math/rand"
	"testing"

	"fpgarouter/internal/fpga"
	"fpgarouter/internal/graph"
)

// TestBounds3DAdmissible asserts the stacked fabric's coordinate bound is
// a consistent admissible lower bound: every enabled edge's L1
// displacement (with Z scaled by ViaLength) is at most its weight, sampled
// lower bounds never exceed true distances, and both survive committed
// nets (which only disable edges — the 3D fabric never reweights).
func TestBounds3DAdmissible(t *testing.T) {
	a := DefaultArch(3, 3, 3, 4)
	a.ViaLength = 2.5
	f, err := NewFabric3D(a)
	if err != nil {
		t.Fatal(err)
	}
	b := f.Bounds()
	g := f.Graph()
	rng := rand.New(rand.NewSource(7))

	check := func(when string) {
		t.Helper()
		for id := 0; id < g.NumEdges(); id++ {
			e := g.Edge(graph.EdgeID(id))
			if !e.Enabled {
				continue
			}
			disp := math.Abs(b.X[e.U]-b.X[e.V]) + math.Abs(b.Y[e.U]-b.Y[e.V]) + math.Abs(b.Z[e.U]-b.Z[e.V])
			if disp > e.W+1e-9 {
				t.Fatalf("%s: edge %d: displacement %v > weight %v", when, id, disp, e.W)
			}
		}
		for s := 0; s < 3; s++ {
			src := graph.NodeID(rng.Intn(g.NumNodes()))
			spt := g.Dijkstra(src)
			for v := 0; v < g.NumNodes(); v++ {
				if math.IsInf(spt.Dist[v], 1) {
					continue
				}
				if lb := b.LowerBound(src, graph.NodeID(v)); lb > spt.Dist[v]+1e-9 {
					t.Fatalf("%s: bound %v > dist %v for %d→%d", when, lb, spt.Dist[v], src, v)
				}
			}
		}
	}

	check("base")

	// Commit a real cross-layer route, then re-check: disabling edges can
	// only raise distances, never break admissibility.
	src := Pin3D{Layer: 0, Pin: fpga.Pin{X: 0, Y: 0, Side: fpga.North}}
	dst := Pin3D{Layer: 2, Pin: fpga.Pin{X: 2, Y: 2, Side: fpga.South, Index: 1}}
	f.BeginNet([]Pin3D{src, dst})
	spt := g.DijkstraWithin(f.PinNode(src), []graph.NodeID{f.PinNode(dst)})
	if !spt.Reachable(f.PinNode(dst)) {
		t.Fatal("cross-layer pins not connected")
	}
	f.CommitNet(graph.NewTree(g, spt.PathTo(f.PinNode(dst))))
	check("after CommitNet")

	// A* across layers agrees with Dijkstra on the congestion-free metric.
	f.BeginNet([]Pin3D{src, dst})
	s, d := f.PinNode(src), f.PinNode(dst)
	ref := g.DijkstraWithin(s, []graph.NodeID{d})
	ast := g.AStar(nil, s, d, b)
	if ref.Dist[d] != ast.Dist[d] {
		t.Fatalf("3D A* dist %v vs dijkstra %v", ast.Dist[d], ref.Dist[d])
	}

	f.Reset()
	check("after Reset")
}
