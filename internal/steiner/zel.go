package steiner

import "fpgarouter/internal/graph"

// ZEL is the graph Steiner tree heuristic of Zelikovsky (Algorithmica 1993)
// with performance ratio 11/6, as described in the paper's Appendix 8.2.
// It repeatedly contracts the triple of net nodes whose best Steiner point
// yields the largest positive "win" with respect to the distance-graph MST,
// then finishes with KMB over the net plus the chosen Steiner points.
func ZEL(cache *graph.SPTCache, net []graph.NodeID) (graph.Tree, error) {
	return ZELRestricted(cache, net, nil)
}

// ZELRestricted is ZEL with the per-triple Steiner point search restricted
// to a candidate node pool (nil = every node of the graph). The FPGA
// router passes a net's bounding-box pool here: scanning all |V| > 5000
// routing-graph nodes per triple is needless, and the 11/6 bound only
// degrades toward KMB's 2 as candidates are removed.
func ZELRestricted(cache *graph.SPTCache, net []graph.NodeID, pool []graph.NodeID) (graph.Tree, error) {
	if err := CheckNet(cache, net); err != nil {
		return graph.Tree{}, err
	}
	if len(net) <= 2 {
		return KMB(cache, net)
	}
	k := len(net)
	g := cache.Graph()
	nV := g.NumNodes()

	// Distance matrix over the net (the metric of G').
	m := make([][]float64, k)
	for i := range m {
		m[i] = make([]float64, k)
	}
	for i := 0; i < k; i++ {
		ti := cache.Tree(net[i])
		for j := i + 1; j < k; j++ {
			d := ti.Dist[net[j]]
			if d == graph.Inf() {
				return graph.Tree{}, ErrNoRoute
			}
			m[i][j] = d
			m[j][i] = d
		}
	}

	// For every triple z = {a,b,c} find the Steiner point v_z minimizing
	// dist_z = Σ_{s∈z} dist_G(s, v). Terminal-rooted SPTs give dist_G(s, ·)
	// for all candidates v in one pass each.
	type triple struct {
		a, b, c int
		v       graph.NodeID
		dist    float64
	}
	var triples []triple
	distTo := make([][]float64, k)
	for i := 0; i < k; i++ {
		distTo[i] = cache.Tree(net[i]).Dist
	}
	cands := pool
	if cands == nil {
		cands = make([]graph.NodeID, nV)
		for v := range cands {
			cands[v] = graph.NodeID(v)
		}
	}
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			for c := b + 1; c < k; c++ {
				best := graph.Inf()
				bestV := graph.None
				for _, v := range cands {
					d := distTo[a][v] + distTo[b][v] + distTo[c][v]
					if d < best {
						best = d
						bestV = v
					}
				}
				if bestV != graph.None {
					triples = append(triples, triple{a, b, c, bestV, best})
				}
			}
		}
	}

	// Greedy contraction: zeroing the two edges (a,b) and (a,c) of a triple
	// models connecting the triple for free through its Steiner point.
	var steinerPts []graph.NodeID
	baseMST := primMatrix(m)
	for {
		bestWin := 0.0
		bestIdx := -1
		for i, z := range triples {
			saveAB, saveAC := m[z.a][z.b], m[z.a][z.c]
			m[z.a][z.b], m[z.b][z.a] = 0, 0
			m[z.a][z.c], m[z.c][z.a] = 0, 0
			contracted := primMatrix(m)
			m[z.a][z.b], m[z.b][z.a] = saveAB, saveAB
			m[z.a][z.c], m[z.c][z.a] = saveAC, saveAC
			win := baseMST - contracted - z.dist
			if win > bestWin {
				bestWin = win
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			break
		}
		z := triples[bestIdx]
		m[z.a][z.b], m[z.b][z.a] = 0, 0
		m[z.a][z.c], m[z.c][z.a] = 0, 0
		steinerPts = append(steinerPts, z.v)
		baseMST = primMatrix(m)
	}

	// Final KMB over N ∪ W (deduplicating Steiner points already in N via
	// the cache's pooled node set instead of a per-call map).
	aug := append([]graph.NodeID(nil), net...)
	inNet := cache.NodeSet()
	for _, v := range net {
		inNet.Add(v)
	}
	for _, v := range steinerPts {
		if inNet.Add(v) {
			aug = append(aug, v)
		}
	}
	// Root a tree at every admitted Steiner point before the final KMB:
	// with all of aug rooted, KMB's symmetric Dist/Path lookups always read
	// off their first argument's tree, which makes this call's output
	// independent of whatever earlier evaluations happened to memoize in
	// the cache. The iterated template's parallel candidate scan relies on
	// that history-independence for bit-parity with its sequential
	// reference (core.Options.Workers).
	for _, v := range aug[len(net):] {
		cache.Tree(v)
	}
	return KMB(cache, aug)
}

// primMatrix returns the MST cost of the complete graph given by symmetric
// distance matrix m.
func primMatrix(m [][]float64) float64 {
	k := len(m)
	if k <= 1 {
		return 0
	}
	inTree := make([]bool, k)
	best := make([]float64, k)
	for i := range best {
		best[i] = graph.Inf()
	}
	best[0] = 0
	total := 0.0
	for iter := 0; iter < k; iter++ {
		u := -1
		for v := 0; v < k; v++ {
			if !inTree[v] && (u < 0 || best[v] < best[u]) {
				u = v
			}
		}
		inTree[u] = true
		total += best[u]
		for v := 0; v < k; v++ {
			if !inTree[v] && m[u][v] < best[v] {
				best[v] = m[u][v]
			}
		}
	}
	return total
}
