package steiner

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fpgarouter/internal/graph"
)

// star returns a star graph: center node 0, leaves 1..k with unit spokes.
func star(k int) *graph.Graph {
	g := graph.New(k + 1)
	for i := 1; i <= k; i++ {
		g.AddEdge(0, graph.NodeID(i), 1)
	}
	return g
}

func cacheFor(g *graph.Graph) *graph.SPTCache { return graph.NewSPTCache(g) }

func TestCheckNet(t *testing.T) {
	g := star(3)
	c := cacheFor(g)
	if err := CheckNet(c, nil); err == nil {
		t.Fatal("empty net accepted")
	}
	if err := CheckNet(c, []graph.NodeID{1, 1}); err == nil {
		t.Fatal("duplicate pin accepted")
	}
	if err := CheckNet(c, []graph.NodeID{1, 99}); err == nil {
		t.Fatal("out-of-range pin accepted")
	}
	if err := CheckNet(c, []graph.NodeID{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// Disconnect leaf 3 and expect ErrNoRoute.
	g2 := star(3)
	g2.SetEnabled(2, false)
	if err := CheckNet(cacheFor(g2), []graph.NodeID{1, 3}); err != ErrNoRoute {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
}

func TestDistanceGraph(t *testing.T) {
	g := star(3)
	c := cacheFor(g)
	dg, err := NewDistanceGraph(c, []graph.NodeID{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if dg.G.NumNodes() != 3 || dg.G.NumEdges() != 3 {
		t.Fatalf("distance graph shape %d/%d", dg.G.NumNodes(), dg.G.NumEdges())
	}
	for i := 0; i < dg.G.NumEdges(); i++ {
		if dg.G.Weight(graph.EdgeID(i)) != 2 {
			t.Fatalf("distance = %v, want 2", dg.G.Weight(graph.EdgeID(i)))
		}
	}
	if dg.Index(2) != 1 {
		t.Fatal("Index mapping wrong")
	}
}

func TestKMBStar(t *testing.T) {
	// Terminals = all leaves of a 3-star. Optimal Steiner tree uses the
	// center (cost 3); KMB's MST-of-distance-graph expands spokes and its
	// second MST over the expanded subgraph recovers cost 3 here.
	g := star(3)
	c := cacheFor(g)
	tr, err := KMB(c, []graph.NodeID{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.ValidateTree(g, tr, []graph.NodeID{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if tr.Cost != 3 {
		t.Fatalf("KMB star cost = %v, want 3", tr.Cost)
	}
}

func TestKMBTwoPinsIsShortestPath(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 3, 5)
	g.AddEdge(3, 2, 5)
	c := cacheFor(g)
	tr, err := KMB(c, []graph.NodeID{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Cost != 2 {
		t.Fatalf("2-pin KMB cost = %v, want 2", tr.Cost)
	}
}

func TestKMBSinglePin(t *testing.T) {
	g := star(2)
	tr, err := KMB(cacheFor(g), []graph.NodeID{1})
	if err != nil || len(tr.Edges) != 0 || tr.Cost != 0 {
		t.Fatalf("single-pin: tr=%+v err=%v", tr, err)
	}
}

func TestKMBNoRoute(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	if _, err := KMB(cacheFor(g), []graph.NodeID{0, 3}); err != ErrNoRoute {
		t.Fatalf("err = %v", err)
	}
}

// kmbWorstCase builds the classic KMB 2·(1−1/L) instance: a hub node h
// connected to L terminals with spokes of weight 1, and a terminal cycle
// with edges of weight 2−ε. KMB (working on the distance graph) picks the
// cycle edges, cost (L−1)(2−ε); optimal uses the hub, cost L.
func kmbWorstCase(l int, eps float64) (*graph.Graph, []graph.NodeID) {
	g := graph.New(l + 1)
	hub := graph.NodeID(l)
	net := make([]graph.NodeID, l)
	for i := 0; i < l; i++ {
		net[i] = graph.NodeID(i)
		g.AddEdge(graph.NodeID(i), hub, 1)
	}
	for i := 0; i < l; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%l), 2-eps)
	}
	return g, net
}

func TestKMBWithinTwoTimesOptimal(t *testing.T) {
	g, net := kmbWorstCase(6, 0.01)
	c := cacheFor(g)
	tr, err := KMB(c, net)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := ExactCost(c, net)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 6 {
		t.Fatalf("optimal = %v, want 6 (hub)", opt)
	}
	if tr.Cost > 2*opt+1e-9 {
		t.Fatalf("KMB cost %v exceeds 2×OPT %v", tr.Cost, 2*opt)
	}
	// And this instance really is (near) worst-case for KMB.
	if tr.Cost < 1.5*opt {
		t.Fatalf("KMB cost %v unexpectedly good; gadget broken?", tr.Cost)
	}
}

func TestZELStar(t *testing.T) {
	g := star(3)
	c := cacheFor(g)
	tr, err := ZEL(c, []graph.NodeID{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.ValidateTree(g, tr, []graph.NodeID{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if tr.Cost != 3 {
		t.Fatalf("ZEL star cost = %v, want 3", tr.Cost)
	}
}

func TestZELBeatsKMBOnWorstCase(t *testing.T) {
	// On the hub gadget ZEL's triple contraction finds the hub.
	g, net := kmbWorstCase(6, 0.01)
	c := cacheFor(g)
	z, err := ZEL(c, net)
	if err != nil {
		t.Fatal(err)
	}
	k, err := KMB(c, net)
	if err != nil {
		t.Fatal(err)
	}
	if z.Cost > k.Cost+1e-9 {
		t.Fatalf("ZEL %v worse than KMB %v", z.Cost, k.Cost)
	}
	if z.Cost > (11.0/6.0)*6+1e-9 {
		t.Fatalf("ZEL cost %v exceeds 11/6 × OPT", z.Cost)
	}
}

func TestZELTwoPinFallsBackToKMB(t *testing.T) {
	g := star(2)
	c := cacheFor(g)
	tr, err := ZEL(c, []graph.NodeID{1, 2})
	if err != nil || tr.Cost != 2 {
		t.Fatalf("ZEL 2-pin: %v %v", tr, err)
	}
}

func TestExactSmall(t *testing.T) {
	// 2×3 grid, terminals at three corners; optimal Steiner tree cost 4
	// (an L through the middle column is not needed: spanning tree through
	// edges suffices).
	g := graph.NewGrid(3, 2, 1)
	c := cacheFor(g.Graph)
	net := []graph.NodeID{g.Node(0, 0), g.Node(2, 0), g.Node(0, 1)}
	tr, err := Exact(c, net)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.ValidateTree(g.Graph, tr, net); err != nil {
		t.Fatal(err)
	}
	if tr.Cost != 3 {
		t.Fatalf("exact cost = %v, want 3", tr.Cost)
	}
}

func TestExactUsesSteinerPoint(t *testing.T) {
	g := star(4)
	c := cacheFor(g)
	net := []graph.NodeID{1, 2, 3, 4}
	tr, err := Exact(c, net)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Cost != 4 {
		t.Fatalf("exact star cost = %v, want 4 (through center)", tr.Cost)
	}
}

func TestExactTooLarge(t *testing.T) {
	g := star(MaxExactTerminals + 1)
	net := make([]graph.NodeID, MaxExactTerminals+1)
	for i := range net {
		net[i] = graph.NodeID(i + 1)
	}
	if _, err := Exact(cacheFor(g), net); err != ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestExactMatchesBruteForceOnTrees(t *testing.T) {
	// On a tree graph the Steiner minimal tree is the union of pairwise
	// paths: its cost equals the size of the Steiner closure, which we can
	// compute independently via pruning the whole tree.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		n := 5 + rng.Intn(10)
		g := graph.New(n)
		for i := 1; i < n; i++ {
			g.AddEdge(graph.NodeID(i), graph.NodeID(rng.Intn(i)), 1+rng.Float64()*4)
		}
		k := 2 + rng.Intn(4)
		net := graph.RandomNet(rng, g, k)
		c := cacheFor(g)
		got, err := ExactCost(c, net)
		if err != nil {
			t.Fatal(err)
		}
		all := make([]graph.EdgeID, g.NumEdges())
		for i := range all {
			all[i] = graph.EdgeID(i)
		}
		want := graph.PruneTree(g, all, net).Cost
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: exact %v != pruned-tree %v", trial, got, want)
		}
	}
}

// Property: heuristic solutions are valid trees spanning the net, and
// KMB ≤ 2×OPT, ZEL ≤ 11/6×OPT on random small instances.
func TestQuickHeuristicBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(16)
		g := graph.RandomConnected(rng, n, n*2, 6)
		k := 2 + rng.Intn(4)
		if k > n {
			k = n
		}
		net := graph.RandomNet(rng, g, k)
		c := cacheFor(g)
		opt, err := ExactCost(c, net)
		if err != nil {
			return false
		}
		for _, h := range []Heuristic{KMB, ZEL} {
			tr, err := h(c, net)
			if err != nil {
				return false
			}
			if graph.ValidateTree(g, tr, net) != nil {
				return false
			}
			if tr.Cost < opt-1e-9 {
				return false // heuristic beat the exact solver: bug
			}
		}
		kmb, _ := KMB(c, net)
		zel, _ := ZEL(c, net)
		if kmb.Cost > 2*opt+1e-9 || zel.Cost > (11.0/6.0)*opt+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
