package steiner

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpgarouter/internal/graph"
)

func TestSPHStar(t *testing.T) {
	g := star(4)
	c := cacheFor(g)
	net := []graph.NodeID{1, 2, 3, 4}
	tr, err := SPH(c, net)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.ValidateTree(g, tr, net); err != nil {
		t.Fatal(err)
	}
	// SPH splices paths through the hub: once the first terminal connects
	// through the center, the rest attach at cost 1 each → optimal 4.
	if tr.Cost != 4 {
		t.Fatalf("SPH star cost = %v, want 4", tr.Cost)
	}
}

func TestSPHTwoPinsIsShortestPath(t *testing.T) {
	g := graph.NewGrid(5, 5, 1)
	c := cacheFor(g.Graph)
	tr, err := SPH(c, []graph.NodeID{g.Node(0, 0), g.Node(4, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Cost != 8 {
		t.Fatalf("cost = %v, want 8", tr.Cost)
	}
}

func TestSPHSinglePinAndNoRoute(t *testing.T) {
	g := star(2)
	if tr, err := SPH(cacheFor(g), []graph.NodeID{1}); err != nil || len(tr.Edges) != 0 {
		t.Fatalf("single pin: %v %v", tr, err)
	}
	g2 := graph.New(3)
	g2.AddEdge(0, 1, 1)
	if _, err := SPH(cacheFor(g2), []graph.NodeID{0, 2}); err != ErrNoRoute {
		t.Fatalf("err = %v", err)
	}
}

func TestSPHMidPathAttachment(t *testing.T) {
	// A comb: spine 0-1-2-3-4 (unit edges), teeth hanging off nodes 1-3.
	// Connecting the far tooth first pulls the spine into the tree, so the
	// nearer teeth attach at cost 1 each — SPH's Steiner points.
	g := graph.New(8)
	for i := 0; i < 4; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
	}
	teeth := []graph.NodeID{5, 6, 7}
	for i, tooth := range teeth {
		g.AddEdge(graph.NodeID(i+1), tooth, 1)
	}
	c := cacheFor(g)
	net := append([]graph.NodeID{0, 4}, teeth...)
	tr, err := SPH(c, net)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.ValidateTree(g, tr, net); err != nil {
		t.Fatal(err)
	}
	if tr.Cost != 7 { // spine 4 + three teeth
		t.Fatalf("comb cost = %v, want 7", tr.Cost)
	}
}

// Property: SPH returns valid trees within 2× optimal on random instances.
func TestQuickSPHBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(14)
		g := graph.RandomConnected(rng, n, n*2, 6)
		k := 2 + rng.Intn(4)
		if k > n {
			k = n
		}
		net := graph.RandomNet(rng, g, k)
		c := cacheFor(g)
		tr, err := SPH(c, net)
		if err != nil {
			return false
		}
		if graph.ValidateTree(g, tr, net) != nil {
			return false
		}
		opt, err := ExactCost(c, net)
		if err != nil {
			return false
		}
		return tr.Cost >= opt-1e-9 && tr.Cost <= 2*opt+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
