// Package steiner implements the classical graph Steiner tree heuristics the
// paper builds on and compares against: the KMB heuristic of Kou, Markowsky
// and Berman (performance ratio 2·(1−1/L)) and the ZEL heuristic of
// Zelikovsky (ratio 11/6), plus an exact Dreyfus–Wagner solver used as a
// test oracle and for optimality normalization on small instances.
//
// All heuristics share the signature expected by the IGMST template in
// package core: they take a shortest-paths cache over a frozen graph state
// and a net (first node = source, rest = sinks), and return a Tree over the
// original graph's edge IDs.
package steiner

import (
	"errors"
	"fmt"
	"slices"

	"fpgarouter/internal/graph"
)

// ErrNoRoute is returned when a net's pins are not all mutually reachable
// through enabled edges.
var ErrNoRoute = errors.New("steiner: net pins not connected")

// Heuristic is a graph Steiner tree construction: it returns a tree over
// cache.Graph() spanning net. The IGMST template accepts any Heuristic.
type Heuristic func(cache *graph.SPTCache, net []graph.NodeID) (graph.Tree, error)

// CheckNet validates a net: at least one pin, no duplicates, all pins
// mutually reachable in the cache's graph. Returns ErrNoRoute or a
// descriptive error. It runs once per base-heuristic evaluation, so the
// duplicate check uses the cache's pooled node set rather than a per-call
// map; the range check comes first because the set indexes by pin ID.
func CheckNet(cache *graph.SPTCache, net []graph.NodeID) error {
	if len(net) == 0 {
		return errors.New("steiner: empty net")
	}
	n := cache.Graph().NumNodes()
	for _, v := range net {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("steiner: pin %d out of range", v)
		}
	}
	seen := cache.NodeSet()
	for _, v := range net {
		if !seen.Add(v) {
			return fmt.Errorf("steiner: duplicate pin %d", v)
		}
	}
	t := cache.Tree(net[0])
	for _, v := range net[1:] {
		if !t.Reachable(v) {
			return ErrNoRoute
		}
	}
	return nil
}

// DistanceGraph is the complete graph G' over a node subset whose edge
// weights are shortest-path distances in the underlying graph (the first
// step of both KMB and ZEL, and of the DOM arborescence construction).
//
// Index i of Terms corresponds to node i of the complete graph G.
type DistanceGraph struct {
	Terms []graph.NodeID
	G     *graph.Graph
	// pos maps an original node ID to its index in Terms.
	pos map[graph.NodeID]int
}

// NewDistanceGraph builds the distance graph over terms using cached
// shortest-path trees. Returns ErrNoRoute if any pair is disconnected.
func NewDistanceGraph(cache *graph.SPTCache, terms []graph.NodeID) (*DistanceGraph, error) {
	k := len(terms)
	dg := &DistanceGraph{
		Terms: append([]graph.NodeID(nil), terms...),
		G:     graph.New(k),
		pos:   make(map[graph.NodeID]int, k),
	}
	for i, v := range terms {
		dg.pos[v] = i
	}
	// Distances go through the cache's symmetric lookup so that evaluating
	// a candidate Steiner node never forces a Dijkstra rooted at the
	// candidate: the distance to every established terminal is read off
	// that terminal's (already cached) tree.
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			d := cache.Dist(terms[i], terms[j])
			if d == graph.Inf() {
				return nil, ErrNoRoute
			}
			dg.G.AddEdge(graph.NodeID(i), graph.NodeID(j), d)
		}
	}
	return dg, nil
}

// Index returns the distance-graph index of original node v (which must be
// one of Terms).
func (dg *DistanceGraph) Index(v graph.NodeID) int { return dg.pos[v] }

// ExpandEdges translates a set of distance-graph edges into the underlying
// graph's edge IDs by expanding each into its shortest path (deduplicated).
func (dg *DistanceGraph) ExpandEdges(cache *graph.SPTCache, ids []graph.EdgeID) []graph.EdgeID {
	seen := cache.EdgeSet()
	var out []graph.EdgeID
	for _, id := range ids {
		e := dg.G.Edge(id)
		u := dg.Terms[e.U]
		v := dg.Terms[e.V]
		for _, ge := range cache.Path(u, v) {
			if seen.Add(ge) {
				out = append(out, ge)
			}
		}
	}
	return out
}

// localMST computes an MST of the subgraph induced by the given edges of
// the cache's graph (deduplicated) using Kruskal over a compact node
// remapping, so its cost is proportional to the edge set, not to |V(g)|.
// The edge set is assumed to induce a connected subgraph (true for unions
// of shortest paths that expand a connected tree). Tie-breaking is by edge
// ID, deterministic.
//
// This is the hot path of every candidate-Steiner-node evaluation in the
// iterated constructions, which is why dedup and remapping run on the
// cache's pooled epoch sets instead of per-call maps (see DESIGN.md §5).
// It acquires the cache's EdgeSet and NodeSet, invalidating any the caller
// still holds.
func localMST(cache *graph.SPTCache, edges []graph.EdgeID) []graph.EdgeID {
	g := cache.Graph()
	seen := cache.EdgeSet()
	remap := cache.NodeSet()
	uniq := make([]graph.EdgeID, 0, len(edges))
	for _, e := range edges {
		if seen.Add(e) {
			uniq = append(uniq, e)
			ge := g.Edge(e)
			remap.Slot(ge.U)
			remap.Slot(ge.V)
		}
	}
	// Ordering by the cache's effective weight (base + overlay price, when an
	// overlay is attached) keeps the MST consistent with the searches that
	// produced the edge set; with no overlay this is exactly g.Weight.
	slices.SortFunc(uniq, func(a, b graph.EdgeID) int {
		wa, wb := cache.EdgeWeight(a), cache.EdgeWeight(b)
		if wa != wb {
			if wa < wb {
				return -1
			}
			return 1
		}
		return int(a) - int(b)
	})
	uf := graph.NewUnionFind(remap.Len())
	mst := make([]graph.EdgeID, 0, remap.Len())
	for _, e := range uniq {
		ge := g.Edge(e)
		if uf.Union(remap.Slot(ge.U), remap.Slot(ge.V)) {
			mst = append(mst, e)
		}
	}
	return mst
}

// sortedCopy returns a sorted copy of nodes (determinism helper).
func sortedCopy(nodes []graph.NodeID) []graph.NodeID {
	c := append([]graph.NodeID(nil), nodes...)
	slices.Sort(c)
	return c
}
