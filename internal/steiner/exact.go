package steiner

import (
	"errors"

	"fpgarouter/internal/graph"
)

// ErrTooLarge is returned by Exact for nets whose exponential state space
// would be impractical; the exact solver is a test / normalization oracle
// for small instances only.
var ErrTooLarge = errors.New("steiner: net too large for exact solver")

// MaxExactTerminals bounds the net size accepted by Exact (the
// Dreyfus–Wagner dynamic program is exponential in the terminal count).
const MaxExactTerminals = 12

// dwChoice records how a dp state was reached, for tree reconstruction.
type dwChoice struct {
	sub  int32        // merge: the submask combined at this node (0 = none)
	pred graph.NodeID // walk: predecessor node (None = none)
	edge graph.EdgeID // walk: edge from pred
}

// Exact computes an optimal graph Steiner minimal tree for net using the
// Dreyfus–Wagner dynamic program (O(3^k·V + 2^k·(E+V log V))). It returns
// the optimal tree over the enabled edges of the cache's graph.
//
// This is the GMST oracle used by tests to verify the heuristics'
// performance bounds (KMB ≤ 2·OPT, ZEL/IZEL ≤ 11/6·OPT) and by the
// experiment harnesses to normalize small-instance results.
func Exact(cache *graph.SPTCache, net []graph.NodeID) (graph.Tree, error) {
	if err := CheckNet(cache, net); err != nil {
		return graph.Tree{}, err
	}
	if len(net) > MaxExactTerminals {
		return graph.Tree{}, ErrTooLarge
	}
	g := cache.Graph()
	nV := g.NumNodes()
	if len(net) == 1 {
		return graph.Tree{Edges: []graph.EdgeID{}}, nil
	}

	root := net[0]
	terms := net[1:] // terminals carried in the mask
	k := len(terms)
	full := (1 << k) - 1

	dp := make([][]float64, full+1)
	ch := make([][]dwChoice, full+1)
	for m := 1; m <= full; m++ {
		dp[m] = make([]float64, nV)
		ch[m] = make([]dwChoice, nV)
		for v := range dp[m] {
			dp[m][v] = graph.Inf()
			ch[m][v] = dwChoice{sub: 0, pred: graph.None, edge: graph.None}
		}
	}

	// Base cases: a single terminal t_i connected to v by a shortest path.
	// We seed dp[1<<i][t_i] = 0 and let the per-mask Dijkstra relaxation
	// below extend it to every v, which also records walk predecessors so
	// reconstruction yields actual edges.
	for i := 0; i < k; i++ {
		dp[1<<i][terms[i]] = 0
	}

	for mask := 1; mask <= full; mask++ {
		// Merge step: combine two subtrees at a common node v.
		if mask&(mask-1) != 0 { // skip singleton masks
			for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
				rest := mask ^ sub
				if sub < rest {
					continue // each unordered split once
				}
				dsub, drest := dp[sub], dp[rest]
				dm := dp[mask]
				for v := 0; v < nV; v++ {
					if dsub[v] == graph.Inf() || drest[v] == graph.Inf() {
						continue
					}
					if c := dsub[v] + drest[v]; c < dm[v] {
						dm[v] = c
						ch[mask][v] = dwChoice{sub: int32(sub), pred: graph.None, edge: graph.None}
					}
				}
			}
		}
		// Relax step: multi-source Dijkstra over graph edges with dp[mask]
		// as initial distances ("grow the tree along a path").
		relaxDW(g, dp[mask], ch[mask])
	}

	if dp[full][root] == graph.Inf() {
		return graph.Tree{}, ErrNoRoute
	}

	// Reconstruct edges by unwinding (mask, v) states.
	edgeSet := make(map[graph.EdgeID]bool)
	type state struct {
		mask int
		v    graph.NodeID
	}
	stack := []state{{full, root}}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c := ch[s.mask][s.v]
		switch {
		case c.pred != graph.None:
			edgeSet[c.edge] = true
			stack = append(stack, state{s.mask, c.pred})
		case c.sub != 0:
			stack = append(stack, state{int(c.sub), s.v}, state{s.mask ^ int(c.sub), s.v})
		default:
			// Base state: v is the mask's lone terminal; nothing to add.
		}
	}
	edges := make([]graph.EdgeID, 0, len(edgeSet))
	for id := range edgeSet {
		edges = append(edges, id)
	}
	t := graph.PruneTree(g, edges, net)
	return t, nil
}

// ExactCost returns only the optimal Steiner tree cost.
func ExactCost(cache *graph.SPTCache, net []graph.NodeID) (float64, error) {
	t, err := Exact(cache, net)
	if err != nil {
		return 0, err
	}
	return t.Cost, nil
}

// relaxDW performs the Dijkstra-flavoured relaxation of Dreyfus–Wagner:
// dist[v] = min(dist[v], min over enabled edges (u,v) of dist[u] + w),
// recording walk predecessors in ch for reconstruction.
func relaxDW(g *graph.Graph, dist []float64, ch []dwChoice) {
	q := make(pqDW, 0, len(dist)/4+1)
	for v, d := range dist {
		if d != graph.Inf() {
			q.push(pqDWItem{d, graph.NodeID(v)})
		}
	}
	done := make([]bool, len(dist))
	for len(q) > 0 {
		it := q.pop()
		u := it.node
		if done[u] || it.dist > dist[u] {
			continue
		}
		done[u] = true
		for a, w := range g.EnabledArcs(u) {
			if done[a.To] {
				continue
			}
			if nd := dist[u] + w; nd < dist[a.To] {
				dist[a.To] = nd
				ch[a.To] = dwChoice{sub: 0, pred: u, edge: a.ID}
				q.push(pqDWItem{nd, a.To})
			}
		}
	}
}

type pqDWItem struct {
	dist float64
	node graph.NodeID
}

type pqDW []pqDWItem

func (q *pqDW) push(it pqDWItem) {
	*q = append(*q, it)
	i := len(*q) - 1
	h := *q
	for i > 0 {
		p := (i - 1) / 2
		if h[p].dist <= h[i].dist {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func (q *pqDW) pop() pqDWItem {
	h := *q
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r, s := 2*i+1, 2*i+2, i
		if l < len(h) && h[l].dist < h[s].dist {
			s = l
		}
		if r < len(h) && h[r].dist < h[s].dist {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
	*q = h
	return top
}
