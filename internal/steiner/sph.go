package steiner

import "fpgarouter/internal/graph"

// SPH is the shortest-paths heuristic of Takahashi and Matsuyama (1980),
// the other classical 2-approximation for the graph Steiner tree problem:
// starting from the source, repeatedly connect the terminal nearest to the
// tree built so far by a shortest path. Like KMB its performance ratio is
// 2·(1−1/L); in practice the two differ instance by instance, which makes
// SPH a useful additional base heuristic for the paper's iterated template
// (core.ISPH) and a sanity cross-check for KMB.
func SPH(cache *graph.SPTCache, net []graph.NodeID) (graph.Tree, error) {
	if err := CheckNet(cache, net); err != nil {
		return graph.Tree{}, err
	}
	if len(net) == 1 {
		return graph.Tree{Edges: []graph.EdgeID{}}, nil
	}
	g := cache.Graph()

	// Nodes currently in the tree (starts as just the source), kept as an
	// insertion-ordered slice: scanning it in that fixed order makes the
	// tie-break between equally near attachment points deterministic (a
	// map-keyed set would leave it to map iteration order) and reuses the
	// cache's pooled sets instead of allocating per call.
	inTree := cache.NodeSet()
	treeNodes := make([]graph.NodeID, 1, 2*len(net))
	treeNodes[0] = net[0]
	inTree.Add(net[0])
	connected := make([]bool, len(net))
	connected[0] = true
	var edges []graph.EdgeID
	edgeSet := cache.EdgeSet()

	for remaining := len(net) - 1; remaining > 0; remaining-- {
		// Find the unconnected terminal with the cheapest shortest path to
		// any tree node. Distances are read off the terminal's own SPT
		// (one Dijkstra per terminal over the whole construction), since
		// dist(treeNode, term) = dist(term, treeNode).
		bestTerm := -1
		bestNode := graph.None
		bestD := graph.Inf()
		for i, term := range net {
			if connected[i] {
				continue
			}
			tt := cache.Tree(term)
			for _, v := range treeNodes {
				if d := tt.Dist[v]; d < bestD {
					bestD = d
					bestTerm = i
					bestNode = v
				}
			}
		}
		if bestTerm < 0 || bestD == graph.Inf() {
			return graph.Tree{}, ErrNoRoute
		}
		// Splice the shortest path from the chosen tree node to the
		// terminal; every node on it joins the tree (a later terminal may
		// attach mid-path, which is where SPH's Steiner points come from).
		path := cache.Tree(net[bestTerm]).PathTo(bestNode)
		for _, id := range path {
			if edgeSet.Add(id) {
				edges = append(edges, id)
			}
			e := g.Edge(id)
			if inTree.Add(e.U) {
				treeNodes = append(treeNodes, e.U)
			}
			if inTree.Add(e.V) {
				treeNodes = append(treeNodes, e.V)
			}
		}
		if inTree.Add(net[bestTerm]) {
			treeNodes = append(treeNodes, net[bestTerm])
		}
		connected[bestTerm] = true
	}
	// The union of spliced paths can touch a tree node twice under ties;
	// finish with a local MST + prune exactly like KMB's steps 3–4.
	// localMST re-acquires both pooled sets; inTree/edgeSet are dead here.
	mst := localMST(cache, edges)
	return graph.PruneTree(g, mst, net), nil
}
