package steiner

import "fpgarouter/internal/graph"

// KMB is the graph Steiner tree heuristic of Kou, Markowsky and Berman
// (Acta Informatica 1981), as described in the paper's Appendix 8.1:
//
//  1. build the complete distance graph G' over the net,
//  2. compute MST(G') and expand each MST edge into its shortest path in G,
//     yielding subgraph G”,
//  3. compute MST(G”) and delete pendant edges until all leaves are pins.
//
// Performance ratio: 2·(1−1/L) where L is the maximum number of leaves in
// any optimal solution.
func KMB(cache *graph.SPTCache, net []graph.NodeID) (graph.Tree, error) {
	if err := CheckNet(cache, net); err != nil {
		return graph.Tree{}, err
	}
	if len(net) == 1 {
		return graph.Tree{Edges: []graph.EdgeID{}}, nil
	}
	// Step 1+2: MST of the (implicit) complete distance graph over the
	// net, computed matrix-free over cached shortest-path distances —
	// this function is evaluated once per Steiner candidate inside IKMB,
	// so it avoids materializing a graph object per call.
	pairs, err := distanceMSTPairs(cache, net)
	if err != nil {
		return graph.Tree{}, err
	}
	seen := cache.EdgeSet()
	var pathEdges []graph.EdgeID
	for _, pr := range pairs {
		for _, ge := range cache.Path(net[pr[0]], net[pr[1]]) {
			if seen.Add(ge) {
				pathEdges = append(pathEdges, ge)
			}
		}
	}
	// Step 3: MST over the expanded subgraph, then prune pendant
	// non-terminals. localMST re-acquires the edge set; seen is dead here.
	mst2 := localMST(cache, pathEdges)
	return graph.PruneTree(cache.Graph(), mst2, net), nil
}

// distanceMSTPairs runs Prim over the implicit complete distance graph on
// net and returns the chosen (i, j) index pairs. Ties break toward the
// earlier-reached node, deterministically.
func distanceMSTPairs(cache *graph.SPTCache, net []graph.NodeID) ([][2]int32, error) {
	k := len(net)
	inTree := make([]bool, k)
	best := make([]float64, k)
	bestFrom := make([]int32, k)
	for i := range best {
		best[i] = graph.Inf()
		bestFrom[i] = -1
	}
	best[0] = 0
	pairs := make([][2]int32, 0, k-1)
	for iter := 0; iter < k; iter++ {
		u := -1
		for v := 0; v < k; v++ {
			if !inTree[v] && (u < 0 || best[v] < best[u]) {
				u = v
			}
		}
		if best[u] == graph.Inf() {
			return nil, ErrNoRoute
		}
		inTree[u] = true
		if bestFrom[u] >= 0 {
			pairs = append(pairs, [2]int32{bestFrom[u], int32(u)})
		}
		// Hoist the cache's per-call root lookup out of the inner loop: once
		// u's tree exists, read its Dist slice directly. When it doesn't,
		// fall through to Dist (which prefers whichever endpoint is cached —
		// the fold-order of the sum matters for bit-reproducibility) and
		// re-check, since that call may have computed and cached u's tree.
		tu, uok := cache.CachedTree(net[u])
		for v := 0; v < k; v++ {
			if inTree[v] {
				continue
			}
			var d float64
			if uok {
				d = tu.Dist[net[v]]
			} else {
				d = cache.Dist(net[u], net[v])
				tu, uok = cache.CachedTree(net[u])
			}
			if d < best[v] {
				best[v] = d
				bestFrom[v] = int32(u)
			}
		}
	}
	return pairs, nil
}
