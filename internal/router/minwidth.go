// Minimum channel width search (the router's quality metric, Tables 2–4).
//
// The search runs width probes in parallel — each probe routes the whole
// circuit at one candidate width on an independently built fabric with its
// own child context — but examines probe outcomes strictly in the order the
// sequential search would have visited them, so the returned width, Result
// and error are bit-identical to MinWidthSeq at every WidthProbes setting.
package router

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"fpgarouter/internal/circuits"
	"fpgarouter/internal/faultpoint"
)

// MinWidth finds the smallest channel width at which the circuit routes
// completely: it grows the width from start until the first success, then
// walks downward while success persists. It returns the minimum width and
// the routing result at that width. Candidate widths are probed concurrently
// (see Options.WidthProbes); the outcome is identical to the sequential
// search.
func MinWidth(ckt *circuits.Circuit, start int, opts Options) (int, *Result, error) {
	return MinWidthCtx(nil, ckt, start, opts)
}

// probeOut is the outcome of routing the circuit at one candidate width.
type probeOut struct {
	res *Result
	err error
}

// widthProbes resolves Options.WidthProbes: 0 means GOMAXPROCS capped at 8,
// anything below 1 means strictly sequential probing.
func widthProbes(opts Options) int {
	p := opts.WidthProbes
	if p == 0 {
		p = runtime.GOMAXPROCS(0)
		if p > 8 {
			p = 8
		}
	}
	if p < 1 {
		p = 1
	}
	return p
}

// probeBatch routes the circuit at each width of ws concurrently and returns
// the outcomes in the same order. Each probe builds its own fabric and runs
// under a child context (own pooled scratch, shared stats collector), so
// probes share no mutable state. opts is passed raw — normalization happens
// inside RouteCtx per probe, exactly as the sequential search behaves.
func probeBatch(ctx *Context, ckt *circuits.Circuit, ws []int, opts Options) []probeOut {
	out := make([]probeOut, len(ws))
	if len(ws) == 1 {
		ctx.Stats.AddWidthProbe()
		res, err := RouteCtx(ctx, ckt, ws[0], opts)
		out[0] = probeOut{res, err}
		return out
	}
	panics := make([]*faultpoint.GoroutinePanic, len(ws))
	var wg sync.WaitGroup
	for i, w := range ws {
		wg.Add(1)
		go func(i, w int) {
			defer wg.Done()
			child := ctx.child()
			defer func() {
				// A probe panic must not escape its goroutine (it would kill
				// the process, bypassing the service's per-job recover):
				// capture it — stack included — for the barrier to re-raise,
				// and discard the child's scratch instead of pooling it.
				if p := recover(); p != nil {
					gp, ok := p.(*faultpoint.GoroutinePanic)
					if !ok {
						gp = &faultpoint.GoroutinePanic{Value: p, Stack: debug.Stack()}
					}
					panics[i] = gp
					child.Discard()
					return
				}
				child.Close()
			}()
			child.Stats.AddWidthProbe()
			res, err := RouteCtx(child, ckt, w, opts)
			out[i] = probeOut{res, err}
		}(i, w)
	}
	wg.Wait()
	// Re-raise the lowest-indexed probe panic on the owning goroutine
	// (deterministic when several probes fail the same batch).
	for _, gp := range panics {
		if gp != nil {
			panic(gp)
		}
	}
	return out
}

// MinWidthContext is MinWidthCtx with cooperative cancellation: cc is
// checked between probe batches, and every in-flight probe inherits it, so
// a cancellation (or deadline) abandons the whole batch at the probes' next
// pass/net boundary instead of letting width probes run to completion. The
// returned error matches both ErrCanceled and cc's cause under errors.Is.
//
// The search degrades gracefully: complete reports whether it ran to the
// true minimum. When interrupted, the returned width and Result are the
// best feasible width found so far (complete=false), or 0/nil if no width
// had routed yet. ctx may be nil; as in RouteContext it is bound to cc only
// for this call.
func MinWidthContext(cc context.Context, ctx *Context, ckt *circuits.Circuit, start int, opts Options) (w int, res *Result, complete bool, err error) {
	ctx, done := ensureContext(ctx)
	defer done()
	restore := ctx.bind(cc)
	defer restore()
	w, res, err = MinWidthCtx(ctx, ckt, start, opts)
	return w, res, err == nil, err
}

// MinWidthCtx is MinWidth with an explicit routing context (nil for an
// ephemeral one). The search brackets upward from start in parallel batches,
// then refines downward in parallel batches; within each batch the probe
// results are consumed in the order the sequential search visits them, which
// makes the returned (width, Result, error) triple independent of
// WidthProbes and of goroutine scheduling.
//
// A run canceled during the shrink phase returns the best feasible width
// found so far alongside the error (matching ErrCanceled under errors.Is);
// one canceled before any width routed returns (0, nil, err).
func MinWidthCtx(ctx *Context, ckt *circuits.Circuit, start int, opts Options) (int, *Result, error) {
	ctx, done := ensureContext(ctx)
	defer done()
	if start < 1 {
		start = 4
	}
	par := widthProbes(opts)
	limit := 4*start + 64
	w := start
	var lastGood *Result
	// Grow until routable: probe ascending batches [w, w+par) and accept the
	// first width (in ascending order) that routes; a non-unroutable error at
	// an earlier width wins, matching the sequential search's first failure.
grow:
	for {
		if err := ctx.checkCanceled(); err != nil {
			return 0, nil, err
		}
		ws := make([]int, 0, par)
		for x := w; x <= limit && len(ws) < par; x++ {
			ws = append(ws, x)
		}
		if len(ws) == 0 {
			return 0, nil, fmt.Errorf("router: %s unroutable up to width %d", ckt.Name, limit+1)
		}
		for i, p := range probeBatch(ctx, ckt, ws, opts) {
			if p.err == nil {
				w = ws[i]
				lastGood = p.res
				break grow
			}
			if !errors.Is(p.err, ErrUnroutable) {
				return 0, nil, p.err
			}
		}
		w = ws[len(ws)-1] + 1
		if w > limit {
			return 0, nil, fmt.Errorf("router: %s unroutable up to width %d", ckt.Name, w)
		}
	}
	// Shrink while routable: probe descending batches [w-par, w) and walk the
	// results downward from w-1; the first unroutable width stops the search
	// exactly where the sequential walk stops.
	for w > 1 {
		if err := ctx.checkCanceled(); err != nil {
			return w, lastGood, err
		}
		lo := w - par
		if lo < 1 {
			lo = 1
		}
		ws := make([]int, 0, w-lo)
		for x := w - 1; x >= lo; x-- {
			ws = append(ws, x)
		}
		stop := false
		for i, p := range probeBatch(ctx, ckt, ws, opts) {
			if p.err == nil {
				w = ws[i]
				lastGood = p.res
				continue
			}
			if errors.Is(p.err, ErrUnroutable) {
				stop = true
				break
			}
			if errors.Is(p.err, ErrCanceled) {
				// Graceful degradation: a feasible width is in hand, so an
				// interruption surrenders the refinement, not the answer.
				return w, lastGood, p.err
			}
			return 0, nil, p.err
		}
		if stop {
			break
		}
	}
	return w, lastGood, nil
}

// MinWidthSeq is the strictly sequential reference implementation of the
// minimum-width search: one Route call at a time, growing then shrinking by
// single widths. MinWidth is guaranteed to return identical results; this
// version exists for regression tests and benchmarks of the parallel search.
func MinWidthSeq(ctx *Context, ckt *circuits.Circuit, start int, opts Options) (int, *Result, error) {
	ctx, done := ensureContext(ctx)
	defer done()
	if start < 1 {
		start = 4
	}
	w := start
	var lastGood *Result
	// Grow until routable.
	for {
		ctx.Stats.AddWidthProbe()
		res, err := RouteCtx(ctx, ckt, w, opts)
		if err == nil {
			lastGood = res
			break
		}
		if !errors.Is(err, ErrUnroutable) {
			return 0, nil, err
		}
		w++
		if w > 4*start+64 {
			return 0, nil, fmt.Errorf("router: %s unroutable up to width %d", ckt.Name, w)
		}
	}
	// Shrink while routable. As in MinWidthCtx, cancellation mid-shrink
	// returns the best feasible width found so far alongside the error.
	for w > 1 {
		ctx.Stats.AddWidthProbe()
		res, err := RouteCtx(ctx, ckt, w-1, opts)
		if err != nil {
			if errors.Is(err, ErrUnroutable) {
				break
			}
			if errors.Is(err, ErrCanceled) {
				return w, lastGood, err
			}
			return 0, nil, err
		}
		w--
		lastGood = res
	}
	return w, lastGood, nil
}
