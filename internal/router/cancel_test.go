package router

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"fpgarouter/internal/circuits"
	"fpgarouter/internal/stats"
)

// TestRouteContextPreCanceled: an already-canceled context aborts before
// any pass runs, with an error matching both ErrCanceled and the cause.
func TestRouteContextPreCanceled(t *testing.T) {
	ckt := synth(t, tinySpec(circuits.Series4000), 1)
	cc, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RouteContext(cc, nil, ckt, 8, Options{MaxPasses: 8})
	if res != nil {
		t.Fatalf("canceled route returned a result: %+v", res)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("error %v does not match ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not match context.Canceled", err)
	}
}

// TestRouteContextBackgroundMatchesRoute: a never-canceled context must not
// perturb routing — the result is bit-identical to the plain entry point.
func TestRouteContextBackgroundMatchesRoute(t *testing.T) {
	ckt := synth(t, tinySpec(circuits.Series4000), 1)
	opts := Options{MaxPasses: 8}
	plain, err := Route(ckt, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	withCC, err := RouteContext(context.Background(), nil, ckt, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "background-context", plain, withCC)
}

// TestMinWidthContextDeadline is the cancellation-semantics regression
// test: a short deadline must abort MinWidthContext mid-probe-batch
// promptly (bounded wall-clock), classify as ErrCanceled plus
// context.DeadlineExceeded, and leave the stats collector and the routing
// context's pooled scratch in a reusable state.
func TestMinWidthContextDeadline(t *testing.T) {
	// busc at MaxPasses 20 takes far longer than the deadline: the search
	// has to grind through rip-up passes at several unroutable widths.
	spec, ok := circuits.SpecByName("busc")
	if !ok {
		t.Fatal("busc spec missing")
	}
	ckt := synth(t, spec, 1)
	col := stats.New()
	ctx := NewContext(col)
	defer ctx.Close()

	cc, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	begin := time.Now()
	_, _, complete, err := MinWidthContext(cc, ctx, ckt, 1, Options{MaxPasses: 20})
	elapsed := time.Since(begin)
	if complete {
		t.Fatal("deadline-interrupted search reported complete=true")
	}
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want ErrCanceled+DeadlineExceeded, got %v", err)
	}
	// Cancellation is cooperative at pass/net boundaries, so allow the
	// in-flight nets to finish — but a full busc minwidth search takes far
	// longer than this bound.
	if elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v, not prompt", elapsed)
	}

	// The same routing context (same pooled scratch) and collector must
	// still complete a fresh run.
	probesBefore := col.Snapshot().WidthProbes
	w, res, err := MinWidthCtx(ctx, ckt, spec.PaperIKMB, Options{MaxPasses: 8})
	if err != nil {
		t.Fatalf("context not reusable after cancellation: %v", err)
	}
	if res == nil || !res.Routed || w < 1 {
		t.Fatalf("bad post-cancel result: w=%d res=%+v", w, res)
	}
	if after := col.Snapshot().WidthProbes; after <= probesBefore {
		t.Fatalf("collector stopped recording after cancellation (%d -> %d)", probesBefore, after)
	}
}

// TestMinWidthContextCancelMidBatch cancels (rather than times out) while
// probes are in flight and checks the canceled error wins over unroutable.
func TestMinWidthContextCancelMidBatch(t *testing.T) {
	ckt := synth(t, tinySpec(circuits.Series4000), 1)
	cc, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, _, _, err := MinWidthContext(cc, nil, ckt, 1, Options{MaxPasses: 20, WidthProbes: 3})
	if err != nil && !errors.Is(err, ErrCanceled) {
		t.Fatalf("mid-batch cancellation produced a non-canceled error: %v", err)
	}
	// err == nil is possible if the search won the race; nothing to assert.
}

// TestResultJSONRoundTrip is the wire-format golden test for
// router.Result: encode → decode must be bit-identical (tree edge lists,
// float metrics and all), so service clients can rely on parity with an
// in-process Route call.
func TestResultJSONRoundTrip(t *testing.T) {
	ckt := synth(t, tinySpec(circuits.Series4000), 1)
	res, err := Route(ckt, 8, Options{MaxPasses: 8})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "json-round-trip", res, &back)
	if res.MaxPathSum != back.MaxPathSum || res.MaxUtil != back.MaxUtil {
		t.Fatalf("metrics drifted: %v/%d vs %v/%d", res.MaxPathSum, res.MaxUtil, back.MaxPathSum, back.MaxUtil)
	}
	again, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Fatalf("re-encoded JSON differs:\n%s\nvs\n%s", again, data)
	}
}
