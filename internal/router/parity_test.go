package router

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"fpgarouter/internal/circuits"
	"fpgarouter/internal/stats"
)

// TestRouteParityAcrossWorkers asserts the router-level tentpole guarantee:
// Route returns a byte-identical Result at every CandidateWorkers setting,
// for every iterated algorithm, in both admission modes, at several widths
// (including widths tight enough to fail and exercise FailedNets). Run
// under -race this is the end-to-end proof for the parallel candidate scan.
func TestRouteParityAcrossWorkers(t *testing.T) {
	ckt := synth(t, tinySpec(circuits.Series4000), 3)
	for _, alg := range []string{AlgIKMB, AlgISPH, AlgIZEL, AlgIDOM} {
		for _, single := range []bool{false, true} {
			for _, w := range []int{3, 5, 8} {
				t.Run(fmt.Sprintf("%s/single=%v/w=%d", alg, single, w), func(t *testing.T) {
					run := func(workers int) (*Result, error) {
						return Route(ckt, w, Options{
							Algorithm:        alg,
							MaxPasses:        4,
							SingleStep:       single,
							CandidateWorkers: workers,
						})
					}
					refRes, refErr := run(1)
					for _, cw := range []int{0, 2, 8} {
						res, err := run(cw)
						if !errors.Is(err, refErr) && (err == nil) != (refErr == nil) {
							t.Fatalf("workers=%d err %v, sequential err %v", cw, err, refErr)
						}
						if !reflect.DeepEqual(res, refRes) {
							t.Fatalf("workers=%d Result diverges from sequential", cw)
						}
					}
				})
			}
		}
	}
}

// TestRouteParityLazyScan asserts the lazy scan's exactness contract end
// to end: Route returns a byte-identical Result with LazyScan on versus
// off, at worker counts {1, 4} (plus the default and the max fan-out), for
// every iterated algorithm in both admission modes, on circuits where
// stale gains stay valid upper bounds (these; see core.lazyQueue for the
// contract's limits — TestLazyScanWorkerInvarianceBusc covers the
// unconditional half on a paper circuit). Run under -race this is the
// whole-circuit proof for the lazy candidate scan.
func TestRouteParityLazyScan(t *testing.T) {
	ckt := synth(t, tinySpec(circuits.Series4000), 3)
	for _, alg := range []string{AlgIKMB, AlgISPH, AlgIZEL, AlgIDOM} {
		for _, single := range []bool{false, true} {
			for _, w := range []int{3, 5} {
				t.Run(fmt.Sprintf("%s/single=%v/w=%d", alg, single, w), func(t *testing.T) {
					run := func(lazy bool, workers int) (*Result, error) {
						return Route(ckt, w, Options{
							Algorithm:        alg,
							MaxPasses:        4,
							SingleStep:       single,
							CandidateWorkers: workers,
							LazyScan:         lazy,
						})
					}
					refRes, refErr := run(false, 1)
					for _, cw := range []int{1, 4, 0, 8} {
						res, err := run(true, cw)
						if !errors.Is(err, refErr) && (err == nil) != (refErr == nil) {
							t.Fatalf("lazy workers=%d err %v, exhaustive err %v", cw, err, refErr)
						}
						if !reflect.DeepEqual(res, refRes) {
							t.Fatalf("lazy workers=%d Result diverges from exhaustive sequential", cw)
						}
					}
				})
			}
		}
	}
}

// TestRouteParityCriticalNets covers the mixed path: critical nets routed
// with the arborescence algorithm alongside IKMB for the rest.
func TestRouteParityCriticalNets(t *testing.T) {
	ckt := synth(t, tinySpec(circuits.Series4000), 4)
	opts := Options{MaxPasses: 6, CriticalNets: []int{0, 3, 5}}
	ref, refErr := Route(ckt, 8, opts)
	if refErr != nil {
		t.Fatal(refErr)
	}
	for _, cw := range []int{0, 2, 8} {
		o := opts
		o.CandidateWorkers = cw
		res, err := Route(ckt, 8, o)
		if err != nil {
			t.Fatalf("workers=%d: %v", cw, err)
		}
		if !reflect.DeepEqual(res, ref) {
			t.Fatalf("workers=%d Result diverges from sequential", cw)
		}
	}
}

// TestLazyScanWorkerInvarianceBusc asserts, on a real paper circuit, the
// unconditional half of the lazy scan's contract: the lazy route's Result
// AND its lazy counters are byte-identical at every CandidateWorkers
// setting (the burst size is fixed, so the evaluated set never depends on
// fan-out), and the evaluation saving is real (EvalsSaved > 0 with rounds
// actually served lazily). Identity against the exhaustive scan is NOT
// asserted here: on congestion-weighted fabrics stale gains are not always
// upper bounds, so busc may admit different Steiner points lazily — see
// core.lazyQueue and DESIGN.md §5.
func TestLazyScanWorkerInvarianceBusc(t *testing.T) {
	spec, ok := circuits.SpecByName("busc")
	if !ok {
		t.Fatal("busc spec missing")
	}
	ckt := synth(t, spec, 1)
	run := func(workers int) (*Result, stats.Snapshot) {
		col := stats.New()
		ctx := NewContext(col)
		defer ctx.Close()
		res, _, err := RouteWithFabricContext(nil, ctx, ckt, 10, Options{
			MaxPasses:        4,
			SingleStep:       true,
			CandidateWorkers: workers,
			LazyScan:         true,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res, col.Snapshot()
	}
	refRes, refSnap := run(1)
	if refSnap.EvalsSaved <= 0 || refSnap.LazyHits <= 0 {
		t.Fatalf("lazy scan saved nothing on busc: hits %d, saved %d", refSnap.LazyHits, refSnap.EvalsSaved)
	}
	for _, cw := range []int{4, 0} {
		res, snap := run(cw)
		if !reflect.DeepEqual(res, refRes) {
			t.Fatalf("workers=%d lazy Result diverges from workers=1", cw)
		}
		if snap.LazyHits != refSnap.LazyHits || snap.FullRescans != refSnap.FullRescans ||
			snap.EvalsSaved != refSnap.EvalsSaved || snap.CandidateEvals != refSnap.CandidateEvals {
			t.Fatalf("workers=%d lazy counters {hits %d rescans %d saved %d evals %d} != workers=1 {%d %d %d %d}",
				cw, snap.LazyHits, snap.FullRescans, snap.EvalsSaved, snap.CandidateEvals,
				refSnap.LazyHits, refSnap.FullRescans, refSnap.EvalsSaved, refSnap.CandidateEvals)
		}
	}
}
