package router

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"fpgarouter/internal/circuits"
)

// TestRouteParityAcrossWorkers asserts the router-level tentpole guarantee:
// Route returns a byte-identical Result at every CandidateWorkers setting,
// for every iterated algorithm, in both admission modes, at several widths
// (including widths tight enough to fail and exercise FailedNets). Run
// under -race this is the end-to-end proof for the parallel candidate scan.
func TestRouteParityAcrossWorkers(t *testing.T) {
	ckt := synth(t, tinySpec(circuits.Series4000), 3)
	for _, alg := range []string{AlgIKMB, AlgISPH, AlgIZEL, AlgIDOM} {
		for _, single := range []bool{false, true} {
			for _, w := range []int{3, 5, 8} {
				t.Run(fmt.Sprintf("%s/single=%v/w=%d", alg, single, w), func(t *testing.T) {
					run := func(workers int) (*Result, error) {
						return Route(ckt, w, Options{
							Algorithm:        alg,
							MaxPasses:        4,
							SingleStep:       single,
							CandidateWorkers: workers,
						})
					}
					refRes, refErr := run(1)
					for _, cw := range []int{0, 2, 8} {
						res, err := run(cw)
						if !errors.Is(err, refErr) && (err == nil) != (refErr == nil) {
							t.Fatalf("workers=%d err %v, sequential err %v", cw, err, refErr)
						}
						if !reflect.DeepEqual(res, refRes) {
							t.Fatalf("workers=%d Result diverges from sequential", cw)
						}
					}
				})
			}
		}
	}
}

// TestRouteParityCriticalNets covers the mixed path: critical nets routed
// with the arborescence algorithm alongside IKMB for the rest.
func TestRouteParityCriticalNets(t *testing.T) {
	ckt := synth(t, tinySpec(circuits.Series4000), 4)
	opts := Options{MaxPasses: 6, CriticalNets: []int{0, 3, 5}}
	ref, refErr := Route(ckt, 8, opts)
	if refErr != nil {
		t.Fatal(refErr)
	}
	for _, cw := range []int{0, 2, 8} {
		o := opts
		o.CandidateWorkers = cw
		res, err := Route(ckt, 8, o)
		if err != nil {
			t.Fatalf("workers=%d: %v", cw, err)
		}
		if !reflect.DeepEqual(res, ref) {
			t.Fatalf("workers=%d Result diverges from sequential", cw)
		}
	}
}
