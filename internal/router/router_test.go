package router

import (
	"errors"
	"testing"

	"fpgarouter/internal/circuits"
	"fpgarouter/internal/fpga"
	"fpgarouter/internal/graph"
)

// tinySpec is a small synthetic circuit for fast router tests.
func tinySpec(series circuits.Series) circuits.Spec {
	return circuits.Spec{
		Name: "tiny", Series: series, Cols: 5, Rows: 5,
		Nets2_3: 12, Nets4_10: 4, NetsOver10: 0,
	}
}

func synth(t *testing.T, spec circuits.Spec, seed int64) *circuits.Circuit {
	t.Helper()
	ckt, err := circuits.Synthesize(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	return ckt
}

func TestRouteTinyCircuitAllAlgorithms(t *testing.T) {
	ckt := synth(t, tinySpec(circuits.Series4000), 1)
	for _, alg := range []string{AlgKMB, AlgZEL, AlgSPH, AlgIKMB, AlgIZEL, AlgISPH, AlgDJKA, AlgDOM, AlgPFA, AlgIDOM} {
		res, err := Route(ckt, 8, Options{Algorithm: alg, MaxPasses: 8})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if !res.Routed || res.Wirelength <= 0 {
			t.Fatalf("%s: result %+v", alg, res)
		}
		if res.MaxUtil > 8 {
			t.Fatalf("%s: span utilization %d exceeds width", alg, res.MaxUtil)
		}
		// Every net got a tree spanning its pins.
		fab, err := fpga.NewFabric(ckt.ArchAt(8))
		if err != nil {
			t.Fatal(err)
		}
		for i, nr := range res.Nets {
			terms := make([]graph.NodeID, len(ckt.Nets[i].Pins))
			for j, p := range ckt.Nets[i].Pins {
				terms[j] = fab.PinNode(p)
			}
			if err := graph.ValidateTree(fab.Graph(), nr.Tree, terms); err != nil {
				t.Fatalf("%s net %d: %v", alg, i, err)
			}
		}
	}
}

func TestRoutedNetsAreWireDisjoint(t *testing.T) {
	ckt := synth(t, tinySpec(circuits.Series3000), 2)
	res, err := Route(ckt, 8, Options{MaxPasses: 8})
	if err != nil {
		t.Fatal(err)
	}
	fab, err := fpga.NewFabric(ckt.ArchAt(8))
	if err != nil {
		t.Fatal(err)
	}
	owner := make(map[fpga.WireID]int)
	for i, nr := range res.Nets {
		seen := make(map[fpga.WireID]bool)
		for _, e := range nr.Tree.Edges {
			w := fab.WireOfEdge(e)
			if w < 0 {
				continue
			}
			if seen[w] {
				continue // same net may tap a wire it also traverses
			}
			seen[w] = true
			if prev, taken := owner[w]; taken {
				t.Fatalf("wire %d used by nets %d and %d", w, prev, i)
			}
			owner[w] = i
		}
	}
}

func TestUnroutableAtWidthOne(t *testing.T) {
	ckt := synth(t, tinySpec(circuits.Series4000), 3)
	_, err := Route(ckt, 1, Options{MaxPasses: 3})
	if err == nil {
		t.Skip("tiny circuit routed at width 1; congestion too low to test")
	}
	if !errors.Is(err, ErrUnroutable) {
		t.Fatalf("err = %v, want ErrUnroutable", err)
	}
}

func TestMinWidthFindsBoundary(t *testing.T) {
	ckt := synth(t, tinySpec(circuits.Series4000), 4)
	w, res, err := MinWidth(ckt, 4, Options{MaxPasses: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Routed || res.Width != w {
		t.Fatalf("min width result inconsistent: w=%d res=%+v", w, res)
	}
	// One below the minimum must fail (that's what minimality means).
	if w > 1 {
		if _, err := Route(ckt, w-1, Options{MaxPasses: 5}); err == nil {
			t.Fatalf("width %d routed but MinWidth said %d", w-1, w)
		}
	}
}

func TestMoveToFront(t *testing.T) {
	order := []int{5, 3, 8, 1, 9}
	got := moveToFront(order, []int{8, 9})
	want := []int{8, 9, 5, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestInitialOrderPrefersBigNets(t *testing.T) {
	ckt := synth(t, tinySpec(circuits.Series4000), 5)
	order := initialOrder(ckt)
	for i := 1; i < len(order); i++ {
		if len(ckt.Nets[order[i-1]].Pins) < len(ckt.Nets[order[i]].Pins) {
			t.Fatal("order not descending by pin count")
		}
	}
}

func TestUnknownAlgorithmRejected(t *testing.T) {
	ckt := synth(t, tinySpec(circuits.Series4000), 6)
	_, err := Route(ckt, 6, Options{Algorithm: "bogus", MaxPasses: 1})
	if err == nil {
		t.Fatal("bogus algorithm accepted")
	}
}

func TestArborescenceAlgorithmsGiveShortestPathsOnFreshFabric(t *testing.T) {
	// The first net routed on a fresh fabric must have its max pathlength
	// equal to the shortest possible on the pristine graph.
	ckt := synth(t, tinySpec(circuits.Series4000), 7)
	for _, alg := range []string{AlgDJKA, AlgPFA, AlgIDOM} {
		res, err := Route(ckt, 8, Options{Algorithm: alg, MaxPasses: 5})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		// Identify the net routed first in pass order.
		first := initialOrder(ckt)[0]
		fab, err := fpga.NewFabric(ckt.ArchAt(8))
		if err != nil {
			t.Fatal(err)
		}
		src := fab.PinNode(ckt.Nets[first].Pins[0])
		spt := fab.Graph().Dijkstra(src)
		wantMax := 0.0
		for _, p := range ckt.Nets[first].Pins[1:] {
			if d := spt.Dist[fab.PinNode(p)]; d > wantMax {
				wantMax = d
			}
		}
		if got := res.Nets[first].MaxPath; got > wantMax+1e-9 {
			t.Fatalf("%s: first net max path %v > optimal %v", alg, got, wantMax)
		}
	}
}

func TestRouterSkipsCommitOnFailedNetAndRetries(t *testing.T) {
	// At a width that needs >1 pass, the result must still be complete.
	ckt := synth(t, circuits.Spec{
		Name: "dense", Series: circuits.Series4000, Cols: 4, Rows: 4,
		Nets2_3: 16, Nets4_10: 6,
	}, 8)
	w, res, err := MinWidth(ckt, 3, Options{MaxPasses: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Routed {
		t.Fatalf("min width %d result not routed", w)
	}
	for i, nr := range res.Nets {
		if len(nr.Tree.Edges) == 0 {
			t.Fatalf("net %d has empty tree in successful result", i)
		}
	}
}

func TestRouteDeterministic(t *testing.T) {
	ckt := synth(t, tinySpec(circuits.Series4000), 9)
	a, err := Route(ckt, 7, Options{MaxPasses: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Route(ckt, 7, Options{MaxPasses: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a.Wirelength != b.Wirelength || a.Passes != b.Passes {
		t.Fatalf("routing not deterministic: %v/%d vs %v/%d", a.Wirelength, a.Passes, b.Wirelength, b.Passes)
	}
	for i := range a.Nets {
		if len(a.Nets[i].Tree.Edges) != len(b.Nets[i].Tree.Edges) {
			t.Fatalf("net %d tree differs between runs", i)
		}
		for j := range a.Nets[i].Tree.Edges {
			if a.Nets[i].Tree.Edges[j] != b.Nets[i].Tree.Edges[j] {
				t.Fatalf("net %d edge %d differs between runs", i, j)
			}
		}
	}
}

func TestSegLensOptionAppliesToFabric(t *testing.T) {
	ckt := synth(t, tinySpec(circuits.Series4000), 10)
	lens := make([]int, 8)
	for i := range lens {
		lens[i] = 1 + i%2
	}
	res, fab, err := RouteWithFabric(ckt, 8, Options{MaxPasses: 8, SegLens: lens})
	if err != nil {
		t.Skipf("segmented width 8 unroutable on this instance: %v", err)
	}
	if !res.Routed {
		t.Fatal("not routed")
	}
	if fab.SegLen(1) != 2 {
		t.Fatal("segment lengths not applied to the fabric")
	}
}

func TestCriticalNetsMixedRouting(t *testing.T) {
	ckt := synth(t, tinySpec(circuits.Series4000), 11)
	// Mark the three highest-fanout nets critical.
	order := initialOrder(ckt)
	crit := []int{ckt.Nets[order[0]].ID, ckt.Nets[order[1]].ID, ckt.Nets[order[2]].ID}
	res, err := Route(ckt, 9, Options{
		Algorithm:    AlgIKMB,
		CriticalNets: crit,
		MaxPasses:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Routed {
		t.Fatal("mixed-mode routing failed")
	}
	// Critical nets route first on the fresh fabric with IDOM, so their
	// max pathlength equals the pristine-fabric optimum.
	fab, err := fpga.NewFabric(ckt.ArchAt(9))
	if err != nil {
		t.Fatal(err)
	}
	critSet := map[int]bool{}
	for _, id := range crit {
		critSet[id] = true
	}
	checked := 0
	for i, n := range ckt.Nets {
		if !critSet[n.ID] {
			continue
		}
		src := fab.PinNode(n.Pins[0])
		spt := fab.Graph().Dijkstra(src)
		want := 0.0
		for _, p := range n.Pins[1:] {
			if d := spt.Dist[fab.PinNode(p)]; d > want {
				want = d
			}
		}
		// The very first critical net sees a pristine fabric; later ones
		// may detour around it, so only a ≥-sanity and first-net equality
		// are asserted.
		if checked == 0 && res.Nets[i].MaxPath > want+1e-9 {
			t.Fatalf("first critical net max path %v > pristine optimum %v", res.Nets[i].MaxPath, want)
		}
		if res.Nets[i].MaxPath < want-1e-9 {
			t.Fatalf("net %d max path %v below its lower bound %v", i, res.Nets[i].MaxPath, want)
		}
		checked++
	}
	if checked != 3 {
		t.Fatalf("checked %d critical nets, want 3", checked)
	}
}
