// Parallel routing mode: Options.Parallel routes every net concurrently
// through the negotiated-congestion engine of internal/pathfinder instead
// of the sequential rip-up/re-route loop, then commits the converged
// (mutually resource-disjoint) trees onto the fabric to produce the same
// Result shape — wire format, partial-result semantics, MinWidth
// compatibility — as the sequential router.
package router

import (
	"errors"
	"fmt"

	"fpgarouter/internal/circuits"
	"fpgarouter/internal/fpga"
	"fpgarouter/internal/pathfinder"
	"fpgarouter/internal/steiner"
)

// routeParallel runs the pathfinder on a fresh fabric and assembles the
// router Result. A converged run commits every tree (they are disjoint by
// construction — zero overflow means no resource is shared). A run that
// exhausts the iteration budget returns ErrUnroutable with a partial
// Result committing only the uncontested nets, exactly the contract
// MinWidth's probes rely on; cancellation and injected faults likewise
// surface the partial state alongside their error.
func routeParallel(ctx *Context, fab *fpga.Fabric, ckt *circuits.Circuit, opts Options) (*Result, error) {
	switch opts.Algorithm {
	case AlgIKMB, AlgKMB:
	default:
		return nil, fmt.Errorf("router: parallel mode requires algorithm %q or %q (got %q)", AlgIKMB, AlgKMB, opts.Algorithm)
	}
	if len(opts.CriticalNets) > 0 {
		return nil, fmt.Errorf("router: parallel mode does not support critical-net classification (%d critical nets requested)", len(opts.CriticalNets))
	}
	cfg := pathfinder.Config{
		Algorithm:   opts.Algorithm,
		Workers:     opts.NetWorkers,
		MaxIters:    opts.MaxPasses,
		BBoxMargin:  opts.BBoxMargin,
		MaxPool:     maxPool,
		SingleStep:  opts.SingleStep,
		Lazy:        opts.LazyScan,
		Incremental: opts.IncrementalReroute,
		Stats:       ctx.Stats,
		Cancel:      ctx.checkCanceled,
	}
	if dc := ctx.durable; dc != nil {
		cfg.CheckpointEvery = dc.CheckpointEvery
		cfg.CheckpointPeriod = dc.CheckpointPeriod
		cfg.CheckpointFn = dc.CheckpointFn
		cfg.Resume = dc.Resume
	}
	pres, perr := pathfinder.Route(fab, ckt.Nets, cfg)
	if pres == nil {
		return nil, perr
	}
	res := &Result{Width: fab.W, Passes: pres.Iterations, Nets: make([]NetResult, len(ckt.Nets))}
	failed := make(map[int]bool, len(pres.FailedNets))
	for _, idx := range pres.FailedNets {
		failed[idx] = true
	}
	routed := 0
	for idx := range ckt.Nets {
		tree := pres.Trees[idx]
		if failed[idx] || (len(tree.Edges) == 0 && len(ckt.Nets[idx].Pins) > 1) {
			continue
		}
		fab.CommitNet(tree)
		src := fab.PinNode(ckt.Nets[idx].Pins[0])
		sinks := pinNodes(fab, ckt.Nets[idx].Pins[1:])
		res.Nets[idx] = NetResult{
			Tree:       tree,
			Wirelength: fab.BaseWirelength(tree),
			MaxPath:    fab.MaxPathlength(tree, src, sinks),
		}
		routed++
	}
	if pres.Converged && perr == nil {
		res.Routed = true
		res.MaxUtil = fab.MaxSpanUtilization()
		for _, nr := range res.Nets {
			res.Wirelength += nr.Wirelength
			res.MaxPathSum += nr.MaxPath
		}
		if ctx.Stats.Enabled() {
			ctx.Stats.RecordCongestion(fab.SpanUtilization(), fab.W)
		}
		return res, nil
	}
	// Failure path: the same partial shape the sequential router returns.
	var failedList []int
	for idx := range ckt.Nets {
		if res.Nets[idx].Tree.Edges == nil {
			failedList = append(failedList, idx)
		}
	}
	partial := snapshotPartial(res, routed, failedList)
	if perr != nil {
		// A net whose pins cannot connect at this width even on an empty
		// fabric surfaces as ErrNoRoute; fold it into ErrUnroutable so
		// MinWidth's bracket logic treats both modes alike.
		if errors.Is(perr, steiner.ErrNoRoute) {
			return partial, fmt.Errorf("%w: %v", ErrUnroutable, perr)
		}
		return partial, perr
	}
	return partial, fmt.Errorf("%w (width %d, %d contested nets after %d iterations, %d overflowed resources)",
		ErrUnroutable, fab.W, len(pres.FailedNets), pres.Iterations, pres.Overflow)
}
