// Package router implements the paper's FPGA detailed router (Section 5):
// nets are routed one at a time directly on the fabric's routing graph with
// a chosen tree construction (IKMB for non-critical nets, PFA or IDOM for
// critical ones); after each net the used wires are removed from the graph
// (electrical disjointness) and congestion weights are refreshed; when a
// pass fails to route every net, the failed nets move to the front of the
// ordering and the whole circuit is ripped up and re-routed, up to a
// feasibility threshold of passes (20 in the paper). The smallest channel
// width at which a circuit completes is the router's quality metric
// (Tables 2–4).
package router

import (
	"errors"
	"fmt"
	"sort"

	"fpgarouter/internal/arbor"
	"fpgarouter/internal/circuits"
	"fpgarouter/internal/core"
	"fpgarouter/internal/fpga"
	"fpgarouter/internal/graph"
	"fpgarouter/internal/steiner"
)

// Algorithm names accepted by Options.Algorithm.
const (
	AlgKMB  = "kmb"  // Kou–Markowsky–Berman Steiner trees
	AlgZEL  = "zel"  // Zelikovsky Steiner trees (bbox-restricted triples)
	AlgSPH  = "sph"  // Takahashi–Matsuyama shortest-paths heuristic
	AlgIKMB = "ikmb" // iterated KMB (the paper's router default)
	AlgIZEL = "izel" // iterated ZEL
	AlgISPH = "isph" // iterated SPH
	AlgDJKA = "djka" // pruned Dijkstra shortest-paths trees
	AlgDOM  = "dom"  // dominance spanning arborescences
	AlgPFA  = "pfa"  // path-folding arborescences
	AlgIDOM = "idom" // iterated dominance arborescences
)

// ErrUnroutable reports that the circuit could not be completely routed at
// the requested channel width within the pass limit.
var ErrUnroutable = errors.New("router: circuit unroutable at this channel width")

// Options configures a routing run. The zero value is completed by
// defaults: IKMB, 20 passes, bounding-box margin 2, congestion α = 1.
type Options struct {
	// Algorithm selects the per-net tree construction (Alg* constants).
	Algorithm string
	// MaxPasses is the feasibility threshold: how many rip-up/re-route
	// passes to attempt before declaring the width unroutable (paper: 20).
	MaxPasses int
	// BBoxMargin widens the Steiner-candidate bounding box around each
	// net's pins, in switch-block units.
	BBoxMargin int
	// CongestionAlpha scales fabric congestion weighting.
	CongestionAlpha float64
	// NoMoveToFront disables the move-to-front reordering of failed nets
	// (for the ordering ablation benchmark).
	NoMoveToFront bool
	// Batched selects batched Steiner-point admission inside the iterated
	// constructions (on by default in the router for speed; set
	// SingleStep to force one-candidate-per-round).
	SingleStep bool
	// SegLens overrides the architecture's per-track wire segment lengths
	// (nil keeps the circuit's default, single-length channels). See
	// fpga.Arch.SegLens.
	SegLens []int
	// CriticalNets lists net IDs classified as timing-critical by the
	// upstream design stages (Section 2: "nets may be classified as either
	// critical or non-critical based on timing information"). Critical
	// nets are routed first, each with CriticalAlgorithm, so their
	// source-sink paths are shortest on the freshest possible fabric; the
	// rest use Algorithm.
	CriticalNets []int
	// CriticalAlgorithm routes the critical nets (default AlgIDOM).
	CriticalAlgorithm string
}

func (o Options) withDefaults() Options {
	if o.Algorithm == "" {
		o.Algorithm = AlgIKMB
	}
	if o.MaxPasses == 0 {
		o.MaxPasses = 20
	}
	if o.BBoxMargin == 0 {
		o.BBoxMargin = 2
	}
	if o.CongestionAlpha == 0 {
		o.CongestionAlpha = 1.0
	}
	if o.CriticalAlgorithm == "" {
		o.CriticalAlgorithm = AlgIDOM
	}
	return o
}

// criticalSet returns membership of net IDs in opts.CriticalNets.
func (o Options) criticalSet() map[int]bool {
	if len(o.CriticalNets) == 0 {
		return nil
	}
	m := make(map[int]bool, len(o.CriticalNets))
	for _, id := range o.CriticalNets {
		m[id] = true
	}
	return m
}

// NetResult records the routed tree and metrics for one net.
type NetResult struct {
	Tree       graph.Tree
	Wirelength float64 // base (uncongested) wirelength
	MaxPath    float64 // max source-sink pathlength, base wirelength
}

// Result is the outcome of routing one circuit at one channel width.
type Result struct {
	Routed     bool
	Width      int
	Passes     int     // passes consumed (including the successful one)
	Wirelength float64 // total base wirelength over all nets
	MaxPathSum float64 // sum over nets of max source-sink pathlength
	MaxUtil    int     // maximum wires claimed in any channel span
	Nets       []NetResult
	FailedNets []int // net IDs that failed in the last attempted pass
}

// Route attempts to route every net of the circuit at channel width w.
// On success the result carries per-net trees and metrics; on failure it
// returns ErrUnroutable along with the last pass's failure set.
func Route(ckt *circuits.Circuit, w int, opts Options) (*Result, error) {
	res, _, err := RouteWithFabric(ckt, w, opts)
	return res, err
}

// RouteWithFabric is Route but also returns the fabric in its final state
// (with the successful pass's nets committed), for rendering and
// utilization analysis.
func RouteWithFabric(ckt *circuits.Circuit, w int, opts Options) (*Result, *fpga.Fabric, error) {
	opts = opts.withDefaults()
	arch := ckt.ArchAt(w)
	if opts.SegLens != nil {
		arch.SegLens = opts.SegLens
	}
	fab, err := fpga.NewFabric(arch)
	if err != nil {
		return nil, nil, err
	}
	fab.CongestionAlpha = opts.CongestionAlpha
	res, err := routeOnFabric(fab, ckt, opts)
	return res, fab, err
}

func routeOnFabric(fab *fpga.Fabric, ckt *circuits.Circuit, opts Options) (*Result, error) {
	crit := opts.criticalSet()
	order := initialOrder(ckt)
	if crit != nil {
		// Critical nets route first (they need the freshest fabric), in
		// their existing relative order.
		var front, rest []int
		for _, idx := range order {
			if crit[ckt.Nets[idx].ID] {
				front = append(front, idx)
			} else {
				rest = append(rest, idx)
			}
		}
		order = append(front, rest...)
	}
	netOpts := func(idx int) Options {
		if crit != nil && crit[ckt.Nets[idx].ID] {
			o := opts
			o.Algorithm = opts.CriticalAlgorithm
			return o
		}
		return opts
	}
	res := &Result{Width: fab.W, Nets: make([]NetResult, len(ckt.Nets))}
	for pass := 1; pass <= opts.MaxPasses; pass++ {
		res.Passes = pass
		fab.Reset()
		// Register pin demand for every net so traversal routes avoid
		// walling off pins of nets still waiting to be routed.
		for i := range ckt.Nets {
			for _, p := range ckt.Nets[i].Pins {
				fab.AddPinDemand(p, +1)
			}
		}
		var failed []int
		ok := true
		for _, idx := range order {
			// This net is being routed now: release its reservations so
			// they do not repel its own route.
			for _, p := range ckt.Nets[idx].Pins {
				fab.AddPinDemand(p, -1)
			}
			tree, err := routeNet(fab, ckt.Nets[idx], netOpts(idx))
			if err != nil {
				ok = false
				failed = append(failed, idx)
				continue
			}
			fab.CommitNet(tree)
			src := fab.PinNode(ckt.Nets[idx].Pins[0])
			sinks := pinNodes(fab, ckt.Nets[idx].Pins[1:])
			res.Nets[idx] = NetResult{
				Tree:       tree,
				Wirelength: fab.BaseWirelength(tree),
				MaxPath:    fab.MaxPathlength(tree, src, sinks),
			}
		}
		if ok {
			res.Routed = true
			res.MaxUtil = fab.MaxSpanUtilization()
			for _, nr := range res.Nets {
				res.Wirelength += nr.Wirelength
				res.MaxPathSum += nr.MaxPath
			}
			return res, nil
		}
		res.FailedNets = failed
		if !opts.NoMoveToFront {
			order = moveToFront(order, failed)
		}
	}
	return res, fmt.Errorf("%w (width %d, %d failed nets after %d passes)",
		ErrUnroutable, fab.W, len(res.FailedNets), opts.MaxPasses)
}

// maxPool caps the Steiner-candidate pool per net; larger pools are
// deterministically stride-subsampled (quality changes marginally, runtime
// linearly).
const maxPool = 1024

// routeNet routes a single net on the current fabric state. BeginNet
// restricts connection-block taps to the net's own pins, so routes cannot
// pass through unrelated logic-block pins. Shortest-path caches terminate
// early once the net's pins and candidate pool are settled (distances stay
// exact; see graph.DijkstraWithin).
func routeNet(fab *fpga.Fabric, net circuits.Net, opts Options) (graph.Tree, error) {
	fab.BeginNet(net.Pins)
	terms := pinNodes(fab, net.Pins)
	switch opts.Algorithm {
	case AlgKMB:
		return steiner.KMB(termCache(fab, terms), terms)
	case AlgDJKA:
		return arbor.DJKA(termCache(fab, terms), terms)
	case AlgDOM:
		return arbor.DOM(termCache(fab, terms), terms)
	case AlgSPH:
		pool := candidatePool(fab, net, opts.BBoxMargin)
		return steiner.SPH(poolCache(fab, terms, pool), terms)
	case AlgZEL:
		pool := candidatePool(fab, net, opts.BBoxMargin)
		return steiner.ZELRestricted(poolCache(fab, terms, pool), terms, pool)
	case AlgPFA:
		pool := candidatePool(fab, net, opts.BBoxMargin)
		return arbor.PFA(poolCache(fab, terms, pool), terms)
	case AlgIKMB:
		pool := candidatePool(fab, net, opts.BBoxMargin)
		return core.IGMST(poolCache(fab, terms, pool), terms, steiner.KMB, core.Options{
			Candidates: pool,
			Batched:    !opts.SingleStep,
		})
	case AlgISPH:
		pool := candidatePool(fab, net, opts.BBoxMargin)
		return core.IGMST(poolCache(fab, terms, pool), terms, steiner.SPH, core.Options{
			Candidates: pool,
			Batched:    !opts.SingleStep,
		})
	case AlgIZEL:
		pool := candidatePool(fab, net, opts.BBoxMargin)
		zel := func(c *graph.SPTCache, n []graph.NodeID) (graph.Tree, error) {
			return steiner.ZELRestricted(c, n, pool)
		}
		return core.IGMST(poolCache(fab, terms, pool), terms, zel, core.Options{
			Candidates: pool,
			Batched:    !opts.SingleStep,
		})
	case AlgIDOM:
		pool := candidatePool(fab, net, opts.BBoxMargin)
		return core.IDOMOpts(poolCache(fab, terms, pool), terms, core.Options{
			Candidates: pool,
			Batched:    !opts.SingleStep,
		})
	default:
		return graph.Tree{}, fmt.Errorf("router: unknown algorithm %q", opts.Algorithm)
	}
}

// termCache returns a per-net cache that settles only the net's terminals.
func termCache(fab *fpga.Fabric, terms []graph.NodeID) *graph.SPTCache {
	return graph.NewSPTCacheWithin(fab.Graph(), terms)
}

// poolCache returns a per-net cache that settles the terminals plus the
// Steiner-candidate pool.
func poolCache(fab *fpga.Fabric, terms []graph.NodeID, pool []graph.NodeID) *graph.SPTCache {
	stop := make([]graph.NodeID, 0, len(terms)+len(pool))
	stop = append(stop, terms...)
	stop = append(stop, pool...)
	return graph.NewSPTCacheWithin(fab.Graph(), stop)
}

// candidatePool returns the Steiner-candidate switch-block nodes inside the
// net's pin bounding box plus a margin, subsampled to at most maxPool.
func candidatePool(fab *fpga.Fabric, net circuits.Net, margin int) []graph.NodeID {
	minX, minY := fab.Cols, fab.Rows
	maxX, maxY := 0, 0
	for _, p := range net.Pins {
		if p.X < minX {
			minX = p.X
		}
		if p.X+1 > maxX {
			maxX = p.X + 1
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y+1 > maxY {
			maxY = p.Y + 1
		}
	}
	pool := fab.SBCandidates(minX-margin, maxX+margin, minY-margin, maxY+margin)
	if len(pool) > maxPool {
		stride := (len(pool) + maxPool - 1) / maxPool
		sub := make([]graph.NodeID, 0, maxPool)
		for i := 0; i < len(pool); i += stride {
			sub = append(sub, pool[i])
		}
		pool = sub
	}
	return pool
}

func pinNodes(fab *fpga.Fabric, pins []fpga.Pin) []graph.NodeID {
	out := make([]graph.NodeID, len(pins))
	for i, p := range pins {
		out[i] = fab.PinNode(p)
	}
	return out
}

// initialOrder routes high-fanout nets first (they need the most shared
// resources), breaking ties by larger bounding box then net index, all
// deterministically.
func initialOrder(ckt *circuits.Circuit) []int {
	order := make([]int, len(ckt.Nets))
	for i := range order {
		order[i] = i
	}
	bbox := make([]int, len(ckt.Nets))
	for i, n := range ckt.Nets {
		minX, minY := 1<<30, 1<<30
		maxX, maxY := 0, 0
		for _, p := range n.Pins {
			if p.X < minX {
				minX = p.X
			}
			if p.X > maxX {
				maxX = p.X
			}
			if p.Y < minY {
				minY = p.Y
			}
			if p.Y > maxY {
				maxY = p.Y
			}
		}
		bbox[i] = (maxX - minX + 1) * (maxY - minY + 1)
	}
	sort.SliceStable(order, func(a, b int) bool {
		na, nb := ckt.Nets[order[a]], ckt.Nets[order[b]]
		if len(na.Pins) != len(nb.Pins) {
			return len(na.Pins) > len(nb.Pins)
		}
		if bbox[order[a]] != bbox[order[b]] {
			return bbox[order[a]] > bbox[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

// moveToFront hoists the failed net indices to the front of the order,
// preserving relative order within both groups (the paper's move-to-front
// reordering heuristic).
func moveToFront(order []int, failed []int) []int {
	inFailed := make(map[int]bool, len(failed))
	for _, f := range failed {
		inFailed[f] = true
	}
	out := make([]int, 0, len(order))
	out = append(out, failed...)
	for _, idx := range order {
		if !inFailed[idx] {
			out = append(out, idx)
		}
	}
	return out
}

// MinWidth finds the smallest channel width at which the circuit routes
// completely: it grows the width from start until the first success, then
// walks downward while success persists. It returns the minimum width and
// the routing result at that width.
func MinWidth(ckt *circuits.Circuit, start int, opts Options) (int, *Result, error) {
	if start < 1 {
		start = 4
	}
	w := start
	var lastGood *Result
	// Grow until routable.
	for {
		res, err := Route(ckt, w, opts)
		if err == nil {
			lastGood = res
			break
		}
		if !errors.Is(err, ErrUnroutable) {
			return 0, nil, err
		}
		w++
		if w > 4*start+64 {
			return 0, nil, fmt.Errorf("router: %s unroutable up to width %d", ckt.Name, w)
		}
	}
	// Shrink while routable.
	for w > 1 {
		res, err := Route(ckt, w-1, opts)
		if err != nil {
			if errors.Is(err, ErrUnroutable) {
				break
			}
			return 0, nil, err
		}
		w--
		lastGood = res
	}
	return w, lastGood, nil
}
