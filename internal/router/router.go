// Package router implements the paper's FPGA detailed router (Section 5):
// nets are routed one at a time directly on the fabric's routing graph with
// a chosen tree construction (IKMB for non-critical nets, PFA or IDOM for
// critical ones); after each net the used wires are removed from the graph
// (electrical disjointness) and congestion weights are refreshed; when a
// pass fails to route every net, the failed nets move to the front of the
// ordering and the whole circuit is ripped up and re-routed, up to a
// feasibility threshold of passes (20 in the paper). The smallest channel
// width at which a circuit completes is the router's quality metric
// (Tables 2–4).
package router

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"fpgarouter/internal/arbor"
	"fpgarouter/internal/circuits"
	"fpgarouter/internal/core"
	"fpgarouter/internal/faultpoint"
	"fpgarouter/internal/fpga"
	"fpgarouter/internal/graph"
	"fpgarouter/internal/steiner"
)

// Algorithm names accepted by Options.Algorithm.
const (
	AlgKMB  = "kmb"  // Kou–Markowsky–Berman Steiner trees
	AlgZEL  = "zel"  // Zelikovsky Steiner trees (bbox-restricted triples)
	AlgSPH  = "sph"  // Takahashi–Matsuyama shortest-paths heuristic
	AlgIKMB = "ikmb" // iterated KMB (the paper's router default)
	AlgIZEL = "izel" // iterated ZEL
	AlgISPH = "isph" // iterated SPH
	AlgDJKA = "djka" // pruned Dijkstra shortest-paths trees
	AlgDOM  = "dom"  // dominance spanning arborescences
	AlgPFA  = "pfa"  // path-folding arborescences
	AlgIDOM = "idom" // iterated dominance arborescences
)

// ErrUnroutable reports that the circuit could not be completely routed at
// the requested channel width within the pass limit.
var ErrUnroutable = errors.New("router: circuit unroutable at this channel width")

// Zero is the sentinel for explicitly requesting a zero value in Options
// fields where the plain 0 literal selects the default: pass
// CongestionAlpha: router.Zero to disable congestion weighting, or
// BBoxMargin: router.Zero for a margin-less candidate bounding box. Any
// negative value works the same way.
const Zero = -1

// Options configures a routing run. The zero value is completed by
// defaults: IKMB, 20 passes, bounding-box margin 2, congestion α = 1.
// The JSON tags define the service wire format (cmd/routed job submissions).
type Options struct {
	// Algorithm selects the per-net tree construction (Alg* constants).
	Algorithm string `json:"algorithm,omitempty"`
	// MaxPasses is the feasibility threshold: how many rip-up/re-route
	// passes to attempt before declaring the width unroutable (paper: 20).
	MaxPasses int `json:"max_passes,omitempty"`
	// BBoxMargin widens the Steiner-candidate bounding box around each
	// net's pins, in switch-block units. 0 selects the default (2); use
	// Zero (or any negative value) for an explicit zero margin.
	BBoxMargin int `json:"bbox_margin,omitempty"`
	// CongestionAlpha scales fabric congestion weighting. 0 selects the
	// default (1.0); use Zero (or any negative value) to explicitly
	// disable congestion weighting.
	CongestionAlpha float64 `json:"congestion_alpha,omitempty"`
	// WidthProbes bounds how many channel widths MinWidth probes
	// concurrently. 0 selects the default (the number of CPUs, capped at
	// 8); 1 (or any negative value) forces one probe at a time. The
	// search's outputs are identical at every setting.
	WidthProbes int `json:"width_probes,omitempty"`
	// CandidateWorkers bounds the fan-out of the iterated constructions'
	// candidate-evaluation scans (core.Options.Workers): each net's
	// Steiner-candidate pool is sharded over this many goroutines, every
	// worker evaluating against its own fork of the net's frozen
	// shortest-paths snapshot. 0 selects the default (GOMAXPROCS capped at
	// 8); 1 (or any negative value) forces the sequential reference scan.
	// Routing results are bit-identical at every setting (see the parity
	// tests). Combined with WidthProbes the total goroutine fan-out is the
	// product of the two; GOMAXPROCS bounds actual parallelism.
	CandidateWorkers int `json:"candidate_workers,omitempty"`
	// LazyScan enables the lazy-greedy candidate scan inside the iterated
	// constructions (core.Options.Lazy): per-candidate gains from earlier
	// rounds are kept as a stale-priority queue and a round re-evaluates
	// only the entries whose stale gain could still win, falling back to a
	// full exhaustive rescan whenever a fresh gain exceeds its stale bound.
	// Routing results are bit-identical at every CandidateWorkers setting,
	// and identical to the exhaustive scan whenever per-candidate gains
	// only shrink as Steiner points are admitted (asserted by the parity
	// tests); on congestion-weighted fabrics an occasional gain jump in a
	// skipped candidate can make the lazy route admit different — still
	// strictly improving — Steiner points, so minimum widths and the
	// paper's bounds hold but wirelengths can deviate by a fraction of a
	// percent (see EXPERIMENTS.md for measurements and DESIGN.md §5 for
	// why the fallback cannot close this gap). The evaluation saving is
	// reported by the stats layer as lazy hits / full rescans /
	// evaluations saved. The queue arms only
	// under SingleStep admission — batched rounds consume the whole
	// improving-candidate ranking, which stale bounds cannot soundly
	// prune, so there the flag is inert.
	LazyScan bool `json:"lazy_scan,omitempty"`
	// GoalDirected turns on goal-directed shortest-path search inside the
	// per-net caches: every cache carries the fabric's coordinate lower
	// bound (fpga.Fabric.Bounds), so the DijkstraWithin runs behind the
	// Steiner constructions become A* toward the net's terminal-and-pool
	// stop set, settling strictly fewer nodes on the way; 2-pin nets
	// short-circuit to bidirectional Dijkstra. Distances and tree costs are
	// exact — the bound is admissible and consistent on the fabric under
	// every congestion state — but among equal-cost shortest paths the
	// goal-directed searches may pick a different one than plain Dijkstra
	// (and bidirectional sums fold in a different order), so routes are not
	// guaranteed bit-identical to the default. Off by default for exact
	// reproducibility of the paper tables; the parity suites assert the
	// equal-cost contract on every paper circuit.
	GoalDirected bool `json:"goal_directed,omitempty"`
	// Parallel selects the net-parallel negotiated-congestion router
	// (internal/pathfinder) instead of the paper's sequential rip-up/
	// re-route loop: every net routes concurrently against frozen
	// congestion prices that a per-iteration reduce updates via
	// sub-gradient steps, until zero overflow or MaxPasses iterations.
	// Results are deterministic for a fixed run and invariant across
	// NetWorkers settings; goal-directed search is always on in this mode
	// (the bit-for-bit Dijkstra tie binds only the sequential oracle).
	// Requires Algorithm ikmb or kmb and no CriticalNets.
	Parallel bool `json:"parallel,omitempty"`
	// NetWorkers bounds the pathfinder's net-routing goroutines (only
	// meaningful with Parallel). 0 selects the default (GOMAXPROCS capped
	// at 8); 1 (or any negative value) routes nets one at a time. Routing
	// results are bit-identical at every setting.
	NetWorkers int `json:"net_workers,omitempty"`
	// IncrementalReroute enables partial rip-up inside the parallel router
	// (only meaningful with Parallel): a contested net keeps the fragment of
	// its previous tree that touches no overflowed resource and reconnects
	// its orphaned pins by multi-source search seeded from the fragment,
	// while the per-iteration reduce and reprice run as deltas over only the
	// changed state. Results stay deterministic and NetWorkers-invariant;
	// routes may differ from full-reroute mode (both converge, the quality
	// envelope is asserted by the experiment sweeps).
	IncrementalReroute bool `json:"incremental_reroute,omitempty"`
	// NoMoveToFront disables the move-to-front reordering of failed nets
	// (for the ordering ablation benchmark).
	NoMoveToFront bool `json:"no_move_to_front,omitempty"`
	// Batched selects batched Steiner-point admission inside the iterated
	// constructions (on by default in the router for speed; set
	// SingleStep to force one-candidate-per-round).
	SingleStep bool `json:"single_step,omitempty"`
	// SegLens overrides the architecture's per-track wire segment lengths
	// (nil keeps the circuit's default, single-length channels). See
	// fpga.Arch.SegLens.
	SegLens []int `json:"seg_lens,omitempty"`
	// CriticalNets lists net IDs classified as timing-critical by the
	// upstream design stages (Section 2: "nets may be classified as either
	// critical or non-critical based on timing information"). Critical
	// nets are routed first, each with CriticalAlgorithm, so their
	// source-sink paths are shortest on the freshest possible fabric; the
	// rest use Algorithm.
	CriticalNets []int `json:"critical_nets,omitempty"`
	// CriticalAlgorithm routes the critical nets (default AlgIDOM).
	CriticalAlgorithm string `json:"critical_algorithm,omitempty"`
}

func (o Options) withDefaults() Options {
	if o.Algorithm == "" {
		o.Algorithm = AlgIKMB
	}
	if o.MaxPasses == 0 {
		// The parallel mode's iterations are much cheaper than full rip-up
		// passes (only contested nets reroute), so its budget is larger.
		if o.Parallel {
			o.MaxPasses = 96
		} else {
			o.MaxPasses = 20
		}
	}
	// Sentinel-aware defaults: the zero value still selects the documented
	// default, while negative values (router.Zero) mean an explicit zero —
	// without this, a caller could never disable congestion weighting or
	// the bbox margin.
	switch {
	case o.BBoxMargin == 0:
		o.BBoxMargin = 2
	case o.BBoxMargin < 0:
		o.BBoxMargin = 0
	}
	switch {
	case o.CongestionAlpha == 0:
		o.CongestionAlpha = 1.0
	case o.CongestionAlpha < 0:
		o.CongestionAlpha = 0
	}
	if o.CriticalAlgorithm == "" {
		o.CriticalAlgorithm = AlgIDOM
	}
	return o
}

// criticalSet returns a sorted copy of CriticalNets for binary-search
// membership tests via isCritical (no per-call map).
func (o Options) criticalSet() []int {
	if len(o.CriticalNets) == 0 {
		return nil
	}
	s := append([]int(nil), o.CriticalNets...)
	sort.Ints(s)
	return s
}

// isCritical reports membership of net ID id in the sorted set crit.
func isCritical(crit []int, id int) bool {
	i := sort.SearchInts(crit, id)
	return i < len(crit) && crit[i] == id
}

// NetResult records the routed tree and metrics for one net. The JSON tags
// define the service wire format (cmd/routed result retrieval).
type NetResult struct {
	Tree       graph.Tree `json:"tree"`
	Wirelength float64    `json:"wirelength"` // base (uncongested) wirelength
	MaxPath    float64    `json:"max_path"`   // max source-sink pathlength, base wirelength
}

// Result is the outcome of routing one circuit at one channel width. The
// JSON tags define the service wire format; a Result round-trips through
// encoding/json bit-identically (see the wire-format tests).
//
// A Result is either complete (Routed true, every net carries a tree) or
// partial (Partial true): the best rip-up/re-route attempt available when
// the run was interrupted by cancellation, a deadline, an injected fault,
// or the pass limit. Partial results are well-formed — Nets holds real
// trees for exactly the nets counted by RoutedNets, FailedNets lists the
// rest — but MaxUtil is not computed (the fabric had moved past the
// snapshotted pass). Success-path results are byte-identical to what this
// package returned before partial results existed: Partial and RoutedNets
// are only ever set on failure paths.
type Result struct {
	Routed     bool        `json:"routed"`
	Width      int         `json:"width"`
	Passes     int         `json:"passes"`       // passes consumed (including the successful one)
	Wirelength float64     `json:"wirelength"`   // total base wirelength over all nets
	MaxPathSum float64     `json:"max_path_sum"` // sum over nets of max source-sink pathlength
	MaxUtil    int         `json:"max_util"`     // maximum wires claimed in any channel span
	Nets       []NetResult `json:"nets"`
	FailedNets []int       `json:"failed_nets,omitempty"` // net IDs without a tree in this result
	// Partial marks a best-effort result returned alongside a non-nil error
	// (graceful degradation): the run did not complete, but the nets below
	// did route.
	Partial bool `json:"partial,omitempty"`
	// RoutedNets counts the nets carrying a tree in a partial result (the
	// success path leaves it 0 — every net routed, see Routed).
	RoutedNets int `json:"routed_nets,omitempty"`
}

// Route attempts to route every net of the circuit at channel width w.
// On success the result carries per-net trees and metrics; on failure it
// returns ErrUnroutable along with a partial Result — the best pass's
// routed trees and failure set (see Result.Partial).
func Route(ckt *circuits.Circuit, w int, opts Options) (*Result, error) {
	return RouteCtx(nil, ckt, w, opts)
}

// RouteCtx is Route with an explicit routing context (nil for an ephemeral
// one): the context's pooled scratch is reused by every SSSP call of the
// run and its collector, if any, receives the work counters.
func RouteCtx(ctx *Context, ckt *circuits.Circuit, w int, opts Options) (*Result, error) {
	res, _, err := RouteWithFabricCtx(ctx, ckt, w, opts)
	return res, err
}

// RouteContext is RouteCtx with cooperative cancellation: the run checks cc
// at pass and per-net boundaries and aborts with an error matching both
// ErrCanceled and cc's cause (context.Canceled or context.DeadlineExceeded)
// under errors.Is. An aborted run degrades gracefully: alongside the error
// it returns the best partial Result so far (nil only if nothing routed
// yet; see Result.Partial). ctx may be nil for an ephemeral routing
// context; it is bound to cc only for the duration of the call, so a
// worker can reuse one long-lived routing context across jobs with per-job
// cancellation.
func RouteContext(cc context.Context, ctx *Context, ckt *circuits.Circuit, w int, opts Options) (*Result, error) {
	res, _, err := RouteWithFabricContext(cc, ctx, ckt, w, opts)
	return res, err
}

// RouteWithFabric is Route but also returns the fabric in its final state
// (with the successful pass's nets committed), for rendering and
// utilization analysis.
func RouteWithFabric(ckt *circuits.Circuit, w int, opts Options) (*Result, *fpga.Fabric, error) {
	return RouteWithFabricCtx(nil, ckt, w, opts)
}

// RouteWithFabricContext is RouteWithFabricCtx with cooperative
// cancellation (see RouteContext).
func RouteWithFabricContext(cc context.Context, ctx *Context, ckt *circuits.Circuit, w int, opts Options) (*Result, *fpga.Fabric, error) {
	ctx, done := ensureContext(ctx)
	defer done()
	restore := ctx.bind(cc)
	defer restore()
	return RouteWithFabricCtx(ctx, ckt, w, opts)
}

// RouteWithFabricCtx is RouteWithFabric with an explicit routing context.
func RouteWithFabricCtx(ctx *Context, ckt *circuits.Circuit, w int, opts Options) (*Result, *fpga.Fabric, error) {
	ctx, done := ensureContext(ctx)
	defer done()
	opts = opts.withDefaults()
	arch := ckt.ArchAt(w)
	if opts.SegLens != nil {
		arch.SegLens = opts.SegLens
	}
	fab, err := fpga.NewFabric(arch)
	if err != nil {
		return nil, nil, err
	}
	fab.CongestionAlpha = opts.CongestionAlpha
	var res *Result
	if opts.Parallel {
		res, err = routeParallel(ctx, fab, ckt, opts)
	} else {
		res, err = routeOnFabric(ctx, fab, ckt, opts)
	}
	return res, fab, err
}

// snapshotPartial copies the current attempt into a self-contained partial
// Result: per-net trees for what did route, the failure list, and metrics
// aggregated over the routed nets only. The Nets slice is copied shallowly —
// trees are immutable once built, only the slice itself is overwritten by
// later passes.
func snapshotPartial(res *Result, routed int, failed []int) *Result {
	p := &Result{
		Width:      res.Width,
		Passes:     res.Passes,
		Partial:    true,
		RoutedNets: routed,
		Nets:       append([]NetResult(nil), res.Nets...),
		FailedNets: append([]int(nil), failed...),
	}
	// A mid-pass snapshot can list nets as failed whose res.Nets entry
	// still holds a tree committed by an earlier pass (the current pass
	// never reached them): zero those entries so the snapshot is
	// self-consistent before aggregating metrics over what remains.
	for _, idx := range p.FailedNets {
		if idx >= 0 && idx < len(p.Nets) {
			p.Nets[idx] = NetResult{}
		}
	}
	for _, nr := range p.Nets {
		p.Wirelength += nr.Wirelength
		p.MaxPathSum += nr.MaxPath
	}
	return p
}

func routeOnFabric(ctx *Context, fab *fpga.Fabric, ckt *circuits.Circuit, opts Options) (*Result, error) {
	crit := opts.criticalSet()
	order := initialOrder(ckt)
	if crit != nil {
		// Critical nets route first (they need the freshest fabric), in
		// their existing relative order.
		var front, rest []int
		for _, idx := range order {
			if isCritical(crit, ckt.Nets[idx].ID) {
				front = append(front, idx)
			} else {
				rest = append(rest, idx)
			}
		}
		order = append(front, rest...)
	}
	netOpts := func(idx int) Options {
		if crit != nil && isCritical(crit, ckt.Nets[idx].ID) {
			o := opts
			o.Algorithm = opts.CriticalAlgorithm
			return o
		}
		return opts
	}
	res := &Result{Width: fab.W, Nets: make([]NetResult, len(ckt.Nets))}
	st := ctx.Stats
	// best is the snapshot of the best attempt so far (most routed nets,
	// latest pass winning ties) — what the caller gets, marked Partial,
	// when the run ends without a fully routed pass. nil until at least one
	// net has routed.
	var best *Result
	bestRouted := -1
	// interrupted builds the partial result for an abandoned run: the
	// better of the best completed pass and the current mid-pass state
	// (routed nets so far; everything unattempted counts as failed).
	interrupted := func(routed int, failed, unattempted []int) *Result {
		if routed >= bestRouted && routed > 0 {
			all := append(append([]int(nil), failed...), unattempted...)
			return snapshotPartial(res, routed, all)
		}
		return best
	}
	for pass := 1; pass <= opts.MaxPasses; pass++ {
		if err := ctx.checkCanceled(); err != nil {
			return best, err
		}
		if err := faultpoint.Hit(faultpoint.PassBoundary); err != nil {
			return best, err
		}
		res.Passes = pass
		st.AddPass()
		fab.Reset()
		// Register pin demand for every net so traversal routes avoid
		// walling off pins of nets still waiting to be routed.
		for i := range ckt.Nets {
			for _, p := range ckt.Nets[i].Pins {
				fab.AddPinDemand(p, +1)
			}
		}
		var failed []int
		routed := 0
		ok := true
		for k, idx := range order {
			if err := ctx.checkCanceled(); err != nil {
				return interrupted(routed, failed, order[k:]), err
			}
			// This net is being routed now: release its reservations so
			// they do not repel its own route.
			for _, p := range ckt.Nets[idx].Pins {
				fab.AddPinDemand(p, -1)
			}
			var netStart time.Time
			var runs0, pushes0 int64
			if st.Enabled() {
				netStart = time.Now()
				runs0, pushes0 = ctx.scratch.Runs, ctx.scratch.HeapPushes
			}
			tree, err := routeNet(ctx, fab, ckt.Nets[idx], netOpts(idx))
			if st.Enabled() {
				st.AddSSSP(ctx.scratch.Runs-runs0, ctx.scratch.HeapPushes-pushes0)
				st.ObserveNet(time.Since(netStart), err == nil)
			}
			if err != nil {
				ok = false
				failed = append(failed, idx)
				res.Nets[idx] = NetResult{} // drop any tree from an earlier pass
				continue
			}
			fab.CommitNet(tree)
			src := fab.PinNode(ckt.Nets[idx].Pins[0])
			sinks := pinNodes(fab, ckt.Nets[idx].Pins[1:])
			res.Nets[idx] = NetResult{
				Tree:       tree,
				Wirelength: fab.BaseWirelength(tree),
				MaxPath:    fab.MaxPathlength(tree, src, sinks),
			}
			routed++
		}
		if ok {
			res.Routed = true
			res.MaxUtil = fab.MaxSpanUtilization()
			for _, nr := range res.Nets {
				res.Wirelength += nr.Wirelength
				res.MaxPathSum += nr.MaxPath
			}
			if st.Enabled() {
				st.RecordCongestion(fab.SpanUtilization(), fab.W)
			}
			return res, nil
		}
		res.FailedNets = failed
		st.AddRipUps(int64(len(failed)))
		if routed >= bestRouted {
			bestRouted = routed
			best = snapshotPartial(res, routed, failed)
		}
		if !opts.NoMoveToFront {
			order = moveToFront(order, failed)
		}
	}
	failedCount := 0
	if best != nil {
		failedCount = len(best.FailedNets)
	}
	return best, fmt.Errorf("%w (width %d, %d failed nets after %d passes)",
		ErrUnroutable, fab.W, failedCount, opts.MaxPasses)
}

// maxPool caps the Steiner-candidate pool per net; larger pools are
// deterministically stride-subsampled (quality changes marginally, runtime
// linearly).
const maxPool = 1024

// routeNet routes a single net on the current fabric state. BeginNet
// restricts connection-block taps to the net's own pins, so routes cannot
// pass through unrelated logic-block pins. Shortest-path caches terminate
// early once the net's pins and candidate pool are settled (distances stay
// exact; see graph.DijkstraWithin). The per-net cache is backed by the
// context's pooled scratch and released on return, so its SPT buffers are
// recycled for the next net instead of feeding the garbage collector.
func routeNet(ctx *Context, fab *fpga.Fabric, net circuits.Net, opts Options) (graph.Tree, error) {
	// Terminal-only algorithms settle just the net's pins; the rest also
	// settle the Steiner-candidate pool so candidate evaluations stay exact.
	var needsPool bool
	switch opts.Algorithm {
	case AlgKMB, AlgDJKA, AlgDOM:
		needsPool = false
	case AlgSPH, AlgZEL, AlgPFA, AlgIKMB, AlgISPH, AlgIZEL, AlgIDOM:
		needsPool = true
	default:
		return graph.Tree{}, fmt.Errorf("router: unknown algorithm %q", opts.Algorithm)
	}
	fab.BeginNet(net.Pins)
	terms := pinNodes(fab, net.Pins)
	if opts.GoalDirected && len(terms) == 2 && terms[0] != terms[1] {
		// 2-pin net: a single point-to-point connection, which bidirectional
		// Dijkstra finds settling roughly half the nodes of a one-sided
		// search — no Steiner construction or candidate pool needed.
		_, path, ok := fab.Graph().BiDijkstra(ctx.scratch, terms[0], terms[1])
		if !ok {
			return graph.Tree{}, steiner.ErrNoRoute
		}
		return graph.NewTree(fab.Graph(), path), nil
	}
	var cache *graph.SPTCache
	var pool []graph.NodeID
	if needsPool {
		pool = candidatePool(fab, net, opts.BBoxMargin)
		cache = poolCache(fab, terms, pool)
	} else {
		cache = termCache(fab, terms)
	}
	if opts.GoalDirected {
		cache = cache.WithBounds(fab.Bounds())
	}
	cache = ctx.attach(cache)
	defer cache.Release()
	iterOpts := core.Options{Candidates: pool, Batched: !opts.SingleStep, Workers: opts.CandidateWorkers, Lazy: opts.LazyScan}
	// record forwards an iterated construction's work counters — candidate
	// evaluations, admitted points, lazy-queue savings, and the parallel
	// scans' wall/CPU split — to the context's collector.
	record := func(st core.Stats) {
		ctx.Stats.AddCandidateWork(st.Evaluations, st.PointsChosen)
		ctx.Stats.AddLazyScan(st.LazyHits, st.FullRescans, st.EvaluationsSaved)
		ctx.Stats.AddScans(int64(st.ParallelScans), st.ScanWall, st.ScanCPU)
		// Worker forks run Dijkstra on their own scratch, invisible to the
		// context scratch's counter deltas recorded by routeOnFabric.
		ctx.Stats.AddSSSP(st.WorkerSSSPRuns, st.WorkerHeapPushes)
	}
	switch opts.Algorithm {
	case AlgKMB:
		return steiner.KMB(cache, terms)
	case AlgDJKA:
		return arbor.DJKA(cache, terms)
	case AlgDOM:
		return arbor.DOM(cache, terms)
	case AlgSPH:
		return steiner.SPH(cache, terms)
	case AlgZEL:
		return steiner.ZELRestricted(cache, terms, pool)
	case AlgPFA:
		return arbor.PFA(cache, terms)
	case AlgIKMB:
		tree, st, err := core.IGMSTStats(cache, terms, steiner.KMB, iterOpts)
		record(st)
		return tree, err
	case AlgISPH:
		tree, st, err := core.IGMSTStats(cache, terms, steiner.SPH, iterOpts)
		record(st)
		return tree, err
	case AlgIZEL:
		zel := func(c *graph.SPTCache, n []graph.NodeID) (graph.Tree, error) {
			return steiner.ZELRestricted(c, n, pool)
		}
		tree, st, err := core.IGMSTStats(cache, terms, zel, iterOpts)
		record(st)
		return tree, err
	default: // AlgIDOM
		tree, st, err := core.IDOMStats(cache, terms, iterOpts)
		record(st)
		return tree, err
	}
}

// termCache returns a per-net cache that settles only the net's terminals.
func termCache(fab *fpga.Fabric, terms []graph.NodeID) *graph.SPTCache {
	return graph.NewSPTCacheWithin(fab.Graph(), terms)
}

// poolCache returns a per-net cache that settles the terminals plus the
// Steiner-candidate pool.
func poolCache(fab *fpga.Fabric, terms []graph.NodeID, pool []graph.NodeID) *graph.SPTCache {
	stop := make([]graph.NodeID, 0, len(terms)+len(pool))
	stop = append(stop, terms...)
	stop = append(stop, pool...)
	return graph.NewSPTCacheWithin(fab.Graph(), stop)
}

// candidatePool returns the Steiner-candidate switch-block nodes inside the
// net's pin bounding box plus a margin, subsampled to at most maxPool.
func candidatePool(fab *fpga.Fabric, net circuits.Net, margin int) []graph.NodeID {
	return fab.SteinerPool(net.Pins, margin, maxPool)
}

func pinNodes(fab *fpga.Fabric, pins []fpga.Pin) []graph.NodeID {
	out := make([]graph.NodeID, len(pins))
	for i, p := range pins {
		out[i] = fab.PinNode(p)
	}
	return out
}

// initialOrder routes high-fanout nets first (they need the most shared
// resources), breaking ties by larger bounding box then net index, all
// deterministically.
func initialOrder(ckt *circuits.Circuit) []int {
	order := make([]int, len(ckt.Nets))
	for i := range order {
		order[i] = i
	}
	bbox := make([]int, len(ckt.Nets))
	for i, n := range ckt.Nets {
		minX, minY := 1<<30, 1<<30
		maxX, maxY := 0, 0
		for _, p := range n.Pins {
			if p.X < minX {
				minX = p.X
			}
			if p.X > maxX {
				maxX = p.X
			}
			if p.Y < minY {
				minY = p.Y
			}
			if p.Y > maxY {
				maxY = p.Y
			}
		}
		bbox[i] = (maxX - minX + 1) * (maxY - minY + 1)
	}
	sort.SliceStable(order, func(a, b int) bool {
		na, nb := ckt.Nets[order[a]], ckt.Nets[order[b]]
		if len(na.Pins) != len(nb.Pins) {
			return len(na.Pins) > len(nb.Pins)
		}
		if bbox[order[a]] != bbox[order[b]] {
			return bbox[order[a]] > bbox[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

// moveToFront hoists the failed net indices to the front of the order,
// preserving relative order within both groups (the paper's move-to-front
// reordering heuristic). Membership is an index slice over the net-index
// range — not a per-pass map.
func moveToFront(order []int, failed []int) []int {
	n := 0
	for _, idx := range order {
		if idx >= n {
			n = idx + 1
		}
	}
	inFailed := make([]bool, n)
	for _, f := range failed {
		if f >= 0 && f < n {
			inFailed[f] = true
		}
	}
	out := make([]int, 0, len(order))
	out = append(out, failed...)
	for _, idx := range order {
		if !inFailed[idx] {
			out = append(out, idx)
		}
	}
	return out
}
