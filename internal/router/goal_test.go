package router

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"fpgarouter/internal/circuits"
	"fpgarouter/internal/fpga"
	"fpgarouter/internal/graph"
)

// paperSpecs returns all fourteen benchmark circuits of Tables 2 and 3.
func paperSpecs() []circuits.Spec {
	return append(append([]circuits.Spec(nil), circuits.Table2Circuits...), circuits.Table3Circuits...)
}

// TestGoalDirectedDistanceParityPaperCircuits is the cross-circuit exactness
// suite for the goal-directed searches: on every paper circuit's fabric,
// for a sample of real nets, the A*-guided stop-set search and bidirectional
// Dijkstra must agree with the pre-refactor reference loop (LegacyDijkstra)
// on every terminal distance. This pins the admissibility of the fabric
// bound on real geometry — congestion-free here; the congested case is
// covered by the fpga bounds tests and TestGoalDirectedRouteBusc.
func TestGoalDirectedDistanceParityPaperCircuits(t *testing.T) {
	for _, spec := range paperSpecs() {
		t.Run(spec.Name, func(t *testing.T) {
			ckt := synth(t, spec, 1)
			fab, err := fpga.NewFabric(ckt.ArchAt(10))
			if err != nil {
				t.Fatal(err)
			}
			b := fab.Bounds()
			g := fab.Graph()
			nets := ckt.Nets
			if len(nets) > 12 {
				nets = nets[:12]
			}
			for i, net := range nets {
				fab.BeginNet(net.Pins)
				terms := make([]graph.NodeID, len(net.Pins))
				for j, p := range net.Pins {
					terms[j] = fab.PinNode(p)
				}
				src := terms[0]
				ref := g.LegacyDijkstra(nil, src, terms)
				bounded := g.DijkstraWithinBounded(nil, src, terms, b)
				for _, v := range terms {
					if ref.Dist[v] != bounded.Dist[v] {
						t.Fatalf("net %d terminal %d: bounded %v vs legacy %v", i, v, bounded.Dist[v], ref.Dist[v])
					}
				}
				goal := terms[len(terms)-1]
				ast := g.AStar(nil, src, goal, b)
				if ast.Dist[goal] != ref.Dist[goal] {
					t.Fatalf("net %d: A* %v vs legacy %v", i, ast.Dist[goal], ref.Dist[goal])
				}
				if src != goal {
					cost, _, ok := g.BiDijkstra(nil, src, goal)
					if !ok || math.Abs(cost-ref.Dist[goal]) > 1e-9 {
						t.Fatalf("net %d: bidijkstra (%v,%v) vs legacy %v", i, cost, ok, ref.Dist[goal])
					}
				}
			}
		})
	}
}

// TestGoalDirectedExpandsFewerBusc is the CI smoke for the whole point of
// goal-directed search: summed over real busc nets, the A*-guided stop-set
// search settles strictly fewer nodes than plain Dijkstra while returning
// identical terminal distances.
func TestGoalDirectedExpandsFewerBusc(t *testing.T) {
	spec, ok := circuits.SpecByName("busc")
	if !ok {
		t.Fatal("busc spec missing")
	}
	ckt := synth(t, spec, 1)
	fab, err := fpga.NewFabric(ckt.ArchAt(10))
	if err != nil {
		t.Fatal(err)
	}
	g := fab.Graph()
	b := fab.Bounds()
	sp, sb := graph.NewDijkstraScratch(), graph.NewDijkstraScratch()
	for _, net := range ckt.Nets {
		fab.BeginNet(net.Pins)
		terms := make([]graph.NodeID, len(net.Pins))
		for j, p := range net.Pins {
			terms[j] = fab.PinNode(p)
		}
		plain := g.LegacyDijkstra(sp, terms[0], terms)
		bounded := g.DijkstraWithinBounded(sb, terms[0], terms, b)
		for _, v := range terms {
			if plain.Dist[v] != bounded.Dist[v] {
				t.Fatalf("terminal %d: %v vs %v", v, bounded.Dist[v], plain.Dist[v])
			}
		}
	}
	if sb.Settled >= sp.Settled {
		t.Fatalf("goal-directed settled %d nodes, dijkstra %d — no pruning on busc", sb.Settled, sp.Settled)
	}
	t.Logf("busc: dijkstra settled %d, goal-directed %d (%.1f%%)",
		sp.Settled, sb.Settled, 100*float64(sb.Settled)/float64(sp.Settled))
}

// TestGoalDirectedRouteBusc routes a real paper circuit end to end with
// GoalDirected on: the route must succeed at the same width, stay within
// capacity, produce valid trees, and its wirelength must stay within 1% of
// the default route's — equal-cost path choices can differ, total cost
// essentially cannot.
func TestGoalDirectedRouteBusc(t *testing.T) {
	spec, ok := circuits.SpecByName("busc")
	if !ok {
		t.Fatal("busc spec missing")
	}
	ckt := synth(t, spec, 1)
	ref, err := Route(ckt, 10, Options{MaxPasses: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(ckt, 10, Options{MaxPasses: 4, GoalDirected: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Routed {
		t.Fatalf("goal-directed busc failed to route: %+v", res)
	}
	if res.MaxUtil > 10 {
		t.Fatalf("span utilization %d exceeds width", res.MaxUtil)
	}
	fab, err := fpga.NewFabric(ckt.ArchAt(10))
	if err != nil {
		t.Fatal(err)
	}
	for i, nr := range res.Nets {
		terms := make([]graph.NodeID, len(ckt.Nets[i].Pins))
		for j, p := range ckt.Nets[i].Pins {
			terms[j] = fab.PinNode(p)
		}
		if err := graph.ValidateTree(fab.Graph(), nr.Tree, terms); err != nil {
			t.Fatalf("net %d: %v", i, err)
		}
	}
	if dev := math.Abs(res.Wirelength-ref.Wirelength) / ref.Wirelength; dev > 0.01 {
		t.Fatalf("goal-directed wirelength %v deviates %.2f%% from default %v",
			res.Wirelength, 100*dev, ref.Wirelength)
	}
}

// TestRouteParityGoalDirectedAcrossWorkers asserts that the goal-directed
// route is itself deterministic across candidate-scan fan-out: forks carry
// the bound along, the guided searches are sequential within each fork,
// and the scan merge is order-fixed, so the Result must be byte-identical
// at every CandidateWorkers setting. Run under -race this also proves the
// shared Bounds value is safe to read concurrently.
func TestRouteParityGoalDirectedAcrossWorkers(t *testing.T) {
	ckt := synth(t, tinySpec(circuits.Series4000), 3)
	for _, alg := range []string{AlgIKMB, AlgIDOM} {
		for _, w := range []int{4, 8} {
			t.Run(fmt.Sprintf("%s/w=%d", alg, w), func(t *testing.T) {
				run := func(workers int) (*Result, error) {
					return Route(ckt, w, Options{
						Algorithm:        alg,
						MaxPasses:        4,
						CandidateWorkers: workers,
						GoalDirected:     true,
					})
				}
				ref, refErr := run(1)
				for _, cw := range []int{4, 0} {
					res, err := run(cw)
					if (err == nil) != (refErr == nil) {
						t.Fatalf("workers=%d err %v, sequential err %v", cw, err, refErr)
					}
					if !reflect.DeepEqual(res, ref) {
						t.Fatalf("workers=%d goal-directed Result diverges from sequential", cw)
					}
				}
			})
		}
	}
}
