package router

import (
	"os"
	"strconv"
	"testing"
	"time"

	"fpgarouter/internal/circuits"
)

// TestManualRoute routes a single named circuit at a given width; it only
// runs when ROUTE_CIRCUIT is set, e.g.
//
//	ROUTE_CIRCUIT=z03 ROUTE_WIDTH=12 ROUTE_PASSES=10 ROUTE_ALG=ikmb \
//	  go test ./internal/router -run TestManualRoute -v
func TestManualRoute(t *testing.T) {
	name := os.Getenv("ROUTE_CIRCUIT")
	if name == "" {
		t.Skip("set ROUTE_CIRCUIT to run")
	}
	envInt := func(key string, def int) int {
		s := os.Getenv(key)
		if s == "" {
			return def
		}
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("%s=%q: %v", key, s, err)
		}
		return v
	}
	width := envInt("ROUTE_WIDTH", 10)
	passes := envInt("ROUTE_PASSES", 20)
	alg := os.Getenv("ROUTE_ALG")
	spec, ok := circuits.SpecByName(name)
	if !ok {
		t.Fatalf("unknown circuit %q", name)
	}
	ckt, err := circuits.Synthesize(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := Route(ckt, width, Options{MaxPasses: passes, Algorithm: alg})
	t.Logf("%s W=%d alg=%q: err=%v passes=%d failed=%d wl=%.0f elapsed=%v",
		name, width, alg, err, res.Passes, len(res.FailedNets), res.Wirelength, time.Since(start))
}
