// Routing context: the explicit, reusable state threaded through every
// layer of a routing run in place of ambient per-call allocations. A
// Context owns a pooled graph.DijkstraScratch (heap, settled marks and
// recycled SPT buffers shared by every net routed under it) and an optional
// stats.Collector. One Context serves one goroutine; the parallel width
// search derives a child per probe goroutine, all reporting into the same
// collector.
package router

import (
	"fpgarouter/internal/graph"
	"fpgarouter/internal/stats"
)

// Context carries the reusable scratch state and observability hooks of a
// routing run. The zero value is not usable; create one with NewContext
// and Close it when done so the scratch returns to the process-wide pool.
// A nil *Context is accepted by every *Ctx entry point (an ephemeral
// context is created for the call).
type Context struct {
	// Stats receives work counters when non-nil; leaving it nil makes every
	// recording site a no-op (see package stats).
	Stats *stats.Collector

	scratch *graph.DijkstraScratch
}

// NewContext returns a routing context backed by a pooled Dijkstra scratch,
// recording into c (which may be nil for no stats).
func NewContext(c *stats.Collector) *Context {
	return &Context{Stats: c, scratch: graph.AcquireScratch()}
}

// Close releases the context's scratch back to the pool. The context (and
// any SPTCache still attached to its scratch) must not be used afterwards.
func (ctx *Context) Close() {
	if ctx != nil && ctx.scratch != nil {
		graph.ReleaseScratch(ctx.scratch)
		ctx.scratch = nil
	}
}

// child derives a context for one worker goroutine of a parallel search:
// its own scratch, the shared stats collector. Close it when the worker is
// done.
func (ctx *Context) child() *Context {
	return &Context{Stats: ctx.Stats, scratch: graph.AcquireScratch()}
}

// ensureContext returns ctx, or an ephemeral context plus its cleanup when
// ctx is nil.
func ensureContext(ctx *Context) (*Context, func()) {
	if ctx != nil {
		return ctx, func() {}
	}
	c := NewContext(nil)
	return c, c.Close
}

// attach backs a per-net cache with the context's scratch.
func (ctx *Context) attach(cache *graph.SPTCache) *graph.SPTCache {
	return cache.WithScratch(ctx.scratch)
}
