// Routing context: the explicit, reusable state threaded through every
// layer of a routing run in place of ambient per-call allocations. A
// Context owns a pooled graph.DijkstraScratch (heap, settled marks and
// recycled SPT buffers shared by every net routed under it) and an optional
// stats.Collector. One Context serves one goroutine; the parallel width
// search derives a child per probe goroutine, all reporting into the same
// collector.
package router

import (
	"context"
	"errors"
	"fmt"
	"time"

	"fpgarouter/internal/graph"
	"fpgarouter/internal/pathfinder"
	"fpgarouter/internal/stats"
)

// Context carries the reusable scratch state and observability hooks of a
// routing run. The zero value is not usable; create one with NewContext
// and Close it when done so the scratch returns to the process-wide pool.
// A nil *Context is accepted by every *Ctx entry point (an ephemeral
// context is created for the call).
type Context struct {
	// Stats receives work counters when non-nil; leaving it nil makes every
	// recording site a no-op (see package stats).
	Stats *stats.Collector

	scratch *graph.DijkstraScratch
	// cc, when non-nil, is the cancellation signal checked cooperatively at
	// pass and per-net boundaries. Bound per call by the *Context entry
	// points (RouteContext, MinWidthContext); nil means never canceled.
	cc context.Context
	// durable, when non-nil, enables pathfinder checkpoint/resume for
	// parallel-mode routes run under this context. It is plumbing, not wire
	// format: the service binds it per job (see bindDurable), keeping
	// Options the pure request shape.
	durable *DurableConfig
}

// DurableConfig carries the checkpoint/resume wiring of one durable job
// into the pathfinder. Only parallel-mode Route calls honor it; the
// sequential router and MinWidth probes ignore it (their state is cheap to
// recompute, so recovery just restarts them).
type DurableConfig struct {
	// CheckpointEvery / CheckpointPeriod set the emission cadence (see
	// pathfinder.Config). CheckpointFn receives each snapshot.
	CheckpointEvery  int
	CheckpointPeriod time.Duration
	CheckpointFn     func(*pathfinder.Checkpoint)
	// Resume restarts the route from a prior snapshot.
	Resume *pathfinder.Checkpoint
}

// ErrCanceled reports that a routing run was abandoned because its
// context.Context was canceled or its deadline passed. Errors returned for
// canceled runs match both ErrCanceled and the underlying cause
// (context.Canceled or context.DeadlineExceeded) under errors.Is.
var ErrCanceled = errors.New("router: canceled")

// checkCanceled returns nil while the run may continue, or an error
// wrapping ErrCanceled and the context's cause once cancellation is
// requested. It is called at pass and per-net boundaries, and between
// width-probe batches — never inside a single-net construction, so pooled
// scratch is always quiescent when a run aborts.
func (ctx *Context) checkCanceled() error {
	if ctx == nil || ctx.cc == nil {
		return nil
	}
	if err := ctx.cc.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return nil
}

// bind attaches cc as the context's cancellation signal, returning a
// restore function for the previous binding. Workers rebind a long-lived
// Context per job, keeping its pooled scratch across jobs.
func (ctx *Context) bind(cc context.Context) func() {
	prev := ctx.cc
	ctx.cc = cc
	return func() { ctx.cc = prev }
}

// BindDurable attaches checkpoint/resume wiring for the next route run
// under this context, returning a restore function for the previous
// binding. Like bind, it lets a worker's long-lived Context carry per-job
// durability state without widening every call signature.
func (ctx *Context) BindDurable(dc *DurableConfig) func() {
	prev := ctx.durable
	ctx.durable = dc
	return func() { ctx.durable = prev }
}

// NewContext returns a routing context backed by a pooled Dijkstra scratch,
// recording into c (which may be nil for no stats).
func NewContext(c *stats.Collector) *Context {
	return &Context{Stats: c, scratch: graph.AcquireScratch()}
}

// Close releases the context's scratch back to the pool. The context (and
// any SPTCache still attached to its scratch) must not be used afterwards.
func (ctx *Context) Close() {
	if ctx != nil && ctx.scratch != nil {
		graph.ReleaseScratch(ctx.scratch)
		ctx.scratch = nil
	}
}

// Discard abandons the context without recycling its scratch: the
// fault-tolerance layer calls this instead of Close when a panic may have
// interrupted a routing run mid-flight, so possibly-inconsistent buffers
// never re-enter the process-wide pool. The service rebuilds a fresh
// context for the worker afterwards.
func (ctx *Context) Discard() {
	if ctx != nil && ctx.scratch != nil {
		graph.DiscardScratch(ctx.scratch)
		ctx.scratch = nil
	}
}

// child derives a context for one worker goroutine of a parallel search:
// its own scratch, the shared stats collector and cancellation signal.
// Close it when the worker is done.
func (ctx *Context) child() *Context {
	return &Context{Stats: ctx.Stats, scratch: graph.AcquireScratch(), cc: ctx.cc}
}

// ensureContext returns ctx, or an ephemeral context plus its cleanup when
// ctx is nil.
func ensureContext(ctx *Context) (*Context, func()) {
	if ctx != nil {
		return ctx, func() {}
	}
	c := NewContext(nil)
	return c, c.Close
}

// attach backs a per-net cache with the context's scratch.
func (ctx *Context) attach(cache *graph.SPTCache) *graph.SPTCache {
	return cache.WithScratch(ctx.scratch)
}
