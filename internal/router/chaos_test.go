// Chaos tests of the router's fault-tolerance layer: armed fault points
// (internal/faultpoint) drive panics and injected errors through the hot
// paths, and the assertions check the promises made by this PR — helper
// goroutine panics funnel to the owner with their stacks, interrupted runs
// surrender well-formed partial results, and no pooled scratch leaks across
// any failure path. Everything here is meant to run under -race (see the CI
// chaos job and `make chaos`).
package router

import (
	"context"
	"errors"
	"testing"
	"time"

	"fpgarouter/internal/circuits"
	"fpgarouter/internal/faultpoint"
	"fpgarouter/internal/graph"
)

// checkPartialInvariants asserts a partial Result is self-consistent: the
// routed-net count matches the trees present, the failure list covers
// exactly the treeless nets without duplicates, and the aggregate metrics
// are sums over the routed nets.
func checkPartialInvariants(t *testing.T, res *Result, numNets int) {
	t.Helper()
	if !res.Partial {
		t.Fatalf("result not marked Partial: %+v", res)
	}
	if res.Routed {
		t.Fatal("partial result claims Routed")
	}
	if res.MaxUtil != 0 {
		t.Fatalf("partial result has MaxUtil %d (not computed on partials)", res.MaxUtil)
	}
	if len(res.Nets) != numNets {
		t.Fatalf("partial has %d net slots, circuit has %d", len(res.Nets), numNets)
	}
	failed := make(map[int]bool, len(res.FailedNets))
	for _, idx := range res.FailedNets {
		if idx < 0 || idx >= numNets {
			t.Fatalf("failed net index %d out of range", idx)
		}
		if failed[idx] {
			t.Fatalf("failed net %d listed twice", idx)
		}
		failed[idx] = true
	}
	routed := 0
	var wl, mp float64
	for i, nr := range res.Nets {
		hasTree := len(nr.Tree.Edges) > 0
		if hasTree == failed[i] {
			t.Fatalf("net %d: tree=%v but in failed set=%v", i, hasTree, failed[i])
		}
		if hasTree {
			routed++
			wl += nr.Wirelength
			mp += nr.MaxPath
		} else if nr.Wirelength != 0 || nr.MaxPath != 0 {
			t.Fatalf("treeless net %d carries metrics %v/%v", i, nr.Wirelength, nr.MaxPath)
		}
	}
	if routed != res.RoutedNets {
		t.Fatalf("RoutedNets %d, but %d nets carry trees", res.RoutedNets, routed)
	}
	if routed+len(res.FailedNets) != numNets {
		t.Fatalf("routed %d + failed %d != %d nets", routed, len(res.FailedNets), numNets)
	}
	if wl != res.Wirelength || mp != res.MaxPathSum {
		t.Fatalf("aggregates %v/%v, per-net sums %v/%v", res.Wirelength, res.MaxPathSum, wl, mp)
	}
}

// findUnroutableWidth walks widths downward until Route fails, returning
// the first failing width and its partial result.
func findUnroutableWidth(t *testing.T, ckt *circuits.Circuit, from int, opts Options) (int, *Result, error) {
	t.Helper()
	for w := from; w >= 1; w-- {
		res, err := Route(ckt, w, opts)
		if err != nil {
			return w, res, err
		}
	}
	t.Fatal("circuit routed at every width down to 1; no unroutable case to test")
	return 0, nil, nil
}

// TestChaosPartialResultOnUnroutable: ErrUnroutable now carries the best
// pass's partial result instead of a bare error, and that snapshot is
// well-formed.
func TestChaosPartialResultOnUnroutable(t *testing.T) {
	ckt := synth(t, tinySpec(circuits.Series4000), 1)
	_, res, err := findUnroutableWidth(t, ckt, 7, Options{MaxPasses: 3})
	if !errors.Is(err, ErrUnroutable) {
		t.Fatalf("want ErrUnroutable, got %v", err)
	}
	if res == nil {
		t.Fatal("unroutable run returned no partial result")
	}
	checkPartialInvariants(t, res, len(ckt.Nets))
	if len(res.FailedNets) == 0 {
		t.Fatal("unroutable partial lists no failed nets")
	}
}

// TestFaultPassBoundaryErrorCarriesBestPartial: an error injected at a
// pass boundary surfaces from Route together with the best partial result
// accumulated by the passes before it.
func TestFaultPassBoundaryErrorCarriesBestPartial(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	ckt := synth(t, tinySpec(circuits.Series4000), 1)
	wFail, _, err := findUnroutableWidth(t, ckt, 7, Options{MaxPasses: 2})
	if !errors.Is(err, ErrUnroutable) {
		t.Fatalf("probe for a failing width errored oddly: %v", err)
	}
	errInjected := errors.New("injected pass-boundary fault")
	faultpoint.Arm(faultpoint.PassBoundary, faultpoint.Plan{Action: faultpoint.Error, Err: errInjected, Nth: 2})
	res, err := Route(ckt, wFail, Options{MaxPasses: 3})
	if !errors.Is(err, errInjected) {
		t.Fatalf("want the injected error, got %v", err)
	}
	if res == nil {
		t.Fatal("injected pass-boundary error dropped the pass-1 partial result")
	}
	checkPartialInvariants(t, res, len(ckt.Nets))
	if res.Passes != 1 {
		t.Fatalf("partial snapshot from pass %d, want the completed pass 1", res.Passes)
	}
}

// TestChaosScanWorkerPanicFunneled: a panic on a candidate-scan worker
// goroutine must re-raise on the goroutine that owns the net — wrapped as
// GoroutinePanic with the worker's stack — rather than killing the process,
// and must not leak (or poison) any pooled scratch.
func TestChaosScanWorkerPanicFunneled(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	ckt := synth(t, tinySpec(circuits.Series4000), 1)
	opts := Options{MaxPasses: 8, CandidateWorkers: 4}
	want, err := Route(ckt, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	baseline := graph.LiveScratches()
	faultpoint.Arm(faultpoint.ScanWorker, faultpoint.Plan{Action: faultpoint.Panic, Nth: 3})
	func() {
		defer func() {
			p := recover()
			if p == nil {
				t.Fatal("armed scan-worker panic did not propagate to the caller")
			}
			gp, ok := p.(*faultpoint.GoroutinePanic)
			if !ok {
				t.Fatalf("panic value %T, want *faultpoint.GoroutinePanic", p)
			}
			if _, ok := gp.Value.(*faultpoint.Injected); !ok {
				t.Fatalf("funneled value %T, want *faultpoint.Injected", gp.Value)
			}
			if len(gp.Stack) == 0 {
				t.Fatal("funneled panic lost the worker goroutine's stack")
			}
		}()
		Route(ckt, 8, opts)
	}()
	if live := graph.LiveScratches(); live != baseline {
		t.Fatalf("scratch leak across panic: %d live, baseline %d", live, baseline)
	}
	faultpoint.Reset()
	after, err := Route(ckt, 8, opts)
	if err != nil {
		t.Fatalf("routing after recovered panic: %v", err)
	}
	resultsEqual(t, "post-panic-parity", want, after)
}

// TestChaosWidthProbePanicFunneled: the same funnel for width-probe
// goroutines — an SSSP panic inside a parallel MinWidth probe re-raises on
// the search goroutine and the probe's child context is discarded, not
// pooled.
func TestChaosWidthProbePanicFunneled(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	ckt := synth(t, tinySpec(circuits.Series4000), 1)
	baseline := graph.LiveScratches()
	// CandidateWorkers 1 keeps all SSSP runs on the probe goroutines
	// themselves, so the panic exercises exactly the probe funnel.
	opts := Options{MaxPasses: 8, WidthProbes: 2, CandidateWorkers: 1}
	faultpoint.Arm(faultpoint.SSSPExpand, faultpoint.Plan{Action: faultpoint.Panic, Nth: 50})
	func() {
		defer func() {
			p := recover()
			if p == nil {
				t.Fatal("armed SSSP panic did not propagate from the probe batch")
			}
			gp, ok := p.(*faultpoint.GoroutinePanic)
			if !ok {
				t.Fatalf("panic value %T, want *faultpoint.GoroutinePanic", p)
			}
			if _, ok := gp.Value.(*faultpoint.Injected); !ok {
				t.Fatalf("funneled value %T, want *faultpoint.Injected", gp.Value)
			}
		}()
		MinWidth(ckt, 8, opts)
	}()
	if live := graph.LiveScratches(); live != baseline {
		t.Fatalf("scratch leak across probe panic: %d live, baseline %d", live, baseline)
	}
}

// TestFaultCancelMidPassContextReuse is the satellite regression test:
// cancellation mid-pass must leave the routing context's pooled scratch
// reusable — routing again on the same context is bit-identical to a fresh
// context.
func TestFaultCancelMidPassContextReuse(t *testing.T) {
	spec, ok := circuits.SpecByName("busc")
	if !ok {
		t.Fatal("busc spec missing")
	}
	ckt := synth(t, spec, 1)
	opts := Options{MaxPasses: 8}

	fresh := NewContext(nil)
	ref, err := RouteCtx(fresh, ckt, spec.PaperIKMB, opts)
	fresh.Close()
	if err != nil {
		t.Fatal(err)
	}

	ctx := NewContext(nil)
	defer ctx.Close()
	// A width-1 grind is canceled mid-pass by the deadline long before its
	// 20-pass budget could conclude.
	cc, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := RouteContext(cc, ctx, ckt, 1, Options{MaxPasses: 20}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("grind was not canceled: %v", err)
	}

	got, err := RouteCtx(ctx, ckt, spec.PaperIKMB, opts)
	if err != nil {
		t.Fatalf("context not reusable after mid-pass cancellation: %v", err)
	}
	resultsEqual(t, "reuse-after-cancel", ref, got)
}

// TestChaosRouteContextDeadlinePartial: a deadline mid-run returns the best
// partial result alongside the canceled error, and the partial is
// well-formed.
func TestChaosRouteContextDeadlinePartial(t *testing.T) {
	spec, ok := circuits.SpecByName("busc")
	if !ok {
		t.Fatal("busc spec missing")
	}
	ckt := synth(t, spec, 1)
	// Time one pass-limited run to calibrate a deadline that lands mid-run:
	// long enough to route some nets, far too short for 20 passes at an
	// infeasible width.
	start := time.Now()
	if _, err := Route(ckt, spec.PaperIKMB, Options{MaxPasses: 4}); err != nil {
		t.Fatal(err)
	}
	d := time.Since(start)
	cc, cancel := context.WithTimeout(context.Background(), d/2+5*time.Millisecond)
	defer cancel()
	res, err := RouteContext(cc, nil, ckt, 2, Options{MaxPasses: 20})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want ErrCanceled+DeadlineExceeded, got %v", err)
	}
	if res != nil {
		checkPartialInvariants(t, res, len(ckt.Nets))
	}
	// res may legitimately be nil if the deadline fired before any net
	// routed; the well-formedness claim is conditional, the error class is
	// not.
}

// TestChaosMinWidthDeadlineBestSoFar: a deadline during the shrink phase
// surrenders the best feasible width found so far with complete=false,
// and the Result at that width is a full (non-partial) routing.
func TestChaosMinWidthDeadlineBestSoFar(t *testing.T) {
	spec, ok := circuits.SpecByName("busc")
	if !ok {
		t.Fatal("busc spec missing")
	}
	ckt := synth(t, spec, 1)
	start := time.Now()
	if _, err := Route(ckt, spec.PaperIKMB+1, Options{MaxPasses: 4}); err != nil {
		t.Fatal(err)
	}
	d := time.Since(start)
	// Enough for the grow probe plus a shrink step or two; the search's
	// final unroutable grind (20 passes) takes an order of magnitude longer.
	cc, cancel := context.WithTimeout(context.Background(), 3*d+100*time.Millisecond)
	defer cancel()
	w, res, complete, err := MinWidthContext(cc, nil, ckt, spec.PaperIKMB+1, Options{MaxPasses: 20, WidthProbes: 1})
	if err == nil {
		t.Fatalf("search completed within %v; deadline calibration is off", 3*d+100*time.Millisecond)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if complete {
		t.Fatal("interrupted search reported complete=true")
	}
	if res == nil || w < 1 {
		t.Fatalf("no best-so-far width surrendered (w=%d res=%v err=%v)", w, res, err)
	}
	if !res.Routed || res.Partial {
		t.Fatalf("best-so-far result should be a full routing at width %d: %+v", w, res)
	}
	if w > spec.PaperIKMB+1 {
		t.Fatalf("best-so-far width %d above the feasible start %d", w, spec.PaperIKMB+1)
	}
}
