package router

import (
	"testing"

	"fpgarouter/internal/circuits"
	"fpgarouter/internal/fpga"
)

// TestWithDefaultsSentinels pins down the zero-value collision fix: a plain
// 0 still selects the documented default, while router.Zero (any negative
// value) survives normalization as an explicit zero.
func TestWithDefaultsSentinels(t *testing.T) {
	cases := []struct {
		name      string
		in        Options
		wantBBox  int
		wantAlpha float64
	}{
		{"zero-value-defaults", Options{}, 2, 1.0},
		{"explicit-zero-margin", Options{BBoxMargin: Zero}, 0, 1.0},
		{"explicit-zero-alpha", Options{CongestionAlpha: Zero}, 2, 0},
		{"both-explicit-zero", Options{BBoxMargin: Zero, CongestionAlpha: Zero}, 0, 0},
		{"negative-means-zero", Options{BBoxMargin: -7, CongestionAlpha: -0.5}, 0, 0},
		{"positive-preserved", Options{BBoxMargin: 5, CongestionAlpha: 2.5}, 5, 2.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.in.withDefaults()
			if got.BBoxMargin != tc.wantBBox {
				t.Fatalf("BBoxMargin = %d, want %d", got.BBoxMargin, tc.wantBBox)
			}
			if got.CongestionAlpha != tc.wantAlpha {
				t.Fatalf("CongestionAlpha = %v, want %v", got.CongestionAlpha, tc.wantAlpha)
			}
			if got.Algorithm != AlgIKMB && tc.in.Algorithm == "" {
				t.Fatalf("Algorithm default = %q", got.Algorithm)
			}
			if got.MaxPasses != 20 && tc.in.MaxPasses == 0 {
				t.Fatalf("MaxPasses default = %d", got.MaxPasses)
			}
		})
	}
}

// TestExplicitZeroAlphaReachesFabric proves the sentinel survives the whole
// entry path: RouteWithFabric with CongestionAlpha: Zero must build a fabric
// with congestion weighting disabled, where the plain zero value enables the
// default weighting.
func TestExplicitZeroAlphaReachesFabric(t *testing.T) {
	ckt := synth(t, tinySpec(circuits.Series4000), 1)
	check := func(opts Options, want float64) *fpga.Fabric {
		t.Helper()
		_, fab, err := RouteWithFabric(ckt, 8, opts)
		if err != nil {
			t.Fatal(err)
		}
		if fab.CongestionAlpha != want {
			t.Fatalf("fabric CongestionAlpha = %v, want %v", fab.CongestionAlpha, want)
		}
		return fab
	}
	check(Options{MaxPasses: 8}, 1.0)
	check(Options{MaxPasses: 8, CongestionAlpha: Zero}, 0)
	check(Options{MaxPasses: 8, CongestionAlpha: 0.25}, 0.25)
}

// TestMinWidthPreservesExplicitZeros guards against double normalization: a
// width search issues many Route calls, and an explicit zero must not be
// promoted back to the default on any of them. Disabling congestion
// weighting typically costs channel width, so the searched minima should
// reflect the setting rather than silently reverting.
func TestMinWidthPreservesExplicitZeros(t *testing.T) {
	ckt := synth(t, tinySpec(circuits.Series4000), 2)
	opts := Options{MaxPasses: 6, CongestionAlpha: Zero, WidthProbes: 2}
	wPar, _, errPar := MinWidth(ckt, 1, opts)
	wSeq, _, errSeq := MinWidthSeq(nil, ckt, 1, opts)
	if errPar != nil || errSeq != nil {
		t.Fatalf("errors: %v / %v", errPar, errSeq)
	}
	if wPar != wSeq {
		t.Fatalf("parallel width %d != sequential %d under explicit-zero options", wPar, wSeq)
	}
}
