package router

import (
	"runtime"
	"testing"

	"fpgarouter/internal/circuits"
	"fpgarouter/internal/stats"
)

// resultsEqual asserts bit-identical routing results: same width, pass
// count, aggregate metrics and per-net trees.
func resultsEqual(t *testing.T, tag string, a, b *Result) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s: one result nil (%v vs %v)", tag, a, b)
	}
	if a == nil {
		return
	}
	if a.Width != b.Width || a.Passes != b.Passes || a.Routed != b.Routed {
		t.Fatalf("%s: width/passes/routed %d/%d/%v vs %d/%d/%v",
			tag, a.Width, a.Passes, a.Routed, b.Width, b.Passes, b.Routed)
	}
	if a.Wirelength != b.Wirelength || a.MaxPathSum != b.MaxPathSum || a.MaxUtil != b.MaxUtil {
		t.Fatalf("%s: metrics %v/%v/%d vs %v/%v/%d",
			tag, a.Wirelength, a.MaxPathSum, a.MaxUtil, b.Wirelength, b.MaxPathSum, b.MaxUtil)
	}
	if len(a.Nets) != len(b.Nets) {
		t.Fatalf("%s: net counts %d vs %d", tag, len(a.Nets), len(b.Nets))
	}
	for i := range a.Nets {
		ea, eb := a.Nets[i].Tree.Edges, b.Nets[i].Tree.Edges
		if len(ea) != len(eb) {
			t.Fatalf("%s net %d: tree sizes %d vs %d", tag, i, len(ea), len(eb))
		}
		for j := range ea {
			if ea[j] != eb[j] {
				t.Fatalf("%s net %d edge %d: %d vs %d", tag, i, j, ea[j], eb[j])
			}
		}
	}
}

// TestMinWidthParallelMatchesSequential is the boundary regression test of
// the parallel width search: for several circuits, algorithms and start
// widths, the parallel search must return the same width, error state and
// bit-identical Result as the strictly sequential reference.
func TestMinWidthParallelMatchesSequential(t *testing.T) {
	cases := []struct {
		name   string
		series circuits.Series
		seed   int64
		start  int
		opts   Options
	}{
		{"ikmb-start1", circuits.Series4000, 1, 1, Options{MaxPasses: 6}},
		{"ikmb-start8", circuits.Series4000, 1, 8, Options{MaxPasses: 6}},
		{"kmb", circuits.Series3000, 2, 2, Options{Algorithm: AlgKMB, MaxPasses: 6}},
		{"idom", circuits.Series3000, 3, 3, Options{Algorithm: AlgIDOM, MaxPasses: 6}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ckt := synth(t, tinySpec(tc.series), tc.seed)
			wSeq, resSeq, errSeq := MinWidthSeq(nil, ckt, tc.start, tc.opts)
			for _, probes := range []int{0, 1, 3} {
				opts := tc.opts
				opts.WidthProbes = probes
				wPar, resPar, errPar := MinWidth(ckt, tc.start, opts)
				if (errSeq == nil) != (errPar == nil) {
					t.Fatalf("probes=%d: errors %v vs %v", probes, errSeq, errPar)
				}
				if errSeq != nil && errSeq.Error() != errPar.Error() {
					t.Fatalf("probes=%d: error text %q vs %q", probes, errSeq, errPar)
				}
				if wPar != wSeq {
					t.Fatalf("probes=%d: width %d vs sequential %d", probes, wPar, wSeq)
				}
				resultsEqual(t, tc.name, resSeq, resPar)
			}
		})
	}
}

// TestMinWidthHardStartParity stresses the grow phase: MaxPasses 1 with
// move-to-front disabled keeps low widths failing for several batches, so
// the parallel bracket has to skip past genuine ErrUnroutable outcomes and
// still settle on the sequential answer (and the identical error text if
// the search exhausts its width limit).
func TestMinWidthHardStartParity(t *testing.T) {
	if testing.Short() {
		t.Skip("routes many widths")
	}
	ckt := synth(t, tinySpec(circuits.Series4000), 3)
	opts := Options{MaxPasses: 1, NoMoveToFront: true}
	wSeq, _, errSeq := MinWidthSeq(nil, ckt, 1, opts)
	opts.WidthProbes = 4
	wPar, _, errPar := MinWidth(ckt, 1, opts)
	if wPar != wSeq {
		t.Fatalf("width %d vs %d", wPar, wSeq)
	}
	if (errSeq == nil) != (errPar == nil) {
		t.Fatalf("errors %v vs %v", errSeq, errPar)
	}
	if errSeq != nil && errSeq.Error() != errPar.Error() {
		t.Fatalf("error text %q vs %q", errSeq, errPar)
	}
}

// TestMinWidthCtxStats checks that a shared collector sees probes from the
// concurrent workers and that GOMAXPROCS does not perturb results.
func TestMinWidthCtxStats(t *testing.T) {
	ckt := synth(t, tinySpec(circuits.Series4000), 1)
	col := stats.New()
	ctx := NewContext(col)
	defer ctx.Close()
	w, res, err := MinWidthCtx(ctx, ckt, 1, Options{MaxPasses: 6, WidthProbes: runtime.GOMAXPROCS(0)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Routed || res.Width != w {
		t.Fatalf("result %+v at width %d", res, w)
	}
	s := col.Snapshot()
	if s.WidthProbes == 0 || s.SSSPRuns == 0 || s.Passes == 0 || s.NetsRouted == 0 {
		t.Fatalf("collector missed work: %+v", s)
	}
}
