package graph

// Bounds supplies admissible lower bounds on shortest-path distances for
// goal-directed search (AStar, DijkstraWithinBounded, SPTCache.WithBounds).
//
// Admissibility — LowerBound(u, v) ≤ the true shortest-path distance over
// enabled edges — is the correctness requirement; a bound that can
// overestimate makes goal-directed distances wrong. Consistency
// (|h(u) − h(v)| ≤ w for every enabled edge {u, v, w}) is additionally
// required for the searches here, which settle each node once.
//
// Implementations must be immutable after construction: the router's
// parallel candidate scans share one Bounds across worker forks with no
// synchronization. They must also remain valid across the graph mutations
// the owner performs — the fabric's coordinate bounds survive arbitrary
// weight/enable churn because congestion only ever scales weights up from
// geometric length (see CoordBounds); landmark bounds survive only monotone
// weight increases and edge disabling (see LandmarkBounds).
type Bounds interface {
	// LowerBound returns an admissible lower bound on the distance between
	// u and v. It must be symmetric on undirected graphs.
	LowerBound(u, v NodeID) float64
	// ToSet returns h with h(v) an admissible lower bound on the minimum
	// distance from v to any node of goals — the heuristic for searches
	// that terminate on a goal set. The returned closure may retain goals;
	// callers must not mutate the slice while h is in use.
	ToSet(goals []NodeID) func(v NodeID) float64
}

// CoordBounds bounds distances by geometry: each node carries coordinates
// and every edge's weight is promised to be at least the Manhattan
// (L1) displacement between its endpoints, so the L1 distance between two
// nodes lower-bounds every path length between them.
//
// The FPGA fabrics satisfy the promise by construction (see
// fpga.Fabric.Bounds and fpga3d.Fabric3D.Bounds): wire segments cost their
// span count, connection-block taps cost exactly the pin-midpoint-to-
// switch-block distance, jogs join co-located nodes, and congestion
// multiplies base weights by factors ≥ 1 — so the bound stays admissible
// and consistent across every mutation the router performs, including
// Reset.
type CoordBounds struct {
	// X, Y are per-node coordinates. Z may be nil for planar graphs.
	X, Y, Z []float64
}

// LowerBound returns the Manhattan distance between u and v.
func (b *CoordBounds) LowerBound(u, v NodeID) float64 {
	d := abs(b.X[u]-b.X[v]) + abs(b.Y[u]-b.Y[v])
	if b.Z != nil {
		d += abs(b.Z[u] - b.Z[v])
	}
	return d
}

// ToSet returns the L1 distance to the goals' coordinate bounding box — an
// O(1)-per-node admissible lower bound on the minimum over goals of the
// Manhattan distance (weaker than the exact minimum for spread-out goal
// sets, but independent of the goal count; the router's stop sets run to a
// thousand nodes).
func (b *CoordBounds) ToSet(goals []NodeID) func(v NodeID) float64 {
	if len(goals) == 0 {
		return func(NodeID) float64 { return 0 }
	}
	minX, maxX := b.X[goals[0]], b.X[goals[0]]
	minY, maxY := b.Y[goals[0]], b.Y[goals[0]]
	var minZ, maxZ float64
	if b.Z != nil {
		minZ, maxZ = b.Z[goals[0]], b.Z[goals[0]]
	}
	for _, g := range goals[1:] {
		minX, maxX = minmax(minX, maxX, b.X[g])
		minY, maxY = minmax(minY, maxY, b.Y[g])
		if b.Z != nil {
			minZ, maxZ = minmax(minZ, maxZ, b.Z[g])
		}
	}
	return func(v NodeID) float64 {
		d := gap(b.X[v], minX, maxX) + gap(b.Y[v], minY, maxY)
		if b.Z != nil {
			d += gap(b.Z[v], minZ, maxZ)
		}
		return d
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func minmax(lo, hi, x float64) (float64, float64) {
	if x < lo {
		lo = x
	}
	if x > hi {
		hi = x
	}
	return lo, hi
}

// gap returns the distance from x to the interval [lo, hi] (0 inside).
func gap(x, lo, hi float64) float64 {
	if x < lo {
		return lo - x
	}
	if x > hi {
		return x - hi
	}
	return 0
}

// LandmarkBounds is the ALT lower bound for graphs without usable geometry:
// exact distances from a few landmark nodes are precomputed, and the
// triangle inequality |d(L,u) − d(L,v)| ≤ d(u,v) bounds any pair. The
// bounds are computed against the graph state at construction time; they
// remain admissible as long as subsequent mutations only increase weights
// or disable edges (both only lengthen shortest paths). Re-enable an edge
// or cut a weight and the bounds must be rebuilt.
type LandmarkBounds struct {
	dist [][]float64 // per landmark: distance to every node
}

// NewLandmarkBounds precomputes distances from each landmark over the
// current enabled edges. Good landmarks sit on the graph's periphery;
// callers choose them (a poor choice costs tightness, never correctness).
func NewLandmarkBounds(g *Graph, landmarks []NodeID) *LandmarkBounds {
	b := &LandmarkBounds{dist: make([][]float64, len(landmarks))}
	s := AcquireScratch()
	defer ReleaseScratch(s)
	for i, l := range landmarks {
		t := g.dijkstraWith(s, l, nil)
		b.dist[i] = append([]float64(nil), t.Dist...)
		s.RecycleSPT(t)
	}
	return b
}

// LowerBound returns the best (largest) landmark bound for the pair.
func (b *LandmarkBounds) LowerBound(u, v NodeID) float64 {
	best := 0.0
	for _, d := range b.dist {
		du, dv := d[u], d[v]
		switch {
		case du == inf && dv == inf:
			// Both unreachable from this landmark: no information.
		case du == inf || dv == inf:
			// One side shares the landmark's component, the other does not,
			// so u and v are disconnected.
			return inf
		default:
			if lb := abs(du - dv); lb > best {
				best = lb
			}
		}
	}
	return best
}

// ToSet returns h(v) = max over landmarks of the distance from d(L,v) to
// the interval [min, max] of the goals' landmark distances — an admissible
// lower bound on the minimum distance from v to any goal, O(landmarks) per
// node regardless of the goal count.
func (b *LandmarkBounds) ToSet(goals []NodeID) func(v NodeID) float64 {
	if len(goals) == 0 {
		return func(NodeID) float64 { return 0 }
	}
	type interval struct{ lo, hi float64 }
	ivs := make([]interval, len(b.dist))
	for i, d := range b.dist {
		lo, hi := d[goals[0]], d[goals[0]]
		for _, g := range goals[1:] {
			lo, hi = minmax(lo, hi, d[g])
		}
		ivs[i] = interval{lo, hi}
	}
	return func(v NodeID) float64 {
		best := 0.0
		for i, d := range b.dist {
			dv := d[v]
			iv := ivs[i]
			switch {
			case dv == inf:
				// v is outside this landmark's component. If every goal is
				// inside it (hi finite), no goal is reachable from v;
				// otherwise the landmark says nothing about the goals that
				// share v's fate.
				if iv.hi != inf {
					return inf
				}
			case dv < iv.lo:
				if lb := iv.lo - dv; lb > best {
					best = lb
				}
			case iv.hi != inf && dv > iv.hi:
				if lb := dv - iv.hi; lb > best {
					best = lb
				}
			}
		}
		return best
	}
}
