// Package graph provides the weighted-graph substrate used by all routing
// algorithms in this repository: a compact undirected graph with mutable
// edge weights and edge enable/disable flags (so a router can commit wire
// segments to nets), single-source shortest paths, minimum spanning trees,
// and small utilities (union-find, grid builders, an all-pairs oracle).
//
// The graph model follows Section 2 of Alexander & Robins (DAC 1995): an
// FPGA's routing resources induce a weighted graph G = (V, E) where each
// edge weight reflects wirelength and, as routing proceeds, congestion.
// Nets are sets of node IDs; routing solutions are trees of edge IDs.
package graph

import (
	"fmt"
	"math"
)

// NodeID identifies a node in a Graph. Nodes are dense integers in [0, N).
type NodeID = int32

// EdgeID identifies an edge in a Graph. Edges are dense integers in [0, E).
type EdgeID = int32

// None is the sentinel for "no node" / "no edge" in parent arrays.
const None int32 = -1

// Inf is the distance assigned to unreachable nodes.
var Inf = math.Inf(1)

// Edge is a single undirected weighted edge.
type Edge struct {
	U, V    NodeID
	W       float64
	Enabled bool
}

// Arc is one direction of an edge as stored in an adjacency list.
type Arc struct {
	To NodeID
	ID EdgeID
}

// Graph is a mutable undirected weighted graph.
//
// The zero value is an empty graph with no nodes; use New to create a graph
// with a fixed node count. Node IDs are assigned by the caller in [0, N);
// edge IDs are assigned densely by AddEdge in insertion order, which keeps
// all algorithms in this module deterministic for a fixed construction
// order.
type Graph struct {
	n     int
	edges []Edge
	adj   [][]Arc
}

// New returns an empty graph with n nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Graph{n: n, adj: make([][]Arc, n)}
}

// NumNodes reports the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges reports the number of edges ever added (enabled or not).
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddEdge adds an undirected edge {u, v} with weight w and returns its ID.
// Self-loops and negative weights are rejected because no algorithm in this
// repository is defined over them; parallel edges are allowed (FPGA channels
// legitimately contain parallel tracks).
func (g *Graph) AddEdge(u, v NodeID, w float64) EdgeID {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	if u < 0 || int(u) >= g.n || v < 0 || int(v) >= g.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, g.n))
	}
	if w < 0 || math.IsNaN(w) {
		panic(fmt.Sprintf("graph: invalid weight %v on edge {%d,%d}", w, u, v))
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{U: u, V: v, W: w, Enabled: true})
	g.adj[u] = append(g.adj[u], Arc{To: v, ID: id})
	g.adj[v] = append(g.adj[v], Arc{To: u, ID: id})
	return id
}

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// Weight returns the weight of edge id.
func (g *Graph) Weight(id EdgeID) float64 { return g.edges[id].W }

// SetWeight updates the weight of edge id. Weights must stay non-negative.
func (g *Graph) SetWeight(id EdgeID, w float64) {
	if w < 0 || math.IsNaN(w) {
		panic(fmt.Sprintf("graph: invalid weight %v on edge %d", w, id))
	}
	g.edges[id].W = w
}

// AddWeight increments the weight of edge id by delta (used for congestion
// updates after a net is routed).
func (g *Graph) AddWeight(id EdgeID, delta float64) {
	g.SetWeight(id, g.edges[id].W+delta)
}

// Enabled reports whether edge id is currently usable.
func (g *Graph) Enabled(id EdgeID) bool { return g.edges[id].Enabled }

// SetEnabled enables or disables edge id. Disabled edges are invisible to
// every traversal; the router disables edges committed to a routed net so
// that subsequent nets remain electrically disjoint.
func (g *Graph) SetEnabled(id EdgeID, enabled bool) { g.edges[id].Enabled = enabled }

// Adj returns the adjacency list of u, including arcs over disabled edges;
// callers that traverse must check Enabled. The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) Adj(u NodeID) []Arc { return g.adj[u] }

// Degree returns the number of enabled edges incident to u.
func (g *Graph) Degree(u NodeID) int {
	d := 0
	for _, a := range g.adj[u] {
		if g.edges[a.ID].Enabled {
			d++
		}
	}
	return d
}

// Other returns the endpoint of edge id that is not u.
func (g *Graph) Other(id EdgeID, u NodeID) NodeID {
	e := g.edges[id]
	if e.U == u {
		return e.V
	}
	if e.V == u {
		return e.U
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %d", u, id))
}

// Clone returns a deep copy of the graph. The copy shares no state with the
// original, so the router can restart passes from a pristine graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{n: g.n, edges: make([]Edge, len(g.edges)), adj: make([][]Arc, g.n)}
	copy(c.edges, g.edges)
	for i := range g.adj {
		c.adj[i] = append([]Arc(nil), g.adj[i]...)
	}
	return c
}

// EnabledEdgeCount returns the number of currently enabled edges.
func (g *Graph) EnabledEdgeCount() int {
	c := 0
	for i := range g.edges {
		if g.edges[i].Enabled {
			c++
		}
	}
	return c
}

// TotalWeight returns the sum of the weights of the given edges.
func (g *Graph) TotalWeight(ids []EdgeID) float64 {
	t := 0.0
	for _, id := range ids {
		t += g.edges[id].W
	}
	return t
}
