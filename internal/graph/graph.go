// Package graph provides the weighted-graph substrate used by all routing
// algorithms in this repository: a compact undirected graph with mutable
// edge weights and edge enable/disable flags (so a router can commit wire
// segments to nets), single-source shortest paths (plain, goal-directed and
// bidirectional), minimum spanning trees, and small utilities (union-find,
// grid builders, an all-pairs oracle).
//
// The graph model follows Section 2 of Alexander & Robins (DAC 1995): an
// FPGA's routing resources induce a weighted graph G = (V, E) where each
// edge weight reflects wirelength and, as routing proceeds, congestion.
// Nets are sets of node IDs; routing solutions are trees of edge IDs.
//
// # Memory layout
//
// The graph is stored as flat parallel arrays (structure-of-arrays), not as
// per-node adjacency slices: endpoints, weights and enable bits live in
// edge-indexed streams, and traversal runs over a CSR (compressed sparse
// row) view — node-indexed offsets into one flat arc array. The CSR view is
// rebuilt lazily after topology mutations (AddEdge) and updated in place by
// attribute mutations (SetWeight/SetEnabled), so the router's per-net
// enable/weight churn never pays a rebuild. See DESIGN.md §6 for the layout,
// the freeze/rebuild rules, and the traversal-order guarantees.
package graph

import (
	"fmt"
	"iter"
	"math"
	"math/bits"
)

// NodeID identifies a node in a Graph. Nodes are dense integers in [0, N).
type NodeID = int32

// EdgeID identifies an edge in a Graph. Edges are dense integers in [0, E).
type EdgeID = int32

// None is the sentinel for "no node" / "no edge" in parent arrays.
const None int32 = -1

// inf is the package-internal unreachable-distance sentinel. It is also the
// in-CSR encoding of a disabled edge's effective weight, which is why +Inf
// is rejected as an edge weight (see AddEdge).
var inf = math.Inf(1)

// Inf returns the distance assigned to unreachable nodes. It is a function,
// not a package variable, so no caller can corrupt the global distance
// semantics by assignment (Go cannot express an untyped +Inf constant).
func Inf() float64 { return inf }

// Edge is a single undirected weighted edge.
type Edge struct {
	U, V    NodeID
	W       float64
	Enabled bool
}

// Arc is one direction of an edge as stored in the CSR adjacency view.
type Arc struct {
	To NodeID
	ID EdgeID
}

// Graph is a mutable undirected weighted graph.
//
// The zero value is an empty graph with no nodes; use New to create a graph
// with a fixed node count. Node IDs are assigned by the caller in [0, N);
// edge IDs are assigned densely by AddEdge in insertion order, which keeps
// all algorithms in this module deterministic for a fixed construction
// order.
//
// Concurrency: attribute mutations (SetWeight, SetEnabled, AddWeight) and
// reads are safe only from one goroutine at a time, as before. Read-only
// sharing (the router's parallel candidate scans and width probes) requires
// the CSR view to be current: call Freeze after the last AddEdge — the
// fabric builders do — because a traversal on a stale view would otherwise
// rebuild it lazily, racing concurrent readers.
type Graph struct {
	n int

	// Edge-indexed attribute streams.
	eu, ev  []NodeID  // endpoints
	w       []float64 // weights
	enabled []uint64  // enable flags, bit id&63 of word id>>6

	// CSR adjacency view over the edges above. arcs[offsets[u]:offsets[u+1]]
	// are node u's arcs in edge-insertion order; arcw carries each arc's
	// effective weight — the edge weight, or +Inf when the edge is disabled,
	// so the relaxation loop skips disabled edges with no extra memory
	// access. slots maps edge id → its two arc positions (2id, 2id+1) for
	// in-place attribute updates. dirty marks the view stale after AddEdge.
	offsets []int32
	arcs    []Arc
	arcw    []float64
	slots   []int32
	dirty   bool
}

// New returns an empty graph with n nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Graph{n: n, offsets: make([]int32, n+1)}
}

// NumNodes reports the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges reports the number of edges ever added (enabled or not).
func (g *Graph) NumEdges() int { return len(g.eu) }

// AddEdge adds an undirected edge {u, v} with weight w and returns its ID.
// Self-loops, negative, NaN and +Inf weights are rejected because no
// algorithm in this repository is defined over them (+Inf doubles as the
// disabled-edge encoding in the CSR weight stream); parallel edges are
// allowed (FPGA channels legitimately contain parallel tracks).
//
// Adding an edge marks the CSR view stale; the next traversal (or an
// explicit Freeze) rebuilds it.
func (g *Graph) AddEdge(u, v NodeID, w float64) EdgeID {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	if u < 0 || int(u) >= g.n || v < 0 || int(v) >= g.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, g.n))
	}
	if w < 0 || math.IsNaN(w) || math.IsInf(w, 1) {
		panic(fmt.Sprintf("graph: invalid weight %v on edge {%d,%d}", w, u, v))
	}
	id := EdgeID(len(g.eu))
	g.eu = append(g.eu, u)
	g.ev = append(g.ev, v)
	g.w = append(g.w, w)
	if int(id)>>6 >= len(g.enabled) {
		g.enabled = append(g.enabled, 0)
	}
	g.enabled[id>>6] |= 1 << (uint(id) & 63)
	g.dirty = true
	return id
}

// Freeze rebuilds the CSR adjacency view if it is stale. Mutating topology
// (AddEdge) marks the view dirty; every traversal entry point refreshes it
// lazily, so Freeze is only required before sharing the graph read-only
// across goroutines (the lazy rebuild is not concurrency-safe). Attribute
// mutations (SetWeight, SetEnabled) update the view in place and never
// dirty it.
func (g *Graph) Freeze() { g.ensureCSR() }

func (g *Graph) ensureCSR() {
	if g.dirty {
		g.rebuildCSR()
	}
}

// rebuildCSR builds the CSR view with a counting sort over edge IDs. Edges
// are placed in insertion (ID) order, so each node's arc run is ordered
// exactly like the append-built adjacency lists of the pre-CSR layout —
// the tie-break order every deterministic algorithm in this module relies
// on.
func (g *Graph) rebuildCSR() {
	m := len(g.eu)
	if cap(g.offsets) >= g.n+1 {
		g.offsets = g.offsets[:g.n+1]
		clear(g.offsets)
	} else {
		g.offsets = make([]int32, g.n+1)
	}
	for i := 0; i < m; i++ {
		g.offsets[g.eu[i]+1]++
		g.offsets[g.ev[i]+1]++
	}
	for i := 0; i < g.n; i++ {
		g.offsets[i+1] += g.offsets[i]
	}
	if cap(g.arcs) >= 2*m {
		g.arcs = g.arcs[:2*m]
		g.arcw = g.arcw[:2*m]
		g.slots = g.slots[:2*m]
	} else {
		g.arcs = make([]Arc, 2*m)
		g.arcw = make([]float64, 2*m)
		g.slots = make([]int32, 2*m)
	}
	cur := make([]int32, g.n)
	copy(cur, g.offsets[:g.n])
	for id := 0; id < m; id++ {
		u, v := g.eu[id], g.ev[id]
		we := g.w[id]
		if !g.enabledBit(EdgeID(id)) {
			we = inf
		}
		pu := cur[u]
		cur[u]++
		g.arcs[pu] = Arc{To: v, ID: EdgeID(id)}
		g.arcw[pu] = we
		g.slots[2*id] = pu
		pv := cur[v]
		cur[v]++
		g.arcs[pv] = Arc{To: u, ID: EdgeID(id)}
		g.arcw[pv] = we
		g.slots[2*id+1] = pv
	}
	g.dirty = false
}

func (g *Graph) enabledBit(id EdgeID) bool {
	return g.enabled[id>>6]&(1<<(uint(id)&63)) != 0
}

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id EdgeID) Edge {
	return Edge{U: g.eu[id], V: g.ev[id], W: g.w[id], Enabled: g.enabledBit(id)}
}

// Weight returns the weight of edge id.
func (g *Graph) Weight(id EdgeID) float64 { return g.w[id] }

// SetWeight updates the weight of edge id. Weights must stay non-negative
// and finite. The CSR view is updated in place (no rebuild).
func (g *Graph) SetWeight(id EdgeID, w float64) {
	if w < 0 || math.IsNaN(w) || math.IsInf(w, 1) {
		panic(fmt.Sprintf("graph: invalid weight %v on edge %d", w, id))
	}
	g.w[id] = w
	if !g.dirty && g.enabledBit(id) {
		g.arcw[g.slots[2*id]] = w
		g.arcw[g.slots[2*id+1]] = w
	}
}

// AddWeight increments the weight of edge id by delta (used for congestion
// updates after a net is routed).
func (g *Graph) AddWeight(id EdgeID, delta float64) {
	g.SetWeight(id, g.w[id]+delta)
}

// Enabled reports whether edge id is currently usable.
func (g *Graph) Enabled(id EdgeID) bool { return g.enabledBit(id) }

// SetEnabled enables or disables edge id. Disabled edges are invisible to
// every traversal; the router disables edges committed to a routed net so
// that subsequent nets remain electrically disjoint. The CSR view is
// updated in place: a disabled edge's effective arc weight becomes +Inf, so
// relaxation skips it without consulting the flag.
func (g *Graph) SetEnabled(id EdgeID, enabled bool) {
	if enabled {
		g.enabled[id>>6] |= 1 << (uint(id) & 63)
	} else {
		g.enabled[id>>6] &^= 1 << (uint(id) & 63)
	}
	if !g.dirty {
		we := inf
		if enabled {
			we = g.w[id]
		}
		g.arcw[g.slots[2*id]] = we
		g.arcw[g.slots[2*id+1]] = we
	}
}

// Adj returns the adjacency run of u, including arcs over disabled edges;
// callers that traverse must check Enabled (or use EnabledArcs). The
// returned slice aliases the graph's CSR view and must not be modified; it
// is invalidated by the next AddEdge.
func (g *Graph) Adj(u NodeID) []Arc {
	g.ensureCSR()
	return g.arcs[g.offsets[u]:g.offsets[u+1]]
}

// EnabledArcs iterates over the enabled arcs out of u together with their
// current weights, replacing the open-coded
// "range Adj, skip if !Enabled, load Weight" pattern — the filter reads the
// CSR weight stream only (disabled arcs carry +Inf there), so it performs
// no per-arc random access into edge records.
func (g *Graph) EnabledArcs(u NodeID) iter.Seq2[Arc, float64] {
	g.ensureCSR()
	lo, hi := g.offsets[u], g.offsets[u+1]
	return func(yield func(Arc, float64) bool) {
		for i := lo; i < hi; i++ {
			if w := g.arcw[i]; w != inf {
				if !yield(g.arcs[i], w) {
					return
				}
			}
		}
	}
}

// Degree returns the number of enabled edges incident to u.
func (g *Graph) Degree(u NodeID) int {
	g.ensureCSR()
	d := 0
	for _, w := range g.arcw[g.offsets[u]:g.offsets[u+1]] {
		if w != inf {
			d++
		}
	}
	return d
}

// Other returns the endpoint of edge id that is not u.
func (g *Graph) Other(id EdgeID, u NodeID) NodeID {
	if g.eu[id] == u {
		return g.ev[id]
	}
	if g.ev[id] == u {
		return g.eu[id]
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %d", u, id))
}

// Clone returns a deep copy of the graph (including its CSR view, so the
// copy pays no rebuild). The copy shares no state with the original, so the
// router can restart passes from a pristine graph.
func (g *Graph) Clone() *Graph {
	return &Graph{
		n:       g.n,
		eu:      append([]NodeID(nil), g.eu...),
		ev:      append([]NodeID(nil), g.ev...),
		w:       append([]float64(nil), g.w...),
		enabled: append([]uint64(nil), g.enabled...),
		offsets: append([]int32(nil), g.offsets...),
		arcs:    append([]Arc(nil), g.arcs...),
		arcw:    append([]float64(nil), g.arcw...),
		slots:   append([]int32(nil), g.slots...),
		dirty:   g.dirty,
	}
}

// EnabledEdgeCount returns the number of currently enabled edges.
func (g *Graph) EnabledEdgeCount() int {
	c := 0
	for _, word := range g.enabled {
		c += bits.OnesCount64(word)
	}
	return c
}

// TotalWeight returns the sum of the weights of the given edges.
func (g *Graph) TotalWeight(ids []EdgeID) float64 {
	t := 0.0
	for _, id := range ids {
		t += g.w[id]
	}
	return t
}
