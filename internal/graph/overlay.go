package graph

import "fpgarouter/internal/faultpoint"

// Overlay layers routing state over a frozen graph without touching it: a
// per-edge additive price and a per-node blocked bitset. A search run under
// an overlay sees edge id with effective weight Weight(id) + Price(id) and
// never relaxes into a blocked node. Because the graph itself stays
// read-only, any number of goroutines may search concurrently, each under
// its own overlay — this is how the net-parallel negotiated-congestion
// router (internal/pathfinder) routes every net of an iteration against the
// same frozen CSR arrays, and how internal/congest accumulates pre-routing
// congestion without mutating the shared grid mid-sweep.
//
// Contract: prices must be non-negative and finite wherever searches run
// (disabled edges already carry +Inf in the base weights, which any finite
// price preserves), and an overlay must be quiescent while a search or an
// SPTCache using it is live. Non-negative prices also preserve the
// admissibility of coordinate lower bounds (see Bounds): effective weights
// only grow from the geometric base lengths, so goal-directed searches stay
// exact under every pricing state.
type Overlay struct {
	price   []float64
	blocked []uint64
}

// NewOverlay returns a zero overlay (no prices, nothing blocked) sized for
// g's current node and edge counts.
func NewOverlay(g *Graph) *Overlay {
	return &Overlay{
		price:   make([]float64, g.NumEdges()),
		blocked: make([]uint64, (g.NumNodes()+63)/64),
	}
}

// Prices exposes the overlay's per-edge price slice, indexed by EdgeID. The
// slice is live — writes through it are seen by subsequent searches — so
// bulk loads (copy from a shared price array) go through here.
func (o *Overlay) Prices() []float64 { return o.price }

// Price returns the additive price of edge id.
func (o *Overlay) Price(id EdgeID) float64 { return o.price[id] }

// AddPrice adds d to edge id's price.
func (o *Overlay) AddPrice(id EdgeID, d float64) { o.price[id] += d }

// Block marks node v as blocked: searches will not relax into it.
func (o *Overlay) Block(v NodeID) { o.blocked[v>>6] |= 1 << (uint(v) & 63) }

// Unblock clears v's blocked mark.
func (o *Overlay) Unblock(v NodeID) { o.blocked[v>>6] &^= 1 << (uint(v) & 63) }

// Blocked reports whether v is blocked.
func (o *Overlay) Blocked(v NodeID) bool {
	return o.blocked[v>>6]&(1<<(uint(v)&63)) != 0
}

// BlockedWords exposes the blocked bitset as 64-bit words (node v is bit
// v&63 of word v>>6), for callers that maintain a reusable template.
func (o *Overlay) BlockedWords() []uint64 { return o.blocked }

// LoadBlocked overwrites the blocked bitset from a template of the same
// word length (the pathfinder's all-pins-blocked template, per net).
func (o *Overlay) LoadBlocked(words []uint64) { copy(o.blocked, words) }

// dijkstraOverlayWith is dijkstraWith under an overlay: identical control
// flow (early stop once the stop set is settled, deterministic tie-breaks by
// arc order), with each arc's weight read as base + price and relaxations
// into blocked nodes skipped. The source must not be blocked.
func (g *Graph) dijkstraOverlayWith(s *DijkstraScratch, src NodeID, stop []NodeID, ov *Overlay) *SPT {
	faultpoint.Check(faultpoint.SSSPExpand)
	g.ensureCSR()
	n := g.n
	ep := s.beginRun(n)
	t := s.acquireSPT(n, src)
	remaining := -1
	if stop != nil {
		remaining = 0
		for _, v := range stop {
			if s.stop[v] != ep {
				s.stop[v] = ep
				remaining++
			}
		}
		if s.stop[src] != ep {
			s.stop[src] = ep
			remaining++
		}
	}
	price := ov.price
	blocked := ov.blocked
	t.Dist[src] = 0
	s.heap = s.heap[:0]
	q := &s.heap
	q.push(pqItem{0, src})
	s.HeapPushes++
	for len(*q) > 0 {
		it := q.pop()
		u := it.node
		if s.done[u] == ep {
			continue
		}
		s.done[u] = ep
		s.Settled++
		if remaining >= 0 && s.stop[u] == ep {
			remaining--
			if remaining == 0 {
				for v := 0; v < n; v++ {
					if s.done[v] != ep {
						t.Dist[v] = inf
						t.ParentEdge[v] = None
						t.ParentNode[v] = None
					}
				}
				return t
			}
		}
		du := t.Dist[u]
		as := g.arcs[g.offsets[u]:g.offsets[u+1]]
		ws := g.arcw[g.offsets[u]:g.offsets[u+1]]
		ws = ws[:len(as)]
		for k := range as {
			to := as[k].To
			nd := du + ws[k] + price[as[k].ID]
			if nd < t.Dist[to] {
				if blocked[to>>6]&(1<<(uint(to)&63)) != 0 {
					continue
				}
				t.Dist[to] = nd
				t.ParentEdge[to] = as[k].ID
				t.ParentNode[to] = u
				q.push(pqItem{nd, to})
				s.HeapPushes++
			}
		}
	}
	return t
}

// goalDirectedOverlay is goalDirected under an overlay: A* toward the stop
// set with heap keys Dist + h over priced effective weights. h must be
// admissible and consistent for base + price (non-negative prices keep any
// base-admissible bound valid, since effective weights only grow).
func (g *Graph) goalDirectedOverlay(s *DijkstraScratch, src NodeID, stop []NodeID, ov *Overlay, h func(NodeID) float64) *SPT {
	faultpoint.Check(faultpoint.SSSPExpand)
	g.ensureCSR()
	n := g.n
	ep := s.beginRun(n)
	t := s.acquireSPT(n, src)
	remaining := 0
	for _, v := range stop {
		if s.stop[v] != ep {
			s.stop[v] = ep
			remaining++
		}
	}
	if s.stop[src] != ep {
		s.stop[src] = ep
		remaining++
	}
	price := ov.price
	blocked := ov.blocked
	t.Dist[src] = 0
	s.heap = s.heap[:0]
	q := &s.heap
	q.push(pqItem{h(src), src})
	s.HeapPushes++
	for len(*q) > 0 {
		u := q.pop().node
		if s.done[u] == ep {
			continue
		}
		s.done[u] = ep
		s.Settled++
		if s.stop[u] == ep {
			remaining--
			if remaining == 0 {
				for v := 0; v < n; v++ {
					if s.done[v] != ep {
						t.Dist[v] = inf
						t.ParentEdge[v] = None
						t.ParentNode[v] = None
					}
				}
				return t
			}
		}
		du := t.Dist[u]
		as := g.arcs[g.offsets[u]:g.offsets[u+1]]
		ws := g.arcw[g.offsets[u]:g.offsets[u+1]]
		ws = ws[:len(as)]
		for k := range as {
			to := as[k].To
			nd := du + ws[k] + price[as[k].ID]
			if nd < t.Dist[to] {
				if blocked[to>>6]&(1<<(uint(to)&63)) != 0 {
					continue
				}
				t.Dist[to] = nd
				t.ParentEdge[to] = as[k].ID
				t.ParentNode[to] = u
				q.push(pqItem{nd + h(to), to})
				s.HeapPushes++
			}
		}
	}
	return t
}

// BiDijkstraOverlay is BiDijkstra under an overlay: a bidirectional
// point-to-point search over priced effective weights that never enters
// blocked nodes. Same exactness contract as BiDijkstra (the cost is exact,
// its rounding and the chosen path may differ from a forward search on
// floating-point ties). Neither endpoint may be blocked.
func (g *Graph) BiDijkstraOverlay(s *DijkstraScratch, src, goal NodeID, ov *Overlay) (float64, []EdgeID, bool) {
	if s == nil {
		s = AcquireScratch()
		defer ReleaseScratch(s)
	}
	faultpoint.Check(faultpoint.SSSPExpand)
	g.ensureCSR()
	if src == goal {
		return 0, []EdgeID{}, true
	}
	n := g.n
	ep := s.beginRun(n)
	tf := s.acquireSPT(n, src)
	tb := s.acquireSPT(n, goal)
	defer func() {
		s.RecycleSPT(tb)
		s.RecycleSPT(tf)
	}()
	price := ov.price
	blocked := ov.blocked
	tf.Dist[src] = 0
	tb.Dist[goal] = 0
	s.heap = s.heap[:0]
	s.heapB = s.heapB[:0]
	qf, qb := &s.heap, &s.heapB
	qf.push(pqItem{0, src})
	qb.push(pqItem{0, goal})
	s.HeapPushes += 2
	best := inf
	meet := None

	expand := func(q *pq, done []uint32, mine, other *SPT) {
		u := q.pop().node
		if done[u] == ep {
			return
		}
		done[u] = ep
		s.Settled++
		du := mine.Dist[u]
		if c := du + other.Dist[u]; c < best {
			best = c
			meet = u
		}
		as := g.arcs[g.offsets[u]:g.offsets[u+1]]
		ws := g.arcw[g.offsets[u]:g.offsets[u+1]]
		ws = ws[:len(as)]
		for k := range as {
			to := as[k].To
			nd := du + ws[k] + price[as[k].ID]
			if nd < mine.Dist[to] {
				if blocked[to>>6]&(1<<(uint(to)&63)) != 0 {
					continue
				}
				mine.Dist[to] = nd
				mine.ParentEdge[to] = as[k].ID
				mine.ParentNode[to] = u
				q.push(pqItem{nd, to})
				s.HeapPushes++
				if c := nd + other.Dist[to]; c < best {
					best = c
					meet = to
				}
			}
		}
	}

	for len(*qf) > 0 || len(*qb) > 0 {
		topF, topB := inf, inf
		if len(*qf) > 0 {
			topF = (*qf)[0].dist
		}
		if len(*qb) > 0 {
			topB = (*qb)[0].dist
		}
		if topF+topB >= best {
			break
		}
		if topF <= topB {
			expand(qf, s.done, tf, tb)
		} else {
			expand(qb, s.doneB, tb, tf)
		}
	}
	if meet == None {
		return inf, nil, false
	}
	path := tf.PathTo(meet)
	back := tb.PathTo(meet)
	for i := len(back) - 1; i >= 0; i-- {
		path = append(path, back[i])
	}
	return best, path, true
}
