package graph

import (
	"errors"
	"sort"
)

// ErrDisconnected is returned when a spanning structure is requested over a
// graph (or node subset) that is not connected through enabled edges.
var ErrDisconnected = errors.New("graph: not connected")

// KruskalMST returns the edge IDs of a minimum spanning tree over the
// enabled edges of g, or ErrDisconnected. Ties are broken by edge ID so the
// result is deterministic.
func (g *Graph) KruskalMST() ([]EdgeID, error) {
	ids := make([]EdgeID, 0, len(g.edges))
	for i := range g.edges {
		if g.edges[i].Enabled {
			ids = append(ids, EdgeID(i))
		}
	}
	sort.Slice(ids, func(a, b int) bool {
		wa, wb := g.edges[ids[a]].W, g.edges[ids[b]].W
		if wa != wb {
			return wa < wb
		}
		return ids[a] < ids[b]
	})
	uf := NewUnionFind(g.n)
	mst := make([]EdgeID, 0, g.n-1)
	for _, id := range ids {
		e := g.edges[id]
		if uf.Union(e.U, e.V) {
			mst = append(mst, id)
			if len(mst) == g.n-1 {
				break
			}
		}
	}
	if len(mst) != g.n-1 && g.n > 1 {
		return nil, ErrDisconnected
	}
	return mst, nil
}

// PrimMST returns a minimum spanning tree over the enabled edges of g grown
// from node start, or ErrDisconnected. It is the cross-oracle for Kruskal in
// tests and the MST of choice on the dense distance graphs built by the
// Steiner heuristics.
func (g *Graph) PrimMST(start NodeID) ([]EdgeID, error) {
	if g.n == 0 {
		return nil, nil
	}
	inTree := make([]bool, g.n)
	best := make([]float64, g.n)
	bestEdge := make([]EdgeID, g.n)
	for i := range best {
		best[i] = Inf
		bestEdge[i] = None
	}
	best[start] = 0
	q := make(pq, 0, 64)
	q.push(pqItem{0, start})
	mst := make([]EdgeID, 0, g.n-1)
	for len(q) > 0 {
		it := q.pop()
		u := it.node
		if inTree[u] {
			continue
		}
		inTree[u] = true
		if bestEdge[u] != None {
			mst = append(mst, bestEdge[u])
		}
		for _, a := range g.adj[u] {
			e := &g.edges[a.ID]
			if !e.Enabled || inTree[a.To] {
				continue
			}
			if e.W < best[a.To] {
				best[a.To] = e.W
				bestEdge[a.To] = a.ID
				q.push(pqItem{e.W, a.To})
			}
		}
	}
	if len(mst) != g.n-1 && g.n > 1 {
		return nil, ErrDisconnected
	}
	return mst, nil
}

// MSTCost returns the total weight of a minimum spanning tree over the
// enabled edges, or ErrDisconnected.
func (g *Graph) MSTCost() (float64, error) {
	mst, err := g.PrimMST(0)
	if err != nil {
		return 0, err
	}
	return g.TotalWeight(mst), nil
}
