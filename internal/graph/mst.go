package graph

import (
	"errors"
	"slices"
)

// ErrDisconnected is returned when a spanning structure is requested over a
// graph (or node subset) that is not connected through enabled edges.
var ErrDisconnected = errors.New("graph: not connected")

// KruskalMST returns the edge IDs of a minimum spanning tree over the
// enabled edges of g, or ErrDisconnected. Ties are broken by edge ID so the
// result is deterministic.
func (g *Graph) KruskalMST() ([]EdgeID, error) {
	ids := make([]EdgeID, 0, len(g.eu))
	for i := range g.eu {
		if g.enabledBit(EdgeID(i)) {
			ids = append(ids, EdgeID(i))
		}
	}
	slices.SortFunc(ids, func(a, b EdgeID) int {
		wa, wb := g.w[a], g.w[b]
		if wa != wb {
			if wa < wb {
				return -1
			}
			return 1
		}
		return int(a) - int(b)
	})
	uf := NewUnionFind(g.n)
	mst := make([]EdgeID, 0, g.n-1)
	for _, id := range ids {
		if uf.Union(g.eu[id], g.ev[id]) {
			mst = append(mst, id)
			if len(mst) == g.n-1 {
				break
			}
		}
	}
	if len(mst) != g.n-1 && g.n > 1 {
		return nil, ErrDisconnected
	}
	return mst, nil
}

// PrimMST returns a minimum spanning tree over the enabled edges of g grown
// from node start, or ErrDisconnected. It is the cross-oracle for Kruskal in
// tests and the MST of choice on the dense distance graphs built by the
// Steiner heuristics.
func (g *Graph) PrimMST(start NodeID) ([]EdgeID, error) {
	if g.n == 0 {
		return nil, nil
	}
	g.ensureCSR()
	inTree := make([]bool, g.n)
	best := make([]float64, g.n)
	bestEdge := make([]EdgeID, g.n)
	for i := range best {
		best[i] = inf
		bestEdge[i] = None
	}
	best[start] = 0
	q := make(pq, 0, 64)
	q.push(pqItem{0, start})
	mst := make([]EdgeID, 0, g.n-1)
	for len(q) > 0 {
		it := q.pop()
		u := it.node
		if inTree[u] {
			continue
		}
		inTree[u] = true
		if bestEdge[u] != None {
			mst = append(mst, bestEdge[u])
		}
		for i, end := g.offsets[u], g.offsets[u+1]; i < end; i++ {
			to := g.arcs[i].To
			if inTree[to] {
				continue
			}
			// Disabled arcs carry +Inf here, so they never improve best.
			if w := g.arcw[i]; w < best[to] {
				best[to] = w
				bestEdge[to] = g.arcs[i].ID
				q.push(pqItem{w, to})
			}
		}
	}
	if len(mst) != g.n-1 && g.n > 1 {
		return nil, ErrDisconnected
	}
	return mst, nil
}

// MSTCost returns the total weight of a minimum spanning tree over the
// enabled edges, or ErrDisconnected.
func (g *Graph) MSTCost() (float64, error) {
	mst, err := g.PrimMST(0)
	if err != nil {
		return 0, err
	}
	return g.TotalWeight(mst), nil
}
