package graph

import (
	"math/rand"
	"sync"
	"testing"
)

// TestForkSharesBaseTrees checks that a fork reads the base cache's
// established trees without recomputing them, while new roots computed
// through the fork stay private to it.
func TestForkSharesBaseTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := RandomConnected(rng, 40, 200, 10)
	base := NewSPTCache(g)
	baseTree := base.Tree(0)

	f := base.Fork(NewDijkstraScratch())
	if got := f.Tree(0); got != baseTree {
		t.Fatal("fork recomputed a tree the base already holds")
	}
	if f.Runs != 0 {
		t.Fatalf("fork ran %d Dijkstras for a base-cached root", f.Runs)
	}

	// A miss computes privately: visible through the fork, not the base.
	f.Tree(5)
	if f.Runs != 1 {
		t.Fatalf("fork Runs = %d, want 1", f.Runs)
	}
	if _, ok := base.CachedTree(5); ok {
		t.Fatal("fork leaked a private tree into the base cache")
	}
	if _, ok := f.CachedTree(5); !ok {
		t.Fatal("fork lost its own private tree")
	}

	// Symmetric lookups through the fork agree with the base.
	for v := 1; v < 10; v++ {
		if f.Dist(0, NodeID(v)) != base.Dist(0, NodeID(v)) {
			t.Fatalf("fork Dist(0,%d) diverges from base", v)
		}
	}
	f.Release()
}

// TestForkConcurrentReads exercises many forks of one frozen base cache
// from concurrent goroutines; run under -race this is the memory-safety
// proof for the parallel candidate scan.
func TestForkConcurrentReads(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := RandomConnected(rng, 60, 300, 10)
	base := NewSPTCache(g)
	// Pre-settle the "established" roots, then freeze the base.
	for v := 0; v < 8; v++ {
		base.Tree(NodeID(v))
	}

	const workers = 8
	dist := make([][]float64, workers)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			scr := AcquireScratch()
			f := base.Fork(scr)
			defer func() {
				f.Release()
				ReleaseScratch(scr)
			}()
			// Mix base-tree reads, symmetric lookups, private Dijkstras,
			// path expansions, and epoch-set use, per worker.
			var ds []float64
			for v := 0; v < g.NumNodes(); v++ {
				ds = append(ds, f.Dist(0, NodeID(v)))
			}
			cand := NodeID(10 + k)
			f.Tree(cand)
			for v := 0; v < 8; v++ {
				ds = append(ds, f.Dist(cand, NodeID(v)))
				if len(f.Path(NodeID(v), cand)) == 0 && cand != NodeID(v) {
					t.Errorf("worker %d: empty path %d->%d", k, v, cand)
				}
			}
			set := f.NodeSet()
			for v := 0; v < 8; v++ {
				set.Add(NodeID(v))
			}
			dist[k] = ds
		}(k)
	}
	wg.Wait()

	// Every worker saw identical distances (same frozen base, same graph).
	for k := 1; k < workers; k++ {
		for i := range dist[0] {
			if i >= g.NumNodes() {
				break // candidate-relative tail differs per worker by design
			}
			if dist[k][i] != dist[0][i] {
				t.Fatalf("worker %d dist[%d] = %v, worker 0 saw %v", k, i, dist[k][i], dist[0][i])
			}
		}
	}
}
