package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// gridBounds builds the exact CoordBounds for a GridGraph: node (x, y) at
// coordinate (x, y). With unit weights the Manhattan bound is tight; with
// weights ≥ 1 it stays admissible and consistent.
func gridBounds(g *GridGraph) *CoordBounds {
	b := &CoordBounds{X: make([]float64, g.NumNodes()), Y: make([]float64, g.NumNodes())}
	for v := 0; v < g.NumNodes(); v++ {
		x, y := g.Coords(NodeID(v))
		b.X[v], b.Y[v] = float64(x), float64(y)
	}
	return b
}

// Property: on grids with random weights ≥ 1, random disables and random
// endpoints, AStar's goal distance is bit-identical to Dijkstra's, its
// path cost equals that distance, and it settles no more nodes.
func TestQuickAStarExactOnGrids(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, h := 3+rng.Intn(10), 3+rng.Intn(10)
		g := NewGrid(w, h, 1)
		b := gridBounds(g)
		for i := 0; i < g.NumEdges(); i++ {
			if rng.Intn(3) == 0 {
				g.SetWeight(EdgeID(i), 1+rng.Float64()*4)
			}
			if rng.Intn(8) == 0 {
				g.SetEnabled(EdgeID(i), false)
			}
		}
		src := NodeID(rng.Intn(g.NumNodes()))
		goal := NodeID(rng.Intn(g.NumNodes()))
		s1, s2 := NewDijkstraScratch(), NewDijkstraScratch()
		ref := g.Graph.dijkstraWith(s1, src, []NodeID{goal})
		ast := g.Graph.AStar(s2, src, goal, b)
		if ast.Dist[goal] != ref.Dist[goal] {
			t.Logf("seed %d: A* dist %v, dijkstra %v", seed, ast.Dist[goal], ref.Dist[goal])
			return false
		}
		if ast.Reachable(goal) {
			p := ast.PathTo(goal)
			if math.Abs(g.TotalWeight(p)-ast.Dist[goal]) > 1e-9 {
				t.Logf("seed %d: path cost %v vs dist %v", seed, g.TotalWeight(p), ast.Dist[goal])
				return false
			}
		}
		if s2.Settled > s1.Settled {
			t.Logf("seed %d: A* settled %d > dijkstra %d", seed, s2.Settled, s1.Settled)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: DijkstraWithinBounded reports exactly DijkstraWithin's
// distances on every stop node — including heavily disabled graphs where
// parts of the stop set are unreachable — and unsettled nodes read
// unreachable, never stale.
func TestQuickDijkstraWithinBoundedExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, h := 3+rng.Intn(8), 3+rng.Intn(8)
		g := NewGrid(w, h, 1)
		b := gridBounds(g)
		// Disable aggressively: about half the edges, fragmenting the grid.
		for i := 0; i < g.NumEdges(); i++ {
			if rng.Intn(2) == 0 {
				g.SetEnabled(EdgeID(i), false)
			}
		}
		src := NodeID(rng.Intn(g.NumNodes()))
		stop := RandomNet(rng, g.Graph, 1+rng.Intn(g.NumNodes()/2))
		ref := g.Graph.DijkstraWithin(src, stop)
		got := g.Graph.DijkstraWithinBounded(nil, src, stop, b)
		for _, v := range stop {
			if math.IsInf(ref.Dist[v], 1) != math.IsInf(got.Dist[v], 1) {
				t.Logf("seed %d: node %d reachability differs", seed, v)
				return false
			}
			if got.Dist[v] != ref.Dist[v] {
				t.Logf("seed %d: node %d dist %v vs %v", seed, v, got.Dist[v], ref.Dist[v])
				return false
			}
			if got.Reachable(v) {
				p := got.PathTo(v)
				if math.Abs(g.TotalWeight(p)-got.Dist[v]) > 1e-9 {
					return false
				}
			}
		}
		for v := 0; v < g.NumNodes(); v++ {
			if !got.Reachable(NodeID(v)) && !math.IsInf(got.Dist[v], 1) {
				t.Logf("seed %d: unsettled node %d has finite dist %v", seed, v, got.Dist[v])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: BiDijkstra's cost matches Dijkstra's within floating-point
// tolerance (the two half-sums fold in a different order), its edge path
// is a real src→goal path of that cost, and disconnection is reported
// exactly when Dijkstra reports it.
func TestQuickBiDijkstraExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(50)
		g := RandomConnected(rng, n, n*3, 8)
		for i := 0; i < g.NumEdges()/3; i++ {
			g.SetEnabled(EdgeID(rng.Intn(g.NumEdges())), false)
		}
		src := NodeID(rng.Intn(n))
		goal := NodeID(rng.Intn(n))
		ref := g.DijkstraWithin(src, []NodeID{goal})
		cost, path, ok := g.BiDijkstra(nil, src, goal)
		if ok != ref.Reachable(goal) {
			t.Logf("seed %d: ok=%v but reachable=%v", seed, ok, ref.Reachable(goal))
			return false
		}
		if !ok {
			return true
		}
		if math.Abs(cost-ref.Dist[goal]) > 1e-9 {
			t.Logf("seed %d: cost %v vs %v", seed, cost, ref.Dist[goal])
			return false
		}
		if math.Abs(g.TotalWeight(path)-cost) > 1e-9 {
			t.Logf("seed %d: path cost %v vs %v", seed, g.TotalWeight(path), cost)
			return false
		}
		// The edge sequence must be walkable src→goal.
		at := src
		for _, id := range path {
			e := g.Edge(id)
			switch at {
			case e.U:
				at = e.V
			case e.V:
				at = e.U
			default:
				t.Logf("seed %d: path breaks at node %d edge %d", seed, at, id)
				return false
			}
		}
		if at != goal {
			t.Logf("seed %d: path ends at %d, want %d", seed, at, goal)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBiDijkstraTrivialAndDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	// src == goal: empty path, zero cost.
	if c, p, ok := g.BiDijkstra(nil, 2, 2); !ok || c != 0 || len(p) != 0 {
		t.Fatalf("self route: %v %v %v", c, p, ok)
	}
	// 0 and 3 are disconnected.
	if _, _, ok := g.BiDijkstra(nil, 0, 3); ok {
		t.Fatal("disconnected pair reported routable")
	}
}

// A* under a nontrivial bound must settle strictly fewer nodes than plain
// Dijkstra on an open grid corner-to-corner run — the point of the whole
// exercise. (Strictness holds here because the goal is the farthest node:
// Dijkstra settles everything, A* only the diagonal band.)
func TestAStarExpandsFewerOnOpenGrid(t *testing.T) {
	g := NewGrid(20, 20, 1)
	b := gridBounds(g)
	src, goal := g.Node(0, 0), g.Node(19, 19)
	s1, s2 := NewDijkstraScratch(), NewDijkstraScratch()
	ref := g.Graph.dijkstraWith(s1, src, []NodeID{goal})
	ast := g.Graph.AStar(s2, src, goal, b)
	if ast.Dist[goal] != ref.Dist[goal] {
		t.Fatalf("dist %v vs %v", ast.Dist[goal], ref.Dist[goal])
	}
	if s2.Settled >= s1.Settled {
		t.Fatalf("A* settled %d, dijkstra %d — no pruning", s2.Settled, s1.Settled)
	}
}

// Property: LandmarkBounds lower bounds are admissible (≤ true distance)
// and AStar under them returns exact distances, on random graphs both
// as built and after monotone weight increases and disables — the only
// mutations the landmark bound survives.
func TestQuickLandmarkBoundsAdmissibleAndExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		g := RandomConnected(rng, n, n*2, 8)
		lm := RandomNet(rng, g, 1+rng.Intn(3))
		b := NewLandmarkBounds(g, lm)
		// Monotone perturbations only: weights may grow, edges may disable.
		for i := 0; i < g.NumEdges()/6; i++ {
			id := EdgeID(rng.Intn(g.NumEdges()))
			g.SetWeight(id, g.Weight(id)*(1+rng.Float64()))
		}
		for i := 0; i < g.NumEdges()/8; i++ {
			g.SetEnabled(EdgeID(rng.Intn(g.NumEdges())), false)
		}
		src := NodeID(rng.Intn(n))
		full := g.Dijkstra(src)
		for v := 0; v < n; v++ {
			lb := b.LowerBound(src, NodeID(v))
			if !math.IsInf(full.Dist[v], 1) && lb > full.Dist[v]+1e-9 {
				t.Logf("seed %d: bound %v > dist %v for %d→%d", seed, lb, full.Dist[v], src, v)
				return false
			}
		}
		goal := NodeID(rng.Intn(n))
		ast := g.AStar(nil, src, goal, b)
		if math.IsInf(full.Dist[goal], 1) != math.IsInf(ast.Dist[goal], 1) {
			return false
		}
		if !math.IsInf(full.Dist[goal], 1) && math.Abs(ast.Dist[goal]-full.Dist[goal]) > 1e-9 {
			t.Logf("seed %d: A*+landmarks %v vs dijkstra %v", seed, ast.Dist[goal], full.Dist[goal])
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// ToSet on a multi-goal set must lower-bound the distance to the nearest
// goal, for both bound implementations.
func TestQuickToSetAdmissible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, h := 3+rng.Intn(8), 3+rng.Intn(8)
		g := NewGrid(w, h, 1)
		cb := gridBounds(g)
		lmb := NewLandmarkBounds(g.Graph, RandomNet(rng, g.Graph, 2))
		goals := RandomNet(rng, g.Graph, 1+rng.Intn(5))
		for _, b := range []Bounds{cb, lmb} {
			h := b.ToSet(goals)
			for v := 0; v < g.NumNodes(); v++ {
				best := math.Inf(1)
				spt := g.Dijkstra(NodeID(v))
				for _, gl := range goals {
					if spt.Dist[gl] < best {
						best = spt.Dist[gl]
					}
				}
				if hv := h(NodeID(v)); hv > best+1e-9 {
					t.Logf("seed %d: ToSet %v > nearest-goal dist %v at node %d", seed, hv, best, v)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// SPTCache.WithBounds routes Tree calls through the goal-directed search;
// distances on the stop set must match the unbounded cache exactly, and
// the bounded cache must do no more settling work.
func TestSPTCacheWithBoundsParity(t *testing.T) {
	g := NewGrid(12, 12, 1)
	b := gridBounds(g)
	stop := []NodeID{g.Node(1, 1), g.Node(3, 2), g.Node(2, 4)}
	s1, s2 := NewDijkstraScratch(), NewDijkstraScratch()
	plain := NewSPTCacheWithin(g.Graph, stop).WithScratch(s1)
	bounded := NewSPTCacheWithin(g.Graph, stop).WithScratch(s2).WithBounds(b)
	for _, src := range stop {
		tp, tb := plain.Tree(src), bounded.Tree(src)
		for _, v := range stop {
			if tp.Dist[v] != tb.Dist[v] {
				t.Fatalf("src %d goal %d: %v vs %v", src, v, tp.Dist[v], tb.Dist[v])
			}
		}
	}
	if s2.Settled > s1.Settled {
		t.Fatalf("bounded cache settled %d > plain %d", s2.Settled, s1.Settled)
	}
	// Fork must carry the bounds along.
	fs := NewDijkstraScratch()
	fork := bounded.Fork(fs)
	tr := fork.Tree(g.Node(1, 1))
	if tr.Dist[g.Node(3, 2)] != 3 {
		t.Fatalf("fork dist = %v", tr.Dist[g.Node(3, 2)])
	}
}
