package graph

import "fpgarouter/internal/faultpoint"

// SPT is a single-source shortest-paths tree produced by Dijkstra.
//
// Dist[v] is the cost of a shortest path from Source to v (inf if v is
// unreachable through enabled edges). ParentEdge[v] is the edge used to
// reach v on one such shortest path (None for the source and unreachable
// nodes); ParentNode[v] is the corresponding predecessor.
type SPT struct {
	Source     NodeID
	Dist       []float64
	ParentEdge []EdgeID
	ParentNode []NodeID
}

// pqItem is an entry in the Dijkstra priority queue. The queue is a plain
// binary heap with lazy deletion: stale entries are skipped on pop.
type pqItem struct {
	dist float64
	node NodeID
}

type pq []pqItem

func (q *pq) push(it pqItem) {
	*q = append(*q, it)
	i := len(*q) - 1
	h := *q
	for i > 0 {
		p := (i - 1) / 2
		if h[p].dist <= h[i].dist {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func (q *pq) pop() pqItem {
	h := *q
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h[l].dist < h[small].dist {
			small = l
		}
		if r < len(h) && h[r].dist < h[small].dist {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	*q = h
	return top
}

// Dijkstra computes shortest paths from src over the enabled edges of g.
// Ties are broken deterministically by edge insertion order, so repeated
// runs on the same graph yield identical trees.
func (g *Graph) Dijkstra(src NodeID) *SPT {
	s := AcquireScratch()
	defer ReleaseScratch(s)
	return g.dijkstraWith(s, src, nil)
}

// DijkstraWithin computes shortest paths from src but stops as soon as
// every node of stop has been settled; nodes not settled by then are
// reported unreachable (Dist = Inf). Distances and paths for stop nodes are
// exact — the search is not constrained to any region, it merely terminates
// early — so this is a pure optimization for callers that only query a
// known node subset (the router's per-net caches).
func (g *Graph) DijkstraWithin(src NodeID, stop []NodeID) *SPT {
	s := AcquireScratch()
	defer ReleaseScratch(s)
	return g.dijkstraWith(s, src, stop)
}

// DijkstraWithinScratch is DijkstraWithin on a caller-provided scratch (nil
// falls back to the pool): the warm-path entry for callers that manage
// their own scratch lifetime, and the timed loop of the SSSP_CSR
// microbenchmark (LegacyDijkstra is its baseline pair).
func (g *Graph) DijkstraWithinScratch(s *DijkstraScratch, src NodeID, stop []NodeID) *SPT {
	if s == nil {
		s = AcquireScratch()
		defer ReleaseScratch(s)
	}
	return g.dijkstraWith(s, src, stop)
}

// dijkstraWith is the single Dijkstra implementation: all working state
// (heap, settled marks, stop-set marks) lives in the scratch and the
// returned SPT comes off its free list, so a warm scratch runs without
// allocating. A nil stop slice settles the whole graph.
//
// The relaxation loop streams the CSR arc and weight arrays. Disabled edges
// carry +inf in the weight stream, so `du + arcw[i] < Dist[to]` rejects
// them with no flag lookup; per-node arc order equals edge-insertion order
// (see rebuildCSR), which keeps distances, parents and the heap-push/settle
// counters bit-identical to the pre-CSR adjacency-list implementation
// (LegacyDijkstra, retained as the parity oracle).
func (g *Graph) dijkstraWith(s *DijkstraScratch, src NodeID, stop []NodeID) *SPT {
	faultpoint.Check(faultpoint.SSSPExpand)
	g.ensureCSR()
	n := g.n
	ep := s.beginRun(n)
	t := s.acquireSPT(n, src)
	remaining := -1 // < 0: no early termination
	if stop != nil {
		remaining = 0
		for _, v := range stop {
			if s.stop[v] != ep {
				s.stop[v] = ep
				remaining++
			}
		}
		if s.stop[src] != ep {
			s.stop[src] = ep
			remaining++
		}
	}
	t.Dist[src] = 0
	s.heap = s.heap[:0]
	q := &s.heap
	q.push(pqItem{0, src})
	s.HeapPushes++
	for len(*q) > 0 {
		it := q.pop()
		u := it.node
		if s.done[u] == ep {
			continue
		}
		s.done[u] = ep
		s.Settled++
		if remaining >= 0 && s.stop[u] == ep {
			remaining--
			if remaining == 0 {
				// Every requested node is settled; invalidate tentative
				// state of unsettled nodes so they read as unreachable
				// rather than carrying half-relaxed distances.
				for v := 0; v < n; v++ {
					if s.done[v] != ep {
						t.Dist[v] = inf
						t.ParentEdge[v] = None
						t.ParentNode[v] = None
					}
				}
				return t
			}
		}
		du := t.Dist[u]
		// No settled check per arc: a settled node's distance is final and
		// weights are non-negative, so nd = du + w ≥ du ≥ Dist[to] and the
		// improvement test rejects it anyway — same pushes, same counters,
		// one fewer random load per arc. Sub-slicing arcs/weights to the
		// node's range lets the compiler drop the per-arc bounds checks.
		as := g.arcs[g.offsets[u]:g.offsets[u+1]]
		ws := g.arcw[g.offsets[u]:g.offsets[u+1]]
		ws = ws[:len(as)]
		for k := range as {
			to := as[k].To
			nd := du + ws[k]
			if nd < t.Dist[to] {
				t.Dist[to] = nd
				t.ParentEdge[to] = as[k].ID
				t.ParentNode[to] = u
				q.push(pqItem{nd, to})
				s.HeapPushes++
			}
		}
	}
	return t
}

// PathTo returns the edge IDs of the tree path from the source to v, in
// source-to-v order, or nil if v is unreachable. For v == Source it returns
// an empty (non-nil) slice.
func (t *SPT) PathTo(v NodeID) []EdgeID {
	if t.Dist[v] == inf {
		return nil
	}
	var rev []EdgeID
	for u := v; t.ParentEdge[u] != None; u = t.ParentNode[u] {
		rev = append(rev, t.ParentEdge[u])
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	if rev == nil {
		rev = []EdgeID{}
	}
	return rev
}

// Reachable reports whether v is reachable from the source.
func (t *SPT) Reachable(v NodeID) bool { return t.Dist[v] != inf }

// SPTCache memoizes Dijkstra trees by source node. The iterated
// constructions (IGMST, IDOM) evaluate their base heuristic for many
// candidate Steiner nodes on the same graph; the cache ensures each distinct
// source is expanded exactly once per graph state.
//
// The cache MUST be invalidated (discarded) whenever edge weights or enable
// flags change; it performs no change detection by design — algorithms in
// this repository route a net against a frozen graph state, then mutate.
//
// Every cache is backed by a DijkstraScratch: either one attached by the
// caller (WithScratch — the router threads one per-goroutine scratch
// through all nets of a pass) or a private one created lazily. Release
// recycles all cached trees into the scratch so the next net's cache reuses
// their buffers.
//
// A cache alone is not safe for concurrent use. For parallel candidate
// evaluation, Fork splits it into a read-only snapshot (the base cache,
// frozen for the forks' lifetime) plus per-worker private state; see Fork.
type SPTCache struct {
	g       *Graph
	trees   map[NodeID]*SPT
	stop    []NodeID // optional early-termination set (nil = settle all)
	scratch *DijkstraScratch
	// base, when non-nil, is the frozen snapshot this cache was forked from:
	// lookups fall through to its trees, writes stay private (see Fork).
	base *SPTCache
	// bounds, when non-nil alongside a stop set, turns cache misses into
	// goal-directed searches (DijkstraWithinBounded): expansion is biased
	// toward the stop set by an admissible lower bound. Distances to stop
	// nodes stay exact; see WithBounds for the tie-break caveat.
	bounds Bounds
	// overlay, when non-nil, prices and blocks the cache's searches without
	// mutating g (see Overlay); EdgeWeight reads through it so that tree
	// constructions sorting by weight see the same effective costs the
	// searches did. The overlay must stay quiescent while the cache is live.
	overlay *Overlay
	// Runs counts actual Dijkstra executions, exposed for ablation benches.
	Runs int
}

// NewSPTCache returns an empty cache over g.
func NewSPTCache(g *Graph) *SPTCache {
	return &SPTCache{g: g, trees: make(map[NodeID]*SPT)}
}

// NewSPTCacheWithin returns a cache whose trees are computed with
// DijkstraWithin(src, stop): exact for every node of stop, unreachable
// beyond. Callers must only query distances/paths to nodes of stop (the
// router queries a net's pins plus its Steiner-candidate pool).
func NewSPTCacheWithin(g *Graph, stop []NodeID) *SPTCache {
	return &SPTCache{g: g, trees: make(map[NodeID]*SPT), stop: stop}
}

// WithScratch backs the cache with an externally owned scratch (the routing
// context's), replacing the lazily created private one. Returns c.
func (c *SPTCache) WithScratch(s *DijkstraScratch) *SPTCache {
	c.scratch = s
	return c
}

// WithBounds guides the cache's searches with an admissible lower bound
// (see Bounds): each miss runs DijkstraWithinBounded toward the stop set
// instead of plain DijkstraWithin, settling fewer nodes. Requires a stop
// set (caches without one settle the whole graph, where goal direction
// cannot help); b must be admissible and consistent for the current graph
// state or distances would come out wrong.
//
// Exactness contract: distances to stop nodes are exact and, with a
// consistent bound, bit-identical to the unbounded cache's; parents (and
// therefore Path results) may differ on exact floating-point ties because
// the bound reorders settlement among equal-cost nodes. The router keeps
// this behind Options.GoalDirected for that reason. Returns c.
func (c *SPTCache) WithBounds(b Bounds) *SPTCache {
	c.bounds = b
	return c
}

// WithOverlay runs the cache's searches under an overlay: every miss sees
// per-edge effective weight base + price and never relaxes into blocked
// nodes. Like bounds, the overlay is part of the cached-state contract —
// changing its prices or blocks invalidates every cached tree, so callers
// must Release (or discard) the cache first. Returns c.
func (c *SPTCache) WithOverlay(ov *Overlay) *SPTCache {
	c.overlay = ov
	return c
}

// Fork returns a per-worker view of the cache for concurrent candidate
// evaluation. Lookups (Tree, Dist, Path, CachedTree) fall through to every
// tree already cached in c — the shared read-only snapshot — while misses
// are computed with s, the worker's own scratch, into the fork's private
// map. Forks of the same base therefore never write shared state: any
// number of them may run concurrently, one goroutine each, as long as the
// base is quiescent (no Tree/Dist/Path/Release calls on it) while they are
// live. Release the fork — recycling its private trees into s — before
// returning s to the pool; the base's trees are never recycled by a fork.
func (c *SPTCache) Fork(s *DijkstraScratch) *SPTCache {
	return &SPTCache{g: c.g, trees: make(map[NodeID]*SPT), stop: c.stop, scratch: s, base: c, bounds: c.bounds, overlay: c.overlay}
}

// lookup returns the cached tree rooted at v, consulting the fork's private
// map first and then the frozen base snapshot.
func (c *SPTCache) lookup(v NodeID) (*SPT, bool) {
	if t, ok := c.trees[v]; ok {
		return t, true
	}
	if c.base != nil {
		return c.base.lookup(v)
	}
	return nil, false
}

// Scratch returns the cache's scratch, creating a private one on first use.
func (c *SPTCache) Scratch() *DijkstraScratch {
	if c.scratch == nil {
		c.scratch = NewDijkstraScratch()
	}
	return c.scratch
}

// Release recycles every cached tree's buffers into the scratch and empties
// the cache. The caller must drop all references to trees (and Dist slices)
// obtained from the cache before releasing; the router releases each net's
// cache after the net's tree (plain edge IDs) has been committed.
func (c *SPTCache) Release() {
	if c.scratch != nil {
		for _, t := range c.trees {
			c.scratch.RecycleSPT(t)
		}
	}
	clear(c.trees)
}

// EdgeSet returns the scratch's edge set, emptied and sized for the graph.
// At most one EdgeSet per cache is live at a time (see graph.EdgeSet).
func (c *SPTCache) EdgeSet() EdgeSet { return c.Scratch().EdgeSet(c.g.NumEdges()) }

// NodeSet returns the scratch's node set, emptied and sized for the graph.
// At most one NodeSet per cache is live at a time (see graph.NodeSet).
func (c *SPTCache) NodeSet() NodeSet { return c.Scratch().NodeSet(c.g.NumNodes()) }

// Tree returns the shortest-paths tree rooted at src, computing it on first
// use (into the fork's private map when the cache is a fork).
func (c *SPTCache) Tree(src NodeID) *SPT {
	if t, ok := c.lookup(src); ok {
		return t
	}
	var t *SPT
	switch {
	case c.overlay != nil && c.bounds != nil && c.stop != nil:
		t = c.g.goalDirectedOverlay(c.Scratch(), src, c.stop, c.overlay, c.bounds.ToSet(c.stop))
	case c.overlay != nil:
		t = c.g.dijkstraOverlayWith(c.Scratch(), src, c.stop, c.overlay)
	case c.bounds != nil && c.stop != nil:
		t = c.g.dijkstraBoundedWith(c.Scratch(), src, c.stop, c.bounds)
	default:
		t = c.g.dijkstraWith(c.Scratch(), src, c.stop)
	}
	c.trees[src] = t
	c.Runs++
	return t
}

// Dist returns the shortest-path distance between u and v, computing (and
// caching) a tree rooted at u if needed. Distances are symmetric on
// undirected graphs, so Dist prefers whichever of the two endpoints is
// already cached.
func (c *SPTCache) Dist(u, v NodeID) float64 {
	if t, ok := c.lookup(u); ok {
		return t.Dist[v]
	}
	if t, ok := c.lookup(v); ok {
		return t.Dist[u]
	}
	return c.Tree(u).Dist[v]
}

// CachedTree returns the tree rooted at v if it has already been computed
// (in this cache or, for forks, in the base snapshot).
func (c *SPTCache) CachedTree(v NodeID) (*SPT, bool) {
	return c.lookup(v)
}

// Path returns the edge IDs of one shortest path between u and v (nil if
// disconnected), preferring whichever endpoint already has a cached tree so
// that candidate-node evaluations never trigger fresh Dijkstra runs. The
// path's orientation (u→v vs v→u) is unspecified; callers union undirected
// edges.
func (c *SPTCache) Path(u, v NodeID) []EdgeID {
	if t, ok := c.lookup(u); ok {
		return t.PathTo(v)
	}
	if t, ok := c.lookup(v); ok {
		return t.PathTo(u)
	}
	return c.Tree(u).PathTo(v)
}

// EdgeWeight returns edge id's effective weight as seen by the cache's
// searches: the base weight plus the overlay price when an overlay is
// attached, the plain base weight otherwise. Tree constructions that order
// edges by weight (localMST) must use this so their ordering agrees with
// the distances the searches produced.
func (c *SPTCache) EdgeWeight(id EdgeID) float64 {
	if c.overlay != nil {
		return c.g.Weight(id) + c.overlay.price[id]
	}
	return c.g.Weight(id)
}

// Overlay returns the overlay attached with WithOverlay, or nil.
func (c *SPTCache) Overlay() *Overlay { return c.overlay }

// Graph returns the underlying graph.
func (c *SPTCache) Graph() *Graph { return c.g }
