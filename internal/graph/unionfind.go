package graph

// UnionFind is a disjoint-set forest with union by rank and path halving.
type UnionFind struct {
	parent []int32
	rank   []int8
	sets   int
}

// NewUnionFind returns a union-find structure over n singleton sets.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{parent: make([]int32, n), rank: make([]int8, n), sets: n}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

// Find returns the representative of x's set.
func (u *UnionFind) Find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

// Union merges the sets containing a and b and reports whether they were
// previously distinct.
func (u *UnionFind) Union(a, b int32) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.sets--
	return true
}

// Connected reports whether a and b are in the same set.
func (u *UnionFind) Connected(a, b int32) bool { return u.Find(a) == u.Find(b) }

// Sets returns the current number of disjoint sets.
func (u *UnionFind) Sets() int { return u.sets }
