package graph

import (
	"fmt"
	"slices"
	"sync"
)

// Tree is a routing solution: a set of edge IDs of the underlying graph that
// forms a tree spanning a net, plus its total cost. Edge IDs refer to the
// graph the solution was computed on. The JSON tags define the service wire
// format (a tree round-trips through encoding/json bit-identically).
type Tree struct {
	Edges []EdgeID `json:"edges"`
	Cost  float64  `json:"cost"`
}

// NewTree builds a Tree from edge IDs, computing the cost from g.
func NewTree(g *Graph, edges []EdgeID) Tree {
	return Tree{Edges: edges, Cost: g.TotalWeight(edges)}
}

// Nodes returns the sorted set of nodes touched by the tree's edges.
func (t Tree) Nodes(g *Graph) []NodeID {
	seen := make(map[NodeID]bool, 2*len(t.Edges))
	for _, id := range t.Edges {
		e := g.Edge(id)
		seen[e.U] = true
		seen[e.V] = true
	}
	nodes := make([]NodeID, 0, len(seen))
	for v := range seen {
		nodes = append(nodes, v)
	}
	slices.Sort(nodes)
	return nodes
}

// ValidateTree checks that t is a tree (acyclic, connected over its own
// nodes) that spans every node of net. A net of one node is spanned by an
// empty tree. It returns a descriptive error on the first violation.
func ValidateTree(g *Graph, t Tree, net []NodeID) error {
	if len(net) <= 1 && len(t.Edges) == 0 {
		return nil
	}
	uf := NewUnionFind(g.NumNodes())
	seen := make(map[EdgeID]bool, len(t.Edges))
	for _, id := range t.Edges {
		if seen[id] {
			return fmt.Errorf("graph: duplicate edge %d in tree", id)
		}
		seen[id] = true
		e := g.Edge(id)
		if !uf.Union(e.U, e.V) {
			return fmt.Errorf("graph: cycle introduced by edge %d {%d,%d}", id, e.U, e.V)
		}
	}
	for _, v := range net[1:] {
		if !uf.Connected(net[0], v) {
			return fmt.Errorf("graph: net node %d not connected to %d", v, net[0])
		}
	}
	// Connectivity over the tree's own node set: a tree on k nodes has k-1
	// edges; the union-find gives us component counts implicitly via the
	// acyclicity check above plus a node count check.
	nodes := t.Nodes(g)
	if len(t.Edges) != len(nodes)-1 && len(nodes) > 0 {
		return fmt.Errorf("graph: %d edges over %d nodes is not a tree", len(t.Edges), len(nodes))
	}
	return nil
}

// TreeDists returns the distance from src to every node of the tree, walking
// only the tree's edges, as a map (nodes outside the tree are absent). It is
// used to verify the shortest-paths (arborescence) property of solutions.
func TreeDists(g *Graph, t Tree, src NodeID) map[NodeID]float64 {
	adj := make(map[NodeID][]Arc)
	for _, id := range t.Edges {
		e := g.Edge(id)
		adj[e.U] = append(adj[e.U], Arc{To: e.V, ID: id})
		adj[e.V] = append(adj[e.V], Arc{To: e.U, ID: id})
	}
	dist := map[NodeID]float64{src: 0}
	stack := []NodeID{src}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range adj[u] {
			if _, ok := dist[a.To]; ok {
				continue
			}
			dist[a.To] = dist[u] + g.Weight(a.ID)
			stack = append(stack, a.To)
		}
	}
	return dist
}

// MaxPathlength returns the maximum over sinks of the tree-path cost from
// src, i.e. the "maximum source-sink pathlength" criterion of the paper.
// It panics if a sink is not in the tree (callers validate first).
func MaxPathlength(g *Graph, t Tree, src NodeID, sinks []NodeID) float64 {
	dist := TreeDists(g, t, src)
	maxd := 0.0
	for _, s := range sinks {
		d, ok := dist[s]
		if !ok {
			panic(fmt.Sprintf("graph: sink %d not spanned by tree", s))
		}
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}

// PruneTree repeatedly removes pendant (degree-1) tree nodes that are not in
// keep, returning the pruned tree. This is the final clean-up step of KMB
// and of every construction that unions shortest paths.
//
// It is the hottest function of the iterated constructions (called once per
// Steiner-candidate evaluation), so it works on compact pooled slices sized
// by the edge set rather than maps or |V|-sized scratch: local node IDs come
// from one sort of (endpoint, slot)-packed keys — numbering every endpoint
// occurrence without any per-edge lookup — and incidence lives in one flat
// prefix-summed array. The leaf-pruning fixpoint is confluent — it has a
// unique result no matter the removal order — and the output preserves the
// input edge order, so the numbering scheme is unobservable.
func PruneTree(g *Graph, edges []EdgeID, keep []NodeID) Tree {
	if len(edges) == 0 {
		return NewTree(g, edges)
	}
	m := len(edges)
	s := prunePool.Get().(*pruneScratch)
	defer prunePool.Put(s)
	// Pack each endpoint occurrence as node<<32 | slot, where slot 2i / 2i+1
	// is edge i's U / V side. One sort groups occurrences by node; walking
	// the groups assigns dense local IDs (in ascending node order) and
	// scatters them back through the slot — no map, no binary search.
	keys := s.keys.take(2 * m)
	for i, id := range edges {
		keys[2*i] = uint64(uint32(g.eu[id]))<<32 | uint64(uint32(2*i))
		keys[2*i+1] = uint64(uint32(g.ev[id]))<<32 | uint64(uint32(2*i+1))
	}
	slices.Sort(keys)
	lu := s.lu.take(m)
	lv := s.lv.take(m)
	nodes := s.nodes.take(0)
	prev := NodeID(-1)
	n := int32(0)
	for _, k := range keys {
		if node := NodeID(uint32(k >> 32)); node != prev {
			nodes = append(nodes, node)
			prev = node
			n++
		}
		if slot := uint32(k); slot&1 == 0 {
			lu[slot>>1] = n - 1
		} else {
			lv[slot>>1] = n - 1
		}
	}
	s.nodes = nodes
	deg := s.deg.take(int(n))
	clear(deg)
	for i := range lu {
		deg[lu[i]]++
		deg[lv[i]]++
	}
	// Flat incidence: node v's half-edges occupy half[off[v]:off[v+1]].
	off := s.off.take(int(n) + 1)
	off[0] = 0
	for v := int32(0); v < n; v++ {
		off[v+1] = off[v] + deg[v]
	}
	cur := s.cur.take(int(n))
	copy(cur, off[:n])
	half := s.half
	if cap(half) < 2*m {
		half = make([]halfEdge, 2*m)
	}
	half = half[:2*m]
	s.half = half
	for i := range lu {
		half[cur[lu[i]]] = halfEdge{int32(i), lv[i]}
		cur[lu[i]]++
		half[cur[lv[i]]] = halfEdge{int32(i), lu[i]}
		cur[lv[i]]++
	}
	keepSet := s.keep.take(int(n))
	clear(keepSet)
	for _, v := range keep {
		// keep is tiny (the net's terminals); binary-search the node list.
		if i, ok := slices.BinarySearch(nodes, v); ok {
			keepSet[i] = true
		}
	}
	alive := s.alive.take(m)
	for i := range alive {
		alive[i] = true
	}
	queue := s.queue.take(0)
	for v := int32(0); v < n; v++ {
		if deg[v] == 1 && !keepSet[v] {
			queue = append(queue, v)
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		if deg[v] != 1 || keepSet[v] {
			continue
		}
		for _, h := range half[off[v]:off[v+1]] {
			if !alive[h.pos] {
				continue
			}
			alive[h.pos] = false
			deg[v]--
			deg[h.other]--
			if deg[h.other] == 1 && !keepSet[h.other] {
				queue = append(queue, h.other)
			}
		}
	}
	s.queue = queue
	out := make([]EdgeID, 0, m)
	for i, id := range edges {
		if alive[i] {
			out = append(out, id)
		}
	}
	return NewTree(g, out)
}

// halfEdge is one directed occurrence of a tree edge in PruneTree's flat
// incidence array.
type halfEdge struct {
	pos   int32 // index into the input edge slice
	other int32 // local ID of the other endpoint
}

// pruneScratch pools PruneTree's working slices; a route makes one PruneTree
// call per Steiner-candidate evaluation, so the per-call allocations would
// otherwise dominate the allocator profile.
type pruneScratch struct {
	keys  reuse[uint64]
	lu    reuse[int32]
	lv    reuse[int32]
	deg   reuse[int32]
	off   reuse[int32]
	cur   reuse[int32]
	queue reuse[int32]
	keep  reuse[bool]
	alive reuse[bool]
	nodes reuse[NodeID]
	half  []halfEdge
}

// reuse is a grow-only slice that hands out length-n views of one backing
// array. Contents are stale; callers overwrite or clear as needed.
type reuse[T any] []T

func (r *reuse[T]) take(n int) []T {
	if cap(*r) < n {
		*r = make([]T, n)
	}
	*r = (*r)[:n]
	return *r
}

var prunePool = sync.Pool{New: func() any { return new(pruneScratch) }}

// Subgraph returns a new graph with the same node count as g containing only
// the given edges (deduplicated), with each new edge keeping the weight of
// its original. The returned mapping translates the new graph's edge IDs
// back to g's.
func Subgraph(g *Graph, edges []EdgeID) (*Graph, []EdgeID) {
	sub := New(g.NumNodes())
	var back []EdgeID
	seen := make(map[EdgeID]bool, len(edges))
	for _, id := range edges {
		if seen[id] {
			continue
		}
		seen[id] = true
		e := g.Edge(id)
		sub.AddEdge(e.U, e.V, e.W)
		back = append(back, id)
	}
	return sub, back
}
