package graph

import (
	"fmt"
	"sort"
)

// Tree is a routing solution: a set of edge IDs of the underlying graph that
// forms a tree spanning a net, plus its total cost. Edge IDs refer to the
// graph the solution was computed on. The JSON tags define the service wire
// format (a tree round-trips through encoding/json bit-identically).
type Tree struct {
	Edges []EdgeID `json:"edges"`
	Cost  float64  `json:"cost"`
}

// NewTree builds a Tree from edge IDs, computing the cost from g.
func NewTree(g *Graph, edges []EdgeID) Tree {
	return Tree{Edges: edges, Cost: g.TotalWeight(edges)}
}

// Nodes returns the sorted set of nodes touched by the tree's edges.
func (t Tree) Nodes(g *Graph) []NodeID {
	seen := make(map[NodeID]bool, 2*len(t.Edges))
	for _, id := range t.Edges {
		e := g.Edge(id)
		seen[e.U] = true
		seen[e.V] = true
	}
	nodes := make([]NodeID, 0, len(seen))
	for v := range seen {
		nodes = append(nodes, v)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return nodes
}

// ValidateTree checks that t is a tree (acyclic, connected over its own
// nodes) that spans every node of net. A net of one node is spanned by an
// empty tree. It returns a descriptive error on the first violation.
func ValidateTree(g *Graph, t Tree, net []NodeID) error {
	if len(net) <= 1 && len(t.Edges) == 0 {
		return nil
	}
	uf := NewUnionFind(g.NumNodes())
	seen := make(map[EdgeID]bool, len(t.Edges))
	for _, id := range t.Edges {
		if seen[id] {
			return fmt.Errorf("graph: duplicate edge %d in tree", id)
		}
		seen[id] = true
		e := g.Edge(id)
		if !uf.Union(e.U, e.V) {
			return fmt.Errorf("graph: cycle introduced by edge %d {%d,%d}", id, e.U, e.V)
		}
	}
	for _, v := range net[1:] {
		if !uf.Connected(net[0], v) {
			return fmt.Errorf("graph: net node %d not connected to %d", v, net[0])
		}
	}
	// Connectivity over the tree's own node set: a tree on k nodes has k-1
	// edges; the union-find gives us component counts implicitly via the
	// acyclicity check above plus a node count check.
	nodes := t.Nodes(g)
	if len(t.Edges) != len(nodes)-1 && len(nodes) > 0 {
		return fmt.Errorf("graph: %d edges over %d nodes is not a tree", len(t.Edges), len(nodes))
	}
	return nil
}

// TreeDists returns the distance from src to every node of the tree, walking
// only the tree's edges, as a map (nodes outside the tree are absent). It is
// used to verify the shortest-paths (arborescence) property of solutions.
func TreeDists(g *Graph, t Tree, src NodeID) map[NodeID]float64 {
	adj := make(map[NodeID][]Arc)
	for _, id := range t.Edges {
		e := g.Edge(id)
		adj[e.U] = append(adj[e.U], Arc{To: e.V, ID: id})
		adj[e.V] = append(adj[e.V], Arc{To: e.U, ID: id})
	}
	dist := map[NodeID]float64{src: 0}
	stack := []NodeID{src}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range adj[u] {
			if _, ok := dist[a.To]; ok {
				continue
			}
			dist[a.To] = dist[u] + g.Weight(a.ID)
			stack = append(stack, a.To)
		}
	}
	return dist
}

// MaxPathlength returns the maximum over sinks of the tree-path cost from
// src, i.e. the "maximum source-sink pathlength" criterion of the paper.
// It panics if a sink is not in the tree (callers validate first).
func MaxPathlength(g *Graph, t Tree, src NodeID, sinks []NodeID) float64 {
	dist := TreeDists(g, t, src)
	maxd := 0.0
	for _, s := range sinks {
		d, ok := dist[s]
		if !ok {
			panic(fmt.Sprintf("graph: sink %d not spanned by tree", s))
		}
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}

// PruneTree repeatedly removes pendant (degree-1) tree nodes that are not in
// keep, returning the pruned tree. This is the final clean-up step of KMB
// and of every construction that unions shortest paths.
//
// It is the hottest function of the iterated constructions (called once per
// Steiner-candidate evaluation), so it works on compact local slices sized
// by the edge set rather than maps or |V|-sized scratch.
func PruneTree(g *Graph, edges []EdgeID, keep []NodeID) Tree {
	// Dense local node numbering over the edge set's endpoints.
	remap := make(map[NodeID]int32, 2*len(edges))
	local := func(v NodeID) int32 {
		if id, ok := remap[v]; ok {
			return id
		}
		id := int32(len(remap))
		remap[v] = id
		return id
	}
	type halfEdge struct {
		pos   int32 // index into edges
		other int32 // local ID of the other endpoint
	}
	lu := make([]int32, len(edges))
	lv := make([]int32, len(edges))
	for i, id := range edges {
		e := g.Edge(id)
		lu[i] = local(e.U)
		lv[i] = local(e.V)
	}
	n := len(remap)
	deg := make([]int32, n)
	incident := make([][]halfEdge, n)
	for i := range edges {
		deg[lu[i]]++
		deg[lv[i]]++
		incident[lu[i]] = append(incident[lu[i]], halfEdge{int32(i), lv[i]})
		incident[lv[i]] = append(incident[lv[i]], halfEdge{int32(i), lu[i]})
	}
	keepSet := make([]bool, n)
	for _, v := range keep {
		if id, ok := remap[v]; ok {
			keepSet[id] = true
		}
	}
	alive := make([]bool, len(edges))
	for i := range alive {
		alive[i] = true
	}
	// Seed queue in local-ID order: local IDs follow the deterministic
	// edge order, so the pruning order is deterministic too.
	queue := make([]int32, 0, n)
	for v := int32(0); v < int32(n); v++ {
		if deg[v] == 1 && !keepSet[v] {
			queue = append(queue, v)
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		if deg[v] != 1 || keepSet[v] {
			continue
		}
		for _, h := range incident[v] {
			if !alive[h.pos] {
				continue
			}
			alive[h.pos] = false
			deg[v]--
			deg[h.other]--
			if deg[h.other] == 1 && !keepSet[h.other] {
				queue = append(queue, h.other)
			}
		}
	}
	out := make([]EdgeID, 0, len(edges))
	for i, id := range edges {
		if alive[i] {
			out = append(out, id)
		}
	}
	return NewTree(g, out)
}

// Subgraph returns a new graph with the same node count as g containing only
// the given edges (deduplicated), with each new edge keeping the weight of
// its original. The returned mapping translates the new graph's edge IDs
// back to g's.
func Subgraph(g *Graph, edges []EdgeID) (*Graph, []EdgeID) {
	sub := New(g.NumNodes())
	var back []EdgeID
	seen := make(map[EdgeID]bool, len(edges))
	for _, id := range edges {
		if seen[id] {
			continue
		}
		seen[id] = true
		e := g.Edge(id)
		sub.AddEdge(e.U, e.V, e.W)
		back = append(back, id)
	}
	return sub, back
}
