package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: DijkstraWithin reports exactly the same distances and path
// costs as the full Dijkstra for every node of the stop set, and anything
// it reports as reachable has a correct path.
func TestQuickDijkstraWithinExactOnStopSet(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		g := RandomConnected(rng, n, n*2, 8)
		for i := 0; i < g.NumEdges()/8; i++ {
			g.SetEnabled(EdgeID(rng.Intn(g.NumEdges())), false)
		}
		src := NodeID(rng.Intn(n))
		stop := RandomNet(rng, g, 1+rng.Intn(n))
		full := g.Dijkstra(src)
		within := g.DijkstraWithin(src, stop)
		for _, v := range stop {
			fd, wd := full.Dist[v], within.Dist[v]
			if math.IsInf(fd, 1) != math.IsInf(wd, 1) {
				return false
			}
			if !math.IsInf(fd, 1) && math.Abs(fd-wd) > 1e-9 {
				return false
			}
			if within.Reachable(v) {
				p := within.PathTo(v)
				if math.Abs(g.TotalWeight(p)-wd) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDijkstraWithinUnsettledNodesAreInf(t *testing.T) {
	// Line 0-1-2-3-4; stopping at {1} must leave 3, 4 marked unreachable
	// (not with stale tentative distances).
	g := New(5)
	for i := 0; i < 4; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1), 1)
	}
	spt := g.DijkstraWithin(0, []NodeID{1})
	if spt.Dist[1] != 1 {
		t.Fatalf("dist[1] = %v", spt.Dist[1])
	}
	if spt.Reachable(4) {
		t.Fatal("node 4 should be reported unreachable after early stop")
	}
	if spt.PathTo(4) != nil {
		t.Fatal("PathTo(4) should be nil after early stop")
	}
}

func TestDijkstraWithinNilStopIsFull(t *testing.T) {
	g := NewGrid(4, 4, 1)
	a := g.Dijkstra(0)
	b := g.DijkstraWithin(0, nil)
	for v := range a.Dist {
		if a.Dist[v] != b.Dist[v] {
			t.Fatalf("nil stop differs at %d", v)
		}
	}
}

func TestDijkstraWithinDisconnectedStopNode(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	// Node 2 is isolated; the search must terminate and report it Inf.
	spt := g.DijkstraWithin(0, []NodeID{1, 2})
	if !spt.Reachable(1) || spt.Reachable(2) {
		t.Fatalf("dist = %v", spt.Dist)
	}
}

func TestSPTCacheWithinUsesStopSet(t *testing.T) {
	g := NewGrid(10, 10, 1)
	stop := []NodeID{g.Node(1, 1), g.Node(2, 2)}
	c := NewSPTCacheWithin(g.Graph, stop)
	tr := c.Tree(g.Node(1, 1))
	if tr.Dist[g.Node(2, 2)] != 2 {
		t.Fatalf("stop-set dist = %v", tr.Dist[g.Node(2, 2)])
	}
	// Far corner should not have been settled (distance 14+ vs stop max 2).
	if tr.Reachable(g.Node(9, 9)) {
		t.Fatal("far corner settled despite early stop")
	}
}

// TestDijkstraWithinSettledCount pins how much work the early exit does:
// on a line graph with a single stop node, the search settles exactly the
// prefix up to that node (everything nearer plus the node itself) and
// nothing beyond — the Settled counter is the proof, and Reachable is true
// exactly on the settled prefix.
func TestDijkstraWithinSettledCount(t *testing.T) {
	g := New(8)
	for i := 0; i < 7; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1), 1)
	}
	s := NewDijkstraScratch()
	c := NewSPTCacheWithin(g, []NodeID{3}).WithScratch(s)
	before := s.Settled
	spt := c.Tree(0)
	if got := s.Settled - before; got != 4 {
		t.Fatalf("settled %d nodes, want exactly the 0..3 prefix (4)", got)
	}
	for v := 0; v <= 3; v++ {
		if !spt.Reachable(NodeID(v)) {
			t.Fatalf("node %d should be reachable (settled before the stop)", v)
		}
	}
	for v := 4; v < 8; v++ {
		if spt.Reachable(NodeID(v)) {
			t.Fatalf("node %d should read unreachable (never settled)", v)
		}
	}
}
