package graph

import (
	"math/rand"
	"testing"
)

// sptEqual reports whether two trees carry identical labels.
func sptEqual(a, b *SPT) bool {
	if a.Source != b.Source || len(a.Dist) != len(b.Dist) {
		return false
	}
	for i := range a.Dist {
		if a.Dist[i] != b.Dist[i] || a.ParentEdge[i] != b.ParentEdge[i] || a.ParentNode[i] != b.ParentNode[i] {
			return false
		}
	}
	return true
}

// TestScratchReuseMatchesFresh runs many Dijkstras through one scratch —
// with SPT buffers recycled between runs — and checks every tree against a
// run on a fresh scratch.
func TestScratchReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := RandomConnected(rng, 60, 300, 10)
	s := NewDijkstraScratch()
	for iter := 0; iter < 50; iter++ {
		src := NodeID(rng.Intn(g.NumNodes()))
		reused := g.dijkstraWith(s, src, nil)
		fresh := g.dijkstraWith(NewDijkstraScratch(), src, nil)
		if !sptEqual(reused, fresh) {
			t.Fatalf("iter %d: reused scratch diverged from fresh at src %d", iter, src)
		}
		s.RecycleSPT(reused)
	}
	if s.Runs != 50 {
		t.Fatalf("Runs = %d, want 50", s.Runs)
	}
	if s.HeapPushes == 0 || s.Settled == 0 {
		t.Fatal("work counters did not accumulate")
	}
}

// TestScratchStopSetMatchesFresh exercises the early-termination path
// (DijkstraWithin semantics) through a reused scratch: stop nodes get exact
// distances, everything unsettled is Inf.
func TestScratchStopSetMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := RandomConnected(rng, 80, 400, 10)
	s := NewDijkstraScratch()
	for iter := 0; iter < 30; iter++ {
		src := NodeID(rng.Intn(g.NumNodes()))
		stop := RandomNet(rng, g, 5)
		reused := g.dijkstraWith(s, src, stop)
		fresh := g.dijkstraWith(NewDijkstraScratch(), src, stop)
		if !sptEqual(reused, fresh) {
			t.Fatalf("iter %d: stop-set run diverged", iter)
		}
		full := g.Dijkstra(src)
		for _, v := range stop {
			if reused.Dist[v] != full.Dist[v] {
				t.Fatalf("stop node %d: dist %v, want exact %v", v, reused.Dist[v], full.Dist[v])
			}
		}
		s.RecycleSPT(reused)
	}
}

// TestScratchAcrossGraphSizes reuses one scratch on graphs of different
// sizes; buffers must resize correctly in both directions.
func TestScratchAcrossGraphSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewDijkstraScratch()
	for _, n := range []int{40, 120, 20, 90} {
		g := RandomConnected(rng, n, 3*n, 5)
		got := g.dijkstraWith(s, 0, nil)
		want := g.dijkstraWith(NewDijkstraScratch(), 0, nil)
		if !sptEqual(got, want) {
			t.Fatalf("n=%d: reused scratch diverged", n)
		}
		if len(got.Dist) != n {
			t.Fatalf("n=%d: SPT sized %d", n, len(got.Dist))
		}
		s.RecycleSPT(got)
	}
}

// TestScratchEpochWrap forces the epoch counter to wrap around and checks
// that stale marks cannot alias into a fresh run.
func TestScratchEpochWrap(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := RandomConnected(rng, 30, 120, 8)
	s := NewDijkstraScratch()
	first := g.dijkstraWith(s, 0, nil)
	want := g.dijkstraWith(NewDijkstraScratch(), 0, nil)
	if !sptEqual(first, want) {
		t.Fatal("pre-wrap run diverged")
	}
	s.RecycleSPT(first)
	s.ep = ^uint32(0) // next beginRun wraps to 0 and must clear marks
	got := g.dijkstraWith(s, 0, nil)
	if !sptEqual(got, want) {
		t.Fatal("post-wrap run diverged: stale epoch marks aliased")
	}
	if s.ep != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", s.ep)
	}
}

func TestEdgeSetSemantics(t *testing.T) {
	s := NewDijkstraScratch()
	es := s.EdgeSet(10)
	if !es.Add(3) || es.Add(3) {
		t.Fatal("Add must report first insertion only")
	}
	if !es.Has(3) || es.Has(4) {
		t.Fatal("Has wrong")
	}
	// Re-acquisition empties the set in O(1).
	es2 := s.EdgeSet(10)
	if es2.Has(3) {
		t.Fatal("re-acquired edge set not empty")
	}
	// Epoch wrap must clear stale marks.
	es2.Add(7)
	s.edgeEp = ^uint32(0)
	es3 := s.EdgeSet(10)
	if es3.Has(7) {
		t.Fatal("edge set epoch wrap aliased a stale mark")
	}
}

func TestNodeSetSlots(t *testing.T) {
	s := NewDijkstraScratch()
	ns := s.NodeSet(10)
	for i, v := range []NodeID{4, 2, 9} {
		if !ns.Add(v) {
			t.Fatalf("Add(%d) reported duplicate", v)
		}
		if ns.Slot(v) != int32(i) {
			t.Fatalf("Slot(%d) = %d, want insertion order %d", v, ns.Slot(v), i)
		}
	}
	if ns.Add(2) {
		t.Fatal("duplicate Add succeeded")
	}
	if ns.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ns.Len())
	}
	// Slot on an absent node inserts it.
	if ns.Slot(0) != 3 || ns.Len() != 4 {
		t.Fatal("Slot did not insert absent node")
	}
	ns2 := s.NodeSet(10)
	if ns2.Has(4) || ns2.Len() != 0 {
		t.Fatal("re-acquired node set not empty")
	}
}

// TestSPTCacheRelease checks that releasing a cache recycles its trees into
// the scratch free list and that subsequent queries through a new cache on
// the same scratch still compute correct distances.
func TestSPTCacheRelease(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := RandomConnected(rng, 50, 200, 6)
	s := NewDijkstraScratch()
	c1 := NewSPTCache(g).WithScratch(s)
	c1.Tree(0)
	c1.Tree(7)
	want03 := c1.Dist(0, 3)
	c1.Release()
	if len(s.free) != 2 {
		t.Fatalf("free list holds %d trees after Release, want 2", len(s.free))
	}
	c2 := NewSPTCache(g).WithScratch(s)
	if got := c2.Dist(0, 3); got != want03 {
		t.Fatalf("post-release Dist(0,3) = %v, want %v", got, want03)
	}
	c2.Release()
}
