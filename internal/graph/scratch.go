package graph

import (
	"sync"
	"sync/atomic"
)

// DijkstraScratch pools the per-run working state of Dijkstra searches:
// the binary heap, the settled/stop-set marks (reset in O(1) by bumping an
// epoch counter instead of clearing), and a free list of recycled SPTs so
// the router's ~O(nets × candidates × passes) shortest-path calls stop
// allocating |V|-sized arrays. It also hosts the epoch-based edge/node sets
// the Steiner heuristics use in place of per-call maps.
//
// A scratch is NOT safe for concurrent use: it belongs to exactly one
// goroutine at a time. The parallel width search gives each probe goroutine
// its own scratch via AcquireScratch/ReleaseScratch (a sync.Pool), which is
// the intended sharing model. A scratch may be reused across graphs of
// different sizes; buffers grow on demand and are retained at high water.
//
// The exported counters accumulate monotonically across runs; the router's
// stats layer reads deltas around each net. They are plain ints (no
// atomics) because of the single-goroutine ownership rule.
type DijkstraScratch struct {
	heap pq
	done []uint32 // node → epoch at which it was settled
	stop []uint32 // node → epoch at which it joined the stop set
	ep   uint32   // current Dijkstra epoch (done/stop marks)
	free []*SPT   // recycled shortest-path trees

	// Second frontier for bidirectional search (BiDijkstra): its own heap
	// and settled marks, sharing the epoch counter with the forward side.
	heapB pq
	doneB []uint32

	edgeMark []uint32 // edge → epoch of membership in the live EdgeSet
	edgeEp   uint32
	nodeMark []uint32 // node → epoch of membership in the live NodeSet
	nodeSlot []int32  // node → dense slot assigned by the live NodeSet
	nodeEp   uint32
	nodeLen  int32 // slots assigned by the live NodeSet

	// Runs counts Dijkstra executions through this scratch.
	Runs int64
	// HeapPushes counts priority-queue insertions (including re-pushes from
	// lazy deletion), the classic SSSP work measure.
	HeapPushes int64
	// Settled counts nodes permanently labelled across all runs.
	Settled int64
}

// NewDijkstraScratch returns an empty scratch. Most callers should prefer
// AcquireScratch/ReleaseScratch, which recycle warm buffers process-wide.
func NewDijkstraScratch() *DijkstraScratch { return new(DijkstraScratch) }

var scratchPool = sync.Pool{New: func() any { return new(DijkstraScratch) }}

// liveScratches counts scratches checked out of the pool and not yet
// released or discarded. The chaos tests assert it returns to its baseline
// after panics and cancellations, proving no pool entry is leaked (or,
// worse, double-released) by any failure path.
var liveScratches atomic.Int64

// LiveScratches reports how many pooled scratches are currently checked
// out. Observability for leak tests; production code has no reason to read
// it.
func LiveScratches() int64 { return liveScratches.Load() }

// AcquireScratch takes a scratch from the process-wide pool. Pair with
// ReleaseScratch (or, after a panic that may have interrupted a run on it,
// DiscardScratch) when the routing context that owns it is done.
func AcquireScratch() *DijkstraScratch {
	liveScratches.Add(1)
	return scratchPool.Get().(*DijkstraScratch)
}

// ReleaseScratch returns a scratch (and every SPT recycled into it) to the
// pool. The caller must not use the scratch, or any SPT obtained through a
// cache backed by it and since released, after this call.
func ReleaseScratch(s *DijkstraScratch) {
	liveScratches.Add(-1)
	scratchPool.Put(s)
}

// DiscardScratch drops a scratch without returning it to the pool: the
// fault-tolerance layer calls this for scratches whose owning goroutine
// panicked mid-run, trading a little garbage for the certainty that no
// possibly-inconsistent buffers re-enter the pool.
func DiscardScratch(s *DijkstraScratch) {
	if s != nil {
		liveScratches.Add(-1)
	}
}

// beginRun sizes the mark arrays for an n-node graph and opens a fresh
// epoch, invalidating all done/stop marks in O(1).
func (s *DijkstraScratch) beginRun(n int) uint32 {
	if len(s.done) < n {
		s.done = make([]uint32, n)
		s.stop = make([]uint32, n)
		s.doneB = make([]uint32, n)
		s.ep = 0
	}
	s.ep++
	if s.ep == 0 { // epoch counter wrapped: stale marks could alias, clear
		clear(s.done)
		clear(s.stop)
		clear(s.doneB)
		s.ep = 1
	}
	s.Runs++
	return s.ep
}

// acquireSPT pops a recycled tree (or allocates one), sizes it for an
// n-node graph and initializes every label to unreachable.
func (s *DijkstraScratch) acquireSPT(n int, src NodeID) *SPT {
	var t *SPT
	if k := len(s.free); k > 0 {
		t = s.free[k-1]
		s.free[k-1] = nil
		s.free = s.free[:k-1]
	} else {
		t = new(SPT)
	}
	if cap(t.Dist) < n {
		t.Dist = make([]float64, n)
		t.ParentEdge = make([]EdgeID, n)
		t.ParentNode = make([]NodeID, n)
	} else {
		t.Dist = t.Dist[:n]
		t.ParentEdge = t.ParentEdge[:n]
		t.ParentNode = t.ParentNode[:n]
	}
	t.Source = src
	for i := 0; i < n; i++ {
		t.Dist[i] = inf
		t.ParentEdge[i] = None
		t.ParentNode[i] = None
	}
	return t
}

// RecycleSPT returns a tree's buffers to the scratch for reuse by a later
// Dijkstra run. The caller must drop every reference to the tree (and to
// slices read off it, like Dist) before recycling; SPTCache.Release does
// this for a whole per-net cache at once.
func (s *DijkstraScratch) RecycleSPT(t *SPT) {
	if t != nil {
		s.free = append(s.free, t)
	}
}

// EdgeSet is an O(1)-reset membership set over edge IDs, backed by its
// scratch's epoch-stamped array. At most one EdgeSet per scratch is live at
// a time: acquiring a new one (DijkstraScratch.EdgeSet or SPTCache.EdgeSet)
// invalidates the previous.
type EdgeSet struct{ s *DijkstraScratch }

// EdgeSet returns the scratch's edge set, emptied and sized for numEdges
// edges.
func (s *DijkstraScratch) EdgeSet(numEdges int) EdgeSet {
	if len(s.edgeMark) < numEdges {
		s.edgeMark = make([]uint32, numEdges)
		s.edgeEp = 0
	}
	s.edgeEp++
	if s.edgeEp == 0 {
		clear(s.edgeMark)
		s.edgeEp = 1
	}
	return EdgeSet{s}
}

// Add inserts id and reports whether it was absent.
func (es EdgeSet) Add(id EdgeID) bool {
	if es.s.edgeMark[id] == es.s.edgeEp {
		return false
	}
	es.s.edgeMark[id] = es.s.edgeEp
	return true
}

// Has reports membership of id.
func (es EdgeSet) Has(id EdgeID) bool { return es.s.edgeMark[id] == es.s.edgeEp }

// NodeSet is an O(1)-reset membership set over node IDs that also assigns
// dense slots [0, Len) in insertion order — the compact remapping the local
// MST construction needs. Like EdgeSet, at most one per scratch is live.
type NodeSet struct{ s *DijkstraScratch }

// NodeSet returns the scratch's node set, emptied and sized for n nodes.
func (s *DijkstraScratch) NodeSet(n int) NodeSet {
	if len(s.nodeMark) < n {
		s.nodeMark = make([]uint32, n)
		s.nodeSlot = make([]int32, n)
		s.nodeEp = 0
	}
	s.nodeEp++
	if s.nodeEp == 0 {
		clear(s.nodeMark)
		s.nodeEp = 1
	}
	s.nodeLen = 0
	return NodeSet{s}
}

// Add inserts v (assigning it the next slot) and reports whether it was
// absent.
func (ns NodeSet) Add(v NodeID) bool {
	if ns.s.nodeMark[v] == ns.s.nodeEp {
		return false
	}
	ns.s.nodeMark[v] = ns.s.nodeEp
	ns.s.nodeSlot[v] = ns.s.nodeLen
	ns.s.nodeLen++
	return true
}

// Has reports membership of v.
func (ns NodeSet) Has(v NodeID) bool { return ns.s.nodeMark[v] == ns.s.nodeEp }

// Slot returns v's dense slot, inserting it first if absent.
func (ns NodeSet) Slot(v NodeID) int32 {
	ns.Add(v)
	return ns.s.nodeSlot[v]
}

// Len returns the number of distinct nodes inserted.
func (ns NodeSet) Len() int { return int(ns.s.nodeLen) }
