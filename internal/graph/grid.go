package graph

// GridGraph is a W×H rectilinear grid graph with unit-ish edge weights, the
// workload substrate of Section 5's Table 1 ("random nets, uniformly
// distributed in 20×20 weighted grid graphs"). Node (x, y) has ID y*W + x;
// edges connect 4-neighbours.
type GridGraph struct {
	*Graph
	W, H int
}

// NewGrid returns a W×H grid graph with all edge weights set to w. Edges
// are added rows-first (horizontal edge before vertical edge at each node),
// which fixes deterministic edge IDs.
func NewGrid(w, h int, weight float64) *GridGraph {
	g := New(w * h)
	gr := &GridGraph{Graph: g, W: w, H: h}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				g.AddEdge(gr.Node(x, y), gr.Node(x+1, y), weight)
			}
			if y+1 < h {
				g.AddEdge(gr.Node(x, y), gr.Node(x, y+1), weight)
			}
		}
	}
	return gr
}

// Node returns the node ID at grid coordinates (x, y).
func (g *GridGraph) Node(x, y int) NodeID { return NodeID(y*g.W + x) }

// Coords returns the grid coordinates of node v.
func (g *GridGraph) Coords(v NodeID) (x, y int) { return int(v) % g.W, int(v) / g.W }

// MeanWeight returns the average weight over enabled edges, matching the
// congestion statistic w̄ reported in Table 1.
func (g *GridGraph) MeanWeight() float64 {
	sum, cnt := 0.0, 0
	for i := 0; i < g.NumEdges(); i++ {
		if g.Enabled(EdgeID(i)) {
			sum += g.Weight(EdgeID(i))
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}
