package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: the CSR-streaming dijkstraWith is bit-identical to the
// pre-refactor adjacency-walking loop (LegacyDijkstra) on arbitrary graph
// states — distances, parents AND work counters, under random disables,
// reweights and early-stop sets. This is the refactor's core contract: the
// CSR rebuild places each node's arcs in edge-insertion order, exactly how
// the old layout's appends ordered them, so the two loops relax the same
// arcs in the same order with the same arithmetic.
func TestQuickCSRMatchesLegacyDijkstra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		g := RandomConnected(rng, n, n*3, 8)
		for i := 0; i < g.NumEdges()/4; i++ {
			g.SetEnabled(EdgeID(rng.Intn(g.NumEdges())), false)
		}
		for i := 0; i < g.NumEdges()/4; i++ {
			g.SetWeight(EdgeID(rng.Intn(g.NumEdges())), 1+rng.Float64()*10)
		}
		src := NodeID(rng.Intn(n))
		var stop []NodeID
		if rng.Intn(2) == 0 {
			stop = RandomNet(rng, g, 1+rng.Intn(n))
		}
		s1, s2 := NewDijkstraScratch(), NewDijkstraScratch()
		a := g.dijkstraWith(s1, src, stop)
		b := g.LegacyDijkstra(s2, src, stop)
		for v := 0; v < n; v++ {
			if a.Dist[v] != b.Dist[v] || a.ParentEdge[v] != b.ParentEdge[v] || a.ParentNode[v] != b.ParentNode[v] {
				t.Logf("seed %d: node %d: csr (%v,%v,%v) legacy (%v,%v,%v)", seed, v,
					a.Dist[v], a.ParentEdge[v], a.ParentNode[v], b.Dist[v], b.ParentEdge[v], b.ParentNode[v])
				return false
			}
		}
		if s1.Settled != s2.Settled || s1.HeapPushes != s2.HeapPushes {
			t.Logf("seed %d: counters csr (%d,%d) legacy (%d,%d)", seed,
				s1.Settled, s1.HeapPushes, s2.Settled, s2.HeapPushes)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Mutating the edge set after a Freeze marks the CSR dirty and the next
// traversal rebuilds it; weight/enable flips never do (they patch arcw in
// place through the slot map). Each interleaving must leave traversals
// exact.
func TestCSRRebuildAcrossMutationEpochs(t *testing.T) {
	g := New(4)
	e01 := g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.Freeze()
	if got := g.Dijkstra(0).Dist[2]; got != 2 {
		t.Fatalf("dist[2] = %v", got)
	}
	// Post-freeze AddEdge: a shortcut 0-2 must appear in the next run.
	e02 := g.AddEdge(0, 2, 1)
	if got := g.Dijkstra(0).Dist[2]; got != 1 {
		t.Fatalf("after AddEdge: dist[2] = %v, want 1", got)
	}
	// In-place weight update, no rebuild in between.
	g.SetWeight(e02, 5)
	if got := g.Dijkstra(0).Dist[2]; got != 2 {
		t.Fatalf("after SetWeight: dist[2] = %v, want 2", got)
	}
	// Disable and re-enable through the bitset/arcw patch path.
	g.SetEnabled(e01, false)
	if got := g.Dijkstra(0).Dist[2]; got != 5 {
		t.Fatalf("after disable: dist[2] = %v, want 5", got)
	}
	g.SetEnabled(e01, true)
	if got := g.Dijkstra(0).Dist[1]; got != 1 {
		t.Fatalf("after re-enable: dist[1] = %v, want 1", got)
	}
	// Mutate-then-add interleaving: the rebuild must carry the patched
	// weight and enable state over into the new layout.
	g.SetWeight(e01, 3)
	g.SetEnabled(e02, false)
	g.AddEdge(2, 3, 1)
	spt := g.Dijkstra(0)
	if spt.Dist[3] != 5 || spt.Dist[2] != 4 {
		t.Fatalf("after rebuild: dist = %v", spt.Dist)
	}
}

// EnabledArcs must yield exactly the enabled arcs of Adj, in the same
// order, with the current weights.
func TestEnabledArcsMatchesAdjFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := RandomConnected(rng, 30, 90, 8)
	for i := 0; i < 30; i++ {
		g.SetEnabled(EdgeID(rng.Intn(g.NumEdges())), false)
	}
	for u := 0; u < g.NumNodes(); u++ {
		var want []Arc
		var wantW []float64
		for _, a := range g.Adj(NodeID(u)) {
			if g.Enabled(a.ID) {
				want = append(want, a)
				wantW = append(wantW, g.Weight(a.ID))
			}
		}
		i := 0
		for a, w := range g.EnabledArcs(NodeID(u)) {
			if i >= len(want) || a != want[i] || w != wantW[i] {
				t.Fatalf("node %d arc %d: got (%v,%v) want (%v,%v)", u, i, a, w, want[i], wantW[i])
			}
			i++
		}
		if i != len(want) {
			t.Fatalf("node %d: yielded %d arcs, want %d", u, i, len(want))
		}
	}
	// Degree counts the same arcs the iterator yields.
	for u := 0; u < g.NumNodes(); u++ {
		cnt := 0
		for range g.EnabledArcs(NodeID(u)) {
			cnt++
		}
		if cnt != g.Degree(NodeID(u)) {
			t.Fatalf("node %d: Degree %d vs iterated %d", u, g.Degree(NodeID(u)), cnt)
		}
	}
}

// EnabledArcs supports early break (the range-over-func contract).
func TestEnabledArcsEarlyBreak(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	n := 0
	for range g.EnabledArcs(0) {
		n++
		break
	}
	if n != 1 {
		t.Fatalf("broke after %d arcs", n)
	}
}

// +Inf weights are rejected at the API: the CSR encodes "disabled" as an
// infinite arc weight, so a real infinite weight would silently disable
// the edge. NaN and negative weights stay rejected too.
func TestInfiniteWeightRejected(t *testing.T) {
	g := New(2)
	for _, w := range []float64{math.Inf(1), math.NaN(), -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("AddEdge(%v) did not panic", w)
				}
			}()
			g.AddEdge(0, 1, w)
		}()
	}
	id := g.AddEdge(0, 1, 1)
	for _, w := range []float64{math.Inf(1), math.NaN(), -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SetWeight(%v) did not panic", w)
				}
			}()
			g.SetWeight(id, w)
		}()
	}
}

// Clone must deep-copy the CSR state: traversals on the clone see the
// clone's mutations, the original's traversals stay put, and a clone of a
// dirty graph rebuilds independently.
func TestCloneIndependentCSR(t *testing.T) {
	g := New(3)
	e := g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.Freeze()
	c := g.Clone()
	c.SetWeight(e, 10)
	c.SetEnabled(e, false)
	c.AddEdge(0, 2, 1)
	if got := g.Dijkstra(0).Dist[2]; got != 2 {
		t.Fatalf("original perturbed: dist[2] = %v", got)
	}
	if got := c.Dijkstra(0).Dist[2]; got != 1 {
		t.Fatalf("clone: dist[2] = %v", got)
	}
	if got := c.Dijkstra(0).Dist[1]; got != 2 {
		t.Fatalf("clone: dist[1] = %v (edge 0-1 should be disabled)", got)
	}
}
