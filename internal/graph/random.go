package graph

import "math/rand"

// RandomConnected returns a random connected graph with n nodes and
// approximately m edges, with weights uniform in [1, maxW]. It first builds
// a random spanning tree (guaranteeing connectivity), then adds random
// extra edges. The paper's CPU-time experiments use |V|=50, |E|=1000
// instances of exactly this kind.
func RandomConnected(rng *rand.Rand, n, m int, maxW float64) *Graph {
	g := New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		u := NodeID(perm[i])
		v := NodeID(perm[rng.Intn(i)])
		g.AddEdge(u, v, 1+rng.Float64()*(maxW-1))
	}
	for g.NumEdges() < m {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		g.AddEdge(u, v, 1+rng.Float64()*(maxW-1))
	}
	return g
}

// RandomNet draws k distinct nodes from g uniformly at random; the first is
// the net's source. It panics if k exceeds the node count.
func RandomNet(rng *rand.Rand, g *Graph, k int) []NodeID {
	if k > g.NumNodes() {
		panic("graph: net larger than graph")
	}
	perm := rng.Perm(g.NumNodes())
	net := make([]NodeID, k)
	for i := 0; i < k; i++ {
		net[i] = NodeID(perm[i])
	}
	return net
}
