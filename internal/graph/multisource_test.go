package graph

import (
	"math"
	"math/rand"
	"testing"
)

// TestQuickDijkstraFromMatchesPerSeedOracle checks the defining property of
// the multi-source search on random connected graphs: Dist[v] equals the
// minimum over seeds of seed.Dist + d(seed.Node, v), with d taken from
// independent single-source runs.
func TestQuickDijkstraFromMatchesPerSeedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		n := 20 + rng.Intn(60)
		g := RandomConnected(rng, n, n*3, 8)
		k := 1 + rng.Intn(4)
		seeds := make([]Seed, k)
		perm := rng.Perm(n)
		for i := range seeds {
			seeds[i] = Seed{Node: NodeID(perm[i]), Dist: float64(rng.Intn(3))}
		}
		got := g.DijkstraFrom(nil, seeds, nil)
		for v := 0; v < n; v++ {
			want := math.Inf(1)
			for _, sd := range seeds {
				if d := sd.Dist + g.Dijkstra(sd.Node).Dist[v]; d < want {
					want = d
				}
			}
			if math.Abs(got.Dist[NodeID(v)]-want) > 1e-9 {
				t.Fatalf("trial %d: Dist[%d] = %g, want %g", trial, v, got.Dist[v], want)
			}
		}
		// Parent pointers must walk back to a seed, and the path cost plus
		// that seed's initial distance must reproduce Dist.
		isSeed := make(map[NodeID]float64)
		for _, sd := range seeds {
			if d, ok := isSeed[sd.Node]; !ok || sd.Dist < d {
				isSeed[sd.Node] = sd.Dist
			}
		}
		for v := 0; v < n; v++ {
			u := NodeID(v)
			cost := 0.0
			for got.ParentEdge[u] != None {
				cost += g.Weight(got.ParentEdge[u])
				u = got.ParentNode[u]
			}
			d0, ok := isSeed[u]
			if !ok {
				t.Fatalf("trial %d: path from %d ends at non-seed %d", trial, v, u)
			}
			if math.Abs(d0+cost-got.Dist[NodeID(v)]) > 1e-9 {
				t.Fatalf("trial %d: path cost %g+%g disagrees with Dist[%d]=%g", trial, d0, cost, v, got.Dist[v])
			}
		}
	}
}

// TestQuickDijkstraFromOverlayMatchesBakedWeights compares the overlay
// variant against DijkstraFrom on a clone with the prices folded into the
// base weights.
func TestQuickDijkstraFromOverlayMatchesBakedWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 20 + rng.Intn(40)
		g := RandomConnected(rng, n, n*3, 8)
		ov := NewOverlay(g)
		baked := g.Clone()
		for id := 0; id < g.NumEdges(); id++ {
			p := rng.Float64() * 4
			ov.AddPrice(EdgeID(id), p)
			baked.AddWeight(EdgeID(id), p)
		}
		seeds := []Seed{{Node: NodeID(rng.Intn(n))}, {Node: NodeID(rng.Intn(n)), Dist: 2}}
		got := g.DijkstraFromOverlay(nil, seeds, nil, ov)
		want := baked.DijkstraFrom(nil, seeds, nil)
		for v := 0; v < n; v++ {
			if math.Abs(got.Dist[NodeID(v)]-want.Dist[NodeID(v)]) > 1e-9 {
				t.Fatalf("trial %d: Dist[%d] = %g, want %g", trial, v, got.Dist[v], want.Dist[v])
			}
		}
	}
}

// TestQuickAStarFromExactOnGrids checks that the goal-directed seeded search
// returns exactly the multi-source distances on every stop node, using the
// grid's coordinate bound.
func TestQuickAStarFromExactOnGrids(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 10; trial++ {
		w, h := 5+rng.Intn(8), 5+rng.Intn(8)
		g := NewGrid(w, h, 1)
		b := gridBounds(g)
		for i := 0; i < g.NumEdges(); i++ {
			if rng.Intn(3) == 0 {
				g.SetWeight(EdgeID(i), 1+rng.Float64()*4)
			}
		}
		n := g.NumNodes()
		seeds := []Seed{{Node: NodeID(rng.Intn(n))}, {Node: NodeID(rng.Intn(n))}}
		stop := []NodeID{NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), NodeID(rng.Intn(n))}
		got := g.Graph.AStarFrom(nil, seeds, stop, b)
		want := g.Graph.DijkstraFrom(nil, seeds, stop)
		for _, v := range stop {
			if math.Abs(got.Dist[v]-want.Dist[v]) > 1e-9 {
				t.Fatalf("trial %d: Dist[%d] = %g, want %g", trial, v, got.Dist[v], want.Dist[v])
			}
		}
	}
}

// TestQuickAStarFromAnyReturnsNearestGoal checks the first-settled contract:
// the returned goal is at minimum seeded distance over the goal set, its
// distance is exact, and PathTo walks back to a seed.
func TestQuickAStarFromAnyReturnsNearestGoal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 30 + rng.Intn(50)
		g := RandomConnected(rng, n, n*3, 8)
		ov := NewOverlay(g)
		for id := 0; id < g.NumEdges(); id++ {
			ov.AddPrice(EdgeID(id), rng.Float64()*2)
		}
		perm := rng.Perm(n)
		seeds := []Seed{{Node: NodeID(perm[0])}, {Node: NodeID(perm[1])}}
		goals := []NodeID{NodeID(perm[2]), NodeID(perm[3]), NodeID(perm[4])}
		goal, spt := g.AStarFromAnyOverlay(nil, seeds, goals, ov, nil)
		oracle := g.DijkstraFromOverlay(nil, seeds, nil, ov)
		best := math.Inf(1)
		for _, v := range goals {
			if oracle.Dist[v] < best {
				best = oracle.Dist[v]
			}
		}
		if goal == None {
			t.Fatalf("trial %d: no goal found on a connected graph", trial)
		}
		if math.Abs(spt.Dist[goal]-best) > 1e-9 {
			t.Fatalf("trial %d: settled goal %d at %g, nearest is %g", trial, goal, spt.Dist[goal], best)
		}
		if path := spt.PathTo(goal); path == nil {
			t.Fatalf("trial %d: nil path to settled goal %d", trial, goal)
		}
	}
}

// TestDijkstraFromDegenerate covers the empty and single-seed cases: no
// seeds yields an all-unreachable tree; one zero-distance seed reproduces
// plain Dijkstra exactly.
func TestDijkstraFromDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := RandomConnected(rng, 40, 120, 8)
	empty := g.DijkstraFrom(nil, nil, nil)
	for v := 0; v < g.NumNodes(); v++ {
		if empty.Reachable(NodeID(v)) {
			t.Fatalf("empty seed set reached node %d", v)
		}
	}
	one := g.DijkstraFrom(nil, []Seed{{Node: 7}}, nil)
	ref := g.Dijkstra(7)
	for v := 0; v < g.NumNodes(); v++ {
		if one.Dist[NodeID(v)] != ref.Dist[NodeID(v)] {
			t.Fatalf("single-seed Dist[%d] = %g, plain Dijkstra %g", v, one.Dist[v], ref.Dist[v])
		}
	}
}
