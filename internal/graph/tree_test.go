package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func lineGraph(n int) *Graph {
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1), 1)
	}
	return g
}

func TestValidateTreeAccepts(t *testing.T) {
	g := lineGraph(4)
	tr := NewTree(g, []EdgeID{0, 1, 2})
	if err := ValidateTree(g, tr, []NodeID{0, 3}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateTreeRejectsCycle(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 0, 1)
	tr := NewTree(g, []EdgeID{0, 1, 2})
	if err := ValidateTree(g, tr, []NodeID{0, 2}); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestValidateTreeRejectsDuplicateEdge(t *testing.T) {
	g := lineGraph(3)
	tr := Tree{Edges: []EdgeID{0, 0}}
	if err := ValidateTree(g, tr, []NodeID{0, 1}); err == nil {
		t.Fatal("duplicate edge not detected")
	}
}

func TestValidateTreeRejectsUnspanned(t *testing.T) {
	g := lineGraph(4)
	tr := NewTree(g, []EdgeID{0})
	if err := ValidateTree(g, tr, []NodeID{0, 3}); err == nil {
		t.Fatal("unspanned net not detected")
	}
}

func TestValidateTreeSingletonNet(t *testing.T) {
	g := lineGraph(2)
	if err := ValidateTree(g, Tree{}, []NodeID{1}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateTreeRejectsForest(t *testing.T) {
	// Two disjoint edges spanning the net's two components would be a
	// forest, not a tree; the net nodes are connected though. Construct:
	// net {0,1}, edges {0-1, 2-3}: net connected but extra component.
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	tr := NewTree(g, []EdgeID{0, 1})
	if err := ValidateTree(g, tr, []NodeID{0, 1}); err == nil {
		t.Fatal("forest not detected")
	}
}

func TestTreeDistsAndMaxPathlength(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(1, 3, 5)
	tr := NewTree(g, []EdgeID{0, 1, 2})
	d := TreeDists(g, tr, 0)
	if d[2] != 3 || d[3] != 6 {
		t.Fatalf("tree dists = %v", d)
	}
	if mp := MaxPathlength(g, tr, 0, []NodeID{2, 3}); mp != 6 {
		t.Fatalf("max pathlength = %v", mp)
	}
}

func TestPruneTreeRemovesPendantChains(t *testing.T) {
	// Star with a dangling chain: keep {0,1}, prune chain 2-3-4.
	g := New(5)
	e01 := g.AddEdge(0, 1, 1)
	e12 := g.AddEdge(1, 2, 1)
	e23 := g.AddEdge(2, 3, 1)
	e34 := g.AddEdge(3, 4, 1)
	pruned := PruneTree(g, []EdgeID{e01, e12, e23, e34}, []NodeID{0, 1})
	if len(pruned.Edges) != 1 || pruned.Edges[0] != e01 {
		t.Fatalf("pruned edges = %v", pruned.Edges)
	}
	if pruned.Cost != 1 {
		t.Fatalf("pruned cost = %v", pruned.Cost)
	}
}

func TestPruneTreeKeepsSteinerJunctions(t *testing.T) {
	// Node 1 is a non-net junction of degree 3; it must survive pruning.
	g := New(4)
	e01 := g.AddEdge(0, 1, 1)
	e12 := g.AddEdge(1, 2, 1)
	e13 := g.AddEdge(1, 3, 1)
	pruned := PruneTree(g, []EdgeID{e01, e12, e13}, []NodeID{0, 2, 3})
	if len(pruned.Edges) != 3 {
		t.Fatalf("junction wrongly pruned: %v", pruned.Edges)
	}
}

func TestSubgraph(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	e12 := g.AddEdge(1, 2, 2)
	e23 := g.AddEdge(2, 3, 3)
	sub, back := Subgraph(g, []EdgeID{e12, e23, e12}) // duplicate collapses
	if sub.NumEdges() != 2 {
		t.Fatalf("subgraph edges = %d, want 2", sub.NumEdges())
	}
	if back[0] != e12 || back[1] != e23 {
		t.Fatalf("back mapping = %v", back)
	}
	if sub.Weight(0) != 2 {
		t.Fatal("weights not carried over")
	}
}

// Property: for random connected graphs, the MST is a valid spanning tree
// and Prim/Kruskal agree; Dijkstra tree paths match reported distances.
func TestQuickMSTAndDijkstraProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := RandomConnected(rng, n, n*2, 7)
		mst, err := g.PrimMST(0)
		if err != nil {
			return false
		}
		all := make([]NodeID, n)
		for i := range all {
			all[i] = NodeID(i)
		}
		if err := ValidateTree(g, NewTree(g, mst), all); err != nil {
			return false
		}
		kr, err := g.KruskalMST()
		if err != nil || math.Abs(g.TotalWeight(kr)-g.TotalWeight(mst)) > 1e-9 {
			return false
		}
		spt := g.Dijkstra(0)
		for v := 1; v < n; v++ {
			p := spt.PathTo(NodeID(v))
			if math.Abs(g.TotalWeight(p)-spt.Dist[v]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
