package graph

import "fpgarouter/internal/faultpoint"

// This file adds goal-directed shortest-path searches on top of the CSR
// substrate: point-to-point A* under an admissible consistent lower bound,
// a goal-set-guided variant of DijkstraWithin, and bidirectional Dijkstra
// for 2-pin connections. All three return exact distances for their goals;
// they differ from plain Dijkstra only in which additional nodes get
// settled (fewer) and, on exact floating-point ties, in which of several
// equal-cost parents is recorded. See DESIGN.md §6 for the admissibility
// argument and the tie-break caveat.

// AStar computes a shortest path from src to goal, expanding nodes in
// order of Dist + b.LowerBound(·, goal). b must be admissible and
// consistent (see Bounds); a nil b degrades to DijkstraWithin(src, {goal}).
// A nil scratch uses the process-wide pool for the duration of the call.
//
// The returned SPT is exact for goal and for every settled node; all other
// nodes read as unreachable. With a consistent bound the goal's distance is
// bit-identical to Dijkstra's (the relaxation arithmetic is unchanged);
// the path may differ from Dijkstra's among equal-cost alternatives.
func (g *Graph) AStar(s *DijkstraScratch, src, goal NodeID, b Bounds) *SPT {
	if s == nil {
		s = AcquireScratch()
		defer ReleaseScratch(s)
	}
	if b == nil {
		return g.dijkstraWith(s, src, []NodeID{goal})
	}
	h := func(v NodeID) float64 { return b.LowerBound(v, goal) }
	return g.goalDirected(s, src, []NodeID{goal}, h)
}

// DijkstraWithinBounded is DijkstraWithin guided toward the stop set by an
// admissible consistent lower bound: nodes are expanded in order of
// Dist + h where h(v) = b.ToSet(stop)(v), so expansion concentrates around
// the stop set instead of growing a full Dijkstra ball. Distances and
// paths for stop nodes are exact; everything unsettled reads unreachable.
// A nil b degrades to DijkstraWithin. A nil scratch uses the pool.
func (g *Graph) DijkstraWithinBounded(s *DijkstraScratch, src NodeID, stop []NodeID, b Bounds) *SPT {
	if s == nil {
		s = AcquireScratch()
		defer ReleaseScratch(s)
	}
	return g.dijkstraBoundedWith(s, src, stop, b)
}

func (g *Graph) dijkstraBoundedWith(s *DijkstraScratch, src NodeID, stop []NodeID, b Bounds) *SPT {
	if b == nil {
		return g.dijkstraWith(s, src, stop)
	}
	return g.goalDirected(s, src, stop, b.ToSet(stop))
}

// goalDirected is the shared A* core: heap keys are Dist + h, settlement
// stops once every node of stop is settled, and unsettled state is
// invalidated exactly like dijkstraWith's early exit. h must be admissible
// and consistent so that each settled node's distance is final.
func (g *Graph) goalDirected(s *DijkstraScratch, src NodeID, stop []NodeID, h func(NodeID) float64) *SPT {
	faultpoint.Check(faultpoint.SSSPExpand)
	g.ensureCSR()
	n := g.n
	ep := s.beginRun(n)
	t := s.acquireSPT(n, src)
	remaining := 0
	for _, v := range stop {
		if s.stop[v] != ep {
			s.stop[v] = ep
			remaining++
		}
	}
	if s.stop[src] != ep {
		s.stop[src] = ep
		remaining++
	}
	t.Dist[src] = 0
	s.heap = s.heap[:0]
	q := &s.heap
	q.push(pqItem{h(src), src})
	s.HeapPushes++
	for len(*q) > 0 {
		u := q.pop().node
		if s.done[u] == ep {
			continue
		}
		s.done[u] = ep
		s.Settled++
		if s.stop[u] == ep {
			remaining--
			if remaining == 0 {
				for v := 0; v < n; v++ {
					if s.done[v] != ep {
						t.Dist[v] = inf
						t.ParentEdge[v] = None
						t.ParentNode[v] = None
					}
				}
				return t
			}
		}
		du := t.Dist[u]
		// As in dijkstraWith, no settled check per arc: with a consistent h
		// a settled node's distance is final, so the improvement test
		// rejects its arcs on its own.
		as := g.arcs[g.offsets[u]:g.offsets[u+1]]
		ws := g.arcw[g.offsets[u]:g.offsets[u+1]]
		ws = ws[:len(as)]
		for k := range as {
			to := as[k].To
			nd := du + ws[k]
			if nd < t.Dist[to] {
				t.Dist[to] = nd
				t.ParentEdge[to] = as[k].ID
				t.ParentNode[to] = u
				q.push(pqItem{nd + h(to), to})
				s.HeapPushes++
			}
		}
	}
	// Heap exhausted before the stop set settled: some stop nodes are
	// unreachable. Every node ever relaxed was settled (lazy deletion left
	// nothing pending), so settled distances are final and the rest are
	// already Inf.
	return t
}

// BiDijkstra computes one shortest path between src and goal by growing
// Dijkstra balls from both ends simultaneously, settling roughly half the
// nodes a one-sided search would. It returns the path's cost and edge IDs
// (src→goal order), or ok = false if the endpoints are disconnected. For
// src == goal it returns an empty path. A nil scratch uses the pool.
//
// The distance is exact but its floating-point rounding can differ in the
// last bits from a forward-only sum (the two half-path sums are folded in
// a different order), and the returned path can differ from Dijkstra's
// among equal-cost alternatives — the same contract as AStar, only looser
// on the cost bits; callers needing bit-reproducibility against forward
// search must use Dijkstra or AStar.
func (g *Graph) BiDijkstra(s *DijkstraScratch, src, goal NodeID) (float64, []EdgeID, bool) {
	if s == nil {
		s = AcquireScratch()
		defer ReleaseScratch(s)
	}
	faultpoint.Check(faultpoint.SSSPExpand)
	g.ensureCSR()
	if src == goal {
		return 0, []EdgeID{}, true
	}
	n := g.n
	ep := s.beginRun(n)
	tf := s.acquireSPT(n, src)
	tb := s.acquireSPT(n, goal)
	defer func() {
		s.RecycleSPT(tb)
		s.RecycleSPT(tf)
	}()
	tf.Dist[src] = 0
	tb.Dist[goal] = 0
	s.heap = s.heap[:0]
	s.heapB = s.heapB[:0]
	qf, qb := &s.heap, &s.heapB
	qf.push(pqItem{0, src})
	qb.push(pqItem{0, goal})
	s.HeapPushes += 2
	best := inf
	meet := None

	// expand settles one node of the chosen side, relaxing its arcs and
	// tracking the best src…u…goal cost seen through any node with finite
	// labels on both sides (tentative labels are fine: each corresponds to
	// a real path whose parent chain is intact).
	expand := func(q *pq, done []uint32, mine, other *SPT) {
		u := q.pop().node
		if done[u] == ep {
			return
		}
		done[u] = ep
		s.Settled++
		du := mine.Dist[u]
		if c := du + other.Dist[u]; c < best {
			best = c
			meet = u
		}
		as := g.arcs[g.offsets[u]:g.offsets[u+1]]
		ws := g.arcw[g.offsets[u]:g.offsets[u+1]]
		ws = ws[:len(as)]
		for k := range as {
			to := as[k].To
			nd := du + ws[k]
			if nd < mine.Dist[to] {
				mine.Dist[to] = nd
				mine.ParentEdge[to] = as[k].ID
				mine.ParentNode[to] = u
				q.push(pqItem{nd, to})
				s.HeapPushes++
				if c := nd + other.Dist[to]; c < best {
					best = c
					meet = to
				}
			}
		}
	}

	for len(*qf) > 0 || len(*qb) > 0 {
		topF, topB := inf, inf
		if len(*qf) > 0 {
			topF = (*qf)[0].dist
		}
		if len(*qb) > 0 {
			topB = (*qb)[0].dist
		}
		// Nicholson's stopping rule: no undiscovered route can beat best
		// once the frontiers' combined radius reaches it.
		if topF+topB >= best {
			break
		}
		// Expand the shallower frontier; ties go forward (deterministic).
		if topF <= topB {
			expand(qf, s.done, tf, tb)
		} else {
			expand(qb, s.doneB, tb, tf)
		}
	}
	if meet == None {
		return inf, nil, false
	}
	path := tf.PathTo(meet)
	back := tb.PathTo(meet) // goal→meet order
	for i := len(back) - 1; i >= 0; i-- {
		path = append(path, back[i])
	}
	return best, path, true
}
