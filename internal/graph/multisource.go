package graph

import "fpgarouter/internal/faultpoint"

// Seed is one source of a multi-source shortest-path search, carrying the
// initial distance the search starts it at. A set of seeds at distance 0
// makes an existing tree fragment a free source region — the primitive the
// incremental pathfinder uses to reconnect orphaned pins to the surviving
// part of a ripped-up route. Non-zero initial distances express weighted
// source preferences (e.g. partially-paid entry points); they must be
// non-negative and finite.
type Seed struct {
	Node NodeID
	Dist float64
}

// DijkstraFrom computes shortest paths from a set of seeds: Dist[v] is the
// minimum over seeds of seed.Dist plus the seed-to-v path cost. Like
// DijkstraWithin, a non-nil stop set terminates the search once every stop
// node is settled (distances to stop nodes stay exact; everything unsettled
// reads unreachable); nil settles the whole graph. The returned SPT's
// Source is the first seed (None for an empty seed set); seed nodes carry
// ParentEdge None, so PathTo walks back to whichever seed the shortest
// path entered through. s may be nil (a pooled scratch is used).
func (g *Graph) DijkstraFrom(s *DijkstraScratch, seeds []Seed, stop []NodeID) *SPT {
	if s == nil {
		s = AcquireScratch()
		defer ReleaseScratch(s)
	}
	_, t := g.multiSource(s, seeds, stop, nil, nil, false)
	return t
}

// AStarFrom is DijkstraFrom guided by an admissible, consistent bound
// toward the stop set (see Bounds.ToSet): distances to stop nodes are
// exact and identical to DijkstraFrom's, with fewer settled nodes. A stop
// set is required — goal direction has nothing to aim at without one.
func (g *Graph) AStarFrom(s *DijkstraScratch, seeds []Seed, stop []NodeID, b Bounds) *SPT {
	if s == nil {
		s = AcquireScratch()
		defer ReleaseScratch(s)
	}
	_, t := g.multiSource(s, seeds, stop, nil, b.ToSet(stop), false)
	return t
}

// DijkstraFromOverlay is DijkstraFrom under an overlay: every arc costs
// base + price and relaxations never enter blocked nodes. Seed nodes must
// not be blocked.
func (g *Graph) DijkstraFromOverlay(s *DijkstraScratch, seeds []Seed, stop []NodeID, ov *Overlay) *SPT {
	if s == nil {
		s = AcquireScratch()
		defer ReleaseScratch(s)
	}
	_, t := g.multiSource(s, seeds, stop, ov, nil, false)
	return t
}

// AStarFromOverlay is the goal-directed overlay variant of DijkstraFrom.
// h must be admissible and consistent for the overlaid effective weights;
// non-negative prices preserve any base-admissible bound.
func (g *Graph) AStarFromOverlay(s *DijkstraScratch, seeds []Seed, stop []NodeID, ov *Overlay, h func(NodeID) float64) *SPT {
	if s == nil {
		s = AcquireScratch()
		defer ReleaseScratch(s)
	}
	_, t := g.multiSource(s, seeds, stop, ov, h, false)
	return t
}

// AStarFromAnyOverlay runs the seeded search until the FIRST goal settles
// and returns it: with an admissible h (h is 0 on every goal by
// admissibility) the returned goal is one at minimum distance from the
// seed set, with ties broken deterministically by settlement order. The
// returned SPT is exact for the returned goal and every other settled
// node; unsettled nodes read unreachable. Returns (None, t) when no goal
// is reachable. h may be nil for an unguided (plain Dijkstra) search; ov
// may be nil for an unpriced one.
func (g *Graph) AStarFromAnyOverlay(s *DijkstraScratch, seeds []Seed, goals []NodeID, ov *Overlay, h func(NodeID) float64) (NodeID, *SPT) {
	if s == nil {
		s = AcquireScratch()
		defer ReleaseScratch(s)
	}
	return g.multiSource(s, seeds, goals, ov, h, true)
}

// multiSource is the one seeded-search implementation behind the
// DijkstraFrom/AStarFrom family: Dijkstra from a seeded frontier, with an
// optional overlay (priced arcs, blocked nodes), an optional heuristic
// (keys become Dist + h), and two stop disciplines — settle every stop
// node (any=false, the DijkstraWithin contract) or settle the first and
// report it (any=true). Control flow mirrors dijkstraWith so determinism
// carries over: ties break by arc order, and unsettled nodes are
// invalidated before returning so callers never read half-relaxed labels.
func (g *Graph) multiSource(s *DijkstraScratch, seeds []Seed, stop []NodeID, ov *Overlay, h func(NodeID) float64, any bool) (NodeID, *SPT) {
	faultpoint.Check(faultpoint.SSSPExpand)
	g.ensureCSR()
	n := g.n
	ep := s.beginRun(n)
	src := None
	if len(seeds) > 0 {
		src = seeds[0].Node
	}
	t := s.acquireSPT(n, src)
	remaining := -1 // < 0: no early termination
	if stop != nil {
		remaining = 0
		for _, v := range stop {
			if s.stop[v] != ep {
				s.stop[v] = ep
				remaining++
			}
		}
	}
	var price []float64
	var blocked []uint64
	if ov != nil {
		price = ov.price
		blocked = ov.blocked
	}
	s.heap = s.heap[:0]
	q := &s.heap
	for _, sd := range seeds {
		if sd.Dist < t.Dist[sd.Node] {
			t.Dist[sd.Node] = sd.Dist
			key := sd.Dist
			if h != nil {
				key += h(sd.Node)
			}
			q.push(pqItem{key, sd.Node})
			s.HeapPushes++
		}
	}
	// invalidate marks everything not settled this run unreachable; shared
	// by the early-exit paths so tentative labels never escape.
	invalidate := func() {
		for v := 0; v < n; v++ {
			if s.done[v] != ep {
				t.Dist[v] = inf
				t.ParentEdge[v] = None
				t.ParentNode[v] = None
			}
		}
	}
	for len(*q) > 0 {
		u := q.pop().node
		if s.done[u] == ep {
			continue
		}
		s.done[u] = ep
		s.Settled++
		if remaining >= 0 && s.stop[u] == ep {
			if any {
				invalidate()
				return u, t
			}
			remaining--
			if remaining == 0 {
				invalidate()
				return None, t
			}
		}
		du := t.Dist[u]
		as := g.arcs[g.offsets[u]:g.offsets[u+1]]
		ws := g.arcw[g.offsets[u]:g.offsets[u+1]]
		ws = ws[:len(as)]
		for k := range as {
			to := as[k].To
			nd := du + ws[k]
			if price != nil {
				nd += price[as[k].ID]
			}
			if nd < t.Dist[to] {
				if blocked != nil && blocked[to>>6]&(1<<(uint(to)&63)) != 0 {
					continue
				}
				t.Dist[to] = nd
				t.ParentEdge[to] = as[k].ID
				t.ParentNode[to] = u
				key := nd
				if h != nil {
					key += h(to)
				}
				q.push(pqItem{key, to})
				s.HeapPushes++
			}
		}
	}
	if remaining >= 0 {
		invalidate()
	}
	return None, t
}
