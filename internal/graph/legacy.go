package graph

// LegacyDijkstra is the pre-CSR reference implementation of dijkstraWith,
// kept as a parity oracle and microbenchmark baseline: it traverses through
// the public accessors the old adjacency-list layout exposed — Adj, then a
// per-arc Enabled check and Weight load, i.e. one random memory access into
// the edge records per arc — instead of streaming the CSR weight array.
//
// Distances, parents and the HeapPushes/Settled counter increments are
// bit-identical to dijkstraWith on any graph state: the CSR rebuild places
// each node's arcs in edge-insertion order, exactly how the old layout's
// appends ordered them, and the relaxation arithmetic is unchanged. The
// parity tests assert this; `tables -bench-json` times the two loops
// against each other (the SSSP_CSR/SSSP_Legacy pair).
//
// A nil scratch uses the process-wide pool for the duration of the call.
func (g *Graph) LegacyDijkstra(s *DijkstraScratch, src NodeID, stop []NodeID) *SPT {
	if s == nil {
		s = AcquireScratch()
		defer ReleaseScratch(s)
	}
	n := g.n
	ep := s.beginRun(n)
	t := s.acquireSPT(n, src)
	remaining := -1 // < 0: no early termination
	if stop != nil {
		remaining = 0
		for _, v := range stop {
			if s.stop[v] != ep {
				s.stop[v] = ep
				remaining++
			}
		}
		if s.stop[src] != ep {
			s.stop[src] = ep
			remaining++
		}
	}
	t.Dist[src] = 0
	s.heap = s.heap[:0]
	q := &s.heap
	q.push(pqItem{0, src})
	s.HeapPushes++
	for len(*q) > 0 {
		it := q.pop()
		u := it.node
		if s.done[u] == ep {
			continue
		}
		s.done[u] = ep
		s.Settled++
		if remaining >= 0 && s.stop[u] == ep {
			remaining--
			if remaining == 0 {
				for v := 0; v < n; v++ {
					if s.done[v] != ep {
						t.Dist[v] = inf
						t.ParentEdge[v] = None
						t.ParentNode[v] = None
					}
				}
				return t
			}
		}
		du := t.Dist[u]
		for _, a := range g.Adj(u) {
			if !g.Enabled(a.ID) || s.done[a.To] == ep {
				continue
			}
			nd := du + g.Weight(a.ID)
			if nd < t.Dist[a.To] {
				t.Dist[a.To] = nd
				t.ParentEdge[a.To] = a.ID
				t.ParentNode[a.To] = u
				q.push(pqItem{nd, a.To})
				s.HeapPushes++
			}
		}
	}
	return t
}
