package graph

// FloydWarshall computes all-pairs shortest-path distances over the enabled
// edges. It is O(V^3) and exists as a test oracle for Dijkstra and the
// distance-graph constructions; production code uses per-source Dijkstra.
func (g *Graph) FloydWarshall() [][]float64 {
	n := g.n
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = inf
			}
		}
	}
	for id := range g.eu {
		if !g.enabledBit(EdgeID(id)) {
			continue
		}
		u, v, w := g.eu[id], g.ev[id], g.w[id]
		if w < d[u][v] {
			d[u][v] = w
			d[v][u] = w
		}
	}
	for k := 0; k < n; k++ {
		dk := d[k]
		for i := 0; i < n; i++ {
			dik := d[i][k]
			if dik == inf {
				continue
			}
			di := d[i]
			for j := 0; j < n; j++ {
				if nd := dik + dk[j]; nd < di[j] {
					di[j] = nd
				}
			}
		}
	}
	return d
}

// ConnectedComponent returns the set of nodes reachable from src through
// enabled edges (including src), as a boolean membership slice.
func (g *Graph) ConnectedComponent(src NodeID) []bool {
	g.ensureCSR()
	seen := make([]bool, g.n)
	seen[src] = true
	stack := []NodeID{src}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for i, end := g.offsets[u], g.offsets[u+1]; i < end; i++ {
			if to := g.arcs[i].To; g.arcw[i] != inf && !seen[to] {
				seen[to] = true
				stack = append(stack, to)
			}
		}
	}
	return seen
}
