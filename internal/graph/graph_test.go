package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewGraphEmpty(t *testing.T) {
	g := New(5)
	if g.NumNodes() != 5 || g.NumEdges() != 0 {
		t.Fatalf("got %d nodes %d edges, want 5/0", g.NumNodes(), g.NumEdges())
	}
	if g.Degree(0) != 0 {
		t.Fatalf("degree of isolated node = %d", g.Degree(0))
	}
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(3)
	id := g.AddEdge(0, 1, 2.5)
	if id != 0 {
		t.Fatalf("first edge ID = %d", id)
	}
	e := g.Edge(id)
	if e.U != 0 || e.V != 1 || e.W != 2.5 || !e.Enabled {
		t.Fatalf("edge = %+v", e)
	}
	if g.Other(id, 0) != 1 || g.Other(id, 1) != 0 {
		t.Fatal("Other endpoint wrong")
	}
	if g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Fatal("degree wrong after AddEdge")
	}
}

func TestAddEdgePanics(t *testing.T) {
	cases := []struct {
		name string
		f    func(g *Graph)
	}{
		{"self-loop", func(g *Graph) { g.AddEdge(1, 1, 1) }},
		{"out-of-range", func(g *Graph) { g.AddEdge(0, 9, 1) }},
		{"negative-node", func(g *Graph) { g.AddEdge(-1, 0, 1) }},
		{"negative-weight", func(g *Graph) { g.AddEdge(0, 1, -1) }},
		{"nan-weight", func(g *Graph) { g.AddEdge(0, 1, math.NaN()) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			c.f(New(3))
		})
	}
}

func TestParallelEdgesAllowed(t *testing.T) {
	g := New(2)
	a := g.AddEdge(0, 1, 1)
	b := g.AddEdge(0, 1, 2)
	if a == b {
		t.Fatal("parallel edges share an ID")
	}
	if g.Degree(0) != 2 {
		t.Fatalf("degree = %d, want 2", g.Degree(0))
	}
}

func TestEnableDisable(t *testing.T) {
	g := New(2)
	id := g.AddEdge(0, 1, 1)
	if !g.Enabled(id) {
		t.Fatal("new edge should be enabled")
	}
	g.SetEnabled(id, false)
	if g.Enabled(id) || g.Degree(0) != 0 {
		t.Fatal("disable did not take effect")
	}
	g.SetEnabled(id, true)
	if !g.Enabled(id) || g.Degree(0) != 1 {
		t.Fatal("re-enable did not take effect")
	}
}

func TestSetWeightAndAddWeight(t *testing.T) {
	g := New(2)
	id := g.AddEdge(0, 1, 1)
	g.SetWeight(id, 4)
	if g.Weight(id) != 4 {
		t.Fatal("SetWeight failed")
	}
	g.AddWeight(id, 0.5)
	if g.Weight(id) != 4.5 {
		t.Fatal("AddWeight failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative weight")
		}
	}()
	g.SetWeight(id, -1)
}

func TestClone(t *testing.T) {
	g := New(3)
	id := g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	c := g.Clone()
	c.SetWeight(id, 9)
	c.SetEnabled(1, false)
	if g.Weight(id) != 1 || !g.Enabled(1) {
		t.Fatal("clone shares state with original")
	}
	if c.Weight(id) != 9 || c.Enabled(1) {
		t.Fatal("clone mutations lost")
	}
}

func TestDijkstraLine(t *testing.T) {
	// 0 -1- 1 -2- 2 -3- 3
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 3)
	spt := g.Dijkstra(0)
	want := []float64{0, 1, 3, 6}
	for v, d := range want {
		if spt.Dist[v] != d {
			t.Fatalf("dist[%d] = %v, want %v", v, spt.Dist[v], d)
		}
	}
	path := spt.PathTo(3)
	if len(path) != 3 {
		t.Fatalf("path length %d, want 3", len(path))
	}
}

func TestDijkstraPrefersCheaperDetour(t *testing.T) {
	// Direct edge 0-2 costs 10; detour through 1 costs 3.
	g := New(3)
	g.AddEdge(0, 2, 10)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	spt := g.Dijkstra(0)
	if spt.Dist[2] != 3 {
		t.Fatalf("dist[2] = %v, want 3", spt.Dist[2])
	}
	if got := spt.PathTo(2); len(got) != 2 {
		t.Fatalf("path = %v, want 2 edges", got)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	spt := g.Dijkstra(0)
	if spt.Reachable(2) {
		t.Fatal("node 2 should be unreachable")
	}
	if spt.PathTo(2) != nil {
		t.Fatal("PathTo unreachable should be nil")
	}
	if p := spt.PathTo(0); p == nil || len(p) != 0 {
		t.Fatal("PathTo source should be empty non-nil")
	}
}

func TestDijkstraRespectsDisabledEdges(t *testing.T) {
	g := New(3)
	a := g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.SetEnabled(a, false)
	spt := g.Dijkstra(0)
	if spt.Reachable(1) || spt.Reachable(2) {
		t.Fatal("disabled edge should block all paths")
	}
}

func TestDijkstraZeroWeightEdges(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 2, 0)
	spt := g.Dijkstra(0)
	if spt.Dist[2] != 0 {
		t.Fatalf("dist through zero edges = %v", spt.Dist[2])
	}
}

func TestDijkstraMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		g := RandomConnected(rng, n, n*3, 10)
		// Randomly disable a few edges (keeping potential disconnection).
		for i := 0; i < g.NumEdges()/10; i++ {
			g.SetEnabled(EdgeID(rng.Intn(g.NumEdges())), false)
		}
		apsp := g.FloydWarshall()
		for src := 0; src < n; src += 1 + n/5 {
			spt := g.Dijkstra(NodeID(src))
			for v := 0; v < n; v++ {
				if math.Abs(spt.Dist[v]-apsp[src][v]) > 1e-9 &&
					!(math.IsInf(spt.Dist[v], 1) && math.IsInf(apsp[src][v], 1)) {
					t.Fatalf("trial %d: dist(%d,%d) dijkstra=%v fw=%v",
						trial, src, v, spt.Dist[v], apsp[src][v])
				}
			}
		}
	}
}

func TestDijkstraPathCostsMatchDist(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := RandomConnected(rng, 40, 120, 5)
	spt := g.Dijkstra(0)
	for v := NodeID(1); v < 40; v++ {
		path := spt.PathTo(v)
		cost := g.TotalWeight(path)
		if math.Abs(cost-spt.Dist[v]) > 1e-9 {
			t.Fatalf("path cost %v != dist %v for node %d", cost, spt.Dist[v], v)
		}
		// Path must start at source and end at v.
		if g.Edge(path[0]).U != 0 && g.Edge(path[0]).V != 0 {
			t.Fatalf("path to %d does not start at source", v)
		}
		last := g.Edge(path[len(path)-1])
		if last.U != v && last.V != v {
			t.Fatalf("path to %d does not end at %d", v, v)
		}
	}
}

func TestSPTCacheMemoizes(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	c := NewSPTCache(g)
	t1 := c.Tree(0)
	t2 := c.Tree(0)
	if t1 != t2 {
		t.Fatal("cache returned different trees for same source")
	}
	if c.Runs != 1 {
		t.Fatalf("Runs = %d, want 1", c.Runs)
	}
	if d := c.Dist(2, 0); d != 2 {
		t.Fatalf("symmetric Dist = %v, want 2", d)
	}
	if c.Runs != 1 {
		t.Fatalf("Dist(2,0) should reuse tree rooted at 0; Runs = %d", c.Runs)
	}
	if _, ok := c.CachedTree(1); ok {
		t.Fatal("tree at 1 should not be cached")
	}
	if p := c.Path(2, 0); len(p) != 2 {
		t.Fatalf("Path(2,0) = %v", p)
	}
	if c.Runs != 1 {
		t.Fatalf("Path should reuse cached endpoint; Runs = %d", c.Runs)
	}
}

func TestMSTLineAndCycle(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 3)
	g.AddEdge(3, 0, 10) // cycle edge, should be excluded
	k, err := g.KruskalMST()
	if err != nil {
		t.Fatal(err)
	}
	if got := g.TotalWeight(k); got != 6 {
		t.Fatalf("kruskal cost = %v, want 6", got)
	}
	p, err := g.PrimMST(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.TotalWeight(p); got != 6 {
		t.Fatalf("prim cost = %v, want 6", got)
	}
}

func TestMSTDisconnected(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	if _, err := g.KruskalMST(); err != ErrDisconnected {
		t.Fatalf("kruskal err = %v", err)
	}
	if _, err := g.PrimMST(0); err != ErrDisconnected {
		t.Fatalf("prim err = %v", err)
	}
}

func TestPrimEqualsKruskalRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(40)
		g := RandomConnected(rng, n, n*2, 9)
		k, err := g.KruskalMST()
		if err != nil {
			t.Fatal(err)
		}
		p, err := g.PrimMST(NodeID(rng.Intn(n)))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(g.TotalWeight(k)-g.TotalWeight(p)) > 1e-9 {
			t.Fatalf("trial %d: kruskal %v != prim %v", trial, g.TotalWeight(k), g.TotalWeight(p))
		}
	}
}

func TestUnionFind(t *testing.T) {
	u := NewUnionFind(5)
	if u.Sets() != 5 {
		t.Fatal("initial sets")
	}
	if !u.Union(0, 1) || !u.Union(1, 2) {
		t.Fatal("unions should succeed")
	}
	if u.Union(0, 2) {
		t.Fatal("redundant union should report false")
	}
	if !u.Connected(0, 2) || u.Connected(0, 3) {
		t.Fatal("connectivity wrong")
	}
	if u.Sets() != 3 {
		t.Fatalf("sets = %d, want 3", u.Sets())
	}
}

func TestGridGraph(t *testing.T) {
	g := NewGrid(4, 3, 1)
	if g.NumNodes() != 12 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// 4×3 grid: horizontal edges 3*3=9, vertical 4*2=8.
	if g.NumEdges() != 17 {
		t.Fatalf("edges = %d, want 17", g.NumEdges())
	}
	if g.Node(3, 2) != 11 {
		t.Fatal("Node mapping wrong")
	}
	x, y := g.Coords(11)
	if x != 3 || y != 2 {
		t.Fatal("Coords mapping wrong")
	}
	// Shortest path between opposite corners is the Manhattan distance.
	spt := g.Dijkstra(g.Node(0, 0))
	if d := spt.Dist[g.Node(3, 2)]; d != 5 {
		t.Fatalf("corner distance = %v, want 5", d)
	}
	if mw := g.MeanWeight(); mw != 1 {
		t.Fatalf("mean weight = %v", mw)
	}
}

func TestConnectedComponent(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	comp := g.ConnectedComponent(0)
	if !comp[0] || !comp[1] || comp[2] || comp[3] {
		t.Fatalf("component = %v", comp)
	}
}
