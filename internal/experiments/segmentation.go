package experiments

import (
	"fmt"
	"io"

	"fpgarouter/internal/circuits"
	"fpgarouter/internal/router"
)

// SegmentationRow compares one channel segmentation scheme on one circuit.
type SegmentationRow struct {
	Scheme     string
	Width      int // channel width used
	Routed     bool
	Wirelength float64
	MaxPath    float64 // sum over nets of max source-sink pathlength
	WiresUsed  int
	// Switches counts routing-graph edges over all routed trees — each
	// edge is one programmable switch crossing, the delay term long
	// segments exist to reduce.
	Switches int
}

// Segmentation studies segmented routing channels (the architecture
// extension of real Xilinx 4000 devices: double- and quad-length lines
// that skip intermediate switch blocks). The same circuit is routed at the
// same width under different per-track segment length mixes; longer
// segments reduce the switch crossings on long connections (lower path
// delay) at the price of capacity fragmentation (a long line is consumed
// whole even when one span of it is needed).
func Segmentation(circuit string, seed int64, width, passes int) ([]SegmentationRow, error) {
	spec, ok := circuits.SpecByName(circuit)
	if !ok {
		return nil, fmt.Errorf("segmentation: unknown circuit %q", circuit)
	}
	ckt, err := circuits.Synthesize(spec, seed)
	if err != nil {
		return nil, err
	}
	schemes := []struct {
		name string
		mix  func(w int) []int
	}{
		{"single (all length-1)", func(w int) []int { return nil }},
		{"quarter double", func(w int) []int {
			lens := make([]int, w)
			for t := range lens {
				lens[t] = 1
				if t%4 == 3 {
					lens[t] = 2
				}
			}
			return lens
		}},
		{"half double", func(w int) []int {
			lens := make([]int, w)
			for t := range lens {
				lens[t] = 1 + t%2
			}
			return lens
		}},
		{"double+quad mix", func(w int) []int {
			lens := make([]int, w)
			for t := range lens {
				switch t % 4 {
				case 0, 1:
					lens[t] = 1
				case 2:
					lens[t] = 2
				default:
					lens[t] = 4
				}
			}
			return lens
		}},
	}
	var rows []SegmentationRow
	for _, s := range schemes {
		res, fab, err := router.RouteWithFabric(ckt, width, router.Options{
			MaxPasses: passes,
			SegLens:   s.mix(width),
		})
		row := SegmentationRow{Scheme: s.name, Width: width}
		if err == nil {
			row.Routed = true
			row.Wirelength = res.Wirelength
			row.MaxPath = res.MaxPathSum
			for _, u := range fab.SpanUtilization() {
				row.WiresUsed += int(u)
			}
			for _, nr := range res.Nets {
				row.Switches += len(nr.Tree.Edges)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintSegmentation renders the segmentation study.
func PrintSegmentation(w io.Writer, circuit string, rows []SegmentationRow) {
	fmt.Fprintf(w, "Channel segmentation study on %s (same width, IKMB router):\n", circuit)
	fmt.Fprintf(w, "%-22s %6s %8s %12s %12s %10s %9s\n", "scheme", "W", "routed", "wirelength", "maxpath sum", "span-uses", "switches")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %6d %8v %12.1f %12.1f %10d %9d\n",
			r.Scheme, r.Width, r.Routed, r.Wirelength, r.MaxPath, r.WiresUsed, r.Switches)
	}
	fmt.Fprintln(w, "longer segments cut switch crossings (delay) but fragment capacity (routability).")
}
