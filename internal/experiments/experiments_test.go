package experiments

import (
	"strings"
	"testing"

	"fpgarouter/internal/circuits"
	"fpgarouter/internal/router"
)

func rowByName(rows []Table1Row, name string) Table1Row {
	for _, r := range rows {
		if r.Alg == name {
			return r
		}
	}
	panic("missing row " + name)
}

func TestTable1Shape(t *testing.T) {
	blocks, err := Table1(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 6 {
		t.Fatalf("blocks = %d, want 6 (3 levels × 2 net sizes)", len(blocks))
	}
	for _, b := range blocks {
		if len(b.Rows) != 8 {
			t.Fatalf("rows = %d, want 8", len(b.Rows))
		}
		kmb := rowByName(b.Rows, "KMB")
		if kmb.WirePct != 0 {
			t.Fatalf("KMB wire%% = %v, must be 0 by normalization", kmb.WirePct)
		}
		// Iterated constructions never lose to their bases (per instance,
		// hence also on average).
		if ikmb := rowByName(b.Rows, "IKMB"); ikmb.WirePct > 1e-9 {
			t.Fatalf("IKMB average wire%% %v above KMB", ikmb.WirePct)
		}
		if zel, izel := rowByName(b.Rows, "ZEL"), rowByName(b.Rows, "IZEL"); izel.WirePct > zel.WirePct+1e-9 {
			t.Fatalf("IZEL %v worse than ZEL %v", izel.WirePct, zel.WirePct)
		}
		// Arborescences have optimal max pathlength by construction.
		for _, name := range []string{"DJKA", "DOM", "PFA", "IDOM"} {
			if r := rowByName(b.Rows, name); r.MaxPathPct > 1e-9 {
				t.Fatalf("%s max path %% = %v, want 0", name, r.MaxPathPct)
			}
		}
		// PFA folds paths, DJKA doesn't: PFA must not use more wire.
		if pfa, djka := rowByName(b.Rows, "PFA"), rowByName(b.Rows, "DJKA"); pfa.WirePct > djka.WirePct+1e-9 {
			t.Fatalf("PFA %v worse than DJKA %v", pfa.WirePct, djka.WirePct)
		}
		// IDOM never loses to DOM.
		if idom, dom := rowByName(b.Rows, "IDOM"), rowByName(b.Rows, "DOM"); idom.WirePct > dom.WirePct+1e-9 {
			t.Fatalf("IDOM %v worse than DOM %v", idom.WirePct, dom.WirePct)
		}
		if b.MeanEdge < 1 {
			t.Fatalf("mean edge weight %v below 1", b.MeanEdge)
		}
	}
	// Congestion raises the measured mean edge weight monotonically.
	if !(blocks[0].MeanEdge < blocks[2].MeanEdge && blocks[2].MeanEdge < blocks[4].MeanEdge) {
		t.Fatalf("congestion levels not increasing: %v %v %v",
			blocks[0].MeanEdge, blocks[2].MeanEdge, blocks[4].MeanEdge)
	}
}

func TestFigure4MatchesPaperShape(t *testing.T) {
	r, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if r.KMBWire <= r.IGMSTWire {
		t.Fatal("KMB must pay extra wirelength on the Figure 4 instance")
	}
	if r.IGMSTWire != r.OptWire || r.IDOMWire != r.OptWire {
		t.Fatal("IGMST/IDOM must be wirelength-optimal on the found instance")
	}
	if r.IDOMMaxPath != r.OptMaxPath {
		t.Fatal("IDOM must have optimal max pathlength")
	}
	if r.WireImprovePct <= 0 || r.IDOMPathImpPct <= 0 {
		t.Fatalf("improvements must be positive: %+v", r)
	}
}

func TestFigure10PFARatioGrows(t *testing.T) {
	rows, err := Figure10([]int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if rows[2].PFARatio <= rows[1].PFARatio || rows[1].PFARatio <= rows[0].PFARatio {
		t.Fatalf("PFA ratio not growing: %+v", rows)
	}
	if rows[2].PFARatio < 1.5 {
		t.Fatalf("PFA ratio %v too small for the worst-case family", rows[2].PFARatio)
	}
	for _, r := range rows {
		if r.IDOMRati > 1.0+1e-9 {
			t.Fatalf("IDOM must solve the Figure 10 family optimally, got ratio %v", r.IDOMRati)
		}
	}
}

func TestFigure11RatioGrows(t *testing.T) {
	rows, err := Figure11([]int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].Ratio <= rows[0].Ratio {
		t.Fatalf("staircase ratio not growing: %+v", rows)
	}
	if rows[1].Ratio >= 2.0 {
		t.Fatalf("ratio %v exceeds PFA's grid bound of 2", rows[1].Ratio)
	}
}

func TestFigure14IDOMRatioGrows(t *testing.T) {
	rows, err := Figure14([]int{3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !(rows[0].Ratio < rows[1].Ratio && rows[1].Ratio < rows[2].Ratio) {
		t.Fatalf("IDOM ratio not growing logarithmically: %+v", rows)
	}
	// Greedy selects all m bait boxes: cost ≈ m + N·ε.
	if rows[2].IDOM < float64(rows[2].BaitBoxes) {
		t.Fatalf("IDOM cost %v below bait-box count %d", rows[2].IDOM, rows[2].BaitBoxes)
	}
}

func TestFigure16RendersBusc(t *testing.T) {
	if testing.Short() {
		t.Skip("routes a full benchmark circuit")
	}
	r, err := Figure16(RouterConfig{Seed: 1, MaxPasses: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r.Width > 10 {
		t.Fatalf("busc needed width %d; published CGE result is 10", r.Width)
	}
	if !strings.Contains(r.SVG, "<svg") || !strings.Contains(r.SVG, "line") {
		t.Fatal("SVG missing expected elements")
	}
	if !strings.Contains(r.ASCII, "channel utilization") {
		t.Fatal("ASCII render missing header")
	}
}

func TestMinWidthTerm1BeatsPublished(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a minimum-width search")
	}
	spec, _ := circuits.SpecByName("term1")
	row, err := minWidthFor(spec, router.AlgIKMB, RouterConfig{Seed: 1, MaxPasses: 8})
	if err != nil {
		t.Fatal(err)
	}
	// The trend of Tables 3: our router needs no more width than the
	// published SEGA/GBP results.
	if row.MinWidth > spec.SEGA || row.MinWidth > spec.GBP {
		t.Fatalf("term1 min width %d exceeds published SEGA %d / GBP %d",
			row.MinWidth, spec.SEGA, spec.GBP)
	}
}

func TestTable5MetricsSingleCircuit(t *testing.T) {
	if testing.Short() {
		t.Skip("routes a benchmark circuit three times")
	}
	spec, _ := circuits.SpecByName("term1")
	ckt, err := circuits.Synthesize(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	results := map[string]*router.Result{}
	for _, alg := range []string{router.AlgIKMB, router.AlgPFA, router.AlgIDOM} {
		res, err := router.Route(ckt, spec.Table5W, router.Options{Algorithm: alg, MaxPasses: 8})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		results[alg] = res
	}
	base := results[router.AlgIKMB]
	// The arborescence routers must not lengthen critical paths on
	// average (Table 5's headline: they shorten them).
	for _, alg := range []string{router.AlgPFA, router.AlgIDOM} {
		if d := avgPathDelta(results[alg], base); d > 1.0 {
			t.Fatalf("%s average max-path change %+.2f%% vs IKMB; expected ≤ 0-ish", alg, d)
		}
	}
}

func TestTradeoffShape(t *testing.T) {
	rows, err := Tradeoff(1, 6, 10)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]TradeoffRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// Tuned fully toward pathlength, the trade-off methods sit at optimal
	// radius; PFA/IDOM match that radius with no more wirelength.
	for _, name := range []string{"PD(c=1.00)", "BRBC(e=0.00)", "PFA", "IDOM", "DJKA"} {
		if r, ok := byName[name]; !ok || r.RadiusPct > 1e-9 {
			t.Fatalf("%s radius%% = %+v (ok=%v), want 0", name, byName[name], ok)
		}
	}
	if byName["PFA"].WirePct > byName["PD(c=1.00)"].WirePct+1e-9 {
		t.Fatalf("PFA wire %v above PD(1) %v", byName["PFA"].WirePct, byName["PD(c=1.00)"].WirePct)
	}
	if byName["PFA"].WirePct > byName["BRBC(e=0.00)"].WirePct+1e-9 {
		t.Fatalf("PFA wire %v above BRBC(0) %v", byName["PFA"].WirePct, byName["BRBC(e=0.00)"].WirePct)
	}
	// PD(0) is the distance-graph MST: it matches KMB's wirelength.
	if pd0 := byName["PD(c=0.00)"]; pd0.WirePct > 1e-6 {
		t.Fatalf("PD(0) wire%% = %v, want ≈ 0 (KMB-like)", pd0.WirePct)
	}
}

func TestSegmentationStudyRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("routes a benchmark circuit several times")
	}
	rows, err := Segmentation("term1", 1, 10, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !rows[0].Routed {
		t.Fatal("single-length scheme must route at the generous width")
	}
	// Longer segments cannot increase the switch count per wirelength;
	// where both route, the segmented scheme uses fewer tree edges.
	for _, r := range rows[1:] {
		if r.Routed && r.Switches >= rows[0].Switches && r.Wirelength <= rows[0].Wirelength {
			t.Fatalf("segmentation gave more switches at no extra wirelength: %+v vs %+v", r, rows[0])
		}
	}
}
