package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"fpgarouter/internal/circuits"
	"fpgarouter/internal/router"
	"fpgarouter/internal/stats"
)

// progress emits a coarse progress line to stderr so long sweeps are
// observable; cmd/tables runs can take tens of minutes per table.
func progress(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "[%s] ", time.Now().Format("15:04:05"))
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// RouterConfig bundles the knobs shared by the router-based experiments
// (Tables 2–5). The zero value is completed with the paper's settings.
type RouterConfig struct {
	Seed      int64 // circuit synthesis seed
	MaxPasses int   // feasibility threshold (paper: 20)
	// Stats, when non-nil, accumulates router work counters (SSSP runs,
	// rip-ups, width probes, …) across every routing call of the sweep.
	Stats *stats.Collector
	// Ctx, when non-nil, bounds the sweep: its cancellation (cmd/tables
	// -timeout) abandons in-flight routing at the router's pass/net
	// boundaries with router.ErrCanceled.
	Ctx context.Context
	// CandidateWorkers is forwarded to router.Options.CandidateWorkers for
	// every routing call of the sweep (0 = GOMAXPROCS capped at 8, 1 =
	// sequential; results are identical at every setting).
	CandidateWorkers int
	// SingleStep is forwarded to router.Options.SingleStep: one-candidate-
	// per-round Steiner admission (the paper's Figure 5 template) instead
	// of the router's default batched admission.
	SingleStep bool
	// LazyScan is forwarded to router.Options.LazyScan for every routing
	// call of the sweep: the lazy-greedy candidate scan with exactness
	// fallback (results identical on or off; only evaluation counts
	// change). Arms under SingleStep; inert for batched admission.
	LazyScan bool
	// GoalDirected is forwarded to router.Options.GoalDirected: A* toward
	// each net's stop set under the fabric's coordinate lower bound, and
	// bidirectional Dijkstra for 2-pin nets. Costs stay exact; among
	// equal-cost shortest paths the goal-directed searches may choose
	// differently, so tables can deviate within ties.
	GoalDirected bool
	// Parallel is forwarded to router.Options.Parallel: the net-parallel
	// negotiated-congestion router (internal/pathfinder) instead of the
	// sequential rip-up/re-route loop. Only the kmb/ikmb algorithms
	// support it; sweeps over other algorithms fail with a clear error.
	Parallel bool
	// NetWorkers is forwarded to router.Options.NetWorkers: net-routing
	// goroutines per pathfinder iteration (0 = GOMAXPROCS capped at 8;
	// results are identical for any worker count).
	NetWorkers int
	// IncrementalReroute is forwarded to router.Options.IncrementalReroute:
	// partial rip-up inside the parallel router (contested nets keep the
	// non-overflowed fragment of their previous tree and reconnect orphaned
	// pins by multi-source search; reduce/reprice run as deltas). Only
	// meaningful with Parallel.
	IncrementalReroute bool
}

func (c RouterConfig) withDefaults() RouterConfig {
	// Parallel mode keeps MaxPasses 0 so router.Options picks its own,
	// larger iteration budget (pathfinder iterations are much cheaper
	// than full rip-up passes).
	if c.MaxPasses == 0 && !c.Parallel {
		c.MaxPasses = 20
	}
	return c
}

// WidthRow is one circuit's minimum-channel-width result.
type WidthRow struct {
	Spec     circuits.Spec
	MinWidth int
	Passes   int // passes used at the minimum width
}

// minWidthFor synthesizes the circuit and searches its minimum channel
// width for the given algorithm, starting near the paper's own result.
func minWidthFor(spec circuits.Spec, alg string, cfg RouterConfig) (WidthRow, error) {
	ckt, err := circuits.Synthesize(spec, cfg.Seed)
	if err != nil {
		return WidthRow{}, err
	}
	start := spec.PaperIKMB
	switch alg {
	case router.AlgPFA:
		if spec.PaperPFA > 0 {
			start = spec.PaperPFA
		}
	case router.AlgIDOM:
		if spec.PaperIDOM > 0 {
			start = spec.PaperIDOM
		}
	}
	if start < 2 {
		start = 6
	}
	progress("min-width search: %s with %s (start %d)", spec.Name, alg, start)
	ctx := router.NewContext(cfg.Stats)
	defer ctx.Close()
	w, res, _, err := router.MinWidthContext(cfg.Ctx, ctx, ckt, start, router.Options{
		Algorithm:          alg,
		MaxPasses:          cfg.MaxPasses,
		CandidateWorkers:   cfg.CandidateWorkers,
		SingleStep:         cfg.SingleStep,
		LazyScan:           cfg.LazyScan,
		GoalDirected:       cfg.GoalDirected,
		Parallel:           cfg.Parallel,
		NetWorkers:         cfg.NetWorkers,
		IncrementalReroute: cfg.IncrementalReroute,
	})
	if err != nil {
		return WidthRow{}, fmt.Errorf("%s/%s: %w", spec.Name, alg, err)
	}
	progress("  -> %s/%s: width %d", spec.Name, alg, w)
	return WidthRow{Spec: spec, MinWidth: w, Passes: res.Passes}, nil
}

// Table2 reproduces Table 2: minimum channel width of the five 3000-series
// circuits using the IKMB-based router, against CGE's published widths.
func Table2(cfg RouterConfig) ([]WidthRow, error) {
	cfg = cfg.withDefaults()
	var rows []WidthRow
	for _, spec := range circuits.Table2Circuits {
		row, err := minWidthFor(spec, router.AlgIKMB, cfg)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table3 reproduces Table 3: minimum channel width of the nine 4000-series
// circuits using the IKMB-based router, against SEGA's and GBP's published
// widths.
func Table3(cfg RouterConfig) ([]WidthRow, error) {
	cfg = cfg.withDefaults()
	var rows []WidthRow
	for _, spec := range circuits.Table3Circuits {
		row, err := minWidthFor(spec, router.AlgIKMB, cfg)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTable2 renders Table 2 with the published CGE widths and totals.
func PrintTable2(w io.Writer, rows []WidthRow) {
	fmt.Fprintln(w, "Table 2: minimum channel width, Xilinx 3000-series (Fs=6, Fc=⌈0.6W⌉)")
	fmt.Fprintf(w, "%-10s %8s %6s %12s %12s %14s\n", "circuit", "size", "nets", "CGE(publ.)", "ours(IKMB)", "paper's router")
	totCGE, totOurs, totPaper := 0, 0, 0
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %3dx%-4d %6d %12d %12d %14d\n",
			r.Spec.Name, r.Spec.Cols, r.Spec.Rows, r.Spec.TotalNets(), r.Spec.CGE, r.MinWidth, r.Spec.PaperIKMB)
		totCGE += r.Spec.CGE
		totOurs += r.MinWidth
		totPaper += r.Spec.PaperIKMB
	}
	fmt.Fprintf(w, "%-10s %8s %6s %12d %12d %14d\n", "totals", "", "", totCGE, totOurs, totPaper)
	fmt.Fprintf(w, "CGE/ours ratio: %.2f (paper reported 1.22)\n", float64(totCGE)/float64(totOurs))
}

// PrintTable3 renders Table 3 with the published SEGA/GBP widths.
func PrintTable3(w io.Writer, rows []WidthRow) {
	fmt.Fprintln(w, "Table 3: minimum channel width, Xilinx 4000-series (Fs=3, Fc=W)")
	fmt.Fprintf(w, "%-10s %8s %6s %6s %6s %12s %14s\n", "circuit", "size", "nets", "SEGA", "GBP", "ours(IKMB)", "paper's router")
	totS, totG, totOurs, totPaper := 0, 0, 0, 0
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %3dx%-4d %6d %6d %6d %12d %14d\n",
			r.Spec.Name, r.Spec.Cols, r.Spec.Rows, r.Spec.TotalNets(), r.Spec.SEGA, r.Spec.GBP, r.MinWidth, r.Spec.PaperIKMB)
		totS += r.Spec.SEGA
		totG += r.Spec.GBP
		totOurs += r.MinWidth
		totPaper += r.Spec.PaperIKMB
	}
	fmt.Fprintf(w, "%-10s %8s %6s %6d %6d %12d %14d\n", "totals", "", "", totS, totG, totOurs, totPaper)
	fmt.Fprintf(w, "SEGA/ours ratio: %.2f (paper 1.26); GBP/ours ratio: %.2f (paper 1.17)\n",
		float64(totS)/float64(totOurs), float64(totG)/float64(totOurs))
}

// Table4Row holds the per-algorithm minimum widths of one circuit.
type Table4Row struct {
	Spec            circuits.Spec
	IKMB, PFA, IDOM int
}

// Table4 reproduces Table 4: minimum channel width of the 4000-series
// circuits under IKMB (wirelength only) vs PFA and IDOM (wirelength and
// optimal pathlength). The expected ordering is IKMB ≤ IDOM ≤ PFA.
func Table4(cfg RouterConfig) ([]Table4Row, error) {
	cfg = cfg.withDefaults()
	var rows []Table4Row
	for _, spec := range circuits.Table3Circuits {
		row := Table4Row{Spec: spec}
		for _, alg := range []string{router.AlgIKMB, router.AlgPFA, router.AlgIDOM} {
			wr, err := minWidthFor(spec, alg, cfg)
			if err != nil {
				return rows, err
			}
			switch alg {
			case router.AlgIKMB:
				row.IKMB = wr.MinWidth
			case router.AlgPFA:
				row.PFA = wr.MinWidth
			case router.AlgIDOM:
				row.IDOM = wr.MinWidth
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTable4 renders Table 4.
func PrintTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintln(w, "Table 4: minimum channel width by algorithm, Xilinx 4000-series")
	fmt.Fprintf(w, "%-10s %6s %6s | %6s %6s %6s | paper: %5s %5s %5s\n",
		"circuit", "SEGA", "GBP", "IKMB", "PFA", "IDOM", "IKMB", "PFA", "IDOM")
	var tI, tP, tD int
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %6d %6d | %6d %6d %6d | paper: %5d %5d %5d\n",
			r.Spec.Name, r.Spec.SEGA, r.Spec.GBP, r.IKMB, r.PFA, r.IDOM,
			r.Spec.PaperIKMB, r.Spec.PaperPFA, r.Spec.PaperIDOM)
		tI += r.IKMB
		tP += r.PFA
		tD += r.IDOM
	}
	fmt.Fprintf(w, "totals: IKMB %d, PFA %d, IDOM %d (ratios %.2f / %.2f / %.2f; paper 1.00 / 1.17 / 1.13)\n",
		tI, tP, tD, 1.0, float64(tP)/float64(tI), float64(tD)/float64(tI))
}

// Table5Row compares PFA and IDOM against IKMB at one shared channel width.
type Table5Row struct {
	Spec  circuits.Spec
	Width int
	// Percent wirelength increase vs IKMB (positive = more wire).
	PFAWirePct, IDOMWirePct float64
	// Percent max-pathlength change vs IKMB (negative = shorter critical
	// paths), averaged per net.
	PFAPathPct, IDOMPathPct float64
}

// Table5 reproduces Table 5: all three algorithms route each circuit at the
// same channel width (the published Table 5 width, which accommodates all
// of them), and we report PFA/IDOM wirelength increase and max-pathlength
// decrease relative to IKMB.
func Table5(cfg RouterConfig) ([]Table5Row, error) {
	cfg = cfg.withDefaults()
	var rows []Table5Row
	algs := []string{router.AlgIKMB, router.AlgPFA, router.AlgIDOM}
	for _, spec := range circuits.Table3Circuits {
		ckt, err := circuits.Synthesize(spec, cfg.Seed)
		if err != nil {
			return rows, err
		}
		// The paper routes at the smallest width accommodating all three
		// algorithms; start from the published Table 5 width and widen
		// until every algorithm succeeds.
		ctx := router.NewContext(cfg.Stats)
		defer ctx.Close()
		var results map[string]*router.Result
		width := spec.Table5W
		for ; width <= 4*spec.Table5W; width++ {
			results = map[string]*router.Result{}
			for _, alg := range algs {
				progress("table 5: %s at width %d with %s", spec.Name, width, alg)
				res, err := router.RouteContext(cfg.Ctx, ctx, ckt, width, router.Options{Algorithm: alg, MaxPasses: cfg.MaxPasses, CandidateWorkers: cfg.CandidateWorkers, SingleStep: cfg.SingleStep, LazyScan: cfg.LazyScan, GoalDirected: cfg.GoalDirected, Parallel: cfg.Parallel, NetWorkers: cfg.NetWorkers, IncrementalReroute: cfg.IncrementalReroute})
				if err != nil {
					if errors.Is(err, router.ErrUnroutable) {
						break
					}
					return rows, err // canceled or a hard failure: stop widening
				}
				results[alg] = res
			}
			if len(results) == len(algs) {
				break
			}
		}
		if len(results) != len(algs) {
			return rows, fmt.Errorf("table5: %s unroutable by all algorithms up to width %d", spec.Name, width)
		}
		base := results[router.AlgIKMB]
		row := Table5Row{Spec: spec, Width: width}
		row.PFAWirePct = (results[router.AlgPFA].Wirelength/base.Wirelength - 1) * 100
		row.IDOMWirePct = (results[router.AlgIDOM].Wirelength/base.Wirelength - 1) * 100
		row.PFAPathPct = avgPathDelta(results[router.AlgPFA], base)
		row.IDOMPathPct = avgPathDelta(results[router.AlgIDOM], base)
		rows = append(rows, row)
	}
	return rows, nil
}

// avgPathDelta averages the per-net percent change in max source-sink
// pathlength of res vs base (nets with zero base pathlength are skipped).
func avgPathDelta(res, base *router.Result) float64 {
	sum, cnt := 0.0, 0
	for i := range base.Nets {
		b := base.Nets[i].MaxPath
		if b <= 0 {
			continue
		}
		sum += (res.Nets[i].MaxPath/b - 1) * 100
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// PrintTable5 renders Table 5.
func PrintTable5(w io.Writer, rows []Table5Row) {
	fmt.Fprintln(w, "Table 5: % wirelength increase and max-pathlength change vs IKMB at equal width")
	fmt.Fprintf(w, "%-10s %6s %10s %10s %12s %12s\n", "circuit", "W", "PFA wire%", "IDOM wire%", "PFA path%", "IDOM path%")
	var sw, sdw, sp, sdp float64
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %6d %10.1f %10.1f %12.1f %12.1f\n",
			r.Spec.Name, r.Width, r.PFAWirePct, r.IDOMWirePct, r.PFAPathPct, r.IDOMPathPct)
		sw += r.PFAWirePct
		sdw += r.IDOMWirePct
		sp += r.PFAPathPct
		sdp += r.IDOMPathPct
	}
	n := float64(len(rows))
	fmt.Fprintf(w, "averages: PFA wire +%.1f%%, IDOM wire +%.1f%% (paper +18.2/+12.8); PFA path %.1f%%, IDOM path %.1f%% (paper −9.5/−10.2)\n",
		sw/n, sdw/n, sp/n, sdp/n)
}
