// Package experiments contains one harness per table and figure of the
// paper's evaluation (Section 5). Each harness returns structured results
// (for tests) and can print the same rows the paper reports (for the
// cmd/tables executable). EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"fpgarouter/internal/arbor"
	"fpgarouter/internal/congest"
	"fpgarouter/internal/core"
	"fpgarouter/internal/graph"
	"fpgarouter/internal/steiner"
)

// TreeAlg pairs an algorithm name with its construction, in the order the
// paper's Table 1 lists them.
type TreeAlg struct {
	Name string
	Fn   func(*graph.SPTCache, []graph.NodeID) (graph.Tree, error)
	// Arborescence marks algorithms whose max pathlength is optimal by
	// construction.
	Arborescence bool
}

// Table1Algorithms are the eight constructions compared in Table 1.
func Table1Algorithms() []TreeAlg {
	return []TreeAlg{
		{Name: "KMB", Fn: steiner.KMB},
		{Name: "ZEL", Fn: steiner.ZEL},
		{Name: "IKMB", Fn: core.IKMB},
		{Name: "IZEL", Fn: core.IZEL},
		{Name: "DJKA", Fn: arbor.DJKA, Arborescence: true},
		{Name: "DOM", Fn: arbor.DOM, Arborescence: true},
		{Name: "PFA", Fn: arbor.PFA, Arborescence: true},
		{Name: "IDOM", Fn: core.IDOM, Arborescence: true},
	}
}

// Table1Row is one algorithm's averages within a block.
type Table1Row struct {
	Alg string
	// WirePct is the average percent wirelength change vs KMB (negative =
	// better than KMB).
	WirePct float64
	// MaxPathPct is the average percent max-pathlength excess vs optimal
	// (0 for arborescences).
	MaxPathPct float64
}

// Table1Block is one (congestion level, net size) cell group of Table 1.
type Table1Block struct {
	Level    congest.Level
	NetPins  int
	MeanEdge float64 // measured average routing-graph edge weight w̄
	Rows     []Table1Row
}

// Table1 reproduces Table 1: for each congestion level and net size it
// routes `nets` uniformly-random nets on freshly congested 20×20 grids with
// all eight algorithms, reporting average wirelength (normalized to KMB)
// and average maximum pathlength (normalized to optimal). The paper uses
// nets = 50.
func Table1(seed int64, nets int) ([]Table1Block, error) {
	rng := rand.New(rand.NewSource(seed))
	algs := Table1Algorithms()
	var blocks []Table1Block
	for _, level := range congest.Levels {
		for _, pins := range []int{5, 8} {
			block := Table1Block{Level: level, NetPins: pins}
			sumWire := make([]float64, len(algs))
			sumPath := make([]float64, len(algs))
			meanW := 0.0
			for n := 0; n < nets; n++ {
				g, err := congest.NewCongestedGrid(rng, level.PreRouted)
				if err != nil {
					return nil, fmt.Errorf("table1: congesting grid: %w", err)
				}
				meanW += g.MeanWeight()
				net := graph.RandomNet(rng, g.Graph, pins)
				cache := graph.NewSPTCache(g.Graph)
				optPath := congest.OptimalMaxPathlength(g.Graph, net)
				kmbTree, err := steiner.KMB(cache, net)
				if err != nil {
					return nil, fmt.Errorf("table1: KMB: %w", err)
				}
				for i, alg := range algs {
					tree, err := alg.Fn(cache, net)
					if err != nil {
						return nil, fmt.Errorf("table1: %s: %w", alg.Name, err)
					}
					sumWire[i] += (tree.Cost/kmbTree.Cost - 1) * 100
					mp := graph.MaxPathlength(g.Graph, tree, net[0], net[1:])
					if optPath > 0 {
						sumPath[i] += (mp/optPath - 1) * 100
					}
				}
			}
			block.MeanEdge = meanW / float64(nets)
			for i, alg := range algs {
				block.Rows = append(block.Rows, Table1Row{
					Alg:        alg.Name,
					WirePct:    sumWire[i] / float64(nets),
					MaxPathPct: sumPath[i] / float64(nets),
				})
			}
			blocks = append(blocks, block)
		}
	}
	return blocks, nil
}

// PrintTable1 renders the blocks in the paper's layout: one section per
// congestion level with 5-pin and 8-pin columns.
func PrintTable1(w io.Writer, blocks []Table1Block) {
	fmt.Fprintln(w, "Table 1: average wirelength % (w.r.t. KMB) and max pathlength % (w.r.t. OPT)")
	for bi := 0; bi < len(blocks); bi += 2 {
		b5, b8 := blocks[bi], blocks[bi+1]
		fmt.Fprintf(w, "\n%s congestion (k = %d pre-routed nets), measured w̄ = %.2f (paper w̄ = %.2f)\n",
			b5.Level.Name, b5.Level.PreRouted, b5.MeanEdge, b5.Level.PaperMean)
		fmt.Fprintf(w, "%-10s %12s %12s %12s %12s\n", "Algorithm",
			"5p Wire%", "5p MaxPath%", "8p Wire%", "8p MaxPath%")
		for i := range b5.Rows {
			fmt.Fprintf(w, "%-10s %12.2f %12.2f %12.2f %12.2f\n", b5.Rows[i].Alg,
				b5.Rows[i].WirePct, b5.Rows[i].MaxPathPct,
				b8.Rows[i].WirePct, b8.Rows[i].MaxPathPct)
		}
	}
}
