package experiments

import (
	"errors"
	"fmt"

	"fpgarouter/internal/circuits"
	"fpgarouter/internal/render"
	"fpgarouter/internal/router"
)

// Figure16Result is the rendered routing of the busc benchmark (the paper's
// Figure 16 shows the router's complete solution for busc).
type Figure16Result struct {
	Width  int
	Passes int
	ASCII  string
	SVG    string
}

// Figure16 routes busc at the smallest width our router achieves and
// renders the solution as ASCII channel utilization and an SVG plot.
func Figure16(cfg RouterConfig) (Figure16Result, error) {
	cfg = cfg.withDefaults()
	spec, ok := circuits.SpecByName("busc")
	if !ok {
		return Figure16Result{}, fmt.Errorf("figure16: busc spec missing")
	}
	ckt, err := circuits.Synthesize(spec, cfg.Seed)
	if err != nil {
		return Figure16Result{}, err
	}
	for w := spec.PaperIKMB; w <= 4*spec.CGE; w++ {
		res, fab, err := router.RouteWithFabricContext(cfg.Ctx, nil, ckt, w, router.Options{MaxPasses: cfg.MaxPasses, CandidateWorkers: cfg.CandidateWorkers, SingleStep: cfg.SingleStep, LazyScan: cfg.LazyScan})
		if err != nil {
			if errors.Is(err, router.ErrUnroutable) {
				continue
			}
			return Figure16Result{}, err
		}
		return Figure16Result{
			Width:  w,
			Passes: res.Passes,
			ASCII:  render.UtilizationASCII(fab),
			SVG:    render.SVG(fab, res),
		}, nil
	}
	return Figure16Result{}, fmt.Errorf("figure16: busc unroutable")
}
