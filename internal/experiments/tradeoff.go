package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"fpgarouter/internal/arbor"
	"fpgarouter/internal/congest"
	"fpgarouter/internal/core"
	"fpgarouter/internal/graph"
	"fpgarouter/internal/steiner"
)

// TradeoffRow is one construction's averages in the wirelength/radius
// trade-off study.
type TradeoffRow struct {
	Name      string
	WirePct   float64 // avg % wirelength vs KMB
	RadiusPct float64 // avg % max-pathlength excess vs optimal
}

// Tradeoff runs the Section 2 comparison the paper argues from: the BRBC
// and Prim–Dijkstra trade-off constructions swept across their parameter
// ranges, against DJKA, PFA and IDOM, on congested Table 1 grids. The
// point the paper makes — and this experiment reproduces — is that with
// their parameters tuned fully toward pathlength the trade-off methods
// degenerate to plain shortest-paths trees (DJKA-like wirelength), whereas
// PFA/IDOM reach the same optimal pathlength at substantially lower
// wirelength.
func Tradeoff(seed int64, nets, preRouted int) ([]TradeoffRow, error) {
	type entry struct {
		name string
		fn   func(*graph.SPTCache, []graph.NodeID) (graph.Tree, error)
	}
	var entries []entry
	for _, c := range []float64{0, 0.25, 0.5, 0.75, 1} {
		c := c
		entries = append(entries, entry{
			name: fmt.Sprintf("PD(c=%.2f)", c),
			fn: func(cache *graph.SPTCache, net []graph.NodeID) (graph.Tree, error) {
				return arbor.PrimDijkstra(cache, net, c)
			},
		})
	}
	for _, eps := range []float64{4, 1, 0.5, 0.25, 0} {
		eps := eps
		entries = append(entries, entry{
			name: fmt.Sprintf("BRBC(e=%.2f)", eps),
			fn: func(cache *graph.SPTCache, net []graph.NodeID) (graph.Tree, error) {
				return arbor.BRBC(cache, net, eps)
			},
		})
	}
	entries = append(entries,
		entry{name: "DJKA", fn: arbor.DJKA},
		entry{name: "PFA", fn: arbor.PFA},
		entry{name: "IDOM", fn: core.IDOM},
	)

	rng := rand.New(rand.NewSource(seed))
	sumWire := make([]float64, len(entries))
	sumRad := make([]float64, len(entries))
	for n := 0; n < nets; n++ {
		g, err := congest.NewCongestedGrid(rng, preRouted)
		if err != nil {
			return nil, err
		}
		net := graph.RandomNet(rng, g.Graph, 8)
		cache := graph.NewSPTCache(g.Graph)
		kmb, err := steiner.KMB(cache, net)
		if err != nil {
			return nil, err
		}
		opt := congest.OptimalMaxPathlength(g.Graph, net)
		for i, e := range entries {
			tree, err := e.fn(cache, net)
			if err != nil {
				return nil, fmt.Errorf("tradeoff: %s: %w", e.name, err)
			}
			sumWire[i] += (tree.Cost/kmb.Cost - 1) * 100
			if opt > 0 {
				mp := graph.MaxPathlength(g.Graph, tree, net[0], net[1:])
				sumRad[i] += (mp/opt - 1) * 100
			}
		}
	}
	rows := make([]TradeoffRow, len(entries))
	for i, e := range entries {
		rows[i] = TradeoffRow{
			Name:      e.name,
			WirePct:   sumWire[i] / float64(nets),
			RadiusPct: sumRad[i] / float64(nets),
		}
	}
	return rows, nil
}

// PrintTradeoff renders the trade-off study.
func PrintTradeoff(w io.Writer, rows []TradeoffRow, preRouted int) {
	fmt.Fprintf(w, "Wirelength/radius trade-off (8-pin nets, k=%d congestion):\n", preRouted)
	fmt.Fprintf(w, "%-14s %12s %14s\n", "construction", "wire% (KMB)", "radius% (OPT)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %12.2f %14.2f\n", r.Name, r.WirePct, r.RadiusPct)
	}
	fmt.Fprintln(w, "note: at c=1 / e=0 the trade-off methods hit optimal radius at DJKA-like")
	fmt.Fprintln(w, "wirelength; PFA and IDOM hit optimal radius at far lower wirelength.")
}
