package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"fpgarouter/internal/arbor"
	"fpgarouter/internal/congest"
	"fpgarouter/internal/core"
	"fpgarouter/internal/graph"
	"fpgarouter/internal/steiner"
)

// Figure4Result demonstrates the paper's Figure 4: a four-pin net for which
// the iterated constructions beat KMB in wirelength, and the arborescence
// construction also beats it in maximum pathlength (the paper's instance
// shows 12.5 % wirelength and 25 % / 50 % pathlength improvements).
type Figure4Result struct {
	Seed            int64
	KMBWire         float64
	IGMSTWire       float64
	IDOMWire        float64
	OptWire         float64 // exact Steiner minimal tree cost
	KMBMaxPath      float64
	IGMSTMaxPath    float64
	IDOMMaxPath     float64
	OptMaxPath      float64 // optimal (shortest-path) max pathlength
	WireImprovePct  float64 // KMB wire excess over IGMST, %
	IGMSTPathImpPct float64 // IGMST max-path improvement over KMB, %
	IDOMPathImpPct  float64 // IDOM max-path improvement over KMB, %
}

// Figure4 searches small grid instances (deterministically, by seed) for a
// four-pin net exhibiting the Figure 4 relationships: KMB strictly worse in
// wirelength than IGMST (= optimal here) and in max pathlength than IDOM
// (which stays wirelength-optimal among arborescences).
func Figure4() (Figure4Result, error) {
	for seed := int64(0); seed < 10000; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graph.NewGrid(5, 5, 1)
		net := graph.RandomNet(rng, g.Graph, 4)
		cache := graph.NewSPTCache(g.Graph)
		kmb, err := steiner.KMB(cache, net)
		if err != nil {
			return Figure4Result{}, err
		}
		ikmb, err := core.IKMB(cache, net)
		if err != nil {
			return Figure4Result{}, err
		}
		idom, err := core.IDOM(cache, net)
		if err != nil {
			return Figure4Result{}, err
		}
		opt, err := steiner.Exact(cache, net)
		if err != nil {
			return Figure4Result{}, err
		}
		optPath := congest.OptimalMaxPathlength(g.Graph, net)
		kmbPath := graph.MaxPathlength(g.Graph, kmb, net[0], net[1:])
		ikmbPath := graph.MaxPathlength(g.Graph, ikmb, net[0], net[1:])
		idomPath := graph.MaxPathlength(g.Graph, idom, net[0], net[1:])
		// The Figure 4 relationships: KMB pays extra wirelength, IGMST
		// recovers the optimum, IDOM matches optimal wire here too while
		// achieving optimal pathlength strictly better than KMB's.
		if kmb.Cost > ikmb.Cost && ikmb.Cost == opt.Cost &&
			idom.Cost == opt.Cost && idomPath == optPath &&
			kmbPath > idomPath && ikmbPath < kmbPath {
			return Figure4Result{
				Seed:            seed,
				KMBWire:         kmb.Cost,
				IGMSTWire:       ikmb.Cost,
				IDOMWire:        idom.Cost,
				OptWire:         opt.Cost,
				KMBMaxPath:      kmbPath,
				IGMSTMaxPath:    ikmbPath,
				IDOMMaxPath:     idomPath,
				OptMaxPath:      optPath,
				WireImprovePct:  (kmb.Cost/ikmb.Cost - 1) * 100,
				IGMSTPathImpPct: (1 - ikmbPath/kmbPath) * 100,
				IDOMPathImpPct:  (1 - idomPath/kmbPath) * 100,
			}, nil
		}
	}
	return Figure4Result{}, fmt.Errorf("figure4: no qualifying instance found")
}

// Figure10Gadget is the Θ(N)-ratio worst case for PFA on arbitrary weighted
// graphs (Figure 10): N sinks at distance D from the source, "bait" hub
// nodes at distance D−1 that serve only one sink pair each (and connect
// back through private unit chains), and a "gold" Steiner node at distance
// D−2 serving every sink with weight-2 legs. PFA's farthest-MaxDom greedy
// merges every pair at its bait hub and pays the private chains; the
// optimal arborescence routes everything through the gold node.
type Figure10Gadget struct {
	G      *graph.Graph
	Net    []graph.NodeID
	OptTre graph.Tree // the designed optimal arborescence
}

// NewFigure10 builds the gadget with pairs sink pairs (N = 2·pairs sinks)
// and source depth D = N.
func NewFigure10(pairs int) *Figure10Gadget {
	n := 2 * pairs
	d := n
	if d < 4 {
		d = 4
	}
	// Nodes: 0 = source; sinks 1..n; gold g; gold chain (d-3 nodes);
	// per-pair bait hub + private chain (d-2 nodes each).
	total := 1 + n + 1 + (d - 3) + pairs*(1+(d-2))
	g := graph.New(total)
	next := graph.NodeID(1 + n)
	gold := next
	next++
	var optEdges []graph.EdgeID
	// Gold chain: source → ... → gold with d-2 unit edges.
	prev := graph.NodeID(0)
	for i := 0; i < d-3; i++ {
		optEdges = append(optEdges, g.AddEdge(prev, next, 1))
		prev = next
		next++
	}
	optEdges = append(optEdges, g.AddEdge(prev, gold, 1))
	net := make([]graph.NodeID, 0, n+1)
	net = append(net, 0)
	for i := 1; i <= n; i++ {
		net = append(net, graph.NodeID(i))
		// Gold leg: weight 2, keeping dist(source, sink) = d.
		optEdges = append(optEdges, g.AddEdge(gold, graph.NodeID(i), 2))
	}
	for p := 0; p < pairs; p++ {
		hub := next
		next++
		// Private chain source → hub with d-1 unit edges.
		prev := graph.NodeID(0)
		for i := 0; i < d-2; i++ {
			g.AddEdge(prev, next, 1)
			prev = next
			next++
		}
		g.AddEdge(prev, hub, 1)
		// Bait legs to the pair's two sinks.
		g.AddEdge(hub, graph.NodeID(1+2*p), 1)
		g.AddEdge(hub, graph.NodeID(2+2*p), 1)
	}
	return &Figure10Gadget{G: g, Net: net, OptTre: graph.NewTree(g, optEdges)}
}

// Figure10Row reports one gadget size's measured costs.
type Figure10Row struct {
	Sinks              int
	Opt, PFA, IDOM     float64
	PFARatio, IDOMRati float64
}

// Figure10 measures PFA's Θ(N) blow-up (and IDOM's escape) on the gadget
// family for the given pair counts.
func Figure10(pairCounts []int) ([]Figure10Row, error) {
	var rows []Figure10Row
	for _, pc := range pairCounts {
		gad := NewFigure10(pc)
		cache := graph.NewSPTCache(gad.G)
		pfa, err := arbor.PFA(cache, gad.Net)
		if err != nil {
			return nil, err
		}
		idom, err := core.IDOM(cache, gad.Net)
		if err != nil {
			return nil, err
		}
		opt := gad.OptTre.Cost
		rows = append(rows, Figure10Row{
			Sinks: 2 * pc, Opt: opt, PFA: pfa.Cost, IDOM: idom.Cost,
			PFARatio: pfa.Cost / opt, IDOMRati: idom.Cost / opt,
		})
	}
	return rows, nil
}

// Figure11Row reports PFA vs the Steiner lower bound on the RSA staircase.
type Figure11Row struct {
	Points    int
	PFA       float64
	SteinerLB float64 // exact Steiner minimal tree cost (lower-bounds GSA)
	Ratio     float64
}

// Figure11 builds the rectilinear staircase worst case of Figure 11 — n
// anti-chain points with horizontal spacing 1 and vertical spacing 2 on a
// grid graph — and measures PFA against the exact Steiner tree cost (a
// lower bound on the optimal arborescence): the ratio approaches 2.
func Figure11(sizes []int) ([]Figure11Row, error) {
	var rows []Figure11Row
	for _, n := range sizes {
		if n+1 > steiner.MaxExactTerminals {
			return nil, fmt.Errorf("figure11: n=%d exceeds exact-oracle capacity", n)
		}
		g := graph.NewGrid(n+1, 2*n+1, 1)
		net := []graph.NodeID{g.Node(0, 0)}
		for i := 1; i <= n; i++ {
			net = append(net, g.Node(i, 2*(n-i)))
		}
		cache := graph.NewSPTCache(g.Graph)
		pfa, err := arbor.PFA(cache, net)
		if err != nil {
			return nil, err
		}
		lb, err := steiner.ExactCost(cache, net)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Figure11Row{Points: n, PFA: pfa.Cost, SteinerLB: lb, Ratio: pfa.Cost / lb})
	}
	return rows, nil
}

// Figure14Gadget is the Ω(log N) worst case for IDOM (Figure 14): a
// macro-encoded tight Set Cover instance. Each "box" is a Steiner node
// joined to its member sinks by weight-ε edges and to the source by a
// weight-1 edge. Two "optimal" boxes partition the sinks into halves (OPT
// selects just those: cost 2 + N·ε); "bait" boxes B_1 ⊃ B_2 ⊃ … of
// exponentially decreasing size each cover slightly more uncovered sinks
// than either half, so the greedy ΔDOM selection walks down all log N of
// them.
type Figure14Gadget struct {
	G   *graph.Graph
	Net []graph.NodeID
	Opt float64 // designed optimal arborescence cost
	M   int     // number of bait boxes
}

// NewFigure14 builds the gadget with m bait boxes (N = 2·(2^m − 1) sinks).
//
// Each sink also gets a private direct edge from the source of weight 1+ε
// (exactly its shortest-path distance). The source's Dijkstra settles these
// direct parents first, so the base DOM solution pays 1+ε per sink with no
// incidental sharing through box access edges — reaching a sink cheaply
// requires actually selecting a box covering it, which is what makes the
// greedy ΔDOM selection isomorphic to greedy Set Cover (and hence Ω(log N)
// on this tight instance, exactly the paper's argument).
func NewFigure14(m int) *Figure14Gadget {
	eps := 0.001
	// Sinks are arranged in blocks B_k of size 2^(m-k+1), k = 1..m, each
	// split evenly between the two halves O_1 and O_2.
	n := 2 * ((1 << m) - 1)
	g := graph.New(1 + n + 2 + m) // source + sinks + 2 opt boxes + m baits
	net := make([]graph.NodeID, 0, n+1)
	net = append(net, 0)
	sink := func(i int) graph.NodeID { return graph.NodeID(1 + i) }
	for i := 0; i < n; i++ {
		net = append(net, sink(i))
		g.AddEdge(0, sink(i), 1+eps) // private fallback path
	}
	optBox := [2]graph.NodeID{graph.NodeID(1 + n), graph.NodeID(2 + n)}
	g.AddEdge(0, optBox[0], 1)
	g.AddEdge(0, optBox[1], 1)
	// Block layout: block k occupies a contiguous range; within a block,
	// even offsets belong to O_1 and odd to O_2.
	idx := 0
	for k := 1; k <= m; k++ {
		bait := graph.NodeID(3 + n + k - 1)
		g.AddEdge(0, bait, 1)
		size := 1 << (m - k + 1)
		for j := 0; j < size; j++ {
			s := sink(idx)
			g.AddEdge(bait, s, eps)
			g.AddEdge(optBox[j%2], s, eps)
			idx++
		}
	}
	return &Figure14Gadget{G: g, Net: net, Opt: 2 + float64(n)*eps, M: m}
}

// Figure14Row reports one gadget size's measured IDOM blow-up.
type Figure14Row struct {
	Sinks     int
	BaitBoxes int
	Opt       float64
	IDOM      float64
	Ratio     float64
}

// Figure14 measures IDOM's Ω(log N) behaviour on the Set-Cover gadget.
func Figure14(ms []int) ([]Figure14Row, error) {
	var rows []Figure14Row
	for _, m := range ms {
		gad := NewFigure14(m)
		cache := graph.NewSPTCache(gad.G)
		idom, err := core.IDOM(cache, gad.Net)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Figure14Row{
			Sinks: len(gad.Net) - 1, BaitBoxes: gad.M,
			Opt: gad.Opt, IDOM: idom.Cost, Ratio: idom.Cost / gad.Opt,
		})
	}
	return rows, nil
}

// PrintFigures renders the figure experiments' results.
func PrintFigure4(w io.Writer, r Figure4Result) {
	fmt.Fprintf(w, "Figure 4 (instance found at seed %d):\n", r.Seed)
	fmt.Fprintf(w, "  wirelength: KMB=%.0f IGMST=%.0f IDOM=%.0f OPT=%.0f (KMB +%.1f%% over IGMST; paper: +12.5%%)\n",
		r.KMBWire, r.IGMSTWire, r.IDOMWire, r.OptWire, r.WireImprovePct)
	fmt.Fprintf(w, "  max pathlength: KMB=%.0f IGMST=%.0f IDOM=%.0f OPT=%.0f\n",
		r.KMBMaxPath, r.IGMSTMaxPath, r.IDOMMaxPath, r.OptMaxPath)
	fmt.Fprintf(w, "  pathlength improvement over KMB: IGMST %.1f%%, IDOM %.1f%% (paper: 25%%, 50%%)\n",
		r.IGMSTPathImpPct, r.IDOMPathImpPct)
}

func PrintFigure10(w io.Writer, rows []Figure10Row) {
	fmt.Fprintln(w, "Figure 10: PFA worst case on weighted graphs (ratio grows with N; IDOM stays optimal)")
	fmt.Fprintf(w, "%8s %10s %10s %10s %10s %10s\n", "sinks", "OPT", "PFA", "PFA/OPT", "IDOM", "IDOM/OPT")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %10.1f %10.1f %10.2f %10.1f %10.2f\n",
			r.Sinks, r.Opt, r.PFA, r.PFARatio, r.IDOM, r.IDOMRati)
	}
}

func PrintFigure11(w io.Writer, rows []Figure11Row) {
	fmt.Fprintln(w, "Figure 11: PFA on the RSA staircase (ratio vs Steiner lower bound approaches 2)")
	fmt.Fprintf(w, "%8s %10s %12s %10s\n", "points", "PFA", "SteinerLB", "ratio")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %10.1f %12.1f %10.3f\n", r.Points, r.PFA, r.SteinerLB, r.Ratio)
	}
}

func PrintFigure14(w io.Writer, rows []Figure14Row) {
	fmt.Fprintln(w, "Figure 14: IDOM on the macro-encoded Set Cover gadget (ratio grows like log N)")
	fmt.Fprintf(w, "%8s %8s %10s %10s %10s\n", "sinks", "baits", "OPT", "IDOM", "ratio")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %8d %10.2f %10.2f %10.2f\n", r.Sinks, r.BaitBoxes, r.Opt, r.IDOM, r.Ratio)
	}
}
