package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fpgarouter/internal/circuits"
	"fpgarouter/internal/router"
)

// harness spins up a service over httptest and tears it down with the test.
func harness(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		if !svc.Draining() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			svc.Shutdown(ctx)
		}
	})
	return svc, ts
}

func postJSON(t *testing.T, url string, body any, out any) (int, string) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("decoding %q: %v", buf.String(), err)
		}
	}
	return resp.StatusCode, buf.String()
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		if resp.StatusCode < 300 {
			if err := json.Unmarshal(buf.Bytes(), out); err != nil {
				t.Fatalf("decoding %q: %v", buf.String(), err)
			}
		}
	}
	return resp.StatusCode
}

// pollUntilTerminal polls a job's status until it leaves queued/running.
func pollUntilTerminal(t *testing.T, base, id string, timeout time.Duration) Status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var st Status
		if code := getJSON(t, base+"/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("status poll: HTTP %d", code)
		}
		if st.State.terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, st.State, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// minwidthOpts keeps service tests fast while staying on a real paper
// circuit: few passes, bounded probe parallelism.
var minwidthOpts = router.Options{MaxPasses: 4, WidthProbes: 2}

// TestEndToEndMinWidthParity is the acceptance test: submit a minwidth job
// for a paper circuit over HTTP, poll to completion, and require the
// returned width and result to be bit-identical to calling router.MinWidth
// in-process.
func TestEndToEndMinWidthParity(t *testing.T) {
	_, ts := harness(t, Config{Workers: 2, QueueDepth: 8})

	var st Status
	code, body := postJSON(t, ts.URL+"/jobs", SubmitRequest{
		Mode: ModeMinWidth, Circuit: "busc", Seed: 1, Options: minwidthOpts,
	}, &st)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", code, body)
	}
	if st.State != StateQueued || st.Circuit != "busc" || st.ID == "" {
		t.Fatalf("submit status %+v", st)
	}

	final := pollUntilTerminal(t, ts.URL, st.ID, 2*time.Minute)
	if final.State != StateDone {
		t.Fatalf("job ended %s (%s)", final.State, final.Error)
	}

	var rr ResultResponse
	if code := getJSON(t, ts.URL+"/jobs/"+st.ID+"/result", &rr); code != http.StatusOK {
		t.Fatalf("result: HTTP %d", code)
	}

	// In-process reference with identical inputs: the job synthesized busc
	// with seed 1 and started at the paper's best known width.
	spec, _ := circuits.SpecByName("busc")
	ckt, err := circuits.Synthesize(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantW, wantRes, err := router.MinWidth(ckt, spec.PaperIKMB, minwidthOpts)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Width != wantW || final.Width != wantW {
		t.Fatalf("service width %d/%d, direct %d", rr.Width, final.Width, wantW)
	}
	got, _ := json.Marshal(rr.Result)
	want, _ := json.Marshal(wantRes)
	if !bytes.Equal(got, want) {
		t.Fatalf("service result differs from direct MinWidth:\n%.200s\nvs\n%.200s", got, want)
	}
}

// TestLazyScanWireParity covers the lazy_scan knob end to end over the
// wire: SubmitRequest embeds router.Options, so the JSON fields single_step
// and lazy_scan must reach the worker's router, and the routed result must
// be bit-identical to the same lazy route run in-process — plumbing
// parity, pinning both the wire names and that the knob actually arrives.
// (Identity against a lazy-off route is deliberately NOT asserted: on
// busc's congestion-weighted fabric the lazy scan may admit different
// Steiner points — see core.lazyQueue's exactness contract.)
func TestLazyScanWireParity(t *testing.T) {
	_, ts := harness(t, Config{Workers: 1, QueueDepth: 4})

	// Raw JSON (not a struct literal) so the test also pins the wire names.
	req := []byte(`{"mode":"route","circuit":"busc","seed":1,"width":10,
		"options":{"max_passes":4,"single_step":true,"lazy_scan":true,"candidate_workers":1}}`)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	final := pollUntilTerminal(t, ts.URL, st.ID, 2*time.Minute)
	if final.State != StateDone {
		t.Fatalf("job ended %s (%s)", final.State, final.Error)
	}
	var rr ResultResponse
	if code := getJSON(t, ts.URL+"/jobs/"+st.ID+"/result", &rr); code != http.StatusOK {
		t.Fatalf("result: HTTP %d", code)
	}

	spec, _ := circuits.SpecByName("busc")
	ckt, err := circuits.Synthesize(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := router.Route(ckt, 10, router.Options{MaxPasses: 4, SingleStep: true, CandidateWorkers: 1, LazyScan: true})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(rr.Result)
	want, _ := json.Marshal(wantRes)
	if !bytes.Equal(got, want) {
		t.Fatalf("lazy wire result differs from lazy direct route:\n%.200s\nvs\n%.200s", got, want)
	}
}

// TestGoalDirectedWireParity pins the goal_directed wire name and its
// plumbing: a route submitted with goal_directed must be bit-identical to
// the same goal-directed route run in-process. (Identity against the
// default route is deliberately NOT asserted: goal-directed searches may
// pick different equal-cost shortest paths — see router.Options.)
func TestGoalDirectedWireParity(t *testing.T) {
	_, ts := harness(t, Config{Workers: 1, QueueDepth: 4})

	req := []byte(`{"mode":"route","circuit":"busc","seed":1,"width":10,
		"options":{"max_passes":4,"candidate_workers":1,"goal_directed":true}}`)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	final := pollUntilTerminal(t, ts.URL, st.ID, 2*time.Minute)
	if final.State != StateDone {
		t.Fatalf("job ended %s (%s)", final.State, final.Error)
	}
	var rr ResultResponse
	if code := getJSON(t, ts.URL+"/jobs/"+st.ID+"/result", &rr); code != http.StatusOK {
		t.Fatalf("result: HTTP %d", code)
	}

	spec, _ := circuits.SpecByName("busc")
	ckt, err := circuits.Synthesize(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := router.Route(ckt, 10, router.Options{MaxPasses: 4, CandidateWorkers: 1, GoalDirected: true})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(rr.Result)
	want, _ := json.Marshal(wantRes)
	if !bytes.Equal(got, want) {
		t.Fatalf("goal-directed wire result differs from direct route:\n%.200s\nvs\n%.200s", got, want)
	}
}

// TestParallelWireParity pins the parallel / net_workers wire names and
// their plumbing: a route submitted with parallel:true must be
// bit-identical to the same net-parallel route run in-process (the
// pathfinder is deterministic and worker-count invariant, so the wire's
// net_workers:2 against the direct route's default is part of the
// contract, not a fixture detail).
func TestParallelWireParity(t *testing.T) {
	_, ts := harness(t, Config{Workers: 1, QueueDepth: 4})

	req := []byte(`{"mode":"route","circuit":"term1","seed":1,"width":10,
		"options":{"parallel":true,"net_workers":2}}`)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	final := pollUntilTerminal(t, ts.URL, st.ID, 2*time.Minute)
	if final.State != StateDone {
		t.Fatalf("job ended %s (%s)", final.State, final.Error)
	}
	var rr ResultResponse
	if code := getJSON(t, ts.URL+"/jobs/"+st.ID+"/result", &rr); code != http.StatusOK {
		t.Fatalf("result: HTTP %d", code)
	}

	spec, _ := circuits.SpecByName("term1")
	ckt, err := circuits.Synthesize(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := router.Route(ckt, 10, router.Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(rr.Result)
	want, _ := json.Marshal(wantRes)
	if !bytes.Equal(got, want) {
		t.Fatalf("parallel wire result differs from direct parallel route:\n%.200s\nvs\n%.200s", got, want)
	}
}

// TestIncrementalWireParity pins the incremental_reroute wire name: a route
// submitted with it must be bit-identical to the same incremental
// net-parallel route run in-process.
func TestIncrementalWireParity(t *testing.T) {
	_, ts := harness(t, Config{Workers: 1, QueueDepth: 4})

	req := []byte(`{"mode":"route","circuit":"term1","seed":1,"width":10,
		"options":{"parallel":true,"incremental_reroute":true}}`)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	final := pollUntilTerminal(t, ts.URL, st.ID, 2*time.Minute)
	if final.State != StateDone {
		t.Fatalf("job ended %s (%s)", final.State, final.Error)
	}
	var rr ResultResponse
	if code := getJSON(t, ts.URL+"/jobs/"+st.ID+"/result", &rr); code != http.StatusOK {
		t.Fatalf("result: HTTP %d", code)
	}

	spec, _ := circuits.SpecByName("term1")
	ckt, err := circuits.Synthesize(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := router.Route(ckt, 10, router.Options{Parallel: true, IncrementalReroute: true})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(rr.Result)
	want, _ := json.Marshal(wantRes)
	if !bytes.Equal(got, want) {
		t.Fatalf("incremental wire result differs from direct incremental route:\n%.200s\nvs\n%.200s", got, want)
	}
}

// TestDeadlineJobCancels: a short-deadline job transitions to canceled
// without blocking the worker pool — a job submitted afterwards completes
// on the same single worker.
func TestDeadlineJobCancels(t *testing.T) {
	_, ts := harness(t, Config{Workers: 1, QueueDepth: 8})

	// An effectively-unroutable grind: busc minwidth from width 1 with the
	// full pass budget takes far longer than the 25ms deadline.
	var doomed Status
	code, body := postJSON(t, ts.URL+"/jobs", SubmitRequest{
		Mode: ModeMinWidth, Circuit: "busc", StartWidth: 1, TimeoutMs: 25,
		Options: router.Options{MaxPasses: 20, WidthProbes: 1},
	}, &doomed)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", code, body)
	}
	final := pollUntilTerminal(t, ts.URL, doomed.ID, time.Minute)
	if final.State != StateCanceled {
		t.Fatalf("deadline job ended %s (%s), want canceled", final.State, final.Error)
	}
	if !strings.Contains(final.Error, "deadline") {
		t.Fatalf("canceled error %q does not mention the deadline", final.Error)
	}
	if code := getJSON(t, ts.URL+"/jobs/"+doomed.ID+"/result", nil); code != http.StatusConflict {
		t.Fatalf("result of canceled job: HTTP %d, want 409", code)
	}

	// The pool must still serve: a small route job on the same worker.
	var next Status
	code, body = postJSON(t, ts.URL+"/jobs", SubmitRequest{
		Mode: ModeRoute, Circuit: "busc", Options: router.Options{MaxPasses: 8},
	}, &next)
	if code != http.StatusAccepted {
		t.Fatalf("follow-up submit: HTTP %d: %s", code, body)
	}
	if st := pollUntilTerminal(t, ts.URL, next.ID, 2*time.Minute); st.State != StateDone {
		t.Fatalf("follow-up job ended %s (%s)", st.State, st.Error)
	}
}

// TestCancelQueuedJob: with one busy worker, a queued job canceled over
// HTTP flips to canceled without ever running.
func TestCancelQueuedJob(t *testing.T) {
	_, ts := harness(t, Config{Workers: 1, QueueDepth: 8})

	var blocker, queued Status
	if code, body := postJSON(t, ts.URL+"/jobs", SubmitRequest{
		Mode: ModeMinWidth, Circuit: "busc", StartWidth: 1,
		Options: router.Options{MaxPasses: 20, WidthProbes: 1},
	}, &blocker); code != http.StatusAccepted {
		t.Fatalf("blocker submit: HTTP %d: %s", code, body)
	}
	if code, body := postJSON(t, ts.URL+"/jobs", SubmitRequest{
		Mode: ModeRoute, Circuit: "busc", Options: router.Options{MaxPasses: 8},
	}, &queued); code != http.StatusAccepted {
		t.Fatalf("queued submit: HTTP %d: %s", code, body)
	}

	var canceled Status
	if code, body := postJSON(t, ts.URL+"/jobs/"+queued.ID+"/cancel", struct{}{}, &canceled); code != http.StatusOK {
		t.Fatalf("cancel: HTTP %d: %s", code, body)
	}
	if canceled.State != StateCanceled {
		t.Fatalf("after cancel: state %s", canceled.State)
	}
	if canceled.StartedAt != nil {
		t.Fatalf("queued job ran before cancellation: %+v", canceled)
	}
	// Unblock the worker promptly for teardown.
	postJSON(t, ts.URL+"/jobs/"+blocker.ID+"/cancel", struct{}{}, nil)
	pollUntilTerminal(t, ts.URL, blocker.ID, time.Minute)
}

// TestGracefulShutdownDrains: Shutdown with a generous grace must let an
// in-flight job finish and report done, not canceled.
func TestGracefulShutdownDrains(t *testing.T) {
	svc, ts := harness(t, Config{Workers: 1, QueueDepth: 4})

	var st Status
	if code, body := postJSON(t, ts.URL+"/jobs", SubmitRequest{
		Mode: ModeRoute, Circuit: "busc", Options: router.Options{MaxPasses: 8},
	}, &st); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", code, body)
	}
	// Wait until the worker picks it up so shutdown really drains an
	// in-flight job rather than a queued one.
	deadline := time.Now().Add(30 * time.Second)
	for {
		j, _ := svc.Job(st.ID)
		if s := j.StateNow(); s != StateQueued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}
	j, _ := svc.Job(st.ID)
	if s := j.StateNow(); s != StateDone {
		t.Fatalf("drained job ended %s, want done", s)
	}
	// Post-shutdown submissions are refused.
	if _, err := svc.Submit(&SubmitRequest{Mode: ModeRoute, Circuit: "busc"}); err != ErrDraining {
		t.Fatalf("submit after shutdown: %v, want ErrDraining", err)
	}
}

// TestShutdownGraceExpiryCancels: a tiny grace period cancels the
// in-flight grind instead of hanging Shutdown forever.
func TestShutdownGraceExpiryCancels(t *testing.T) {
	svc, ts := harness(t, Config{Workers: 1, QueueDepth: 4})
	var st Status
	if code, body := postJSON(t, ts.URL+"/jobs", SubmitRequest{
		Mode: ModeMinWidth, Circuit: "busc", StartWidth: 1,
		Options: router.Options{MaxPasses: 20, WidthProbes: 1},
	}, &st); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", code, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	begin := time.Now()
	err := svc.Shutdown(ctx)
	if err != context.DeadlineExceeded {
		t.Fatalf("shutdown error %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(begin); elapsed > 30*time.Second {
		t.Fatalf("shutdown took %v after grace expiry", elapsed)
	}
	j, _ := svc.Job(st.ID)
	if s := j.StateNow(); s != StateCanceled {
		t.Fatalf("grind ended %s, want canceled", s)
	}
}

// TestInlineNetlistRoute: an inline wire-format netlist routes end to end.
func TestInlineNetlistRoute(t *testing.T) {
	_, ts := harness(t, Config{Workers: 1, QueueDepth: 4})
	spec := circuits.Spec{Name: "inline", Series: circuits.Series4000, Cols: 5, Rows: 5,
		Nets2_3: 12, Nets4_10: 4}
	ckt, err := circuits.Synthesize(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	code, body := postJSON(t, ts.URL+"/jobs", SubmitRequest{
		Mode: ModeRoute, Netlist: ckt, Width: 8, Options: router.Options{MaxPasses: 8},
	}, &st)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", code, body)
	}
	final := pollUntilTerminal(t, ts.URL, st.ID, time.Minute)
	if final.State != StateDone || final.Width != 8 {
		t.Fatalf("inline job %+v", final)
	}
}

// TestSubmitValidation maps bad requests to 400 with a reason.
func TestSubmitValidation(t *testing.T) {
	_, ts := harness(t, Config{Workers: 1, QueueDepth: 4})
	bad := []SubmitRequest{
		{Mode: "unknown", Circuit: "busc"},
		{Mode: ModeRoute},                                                   // neither circuit nor netlist
		{Mode: ModeRoute, Circuit: "nope"},                                  // unknown circuit
		{Mode: ModeRoute, Circuit: "busc", TimeoutMs: -1},                   // negative deadline
		{Mode: ModeMinWidth, Circuit: "busc", Netlist: &circuits.Circuit{}}, // both sources
	}
	for i, req := range bad {
		if code, body := postJSON(t, ts.URL+"/jobs", req, nil); code != http.StatusBadRequest {
			t.Errorf("case %d: HTTP %d (%s), want 400", i, code, body)
		}
	}
	if code := getJSON(t, ts.URL+"/jobs/job-999999", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: HTTP %d, want 404", code)
	}
}

// TestQueueFullRejects: a saturated queue returns 503 with Retry-After.
func TestQueueFullRejects(t *testing.T) {
	svc, ts := harness(t, Config{Workers: 1, QueueDepth: 1})
	// Occupy the worker, then fill the 1-deep queue.
	grind := SubmitRequest{Mode: ModeMinWidth, Circuit: "busc", StartWidth: 1,
		Options: router.Options{MaxPasses: 20, WidthProbes: 1}}
	var first Status
	if code, _ := postJSON(t, ts.URL+"/jobs", grind, &first); code != http.StatusAccepted {
		t.Fatal("first submit rejected")
	}
	// Wait for the worker to take the first job so queue occupancy is
	// deterministic, then saturate.
	deadline := time.Now().Add(30 * time.Second)
	for {
		j, _ := svc.Job(first.ID)
		if j.StateNow() == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var second Status
	if code, _ := postJSON(t, ts.URL+"/jobs", grind, &second); code != http.StatusAccepted {
		t.Fatal("second submit rejected")
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"mode":"route","circuit":"busc"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	// Unblock for teardown.
	for _, id := range []string{first.ID, second.ID} {
		postJSON(t, ts.URL+"/jobs/"+id+"/cancel", struct{}{}, nil)
	}
}

// TestHealthzAndMetrics checks the production furniture endpoints.
func TestHealthzAndMetrics(t *testing.T) {
	_, ts := harness(t, Config{Workers: 2, QueueDepth: 8})

	var h healthBody
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", code)
	}
	if h.Status != "ok" || h.Workers != 2 || h.QueueCapacity != 8 {
		t.Fatalf("healthz body %+v", h)
	}

	var st Status
	if code, _ := postJSON(t, ts.URL+"/jobs", SubmitRequest{
		Mode: ModeRoute, Circuit: "busc", Options: router.Options{MaxPasses: 8},
	}, &st); code != http.StatusAccepted {
		t.Fatal("submit rejected")
	}
	pollUntilTerminal(t, ts.URL, st.ID, 2*time.Minute)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	for _, want := range []string{
		"fpgarouter_jobs_submitted_total 1",
		`fpgarouter_jobs_completed_total{state="done"} 1`,
		"fpgarouter_workers 2",
		"# TYPE fpgarouter_sssp_runs_total counter",
		"fpgarouter_passes_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}

	var list []Status
	if code := getJSON(t, ts.URL+"/jobs", &list); code != http.StatusOK || len(list) != 1 {
		t.Fatalf("job list: code %d, %d entries", code, len(list))
	}
}

// TestWorkersReuseRoutingContext exercises many small jobs through a small
// pool, which under -race also proves the long-lived per-worker contexts
// and the shared collector are data-race free across jobs.
func TestWorkersReuseRoutingContext(t *testing.T) {
	_, ts := harness(t, Config{Workers: 2, QueueDepth: 16})
	ids := make([]string, 0, 6)
	for i := 0; i < 6; i++ {
		var st Status
		code, body := postJSON(t, ts.URL+"/jobs", SubmitRequest{
			Mode: ModeRoute, Circuit: "busc", Seed: int64(1 + i%2),
			Options: router.Options{MaxPasses: 8},
		}, &st)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d: %s", i, code, body)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		if st := pollUntilTerminal(t, ts.URL, id, 2*time.Minute); st.State != StateDone {
			t.Fatalf("job %s ended %s (%s)", id, st.State, st.Error)
		}
	}
}
