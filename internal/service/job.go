package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"fpgarouter/internal/circuits"
	"fpgarouter/internal/pathfinder"
	"fpgarouter/internal/router"
)

// Mode selects what a job computes.
type Mode string

const (
	// ModeRoute routes the circuit at one channel width.
	ModeRoute Mode = "route"
	// ModeMinWidth searches the minimum routable channel width.
	ModeMinWidth Mode = "minwidth"
)

// State is a job's lifecycle position. Transitions are strictly
// queued → running → {done, failed, canceled}, except that a queued job
// canceled before a worker picks it up goes straight to canceled.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// terminal reports whether no further transitions are possible.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// SubmitRequest is the POST /jobs body. Exactly one of Circuit (a named
// paper benchmark, synthesized server-side with Seed) or Netlist (an inline
// circuit in the JSON wire format of internal/circuits) must be given.
type SubmitRequest struct {
	// Mode is "route" or "minwidth".
	Mode Mode `json:"mode"`
	// Circuit names a paper benchmark circuit (see fpgaroute -list).
	Circuit string `json:"circuit,omitempty"`
	// Seed is the synthesis seed for a named circuit (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Netlist is an inline circuit in the JSON wire format.
	Netlist *circuits.Circuit `json:"netlist,omitempty"`
	// Width is the channel width for mode "route" (0 = the paper's best
	// known width for named circuits).
	Width int `json:"width,omitempty"`
	// StartWidth seeds the search for mode "minwidth" (0 = the paper's
	// best known width, falling back to the search default).
	StartWidth int `json:"start_width,omitempty"`
	// TimeoutMs bounds the job's execution time, measured from the moment
	// a worker starts it; past the deadline the run is abandoned at the
	// next pass/net boundary and the job ends canceled (carrying any
	// partial result). 0 = no deadline; negative or beyond MaxTimeoutMs is
	// rejected.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// MaxRetries bounds how many times a transiently failing attempt
	// (recovered panic, injected transient fault) is retried. 0 selects the
	// default (2); negative disables retries; values above 10 are clamped.
	MaxRetries int `json:"max_retries,omitempty"`
	// RetryBackoffMs is the base backoff before the first retry, doubled
	// per attempt with jitter. 0 selects the default (50); negative means
	// no backoff; values above 60000 are clamped.
	RetryBackoffMs int64 `json:"retry_backoff_ms,omitempty"`
	// Options configures the router (JSON tags on router.Options).
	Options router.Options `json:"options"`
}

// Wire-format bounds and defaults for the fields above.
const (
	// MaxTimeoutMs caps timeout_ms at 24 hours; anything beyond is a
	// misconfigured client, rejected rather than silently truncated.
	MaxTimeoutMs = int64(24 * time.Hour / time.Millisecond)
	// DefaultMaxRetries is the retry budget when max_retries is 0.
	DefaultMaxRetries = 2
	// MaxMaxRetries clamps max_retries.
	MaxMaxRetries = 10
	// DefaultRetryBackoffMs is the base backoff when retry_backoff_ms is 0.
	DefaultRetryBackoffMs = int64(50)
	// MaxRetryBackoffMs clamps retry_backoff_ms.
	MaxRetryBackoffMs = int64(60_000)
)

// Status is the GET /jobs/{id} body (and the POST /jobs response).
type Status struct {
	ID          string     `json:"id"`
	Mode        Mode       `json:"mode"`
	Circuit     string     `json:"circuit"`
	State       State      `json:"state"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	Error       string     `json:"error,omitempty"`
	// Width is the routed (or minimum) channel width once the job is done —
	// or, for an interrupted job holding a partial result, the best width
	// reached before the interruption.
	Width int `json:"width,omitempty"`
	// Attempts counts executions of the job including retries (1 = no
	// retry was needed; 0 = never ran).
	Attempts int `json:"attempts,omitempty"`
	// Stack is the recovered goroutine stack when the job failed from a
	// panic after exhausting its retry budget.
	Stack string `json:"stack,omitempty"`
	// Checkpoints counts pathfinder snapshots persisted for this job (only
	// durable parallel-mode routes write any).
	Checkpoints int `json:"checkpoints,omitempty"`
	// Recovered marks a job re-enqueued (or reconstructed) by journal
	// replay after a restart rather than submitted to this process.
	Recovered bool `json:"recovered,omitempty"`
	// CacheHit marks a job answered from the durable result store at
	// submission: an identical (mode, circuit, width, options) request was
	// already completed, so the job went straight to done.
	CacheHit bool `json:"cache_hit,omitempty"`
}

// ResultResponse is the GET /jobs/{id}/result body. Complete distinguishes
// a finished job's full answer from the best partial result of a job that
// was canceled, timed out, or failed mid-run (graceful degradation): for a
// partial minwidth result, Width is the best feasible width found before
// the interruption; for a partial route result, Result.Partial is set and
// Result.FailedNets lists the nets without trees.
type ResultResponse struct {
	ID       string         `json:"id"`
	Mode     Mode           `json:"mode"`
	Width    int            `json:"width"`
	Complete bool           `json:"complete"`
	Error    string         `json:"error,omitempty"` // why the result is partial
	Result   *router.Result `json:"result"`
}

// Job is one queued or executing routing request. The circuit is resolved
// at submit time so malformed requests fail synchronously with a 400.
type Job struct {
	id      string
	mode    Mode
	ckt     *circuits.Circuit
	cktName string // survives recovery of terminal jobs, whose ckt stays nil
	opts    router.Options
	width   int // route mode: channel width; minwidth mode: start width
	timeout time.Duration
	retries int           // transient-failure retry budget
	backoff time.Duration // base backoff before the first retry

	// Durability plumbing (zero in a purely in-memory service): key is the
	// content address of (mode, circuit, width, options) — the result-store
	// and idempotency key; resume is the checkpoint recovery loaded for a
	// re-enqueued parallel route.
	key    string
	resume *pathfinder.Checkpoint

	ctx    context.Context // canceled by Cancel, shutdown, or job timeout
	cancel context.CancelFunc

	mu          sync.Mutex
	state       State
	err         string
	stack       string // recovered panic stack, when the job failed from one
	result      *router.Result
	complete    bool // result is a finished answer, not a partial snapshot
	attempts    int
	outWidth    int
	checkpoints int
	recovered   bool
	cacheHit    bool
	submitted   time.Time
	started     time.Time
	finished    time.Time
}

// resolveJob validates a submit request into a runnable job (without ID or
// cancellation plumbing, which the service attaches on admission).
func resolveJob(req *SubmitRequest) (*Job, error) {
	if req.Mode != ModeRoute && req.Mode != ModeMinWidth {
		return nil, fmt.Errorf("mode must be %q or %q", ModeRoute, ModeMinWidth)
	}
	if (req.Circuit == "") == (req.Netlist == nil) {
		return nil, errors.New("exactly one of circuit or netlist must be given")
	}
	if req.TimeoutMs < 0 {
		return nil, errors.New("timeout_ms must be non-negative")
	}
	if req.TimeoutMs > MaxTimeoutMs {
		return nil, fmt.Errorf("timeout_ms must be at most %d (24h)", MaxTimeoutMs)
	}
	retries := req.MaxRetries
	switch {
	case retries == 0:
		retries = DefaultMaxRetries
	case retries < 0:
		retries = 0
	case retries > MaxMaxRetries:
		retries = MaxMaxRetries
	}
	backoffMs := req.RetryBackoffMs
	switch {
	case backoffMs == 0:
		backoffMs = DefaultRetryBackoffMs
	case backoffMs < 0:
		backoffMs = 0
	case backoffMs > MaxRetryBackoffMs:
		backoffMs = MaxRetryBackoffMs
	}
	job := &Job{
		mode:    req.Mode,
		opts:    req.Options,
		timeout: time.Duration(req.TimeoutMs) * time.Millisecond,
		retries: retries,
		backoff: time.Duration(backoffMs) * time.Millisecond,
		state:   StateQueued,
	}
	paperBest := 0
	if req.Netlist != nil {
		if len(req.Netlist.Nets) == 0 {
			return nil, errors.New("netlist has no nets")
		}
		job.ckt = req.Netlist
		job.cktName = req.Netlist.Name
	} else {
		spec, ok := circuits.SpecByName(req.Circuit)
		if !ok {
			return nil, fmt.Errorf("unknown circuit %q", req.Circuit)
		}
		seed := req.Seed
		if seed == 0 {
			seed = 1
		}
		ckt, err := circuits.Synthesize(spec, seed)
		if err != nil {
			return nil, err
		}
		job.ckt = ckt
		job.cktName = ckt.Name
		paperBest = spec.PaperIKMB
	}
	switch req.Mode {
	case ModeRoute:
		job.width = req.Width
		if job.width <= 0 {
			job.width = paperBest
		}
		if job.width <= 0 {
			return nil, errors.New("width must be given for inline netlists in mode route")
		}
	case ModeMinWidth:
		job.width = req.StartWidth
		if job.width <= 0 {
			job.width = paperBest // 0 falls through to MinWidth's default start
		}
	}
	return job, nil
}

// Cancel requests cooperative cancellation: a queued job flips to canceled
// immediately (reported by the return, so the service journals the terminal
// event exactly once); a running job's router run aborts at its next
// pass/net boundary and the worker records the canceled state.
func (j *Job) Cancel() (immediate bool) {
	j.mu.Lock()
	if j.state == StateQueued {
		j.state = StateCanceled
		j.err = "canceled before execution"
		j.finished = time.Now()
		immediate = true
	}
	j.mu.Unlock()
	j.cancel()
	return immediate
}

// begin transitions queued → running; it reports false if the job was
// already canceled (the worker then skips it).
func (j *Job) begin() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	return true
}

// finish records the run's outcome, classifying cancellation (including
// deadline expiry) separately from routing failure. An interrupted or
// failed run that still produced a partial result keeps it, so GET
// /jobs/{id}/result can serve the best-effort answer with complete=false.
func (j *Job) finish(width int, res *router.Result, err error, attempts int) State {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	j.attempts = attempts
	switch {
	case err == nil:
		j.state = StateDone
		j.outWidth = width
		j.result = res
		j.complete = true
	case errors.Is(err, router.ErrCanceled), errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		j.state = StateCanceled
		j.err = err.Error()
		j.result = res
		j.outWidth = width
	default:
		j.state = StateFailed
		j.err = err.Error()
		j.result = res
		j.outWidth = width
		var pe *PanicError
		if errors.As(err, &pe) {
			j.stack = string(pe.Stack)
		}
	}
	return j.state
}

// noteCheckpoint counts one persisted pathfinder snapshot for the status
// report.
func (j *Job) noteCheckpoint() {
	j.mu.Lock()
	j.checkpoints++
	j.mu.Unlock()
}

// StateNow returns the job's current lifecycle state.
func (j *Job) StateNow() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Status snapshots the job for the wire.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:          j.id,
		Mode:        j.mode,
		Circuit:     j.cktName,
		State:       j.state,
		SubmittedAt: j.submitted,
		Error:       j.err,
		Width:       j.outWidth,
		Attempts:    j.attempts,
		Stack:       j.stack,
		Checkpoints: j.checkpoints,
		Recovered:   j.recovered,
		CacheHit:    j.cacheHit,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

// Result returns the routing result once the job is terminal: the full
// answer of a done job (Complete true), or the best partial result of a
// canceled/failed one (Complete false, Error explaining why). A terminal
// job with nothing routed — and any job still queued or running — has no
// result to serve.
func (j *Job) Result() (ResultResponse, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.terminal() || j.result == nil {
		return ResultResponse{}, fmt.Errorf("job %s is %s, not %s", j.id, j.state, StateDone)
	}
	rr := ResultResponse{
		ID:       j.id,
		Mode:     j.mode,
		Width:    j.outWidth,
		Complete: j.complete,
		Result:   j.result,
	}
	if !j.complete {
		rr.Error = j.err
	}
	return rr, nil
}
