// Chaos tests of the service's fault-tolerance layer. Armed fault points
// crash worker goroutines and inject transient errors mid-job; the
// assertions check the daemon's promises — panics are isolated to the job,
// retries with backoff converge, exhausted budgets surface the recovered
// stack, interrupted jobs serve their best partial result with
// complete=false, and the worker pool neither dies nor leaks goroutines.
// Run under -race (see the CI chaos job and `make chaos`).
package service

import (
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"fpgarouter/internal/circuits"
	"fpgarouter/internal/faultpoint"
	"fpgarouter/internal/router"
)

// settleGoroutines polls until the live goroutine count drops back to at
// most base+slack (HTTP keep-alives and timer goroutines need a moment to
// wind down), failing the test if it never does.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d live, baseline %d", runtime.NumGoroutine(), base)
		}
		runtime.Gosched()
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosServiceWorkerPanicRetriesConverge is the headline chaos case:
// the worker panics on the first two attempts of a job, the service
// recovers both, rebuilds the poisoned routing context, retries with
// backoff, and the third attempt completes the job — with the daemon
// serving throughout and no goroutine growth afterwards.
func TestChaosServiceWorkerPanicRetriesConverge(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	svc, ts := harness(t, Config{Workers: 1, QueueDepth: 8})
	baseline := runtime.NumGoroutine()

	faultpoint.Arm(faultpoint.ServiceWorker, faultpoint.Plan{
		Action: faultpoint.Panic, Every: 1, Times: 2,
	})
	var st Status
	code, body := postJSON(t, ts.URL+"/jobs", SubmitRequest{
		Mode: ModeRoute, Circuit: "busc", MaxRetries: 3, RetryBackoffMs: -1,
		Options: router.Options{MaxPasses: 8},
	}, &st)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", code, body)
	}
	final := pollUntilTerminal(t, ts.URL, st.ID, 2*time.Minute)
	if final.State != StateDone {
		t.Fatalf("job ended %s (%s), want done after retries", final.State, final.Error)
	}
	if final.Attempts != 3 {
		t.Fatalf("attempts %d, want 3 (two panics + one success)", final.Attempts)
	}
	snap := svc.Stats().Snapshot()
	if snap.JobPanics < 2 || snap.JobRetries < 2 {
		t.Fatalf("counters: panics %d retries %d, want >= 2 each", snap.JobPanics, snap.JobRetries)
	}

	// The daemon must still report live after recovering worker panics.
	var h healthBody
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz after panics: HTTP %d", code)
	}
	settleGoroutines(t, baseline)
}

// TestChaosServiceWorkerPanicExhaustsRetries: with no retry budget, a
// panicking job fails — carrying the recovered stack over the wire — and
// the worker survives to run the next job.
func TestChaosServiceWorkerPanicExhaustsRetries(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	_, ts := harness(t, Config{Workers: 1, QueueDepth: 8})

	faultpoint.Arm(faultpoint.ServiceWorker, faultpoint.Plan{
		Action: faultpoint.Panic, Every: 1,
	})
	var st Status
	code, body := postJSON(t, ts.URL+"/jobs", SubmitRequest{
		Mode: ModeRoute, Circuit: "busc", MaxRetries: -1, // retries disabled
		Options: router.Options{MaxPasses: 8},
	}, &st)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", code, body)
	}
	final := pollUntilTerminal(t, ts.URL, st.ID, time.Minute)
	if final.State != StateFailed {
		t.Fatalf("job ended %s (%s), want failed", final.State, final.Error)
	}
	if final.Attempts != 1 {
		t.Fatalf("attempts %d, want 1 with retries disabled", final.Attempts)
	}
	if !strings.Contains(final.Error, "worker panic") {
		t.Fatalf("failed job error %q does not carry the panic", final.Error)
	}
	if final.Stack == "" || !strings.Contains(final.Stack, "goroutine") {
		t.Fatalf("failed job lost the recovered stack: %q", final.Stack)
	}
	// A panicked job produced no result, even a partial one.
	if code := getJSON(t, ts.URL+"/jobs/"+st.ID+"/result", nil); code != http.StatusConflict {
		t.Fatalf("result of panicked job: HTTP %d, want 409", code)
	}

	// Disarm; the same worker (with its rebuilt context) serves the next job.
	faultpoint.Reset()
	var next Status
	if code, body := postJSON(t, ts.URL+"/jobs", SubmitRequest{
		Mode: ModeRoute, Circuit: "busc", Options: router.Options{MaxPasses: 8},
	}, &next); code != http.StatusAccepted {
		t.Fatalf("follow-up submit: HTTP %d: %s", code, body)
	}
	if st := pollUntilTerminal(t, ts.URL, next.ID, 2*time.Minute); st.State != StateDone {
		t.Fatalf("follow-up job ended %s (%s)", st.State, st.Error)
	}
}

// TestChaosScanWorkerPanicIsolatedInService exercises the full funnel: a
// panic on a candidate-scan worker goroutine deep inside the router crosses
// the scan barrier, the probe batch, and the job's recover, becomes a
// transient PanicError, and the retry succeeds.
func TestChaosScanWorkerPanicIsolatedInService(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	_, ts := harness(t, Config{Workers: 1, QueueDepth: 8})

	faultpoint.Arm(faultpoint.ScanWorker, faultpoint.Plan{
		Action: faultpoint.Panic, Nth: 10, // fires once, mid-scan of attempt 1
	})
	var st Status
	code, body := postJSON(t, ts.URL+"/jobs", SubmitRequest{
		Mode: ModeRoute, Circuit: "busc", MaxRetries: 2, RetryBackoffMs: -1,
		Options: router.Options{MaxPasses: 8, CandidateWorkers: 4},
	}, &st)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", code, body)
	}
	final := pollUntilTerminal(t, ts.URL, st.ID, 2*time.Minute)
	if final.State != StateDone {
		t.Fatalf("job ended %s (%s), want done after retry", final.State, final.Error)
	}
	if final.Attempts != 2 {
		t.Fatalf("attempts %d, want 2 (scan panic + clean retry)", final.Attempts)
	}
}

// TestFaultTransientErrorRetriesConverge: an injected transient *error*
// (not a panic) at the router's pass boundary is retried like a recovered
// panic — the taxonomy, not the failure mechanism, drives the retry loop.
func TestFaultTransientErrorRetriesConverge(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	_, ts := harness(t, Config{Workers: 1, QueueDepth: 8})

	faultpoint.Arm(faultpoint.PassBoundary, faultpoint.Plan{
		Action: faultpoint.Error, Err: ErrTransient, Every: 1, Times: 2,
	})
	var st Status
	code, body := postJSON(t, ts.URL+"/jobs", SubmitRequest{
		Mode: ModeRoute, Circuit: "busc", MaxRetries: 3, RetryBackoffMs: 1,
		Options: router.Options{MaxPasses: 8},
	}, &st)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", code, body)
	}
	final := pollUntilTerminal(t, ts.URL, st.ID, 2*time.Minute)
	if final.State != StateDone {
		t.Fatalf("job ended %s (%s), want done after transient retries", final.State, final.Error)
	}
	if final.Attempts != 3 {
		t.Fatalf("attempts %d, want 3 (two injected errors + one success)", final.Attempts)
	}
}

// TestChaosMinWidthDeadlinePartialOverHTTP is the acceptance e2e: a
// minwidth job whose deadline lands mid-search ends canceled but serves its
// best feasible width with complete=false over GET /jobs/{id}/result.
func TestChaosMinWidthDeadlinePartialOverHTTP(t *testing.T) {
	_, ts := harness(t, Config{Workers: 1, QueueDepth: 8})

	// Calibrate in-process: one pass-limited route at a feasible width.
	spec, ok := circuits.SpecByName("busc")
	if !ok {
		t.Fatal("busc spec missing")
	}
	ckt, err := circuits.Synthesize(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := router.Route(ckt, spec.PaperIKMB+1, router.Options{MaxPasses: 4}); err != nil {
		t.Fatal(err)
	}
	d := time.Since(start)
	// Enough for the feasibility probe plus a shrink step; far too short for
	// the search's final 20-pass unroutable grind.
	timeoutMs := int64((3*d + 100*time.Millisecond) / time.Millisecond)

	var st Status
	code, body := postJSON(t, ts.URL+"/jobs", SubmitRequest{
		Mode: ModeMinWidth, Circuit: "busc", StartWidth: spec.PaperIKMB + 1,
		TimeoutMs: timeoutMs,
		Options:   router.Options{MaxPasses: 20, WidthProbes: 1},
	}, &st)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", code, body)
	}
	final := pollUntilTerminal(t, ts.URL, st.ID, time.Minute)
	if final.State != StateCanceled {
		t.Fatalf("job ended %s (%s), want canceled by its deadline", final.State, final.Error)
	}

	var rr ResultResponse
	if code := getJSON(t, ts.URL+"/jobs/"+st.ID+"/result", &rr); code != http.StatusOK {
		t.Fatalf("partial result: HTTP %d, want 200", code)
	}
	if rr.Complete {
		t.Fatal("interrupted minwidth job served complete=true")
	}
	if rr.Error == "" {
		t.Fatal("partial result response has no error explaining why")
	}
	if rr.Width < 1 || rr.Width > spec.PaperIKMB+1 {
		t.Fatalf("best feasible width %d outside [1, %d]", rr.Width, spec.PaperIKMB+1)
	}
	if rr.Result == nil || !rr.Result.Routed || rr.Result.Partial {
		t.Fatalf("best-so-far result should be a full routing at width %d: %+v", rr.Width, rr.Result)
	}
	if final.Width != rr.Width {
		t.Fatalf("status width %d != result width %d", final.Width, rr.Width)
	}
}

// TestFaultRetryAfterComputed is the satellite unit test of the Retry-After
// estimate: queue drain time from depth × mean ÷ workers, ceiling-rounded,
// clamped to [1, 60].
func TestFaultRetryAfterComputed(t *testing.T) {
	cases := []struct {
		queued  int
		mean    time.Duration
		workers int
		want    int
	}{
		{0, 2 * time.Second, 4, 1},         // empty queue: minimal wait
		{10, 0, 4, 1},                      // no samples yet: minimal wait
		{10, 2 * time.Second, 1, 20},       // 10 jobs × 2s ÷ 1 worker
		{10, 2 * time.Second, 4, 5},        // same load over 4 workers
		{3, 2500 * time.Millisecond, 2, 4}, // 3.75s drains → ceil to 4
		{1000, 30 * time.Second, 1, 60},    // clamped at the cap
		{-5, 2 * time.Second, 0, 1},        // nonsense inputs sanitized
		{1, 100 * time.Millisecond, 4, 1},  // sub-second drain → floor 1
	}
	for _, c := range cases {
		if got := retryAfterFor(c.queued, c.mean, c.workers); got != c.want {
			t.Errorf("retryAfterFor(%d, %v, %d) = %d, want %d",
				c.queued, c.mean, c.workers, got, c.want)
		}
	}

	// The live header must parse as a positive integer.
	_, ts := harness(t, Config{Workers: 1, QueueDepth: 1})
	grind := SubmitRequest{Mode: ModeMinWidth, Circuit: "busc", StartWidth: 1,
		Options: router.Options{MaxPasses: 20, WidthProbes: 1}}
	var first, second Status
	if code, _ := postJSON(t, ts.URL+"/jobs", grind, &first); code != http.StatusAccepted {
		t.Fatal("first submit rejected")
	}
	if code, _ := postJSON(t, ts.URL+"/jobs", grind, &second); code != http.StatusAccepted {
		t.Fatal("second submit rejected")
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"mode":"route","circuit":"busc"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit: HTTP %d, want 503", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 || secs > 60 {
		t.Fatalf("Retry-After %q not an integer in [1, 60]", resp.Header.Get("Retry-After"))
	}
	for _, id := range []string{first.ID, second.ID} {
		postJSON(t, ts.URL+"/jobs/"+id+"/cancel", struct{}{}, nil)
	}
}

// TestFaultTimeoutMsEdgeCases is the satellite golden test: out-of-range
// timeout_ms values are rejected deterministically with exact JSON error
// bodies, while the boundary values are accepted.
func TestFaultTimeoutMsEdgeCases(t *testing.T) {
	_, ts := harness(t, Config{Workers: 1, QueueDepth: 8})

	golden := []struct {
		timeoutMs int64
		wantBody  string
	}{
		{-1, "{\n  \"error\": \"timeout_ms must be non-negative\"\n}\n"},
		{MaxTimeoutMs + 1, fmt.Sprintf("{\n  \"error\": \"timeout_ms must be at most %d (24h)\"\n}\n", MaxTimeoutMs)},
	}
	for _, g := range golden {
		code, body := postJSON(t, ts.URL+"/jobs", SubmitRequest{
			Mode: ModeRoute, Circuit: "busc", TimeoutMs: g.timeoutMs,
			Options: router.Options{MaxPasses: 8},
		}, nil)
		if code != http.StatusBadRequest {
			t.Fatalf("timeout_ms=%d: HTTP %d (%s), want 400", g.timeoutMs, code, body)
		}
		if body != g.wantBody {
			t.Fatalf("timeout_ms=%d: body %q, want golden %q", g.timeoutMs, body, g.wantBody)
		}
	}

	// Boundary values are fine: 0 means no deadline, MaxTimeoutMs is the cap.
	for _, ms := range []int64{0, MaxTimeoutMs} {
		var st Status
		code, body := postJSON(t, ts.URL+"/jobs", SubmitRequest{
			Mode: ModeRoute, Circuit: "busc", TimeoutMs: ms,
			Options: router.Options{MaxPasses: 8},
		}, &st)
		if code != http.StatusAccepted {
			t.Fatalf("timeout_ms=%d: HTTP %d (%s), want 202", ms, code, body)
		}
		if final := pollUntilTerminal(t, ts.URL, st.ID, 2*time.Minute); final.State != StateDone {
			t.Fatalf("timeout_ms=%d: job ended %s (%s)", ms, final.State, final.Error)
		}
	}
}

// TestFaultReadyzTracksDrainAndSaturation: /readyz flips to 503 when the
// queue saturates or the service drains, while /healthz stays 200 (liveness
// only) so orchestrators don't kill a draining pod.
func TestFaultReadyzTracksDrainAndSaturation(t *testing.T) {
	svc, ts := harness(t, Config{Workers: 1, QueueDepth: 1})

	var rb readyBody
	if code := getJSON(t, ts.URL+"/readyz", &rb); code != http.StatusOK || !rb.Ready {
		t.Fatalf("fresh service: readyz HTTP %d %+v, want 200 ready", code, rb)
	}

	// Occupy the worker, then fill the 1-deep queue.
	grind := SubmitRequest{Mode: ModeMinWidth, Circuit: "busc", StartWidth: 1,
		Options: router.Options{MaxPasses: 20, WidthProbes: 1}}
	var first, second Status
	if code, _ := postJSON(t, ts.URL+"/jobs", grind, &first); code != http.StatusAccepted {
		t.Fatal("first submit rejected")
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		j, _ := svc.Job(first.ID)
		if j.StateNow() == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, _ := postJSON(t, ts.URL+"/jobs", grind, &second); code != http.StatusAccepted {
		t.Fatal("second submit rejected")
	}

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated readyz: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("saturated readyz without Retry-After")
	}
	for _, id := range []string{first.ID, second.ID} {
		postJSON(t, ts.URL+"/jobs/"+id+"/cancel", struct{}{}, nil)
	}
	pollUntilTerminal(t, ts.URL, first.ID, time.Minute)
	pollUntilTerminal(t, ts.URL, second.ID, time.Minute)

	// Drain: readiness goes 503 "draining", liveness stays 200.
	svc.Shutdown(t.Context())
	var drb readyBody
	if code := getJSON(t, ts.URL+"/readyz", &drb); code != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz: HTTP %d, want 503", code)
	}
	var h healthBody
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK || h.Status != "draining" {
		t.Fatalf("draining healthz: HTTP %d status %q, want 200 draining", code, h.Status)
	}
}
