package service

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"fpgarouter/internal/circuits"
	"fpgarouter/internal/faultpoint"
	"fpgarouter/internal/router"
)

// TestHelperRoutedProcess is not a test: it is the child process body for
// TestChaosCrashRecoverySIGKILL, re-executed from the test binary with
// ROUTED_HELPER_PROCESS=1. It opens a durable service over the shared
// directory (checkpointing every iteration), publishes its listen address
// through a file, and serves until the parent SIGKILLs it. With
// ROUTED_HELPER_SLOW=1 it arms a per-net pathfinder delay so the parent
// can reliably observe checkpoints before pulling the plug — Delay never
// perturbs results, so the crashed-and-resumed route stays comparable to
// an uninterrupted reference.
func TestHelperRoutedProcess(t *testing.T) {
	if os.Getenv("ROUTED_HELPER_PROCESS") != "1" {
		t.Skip("child-process body for TestChaosCrashRecoverySIGKILL")
	}
	if os.Getenv("ROUTED_HELPER_SLOW") == "1" {
		faultpoint.Arm(faultpoint.PathfinderWorker, faultpoint.Plan{
			Action: faultpoint.Delay, Delay: 15 * time.Millisecond, Every: 1,
		})
	}
	svc, _, err := OpenDurable(os.Getenv("ROUTED_HELPER_DIR"), Config{
		Workers: 1, QueueDepth: 4, CheckpointEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Publish the address atomically so the parent never reads a torn file.
	addrFile := os.Getenv("ROUTED_HELPER_ADDRFILE")
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		t.Fatal(err)
	}
	http.Serve(ln, svc.Handler()) // runs until the parent kills the process
}

// TestChaosCrashRecoverySIGKILL is the end-to-end durability proof: a real
// routed process is SIGKILLed mid-route after it has written checkpoints,
// a fresh process recovers from the same journal directory, resumes the
// route from the latest snapshot, and the final result is bit-identical
// to an uninterrupted in-process route of the same request.
func TestChaosCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test")
	}
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")

	start := func(slow bool) *exec.Cmd {
		cmd := exec.Command(os.Args[0], "-test.run", "^TestHelperRoutedProcess$")
		cmd.Env = append(os.Environ(),
			"ROUTED_HELPER_PROCESS=1",
			"ROUTED_HELPER_DIR="+filepath.Join(dir, "durable"),
			"ROUTED_HELPER_ADDRFILE="+addrFile,
		)
		if slow {
			cmd.Env = append(cmd.Env, "ROUTED_HELPER_SLOW=1")
		}
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd
	}
	waitAddr := func() string {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
				return "http://" + string(b)
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Fatal("helper process never published its listen address")
		return ""
	}

	// Phase 1: slow helper, submit, wait for checkpoints, SIGKILL mid-route.
	cmd1 := start(true)
	base1 := waitAddr()
	var st Status
	if code, body := postJSON(t, base1+"/jobs", routeTerm1, &st); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", code, body)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		var cur Status
		getJSON(t, base1+"/jobs/"+st.ID, &cur)
		if cur.State == StateRunning && cur.Checkpoints >= 2 {
			break
		}
		if cur.State == StateDone {
			t.Fatal("route finished before the crash could be injected; raise the helper delay")
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoints observed before deadline (last status %+v)", cur)
		}
		time.Sleep(10 * time.Millisecond)
	}
	cmd1.Process.Kill() // SIGKILL: no drain, no journal close, no cleanup
	cmd1.Wait()
	os.Remove(addrFile)

	// Phase 2: fresh full-speed process over the same directory.
	cmd2 := start(false)
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	base2 := waitAddr()
	final := pollUntilTerminal(t, base2, st.ID, 2*time.Minute)
	if final.State != StateDone || !final.Recovered {
		t.Fatalf("recovered job ended %+v, want done and recovered", final)
	}
	var rr ResultResponse
	if code := getJSON(t, base2+"/jobs/"+st.ID+"/result", &rr); code != http.StatusOK {
		t.Fatalf("recovered result: HTTP %d", code)
	}

	spec, ok := circuits.SpecByName("term1")
	if !ok {
		t.Fatal("term1 spec missing")
	}
	ckt, err := circuits.Synthesize(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := router.Route(ckt, 10, router.Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(rr.Result)
	wantB, _ := json.Marshal(want)
	if !bytes.Equal(got, wantB) {
		t.Fatalf("resumed result differs from uninterrupted route:\n%.300s\nvs\n%.300s", got, wantB)
	}
}
