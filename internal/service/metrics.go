package service

import (
	"fmt"
	"io"
	"net/http"
)

// metricsPrefix names every exported metric family.
const metricsPrefix = "fpgarouter"

// WriteMetrics writes the service's Prometheus text exposition: job-queue
// counters and gauges, then the shared router work counters (see
// stats.Snapshot.WritePrometheus).
func (s *Service) WriteMetrics(w io.Writer) {
	metric := func(kind, name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s_%s %s\n# TYPE %s_%s %s\n%s_%s %d\n",
			metricsPrefix, name, help, metricsPrefix, name, kind, metricsPrefix, name, v)
	}
	metric("counter", "jobs_submitted_total", "Jobs admitted to the queue.", s.submitted.Load())
	metric("counter", "jobs_rejected_total", "Submissions rejected (queue full or draining).", s.rejected.Load())
	fmt.Fprintf(w, "# HELP %s_jobs_completed_total Jobs finished, by terminal state.\n", metricsPrefix)
	fmt.Fprintf(w, "# TYPE %s_jobs_completed_total counter\n", metricsPrefix)
	for i, state := range []State{StateDone, StateFailed, StateCanceled} {
		fmt.Fprintf(w, "%s_jobs_completed_total{state=%q} %d\n", metricsPrefix, state, s.completed[i].Load())
	}
	metric("gauge", "jobs_running", "Jobs currently executing on a worker.", s.running.Load())
	metric("gauge", "jobs_queued", "Jobs waiting for a worker.", int64(len(s.queue)))
	metric("gauge", "workers", "Worker-pool size.", int64(s.cfg.Workers))
	s.stats.Snapshot().WritePrometheus(w, metricsPrefix)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.WriteMetrics(w)
}
