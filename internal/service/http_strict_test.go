package service

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// postRaw posts a raw body and returns the status code and exact body.
func postRaw(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestSubmitStrictDecodingGoldenBodies pins the exact 400 bodies strict
// decoding produces — these are API surface clients script against, so a
// reworded error is a breaking change this test makes deliberate.
func TestSubmitStrictDecodingGoldenBodies(t *testing.T) {
	_, ts := harness(t, Config{Workers: 1, QueueDepth: 2})

	cases := []struct {
		name, body, want string
	}{
		{
			name: "unknown field",
			body: `{"mode":"minwidth","circuit":"busc","circiut":"typo"}`,
			want: "{\n  \"error\": \"json: unknown field \\\"circiut\\\"\"\n}\n",
		},
		{
			name: "empty body",
			body: "",
			want: "{\n  \"error\": \"empty request body\"\n}\n",
		},
		{
			name: "trailing data",
			body: `{"mode":"minwidth","circuit":"busc"} {"extra":true}`,
			want: "{\n  \"error\": \"trailing data after JSON body\"\n}\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := postRaw(t, ts.URL+"/jobs", tc.body)
			if code != http.StatusBadRequest {
				t.Fatalf("HTTP %d, want 400 (body %s)", code, body)
			}
			if body != tc.want {
				t.Fatalf("golden body mismatch:\ngot  %q\nwant %q", body, tc.want)
			}
		})
	}
}

// TestListFilters exercises GET /jobs?limit=&state=: valid filters bound
// the listing, invalid ones are 400s with pinned bodies.
func TestListFilters(t *testing.T) {
	svc, ts := harness(t, Config{Workers: 1, QueueDepth: 8})

	var ids []string
	for i := 0; i < 3; i++ {
		st, err := svc.Submit(&SubmitRequest{Mode: ModeMinWidth, Circuit: "busc", Seed: 1, Options: minwidthOpts})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		if pollUntilTerminal(t, ts.URL, id, 2*time.Minute).State != StateDone {
			t.Fatalf("job %s did not finish", id)
		}
	}

	var all []Status
	if code := getJSON(t, ts.URL+"/jobs", &all); code != http.StatusOK || len(all) != 3 {
		t.Fatalf("unfiltered list: HTTP %d, %d jobs", code, len(all))
	}

	var limited []Status
	if code := getJSON(t, ts.URL+"/jobs?limit=2", &limited); code != http.StatusOK {
		t.Fatalf("limit=2: HTTP %d", code)
	}
	if len(limited) != 2 || limited[0].ID != ids[1] || limited[1].ID != ids[2] {
		t.Fatalf("limit=2 kept %v, want the newest two %v in order", limited, ids[1:])
	}

	var done []Status
	if code := getJSON(t, ts.URL+"/jobs?state=done", &done); code != http.StatusOK || len(done) != 3 {
		t.Fatalf("state=done: HTTP %d, %d jobs", code, len(done))
	}
	var failed []Status
	if code := getJSON(t, ts.URL+"/jobs?state=failed", &failed); code != http.StatusOK || len(failed) != 0 {
		t.Fatalf("state=failed: HTTP %d, %d jobs, want empty", code, len(failed))
	}

	get := func(url string) (int, string) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if code, body := get(ts.URL + "/jobs?limit=-1"); code != http.StatusBadRequest ||
		body != "{\n  \"error\": \"limit must be a non-negative integer (got \\\"-1\\\")\"\n}\n" {
		t.Fatalf("limit=-1: HTTP %d body %q", code, body)
	}
	if code, body := get(ts.URL + "/jobs?limit=ten"); code != http.StatusBadRequest || !strings.Contains(body, `\"ten\"`) {
		t.Fatalf("limit=ten: HTTP %d body %q", code, body)
	}
	if code, body := get(ts.URL + "/jobs?state=finished"); code != http.StatusBadRequest ||
		body != "{\n  \"error\": \"state must be one of queued, running, done, failed, canceled (got \\\"finished\\\")\"\n}\n" {
		t.Fatalf("state=finished: HTTP %d body %q", code, body)
	}
}
