// Typed error taxonomy of the service layer. Every error the service
// surfaces is tagged with exactly one class, and the HTTP layer maps
// classes — not individual errors — to status codes:
//
//	ErrBadRequest → 400  the request can never succeed as written
//	ErrTransient  → 503  expected to clear on retry (saturation, drain,
//	                     worker churn, injected faults)
//	ErrTerminal   → 500  an internal failure retries will not fix
//
// Classification composes with errors.Is/As rather than string matching,
// and Classify preserves the wrapped error's message verbatim so wire
// bodies stay human-readable.
package service

import (
	"errors"
	"fmt"
	"net/http"
)

// Taxonomy classes. These are never returned bare; they are matched with
// errors.Is against classified errors.
var (
	ErrBadRequest = errors.New("service: bad request")
	ErrTransient  = errors.New("service: transient failure")
	ErrTerminal   = errors.New("service: terminal failure")
)

// classified tags an error with a taxonomy class without altering its
// message: Error() is the wrapped error's text, while errors.Is sees both
// the class and the original error through Unwrap.
type classified struct {
	class error
	err   error
}

func (c *classified) Error() string   { return c.err.Error() }
func (c *classified) Unwrap() []error { return []error{c.class, c.err} }

// Classify tags err with one of the taxonomy classes above.
func Classify(class, err error) error { return &classified{class: class, err: err} }

// httpStatus maps a classified error to its wire status code. Unclassified
// errors are conservatively treated as terminal: an untagged failure is a
// bug in the service, not the client's fault.
func httpStatus(err error) int {
	switch {
	case errors.Is(err, ErrTransient):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// PanicError is what a recovered worker panic becomes: the panic value plus
// the stack captured on the panicking goroutine. It classifies as transient
// — the poisoned routing context is discarded and rebuilt, and the job is
// retried up to its budget; exhausted retries land the job in StateFailed
// with the stack attached to its status.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("worker panic: %v", e.Value) }

// Unwrap tags every recovered panic as transient.
func (e *PanicError) Unwrap() error { return ErrTransient }
