// Crash recovery: a durable service reconstructs its job registry from the
// write-ahead journal before accepting traffic. Replay reduces each job's
// event history to its last state — terminal jobs come back as servable
// history (done results re-read from the content store), interrupted jobs
// are re-enqueued through the same validation path as a fresh submission,
// and a parallel route that had checkpointed resumes from its latest
// snapshot instead of iteration one (bit-identical to the uninterrupted
// run, by the pathfinder's checkpoint parity contract).
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"

	"fpgarouter/internal/journal"
	"fpgarouter/internal/pathfinder"
)

// RecoveryReport summarizes what journal replay reconstructed.
type RecoveryReport struct {
	// ReplayedRecords counts intact journal records read back;
	// SalvagedBytes the torn-tail bytes truncated away (see journal.Open).
	ReplayedRecords int   `json:"replayed_records"`
	SalvagedBytes   int64 `json:"salvaged_bytes"`
	// Completed counts terminal jobs reconstructed as servable history,
	// Requeued the interrupted jobs sent back through the queue, and
	// Resumed how many of those carry a pathfinder checkpoint.
	Completed int `json:"completed"`
	Requeued  int `json:"requeued"`
	Resumed   int `json:"resumed"`
	// Unrecoverable lists jobs whose journaled request no longer resolves
	// (reconstructed as failed so their history stays visible).
	Unrecoverable []string `json:"unrecoverable,omitempty"`
}

// OpenDurable opens (creating if needed) the journal and result store
// under dir — dir/journal.wal and dir/store — and recovers a service from
// them. The caller owns closing cfg.Journal after Shutdown; OpenDurable
// closes it only on error.
func OpenDurable(dir string, cfg Config) (*Service, RecoveryReport, error) {
	j, rep, err := journal.Open(filepath.Join(dir, "journal.wal"), journal.Options{})
	if err != nil {
		return nil, RecoveryReport{}, err
	}
	store, err := journal.NewStore(filepath.Join(dir, "store"))
	if err != nil {
		j.Close()
		return nil, RecoveryReport{}, err
	}
	cfg.Journal = j
	cfg.Results = store
	s, report, err := Recover(cfg, rep)
	if err != nil {
		j.Close()
	}
	return s, report, err
}

// jobHistory is one job's journal events reduced to their latest state.
type jobHistory struct {
	id        string
	submitted journal.Record // the EvSubmitted record (request + key)
	last      journal.Record // the latest event seen
	started   bool
}

// Recover builds a service from cfg and a journal replay: terminal jobs
// are reconstructed in place, interrupted ones re-enqueued (in their
// original submission order, ahead of any new traffic), and only then do
// the workers start. An empty replay (or nil) degenerates to New.
func Recover(cfg Config, rep *journal.Replay) (*Service, RecoveryReport, error) {
	var report RecoveryReport
	var histories []*jobHistory
	byID := make(map[string]*jobHistory)
	if rep != nil {
		report.ReplayedRecords = len(rep.Records)
		report.SalvagedBytes = rep.SalvagedBytes
		for _, rec := range rep.Records {
			h := byID[rec.JobID]
			if h == nil {
				if rec.Event != journal.EvSubmitted {
					// An orphaned record (its submission sat past a salvaged
					// tear): nothing to rebuild from, skip the job.
					continue
				}
				h = &jobHistory{id: rec.JobID, submitted: rec}
				byID[rec.JobID] = h
				histories = append(histories, h)
			}
			if rec.Event == journal.EvStarted {
				h.started = true
			}
			h.last = rec
		}
	}

	s := newService(cfg, len(histories))
	s.stats.AddJournalReplay(int64(report.ReplayedRecords))
	maxSeq := int64(0)
	for _, h := range histories {
		if n, err := strconv.ParseInt(strings.TrimPrefix(h.id, "job-"), 10, 64); err == nil && n > maxSeq {
			maxSeq = n
		}
		job, requeue := s.recoverJob(h, &report)
		if job == nil {
			continue
		}
		s.jobs[h.id] = job
		s.order = append(s.order, h.id)
		if requeue {
			select {
			case s.queue <- job:
			default:
				// The widened queue holds every history by construction; a
				// full queue here means the journal lied — fail the job
				// rather than dropping it silently.
				job.finish(0, nil, fmt.Errorf("recovery: queue full for %s", h.id), 0)
				report.Requeued--
				report.Unrecoverable = append(report.Unrecoverable, h.id)
			}
		}
	}
	s.seq = maxSeq
	s.startWorkers()
	return s, report, nil
}

// recoverJob rebuilds one job from its reduced history, reporting whether
// it must be re-enqueued. Terminal jobs come back terminal (done results
// re-read from the store); non-terminal jobs are re-resolved from the
// journaled request and run again, resuming from their latest checkpoint
// when one was persisted.
func (s *Service) recoverJob(h *jobHistory, report *RecoveryReport) (*Job, bool) {
	var req SubmitRequest
	reqErr := json.Unmarshal(h.submitted.Request, &req)

	terminalErr := func(msg string) *Job {
		// Reconstruct enough of the job for status/listing even when the
		// request no longer resolves.
		job := &Job{id: h.id, mode: req.Mode, cktName: req.Circuit, key: h.submitted.Key, state: StateQueued, recovered: true}
		job.ctx, job.cancel = context.WithCancel(s.base)
		job.submitted = h.submitted.Time
		job.finish(0, nil, fmt.Errorf("recovery: %s", msg), 0)
		report.Unrecoverable = append(report.Unrecoverable, h.id)
		return job
	}

	switch h.last.Event {
	case journal.EvDone:
		if reqErr != nil {
			return terminalErr("journaled request unreadable: " + reqErr.Error()), false
		}
		job := &Job{id: h.id, mode: req.Mode, cktName: req.Circuit, key: h.last.Key, state: StateDone, recovered: true}
		if req.Netlist != nil {
			job.cktName = req.Netlist.Name
		}
		job.ctx, job.cancel = context.WithCancel(s.base)
		job.submitted = h.submitted.Time
		job.finished = h.last.Time
		job.complete = true
		job.outWidth = h.last.Width
		job.attempts = h.last.Attempts
		if stored, ok := s.lookupResult(h.last.Key); ok {
			job.result = stored.Result
			job.outWidth = stored.Width
		}
		report.Completed++
		return job, false
	case journal.EvFailed, journal.EvCanceled:
		if reqErr != nil {
			return terminalErr("journaled request unreadable: " + reqErr.Error()), false
		}
		job := &Job{id: h.id, mode: req.Mode, cktName: req.Circuit, key: h.submitted.Key, recovered: true}
		if req.Netlist != nil {
			job.cktName = req.Netlist.Name
		}
		job.ctx, job.cancel = context.WithCancel(s.base)
		job.submitted = h.submitted.Time
		job.finished = h.last.Time
		job.attempts = h.last.Attempts
		job.err = h.last.Error
		if h.last.Event == journal.EvFailed {
			job.state = StateFailed
		} else {
			job.state = StateCanceled
		}
		report.Completed++
		return job, false
	}

	// Interrupted: submitted, maybe started, maybe checkpointed. Re-resolve
	// through the same validation as a fresh submission and re-enqueue
	// under the original ID (idempotency: the content key is unchanged).
	if reqErr != nil {
		return terminalErr("journaled request unreadable: " + reqErr.Error()), false
	}
	job, err := resolveJob(&req)
	if err != nil {
		return terminalErr("journaled request no longer resolves: " + err.Error()), false
	}
	job.id = h.id
	job.key = h.submitted.Key
	job.recovered = true
	job.ctx, job.cancel = context.WithCancel(s.base)
	job.submitted = h.submitted.Time
	if ck := s.loadCheckpoint(h.id, job); ck != nil {
		job.resume = ck
		report.Resumed++
	}
	report.Requeued++
	s.stats.AddJobsRecovered(1)
	return job, true
}

// loadCheckpoint reads the job's persisted pathfinder snapshot, if it can
// be used: only parallel-mode routes resume (anything else re-runs from
// scratch, cheaply). A missing or unreadable blob is a silent restart.
func (s *Service) loadCheckpoint(id string, job *Job) *pathfinder.Checkpoint {
	if s.cfg.Results == nil || job.mode != ModeRoute || !job.opts.Parallel {
		return nil
	}
	ck := new(pathfinder.Checkpoint)
	if ok, err := s.cfg.Results.Get(checkpointKey(id), ck); !ok || err != nil {
		return nil
	}
	return ck
}
