package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// Handler returns the service's HTTP API:
//
//	POST /jobs             submit a job (SubmitRequest → 202 Status)
//	GET  /jobs             list all jobs in submission order
//	GET  /jobs/{id}        job status
//	GET  /jobs/{id}/result routing result (409 until a result exists; a
//	                       partial result of an interrupted job is served
//	                       with complete=false)
//	POST /jobs/{id}/cancel request cancellation
//	GET  /healthz          liveness and pool occupancy (always 200 while
//	                       the process serves)
//	GET  /readyz           readiness: 503 while draining or saturated
//	GET  /metrics          Prometheus text exposition
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// errorBody is the JSON error envelope of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) // nothing useful to do with a write error mid-response
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// decodeStrict decodes one JSON body with every leniency turned off:
// unknown fields, an empty body, and trailing data after the value are all
// rejected (the golden-body tests pin the exact error strings clients see).
func decodeStrict(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return errors.New("empty request body")
		}
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := decodeStrict(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.Submit(&req)
	if err == nil {
		writeJSON(w, http.StatusAccepted, st)
		return
	}
	code := httpStatus(err)
	if code == http.StatusServiceUnavailable {
		// Estimated queue drain time, not a hard-coded constant: depth ×
		// recent mean job time ÷ workers, clamped (see retryAfterFor).
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	}
	writeError(w, code, err)
}

// validListStates are the ?state= filter values GET /jobs accepts.
var validListStates = map[State]bool{
	StateQueued: true, StateRunning: true, StateDone: true,
	StateFailed: true, StateCanceled: true,
}

// handleList serves GET /jobs with optional bounds: ?limit=N keeps only
// the newest N jobs (in submission order), ?state=S keeps one lifecycle
// state. Invalid values are 400s, not silently ignored — a typo'd filter
// returning everything would be worse than an error.
func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := 0
	if lv := q.Get("limit"); lv != "" {
		n, err := strconv.Atoi(lv)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("limit must be a non-negative integer (got %q)", lv))
			return
		}
		limit = n
	}
	state := State(q.Get("state"))
	if state != "" && !validListStates[state] {
		writeError(w, http.StatusBadRequest, fmt.Errorf("state must be one of queued, running, done, failed, canceled (got %q)", state))
		return
	}
	writeJSON(w, http.StatusOK, s.JobsFiltered(state, limit))
}

// jobFor resolves {id}, writing the 404 itself when absent.
func (s *Service) jobFor(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
	}
	return j, ok
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobFor(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	res, err := j.Result()
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// healthBody is the GET /healthz response.
type healthBody struct {
	Status        string `json:"status"` // "ok" or "draining"
	Workers       int    `json:"workers"`
	RunningJobs   int64  `json:"running_jobs"`
	QueuedJobs    int    `json:"queued_jobs"`
	QueueCapacity int    `json:"queue_capacity"`
}

// handleHealthz is pure liveness: 200 as long as the process can answer,
// even while draining — restarting a pod because it is shutting down
// gracefully would defeat the drain. Orchestrators should route traffic on
// /readyz and restart on /healthz.
func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := healthBody{
		Status:        "ok",
		Workers:       s.cfg.Workers,
		RunningJobs:   s.running.Load(),
		QueuedJobs:    len(s.queue),
		QueueCapacity: s.cfg.QueueDepth,
	}
	if s.Draining() {
		h.Status = "draining"
	}
	writeJSON(w, http.StatusOK, h)
}

// readyBody is the GET /readyz response.
type readyBody struct {
	Ready         bool   `json:"ready"`
	Reason        string `json:"reason,omitempty"` // why not ready
	QueuedJobs    int    `json:"queued_jobs"`
	QueueCapacity int    `json:"queue_capacity"`
	// Degraded reports reduced durability that does NOT fail readiness: a
	// journal flipped read-only (disk full) keeps serving jobs in-memory,
	// and restarting the pod would only lose the in-flight work it still
	// has. Operators alert on this field; orchestrators keep routing.
	Degraded string `json:"degraded,omitempty"`
}

// handleReadyz reports whether the service can usefully accept a new job:
// not during shutdown drain, and not while the queue is saturated (a
// submission now would be rejected with 503 anyway).
func (s *Service) handleReadyz(w http.ResponseWriter, r *http.Request) {
	b := readyBody{
		Ready:         true,
		QueuedJobs:    len(s.queue),
		QueueCapacity: s.cfg.QueueDepth,
	}
	if err := s.JournalDegraded(); err != nil {
		b.Degraded = "journal read-only: " + err.Error()
	}
	switch {
	case s.Draining():
		b.Ready, b.Reason = false, "draining"
	case b.QueuedJobs >= b.QueueCapacity:
		b.Ready, b.Reason = false, "queue saturated"
	}
	code := http.StatusOK
	if !b.Ready {
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	}
	writeJSON(w, code, b)
}
