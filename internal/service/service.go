// Package service turns the router library into a servable system: an HTTP
// JSON API over a bounded job queue and a worker pool. Each worker owns one
// long-lived router.Context, so the pooled SSSP scratch of PR 1 is reused
// across jobs instead of per call; each job carries its own
// context.Context, so cancellation (explicit, deadline, or shutdown) aborts
// a run cooperatively at the router's pass/net boundaries.
//
// Lifecycle: Submit admits a job (rejecting when the queue is full or the
// service is draining), workers pull jobs in FIFO order, and Shutdown stops
// admissions, drains queued and running jobs, and — once the caller's grace
// context expires — cancels whatever is still in flight.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fpgarouter/internal/router"
	"fpgarouter/internal/stats"
)

// Config sizes the service. The zero value is completed with defaults.
type Config struct {
	// Workers is the worker-pool size (default: GOMAXPROCS, capped at 4 —
	// each worker's MinWidth search is itself parallel).
	Workers int
	// QueueDepth bounds the number of jobs waiting for a worker; beyond it
	// submissions are rejected with ErrQueueFull (default 64).
	QueueDepth int
	// Stats receives router work counters from every worker (default: a
	// fresh collector, exposed at /metrics).
	Stats *stats.Collector
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = min(runtime.GOMAXPROCS(0), 4)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Stats == nil {
		c.Stats = stats.New()
	}
	return c
}

// Submission failure modes, distinguished so the HTTP layer can map them to
// 503 (retryable) versus 400 (bad request).
var (
	ErrQueueFull = errors.New("service: job queue full")
	ErrDraining  = errors.New("service: shutting down, not accepting jobs")
)

// Service is a running routing service: worker pool, bounded queue, and
// job registry. Create with New, serve via Handler, stop with Shutdown.
type Service struct {
	cfg   Config
	stats *stats.Collector

	base       context.Context // parent of every job context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // job IDs in submission order
	seq      int64
	draining bool
	queue    chan *Job

	wg      sync.WaitGroup
	running atomic.Int64

	submitted atomic.Int64
	rejected  atomic.Int64
	completed [3]atomic.Int64 // done, failed, canceled
}

// indices into Service.completed.
const (
	cDone = iota
	cFailed
	cCanceled
)

// New starts a service: the queue is allocated and the workers spawn
// immediately, each owning a long-lived router.Context bound to the shared
// stats collector.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	base, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:        cfg,
		stats:      cfg.Stats,
		base:       base,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
		queue:      make(chan *Job, cfg.QueueDepth),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Stats returns the collector shared by all workers.
func (s *Service) Stats() *stats.Collector { return s.stats }

// Submit validates and admits a routing job, returning its queued status.
// It fails with ErrDraining after Shutdown began, ErrQueueFull when the
// bounded queue has no room, and a validation error for bad requests.
func (s *Service) Submit(req *SubmitRequest) (Status, error) {
	job, err := resolveJob(req)
	if err != nil {
		return Status{}, err
	}
	job.ctx, job.cancel = context.WithCancel(s.base)
	job.submitted = time.Now()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.rejected.Add(1)
		return Status{}, ErrDraining
	}
	s.seq++
	job.id = fmt.Sprintf("job-%06d", s.seq)
	select {
	case s.queue <- job:
	default:
		s.seq--
		s.rejected.Add(1)
		return Status{}, ErrQueueFull
	}
	s.jobs[job.id] = job
	s.order = append(s.order, job.id)
	s.submitted.Add(1)
	return job.Status(), nil
}

// Job looks up a job by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every job's status in submission order.
func (s *Service) Jobs() []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].Status())
	}
	return out
}

// Cancel cancels a job by ID, reporting whether it exists.
func (s *Service) Cancel(id string) (Status, bool) {
	j, ok := s.Job(id)
	if !ok {
		return Status{}, false
	}
	j.Cancel()
	return j.Status(), true
}

// Draining reports whether Shutdown has begun.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown stops admissions and waits for queued and running jobs to
// finish. When ctx expires first (the grace period), every outstanding job
// is canceled cooperatively and Shutdown still waits for the workers to
// acknowledge before returning ctx's error. It is safe to call once.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("service: Shutdown called twice")
	}
	s.draining = true
	close(s.queue) // safe: sends happen under mu with draining=false
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		s.baseCancel() // grace expired: cancel in-flight and queued jobs
		<-drained
		return ctx.Err()
	}
}

// worker is one pool goroutine: it owns a router.Context for its lifetime
// (pooled scratch reused across jobs) and executes queued jobs until the
// queue closes.
func (s *Service) worker() {
	defer s.wg.Done()
	rc := router.NewContext(s.stats)
	defer rc.Close()
	for job := range s.queue {
		s.run(rc, job)
	}
}

// run executes one job on the worker's routing context.
func (s *Service) run(rc *router.Context, job *Job) {
	if !job.begin() {
		// Canceled while queued (explicitly or by shutdown's grace expiry).
		s.completed[cCanceled].Add(1)
		return
	}
	s.running.Add(1)
	defer s.running.Add(-1)
	cc := job.ctx
	if job.timeout > 0 {
		var cancel context.CancelFunc
		cc, cancel = context.WithTimeout(cc, job.timeout)
		defer cancel()
	}
	var (
		res   *router.Result
		width int
		err   error
	)
	switch job.mode {
	case ModeRoute:
		res, err = router.RouteContext(cc, rc, job.ckt, job.width, job.opts)
		if res != nil {
			width = res.Width
		}
	case ModeMinWidth:
		width, res, err = router.MinWidthContext(cc, rc, job.ckt, job.width, job.opts)
	}
	switch job.finish(width, res, err) {
	case StateDone:
		s.completed[cDone].Add(1)
	case StateFailed:
		s.completed[cFailed].Add(1)
	default:
		s.completed[cCanceled].Add(1)
	}
}
