// Package service turns the router library into a servable system: an HTTP
// JSON API over a bounded job queue and a worker pool. Each worker owns one
// long-lived router.Context, so the pooled SSSP scratch of PR 1 is reused
// across jobs instead of per call; each job carries its own
// context.Context, so cancellation (explicit, deadline, or shutdown) aborts
// a run cooperatively at the router's pass/net boundaries.
//
// Lifecycle: Submit admits a job (rejecting when the queue is full or the
// service is draining), workers pull jobs in FIFO order, and Shutdown stops
// admissions, drains queued and running jobs, and — once the caller's grace
// context expires — cancels whatever is still in flight.
package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"fpgarouter/internal/faultpoint"
	"fpgarouter/internal/router"
	"fpgarouter/internal/stats"
)

// Config sizes the service. The zero value is completed with defaults.
type Config struct {
	// Workers is the worker-pool size (default: GOMAXPROCS, capped at 4 —
	// each worker's MinWidth search is itself parallel).
	Workers int
	// QueueDepth bounds the number of jobs waiting for a worker; beyond it
	// submissions are rejected with ErrQueueFull (default 64).
	QueueDepth int
	// Stats receives router work counters from every worker (default: a
	// fresh collector, exposed at /metrics).
	Stats *stats.Collector
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = min(runtime.GOMAXPROCS(0), 4)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Stats == nil {
		c.Stats = stats.New()
	}
	return c
}

// Submission failure modes, tagged transient in the error taxonomy (see
// errors.go) so the HTTP layer maps them to 503 with a Retry-After.
var (
	ErrQueueFull = Classify(ErrTransient, errors.New("service: job queue full"))
	ErrDraining  = Classify(ErrTransient, errors.New("service: shutting down, not accepting jobs"))
)

// Service is a running routing service: worker pool, bounded queue, and
// job registry. Create with New, serve via Handler, stop with Shutdown.
type Service struct {
	cfg   Config
	stats *stats.Collector

	base       context.Context // parent of every job context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // job IDs in submission order
	seq      int64
	draining bool
	queue    chan *Job

	wg      sync.WaitGroup
	running atomic.Int64

	submitted atomic.Int64
	rejected  atomic.Int64
	completed [3]atomic.Int64 // done, failed, canceled

	// durMu guards the ring of recent job wall times feeding the computed
	// Retry-After of saturation 503s.
	durMu    sync.Mutex
	durRing  [jobDurationWindow]time.Duration
	durCount int
}

// jobDurationWindow sizes the recent-job-duration ring: enough samples to
// smooth one noisy job, few enough to track load shifts quickly.
const jobDurationWindow = 16

// indices into Service.completed.
const (
	cDone = iota
	cFailed
	cCanceled
)

// New starts a service: the queue is allocated and the workers spawn
// immediately, each owning a long-lived router.Context bound to the shared
// stats collector.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	base, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:        cfg,
		stats:      cfg.Stats,
		base:       base,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
		queue:      make(chan *Job, cfg.QueueDepth),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Stats returns the collector shared by all workers.
func (s *Service) Stats() *stats.Collector { return s.stats }

// Submit validates and admits a routing job, returning its queued status.
// It fails with ErrDraining after Shutdown began, ErrQueueFull when the
// bounded queue has no room, and an ErrBadRequest-classified validation
// error for malformed requests.
func (s *Service) Submit(req *SubmitRequest) (Status, error) {
	job, err := resolveJob(req)
	if err != nil {
		return Status{}, Classify(ErrBadRequest, err)
	}
	job.ctx, job.cancel = context.WithCancel(s.base)
	job.submitted = time.Now()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.rejected.Add(1)
		return Status{}, ErrDraining
	}
	s.seq++
	job.id = fmt.Sprintf("job-%06d", s.seq)
	select {
	case s.queue <- job:
	default:
		s.seq--
		s.rejected.Add(1)
		return Status{}, ErrQueueFull
	}
	s.jobs[job.id] = job
	s.order = append(s.order, job.id)
	s.submitted.Add(1)
	return job.Status(), nil
}

// Job looks up a job by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every job's status in submission order.
func (s *Service) Jobs() []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].Status())
	}
	return out
}

// Cancel cancels a job by ID, reporting whether it exists.
func (s *Service) Cancel(id string) (Status, bool) {
	j, ok := s.Job(id)
	if !ok {
		return Status{}, false
	}
	j.Cancel()
	return j.Status(), true
}

// Draining reports whether Shutdown has begun.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown stops admissions and waits for queued and running jobs to
// finish. When ctx expires first (the grace period), every outstanding job
// is canceled cooperatively and Shutdown still waits for the workers to
// acknowledge before returning ctx's error. It is safe to call once.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("service: Shutdown called twice")
	}
	s.draining = true
	close(s.queue) // safe: sends happen under mu with draining=false
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		s.baseCancel() // grace expired: cancel in-flight and queued jobs
		<-drained
		return ctx.Err()
	}
}

// worker is one pool goroutine: it owns a router.Context across jobs
// (pooled scratch reused job to job) and executes queued jobs until the
// queue closes. run returns a replacement context when a job's panic
// poisoned the old one, so the closure-captured rc is always live.
func (s *Service) worker() {
	defer s.wg.Done()
	rc := router.NewContext(s.stats)
	defer func() { rc.Close() }()
	for job := range s.queue {
		rc = s.run(rc, job)
	}
}

// run executes one job on the worker's routing context, retrying transient
// failures (recovered panics, injected transient faults) with exponential
// backoff + jitter up to the job's retry budget. It returns the routing
// context the worker should keep: the one passed in, or a fresh one if a
// panic forced a discard.
func (s *Service) run(rc *router.Context, job *Job) *router.Context {
	if !job.begin() {
		// Canceled while queued (explicitly or by shutdown's grace expiry).
		s.completed[cCanceled].Add(1)
		return rc
	}
	s.running.Add(1)
	defer s.running.Add(-1)
	start := time.Now()
	cc := job.ctx
	if job.timeout > 0 {
		var cancel context.CancelFunc
		cc, cancel = context.WithTimeout(cc, job.timeout)
		defer cancel()
	}
	var (
		res      *router.Result
		width    int
		err      error
		attempts int
	)
	for attempt := 0; ; attempt++ {
		attempts = attempt + 1
		var panicked bool
		width, res, err, panicked = s.attempt(rc, cc, job)
		if panicked {
			// The panic may have interrupted pooled-scratch bookkeeping
			// mid-flight: discard the context wholesale and rebuild, so the
			// process-wide pool never sees a possibly-inconsistent entry.
			s.stats.AddJobPanic()
			rc.Discard()
			rc = router.NewContext(s.stats)
		}
		if err == nil || attempt >= job.retries || !errors.Is(err, ErrTransient) {
			break
		}
		s.stats.AddJobRetry()
		if !sleepBackoff(cc, job.backoff, attempt) {
			// Canceled while backing off: surface the cancellation, keeping
			// the transient error as context.
			err = fmt.Errorf("%w during retry backoff (last error: %w): %w",
				router.ErrCanceled, err, context.Cause(cc))
			break
		}
	}
	if err != nil && res != nil {
		s.stats.AddPartialResult()
	}
	s.observeJobDuration(time.Since(start))
	switch job.finish(width, res, err, attempts) {
	case StateDone:
		s.completed[cDone].Add(1)
	case StateFailed:
		s.completed[cFailed].Add(1)
	default:
		s.completed[cCanceled].Add(1)
	}
	return rc
}

// attempt executes one try of the job under panic isolation: a panic on the
// worker (or funneled up from a scan/probe goroutine, see
// faultpoint.GoroutinePanic) is converted into a transient PanicError
// instead of unwinding past the job and killing the daemon.
func (s *Service) attempt(rc *router.Context, cc context.Context, job *Job) (width int, res *router.Result, err error, panicked bool) {
	defer func() {
		if p := recover(); p != nil {
			panicked = true
			width, res = 0, nil
			if gp, ok := p.(*faultpoint.GoroutinePanic); ok {
				err = &PanicError{Value: gp.Value, Stack: gp.Stack}
			} else {
				err = &PanicError{Value: p, Stack: debug.Stack()}
			}
		}
	}()
	faultpoint.Check(faultpoint.ServiceWorker)
	switch job.mode {
	case ModeRoute:
		res, err = router.RouteContext(cc, rc, job.ckt, job.width, job.opts)
		if res != nil {
			width = res.Width
		}
	case ModeMinWidth:
		width, res, _, err = router.MinWidthContext(cc, rc, job.ckt, job.width, job.opts)
	}
	return width, res, err, false
}

// sleepBackoff blocks for the attempt's backoff delay — base doubled per
// attempt, capped, plus up to 50% random jitter to decorrelate retry storms
// — and reports false if cc was canceled first.
func sleepBackoff(cc context.Context, base time.Duration, attempt int) bool {
	if base <= 0 {
		return cc.Err() == nil
	}
	d := base << min(attempt, 10)
	const maxDelay = 30 * time.Second
	if d > maxDelay {
		d = maxDelay
	}
	d += time.Duration(rand.Int64N(int64(d)/2 + 1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-cc.Done():
		return false
	case <-t.C:
		return true
	}
}

// observeJobDuration feeds one finished job's wall time into the ring
// behind the computed Retry-After.
func (s *Service) observeJobDuration(d time.Duration) {
	s.durMu.Lock()
	s.durRing[s.durCount%jobDurationWindow] = d
	s.durCount++
	s.durMu.Unlock()
}

// meanJobDuration averages the recent-job ring (zero with no samples yet).
func (s *Service) meanJobDuration() time.Duration {
	s.durMu.Lock()
	defer s.durMu.Unlock()
	n := min(s.durCount, jobDurationWindow)
	if n == 0 {
		return 0
	}
	var sum time.Duration
	for i := 0; i < n; i++ {
		sum += s.durRing[i]
	}
	return sum / time.Duration(n)
}

// retryAfterFor estimates, in whole seconds, how long a rejected client
// should wait before resubmitting: the queue's expected drain time (queued
// jobs × mean job time ÷ workers), clamped to [1s, 60s]. A pure function of
// its inputs so the estimate is unit-testable without a live queue.
func retryAfterFor(queued int, mean time.Duration, workers int) int {
	if queued < 0 {
		queued = 0
	}
	if workers < 1 {
		workers = 1
	}
	if mean <= 0 {
		return 1
	}
	drain := time.Duration(queued) * mean / time.Duration(workers)
	secs := int((drain + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// retryAfterSeconds is retryAfterFor over the live queue state.
func (s *Service) retryAfterSeconds() int {
	return retryAfterFor(len(s.queue), s.meanJobDuration(), s.cfg.Workers)
}
