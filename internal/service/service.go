// Package service turns the router library into a servable system: an HTTP
// JSON API over a bounded job queue and a worker pool. Each worker owns one
// long-lived router.Context, so the pooled SSSP scratch of PR 1 is reused
// across jobs instead of per call; each job carries its own
// context.Context, so cancellation (explicit, deadline, or shutdown) aborts
// a run cooperatively at the router's pass/net boundaries.
//
// Lifecycle: Submit admits a job (rejecting when the queue is full or the
// service is draining), workers pull jobs in FIFO order, and Shutdown stops
// admissions, drains queued and running jobs, and — once the caller's grace
// context expires — cancels whatever is still in flight.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fpgarouter/internal/faultpoint"
	"fpgarouter/internal/journal"
	"fpgarouter/internal/pathfinder"
	"fpgarouter/internal/router"
	"fpgarouter/internal/stats"
)

// Config sizes the service. The zero value is completed with defaults.
type Config struct {
	// Workers is the worker-pool size (default: GOMAXPROCS, capped at 4 —
	// each worker's MinWidth search is itself parallel).
	Workers int
	// QueueDepth bounds the number of jobs waiting for a worker; beyond it
	// submissions are rejected with ErrQueueFull (default 64).
	QueueDepth int
	// Stats receives router work counters from every worker (default: a
	// fresh collector, exposed at /metrics).
	Stats *stats.Collector
	// Journal, when non-nil, receives every job lifecycle event as a
	// write-ahead record; Results, when non-nil, is the content-addressed
	// store holding completed results (the cache behind idempotent
	// resubmission) and pathfinder checkpoints. Leave both nil for a purely
	// in-memory service — every durability site is nil-guarded. Recover
	// (and the OpenDurable convenience) wires both from a directory.
	Journal *journal.Journal
	Results *journal.Store
	// CheckpointEvery / CheckpointPeriod set the pathfinder checkpoint
	// cadence for durable parallel-mode routes (both 0 = no checkpoints;
	// see pathfinder.Config).
	CheckpointEvery  int
	CheckpointPeriod time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = min(runtime.GOMAXPROCS(0), 4)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Stats == nil {
		c.Stats = stats.New()
	}
	return c
}

// Submission failure modes, tagged transient in the error taxonomy (see
// errors.go) so the HTTP layer maps them to 503 with a Retry-After.
var (
	ErrQueueFull = Classify(ErrTransient, errors.New("service: job queue full"))
	ErrDraining  = Classify(ErrTransient, errors.New("service: shutting down, not accepting jobs"))
)

// Service is a running routing service: worker pool, bounded queue, and
// job registry. Create with New, serve via Handler, stop with Shutdown.
type Service struct {
	cfg   Config
	stats *stats.Collector

	base       context.Context // parent of every job context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // job IDs in submission order
	seq      int64
	draining bool
	queue    chan *Job

	wg      sync.WaitGroup
	running atomic.Int64

	submitted atomic.Int64
	rejected  atomic.Int64
	completed [3]atomic.Int64 // done, failed, canceled

	// durMu guards the ring of recent job wall times feeding the computed
	// Retry-After of saturation 503s.
	durMu    sync.Mutex
	durRing  [jobDurationWindow]time.Duration
	durCount int
}

// jobDurationWindow sizes the recent-job-duration ring: enough samples to
// smooth one noisy job, few enough to track load shifts quickly.
const jobDurationWindow = 16

// indices into Service.completed.
const (
	cDone = iota
	cFailed
	cCanceled
)

// New starts a service: the queue is allocated and the workers spawn
// immediately, each owning a long-lived router.Context bound to the shared
// stats collector. For a durable service that first replays its journal,
// use Recover (or OpenDurable) instead.
func New(cfg Config) *Service {
	s := newService(cfg, 0)
	s.startWorkers()
	return s
}

// newService builds the service without spawning workers, so Recover can
// enqueue replayed jobs first. extraQueue widens the channel beyond
// QueueDepth to hold recovered jobs without eating admission capacity.
func newService(cfg Config, extraQueue int) *Service {
	cfg = cfg.withDefaults()
	base, cancel := context.WithCancel(context.Background())
	return &Service{
		cfg:        cfg,
		stats:      cfg.Stats,
		base:       base,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
		queue:      make(chan *Job, cfg.QueueDepth+extraQueue),
	}
}

func (s *Service) startWorkers() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// journalAppend writes one lifecycle record to the journal, if any. Append
// failures degrade durability, never availability: the error is counted and
// the service keeps running in-memory (/readyz reports the degradation).
func (s *Service) journalAppend(rec journal.Record) {
	if s.cfg.Journal == nil {
		return
	}
	rec.Time = time.Now().UTC()
	if err := s.cfg.Journal.Append(rec); err != nil {
		s.stats.AddJournalError()
	}
}

// JournalDegraded returns the sticky append failure that flipped the
// journal read-only (nil while healthy or with no journal).
func (s *Service) JournalDegraded() error {
	if s.cfg.Journal == nil {
		return nil
	}
	return s.cfg.Journal.DegradedCause()
}

// contentKey computes the job's result-store address: the hash of
// everything that determines the answer — mode, the resolved circuit
// (synthesis seed folded in), the width, and the routing options. Timeout
// and retry policy are deliberately excluded.
func contentKey(job *Job) (string, error) {
	cktJSON, err := json.Marshal(job.ckt)
	if err != nil {
		return "", err
	}
	optsJSON, err := json.Marshal(job.opts)
	if err != nil {
		return "", err
	}
	return journal.Key([]byte(job.mode), cktJSON, []byte(strconv.Itoa(job.width)), optsJSON), nil
}

// storedResult is the result-store blob of a completed job.
type storedResult struct {
	Width  int            `json:"width"`
	Result *router.Result `json:"result"`
}

// Stats returns the collector shared by all workers.
func (s *Service) Stats() *stats.Collector { return s.stats }

// Submit validates and admits a routing job, returning its queued status.
// It fails with ErrDraining after Shutdown began, ErrQueueFull when the
// bounded queue has no room, and an ErrBadRequest-classified validation
// error for malformed requests.
//
// With a result store configured, submission is idempotent on content: a
// request whose (mode, circuit, width, options) was already completed is
// answered from the store — the returned status is already done, with
// CacheHit set — without consuming a queue slot.
func (s *Service) Submit(req *SubmitRequest) (Status, error) {
	job, err := resolveJob(req)
	if err != nil {
		return Status{}, Classify(ErrBadRequest, err)
	}
	job.ctx, job.cancel = context.WithCancel(s.base)
	job.submitted = time.Now()
	var reqRaw json.RawMessage
	if s.cfg.Journal != nil || s.cfg.Results != nil {
		if job.key, err = contentKey(job); err != nil {
			return Status{}, Classify(ErrBadRequest, err)
		}
		// Re-marshal the decoded request (not the caller's raw bytes) so the
		// journaled form round-trips through the same struct on replay.
		if reqRaw, err = json.Marshal(req); err != nil {
			return Status{}, Classify(ErrBadRequest, err)
		}
	}
	cached, haveCached := s.lookupResult(job.key)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.rejected.Add(1)
		return Status{}, ErrDraining
	}
	s.seq++
	job.id = fmt.Sprintf("job-%06d", s.seq)
	if haveCached {
		job.state = StateDone
		job.cacheHit = true
		job.complete = true
		job.outWidth = cached.Width
		job.result = cached.Result
		job.started = job.submitted
		job.finished = time.Now()
	} else {
		select {
		case s.queue <- job:
		default:
			s.seq--
			s.rejected.Add(1)
			return Status{}, ErrQueueFull
		}
	}
	s.jobs[job.id] = job
	s.order = append(s.order, job.id)
	s.submitted.Add(1)
	s.journalAppend(journal.Record{Event: journal.EvSubmitted, JobID: job.id, Key: job.key, Request: reqRaw})
	if haveCached {
		s.completed[cDone].Add(1)
		s.journalAppend(journal.Record{Event: journal.EvDone, JobID: job.id, Key: job.key, Width: job.outWidth})
	}
	return job.Status(), nil
}

// lookupResult consults the result store for a completed answer under key
// (a miss, a read error, or no store all report false).
func (s *Service) lookupResult(key string) (storedResult, bool) {
	var stored storedResult
	if s.cfg.Results == nil || key == "" {
		return stored, false
	}
	ok, err := s.cfg.Results.Get(key, &stored)
	return stored, ok && err == nil && stored.Result != nil
}

// Job looks up a job by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every job's status in submission order.
func (s *Service) Jobs() []Status {
	return s.JobsFiltered("", 0)
}

// JobsFiltered returns job statuses in submission order, optionally
// restricted to one lifecycle state, and optionally truncated to the
// newest limit entries (limit 0 = unbounded).
func (s *Service) JobsFiltered(state State, limit int) []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		st := s.jobs[id].Status()
		if state != "" && st.State != state {
			continue
		}
		out = append(out, st)
	}
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// Cancel cancels a job by ID, reporting whether it exists.
func (s *Service) Cancel(id string) (Status, bool) {
	j, ok := s.Job(id)
	if !ok {
		return Status{}, false
	}
	if j.Cancel() {
		// Canceled while still queued: no worker will run finish for it, so
		// the terminal record is journaled here.
		s.journalAppend(journal.Record{Event: journal.EvCanceled, JobID: id, Error: "canceled before execution"})
	}
	return j.Status(), true
}

// Draining reports whether Shutdown has begun.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown stops admissions and waits for queued and running jobs to
// finish. When ctx expires first (the grace period), every outstanding job
// is canceled cooperatively and Shutdown still waits for the workers to
// acknowledge before returning ctx's error. It is safe to call once.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("service: Shutdown called twice")
	}
	s.draining = true
	close(s.queue) // safe: sends happen under mu with draining=false
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		s.baseCancel() // grace expired: cancel in-flight and queued jobs
		<-drained
		return ctx.Err()
	}
}

// worker is one pool goroutine: it owns a router.Context across jobs
// (pooled scratch reused job to job) and executes queued jobs until the
// queue closes. run returns a replacement context when a job's panic
// poisoned the old one, so the closure-captured rc is always live.
func (s *Service) worker() {
	defer s.wg.Done()
	rc := router.NewContext(s.stats)
	defer func() { rc.Close() }()
	for job := range s.queue {
		rc = s.run(rc, job)
	}
}

// run executes one job on the worker's routing context, retrying transient
// failures (recovered panics, injected transient faults) with exponential
// backoff + jitter up to the job's retry budget. It returns the routing
// context the worker should keep: the one passed in, or a fresh one if a
// panic forced a discard.
func (s *Service) run(rc *router.Context, job *Job) *router.Context {
	if !job.begin() {
		// Canceled while queued; Service.Cancel journaled the terminal event.
		s.completed[cCanceled].Add(1)
		return rc
	}
	s.journalAppend(journal.Record{Event: journal.EvStarted, JobID: job.id})
	s.running.Add(1)
	defer s.running.Add(-1)
	start := time.Now()
	cc := job.ctx
	if job.timeout > 0 {
		var cancel context.CancelFunc
		cc, cancel = context.WithTimeout(cc, job.timeout)
		defer cancel()
	}
	var (
		res      *router.Result
		width    int
		err      error
		attempts int
	)
	for attempt := 0; ; attempt++ {
		attempts = attempt + 1
		var panicked bool
		width, res, err, panicked = s.attempt(rc, cc, job)
		if panicked {
			// The panic may have interrupted pooled-scratch bookkeeping
			// mid-flight: discard the context wholesale and rebuild, so the
			// process-wide pool never sees a possibly-inconsistent entry.
			s.stats.AddJobPanic()
			rc.Discard()
			rc = router.NewContext(s.stats)
		}
		if err == nil || attempt >= job.retries || !errors.Is(err, ErrTransient) {
			break
		}
		s.stats.AddJobRetry()
		if !sleepBackoff(cc, job.backoff, attempt) {
			// Canceled while backing off: surface the cancellation, keeping
			// the transient error as context.
			err = fmt.Errorf("%w during retry backoff (last error: %w): %w",
				router.ErrCanceled, err, context.Cause(cc))
			break
		}
	}
	if err != nil && res != nil {
		s.stats.AddPartialResult()
	}
	s.observeJobDuration(time.Since(start))
	switch job.finish(width, res, err, attempts) {
	case StateDone:
		s.completed[cDone].Add(1)
		// Persist the result BEFORE journaling done: a crash between the two
		// replays the job as interrupted and re-runs it — never as done with
		// a missing result.
		if s.cfg.Results != nil && job.key != "" {
			if perr := s.cfg.Results.Put(job.key, storedResult{Width: width, Result: res}); perr != nil {
				s.stats.AddJournalError()
			}
		}
		s.journalAppend(journal.Record{Event: journal.EvDone, JobID: job.id, Key: job.key, Width: width, Attempts: attempts})
	case StateFailed:
		s.completed[cFailed].Add(1)
		s.journalAppend(journal.Record{Event: journal.EvFailed, JobID: job.id, Attempts: attempts, Error: err.Error()})
	default:
		s.completed[cCanceled].Add(1)
		s.journalAppend(journal.Record{Event: journal.EvCanceled, JobID: job.id, Attempts: attempts, Error: err.Error()})
	}
	if s.cfg.Results != nil {
		// Terminal either way: the resume checkpoint has served its purpose.
		s.cfg.Results.Delete(checkpointKey(job.id))
	}
	return rc
}

// checkpointKey is the result-store key filing a job's latest pathfinder
// checkpoint.
func checkpointKey(jobID string) string { return "ckpt-" + jobID }

// durableFor returns the checkpoint/resume wiring for one attempt of job,
// or nil when the job cannot checkpoint: only parallel-mode routes have
// serializable engine state (sequential and minwidth runs are cheap to
// restart from scratch, so recovery just re-runs them).
func (s *Service) durableFor(job *Job) *router.DurableConfig {
	if s.cfg.Results == nil || job.mode != ModeRoute || !job.opts.Parallel {
		return nil
	}
	if s.cfg.CheckpointEvery <= 0 && s.cfg.CheckpointPeriod <= 0 && job.resume == nil {
		return nil
	}
	return &router.DurableConfig{
		CheckpointEvery:  s.cfg.CheckpointEvery,
		CheckpointPeriod: s.cfg.CheckpointPeriod,
		CheckpointFn:     func(ck *pathfinder.Checkpoint) { s.persistCheckpoint(job, ck) },
		Resume:           job.resume,
	}
}

// persistCheckpoint files one pathfinder snapshot under the job's
// checkpoint key and journals the iteration it covers. Persistence errors
// degrade durability only — the route keeps running.
func (s *Service) persistCheckpoint(job *Job, ck *pathfinder.Checkpoint) {
	if err := s.cfg.Results.Put(checkpointKey(job.id), ck); err != nil {
		s.stats.AddJournalError()
		return
	}
	s.stats.AddCheckpointWritten()
	job.noteCheckpoint()
	s.journalAppend(journal.Record{Event: journal.EvCheckpointed, JobID: job.id, Iteration: ck.Iteration})
}

// attempt executes one try of the job under panic isolation: a panic on the
// worker (or funneled up from a scan/probe goroutine, see
// faultpoint.GoroutinePanic) is converted into a transient PanicError
// instead of unwinding past the job and killing the daemon.
func (s *Service) attempt(rc *router.Context, cc context.Context, job *Job) (width int, res *router.Result, err error, panicked bool) {
	defer func() {
		if p := recover(); p != nil {
			panicked = true
			width, res = 0, nil
			if gp, ok := p.(*faultpoint.GoroutinePanic); ok {
				err = &PanicError{Value: gp.Value, Stack: gp.Stack}
			} else {
				err = &PanicError{Value: p, Stack: debug.Stack()}
			}
		}
	}()
	faultpoint.Check(faultpoint.ServiceWorker)
	if dc := s.durableFor(job); dc != nil {
		restore := rc.BindDurable(dc)
		defer restore()
	}
	switch job.mode {
	case ModeRoute:
		res, err = router.RouteContext(cc, rc, job.ckt, job.width, job.opts)
		if res != nil {
			width = res.Width
		}
	case ModeMinWidth:
		width, res, _, err = router.MinWidthContext(cc, rc, job.ckt, job.width, job.opts)
	}
	return width, res, err, false
}

// sleepBackoff blocks for the attempt's backoff delay — base doubled per
// attempt, capped, plus up to 50% random jitter to decorrelate retry storms
// — and reports false if cc was canceled first.
func sleepBackoff(cc context.Context, base time.Duration, attempt int) bool {
	if base <= 0 {
		return cc.Err() == nil
	}
	d := base << min(attempt, 10)
	const maxDelay = 30 * time.Second
	if d > maxDelay {
		d = maxDelay
	}
	d += time.Duration(rand.Int64N(int64(d)/2 + 1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-cc.Done():
		return false
	case <-t.C:
		return true
	}
}

// observeJobDuration feeds one finished job's wall time into the ring
// behind the computed Retry-After.
func (s *Service) observeJobDuration(d time.Duration) {
	s.durMu.Lock()
	s.durRing[s.durCount%jobDurationWindow] = d
	s.durCount++
	s.durMu.Unlock()
}

// meanJobDuration averages the recent-job ring (zero with no samples yet).
func (s *Service) meanJobDuration() time.Duration {
	s.durMu.Lock()
	defer s.durMu.Unlock()
	n := min(s.durCount, jobDurationWindow)
	if n == 0 {
		return 0
	}
	var sum time.Duration
	for i := 0; i < n; i++ {
		sum += s.durRing[i]
	}
	return sum / time.Duration(n)
}

// retryAfterFor estimates, in whole seconds, how long a rejected client
// should wait before resubmitting: the queue's expected drain time (queued
// jobs × mean job time ÷ workers), clamped to [1s, 60s]. A pure function of
// its inputs so the estimate is unit-testable without a live queue.
func retryAfterFor(queued int, mean time.Duration, workers int) int {
	if queued < 0 {
		queued = 0
	}
	if workers < 1 {
		workers = 1
	}
	if mean <= 0 {
		return 1
	}
	drain := time.Duration(queued) * mean / time.Duration(workers)
	secs := int((drain + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// retryAfterSeconds is retryAfterFor over the live queue state.
func (s *Service) retryAfterSeconds() int {
	return retryAfterFor(len(s.queue), s.meanJobDuration(), s.cfg.Workers)
}
