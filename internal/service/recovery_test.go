package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"fpgarouter/internal/circuits"
	"fpgarouter/internal/faultpoint"
	"fpgarouter/internal/journal"
	"fpgarouter/internal/router"
)

// durableHarness opens a durable service over dir and serves it via
// httptest. Shutdown (but not journal close — restarts reopen it) rides
// the test cleanup.
func durableHarness(t *testing.T, dir string, cfg Config) (*Service, RecoveryReport, *httptest.Server) {
	t.Helper()
	svc, report, err := OpenDurable(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		if !svc.Draining() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			svc.Shutdown(ctx)
		}
		svc.cfg.Journal.Close()
	})
	return svc, report, ts
}

// routeTerm1 is the small fast fixture request used across this file.
var routeTerm1 = SubmitRequest{
	Mode: ModeRoute, Circuit: "term1", Seed: 1, Width: 10,
	Options: router.Options{Parallel: true},
}

// TestDurableRestartServesCompletedResults: a job completed before a
// restart is fully servable after it — status, result bytes, and the
// replay counters all reconstructed from the journal and store.
func TestDurableRestartServesCompletedResults(t *testing.T) {
	dir := t.TempDir()

	svc1, report1, ts1 := durableHarness(t, dir, Config{Workers: 1, QueueDepth: 4})
	if report1.ReplayedRecords != 0 {
		t.Fatalf("fresh dir replayed %d records", report1.ReplayedRecords)
	}
	var st Status
	if code, body := postJSON(t, ts1.URL+"/jobs", routeTerm1, &st); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", code, body)
	}
	final := pollUntilTerminal(t, ts1.URL, st.ID, 2*time.Minute)
	if final.State != StateDone {
		t.Fatalf("job ended %s (%s)", final.State, final.Error)
	}
	var rr1 ResultResponse
	if code := getJSON(t, ts1.URL+"/jobs/"+st.ID+"/result", &rr1); code != http.StatusOK {
		t.Fatalf("result: HTTP %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	svc1.Shutdown(ctx)
	ts1.Close()
	svc1.cfg.Journal.Close()

	_, report2, ts2 := durableHarness(t, dir, Config{Workers: 1, QueueDepth: 4})
	if report2.Completed != 1 || report2.Requeued != 0 {
		t.Fatalf("restart replay: %+v, want 1 completed, 0 requeued", report2)
	}
	var st2 Status
	if code := getJSON(t, ts2.URL+"/jobs/"+st.ID, &st2); code != http.StatusOK {
		t.Fatalf("recovered status: HTTP %d", code)
	}
	if st2.State != StateDone || !st2.Recovered || st2.Circuit != "term1" || st2.Width != rr1.Width {
		t.Fatalf("recovered status %+v", st2)
	}
	var rr2 ResultResponse
	if code := getJSON(t, ts2.URL+"/jobs/"+st.ID+"/result", &rr2); code != http.StatusOK {
		t.Fatalf("recovered result: HTTP %d", code)
	}
	b1, _ := json.Marshal(rr1.Result)
	b2, _ := json.Marshal(rr2.Result)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("recovered result differs from the original:\n%.200s\nvs\n%.200s", b2, b1)
	}
}

// TestIdempotentResubmission: with a result store, resubmitting identical
// (mode, circuit, width, options) is answered from the cache — done on
// arrival, no queue slot — while a different width routes for real.
func TestIdempotentResubmission(t *testing.T) {
	_, _, ts := durableHarness(t, t.TempDir(), Config{Workers: 1, QueueDepth: 4})

	var st Status
	if code, body := postJSON(t, ts.URL+"/jobs", routeTerm1, &st); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", code, body)
	}
	if pollUntilTerminal(t, ts.URL, st.ID, 2*time.Minute).State != StateDone {
		t.Fatal("first submission did not finish")
	}
	var rr1 ResultResponse
	getJSON(t, ts.URL+"/jobs/"+st.ID+"/result", &rr1)

	var dup Status
	if code, body := postJSON(t, ts.URL+"/jobs", routeTerm1, &dup); code != http.StatusAccepted {
		t.Fatalf("resubmit: HTTP %d: %s", code, body)
	}
	if dup.State != StateDone || !dup.CacheHit {
		t.Fatalf("duplicate submission = %+v, want done with cache_hit", dup)
	}
	if dup.ID == st.ID {
		t.Fatal("duplicate got the original job ID, want a fresh job served from cache")
	}
	var rr2 ResultResponse
	if code := getJSON(t, ts.URL+"/jobs/"+dup.ID+"/result", &rr2); code != http.StatusOK {
		t.Fatalf("cached result: HTTP %d", code)
	}
	b1, _ := json.Marshal(rr1.Result)
	b2, _ := json.Marshal(rr2.Result)
	if !bytes.Equal(b1, b2) {
		t.Fatal("cached result differs from the original")
	}

	// Different width ⇒ different content key ⇒ a real route, not a hit.
	other := routeTerm1
	other.Width = 11
	var st3 Status
	if code, body := postJSON(t, ts.URL+"/jobs", other, &st3); code != http.StatusAccepted {
		t.Fatalf("submit width 11: HTTP %d: %s", code, body)
	}
	if st3.CacheHit {
		t.Fatal("different width reported a cache hit")
	}
	pollUntilTerminal(t, ts.URL, st3.ID, 2*time.Minute)
}

// TestRecoveryRequeuesInterruptedJob: a journal holding submitted+started
// with no terminal record — a crash mid-route — re-enqueues the job on
// recovery, and the re-run's result is bit-identical to a direct route.
func TestRecoveryRequeuesInterruptedJob(t *testing.T) {
	dir := t.TempDir()
	// Fabricate the crash: journal a submission that never finished.
	j, _, err := journal.Open(dir+"/journal.wal", journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reqRaw, _ := json.Marshal(routeTerm1)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(j.Append(journal.Record{Event: journal.EvSubmitted, JobID: "job-000007", Time: time.Now().UTC(), Key: "k7", Request: reqRaw}))
	must(j.Append(journal.Record{Event: journal.EvStarted, JobID: "job-000007", Time: time.Now().UTC()}))
	must(j.Close())

	_, report, ts := durableHarness(t, dir, Config{Workers: 1, QueueDepth: 4})
	if report.Requeued != 1 || report.Completed != 0 {
		t.Fatalf("replay report %+v, want 1 requeued", report)
	}
	final := pollUntilTerminal(t, ts.URL, "job-000007", 2*time.Minute)
	if final.State != StateDone || !final.Recovered {
		t.Fatalf("recovered job ended %+v", final)
	}
	var rr ResultResponse
	if code := getJSON(t, ts.URL+"/jobs/job-000007/result", &rr); code != http.StatusOK {
		t.Fatalf("result: HTTP %d", code)
	}
	spec, _ := circuits.SpecByName("term1")
	ckt, err := circuits.Synthesize(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := router.Route(ckt, 10, router.Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(rr.Result)
	wantB, _ := json.Marshal(want)
	if !bytes.Equal(got, wantB) {
		t.Fatalf("re-run result differs from direct route:\n%.200s\nvs\n%.200s", got, wantB)
	}
	// New submissions must not collide with the recovered ID space.
	var st Status
	if code, body := postJSON(t, ts.URL+"/jobs", routeTerm1, &st); code != http.StatusAccepted {
		t.Fatalf("post-recovery submit: HTTP %d: %s", code, body)
	}
	if st.ID <= "job-000007" {
		t.Fatalf("post-recovery job ID %s did not advance past the recovered sequence", st.ID)
	}
}

// TestRecoveryUnresolvableRequestFailsVisibly: a journaled request that no
// longer resolves (unknown circuit) becomes a failed job with its history
// visible, never a silent drop.
func TestRecoveryUnresolvableRequestFailsVisibly(t *testing.T) {
	dir := t.TempDir()
	j, _, err := journal.Open(dir+"/journal.wal", journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reqRaw, _ := json.Marshal(SubmitRequest{Mode: ModeRoute, Circuit: "no-such-circuit", Width: 9})
	if err := j.Append(journal.Record{Event: journal.EvSubmitted, JobID: "job-000003", Time: time.Now().UTC(), Request: reqRaw}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, report, ts := durableHarness(t, dir, Config{Workers: 1, QueueDepth: 4})
	if len(report.Unrecoverable) != 1 || report.Requeued != 0 {
		t.Fatalf("replay report %+v, want 1 unrecoverable", report)
	}
	var st Status
	if code := getJSON(t, ts.URL+"/jobs/job-000003", &st); code != http.StatusOK {
		t.Fatalf("status: HTTP %d", code)
	}
	if st.State != StateFailed || st.Error == "" {
		t.Fatalf("unrecoverable job status %+v, want failed with an error", st)
	}
}

// TestFaultJournalDiskFullServiceContinues: an injected journal write
// failure mid-flight degrades durability only — jobs keep completing
// in-memory, and /readyz stays ready while reporting the degradation.
func TestFaultJournalDiskFullServiceContinues(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	svc, _, ts := durableHarness(t, t.TempDir(), Config{Workers: 1, QueueDepth: 4})

	faultpoint.Arm(faultpoint.JournalAppend, faultpoint.Plan{
		Action: faultpoint.Error, Err: errors.New("no space left on device"), Nth: 1,
	})
	var st Status
	if code, body := postJSON(t, ts.URL+"/jobs", SubmitRequest{
		Mode: ModeMinWidth, Circuit: "busc", Seed: 1, Options: minwidthOpts,
	}, &st); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", code, body)
	}
	if pollUntilTerminal(t, ts.URL, st.ID, 2*time.Minute).State != StateDone {
		t.Fatal("job did not complete after journal degradation")
	}
	if !svc.cfg.Journal.ReadOnly() {
		t.Fatal("journal not read-only after injected write failure")
	}
	var rb readyBody
	if code := getJSON(t, ts.URL+"/readyz", &rb); code != http.StatusOK {
		t.Fatalf("readyz: HTTP %d (degraded durability must not fail readiness)", code)
	}
	if !rb.Ready || rb.Degraded == "" {
		t.Fatalf("readyz body %+v, want ready with a degraded reason", rb)
	}
	if n := svc.Stats().Snapshot().JournalAppendErrors; n == 0 {
		t.Fatal("no journal append errors counted")
	}
}

// TestCanceledWhileQueuedSurvivesRestart: an explicit cancel of a queued
// job is a journaled terminal event — after a restart the job is still
// canceled, not re-run.
func TestCanceledWhileQueuedSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	svc1, _, err := OpenDurable(dir, Config{Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Stall the single worker so the next job stays queued.
	blocker := routeTerm1
	blocker.TimeoutMs = 5_000
	if _, err := svc1.Submit(&blocker); err != nil {
		t.Fatal(err)
	}
	st, err := svc1.Submit(&routeTerm1)
	if err != nil {
		t.Fatal(err)
	}
	if cst, ok := svc1.Cancel(st.ID); !ok || cst.State != StateCanceled {
		t.Fatalf("cancel: ok=%v state=%+v", ok, cst)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	svc1.Shutdown(ctx)
	svc1.cfg.Journal.Close()

	svc2, report, err := OpenDurable(dir, Config{Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		svc2.Shutdown(ctx)
		svc2.cfg.Journal.Close()
	}()
	j, ok := svc2.Job(st.ID)
	if !ok {
		t.Fatalf("canceled job %s lost across restart (report %+v)", st.ID, report)
	}
	if got := j.Status(); got.State != StateCanceled {
		t.Fatalf("canceled job replayed as %s", got.State)
	}
}
