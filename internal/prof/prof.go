// Package prof wires the -cpuprofile/-memprofile flags of the CLIs to
// runtime/pprof. It exists because both cmd/fpgaroute and cmd/tables exit
// through os.Exit on several paths, which skips deferred teardown: Start
// returns an idempotent stop function the commands call both deferred (for
// the normal return) and explicitly before every os.Exit.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Start begins CPU profiling to cpuPath and schedules a heap profile write
// to memPath; either path may be empty to skip that profile. The returned
// stop flushes and closes both profiles and may be called any number of
// times (only the first call acts). On error nothing is left running.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuF *os.File
	if cpuPath != "" {
		cpuF, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, err
		}
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			if cpuF != nil {
				pprof.StopCPUProfile()
				if err := cpuF.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "cpuprofile:", err)
				}
			}
			if memPath == "" {
				return
			}
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			runtime.GC() // materialize the final live set before sampling
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		})
	}, nil
}
