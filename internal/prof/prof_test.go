package prof

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStartWritesProfiles runs a full start/stop cycle and checks both
// profile files exist and are non-empty, and that stop is idempotent.
func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	stop()
	stop() // second call must be a no-op, not a double close
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

// TestStartEmptyPaths pins that profiling is fully optional: empty paths
// start nothing and stop is still safe.
func TestStartEmptyPaths(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	stop()
}

// TestStartBadCPUPath pins the error contract: an uncreatable CPU profile
// path fails Start without leaving a profiler running.
func TestStartBadCPUPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu"), ""); err == nil {
		t.Fatal("want error for uncreatable cpuprofile path")
	}
	// A subsequent Start must succeed — proof nothing was left running.
	stop, err := Start(filepath.Join(t.TempDir(), "cpu.pprof"), "")
	if err != nil {
		t.Fatal(err)
	}
	stop()
}
