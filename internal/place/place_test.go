package place

import (
	"math/rand"
	"testing"

	"fpgarouter/internal/circuits"
	"fpgarouter/internal/fpga"
)

func scrambled(t *testing.T) *circuits.Circuit {
	t.Helper()
	// Synthesize a local netlist, then scramble its placement so the
	// annealer has something to recover.
	spec := circuits.Spec{Name: "p", Series: circuits.Series4000, Cols: 6, Rows: 6, Nets2_3: 20, Nets4_10: 6}
	ckt, err := circuits.Synthesize(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	perm := rng.Perm(spec.Cols * spec.Rows)
	out := &circuits.Circuit{Spec: ckt.Spec}
	for _, n := range ckt.Nets {
		nn := circuits.Net{ID: n.ID}
		for _, p := range n.Pins {
			pos := perm[p.Y*spec.Cols+p.X]
			q := p
			q.X, q.Y = pos%spec.Cols, pos/spec.Cols
			nn.Pins = append(nn.Pins, q)
		}
		out.Nets = append(out.Nets, nn)
	}
	return out
}

func totalHPWL(ckt *circuits.Circuit) float64 {
	total := 0.0
	for _, n := range ckt.Nets {
		minX, minY, maxX, maxY := ckt.Cols, ckt.Rows, 0, 0
		for _, p := range n.Pins {
			if p.X < minX {
				minX = p.X
			}
			if p.X > maxX {
				maxX = p.X
			}
			if p.Y < minY {
				minY = p.Y
			}
			if p.Y > maxY {
				maxY = p.Y
			}
		}
		total += float64(maxX - minX + maxY - minY)
	}
	return total
}

func TestAnnealReducesHPWL(t *testing.T) {
	ckt := scrambled(t)
	before := totalHPWL(ckt)
	placed, st := Anneal(ckt, 1, Options{})
	after := totalHPWL(placed)
	if st.InitialHPWL != before {
		t.Fatalf("initial HPWL %v != measured %v", st.InitialHPWL, before)
	}
	if diff := st.FinalHPWL - after; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("tracked final HPWL %v != measured %v", st.FinalHPWL, after)
	}
	if after >= before {
		t.Fatalf("annealing did not improve HPWL: %v -> %v", before, after)
	}
	if st.Accepted == 0 || st.Moves == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
}

func TestAnnealDeterministicPerSeed(t *testing.T) {
	ckt := scrambled(t)
	a, _ := Anneal(ckt, 7, Options{Moves: 5000})
	b, _ := Anneal(ckt, 7, Options{Moves: 5000})
	for i := range a.Nets {
		for j := range a.Nets[i].Pins {
			if a.Nets[i].Pins[j] != b.Nets[i].Pins[j] {
				t.Fatal("same seed produced different placements")
			}
		}
	}
}

func TestAnnealPreservesPinStructure(t *testing.T) {
	ckt := scrambled(t)
	placed, _ := Anneal(ckt, 2, Options{})
	if len(placed.Nets) != len(ckt.Nets) {
		t.Fatal("net count changed")
	}
	// Pins stay unique, keep their side/index, and stay in the array.
	seen := map[fpga.Pin]bool{}
	for i, n := range placed.Nets {
		if len(n.Pins) != len(ckt.Nets[i].Pins) {
			t.Fatalf("net %d pin count changed", i)
		}
		for j, p := range n.Pins {
			orig := ckt.Nets[i].Pins[j]
			if p.Side != orig.Side || p.Index != orig.Index {
				t.Fatalf("net %d pin %d side/index changed: %v -> %v", i, j, orig, p)
			}
			if p.X < 0 || p.X >= ckt.Cols || p.Y < 0 || p.Y >= ckt.Rows {
				t.Fatalf("pin %v left the array", p)
			}
			if seen[p] {
				t.Fatalf("pin %v now used twice", p)
			}
			seen[p] = true
		}
	}
}

func TestAnnealMovesBlocksAtomically(t *testing.T) {
	// Two pins on the same block must still share a block afterwards.
	ckt := &circuits.Circuit{Spec: circuits.Spec{Name: "a", Series: circuits.Series4000, Cols: 3, Rows: 3}}
	ckt.Nets = []circuits.Net{
		{ID: 0, Pins: []fpga.Pin{
			{X: 0, Y: 0, Side: fpga.North, Index: 0},
			{X: 2, Y: 2, Side: fpga.South, Index: 0},
		}},
		{ID: 1, Pins: []fpga.Pin{
			{X: 0, Y: 0, Side: fpga.East, Index: 1}, // same block as net 0's source
			{X: 1, Y: 1, Side: fpga.West, Index: 0},
		}},
	}
	placed, _ := Anneal(ckt, 3, Options{Moves: 2000})
	p1 := placed.Nets[0].Pins[0]
	p2 := placed.Nets[1].Pins[0]
	if p1.X != p2.X || p1.Y != p2.Y {
		t.Fatalf("pins of one block scattered: %v vs %v", p1, p2)
	}
}
