// Package place improves circuit placements by simulated annealing on
// half-perimeter wirelength (HPWL). The paper assumes placement has been
// performed and notes its routing algorithms "easily integrate into
// existing layout frameworks to yield combined place-and-route tools";
// this package provides that placement stage: it permutes logic blocks
// (moving all their pins with them) to shorten nets before the router runs,
// which directly reduces achievable channel width.
package place

import (
	"math"
	"math/rand"

	"fpgarouter/internal/circuits"
)

// Stats reports an annealing run.
type Stats struct {
	InitialHPWL float64
	FinalHPWL   float64
	Moves       int
	Accepted    int
}

// Options tunes the annealer; zero values select defaults scaled to the
// circuit size.
type Options struct {
	// Moves is the total number of proposed swaps (default 200·blocks).
	Moves int
	// T0 is the initial temperature (default: a tenth of the initial
	// average net HPWL, the classic "accept most moves at first" regime).
	T0 float64
	// Cooling is the per-step geometric cooling factor (default set so the
	// temperature decays to ~1e-3·T0 over the run).
	Cooling float64
}

// Anneal returns a new circuit with an improved placement: logic blocks are
// permuted to reduce total HPWL, and each net's pins move with their
// blocks (sides and pin indices are preserved, so pin-capacity invariants
// are untouched). Deterministic for a given seed.
func Anneal(ckt *circuits.Circuit, seed int64, opts Options) (*circuits.Circuit, Stats) {
	cols, rows := ckt.Cols, ckt.Rows
	nBlocks := cols * rows
	if opts.Moves == 0 {
		opts.Moves = 200 * nBlocks
	}

	// posOf[b] is the current position (block slot) of original block b;
	// blockAt is its inverse. Start from the identity placement.
	posOf := make([]int, nBlocks)
	blockAt := make([]int, nBlocks)
	for i := range posOf {
		posOf[i] = i
		blockAt[i] = i
	}

	// Net → the original block of each pin; block → nets touching it.
	netBlocks := make([][]int, len(ckt.Nets))
	netsOfBlock := make([][]int, nBlocks)
	for i, n := range ckt.Nets {
		for _, p := range n.Pins {
			b := p.Y*cols + p.X
			netBlocks[i] = append(netBlocks[i], b)
			netsOfBlock[b] = append(netsOfBlock[b], i)
		}
	}

	hpwl := func(net int) float64 {
		minX, minY := cols, rows
		maxX, maxY := 0, 0
		for _, b := range netBlocks[net] {
			pos := posOf[b]
			x, y := pos%cols, pos/cols
			if x < minX {
				minX = x
			}
			if x > maxX {
				maxX = x
			}
			if y < minY {
				minY = y
			}
			if y > maxY {
				maxY = y
			}
		}
		return float64(maxX - minX + maxY - minY)
	}

	netCost := make([]float64, len(ckt.Nets))
	total := 0.0
	for i := range ckt.Nets {
		netCost[i] = hpwl(i)
		total += netCost[i]
	}
	st := Stats{InitialHPWL: total}

	if opts.T0 == 0 {
		if len(ckt.Nets) > 0 {
			opts.T0 = total / float64(len(ckt.Nets)) / 10
		}
		if opts.T0 <= 0 {
			opts.T0 = 1
		}
	}
	if opts.Cooling == 0 {
		opts.Cooling = math.Pow(1e-3, 1/float64(opts.Moves))
	}

	rng := rand.New(rand.NewSource(seed))
	temp := opts.T0
	affected := make(map[int]bool, 8)
	for move := 0; move < opts.Moves; move++ {
		st.Moves++
		p1 := rng.Intn(nBlocks)
		p2 := rng.Intn(nBlocks)
		if p1 == p2 {
			temp *= opts.Cooling
			continue
		}
		b1, b2 := blockAt[p1], blockAt[p2]
		clear(affected)
		for _, n := range netsOfBlock[b1] {
			affected[n] = true
		}
		for _, n := range netsOfBlock[b2] {
			affected[n] = true
		}
		// Tentatively swap and evaluate the delta over affected nets.
		blockAt[p1], blockAt[p2] = b2, b1
		posOf[b1], posOf[b2] = p2, p1
		delta := 0.0
		for n := range affected {
			delta += hpwl(n) - netCost[n]
		}
		if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
			st.Accepted++
			total += delta
			for n := range affected {
				netCost[n] = hpwl(n)
			}
		} else {
			// Revert.
			blockAt[p1], blockAt[p2] = b1, b2
			posOf[b1], posOf[b2] = p1, p2
		}
		temp *= opts.Cooling
	}
	st.FinalHPWL = total

	// Materialize the placed circuit: every pin moves to its block's new
	// position (side and pin index travel with the block).
	out := &circuits.Circuit{Spec: ckt.Spec}
	for _, n := range ckt.Nets {
		newNet := circuits.Net{ID: n.ID}
		for _, p := range n.Pins {
			b := p.Y*cols + p.X
			pos := posOf[b]
			q := p
			q.X, q.Y = pos%cols, pos/cols
			newNet.Pins = append(newNet.Pins, q)
		}
		out.Nets = append(out.Nets, newNet)
	}
	return out, st
}
