package fpga

import (
	"testing"

	"fpgarouter/internal/graph"
)

func mustFabric(t *testing.T, a Arch) *Fabric {
	t.Helper()
	f, err := NewFabric(a)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func small4000(t *testing.T, w int) *Fabric {
	return mustFabric(t, Xilinx4000(3, 3, w))
}

func TestArchValidate(t *testing.T) {
	bad := []Arch{
		{Cols: 0, Rows: 1, W: 1, Fs: 3, Fc: 1, PinsPerSide: 1},
		{Cols: 1, Rows: 1, W: 0, Fs: 3, Fc: 1, PinsPerSide: 1},
		{Cols: 1, Rows: 1, W: 2, Fs: 4, Fc: 1, PinsPerSide: 1},
		{Cols: 1, Rows: 1, W: 2, Fs: 3, Fc: 3, PinsPerSide: 1},
		{Cols: 1, Rows: 1, W: 2, Fs: 3, Fc: 0, PinsPerSide: 1},
		{Cols: 1, Rows: 1, W: 2, Fs: 3, Fc: 1, PinsPerSide: 0},
	}
	for i, a := range bad {
		if a.Validate() == nil {
			t.Fatalf("case %d: invalid arch accepted: %+v", i, a)
		}
	}
	if err := Xilinx4000(3, 3, 4).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Xilinx3000(3, 3, 5).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestXilinxPresets(t *testing.T) {
	a := Xilinx3000(12, 13, 10)
	if a.Fs != 6 || a.Fc != 6 {
		t.Fatalf("3000 preset: %+v", a)
	}
	b := Xilinx4000(10, 10, 7)
	if b.Fs != 3 || b.Fc != 7 {
		t.Fatalf("4000 preset: %+v", b)
	}
}

func TestWithWidth(t *testing.T) {
	a := Xilinx3000(5, 5, 10).WithWidth(5)
	if a.W != 5 || a.Fc != 3 {
		t.Fatalf("WithWidth 3000: %+v", a)
	}
	b := Xilinx4000(5, 5, 10).WithWidth(6)
	if b.W != 6 || b.Fc != 6 {
		t.Fatalf("WithWidth 4000: %+v", b)
	}
}

func TestFabricShape(t *testing.T) {
	f := small4000(t, 2)
	// SB nodes: 4*4*2 = 32; pins: 3*3*4*3 = 108.
	if got := f.Graph().NumNodes(); got != 140 {
		t.Fatalf("nodes = %d, want 140", got)
	}
	// Wires: spans = 3*4 + 4*3 = 24, ×W=2 → 48.
	if f.NumWires() != 48 {
		t.Fatalf("wires = %d, want 48", f.NumWires())
	}
}

func TestPinNodeRoundTrip(t *testing.T) {
	f := small4000(t, 2)
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			for _, s := range []Side{North, East, South, West} {
				for k := 0; k < f.PinsPerSide; k++ {
					p := Pin{X: x, Y: y, Side: s, Index: k}
					got, ok := f.PinOf(f.PinNode(p))
					if !ok || got != p {
						t.Fatalf("round trip %v -> %v (ok=%v)", p, got, ok)
					}
				}
			}
		}
	}
	if _, ok := f.PinOf(0); ok {
		t.Fatal("SB node misidentified as pin")
	}
}

func TestSBCoordsRoundTrip(t *testing.T) {
	f := small4000(t, 3)
	for j := 0; j <= 3; j++ {
		for i := 0; i <= 3; i++ {
			for tr := 0; tr < 3; tr++ {
				i2, j2, t2, ok := f.SBCoords(f.sbNode(i, j, tr))
				if !ok || i2 != i || j2 != j || t2 != tr {
					t.Fatalf("SBCoords(%d,%d,%d) = (%d,%d,%d,%v)", i, j, tr, i2, j2, t2, ok)
				}
			}
		}
	}
}

func TestPinsAreConnected(t *testing.T) {
	// Any two pins must be mutually reachable on a fresh fabric.
	f := small4000(t, 2)
	src := f.PinNode(Pin{X: 0, Y: 0, Side: North})
	spt := f.Graph().Dijkstra(src)
	dst := f.PinNode(Pin{X: 2, Y: 2, Side: South, Index: 2})
	if !spt.Reachable(dst) {
		t.Fatal("pins not connected on fresh fabric")
	}
	// Distance should be roughly Manhattan: blocks are ~1 apart.
	if spt.Dist[dst] > 10 {
		t.Fatalf("pin-to-pin distance %v implausibly large", spt.Dist[dst])
	}
}

func TestFcLimitsPinTaps(t *testing.T) {
	// With Fc=1 each pin has exactly 2 tap edges (one track, both ends).
	f := mustFabric(t, Arch{Cols: 2, Rows: 2, W: 4, Fs: 3, Fc: 1, PinsPerSide: 1})
	pn := f.PinNode(Pin{X: 0, Y: 0, Side: North})
	if d := f.Graph().Degree(pn); d != 2 {
		t.Fatalf("pin degree = %d, want 2", d)
	}
	f2 := mustFabric(t, Arch{Cols: 2, Rows: 2, W: 4, Fs: 3, Fc: 4, PinsPerSide: 1})
	pn2 := f2.PinNode(Pin{X: 0, Y: 0, Side: North})
	if d := f2.Graph().Degree(pn2); d != 8 {
		t.Fatalf("pin degree = %d, want 8", d)
	}
}

func TestFs6AddsJogs(t *testing.T) {
	a3 := mustFabric(t, Arch{Cols: 2, Rows: 2, W: 3, Fs: 3, Fc: 3, PinsPerSide: 1})
	a6 := mustFabric(t, Arch{Cols: 2, Rows: 2, W: 3, Fs: 6, Fc: 3, PinsPerSide: 1})
	if a6.Graph().NumEdges() <= a3.Graph().NumEdges() {
		t.Fatal("Fs=6 should add intra-switch-block jog edges")
	}
	// Jogs belong to no wire.
	foundJog := false
	for id := 0; id < a6.Graph().NumEdges(); id++ {
		if a6.WireOfEdge(graph.EdgeID(id)) == noWire {
			foundJog = true
			if a6.Graph().Weight(graph.EdgeID(id)) != JogLength {
				t.Fatal("jog edge has wrong weight")
			}
		}
	}
	if !foundJog {
		t.Fatal("no jog edges found")
	}
}

func TestCommitNetClaimsWholeWires(t *testing.T) {
	f := small4000(t, 2)
	// Route pin (0,0).N to pin (1,0).N greedily via Dijkstra and commit.
	src := f.PinNode(Pin{X: 0, Y: 0, Side: North})
	dst := f.PinNode(Pin{X: 1, Y: 0, Side: North})
	spt := f.Graph().Dijkstra(src)
	tr := graph.NewTree(f.Graph(), spt.PathTo(dst))
	wires := f.CommitNet(tr)
	if len(wires) == 0 {
		t.Fatal("no wires claimed")
	}
	for _, w := range wires {
		for _, e := range f.wireEdges[w] {
			if f.Graph().Enabled(e) {
				t.Fatal("edge of claimed wire still enabled")
			}
		}
	}
	if f.MaxSpanUtilization() == 0 {
		t.Fatal("span utilization not updated")
	}
}

func TestCommitNetCongestionWeights(t *testing.T) {
	f := small4000(t, 2)
	f.CongestionAlpha = 2.0
	src := f.PinNode(Pin{X: 0, Y: 0, Side: North})
	dst := f.PinNode(Pin{X: 1, Y: 0, Side: North})
	spt := f.Graph().Dijkstra(src)
	f.CommitNet(graph.NewTree(f.Graph(), spt.PathTo(dst)))
	// Some enabled segment edge must now cost more than its base length.
	raised := false
	for id := 0; id < f.Graph().NumEdges(); id++ {
		e := graph.EdgeID(id)
		if f.Graph().Enabled(e) && f.Graph().Weight(e) > f.baseW[id]+1e-12 {
			raised = true
			break
		}
	}
	if !raised {
		t.Fatal("congestion weights not applied")
	}
}

func TestResetRestoresFabric(t *testing.T) {
	f := small4000(t, 2)
	src := f.PinNode(Pin{X: 0, Y: 0, Side: North})
	dst := f.PinNode(Pin{X: 2, Y: 2, Side: South})
	spt := f.Graph().Dijkstra(src)
	f.CommitNet(graph.NewTree(f.Graph(), spt.PathTo(dst)))
	f.Reset()
	if f.MaxSpanUtilization() != 0 {
		t.Fatal("span usage not reset")
	}
	for id := 0; id < f.Graph().NumEdges(); id++ {
		e := graph.EdgeID(id)
		if !f.Graph().Enabled(e) {
			t.Fatal("edge still disabled after reset")
		}
		if f.Graph().Weight(e) != f.baseW[id] {
			t.Fatal("weight not restored after reset")
		}
	}
}

func TestSBCandidatesClipping(t *testing.T) {
	f := small4000(t, 2)
	all := f.SBCandidates(-5, 100, -5, 100)
	if len(all) != (3+1)*(3+1)*2 {
		t.Fatalf("candidates = %d", len(all))
	}
	one := f.SBCandidates(1, 1, 1, 1)
	if len(one) != 2 {
		t.Fatalf("single SB candidates = %d, want W=2", len(one))
	}
}

func TestBaseWirelengthIgnoresCongestion(t *testing.T) {
	f := small4000(t, 2)
	f.CongestionAlpha = 5
	src := f.PinNode(Pin{X: 0, Y: 0, Side: North})
	spt := f.Graph().Dijkstra(src)
	dst := f.PinNode(Pin{X: 2, Y: 0, Side: North})
	tr := graph.NewTree(f.Graph(), spt.PathTo(dst))
	base := f.BaseWirelength(tr)
	f.CommitNet(tr)
	if f.BaseWirelength(tr) != base {
		t.Fatal("base wirelength changed after commit")
	}
}
