package fpga

import (
	"testing"

	"fpgarouter/internal/graph"
)

func segArch(w int, lens []int) Arch {
	return Arch{Cols: 4, Rows: 4, W: w, Fs: 3, Fc: w, PinsPerSide: 1, SegLens: lens}
}

func TestSegLensValidation(t *testing.T) {
	if err := segArch(2, []int{1}).Validate(); err == nil {
		t.Fatal("length/width mismatch accepted")
	}
	if err := segArch(2, []int{1, 0}).Validate(); err == nil {
		t.Fatal("zero segment length accepted")
	}
	if err := segArch(2, []int{1, 2}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentedWireCount(t *testing.T) {
	flat, err := NewFabric(segArch(2, nil))
	if err != nil {
		t.Fatal(err)
	}
	seg, err := NewFabric(segArch(2, []int{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	// Track 1's wires halve (up to boundary remainders); strictly fewer
	// wires overall.
	if seg.NumWires() >= flat.NumWires() {
		t.Fatalf("segmented wires %d not below flat %d", seg.NumWires(), flat.NumWires())
	}
}

func TestSegmentedWireSpansAndClaim(t *testing.T) {
	f, err := NewFabric(segArch(2, []int{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	// Find a length-2 wire: track 1 horizontal at row 0 spans (0,0)-(2,0).
	w := f.wireOf(f.HSpanIndex(0, 0), 1)
	if len(f.wireSpans[w]) != 2 {
		t.Fatalf("wire covers %d spans, want 2", len(f.wireSpans[w]))
	}
	// Both covered spans resolve back to the same wire.
	if f.wireOf(f.HSpanIndex(1, 0), 1) != w {
		t.Fatal("second span resolves to a different wire")
	}
	// Its single wire edge is 2 spans long.
	e := f.g.Edge(f.wireEdges[w][0])
	if e.W != 2*SegmentLength {
		t.Fatalf("wire edge length %v, want 2", e.W)
	}
	// Claiming it consumes capacity in both spans.
	f.CommitNet(graph.NewTree(f.g, []graph.EdgeID{f.wireEdges[w][0]}))
	if f.spanUsed[f.HSpanIndex(0, 0)] != 1 || f.spanUsed[f.HSpanIndex(1, 0)] != 1 {
		t.Fatal("claim did not consume both spans")
	}
}

func TestSegmentedTapWeightsReflectPosition(t *testing.T) {
	f, err := NewFabric(segArch(2, []int{1, 4}))
	if err != nil {
		t.Fatal(err)
	}
	// A pin whose span sits mid-wire on the long track must pay the
	// intra-wire distance to the far end: tap weights pos+0.5 and
	// (L-1-pos)+0.5 sum to L (the wire length).
	pin := Pin{X: 2, Y: 0, Side: South} // horizontal span (2,0), track 1 wire covers 0..4
	pn := f.PinNode(pin)
	var longTaps []float64
	for _, e := range f.pinTaps[pn] {
		w := f.edgeWire[e]
		if len(f.wireSpans[w]) > 1 {
			longTaps = append(longTaps, f.g.Weight(e))
		}
	}
	if len(longTaps) != 2 {
		t.Fatalf("expected 2 taps on the long wire, got %d", len(longTaps))
	}
	if got := longTaps[0] + longTaps[1]; got != 4*SegmentLength {
		t.Fatalf("tap weights %v sum to %v, want wire length 4", longTaps, got)
	}
}

func TestSegmentedFabricStillRoutesPins(t *testing.T) {
	f, err := NewFabric(segArch(4, []int{1, 1, 2, 4}))
	if err != nil {
		t.Fatal(err)
	}
	src := Pin{X: 0, Y: 0, Side: North}
	dst := Pin{X: 3, Y: 3, Side: South}
	f.BeginNet([]Pin{src, dst})
	spt := f.Graph().Dijkstra(f.PinNode(src))
	if !spt.Reachable(f.PinNode(dst)) {
		t.Fatal("segmented fabric disconnected")
	}
	tree := graph.NewTree(f.Graph(), spt.PathTo(f.PinNode(dst)))
	f.CommitNet(tree)
	if f.MaxSpanUtilization() < 1 {
		t.Fatal("no span consumed")
	}
}

func TestUnsegmentedBehaviourUnchanged(t *testing.T) {
	// SegLens nil and SegLens all-ones must build identical fabrics.
	a, err := NewFabric(segArch(3, nil))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFabric(segArch(3, []int{1, 1, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumWires() != b.NumWires() || a.Graph().NumEdges() != b.Graph().NumEdges() {
		t.Fatal("all-ones segmentation differs from nil")
	}
	for id := 0; id < a.Graph().NumEdges(); id++ {
		if a.Graph().Weight(graph.EdgeID(id)) != b.Graph().Weight(graph.EdgeID(id)) {
			t.Fatalf("edge %d weight differs", id)
		}
	}
}

func TestSegmentedCongestionAvoidsWholeLongWire(t *testing.T) {
	f, err := NewFabric(segArch(2, []int{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	f.CongestionAlpha = 2
	// Claim the short wire of span (0,0): the long wire crossing spans
	// (0,0) and (1,0) must get the congested weight, even for traversal
	// starting at span (1,0).
	short := f.wireOf(f.HSpanIndex(0, 0), 0)
	f.CommitNet(graph.NewTree(f.g, []graph.EdgeID{f.wireEdges[short][0]}))
	long := f.wireOf(f.HSpanIndex(1, 0), 1)
	e := f.wireEdges[long][0]
	if f.g.Weight(e) <= f.baseW[e] {
		t.Fatal("long wire not penalized by congestion in a crossed span")
	}
}
