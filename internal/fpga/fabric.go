package fpga

import (
	"fmt"

	"fpgarouter/internal/graph"
)

// Default edge lengths, in channel-span units. A full wire segment between
// two switch blocks has length 1; a connection-block tap reaches the middle
// of a segment (0.5); an intra-switch-block jog (Fs = 6 extra flexibility)
// is nearly free but slightly discouraged.
const (
	SegmentLength = 1.0
	TapLength     = 0.5
	JogLength     = 0.05
)

// WireID identifies one physical channel wire: a (channel span, track)
// pair. Wires are the unit of electrical capacity — a wire claimed by one
// net is unusable by every other net.
type WireID = int32

// noWire marks edges (intra-switch-block jogs) that are not part of any
// channel wire.
const noWire WireID = -1

// Fabric is an instantiated FPGA routing fabric: the routing graph plus the
// wire/span bookkeeping needed for capacity, congestion and rip-up.
type Fabric struct {
	Arch
	g *graph.Graph

	numSB    int // (Cols+1)*(Rows+1)*W switch-block/track nodes
	hSpans   int // Cols*(Rows+1) horizontal channel spans
	numSpans int // hSpans + (Cols+1)*Rows

	edgeWire  []WireID                        // edge → owning wire (or noWire)
	wireEdges [][]graph.EdgeID                // wire → its segment and tap edges
	wireSpans [][]int32                       // wire → channel spans it covers (≥1 when segmented)
	spanWire  []WireID                        // (span*W + track) → covering wire
	claimed   []bool                          // wire → claimed by a committed net
	spanUsed  []int32                         // span → number of claimed wires
	baseW     []float64                       // edge → uncongested wirelength
	pinTaps   map[graph.NodeID][]graph.EdgeID // pin node → its tap edges
	pinWires  map[graph.NodeID][]WireID       // pin node → wires it taps

	wireDemand []int32 // wire → unrouted pins that can only tap this wire
	spanDemand []int32 // span → unrouted pin taps wanting this span

	bounds *graph.CoordBounds // immutable node coordinates for goal-directed search

	// CongestionAlpha scales the congestion penalty applied to the
	// remaining wires of a partially used channel span: the weight of a
	// segment edge becomes base·(1 + α·used/W + …). Zero disables it.
	CongestionAlpha float64
	// DemandBeta scales the scarcity penalty on spans whose free wires are
	// nearly all reserved by pins of still-unrouted nets. This implements
	// the demand-driven congestion avoidance that keeps traversal routes
	// from walling off future pins (CGE routes "based on demand" the same
	// way).
	DemandBeta float64
	// DemandGamma penalizes individual wires tapped by unrouted pins, so a
	// passing route prefers demand-free wires of the same span.
	DemandGamma float64
}

// NewFabric builds the routing graph for the architecture.
func NewFabric(a Arch) (*Fabric, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	f := &Fabric{Arch: a, CongestionAlpha: 1.0, DemandBeta: 1.0, DemandGamma: 0.5}
	f.numSB = (a.Cols + 1) * (a.Rows + 1) * a.W
	f.hSpans = a.Cols * (a.Rows + 1)
	f.numSpans = f.hSpans + (a.Cols+1)*a.Rows
	numPins := a.Cols * a.Rows * 4 * a.PinsPerSide
	f.g = graph.New(f.numSB + numPins)
	f.spanWire = make([]WireID, f.numSpans*a.W)
	f.spanUsed = make([]int32, f.numSpans)
	f.spanDemand = make([]int32, f.numSpans)

	addWireEdge := func(w WireID, u, v graph.NodeID, length float64) {
		id := f.g.AddEdge(u, v, length)
		f.edgeWire = append(f.edgeWire, w)
		f.baseW = append(f.baseW, length)
		if w != noWire {
			f.wireEdges[w] = append(f.wireEdges[w], id)
		}
	}
	// newWire allocates a wire covering the given spans on track t and
	// adds its single wire edge between the bounding switch blocks.
	newWire := func(spans []int32, t int, u, v graph.NodeID) {
		w := WireID(len(f.wireEdges))
		f.wireEdges = append(f.wireEdges, nil)
		f.wireSpans = append(f.wireSpans, spans)
		for _, s := range spans {
			f.spanWire[int(s)*a.W+t] = w
		}
		addWireEdge(w, u, v, SegmentLength*float64(len(spans)))
	}

	// Channel wires. Track t carries wires of length SegLen(t) channel
	// spans (1 = the classic single-length model): a length-L wire is one
	// edge between switch blocks L apart, and connection blocks tap it
	// only through its endpoints (like Xilinx double/long lines, which
	// skip intermediate switch blocks).
	for j := 0; j <= a.Rows; j++ { // horizontal channels
		for t := 0; t < a.W; t++ {
			l := a.SegLen(t)
			for i0 := 0; i0 < a.Cols; i0 += l {
				end := i0 + l
				if end > a.Cols {
					end = a.Cols
				}
				spans := make([]int32, 0, end-i0)
				for i := i0; i < end; i++ {
					spans = append(spans, int32(f.hSpan(i, j)))
				}
				newWire(spans, t, f.sbNode(i0, j, t), f.sbNode(end, j, t))
			}
		}
	}
	for i := 0; i <= a.Cols; i++ { // vertical channels
		for t := 0; t < a.W; t++ {
			l := a.SegLen(t)
			for j0 := 0; j0 < a.Rows; j0 += l {
				end := j0 + l
				if end > a.Rows {
					end = a.Rows
				}
				spans := make([]int32, 0, end-j0)
				for j := j0; j < end; j++ {
					spans = append(spans, int32(f.vSpan(i, j)))
				}
				newWire(spans, t, f.sbNode(i, j0, t), f.sbNode(i, end, t))
			}
		}
	}
	f.claimed = make([]bool, len(f.wireEdges))
	f.wireDemand = make([]int32, len(f.wireEdges))

	// Extra switch-block flexibility (Fs = 6): jogs between neighbouring
	// tracks inside each switch block. The disjoint Fs = 3 pattern is
	// already encoded by sharing one node per (switch block, track).
	if a.Fs == 6 && a.W > 1 {
		for j := 0; j <= a.Rows; j++ {
			for i := 0; i <= a.Cols; i++ {
				for t := 0; t < a.W; t++ {
					u := (t + 1) % a.W
					if u == t || (a.W == 2 && t == 1) {
						continue // avoid self-loops and duplicate pair on W=2
					}
					addWireEdge(noWire, f.sbNode(i, j, t), f.sbNode(i, j, u), JogLength)
				}
			}
		}
	}

	// Connection blocks: each pin taps Fc of the W tracks of its adjacent
	// channel span, reaching both switch blocks bounding the span.
	f.pinTaps = make(map[graph.NodeID][]graph.EdgeID, numPins)
	f.pinWires = make(map[graph.NodeID][]WireID, numPins)
	pinOrdinal := 0
	for y := 0; y < a.Rows; y++ {
		for x := 0; x < a.Cols; x++ {
			for _, side := range []Side{North, East, South, West} {
				for k := 0; k < a.PinsPerSide; k++ {
					pin := Pin{X: x, Y: y, Side: side, Index: k}
					pn := f.PinNode(pin)
					span, _, _ := f.pinSpan(pin)
					for c := 0; c < a.Fc; c++ {
						t := (pinOrdinal + c*a.W/a.Fc) % a.W
						w := f.spanWire[span*a.W+t]
						// The tap reaches the wire at this span's middle;
						// leaving through either wire end costs the
						// intra-wire distance plus the half-span tap.
						pos := 0
						for idx, s := range f.wireSpans[w] {
							if int(s) == span {
								pos = idx
								break
							}
						}
						wireEdge := f.g.Edge(f.wireEdges[w][0])
						lenA := SegmentLength*float64(pos) + TapLength
						lenB := SegmentLength*float64(len(f.wireSpans[w])-1-pos) + TapLength
						first := graph.EdgeID(f.g.NumEdges())
						addWireEdge(w, pn, wireEdge.U, lenA)
						addWireEdge(w, pn, wireEdge.V, lenB)
						f.pinTaps[pn] = append(f.pinTaps[pn], first, first+1)
						f.pinWires[pn] = append(f.pinWires[pn], w)
					}
					pinOrdinal++
				}
			}
		}
	}
	// The edge set is final from here on (routing only toggles enables and
	// reweights); freezing now means the CSR layout is built once and never
	// lazily rebuilt under concurrent read-only scans.
	f.g.Freeze()
	f.buildBounds()
	return f, nil
}

// buildBounds assigns every routing node its physical coordinate: switch
// block (i, j) sits at grid intersection (i, j), and a pin sits at the
// midpoint of its adjacent channel span — which makes the tap edge lengths
// (pos + TapLength to the wire ends) exactly the coordinate displacement,
// and segment edges of L spans cost exactly L. Congestion and demand only
// scale weights up from those base lengths and jogs cost more than their
// zero displacement, so the Manhattan distance between coordinates is an
// admissible, consistent lower bound under every fabric mutation
// (BeginNet/CommitNet/AddPinDemand/Reset). See DESIGN.md §6.
func (f *Fabric) buildBounds() {
	n := f.g.NumNodes()
	xs := make([]float64, n)
	ys := make([]float64, n)
	for v := 0; v < f.numSB; v++ {
		i, j, _, _ := f.SBCoords(graph.NodeID(v))
		xs[v], ys[v] = float64(i), float64(j)
	}
	for v := f.numSB; v < n; v++ {
		p, _ := f.PinOf(graph.NodeID(v))
		switch p.Side {
		case South:
			xs[v], ys[v] = float64(p.X)+0.5, float64(p.Y)
		case North:
			xs[v], ys[v] = float64(p.X)+0.5, float64(p.Y)+1
		case West:
			xs[v], ys[v] = float64(p.X), float64(p.Y)+0.5
		case East:
			xs[v], ys[v] = float64(p.X)+1, float64(p.Y)+0.5
		}
	}
	f.bounds = &graph.CoordBounds{X: xs, Y: ys}
}

// Bounds returns the fabric's admissible distance lower bound for
// goal-directed search. The returned value is immutable and safe to share
// across concurrent searches and SPTCache forks.
func (f *Fabric) Bounds() *graph.CoordBounds { return f.bounds }

// sbNode returns the node for track t at switch block (i, j).
func (f *Fabric) sbNode(i, j, t int) graph.NodeID {
	return graph.NodeID((j*(f.Cols+1)+i)*f.W + t)
}

// sbTrack shifts a switch-block base index (node of track 0) to track t.
func (f *Fabric) sbTrack(base graph.NodeID, t int) graph.NodeID {
	return base + graph.NodeID(t)
}

// hSpan returns the span index of the horizontal channel span between
// switch blocks (i, j) and (i+1, j).
func (f *Fabric) hSpan(i, j int) int { return j*f.Cols + i }

// vSpan returns the span index of the vertical channel span between switch
// blocks (i, j) and (i, j+1).
func (f *Fabric) vSpan(i, j int) int { return f.hSpans + j*(f.Cols+1) + i }

// wireOf returns the wire covering track t of a span.
func (f *Fabric) wireOf(span, t int) WireID { return f.spanWire[span*f.W+t] }

// pinSpan returns the channel span adjacent to a pin and the track-0 nodes
// of the two switch blocks bounding it.
func (f *Fabric) pinSpan(p Pin) (span int, sbA, sbB graph.NodeID) {
	switch p.Side {
	case South:
		return f.hSpan(p.X, p.Y), f.sbNode(p.X, p.Y, 0), f.sbNode(p.X+1, p.Y, 0)
	case North:
		return f.hSpan(p.X, p.Y+1), f.sbNode(p.X, p.Y+1, 0), f.sbNode(p.X+1, p.Y+1, 0)
	case West:
		return f.vSpan(p.X, p.Y), f.sbNode(p.X, p.Y, 0), f.sbNode(p.X, p.Y+1, 0)
	case East:
		return f.vSpan(p.X+1, p.Y), f.sbNode(p.X+1, p.Y, 0), f.sbNode(p.X+1, p.Y+1, 0)
	}
	panic(fmt.Sprintf("fpga: bad side %v", p.Side))
}

// PinNode returns the routing-graph node of a logic block pin.
func (f *Fabric) PinNode(p Pin) graph.NodeID {
	if p.X < 0 || p.X >= f.Cols || p.Y < 0 || p.Y >= f.Rows ||
		p.Side < North || p.Side > West || p.Index < 0 || p.Index >= f.PinsPerSide {
		panic(fmt.Sprintf("fpga: pin %v out of range", p))
	}
	idx := ((p.Y*f.Cols+p.X)*4+int(p.Side))*f.PinsPerSide + p.Index
	return graph.NodeID(f.numSB + idx)
}

// Graph exposes the routing graph (shared, mutable — the router commits
// nets through CommitNet, not by touching the graph directly).
func (f *Fabric) Graph() *graph.Graph { return f.g }

// NumWires returns the number of physical channel wires.
func (f *Fabric) NumWires() int { return len(f.wireEdges) }

// WireOfEdge returns the wire owning edge id, or -1 for switch-block jogs.
func (f *Fabric) WireOfEdge(id graph.EdgeID) WireID { return f.edgeWire[id] }

// WireEdges returns the edges making up wire w: its channel segments plus
// every connection-block tap onto it. The slice is shared and read-only.
func (f *Fabric) WireEdges(w WireID) []graph.EdgeID { return f.wireEdges[w] }

// PinNodeRange returns the half-open node ID range [lo, hi) holding all
// logic-block pin nodes; every node below lo is a switch-block/track node.
// The pathfinder uses this to block foreign pins without mutating enables.
func (f *Fabric) PinNodeRange() (lo, hi graph.NodeID) {
	return graph.NodeID(f.numSB), graph.NodeID(f.g.NumNodes())
}

// SBCandidates returns the switch-block/track nodes within the inclusive
// switch-block bounding box [minX, maxX]×[minY, maxY] (clipped to the
// fabric), the Steiner-candidate pool used by the router's iterated
// constructions.
func (f *Fabric) SBCandidates(minX, maxX, minY, maxY int) []graph.NodeID {
	clip := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	minX, maxX = clip(minX, 0, f.Cols), clip(maxX, 0, f.Cols)
	minY, maxY = clip(minY, 0, f.Rows), clip(maxY, 0, f.Rows)
	var out []graph.NodeID
	for j := minY; j <= maxY; j++ {
		for i := minX; i <= maxX; i++ {
			for t := 0; t < f.W; t++ {
				out = append(out, f.sbNode(i, j, t))
			}
		}
	}
	return out
}

// SteinerPool returns the Steiner-candidate switch-block nodes inside the
// pins' bounding box plus a margin, deterministically stride-subsampled to
// at most maxPool nodes (quality changes marginally, runtime linearly).
// Both the sequential router and the pathfinder derive their per-net pools
// from this one function so the two modes evaluate identical candidates.
func (f *Fabric) SteinerPool(pins []Pin, margin, maxPool int) []graph.NodeID {
	minX, minY := f.Cols, f.Rows
	maxX, maxY := 0, 0
	for _, p := range pins {
		if p.X < minX {
			minX = p.X
		}
		if p.X+1 > maxX {
			maxX = p.X + 1
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y+1 > maxY {
			maxY = p.Y + 1
		}
	}
	pool := f.SBCandidates(minX-margin, maxX+margin, minY-margin, maxY+margin)
	if maxPool > 0 && len(pool) > maxPool {
		stride := (len(pool) + maxPool - 1) / maxPool
		sub := make([]graph.NodeID, 0, maxPool)
		for i := 0; i < len(pool); i += stride {
			sub = append(sub, pool[i])
		}
		pool = sub
	}
	return pool
}

// SBCoords inverts sbNode for switch-block/track nodes; ok is false for pin
// nodes.
func (f *Fabric) SBCoords(v graph.NodeID) (i, j, t int, ok bool) {
	if int(v) >= f.numSB {
		return 0, 0, 0, false
	}
	t = int(v) % f.W
	sb := int(v) / f.W
	return sb % (f.Cols + 1), sb / (f.Cols + 1), t, true
}

// PinOf inverts PinNode; ok is false for switch-block nodes.
func (f *Fabric) PinOf(v graph.NodeID) (Pin, bool) {
	idx := int(v) - f.numSB
	if idx < 0 || idx >= f.Cols*f.Rows*4*f.PinsPerSide {
		return Pin{}, false
	}
	k := idx % f.PinsPerSide
	idx /= f.PinsPerSide
	side := Side(idx % 4)
	idx /= 4
	return Pin{X: idx % f.Cols, Y: idx / f.Cols, Side: side, Index: k}, true
}

// BeginNet prepares the fabric for routing one net: the tap edges of every
// logic-block pin NOT in pins are disabled, so routes cannot pass through
// unrelated pins (a pin is not a routing switch — only the net's own
// terminals may fan out through their connection blocks). Tap edges of the
// net's pins are enabled unless their wire is already claimed.
func (f *Fabric) BeginNet(pins []Pin) {
	active := make(map[graph.NodeID]bool, len(pins))
	for _, p := range pins {
		active[f.PinNode(p)] = true
	}
	for node, taps := range f.pinTaps {
		on := active[node]
		for _, e := range taps {
			f.g.SetEnabled(e, on && !f.claimed[f.edgeWire[e]])
		}
	}
}

// CommitNet commits a routed tree: every wire touched by the tree is
// claimed (all of its edges disabled, so later nets stay electrically
// disjoint), every non-wire edge used is disabled, and congestion weights
// of the affected spans are refreshed. It returns the claimed wires.
func (f *Fabric) CommitNet(t graph.Tree) []WireID {
	var wires []WireID
	touchedSpans := map[int32]bool{}
	for _, id := range t.Edges {
		w := f.edgeWire[id]
		if w == noWire {
			f.g.SetEnabled(id, false)
			continue
		}
		if !f.claimed[w] {
			f.claimed[w] = true
			wires = append(wires, w)
			for _, s := range f.wireSpans[w] {
				f.spanUsed[s]++
				touchedSpans[s] = true
			}
			for _, e := range f.wireEdges[w] {
				f.g.SetEnabled(e, false)
			}
		}
	}
	for span := range touchedSpans {
		f.refreshSpanWeights(int(span))
	}
	return wires
}

// AddPinDemand registers (delta = +1) or releases (delta = -1) a pin of an
// unrouted net: its tap wires and span are marked as demanded, and the
// span's weights refreshed. The router registers every pin at pass start
// and releases a net's pins just before routing it.
func (f *Fabric) AddPinDemand(p Pin, delta int32) {
	pn := f.PinNode(p)
	span, _, _ := f.pinSpan(p)
	for _, w := range f.pinWires[pn] {
		f.wireDemand[w] += delta
	}
	f.spanDemand[span] += delta
	f.refreshSpanWeights(span)
}

// spanFactor computes the congestion+scarcity term of one span:
// α·used/W plus the β-scaled scarcity that grows as the span's free wires
// are used up relative to the demand registered by unrouted pins.
func (f *Fabric) spanFactor(span int32) float64 {
	used := f.spanUsed[span]
	factor := f.CongestionAlpha * float64(used) / float64(f.W)
	if need := f.spanDemand[span]; need > 0 && f.DemandBeta > 0 {
		slack := int32(f.W) - used
		var scarcity float64
		if slack <= need {
			scarcity = 2 * float64(need-slack+1)
		} else {
			scarcity = 0.25 * float64(need) / float64(slack-need)
		}
		factor += f.DemandBeta * scarcity
	}
	return factor
}

// refreshSpanWeights reapplies the congestion formula to the still-enabled
// edges of the wires covering a span:
//
//	weight = base · (1 + max over covered spans of spanFactor + γ·wireDemand)
//
// Multi-span (segmented) wires take the worst factor over the spans they
// cross, so a long line through a congested region is avoided whole.
func (f *Fabric) refreshSpanWeights(span int) {
	for t := 0; t < f.W; t++ {
		w := f.wireOf(span, t)
		if f.claimed[w] {
			continue
		}
		worst := 0.0
		for _, s := range f.wireSpans[w] {
			if sf := f.spanFactor(s); sf > worst {
				worst = sf
			}
		}
		wf := 1 + worst + f.DemandGamma*float64(f.wireDemand[w])
		for _, e := range f.wireEdges[w] {
			f.g.SetWeight(e, f.baseW[e]*wf)
		}
	}
}

// Reset rips up all committed nets: re-enables every edge, restores base
// weights and clears all claims and registered pin demand.
func (f *Fabric) Reset() {
	for i := range f.claimed {
		f.claimed[i] = false
	}
	for i := range f.spanUsed {
		f.spanUsed[i] = 0
	}
	for i := range f.wireDemand {
		f.wireDemand[i] = 0
	}
	for i := range f.spanDemand {
		f.spanDemand[i] = 0
	}
	for id := 0; id < f.g.NumEdges(); id++ {
		f.g.SetEnabled(graph.EdgeID(id), true)
		f.g.SetWeight(graph.EdgeID(id), f.baseW[id])
	}
}

// BaseWirelength returns the uncongested wirelength of a routed tree (the
// metric reported in Table 5), i.e. the sum of base edge lengths.
func (f *Fabric) BaseWirelength(t graph.Tree) float64 {
	total := 0.0
	for _, id := range t.Edges {
		total += f.baseW[id]
	}
	return total
}

// MaxPathlength returns the maximum, over sinks, of the tree-path length
// from src measured in base (uncongested) wirelength — the critical-path
// metric of Table 5. It panics if a sink is not spanned by the tree.
func (f *Fabric) MaxPathlength(t graph.Tree, src graph.NodeID, sinks []graph.NodeID) float64 {
	adj := make(map[graph.NodeID][]graph.Arc, 2*len(t.Edges))
	for _, id := range t.Edges {
		e := f.g.Edge(id)
		adj[e.U] = append(adj[e.U], graph.Arc{To: e.V, ID: id})
		adj[e.V] = append(adj[e.V], graph.Arc{To: e.U, ID: id})
	}
	dist := map[graph.NodeID]float64{src: 0}
	stack := []graph.NodeID{src}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range adj[u] {
			if _, ok := dist[a.To]; ok {
				continue
			}
			dist[a.To] = dist[u] + f.baseW[a.ID]
			stack = append(stack, a.To)
		}
	}
	maxd := 0.0
	for _, s := range sinks {
		d, ok := dist[s]
		if !ok {
			panic(fmt.Sprintf("fpga: sink %d not spanned by tree", s))
		}
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}

// HSpanIndex returns the span index of the horizontal channel span between
// switch blocks (i, j) and (i+1, j), for renderers and diagnostics.
func (f *Fabric) HSpanIndex(i, j int) int { return f.hSpan(i, j) }

// VSpanIndex returns the span index of the vertical channel span between
// switch blocks (i, j) and (i, j+1).
func (f *Fabric) VSpanIndex(i, j int) int { return f.vSpan(i, j) }

// SpanUtilization returns how many wires of each span are claimed.
func (f *Fabric) SpanUtilization() []int32 {
	return append([]int32(nil), f.spanUsed...)
}

// MaxSpanUtilization returns the maximum number of claimed wires over all
// spans — the effective channel width the committed routing requires.
func (f *Fabric) MaxSpanUtilization() int {
	m := int32(0)
	for _, u := range f.spanUsed {
		if u > m {
			m = u
		}
	}
	return int(m)
}
