package fpga

import (
	"testing"

	"fpgarouter/internal/graph"
)

// Structural invariants of fabric construction, checked across a spread of
// architectures (both families, several widths, with and without
// segmentation).
func TestFabricInvariants(t *testing.T) {
	archs := []Arch{
		Xilinx3000(3, 4, 5),
		Xilinx3000(5, 5, 9),
		Xilinx4000(4, 3, 4),
		Xilinx4000(6, 6, 7),
		{Cols: 4, Rows: 4, W: 4, Fs: 3, Fc: 2, PinsPerSide: 2, SegLens: []int{1, 2, 1, 4}},
	}
	for ai, a := range archs {
		f, err := NewFabric(a)
		if err != nil {
			t.Fatalf("arch %d: %v", ai, err)
		}
		g := f.Graph()

		// Every pin has exactly 2·Fc tap edges, each belonging to a wire.
		for y := 0; y < a.Rows; y++ {
			for x := 0; x < a.Cols; x++ {
				for _, side := range []Side{North, East, South, West} {
					for k := 0; k < a.PinsPerSide; k++ {
						pn := f.PinNode(Pin{X: x, Y: y, Side: side, Index: k})
						taps := f.pinTaps[pn]
						if len(taps) != 2*a.Fc {
							t.Fatalf("arch %d pin %v: %d taps, want %d", ai, pn, len(taps), 2*a.Fc)
						}
						for _, e := range taps {
							if f.edgeWire[e] == noWire {
								t.Fatalf("arch %d: tap edge %d has no wire", ai, e)
							}
						}
					}
				}
			}
		}

		// Wire bookkeeping is mutually consistent: every wire's edges map
		// back to it; every span/track resolves to a wire covering it.
		for w := range f.wireEdges {
			if len(f.wireEdges[w]) == 0 {
				t.Fatalf("arch %d: wire %d has no edges", ai, w)
			}
			for _, e := range f.wireEdges[w] {
				if f.edgeWire[e] != WireID(w) {
					t.Fatalf("arch %d: edge %d of wire %d maps to %d", ai, e, w, f.edgeWire[e])
				}
			}
			if len(f.wireSpans[w]) < 1 {
				t.Fatalf("arch %d: wire %d covers no spans", ai, w)
			}
		}
		for span := 0; span < f.numSpans; span++ {
			for tr := 0; tr < a.W; tr++ {
				w := f.wireOf(span, tr)
				found := false
				for _, s := range f.wireSpans[w] {
					if int(s) == span {
						found = true
					}
				}
				if !found {
					t.Fatalf("arch %d: span %d track %d resolves to wire %d not covering it", ai, span, tr, w)
				}
			}
		}

		// The base-weight table covers every edge and matches construction
		// weights.
		if len(f.baseW) != g.NumEdges() {
			t.Fatalf("arch %d: baseW has %d entries for %d edges", ai, len(f.baseW), g.NumEdges())
		}
		for id := 0; id < g.NumEdges(); id++ {
			if g.Weight(graph.EdgeID(id)) != f.baseW[id] {
				t.Fatalf("arch %d: fresh fabric edge %d weight differs from base", ai, id)
			}
		}

		// All switch-block/track nodes on a fresh fabric are reachable from
		// any SB node (channels + switch blocks form one component).
		comp := g.ConnectedComponent(f.sbNode(0, 0, 0))
		for j := 0; j <= a.Rows; j++ {
			for i := 0; i <= a.Cols; i++ {
				// Only track 0 is guaranteed connected to track 0 elsewhere
				// under Fs=3 (tracks are disjoint planes); check within the
				// plane.
				if !comp[f.sbNode(i, j, 0)] {
					t.Fatalf("arch %d: SB (%d,%d) track 0 disconnected", ai, i, j)
				}
			}
		}
	}
}

func TestFs3TracksAreDisjointPlanes(t *testing.T) {
	// Under the disjoint switch pattern (Fs=3) with no pins active, a
	// route entering on track t can never leave track t.
	f := mustFabric(t, Arch{Cols: 3, Rows: 3, W: 3, Fs: 3, Fc: 3, PinsPerSide: 1})
	f.BeginNet(nil) // all pins inactive: only channel wires remain
	comp := f.Graph().ConnectedComponent(f.sbNode(0, 0, 0))
	for tr := 1; tr < 3; tr++ {
		if comp[f.sbNode(0, 0, tr)] {
			t.Fatalf("track %d reachable from track 0 without pins or jogs", tr)
		}
	}
}

func TestFs6JogsJoinTracks(t *testing.T) {
	f := mustFabric(t, Arch{Cols: 3, Rows: 3, W: 3, Fs: 6, Fc: 3, PinsPerSide: 1})
	f.BeginNet(nil)
	comp := f.Graph().ConnectedComponent(f.sbNode(0, 0, 0))
	for tr := 1; tr < 3; tr++ {
		if !comp[f.sbNode(0, 0, tr)] {
			t.Fatalf("track %d not reachable under Fs=6", tr)
		}
	}
}
