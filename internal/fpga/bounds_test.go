package fpga

import (
	"math"
	"math/rand"
	"testing"

	"fpgarouter/internal/graph"
)

// checkEdgeConsistency asserts the bound's per-edge consistency invariant:
// for every enabled edge (u, v, w), the L1 displacement between the two
// endpoint coordinates is at most w. Consistency of the A* heuristic
// h(v) = LowerBound(v, goal) follows for every goal by the triangle
// inequality of the L1 metric, and admissibility follows from consistency
// by induction along any path.
func checkEdgeConsistency(t *testing.T, f *Fabric, when string) {
	t.Helper()
	b := f.Bounds()
	g := f.Graph()
	for id := 0; id < g.NumEdges(); id++ {
		e := g.Edge(graph.EdgeID(id))
		if !e.Enabled {
			continue
		}
		disp := math.Abs(b.X[e.U]-b.X[e.V]) + math.Abs(b.Y[e.U]-b.Y[e.V])
		if disp > e.W+1e-9 {
			t.Fatalf("%s: edge %d (%d-%d): displacement %v > weight %v", when, id, e.U, e.V, disp, e.W)
		}
	}
}

// checkAdmissibility cross-checks the bound against true shortest-path
// distances from a few sampled sources.
func checkAdmissibility(t *testing.T, f *Fabric, rng *rand.Rand, when string) {
	t.Helper()
	b := f.Bounds()
	g := f.Graph()
	for s := 0; s < 4; s++ {
		src := graph.NodeID(rng.Intn(g.NumNodes()))
		spt := g.Dijkstra(src)
		for v := 0; v < g.NumNodes(); v++ {
			if math.IsInf(spt.Dist[v], 1) {
				continue
			}
			if lb := b.LowerBound(src, graph.NodeID(v)); lb > spt.Dist[v]+1e-9 {
				t.Fatalf("%s: bound %v > dist %v for %d→%d", when, lb, spt.Dist[v], src, v)
			}
		}
	}
}

func randomPin(rng *rand.Rand, f *Fabric) Pin {
	return Pin{
		X: rng.Intn(f.Cols), Y: rng.Intn(f.Rows),
		Side: Side(rng.Intn(4)), Index: rng.Intn(f.PinsPerSide),
	}
}

// TestBoundsAdmissibleUnderCongestion drives a fabric through the full
// mutation cycle — demand registration, net activation, committed routes
// (which reweight whole spans), and Reset — asserting after every step
// that the coordinate bound stays a consistent admissible lower bound.
// Congestion and demand only scale weights up from the base wirelength,
// which is exactly the coordinate displacement, so the bound must survive
// every state the router can put the fabric in.
func TestBoundsAdmissibleUnderCongestion(t *testing.T) {
	for _, segLens := range [][]int{nil, {1, 2, 4, 1}} {
		f := mustFabric(t, Arch{Cols: 4, Rows: 4, W: 4, Fs: 3, Fc: 2, PinsPerSide: 2, SegLens: segLens})
		rng := rand.New(rand.NewSource(42))
		checkEdgeConsistency(t, f, "base")
		checkAdmissibility(t, f, rng, "base")

		// Register demand for some future nets, then route and commit a few
		// 2-pin nets through real shortest paths.
		for i := 0; i < 6; i++ {
			f.AddPinDemand(randomPin(rng, f), 1)
		}
		for net := 0; net < 4; net++ {
			pa, pb := randomPin(rng, f), randomPin(rng, f)
			if pa == pb {
				continue
			}
			f.BeginNet([]Pin{pa, pb})
			checkEdgeConsistency(t, f, "after BeginNet")
			spt := f.Graph().DijkstraWithin(f.PinNode(pa), []graph.NodeID{f.PinNode(pb)})
			if !spt.Reachable(f.PinNode(pb)) {
				continue
			}
			f.CommitNet(graph.NewTree(f.Graph(), spt.PathTo(f.PinNode(pb))))
			checkEdgeConsistency(t, f, "after CommitNet")
		}
		checkAdmissibility(t, f, rng, "congested")

		// A goal-directed search on the congested fabric must agree with
		// plain Dijkstra on the goal distance.
		pa, pb := Pin{X: 0, Y: 0, Side: South, Index: 0}, Pin{X: 3, Y: 3, Side: North, Index: 1}
		f.BeginNet([]Pin{pa, pb})
		src, goal := f.PinNode(pa), f.PinNode(pb)
		ref := f.Graph().DijkstraWithin(src, []graph.NodeID{goal})
		ast := f.Graph().AStar(nil, src, goal, f.Bounds())
		if ref.Dist[goal] != ast.Dist[goal] {
			t.Fatalf("congested A* dist %v vs dijkstra %v", ast.Dist[goal], ref.Dist[goal])
		}

		f.Reset()
		checkEdgeConsistency(t, f, "after Reset")
		checkAdmissibility(t, f, rng, "after Reset")
	}
}

// TestBoundsTightOnBaseFabric pins the geometry: on an uncongested fabric
// the coordinate bound between two switch-block nodes equals the true
// shortest-path distance whenever a straight channel run exists (no slack
// lost to the encoding), which keeps A* maximally informed.
func TestBoundsTightOnBaseFabric(t *testing.T) {
	f := mustFabric(t, Arch{Cols: 4, Rows: 4, W: 2, Fs: 3, Fc: 2, PinsPerSide: 1})
	b := f.Bounds()
	u, v := f.sbNode(0, 2, 0), f.sbNode(4, 2, 0)
	spt := f.Graph().Dijkstra(u)
	if lb := b.LowerBound(u, v); lb != spt.Dist[v] {
		t.Fatalf("straight run: bound %v, true dist %v", lb, spt.Dist[v])
	}
}
