package fpga

import (
	"testing"

	"fpgarouter/internal/graph"
)

func TestAddPinDemandRaisesSpanWeights(t *testing.T) {
	f := mustFabric(t, Xilinx4000(3, 3, 2))
	f.DemandBeta, f.DemandGamma = 1, 0.5
	pin := Pin{X: 1, Y: 1, Side: North}
	span, sbA, _ := f.pinSpan(pin)
	_ = sbA
	before := make(map[graph.EdgeID]float64)
	for t2 := 0; t2 < f.W; t2++ {
		w := f.wireOf(span, t2)
		for _, e := range f.wireEdges[w] {
			before[e] = f.g.Weight(e)
		}
	}
	f.AddPinDemand(pin, +1)
	raised := false
	for e, w0 := range before {
		if f.g.Weight(e) > w0 {
			raised = true
		}
		if f.g.Weight(e) < w0-1e-12 {
			t.Fatal("demand lowered a weight")
		}
	}
	if !raised {
		t.Fatal("pin demand did not raise any span weight")
	}
	// Releasing the demand restores the original weights.
	f.AddPinDemand(pin, -1)
	for e, w0 := range before {
		if f.g.Weight(e) != w0 {
			t.Fatalf("weight not restored after release: edge %d", e)
		}
	}
}

func TestDemandGammaPrefersUndemandedWires(t *testing.T) {
	f := mustFabric(t, Xilinx4000(3, 3, 4))
	f.DemandBeta, f.DemandGamma = 0, 1 // isolate the per-wire term
	pin := Pin{X: 1, Y: 1, Side: North}
	f.AddPinDemand(pin, +1)
	span, _, _ := f.pinSpan(pin)
	pn := f.PinNode(pin)
	demanded := make(map[WireID]bool)
	for _, w := range f.pinWires[pn] {
		demanded[w] = true
	}
	// Wires of the span the pin taps must cost more than its other wires.
	var demandedW, otherW float64
	var nd, no int
	for t2 := 0; t2 < f.W; t2++ {
		w := f.wireOf(span, t2)
		for _, e := range f.wireEdges[w] {
			if f.baseW[e] != SegmentLength {
				continue // compare segment edges only
			}
			if demanded[w] {
				demandedW += f.g.Weight(e)
				nd++
			} else {
				otherW += f.g.Weight(e)
				no++
			}
		}
	}
	if nd == 0 || no == 0 {
		t.Skip("Fc covers all tracks; no undemanded wire to compare")
	}
	if demandedW/float64(nd) <= otherW/float64(no) {
		t.Fatal("demanded wires not more expensive than undemanded ones")
	}
}

func TestDemandScarcityGrowsWithUtilization(t *testing.T) {
	f := mustFabric(t, Xilinx4000(3, 3, 3))
	f.DemandBeta, f.DemandGamma = 1, 0
	pin := Pin{X: 0, Y: 0, Side: North}
	span, _, _ := f.pinSpan(pin)
	f.AddPinDemand(pin, +1)
	// Weight of a free segment edge in the span before and after claiming
	// a sibling wire.
	pickFree := func() (graph.EdgeID, bool) {
		for t2 := 0; t2 < f.W; t2++ {
			w := f.wireOf(span, t2)
			if f.claimed[w] {
				continue
			}
			for _, e := range f.wireEdges[w] {
				if f.baseW[e] == SegmentLength {
					return e, true
				}
			}
		}
		return 0, false
	}
	e0, ok := pickFree()
	if !ok {
		t.Fatal("no free edge")
	}
	w0 := f.g.Weight(e0)
	// Claim one wire of the span directly through CommitNet.
	var victim graph.EdgeID
	for t2 := 0; t2 < f.W; t2++ {
		w := f.wireOf(span, t2)
		victim = f.wireEdges[w][0]
		break
	}
	f.CommitNet(graph.NewTree(f.g, []graph.EdgeID{victim}))
	e1, ok := pickFree()
	if !ok {
		t.Skip("span exhausted")
	}
	if f.g.Weight(e1) <= w0 {
		t.Fatalf("scarcity did not grow: %v then %v", w0, f.g.Weight(e1))
	}
}

func TestBeginNetDisablesForeignPins(t *testing.T) {
	f := mustFabric(t, Xilinx4000(3, 3, 2))
	mine := Pin{X: 0, Y: 0, Side: North}
	other := Pin{X: 2, Y: 2, Side: South}
	f.BeginNet([]Pin{mine})
	if f.g.Degree(f.PinNode(mine)) == 0 {
		t.Fatal("own pin disabled")
	}
	if f.g.Degree(f.PinNode(other)) != 0 {
		t.Fatal("foreign pin still enabled")
	}
	// Switching nets flips the roles.
	f.BeginNet([]Pin{other})
	if f.g.Degree(f.PinNode(other)) == 0 || f.g.Degree(f.PinNode(mine)) != 0 {
		t.Fatal("BeginNet did not switch active pins")
	}
}

func TestBeginNetKeepsClaimedTapsDisabled(t *testing.T) {
	f := mustFabric(t, Xilinx4000(3, 3, 1)) // W=1: single wire per span
	pin := Pin{X: 1, Y: 1, Side: North}
	pn := f.PinNode(pin)
	// Claim the pin's only tap wire by committing a tree using it.
	f.BeginNet([]Pin{pin})
	tap := f.pinTaps[pn][0]
	f.CommitNet(graph.NewTree(f.g, []graph.EdgeID{tap}))
	f.BeginNet([]Pin{pin})
	for _, e := range f.pinTaps[pn] {
		if f.edgeWire[e] == f.edgeWire[tap] && f.g.Enabled(e) {
			t.Fatal("tap edge of a claimed wire re-enabled by BeginNet")
		}
	}
}
