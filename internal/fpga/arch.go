// Package fpga models symmetrical-array (island-style) FPGAs — the
// architecture of Section 2 and Figure 1 of Alexander & Robins (DAC 1995) —
// and constructs the routing graph of Figure 2 that the router operates on.
//
// The model follows the standard academic abstraction the paper shares with
// the CGE, SEGA and GBP routers (Brown et al.): an array of logic blocks,
// routing channels of W parallel tracks between them, switch blocks of
// flexibility Fs at channel intersections, and connection blocks of
// flexibility Fc joining logic-block pins to adjacent tracks.
//
// Graph encoding. A node is created per (switch block, track) and per
// logic-block pin. A channel wire segment on track t between two adjacent
// switch blocks is an edge between the corresponding (SB, t) nodes, weighted
// by its wirelength. Collapsing a switch block's four same-track sides into
// one node encodes the classic "disjoint" switch pattern (Fs = 3: a wire on
// track t can turn onto track t of any other side); architectures with
// Fs = 6 additionally get cheap intra-switch-block edges between
// neighbouring tracks. Connection blocks become pin-to-(SB, t) tap edges on
// Fc of the W tracks of each adjacent channel span. Every tap and segment
// edge belongs to a wire — the unit of electrical capacity — and committing
// a net claims whole wires (see Fabric.CommitNet).
package fpga

import "fmt"

// Side identifies a logic block side / pin position.
type Side int

// Logic block sides in clockwise order.
const (
	North Side = iota
	East
	South
	West
)

func (s Side) String() string {
	switch s {
	case North:
		return "N"
	case East:
		return "E"
	case South:
		return "S"
	case West:
		return "W"
	}
	return fmt.Sprintf("Side(%d)", int(s))
}

// Arch describes a symmetrical-array FPGA architecture.
type Arch struct {
	// Cols, Rows are the logic block array dimensions (e.g. busc is 12×13).
	Cols, Rows int
	// W is the channel width: the number of parallel tracks per channel.
	W int
	// Fs is the switch block flexibility: the number of other channel
	// edges a wire entering a switch block may connect to. The model
	// supports the two values used in the paper's experiments: 3 (the
	// disjoint pattern of the 4000-series tables) and 6 (3000-series,
	// disjoint plus neighbouring track on each side).
	Fs int
	// Fc is the connection block flexibility: how many of the W adjacent
	// tracks a logic block pin may connect to (1 ≤ Fc ≤ W).
	Fc int
	// PinsPerSide is the number of logic block pins per block side.
	PinsPerSide int
	// SegLens optionally assigns each track a wire segment length in
	// channel spans (nil = all single-length, the model of the paper's
	// experiments). A length-L wire is a single electrical wire spanning L
	// switch-block gaps, connecting only at its end switch blocks — the
	// double/long lines of real Xilinx 4000 channels. Lengths must be ≥ 1;
	// len(SegLens) must equal W when non-nil.
	SegLens []int
}

// SegLen returns the wire segment length of track t (1 when unsegmented).
func (a Arch) SegLen(t int) int {
	if a.SegLens == nil {
		return 1
	}
	return a.SegLens[t]
}

// Xilinx3000 returns the 3000-series architecture used in Table 2:
// Fs = 6 and Fc = ⌈0.6·W⌉.
func Xilinx3000(cols, rows, w int) Arch {
	fc := (6*w + 9) / 10 // ⌈0.6·w⌉
	if fc < 1 {
		fc = 1
	}
	return Arch{Cols: cols, Rows: rows, W: w, Fs: 6, Fc: fc, PinsPerSide: 2}
}

// Xilinx4000 returns the 4000-series architecture used in Tables 3–5:
// Fs = 3 (disjoint) and Fc = W.
func Xilinx4000(cols, rows, w int) Arch {
	return Arch{Cols: cols, Rows: rows, W: w, Fs: 3, Fc: w, PinsPerSide: 3}
}

// Validate reports whether the architecture parameters are consistent.
func (a Arch) Validate() error {
	switch {
	case a.Cols < 1 || a.Rows < 1:
		return fmt.Errorf("fpga: array %dx%d invalid", a.Cols, a.Rows)
	case a.W < 1:
		return fmt.Errorf("fpga: channel width %d invalid", a.W)
	case a.Fs != 3 && a.Fs != 6:
		return fmt.Errorf("fpga: Fs=%d unsupported (3 or 6)", a.Fs)
	case a.Fc < 1 || a.Fc > a.W:
		return fmt.Errorf("fpga: Fc=%d out of range [1,%d]", a.Fc, a.W)
	case a.PinsPerSide < 1:
		return fmt.Errorf("fpga: PinsPerSide=%d invalid", a.PinsPerSide)
	}
	if a.SegLens != nil {
		if len(a.SegLens) != a.W {
			return fmt.Errorf("fpga: %d segment lengths for width %d", len(a.SegLens), a.W)
		}
		for t, l := range a.SegLens {
			if l < 1 {
				return fmt.Errorf("fpga: track %d segment length %d invalid", t, l)
			}
		}
	}
	return nil
}

// WithWidth returns a copy of the architecture at channel width w,
// recomputing width-dependent flexibilities (Fc = ⌈0.6W⌉ for Fs = 6
// architectures, Fc = W for Fs = 3 ones), mirroring how the paper's
// experiments sweep W.
func (a Arch) WithWidth(w int) Arch {
	b := a
	b.W = w
	if a.Fs == 6 {
		b.Fc = (6*w + 9) / 10
		if b.Fc < 1 {
			b.Fc = 1
		}
	} else {
		b.Fc = w
	}
	return b
}

// Pin identifies a logic block pin: block coordinates, side, and the pin's
// index on that side.
type Pin struct {
	X, Y  int
	Side  Side
	Index int
}

func (p Pin) String() string {
	return fmt.Sprintf("(%d,%d).%v%d", p.X, p.Y, p.Side, p.Index)
}
