// Package core implements the paper's primary contributions: the Iterated
// Graph Minimal Steiner Tree (IGMST) template of Section 3, its IKMB and
// IZEL instantiations, and the Iterated Dominance (IDOM) arborescence
// heuristic of Section 4.2.
//
// The common idea: given a base construction H, greedily grow a set S of
// Steiner nodes, at each step admitting the candidate t that maximizes the
// cost savings ΔH(G, N, S∪{t}) = cost(H(G, N∪S)) − cost(H(G, N∪S∪{t})),
// and stop when no candidate yields positive savings. The final solution is
// H(G, N∪S); its performance bound is therefore never worse than H's.
package core

import (
	"time"

	"fpgarouter/internal/graph"
	"fpgarouter/internal/steiner"
)

// gainEps is the minimum cost savings considered an improvement; it guards
// against floating-point noise admitting useless Steiner points.
const gainEps = 1e-9

// Options tunes the iterated template. The zero value is the faithful
// one-candidate-per-round construction scanning all of V − N.
type Options struct {
	// Candidates restricts the Steiner-candidate pool. Nil means every node
	// of the graph (minus net and already-chosen points). The FPGA router
	// passes a bounding-box pool here, since scanning |V| > 5000 routing
	// graph nodes per round is needless (Section 3's "factoring out common
	// computations" discussion).
	Candidates []graph.NodeID
	// MaxRounds caps the number of accepted Steiner points (0 = unlimited).
	MaxRounds int
	// Batched enables batch addition: each round ranks all improving
	// candidates and admits them greedily in order of savings, re-admitting
	// only candidates that still improve the current solution, rather than
	// rescanning the full pool after every single admission. This is the
	// "batches based on a non-interference criterion" variant of Section 3
	// (after Kahng & Robins); typical instances converge in ≤ 3 rounds.
	Batched bool
	// Workers bounds the fan-out of each candidate-scan round: candidates
	// are sharded over this many goroutines, each evaluating H against its
	// own fork of the (frozen) shortest-paths cache. 0 selects the default
	// (GOMAXPROCS capped at 8); 1 or any negative value selects the inline
	// sequential scan, kept as the regression oracle. Results are
	// bit-identical at every setting: evaluations are reduced in pool order
	// with the sequential tie-break.
	Workers int
	// Lazy enables the lazy-greedy ("CELF"-style) candidate scan: each
	// candidate's last-known gain is kept as a stale priority, and a round
	// re-evaluates only the top of that queue — stale gains act as upper
	// bounds under the usual diminishing-returns behaviour of ΔH, so a
	// fresh head that still dominates the next stale entry wins the round
	// without touching the rest of the pool. Because ΔH under an arbitrary
	// base heuristic is not provably submodular, every fresh evaluation is
	// checked against its stale bound: a fresh gain that EXCEEDS its stale
	// value invalidates the queue and the round falls back to a full
	// rescan. Results are bit-identical to the exhaustive scan whenever
	// stale gains really are upper bounds (the Lazy parity suites assert
	// this); on instances where a never-re-evaluated candidate's gain
	// jumps, the scan may admit different Steiner points — still strictly
	// improving ones, so the template's cost bound holds — see lazyQueue
	// for the full exactness contract. Composes with Workers: queue bursts
	// fan out over the same forks, and the burst size is fixed so the
	// evaluated set (hence the result and every counter) is identical at
	// every Workers setting. The queue arms only for single-step
	// admission; under Batched the scans stay exhaustive (a batched round
	// consumes the whole improving-candidate ranking, so there is nothing
	// a stale bound can soundly skip — see lazyQueue).
	Lazy bool
}

// Stats reports work performed by an iterated construction, for the
// ablation benchmarks. The scan counters are int64 — a long min-width
// search multiplies rounds × pool × passes × widths, which a 32-bit int
// can overflow — matching the worker counters below and the stats layer.
type Stats struct {
	Rounds       int64 // candidate-scan rounds performed
	Evaluations  int64 // calls to the base heuristic H
	PointsChosen int64 // Steiner points admitted into S
	// LazyHits counts scan rounds the stale-gain queue served with a
	// partial evaluation (at least one candidate skipped); FullRescans
	// counts rounds that fell back to an exhaustive rescan after a fresh
	// gain exceeded its stale bound. EvaluationsSaved is the net number of
	// base-heuristic evaluations the lazy scan avoided versus the
	// exhaustive scan (negative contributions from fallback rounds, which
	// pay the burst and the rescan, are included), so for any run
	// Evaluations + EvaluationsSaved equals the exhaustive Evaluations.
	LazyHits         int64
	FullRescans      int64
	EvaluationsSaved int64
	// ParallelScans counts scan rounds that actually fanned out over more
	// than one worker goroutine.
	ParallelScans int
	// ScanWall and ScanCPU split the parallel scans' cost: total wall-clock
	// across rounds versus summed per-worker busy time. Their ratio is the
	// achieved scan parallelism (1.0 on a single hardware thread).
	ScanWall time.Duration
	ScanCPU  time.Duration
	// WorkerSSSPRuns and WorkerHeapPushes count Dijkstra work performed
	// inside worker forks during parallel scans. It bypasses the caller's
	// scratch, whose counter deltas the router feeds to its stats layer, so
	// the router adds these separately.
	WorkerSSSPRuns   int64
	WorkerHeapPushes int64
}

// IGMST runs the iterated template of Figure 5 over base heuristic H.
// net[0] is the source (relevant only to H's tie-breaking); the returned
// tree spans net and costs no more than H(G, net).
func IGMST(cache *graph.SPTCache, net []graph.NodeID, H steiner.Heuristic, opts Options) (graph.Tree, error) {
	t, _, err := IGMSTStats(cache, net, H, opts)
	return t, err
}

// IGMSTStats is IGMST returning work statistics.
func IGMSTStats(cache *graph.SPTCache, net []graph.NodeID, H steiner.Heuristic, opts Options) (graph.Tree, Stats, error) {
	var st Stats
	best, err := H(cache, net)
	if err != nil {
		return graph.Tree{}, st, err
	}
	st.Evaluations++
	if len(net) <= 2 {
		// A Steiner point can never improve a single shortest path (by the
		// triangle inequality), so skip the candidate scan entirely.
		return best, st, nil
	}
	// Force-cache shortest-path trees for every established node. With all
	// of N ∪ S cached, a candidate evaluation only ever pairs the (single,
	// uncached) candidate with cached nodes, so the cache's symmetric
	// lookup never falls back to a Dijkstra rooted at a candidate — one
	// such fallback per candidate would dominate the whole construction.
	for _, v := range net {
		cache.Tree(v)
	}

	inNS := make(map[graph.NodeID]bool, len(net))
	for _, v := range net {
		inNS[v] = true
	}
	pool := candidatePool(cache.Graph(), opts.Candidates)
	spanned := append([]graph.NodeID(nil), net...) // N ∪ S
	// The scanner owns the per-worker forks of the cache (sequential when
	// Workers resolves to 1). Between scans the cache is mutated freely —
	// admissions cache new established trees — because the forks are only
	// ever read inside scan, never concurrently with an admission.
	sc := newScanner(cache, H, opts)
	defer sc.close()
	// The lazy queue (nil when off) decides per round which candidates are
	// worth re-evaluating; exhaustive rounds go through sc.scan unchanged.
	// Both return evaluations in pool order, so the selection fold below is
	// shared verbatim. Batched admission never arms the queue: it consumes
	// the whole improving-candidate ranking, which stale bounds cannot
	// soundly prune (see lazyQueue's doc comment).
	var lz *lazyQueue
	if opts.Lazy && !opts.Batched {
		lz = newLazyQueue(pool)
	}

	for {
		st.Rounds++
		var evals []scanEval
		if lz != nil {
			evals = lz.round(&st, sc, best.Cost, spanned, inNS, pool)
		} else {
			evals = sc.scan(&st, spanned, inNS, pool)
		}
		if opts.Batched {
			admitted := false
			// Rank all improving candidates by savings against the round's
			// starting solution, then admit greedily.
			type cand struct {
				t    graph.NodeID
				gain float64
			}
			var cands []cand
			for _, ev := range evals {
				if ev.err != nil {
					continue
				}
				if g := best.Cost - ev.sol.Cost; g > gainEps {
					cands = append(cands, cand{ev.t, g})
				}
			}
			sortCands(cands, func(a, b cand) bool {
				if a.gain != b.gain {
					return a.gain > b.gain
				}
				return a.t < b.t
			})
			for _, c := range cands {
				sol, err := H(cache, withTerm(&sc.termBuf, spanned, c.t))
				st.Evaluations++
				if err != nil {
					continue
				}
				if best.Cost-sol.Cost > gainEps {
					spanned = append(spanned, c.t)
					inNS[c.t] = true
					cache.Tree(c.t) // keep every established node cached
					best = sol
					st.PointsChosen++
					admitted = true
					if opts.MaxRounds > 0 && st.PointsChosen >= int64(opts.MaxRounds) {
						return best, st, nil
					}
				}
			}
			if !admitted {
				return best, st, nil
			}
		} else {
			bestGain := 0.0
			bestT := graph.None
			var bestSol graph.Tree
			for _, ev := range evals {
				if ev.err != nil {
					continue
				}
				// Strict improvement over the best gain so far; evals are in
				// deterministic pool order, so ties keep the first hit.
				if g := best.Cost - ev.sol.Cost; g > bestGain+gainEps {
					bestGain = g
					bestT = ev.t
					bestSol = ev.sol
				}
			}
			if bestT == graph.None {
				return best, st, nil
			}
			spanned = append(spanned, bestT)
			inNS[bestT] = true
			cache.Tree(bestT) // keep every established node cached
			best = bestSol
			st.PointsChosen++
			if opts.MaxRounds > 0 && st.PointsChosen >= int64(opts.MaxRounds) {
				return best, st, nil
			}
		}
	}
}

// IKMB is the IGMST template instantiated with the KMB heuristic
// (performance bound ≤ 2·(1−1/L)); this is the algorithm the paper's FPGA
// router uses for non-critical nets in Tables 2 and 3.
func IKMB(cache *graph.SPTCache, net []graph.NodeID) (graph.Tree, error) {
	return IGMST(cache, net, steiner.KMB, Options{})
}

// IZEL is the IGMST template instantiated with Zelikovsky's heuristic
// (performance bound ≤ 11/6), the strongest Steiner construction evaluated
// in Table 1.
func IZEL(cache *graph.SPTCache, net []graph.NodeID) (graph.Tree, error) {
	return IGMST(cache, net, steiner.ZEL, Options{})
}

// ISPH is the IGMST template instantiated with the Takahashi–Matsuyama
// shortest-paths heuristic (bound ≤ 2·(1−1/L)). The paper's template
// accepts *any* base heuristic; ISPH demonstrates that genericity with a
// base construction of a different character than KMB.
func ISPH(cache *graph.SPTCache, net []graph.NodeID) (graph.Tree, error) {
	return IGMST(cache, net, steiner.SPH, Options{})
}

// candidatePool returns the candidate node list: the provided pool, or all
// nodes of g.
func candidatePool(g *graph.Graph, pool []graph.NodeID) []graph.NodeID {
	if pool != nil {
		return pool
	}
	all := make([]graph.NodeID, g.NumNodes())
	for i := range all {
		all[i] = graph.NodeID(i)
	}
	return all
}

// sortCands is a tiny insertion-free sort wrapper kept local to avoid
// importing sort with a closure adapter at every call site.
func sortCands[T any](s []T, less func(a, b T) bool) {
	// Simple binary-insertion sort: candidate lists are short (only the
	// improving candidates of one round).
	for i := 1; i < len(s); i++ {
		j := i
		for j > 0 && less(s[j], s[j-1]) {
			s[j], s[j-1] = s[j-1], s[j]
			j--
		}
	}
}
