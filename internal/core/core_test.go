package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpgarouter/internal/arbor"
	"fpgarouter/internal/graph"
	"fpgarouter/internal/steiner"
)

func cacheFor(g *graph.Graph) *graph.SPTCache { return graph.NewSPTCache(g) }

// star returns a star graph: center node 0, leaves 1..k with unit spokes.
func star(k int) *graph.Graph {
	g := graph.New(k + 1)
	for i := 1; i <= k; i++ {
		g.AddEdge(0, graph.NodeID(i), 1)
	}
	return g
}

// hubGadget is the classic KMB near-worst case: l terminals on a cycle of
// edges weighing cycleW, plus a hub reachable by unit spokes. KMB (driven
// by the terminal distance graph) pays (l−1)·cycleW; the optimum is the
// l-spoke star of cost l. IKMB recovers the hub.
func hubGadget(l int, cycleW float64) (*graph.Graph, []graph.NodeID) {
	g := graph.New(l + 1)
	hub := graph.NodeID(l)
	net := make([]graph.NodeID, l)
	for i := 0; i < l; i++ {
		net[i] = graph.NodeID(i)
		g.AddEdge(graph.NodeID(i), hub, 1)
	}
	for i := 0; i < l; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%l), cycleW)
	}
	return g, net
}

func TestIKMBStarStaysOptimal(t *testing.T) {
	// On a star whose leaves form the net, KMB's second MST pass already
	// recovers the optimum; IKMB must not make it worse.
	g := star(4)
	c := cacheFor(g)
	net := []graph.NodeID{1, 2, 3, 4}
	ikmb, err := IKMB(c, net)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.ValidateTree(g, ikmb, net); err != nil {
		t.Fatal(err)
	}
	if ikmb.Cost != 4 {
		t.Fatalf("IKMB cost = %v, want 4", ikmb.Cost)
	}
}

func TestIKMBOnKMBWorstCase(t *testing.T) {
	// Hub gadget where KMB pays nearly 2×OPT: IKMB must recover the hub.
	g, net := hubGadget(6, 1.99)
	c := cacheFor(g)
	kmb, err := steiner.KMB(c, net)
	if err != nil {
		t.Fatal(err)
	}
	ikmb, err := IKMB(c, net)
	if err != nil {
		t.Fatal(err)
	}
	if ikmb.Cost != 6 {
		t.Fatalf("IKMB cost = %v, want 6 (hub)", ikmb.Cost)
	}
	if kmb.Cost <= ikmb.Cost {
		t.Fatalf("gadget broken: KMB %v should exceed IKMB %v", kmb.Cost, ikmb.Cost)
	}
}

func TestIZELNeverWorseThanZEL(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomConnected(rng, 20, 60, 5)
		net := graph.RandomNet(rng, g, 5)
		c := cacheFor(g)
		zel, err := steiner.ZEL(c, net)
		if err != nil {
			t.Fatal(err)
		}
		izel, err := IZEL(c, net)
		if err != nil {
			t.Fatal(err)
		}
		if izel.Cost > zel.Cost+1e-9 {
			t.Fatalf("trial %d: IZEL %v > ZEL %v", trial, izel.Cost, zel.Cost)
		}
		if err := graph.ValidateTree(g, izel, net); err != nil {
			t.Fatal(err)
		}
	}
}

func TestIDOMNeverWorseThanDOMAndIsArborescence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomConnected(rng, 25, 80, 5)
		net := graph.RandomNet(rng, g, 5)
		c := cacheFor(g)
		dom, err := arbor.DOM(c, net)
		if err != nil {
			t.Fatal(err)
		}
		idom, err := IDOM(c, net)
		if err != nil {
			t.Fatal(err)
		}
		if idom.Cost > dom.Cost+1e-9 {
			t.Fatalf("trial %d: IDOM %v > DOM %v", trial, idom.Cost, dom.Cost)
		}
		if err := arbor.VerifyArborescence(c, idom, net); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestIDOMMergesSiblingSinks(t *testing.T) {
	// Source (0,0); sinks (2,1) and (1,2): DOM alone cannot share wire
	// deterministically, but IDOM admits (1,1) as a Steiner point and
	// reaches the optimal arborescence cost 4.
	g := graph.NewGrid(3, 3, 1)
	c := cacheFor(g.Graph)
	net := []graph.NodeID{g.Node(0, 0), g.Node(2, 1), g.Node(1, 2)}
	idom, err := IDOM(c, net)
	if err != nil {
		t.Fatal(err)
	}
	if idom.Cost != 4 {
		t.Fatalf("IDOM cost = %v, want 4", idom.Cost)
	}
	if err := arbor.VerifyArborescence(c, idom, net); err != nil {
		t.Fatal(err)
	}
}

func TestIGMSTCandidateRestriction(t *testing.T) {
	// With the pool restricted to a non-improving node, IGMST returns the
	// plain KMB solution.
	g := star(4)
	c := cacheFor(g)
	net := []graph.NodeID{1, 2, 3, 4}
	kmb, _ := steiner.KMB(c, net)
	restricted, err := IGMST(c, net, steiner.KMB, Options{Candidates: []graph.NodeID{1}})
	if err != nil {
		t.Fatal(err)
	}
	if restricted.Cost != kmb.Cost {
		t.Fatalf("restricted IGMST %v != KMB %v", restricted.Cost, kmb.Cost)
	}
	// With the center in the pool the optimum is found.
	full, err := IGMST(c, net, steiner.KMB, Options{Candidates: []graph.NodeID{0}})
	if err != nil {
		t.Fatal(err)
	}
	if full.Cost != 4 {
		t.Fatalf("pooled IGMST cost = %v, want 4", full.Cost)
	}
}

func TestIGMSTMaxRounds(t *testing.T) {
	// Two independent star gadgets sharing a net: MaxRounds=1 admits only
	// the single best Steiner point.
	g := star(4)
	c := cacheFor(g)
	net := []graph.NodeID{1, 2, 3, 4}
	_, st, err := IGMSTStats(c, net, steiner.KMB, Options{MaxRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.PointsChosen > 1 {
		t.Fatalf("PointsChosen = %d, want ≤ 1", st.PointsChosen)
	}
}

func TestIGMSTBatchedMatchesQualityClass(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 8; trial++ {
		g := graph.RandomConnected(rng, 20, 60, 5)
		net := graph.RandomNet(rng, g, 5)
		c := cacheFor(g)
		kmb, err := steiner.KMB(c, net)
		if err != nil {
			t.Fatal(err)
		}
		batched, err := IGMST(c, net, steiner.KMB, Options{Batched: true})
		if err != nil {
			t.Fatal(err)
		}
		if batched.Cost > kmb.Cost+1e-9 {
			t.Fatalf("trial %d: batched %v > KMB %v", trial, batched.Cost, kmb.Cost)
		}
		if err := graph.ValidateTree(g, batched, net); err != nil {
			t.Fatal(err)
		}
	}
}

func TestIGMSTStatsCountsWork(t *testing.T) {
	g, net := hubGadget(5, 1.9)
	c := cacheFor(g)
	_, st, err := IGMSTStats(c, net, steiner.KMB, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Evaluations < 2 || st.Rounds < 1 || st.PointsChosen != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestIGMSTPropagatesNoRoute(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	c := cacheFor(g)
	if _, err := IKMB(c, []graph.NodeID{0, 2}); err == nil {
		t.Fatal("disconnected net accepted")
	}
}

// Property: IKMB is sandwiched between OPT and KMB; IDOM between the
// optimal Steiner cost (a lower bound for arborescences) and DOM.
func TestQuickIteratedBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(12)
		g := graph.RandomConnected(rng, n, n*2, 6)
		k := 2 + rng.Intn(3)
		if k > n {
			k = n
		}
		net := graph.RandomNet(rng, g, k)
		c := cacheFor(g)
		opt, err := steiner.ExactCost(c, net)
		if err != nil {
			return false
		}
		kmb, err := steiner.KMB(c, net)
		if err != nil {
			return false
		}
		ikmb, err := IKMB(c, net)
		if err != nil {
			return false
		}
		if ikmb.Cost < opt-1e-9 || ikmb.Cost > kmb.Cost+1e-9 {
			return false
		}
		dom, err := arbor.DOM(c, net)
		if err != nil {
			return false
		}
		idom, err := IDOM(c, net)
		if err != nil {
			return false
		}
		if idom.Cost < opt-1e-9 || idom.Cost > dom.Cost+1e-9 {
			return false
		}
		return arbor.VerifyArborescence(c, idom, net) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestISPHNeverWorseThanSPH(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomConnected(rng, 20, 60, 5)
		net := graph.RandomNet(rng, g, 5)
		c := cacheFor(g)
		sph, err := steiner.SPH(c, net)
		if err != nil {
			t.Fatal(err)
		}
		isph, err := ISPH(c, net)
		if err != nil {
			t.Fatal(err)
		}
		if isph.Cost > sph.Cost+1e-9 {
			t.Fatalf("trial %d: ISPH %v > SPH %v", trial, isph.Cost, sph.Cost)
		}
		if err := graph.ValidateTree(g, isph, net); err != nil {
			t.Fatal(err)
		}
	}
}

func TestISPHRecoversHub(t *testing.T) {
	g, net := hubGadget(6, 1.99)
	c := cacheFor(g)
	isph, err := ISPH(c, net)
	if err != nil {
		t.Fatal(err)
	}
	if isph.Cost != 6 {
		t.Fatalf("ISPH cost = %v, want 6 (hub)", isph.Cost)
	}
}
