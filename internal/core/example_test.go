package core_test

import (
	"fmt"

	"fpgarouter/internal/arbor"
	"fpgarouter/internal/core"
	"fpgarouter/internal/graph"
	"fpgarouter/internal/steiner"
)

// Route a 4-pin net on a grid with KMB and its iterated form: the template
// admits Steiner points that plain KMB misses.
func ExampleIKMB() {
	g := graph.NewGrid(5, 5, 1)
	net := []graph.NodeID{g.Node(0, 0), g.Node(4, 0), g.Node(0, 4), g.Node(3, 3)}
	cache := graph.NewSPTCache(g.Graph)

	kmb, _ := steiner.KMB(cache, net)
	ikmb, _ := core.IKMB(cache, net)
	fmt.Printf("KMB %.0f, IKMB %.0f\n", kmb.Cost, ikmb.Cost)
	// Output: KMB 12, IKMB 11
}

// IDOM builds a shortest-paths tree (every source-sink path optimal) while
// folding paths to save wirelength.
func ExampleIDOM() {
	g := graph.NewGrid(5, 5, 1)
	net := []graph.NodeID{g.Node(0, 0), g.Node(4, 2), g.Node(2, 4), g.Node(4, 4)}
	cache := graph.NewSPTCache(g.Graph)

	tree, _ := core.IDOM(cache, net)
	// Verify the arborescence property: max pathlength equals the longest
	// shortest-path distance.
	if err := arbor.VerifyArborescence(cache, tree, net); err != nil {
		fmt.Println("not an arborescence:", err)
		return
	}
	maxPath := graph.MaxPathlength(g.Graph, tree, net[0], net[1:])
	fmt.Printf("wirelength %.0f, max path %.0f (optimal)\n", tree.Cost, maxPath)
	// Output: wirelength 10, max path 8 (optimal)
}

// The template accepts any base heuristic H; its output never costs more
// than H's.
func ExampleIGMST() {
	g := graph.NewGrid(4, 4, 1)
	net := []graph.NodeID{g.Node(0, 0), g.Node(3, 0), g.Node(0, 3)}
	cache := graph.NewSPTCache(g.Graph)

	tree, _ := core.IGMST(cache, net, steiner.SPH, core.Options{Batched: true})
	fmt.Printf("cost %.0f\n", tree.Cost)
	// Output: cost 6
}
