package core

import (
	"testing"

	"fpgarouter/internal/arbor"
	"fpgarouter/internal/graph"
	"fpgarouter/internal/steiner"
)

// TestFigure6Walkthrough reconstructs the IKMB execution example of the
// paper's Figure 6: a 4-terminal instance where plain KMB settles on
// terminal-to-terminal edges, and the iterated template then admits two
// Steiner points one at a time, each with positive ΔKMB, ending at the
// optimal tree through both (the paper's cost sequence is 7 → 6 → 5; this
// instance uses 6.7 → 5.9 → 5.0 to keep the shortest paths unique, which
// exercises the identical decision sequence).
func TestFigure6Walkthrough(t *testing.T) {
	// Terminals A,B,C,D = 0..3; Steiner points S2 = 4 (between A and B)
	// and S3 = 5 (between C and D). Direct terminal edges are slightly
	// cheaper than the Steiner detours so KMB's distance graph ignores the
	// Steiner structure entirely.
	g := graph.New(6)
	const (
		A, B, C, D, S2, S3 = 0, 1, 2, 3, 4, 5
	)
	g.AddEdge(A, B, 1.9)
	g.AddEdge(C, D, 1.9)
	g.AddEdge(A, C, 2.9)
	g.AddEdge(B, D, 2.9)
	g.AddEdge(A, S2, 1)
	g.AddEdge(B, S2, 1)
	g.AddEdge(S2, S3, 1)
	g.AddEdge(C, S3, 1)
	g.AddEdge(D, S3, 1)
	net := []graph.NodeID{A, B, C, D}
	c := cacheFor(g)

	kmb, err := steiner.KMB(c, net)
	if err != nil {
		t.Fatal(err)
	}
	if kmb.Cost < 6.7-1e-9 || kmb.Cost > 6.7+1e-9 {
		t.Fatalf("initial KMB cost = %v, want 6.7 (direct edges only)", kmb.Cost)
	}

	// One round of the template admits the first Steiner point...
	one, st1, err := IGMSTStats(c, net, steiner.KMB, Options{MaxRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st1.PointsChosen != 1 || one.Cost >= kmb.Cost {
		t.Fatalf("first round: %d points, cost %v (from %v)", st1.PointsChosen, one.Cost, kmb.Cost)
	}

	// ...and running to convergence admits both, reaching the optimum 5.
	full, st2, err := IGMSTStats(c, net, steiner.KMB, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st2.PointsChosen != 2 {
		t.Fatalf("points admitted = %d, want 2 (S2 and S3)", st2.PointsChosen)
	}
	if full.Cost != 5 {
		t.Fatalf("final IKMB cost = %v, want 5", full.Cost)
	}
	opt, err := steiner.ExactCost(c, net)
	if err != nil {
		t.Fatal(err)
	}
	if full.Cost != opt {
		t.Fatalf("IKMB %v should match the optimum %v on this instance", full.Cost, opt)
	}
}

// TestFigure13Walkthrough reconstructs the IDOM execution example of the
// paper's Figure 13: the initial DOM solution connects each sink straight
// to the source at cost 8, and iterated dominance ends at the optimal
// arborescence of cost 5 through both Steiner points — the figure's exact
// start and end states. One deliberate difference: the paper's abstract
// walk-through takes two rounds (8 → 6 → 5); our DOM unions connection
// paths and extracts a shortest-paths tree, so as soon as ANY node of the
// S2–S3 trunk is admitted the whole folded structure appears and a single
// round reaches 5. That is DOM being strictly stronger per evaluation, not
// a divergence in the greedy template.
func TestFigure13Walkthrough(t *testing.T) {
	// Source A = 0, sinks B,C,D = 1..3, Steiner points S2 = 4, S3 = 5.
	// Direct edges (inserted first, so Dijkstra's first-relaxation tie
	// break keeps them in the shortest-paths tree) give DOM its cost-8
	// baseline; the Steiner structure offers equal-cost paths that only
	// the iterated dominance selection exploits.
	g := graph.New(6)
	const (
		A, B, C, D, S2, S3 = 0, 1, 2, 3, 4, 5
	)
	g.AddEdge(A, B, 2)
	g.AddEdge(A, C, 3)
	g.AddEdge(A, D, 3)
	g.AddEdge(A, S2, 1)
	g.AddEdge(S2, B, 1)
	g.AddEdge(S2, S3, 1)
	g.AddEdge(A, S3, 2)
	g.AddEdge(S3, C, 1)
	g.AddEdge(S3, D, 1)
	net := []graph.NodeID{A, B, C, D}
	c := cacheFor(g)

	dom, err := arbor.DOM(c, net)
	if err != nil {
		t.Fatal(err)
	}
	if dom.Cost != 8 {
		t.Fatalf("initial DOM cost = %v, want 8", dom.Cost)
	}

	// A single admitted candidate already folds the full trunk (see the
	// function comment): the first round reaches the optimum.
	one, st1, err := IGMSTStats(c, net, arbor.DOM, Options{MaxRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st1.PointsChosen != 1 || one.Cost != 5 {
		t.Fatalf("first round: %d points, cost %v, want 1 point at cost 5", st1.PointsChosen, one.Cost)
	}

	full, st2, err := IDOMStats(c, net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st2.PointsChosen < 1 || full.Cost != 5 {
		t.Fatalf("final: %d points at cost %v, want ≥1 point at cost 5", st2.PointsChosen, full.Cost)
	}
	if err := arbor.VerifyArborescence(c, full, net); err != nil {
		t.Fatal(err)
	}
	// Every source-sink path in the final tree is still shortest: B at 2,
	// C and D at 3.
	dists := graph.TreeDists(g, full, A)
	if dists[B] != 2 || dists[C] != 3 || dists[D] != 3 {
		t.Fatalf("pathlengths %v/%v/%v, want 2/3/3", dists[B], dists[C], dists[D])
	}
}
