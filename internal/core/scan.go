package core

import (
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"fpgarouter/internal/faultpoint"
	"fpgarouter/internal/graph"
	"fpgarouter/internal/steiner"
)

// maxScanWorkers caps the default candidate-scan fan-out; beyond eight
// workers the per-round sharding overhead outweighs the shrinking shards on
// the pool sizes the router produces (≤ 1024 candidates).
const maxScanWorkers = 8

// scanWorkers resolves Options.Workers: 0 means GOMAXPROCS capped at
// maxScanWorkers, anything below 1 means the sequential reference scan.
func scanWorkers(opts Options) int {
	w := opts.Workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
		if w > maxScanWorkers {
			w = maxScanWorkers
		}
	}
	if w < 1 {
		w = 1
	}
	return w
}

// scanEval is one candidate's outcome in a scan round. Rounds produce evals
// in pool order regardless of how the scan was sharded, so every reduction
// over them reproduces the sequential scan's tie-breaking exactly.
type scanEval struct {
	t   graph.NodeID
	sol graph.Tree
	err error
}

// scanner evaluates the base heuristic over a round's candidate pool,
// either inline on the shared cache (workers == 1, the regression oracle)
// or sharded over worker goroutines. Each worker owns a Fork of the cache —
// a read-only view of every established tree plus a private scratch for the
// epoch sets and any candidate-rooted Dijkstra runs — so concurrent
// evaluations share no mutable state. Forks persist across rounds to keep
// their scratch warm; close returns them to the process-wide pool.
type scanner struct {
	cache   *graph.SPTCache
	H       steiner.Heuristic
	workers int
	forks   []*graph.SPTCache // per-worker cache views (nil when sequential)
	bufs    [][]graph.NodeID  // per-worker terminal buffers
	termBuf []graph.NodeID    // terminal buffer for inline evaluations
	targets []graph.NodeID    // current round's candidates, in pool order
	evals   []scanEval        // reused result buffer
	// workerRuns/workerPushes stage each worker's Dijkstra counter deltas
	// for the round so the reducer can fold them into Stats without racing.
	workerRuns   []int64
	workerPushes []int64
	// panics[k] captures a panic recovered on worker k so it can be
	// re-raised on the calling goroutine after the round's barrier — a raw
	// panic on a worker goroutine would kill the whole process, bypassing
	// the service's per-job isolation. poisoned[k] marks that worker's fork
	// scratch as mid-run-interrupted; close discards it instead of pooling.
	panics   []*faultpoint.GoroutinePanic
	poisoned []bool
}

func newScanner(cache *graph.SPTCache, H steiner.Heuristic, opts Options) *scanner {
	s := &scanner{cache: cache, H: H, workers: scanWorkers(opts)}
	if s.workers > 1 {
		s.forks = make([]*graph.SPTCache, s.workers)
		s.bufs = make([][]graph.NodeID, s.workers)
		s.workerRuns = make([]int64, s.workers)
		s.workerPushes = make([]int64, s.workers)
		s.panics = make([]*faultpoint.GoroutinePanic, s.workers)
		s.poisoned = make([]bool, s.workers)
		for i := range s.forks {
			s.forks[i] = cache.Fork(graph.AcquireScratch())
		}
	}
	return s
}

// close releases every worker fork: private trees recycle into the fork's
// scratch, which then returns to the pool. A fork whose worker panicked
// mid-evaluation is discarded whole — its scratch may hold a half-built
// run, and a dropped scratch is cheaper than a poisoned pool.
func (s *scanner) close() {
	for i, f := range s.forks {
		scr := f.Scratch()
		if s.poisoned != nil && s.poisoned[i] {
			graph.DiscardScratch(scr)
			continue
		}
		f.Release()
		graph.ReleaseScratch(scr)
	}
	s.forks = nil
}

// withTerm writes spanned followed by t into *buf (grown as needed) and
// returns the slice. Every evaluation gets a terminal list that never
// aliases spanned's backing array: the previous append(spanned, t) idiom
// reused that array across evaluations once capacity allowed, which is a
// data race under the parallel scan and a retention footgun even inline.
func withTerm(buf *[]graph.NodeID, spanned []graph.NodeID, t graph.NodeID) []graph.NodeID {
	n := len(spanned) + 1
	if cap(*buf) < n {
		*buf = make([]graph.NodeID, 0, n+8)
	}
	terms := append((*buf)[:0], spanned...)
	terms = append(terms, t)
	*buf = terms
	return terms
}

// scan evaluates H(G, spanned ∪ {t}) for every pool candidate t not in inNS,
// returning outcomes in pool order and accounting the work into st. The
// returned slice is reused by the next round.
func (s *scanner) scan(st *Stats, spanned []graph.NodeID, inNS map[graph.NodeID]bool, pool []graph.NodeID) []scanEval {
	s.targets = s.targets[:0]
	for _, t := range pool {
		if !inNS[t] {
			s.targets = append(s.targets, t)
		}
	}
	return s.evaluate(st, spanned)
}

// evaluate runs H over s.targets (set by the caller), inline on the shared
// cache or sharded over the worker forks, returning outcomes in target order.
// The lazy scan calls this directly with queue bursts; the returned slice is
// reused by the next evaluation.
func (s *scanner) evaluate(st *Stats, spanned []graph.NodeID) []scanEval {
	n := len(s.targets)
	st.Evaluations += int64(n)
	if cap(s.evals) < n {
		s.evals = make([]scanEval, n)
	}
	evals := s.evals[:n]
	if s.workers == 1 || n < 2 {
		for i, t := range s.targets {
			sol, err := s.H(s.cache, withTerm(&s.termBuf, spanned, t))
			evals[i] = scanEval{t, sol, err}
		}
		return evals
	}
	w := s.workers
	if w > n {
		w = n
	}
	per := (n + w - 1) / w
	cpu := make([]time.Duration, w)
	start := time.Now()
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		s.workerRuns[k], s.workerPushes[k] = 0, 0
		lo, hi := k*per, min((k+1)*per, n)
		if lo >= hi {
			continue
		}
		s.panics[k] = nil
		wg.Add(1)
		go func(k, lo, hi int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					// Capture the stack here, while the panicking frames are
					// still on this goroutine; the barrier re-raises below.
					s.panics[k] = &faultpoint.GoroutinePanic{Value: p, Stack: debug.Stack()}
					s.poisoned[k] = true
				}
			}()
			t0 := time.Now()
			fork := s.forks[k]
			scr := fork.Scratch()
			runs0, pushes0 := scr.Runs, scr.HeapPushes
			for i := lo; i < hi; i++ {
				faultpoint.Check(faultpoint.ScanWorker)
				t := s.targets[i]
				sol, err := s.H(fork, withTerm(&s.bufs[k], spanned, t))
				evals[i] = scanEval{t, sol, err}
			}
			s.workerRuns[k] = scr.Runs - runs0
			s.workerPushes[k] = scr.HeapPushes - pushes0
			cpu[k] = time.Since(t0)
		}(k, lo, hi)
	}
	wg.Wait()
	// Re-raise the lowest-indexed worker panic on the owning goroutine
	// (deterministic when several workers fail the same round). IGMSTStats'
	// deferred scanner close runs during the unwind and discards the
	// poisoned forks.
	for k := 0; k < w; k++ {
		if s.panics[k] != nil {
			panic(s.panics[k])
		}
	}
	st.ParallelScans++
	st.ScanWall += time.Since(start)
	for _, d := range cpu {
		st.ScanCPU += d
	}
	for k := 0; k < w; k++ {
		st.WorkerSSSPRuns += s.workerRuns[k]
		st.WorkerHeapPushes += s.workerPushes[k]
	}
	return evals
}
