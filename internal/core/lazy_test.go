package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"fpgarouter/internal/arbor"
	"fpgarouter/internal/graph"
	"fpgarouter/internal/steiner"
)

// TestLazyScanParity asserts the lazy engine's exactness contract: with
// Options.Lazy on, IGMSTStats produces bit-identical trees and identical
// admission counters versus the exhaustive scan, at every Workers setting,
// for every base heuristic in both admission modes — on these fixtures,
// where stale gains stay valid upper bounds or any violation surfaces in a
// re-evaluated candidate and trips the fallback (see lazyQueue's doc for
// the instances where identity can be lost). It also pins
// the accounting identity Evaluations + EvaluationsSaved == exhaustive
// Evaluations, and that the lazy counters themselves are worker-invariant
// (the burst size is fixed, so the evaluated set never depends on fan-out).
func TestLazyScanParity(t *testing.T) {
	bases := []struct {
		name string
		H    steiner.Heuristic
	}{
		{"kmb", steiner.KMB},
		{"sph", steiner.SPH},
		{"zel", steiner.ZEL},
		{"dom", arbor.DOM},
	}
	for _, seed := range []int64{3, 17} {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(rng, 80, 400, 10)
		net := graph.RandomNet(rng, g, 6)
		for _, base := range bases {
			for _, batched := range []bool{false, true} {
				t.Run(fmt.Sprintf("%s/seed%d/batched=%v", base.name, seed, batched), func(t *testing.T) {
					run := func(lazy bool, workers int) (graph.Tree, Stats) {
						cache := graph.NewSPTCache(g)
						defer cache.Release()
						tree, st, err := IGMSTStats(cache, net, base.H, Options{Batched: batched, Workers: workers, Lazy: lazy})
						if err != nil {
							t.Fatalf("lazy=%v workers=%d: %v", lazy, workers, err)
						}
						return tree, st
					}
					refTree, refStats := run(false, 1)
					lazyRef := Stats{}
					for i, w := range []int{1, 0, 2, 8} {
						tree, st := run(true, w)
						if !reflect.DeepEqual(tree, refTree) {
							t.Fatalf("lazy workers=%d tree diverges from exhaustive:\n got %+v\nwant %+v", w, tree, refTree)
						}
						if st.Rounds != refStats.Rounds || st.PointsChosen != refStats.PointsChosen {
							t.Fatalf("lazy workers=%d rounds/points {%d %d}, exhaustive {%d %d}",
								w, st.Rounds, st.PointsChosen, refStats.Rounds, refStats.PointsChosen)
						}
						if st.Evaluations+st.EvaluationsSaved != refStats.Evaluations {
							t.Fatalf("lazy workers=%d evaluations %d + saved %d != exhaustive %d",
								w, st.Evaluations, st.EvaluationsSaved, refStats.Evaluations)
						}
						if i == 0 {
							lazyRef = st
							continue
						}
						if st.Evaluations != lazyRef.Evaluations || st.EvaluationsSaved != lazyRef.EvaluationsSaved ||
							st.LazyHits != lazyRef.LazyHits || st.FullRescans != lazyRef.FullRescans {
							t.Fatalf("lazy workers=%d counters {ev %d saved %d hits %d rescans %d} differ from workers=1 {ev %d saved %d hits %d rescans %d}",
								w, st.Evaluations, st.EvaluationsSaved, st.LazyHits, st.FullRescans,
								lazyRef.Evaluations, lazyRef.EvaluationsSaved, lazyRef.LazyHits, lazyRef.FullRescans)
						}
					}
				})
			}
		}
	}
}

// lazyFixture builds a graph plus a synthetic modular base heuristic for
// exercising the queue deterministically: terminals beyond the 3-pin net
// contribute a fixed per-node saving, so stale gains are exact upper bounds
// (no violations) and every admission/skip decision is hand-checkable.
// Nodes 3..6 save 5,4,3,2; nodes 7..14 save nothing.
func lazyFixture() (*graph.Graph, []graph.NodeID, []graph.NodeID, steiner.Heuristic) {
	rng := rand.New(rand.NewSource(1))
	g := graph.RandomConnected(rng, 20, 60, 5)
	net := []graph.NodeID{0, 1, 2}
	cands := make([]graph.NodeID, 0, 12)
	for v := graph.NodeID(3); v <= 14; v++ {
		cands = append(cands, v)
	}
	saving := map[graph.NodeID]float64{3: 5, 4: 4, 5: 3, 6: 2}
	H := func(_ *graph.SPTCache, terms []graph.NodeID) (graph.Tree, error) {
		cost := 100.0
		for _, v := range terms {
			cost -= saving[v]
		}
		return graph.Tree{Cost: cost}, nil
	}
	return g, net, cands, H
}

// TestLazyScanSavesEvaluations walks the modular fixture through both
// admission modes and checks the hand-computed skip totals: the queue must
// stop burning evaluations on candidates whose stale gain cannot win.
func TestLazyScanSavesEvaluations(t *testing.T) {
	g, net, cands, H := lazyFixture()
	for _, tc := range []struct {
		batched   bool
		wantSaved int64
		wantHits  int64
	}{
		// Single-step: rounds evaluate 12,3,2,1,0 of {12,11,10,9,8}
		// candidates (the 8 zero-gain nodes are pruned from round 2 on,
		// then the rising threshold prunes below the round max).
		{batched: false, wantSaved: 32, wantHits: 4},
		// Batched admission never arms the queue (stale bounds cannot
		// soundly prune a full improving-candidate ranking), so the lazy
		// counters must stay zero and the runs be exhaustively equal.
		{batched: true, wantSaved: 0, wantHits: 0},
	} {
		t.Run(fmt.Sprintf("batched=%v", tc.batched), func(t *testing.T) {
			run := func(lazy bool) (graph.Tree, Stats) {
				cache := graph.NewSPTCache(g)
				defer cache.Release()
				tree, st, err := IGMSTStats(cache, net, H, Options{Candidates: cands, Batched: tc.batched, Workers: 1, Lazy: lazy})
				if err != nil {
					t.Fatal(err)
				}
				return tree, st
			}
			refTree, refStats := run(false)
			tree, st := run(true)
			if !reflect.DeepEqual(tree, refTree) {
				t.Fatalf("lazy tree %+v, exhaustive %+v", tree, refTree)
			}
			if st.PointsChosen != 4 || refStats.PointsChosen != 4 {
				t.Fatalf("points chosen lazy %d exhaustive %d, want 4", st.PointsChosen, refStats.PointsChosen)
			}
			if st.EvaluationsSaved != tc.wantSaved {
				t.Fatalf("EvaluationsSaved = %d, want %d", st.EvaluationsSaved, tc.wantSaved)
			}
			if st.LazyHits != tc.wantHits {
				t.Fatalf("LazyHits = %d, want %d", st.LazyHits, tc.wantHits)
			}
			if st.FullRescans != 0 {
				t.Fatalf("FullRescans = %d, want 0 (modular gains never violate)", st.FullRescans)
			}
			if st.Evaluations+st.EvaluationsSaved != refStats.Evaluations {
				t.Fatalf("identity: %d + %d != %d", st.Evaluations, st.EvaluationsSaved, refStats.Evaluations)
			}
		})
	}
}

// TestLazyScanViolationFallback forces a supermodular gain — admitting one
// candidate makes the other strictly MORE valuable — and checks that the
// queue detects the stale-bound violation, falls back to a full rescan, and
// still ends bit-identical to the exhaustive scan. Costs: base 10; +node3
// saves 1; +node4 saves 1.5; both together cost 5 (node3's gain jumps from
// 1 to 3.5 once node4 is in, exceeding its stale bound). Single-step only:
// batched admission never arms the queue.
func TestLazyScanViolationFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomConnected(rng, 10, 30, 5)
	net := []graph.NodeID{0, 1, 2}
	cands := []graph.NodeID{3, 4}
	cost := func(has3, has4 bool) float64 {
		switch {
		case has3 && has4:
			return 5
		case has3:
			return 9
		case has4:
			return 8.5
		}
		return 10
	}
	H := func(_ *graph.SPTCache, terms []graph.NodeID) (graph.Tree, error) {
		var has3, has4 bool
		for _, v := range terms {
			has3 = has3 || v == 3
			has4 = has4 || v == 4
		}
		return graph.Tree{Cost: cost(has3, has4)}, nil
	}
	run := func(lazy bool) (graph.Tree, Stats) {
		cache := graph.NewSPTCache(g)
		defer cache.Release()
		tree, st, err := IGMSTStats(cache, net, H, Options{Candidates: cands, Workers: 1, Lazy: lazy})
		if err != nil {
			t.Fatal(err)
		}
		return tree, st
	}
	refTree, refStats := run(false)
	tree, st := run(true)
	if !reflect.DeepEqual(tree, refTree) {
		t.Fatalf("lazy tree %+v, exhaustive %+v", tree, refTree)
	}
	if tree.Cost != 5 {
		t.Fatalf("final cost %v, want 5 (both points admitted)", tree.Cost)
	}
	if st.FullRescans == 0 {
		t.Fatal("violation was not detected: FullRescans = 0")
	}
	if st.Evaluations+st.EvaluationsSaved != refStats.Evaluations {
		t.Fatalf("identity: %d + %d != %d", st.Evaluations, st.EvaluationsSaved, refStats.Evaluations)
	}
}

// TestLazyScanForkAccounting runs a lazy parallel scan and checks the
// SPTCache.Fork release accounting: the scanner's worker forks each check a
// scratch out of the process pool, the lazy bursts evaluate through those
// forks, and when the construction returns every scratch must be checked
// back in — graph.LiveScratches is the leak detector.
func TestLazyScanForkAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.RandomConnected(rng, 80, 400, 10)
	net := graph.RandomNet(rng, g, 6)
	before := graph.LiveScratches()
	for i := 0; i < 3; i++ {
		cache := graph.NewSPTCache(g)
		if _, _, err := IGMSTStats(cache, net, steiner.KMB, Options{Workers: 8, Lazy: true}); err != nil {
			t.Fatal(err)
		}
		cache.Release()
	}
	if after := graph.LiveScratches(); after != before {
		t.Fatalf("scratches leaked across lazy parallel scans: %d live before, %d after", before, after)
	}
}
