package core

import (
	"math"
	"sort"

	"fpgarouter/internal/graph"
)

// lazyBurst is how many queue entries a lazy round re-evaluates per batch.
// It is a fixed constant — NOT derived from Options.Workers — so the set of
// candidates a round evaluates (and with it the queue state, the violation
// checks, and every Stats counter) is identical at every worker setting;
// Workers only changes how a burst's evaluations are sharded over forks.
// Eight matches maxScanWorkers, keeping the default fan-out saturated.
const lazyBurst = 8

// unknownGain marks a candidate whose gain under the current solution has
// never been observed (or whose last evaluation errored). Unknown sorts
// above every finite priority, so such candidates are always re-evaluated —
// exactly what the exhaustive scan does for them.
var unknownGain = math.Inf(1)

// lazyQueue is the lazy-greedy ("CELF"-style) candidate-scan engine for
// single-step admission: a max-priority queue of candidates keyed by their
// last-known gain. Under diminishing returns — admitting a Steiner point
// never makes another candidate more valuable — a stale gain is an upper
// bound on the fresh one, so a round only needs to re-evaluate queue
// entries from the top until the best fresh gain seen dominates the next
// stale bound; everything below cannot win the round's fold, and entries
// at or below gainEps cannot even participate.
//
// Exactness contract. ΔH under an arbitrary base heuristic is not provably
// submodular, so the engine never trusts the bounds blindly: every fresh
// evaluation is compared against its stale value, and a fresh gain that
// exceeds it triggers a full exhaustive rescan of the round (rebuilding
// every priority). That fallback makes the scan bit-identical to the
// exhaustive template whenever stale gains really are upper bounds —
// which the Lazy parity suites assert across heuristics, worker counts,
// and whole routed circuits — but it is inherently incomplete: a
// supermodular jump in a candidate the round never re-evaluates (its
// stale bound keeps it buried below the cut) is unobservable without
// evaluating it, which is exactly the work being saved. On
// congestion-weighted routing graphs such jumps do occur (admitting a
// Steiner point can unlock a shortcut through a previously useless
// neighbour), so a lazily routed circuit may admit different Steiner
// points than the exhaustive scan. What stays guaranteed unconditionally:
// every admission strictly improves the current solution (the template's
// cost-never-worse-than-H bound survives verbatim), and the evaluated
// set — hence the result and every counter — is a pure function of the
// queue state, independent of Options.Workers (see lazyBurst). DESIGN.md
// §5 works through why no black-box mechanism can close the gap: skipping
// an evaluation and knowing its value are the same information.
//
// The queue deliberately does NOT arm for batched admission. A batched
// round ranks and re-admits the ENTIRE improving-candidate set, so the
// only sound skip would be a candidate whose current gain is already
// known — and after any admission no stale gain is current. A skipped
// "non-improving" candidate that turned improving would silently change
// the ranking with no evaluated bound violation to trip the fallback, so
// laziness in batched mode cannot preserve bit-identity while saving
// anything. IGMSTStats therefore leaves batched rounds exhaustive.
//
// The queue itself is a slice re-sorted per round (gain descending, pool
// index ascending): rounds may consume most of it, candidate pools are
// ≤ 1024 in the router, and a deterministic total order is what keeps the
// burst contents — hence all counters — reproducible.
type lazyQueue struct {
	gain    []float64 // stale gain by pool index
	poolIdx map[graph.NodeID]int

	order []int      // round scratch: candidate pool indices, priority order
	out   []scanEval // round scratch: evaluated subset, pool order
	outIx []int      // pool index of each out entry (for the final sort)
}

// newLazyQueue sizes the engine for a candidate pool. All gains start
// unknown, so the first round evaluates everything — the priming scan the
// exhaustive template would also perform.
func newLazyQueue(pool []graph.NodeID) *lazyQueue {
	lz := &lazyQueue{
		gain:    make([]float64, len(pool)),
		poolIdx: make(map[graph.NodeID]int, len(pool)),
	}
	for i, t := range pool {
		lz.gain[i] = unknownGain
		lz.poolIdx[t] = i
	}
	return lz
}

// round produces the round's evaluations: a pool-ordered subset of the
// candidates such that the caller's selection fold over the subset picks
// the same winner as the fold over the full pool. Only the winner matters
// in single-step admission, so the queue is consumed top-down in bursts
// and the round stops as soon as the remaining stale bounds can neither
// beat the best fresh gain seen nor clear gainEps. bestCost is the cost of
// the current solution (gains are measured against it, exactly as the
// caller's fold does).
func (lz *lazyQueue) round(st *Stats, sc *scanner, bestCost float64, spanned []graph.NodeID, inNS map[graph.NodeID]bool, pool []graph.NodeID) []scanEval {
	lz.order = lz.order[:0]
	for i, t := range pool {
		if !inNS[t] {
			lz.order = append(lz.order, i)
		}
	}
	n := len(lz.order)
	order := lz.order
	sort.Slice(order, func(a, b int) bool {
		ga, gb := lz.gain[order[a]], lz.gain[order[b]]
		if ga != gb {
			return ga > gb
		}
		return order[a] < order[b]
	})
	lz.out = lz.out[:0]
	lz.outIx = lz.outIx[:0]
	maxFresh := 0.0
	evaluated := 0
	for pos := 0; pos < n; {
		// Entries at or below thr cannot win: their fresh gain is bounded
		// by a stale value that neither clears gainEps nor comes within
		// gainEps of the best fresh gain already in hand. order is sorted
		// descending, so the first such entry ends the round.
		thr := max(gainEps, maxFresh-gainEps)
		end := pos
		for end < n && end-pos < lazyBurst && lz.gain[order[end]] > thr {
			end++
		}
		if end == pos {
			break
		}
		sc.targets = sc.targets[:0]
		for _, i := range order[pos:end] {
			sc.targets = append(sc.targets, pool[i])
		}
		evals := sc.evaluate(st, spanned)
		evaluated += len(evals)
		for k, ev := range evals {
			i := order[pos+k]
			if ev.err != nil {
				lz.gain[i] = unknownGain
				lz.out = append(lz.out, ev)
				lz.outIx = append(lz.outIx, i)
				continue
			}
			g := bestCost - ev.sol.Cost
			if g > lz.gain[i] {
				// Stale bound violated: a skipped candidate's bound may be
				// just as wrong. Rescan the whole round exhaustively.
				return lz.fullRescan(st, sc, bestCost, spanned, inNS, pool, evaluated)
			}
			lz.gain[i] = g
			if g > maxFresh {
				maxFresh = g
			}
			lz.out = append(lz.out, ev)
			lz.outIx = append(lz.outIx, i)
		}
		pos = end
	}
	// Pool order for the caller's fold, so ties break exactly as in the
	// exhaustive scan. Insertion sort: bursts are short and come out nearly
	// sorted already.
	out, ix := lz.out, lz.outIx
	for i := 1; i < len(out); i++ {
		j := i
		for j > 0 && ix[j] < ix[j-1] {
			ix[j], ix[j-1] = ix[j-1], ix[j]
			out[j], out[j-1] = out[j-1], out[j]
			j--
		}
	}
	if skipped := n - evaluated; skipped > 0 {
		st.LazyHits++
		st.EvaluationsSaved += int64(skipped)
	}
	return out
}

// fullRescan is the exactness fallback: evaluate every candidate of the
// round exhaustively (the same pool-ordered scan the non-lazy template
// runs) and refresh every priority from the results — the queue then holds
// nothing stale. alreadyEvaluated is what the aborted lazy attempt spent
// before falling back; it is charged against EvaluationsSaved so the
// counter stays an honest net saving and the identity
// Evaluations + EvaluationsSaved == exhaustive Evaluations holds.
func (lz *lazyQueue) fullRescan(st *Stats, sc *scanner, bestCost float64, spanned []graph.NodeID, inNS map[graph.NodeID]bool, pool []graph.NodeID, alreadyEvaluated int) []scanEval {
	st.FullRescans++
	st.EvaluationsSaved -= int64(alreadyEvaluated)
	evals := sc.scan(st, spanned, inNS, pool)
	for _, ev := range evals {
		i := lz.poolIdx[ev.t]
		if ev.err != nil {
			lz.gain[i] = unknownGain
			continue
		}
		lz.gain[i] = bestCost - ev.sol.Cost
	}
	return evals
}
