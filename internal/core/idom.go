package core

import (
	"fpgarouter/internal/arbor"
	"fpgarouter/internal/graph"
)

// IDOM is the Iterated Dominance heuristic of Section 4.2: the iterated
// greedy template applied to the DOM spanning-arborescence construction.
// It repeatedly admits the Steiner candidate t maximizing
// ΔDOM(G, N, S∪{t}) > 0 and returns DOM(G, N∪S).
//
// The result is a Steiner arborescence: every source-sink path is a
// shortest path in G, with total wirelength reduced by the admitted Steiner
// points. The paper conjectures an O(log N) performance ratio, which is the
// best possible for the GSA problem unless NP has slightly superpolynomial
// deterministic algorithms (via the Set Cover hardness of Figure 14).
func IDOM(cache *graph.SPTCache, net []graph.NodeID) (graph.Tree, error) {
	return IDOMOpts(cache, net, Options{})
}

// IDOMOpts is IDOM with template options (candidate scoping, batching).
func IDOMOpts(cache *graph.SPTCache, net []graph.NodeID, opts Options) (graph.Tree, error) {
	return IGMST(cache, net, arbor.DOM, opts)
}

// IDOMStats is IDOM returning work statistics for the ablation benches.
func IDOMStats(cache *graph.SPTCache, net []graph.NodeID, opts Options) (graph.Tree, Stats, error) {
	return IGMSTStats(cache, net, arbor.DOM, opts)
}
