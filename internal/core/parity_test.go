package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"fpgarouter/internal/arbor"
	"fpgarouter/internal/graph"
	"fpgarouter/internal/steiner"
)

// TestParallelScanParity asserts the tentpole guarantee: IGMSTStats produces
// bit-identical trees and identical work counters at every Workers setting,
// for every base heuristic the router instantiates, in both admission modes.
// Run under -race this also proves the worker forks share no mutable state.
func TestParallelScanParity(t *testing.T) {
	bases := []struct {
		name string
		H    steiner.Heuristic
	}{
		{"kmb", steiner.KMB},
		{"sph", steiner.SPH},
		{"zel", steiner.ZEL},
		{"dom", arbor.DOM},
	}
	for _, seed := range []int64{3, 17} {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(rng, 80, 400, 10)
		net := graph.RandomNet(rng, g, 6)
		for _, base := range bases {
			for _, batched := range []bool{false, true} {
				t.Run(fmt.Sprintf("%s/seed%d/batched=%v", base.name, seed, batched), func(t *testing.T) {
					run := func(workers int) (graph.Tree, Stats) {
						cache := graph.NewSPTCache(g)
						defer cache.Release()
						tree, st, err := IGMSTStats(cache, net, base.H, Options{Batched: batched, Workers: workers})
						if err != nil {
							t.Fatalf("workers=%d: %v", workers, err)
						}
						return tree, st
					}
					refTree, refStats := run(1)
					for _, w := range []int{0, 2, 3, 5, 8} {
						tree, st := run(w)
						if !reflect.DeepEqual(tree, refTree) {
							t.Fatalf("workers=%d tree diverges from sequential:\n got %+v\nwant %+v", w, tree, refTree)
						}
						// Scan bookkeeping must match exactly; the parallel
						// timing/fan-out fields are the only allowed deltas.
						if st.Rounds != refStats.Rounds || st.Evaluations != refStats.Evaluations || st.PointsChosen != refStats.PointsChosen {
							t.Fatalf("workers=%d stats {%d %d %d}, sequential {%d %d %d}",
								w, st.Rounds, st.Evaluations, st.PointsChosen,
								refStats.Rounds, refStats.Evaluations, refStats.PointsChosen)
						}
					}
				})
			}
		}
	}
}

// TestScanWorkersResolution pins the Options.Workers contract: 0 is the
// parallel default, anything below 1 is the sequential oracle.
func TestScanWorkersResolution(t *testing.T) {
	if w := scanWorkers(Options{Workers: -3}); w != 1 {
		t.Fatalf("Workers=-3 resolved to %d, want 1", w)
	}
	if w := scanWorkers(Options{Workers: 1}); w != 1 {
		t.Fatalf("Workers=1 resolved to %d, want 1", w)
	}
	if w := scanWorkers(Options{Workers: 5}); w != 5 {
		t.Fatalf("Workers=5 resolved to %d, want 5", w)
	}
	if w := scanWorkers(Options{}); w < 1 || w > maxScanWorkers {
		t.Fatalf("Workers=0 resolved to %d, want 1..%d", w, maxScanWorkers)
	}
}

// TestWithTermNeverAliases pins the batched-admission aliasing fix: the
// terminal slice handed to H must not share backing storage with spanned.
func TestWithTermNeverAliases(t *testing.T) {
	spanned := make([]graph.NodeID, 3, 16) // spare capacity: the old footgun
	copy(spanned, []graph.NodeID{1, 2, 3})
	var buf []graph.NodeID
	terms := withTerm(&buf, spanned, 9)
	want := []graph.NodeID{1, 2, 3, 9}
	if !reflect.DeepEqual(terms, want) {
		t.Fatalf("terms = %v, want %v", terms, want)
	}
	terms[0] = 99
	if spanned[0] != 1 {
		t.Fatal("withTerm aliased spanned's backing array")
	}
	// Reuse must not grow: same buffer, new contents.
	terms2 := withTerm(&buf, spanned, 7)
	if &terms2[0] != &terms[0] {
		t.Fatal("withTerm reallocated a buffer with sufficient capacity")
	}
	if !reflect.DeepEqual(terms2, []graph.NodeID{1, 2, 3, 7}) {
		t.Fatalf("terms2 = %v", terms2)
	}
}
