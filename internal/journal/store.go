// The content-addressed blob store: JSON values filed under caller-chosen
// keys, written atomically (temp file + rename) so a crash never leaves a
// half-written blob where a complete one is expected. The service keys
// routing results by Key(mode, circuit, width, options) — the ROADMAP
// item 3 result cache and the idempotency key for duplicate submissions —
// and files pathfinder checkpoints under per-job keys.
package journal

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// Key hashes the given chunks into a hex content address. Chunks are
// length-prefixed before hashing so boundary shifts cannot collide
// ("ab","c" never hashes like "a","bc").
func Key(chunks ...[]byte) string {
	h := sha256.New()
	var lb [8]byte
	for _, c := range chunks {
		binary.LittleEndian.PutUint64(lb[:], uint64(len(c)))
		h.Write(lb[:])
		h.Write(c)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Store is a directory of JSON blobs, one file per key. Safe for
// concurrent use: writes are atomic renames, reads see either the old or
// the new complete blob.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) a blob store rooted at dir.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps a key to its blob file, rejecting anything that could escape
// the store directory.
func (s *Store) path(key string) (string, error) {
	if key == "" || strings.ContainsAny(key, "/\\") || strings.Contains(key, "..") {
		return "", fmt.Errorf("journal: store: invalid key %q", key)
	}
	return filepath.Join(s.dir, key+".json"), nil
}

// Put files v under key, atomically replacing any existing blob.
func (s *Store) Put(key string, v any) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("journal: store: encoding %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(s.dir, "put-*")
	if err != nil {
		return fmt.Errorf("journal: store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("journal: store: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		return fmt.Errorf("journal: store: %w", err)
	}
	return nil
}

// Get unmarshals the blob under key into v, reporting whether it exists.
func (s *Store) Get(key string, v any) (bool, error) {
	p, err := s.path(key)
	if err != nil {
		return false, err
	}
	data, err := os.ReadFile(p)
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("journal: store: %w", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return false, fmt.Errorf("journal: store: decoding %s: %w", key, err)
	}
	return true, nil
}

// Has reports whether a blob exists under key without reading it.
func (s *Store) Has(key string) bool {
	p, err := s.path(key)
	if err != nil {
		return false
	}
	_, err = os.Stat(p)
	return err == nil
}

// Delete removes the blob under key (no error if absent).
func (s *Store) Delete(key string) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("journal: store: %w", err)
	}
	return nil
}
