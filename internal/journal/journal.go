// Package journal is the durability layer of the routing service: an
// append-only, checksummed write-ahead log of job lifecycle events plus a
// content-addressed blob store for results and checkpoints (store.go).
//
// The log is a flat file of framed records:
//
//	record := length (uint32 LE) | crc32-IEEE(payload) (uint32 LE) | payload
//
// where payload is the JSON encoding of a Record. Appends are serialized,
// written in one Write call, and (by default) fsynced before Append
// returns, so a record that was acknowledged survives a crash. Replay
// scans the file front to back, verifying each frame's length and CRC; the
// first bad frame marks a torn tail — a crash mid-append — and everything
// before it is salvaged while the tail is truncated away. A record is
// therefore either fully in the log or not in it at all.
//
// Failure is degraded, not fatal: the first append that cannot be written
// or flushed (disk full, injected fault) flips the journal into a sticky
// read-only mode. Every later Append fails fast with ErrReadOnly, and the
// owning service keeps running purely in-memory — losing durability, never
// availability — surfacing the degradation through /readyz.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"fpgarouter/internal/faultpoint"
)

// Lifecycle events recorded per job. A job's journal history is
// submitted → [started → checkpointed* →] (done | failed | canceled);
// replay reduces the history to the job's last state.
const (
	EvSubmitted    = "submitted"
	EvStarted      = "started"
	EvCheckpointed = "checkpointed"
	EvDone         = "done"
	EvFailed       = "failed"
	EvCanceled     = "canceled"
)

// Record is one journal entry. Only the fields meaningful for the event
// are set: a submitted record carries the request and content key, a
// checkpointed record the iteration reached, terminal records the outcome.
type Record struct {
	// Event is one of the Ev* constants.
	Event string `json:"event"`
	// JobID identifies the job across its whole history.
	JobID string `json:"job_id"`
	// Time stamps when the event was appended.
	Time time.Time `json:"time"`
	// Key is the job's content address (submitted records), which doubles
	// as the result-store key and the idempotency key for duplicates.
	Key string `json:"key,omitempty"`
	// Request is the verbatim submission (submitted records), replayed
	// through the same validation path on recovery.
	Request json.RawMessage `json:"request,omitempty"`
	// Iteration is the pathfinder iteration a checkpoint covers.
	Iteration int `json:"iteration,omitempty"`
	// Width is the routed (or minimum) width of a done record.
	Width int `json:"width,omitempty"`
	// Attempts is the execution count recorded by terminal records.
	Attempts int `json:"attempts,omitempty"`
	// Error is the failure or cancellation message of terminal records.
	Error string `json:"error,omitempty"`
}

// ErrReadOnly reports that the journal degraded to read-only after a write
// or fsync failure and is dropping appends (the service keeps running
// in-memory). Matches errors.Is on every Append after the degradation.
var ErrReadOnly = errors.New("journal: read-only (degraded after write failure)")

// maxRecordLen bounds a frame's declared payload length; anything larger
// is treated as corruption rather than an allocation request.
const maxRecordLen = 64 << 20

// frameHeader is the fixed per-record overhead: length + CRC.
const frameHeader = 8

// Options tunes a journal. The zero value is the durable default.
type Options struct {
	// NoSync skips the per-append fsync (tests and benchmarks only — a
	// crash may then lose acknowledged records, though salvage still
	// guarantees a clean prefix).
	NoSync bool
}

// Journal is an open write-ahead log. Safe for concurrent Append.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	opts Options

	readOnly atomic.Bool
	degraded error // first write failure, guarded by mu

	appended atomic.Int64
}

// Replay summarizes what Open recovered from an existing log file.
type Replay struct {
	// Records holds every intact record in append order.
	Records []Record
	// SalvagedBytes counts torn-tail bytes truncated away (0 for a clean
	// log). The log stays usable either way.
	SalvagedBytes int64
}

// Open opens (creating if absent) the write-ahead log at path, replays
// every intact record, and salvages a torn tail by truncating it. The
// returned journal appends after the last good record.
func Open(path string, opts Options) (*Journal, *Replay, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	rep, good, err := scan(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if rep.SalvagedBytes > 0 {
		// A torn or corrupt tail: drop it so the next append starts a
		// clean frame instead of extending garbage.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	return &Journal{f: f, path: path, opts: opts}, rep, nil
}

// scan reads every intact frame of f from the start, returning the replay
// summary and the offset just past the last good record.
func scan(f *os.File) (*Replay, int64, error) {
	info, err := f.Stat()
	if err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	size := info.Size()
	rep := &Replay{}
	var off int64
	var hdr [frameHeader]byte
	for off+frameHeader <= size {
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			break
		}
		n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxRecordLen || off+frameHeader+n > size {
			break // torn or corrupt frame
		}
		payload := make([]byte, n)
		if _, err := f.ReadAt(payload, off+frameHeader); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != want {
			break // bit rot or a partially overwritten frame
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			break // framed but unparseable: treat as corruption, salvage before it
		}
		rep.Records = append(rep.Records, rec)
		off += frameHeader + n
	}
	rep.SalvagedBytes = size - off
	return rep, off, nil
}

// Append frames, writes and (unless Options.NoSync) fsyncs one record.
// The first failing append degrades the journal to read-only: the error is
// returned, and every subsequent Append fails fast with ErrReadOnly.
func (j *Journal) Append(rec Record) error {
	if j.readOnly.Load() {
		return ErrReadOnly
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encoding record: %w", err)
	}
	buf := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[frameHeader:], payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.readOnly.Load() {
		return ErrReadOnly
	}
	if err := faultpoint.Hit(faultpoint.JournalAppend); err != nil {
		return j.degrade(err)
	}
	if _, err := j.f.Write(buf); err != nil {
		return j.degrade(err)
	}
	if !j.opts.NoSync {
		if err := faultpoint.Hit(faultpoint.JournalFsync); err != nil {
			return j.degrade(err)
		}
		if err := j.f.Sync(); err != nil {
			return j.degrade(err)
		}
	}
	j.appended.Add(1)
	return nil
}

// degrade flips the journal read-only (sticky) and wraps the triggering
// error so callers match both it and ErrReadOnly. Called under mu.
func (j *Journal) degrade(err error) error {
	j.degraded = err
	j.readOnly.Store(true)
	return fmt.Errorf("%w: %w", ErrReadOnly, err)
}

// ReadOnly reports whether the journal degraded after a write failure.
func (j *Journal) ReadOnly() bool { return j.readOnly.Load() }

// DegradedCause returns the write failure that degraded the journal (nil
// while healthy).
func (j *Journal) DegradedCause() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.degraded
}

// Appended returns how many records this process appended successfully.
func (j *Journal) Appended() int64 { return j.appended.Load() }

// Path returns the log file's path.
func (j *Journal) Path() string { return j.path }

// Close closes the log file. Appends after Close fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	j.readOnly.Store(true)
	if j.degraded == nil {
		j.degraded = errors.New("journal: closed")
	}
	return err
}
