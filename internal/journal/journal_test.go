package journal

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fpgarouter/internal/faultpoint"
)

func openClean(t *testing.T, opts Options) (*Journal, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	j, rep, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 0 || rep.SalvagedBytes != 0 {
		t.Fatalf("fresh log replayed %d records, salvaged %d bytes", len(rep.Records), rep.SalvagedBytes)
	}
	t.Cleanup(func() { j.Close() })
	return j, path
}

func appendN(t *testing.T, j *Journal, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		rec := Record{Event: EvSubmitted, JobID: jobID(i), Time: time.Unix(int64(i), 0).UTC(), Key: "k"}
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
}

func jobID(i int) string { return "job-" + string(rune('a'+i)) }

// TestAppendReplayRoundTrip: every acknowledged record comes back on
// replay, in order, field for field.
func TestAppendReplayRoundTrip(t *testing.T) {
	j, path := openClean(t, Options{})
	want := []Record{
		{Event: EvSubmitted, JobID: "job-000001", Time: time.Unix(10, 0).UTC(), Key: "abc", Request: []byte(`{"mode":"route"}`)},
		{Event: EvStarted, JobID: "job-000001", Time: time.Unix(11, 0).UTC()},
		{Event: EvCheckpointed, JobID: "job-000001", Time: time.Unix(12, 0).UTC(), Iteration: 7},
		{Event: EvDone, JobID: "job-000001", Time: time.Unix(13, 0).UTC(), Width: 9, Attempts: 2},
	}
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if got := j.Appended(); got != int64(len(want)) {
		t.Fatalf("Appended() = %d, want %d", got, len(want))
	}
	j.Close()

	j2, rep, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rep.SalvagedBytes != 0 {
		t.Fatalf("clean log salvaged %d bytes", rep.SalvagedBytes)
	}
	if len(rep.Records) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(rep.Records), len(want))
	}
	for i, rec := range rep.Records {
		w := want[i]
		if rec.Event != w.Event || rec.JobID != w.JobID || !rec.Time.Equal(w.Time) ||
			rec.Key != w.Key || string(rec.Request) != string(w.Request) ||
			rec.Iteration != w.Iteration || rec.Width != w.Width || rec.Attempts != w.Attempts {
			t.Fatalf("record %d replayed as %+v, want %+v", i, rec, w)
		}
	}
}

// TestTornTailSalvage: a crash mid-append leaves a truncated final frame;
// replay must keep every complete record, truncate the torn bytes, and
// leave the log appendable.
func TestTornTailSalvage(t *testing.T) {
	for _, cut := range []int64{1, 5, 12} { // inside header, inside payload
		j, path := openClean(t, Options{})
		appendN(t, j, 3)
		j.Close()

		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		full := info.Size()
		// Append a fourth record, then tear it: keep only `cut` bytes of it.
		j2, _, err := Open(path, Options{})
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, j2, 1)
		j2.Close()
		if err := os.Truncate(path, full+cut); err != nil {
			t.Fatal(err)
		}

		j3, rep, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if len(rep.Records) != 3 {
			t.Fatalf("cut=%d: salvaged %d records, want 3", cut, len(rep.Records))
		}
		if rep.SalvagedBytes != cut {
			t.Fatalf("cut=%d: salvaged %d bytes, want %d", cut, rep.SalvagedBytes, cut)
		}
		// The log must be fully usable after salvage.
		appendN(t, j3, 1)
		j3.Close()
		_, rep2, err := Open(path, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep2.Records) != 4 || rep2.SalvagedBytes != 0 {
			t.Fatalf("cut=%d: post-salvage log replayed %d records (salvaged %d), want 4 clean",
				cut, len(rep2.Records), rep2.SalvagedBytes)
		}
	}
}

// TestCorruptRecordSalvage: a bit flip inside a record's payload fails its
// CRC; replay keeps everything before it and drops it and everything after
// (the log has no record boundaries to resync on).
func TestCorruptRecordSalvage(t *testing.T) {
	j, path := openClean(t, Options{})
	appendN(t, j, 1)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	firstEnd := info.Size()
	appendN(t, j, 2)
	j.Close()

	// Flip one payload byte of the second record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[firstEnd+frameHeader+2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, rep, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(rep.Records) != 1 {
		t.Fatalf("salvaged %d records, want 1 (corruption at record 2)", len(rep.Records))
	}
	if rep.SalvagedBytes == 0 {
		t.Fatal("corruption reported no salvaged bytes")
	}
}

// TestCorruptLengthSalvage: a frame declaring an absurd length is treated
// as corruption, not an allocation request.
func TestCorruptLengthSalvage(t *testing.T) {
	j, path := openClean(t, Options{})
	appendN(t, j, 2)
	j.Close()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var huge [4]byte
	binary.LittleEndian.PutUint32(huge[:], uint32(maxRecordLen+1))
	if _, err := f.WriteAt(huge[:], 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, rep, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 0 || rep.SalvagedBytes == 0 {
		t.Fatalf("corrupt length replayed %d records, salvaged %d bytes", len(rep.Records), rep.SalvagedBytes)
	}
}

// TestFaultJournalAppendDegradesReadOnly: an injected append failure (disk
// full) flips the journal read-only; the failing append reports the cause,
// later appends fail fast with ErrReadOnly, and already-acknowledged
// records replay intact.
func TestFaultJournalAppendDegradesReadOnly(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	j, path := openClean(t, Options{})
	appendN(t, j, 2)

	boom := errors.New("disk full")
	faultpoint.Arm(faultpoint.JournalAppend, faultpoint.Plan{Action: faultpoint.Error, Err: boom, Nth: 1})
	err := j.Append(Record{Event: EvStarted, JobID: "job-x", Time: time.Now()})
	if !errors.Is(err, ErrReadOnly) || !errors.Is(err, boom) {
		t.Fatalf("degrading append error = %v, want ErrReadOnly wrapping the cause", err)
	}
	if !j.ReadOnly() {
		t.Fatal("journal not read-only after append failure")
	}
	if cause := j.DegradedCause(); !errors.Is(cause, boom) {
		t.Fatalf("DegradedCause() = %v, want the injected fault", cause)
	}
	faultpoint.Reset()
	// Sticky: even with the fault gone, the journal stays read-only.
	if err := j.Append(Record{Event: EvDone, JobID: "job-x", Time: time.Now()}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("append after degradation = %v, want ErrReadOnly", err)
	}
	j.Close()

	_, rep, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 2 || rep.SalvagedBytes != 0 {
		t.Fatalf("degraded log replayed %d records (salvaged %d), want the 2 acknowledged ones",
			len(rep.Records), rep.SalvagedBytes)
	}
}

// TestFaultJournalFsyncDegradesReadOnly: same degradation when the fsync
// sealing a record fails rather than the write itself.
func TestFaultJournalFsyncDegradesReadOnly(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	j, _ := openClean(t, Options{})
	boom := errors.New("fsync: no space left on device")
	faultpoint.Arm(faultpoint.JournalFsync, faultpoint.Plan{Action: faultpoint.Error, Err: boom, Nth: 1})
	err := j.Append(Record{Event: EvSubmitted, JobID: "job-y", Time: time.Now()})
	if !errors.Is(err, ErrReadOnly) || !errors.Is(err, boom) {
		t.Fatalf("fsync-degraded append error = %v", err)
	}
	if !j.ReadOnly() {
		t.Fatal("journal not read-only after fsync failure")
	}
}

// TestStoreRoundTrip: blobs come back exactly, Has/Delete behave, and an
// overwrite replaces atomically.
func TestStoreRoundTrip(t *testing.T) {
	s, err := NewStore(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	type blob struct {
		A int     `json:"a"`
		B string  `json:"b"`
		C float64 `json:"c"`
	}
	key := Key([]byte("route"), []byte("busc"), []byte{9})
	if s.Has(key) {
		t.Fatal("Has on empty store")
	}
	var out blob
	if ok, err := s.Get(key, &out); err != nil || ok {
		t.Fatalf("Get on empty store: ok=%v err=%v", ok, err)
	}
	in := blob{A: 7, B: "x", C: 0.1 + 0.2} // a float that must round-trip exactly
	if err := s.Put(key, in); err != nil {
		t.Fatal(err)
	}
	if !s.Has(key) {
		t.Fatal("Has false after Put")
	}
	if ok, err := s.Get(key, &out); err != nil || !ok || out != in {
		t.Fatalf("Get = %+v (ok=%v err=%v), want %+v", out, ok, err, in)
	}
	in2 := blob{A: 8}
	if err := s.Put(key, in2); err != nil {
		t.Fatal(err)
	}
	if ok, _ := s.Get(key, &out); !ok || out != in2 {
		t.Fatalf("overwrite Get = %+v, want %+v", out, in2)
	}
	if err := s.Delete(key); err != nil {
		t.Fatal(err)
	}
	if s.Has(key) {
		t.Fatal("Has true after Delete")
	}
	if err := s.Delete(key); err != nil {
		t.Fatalf("double Delete: %v", err)
	}
}

// TestStoreRejectsTraversalKeys: keys cannot escape the store directory.
func TestStoreRejectsTraversalKeys(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "a/b", `a\b`, "..", "x..y"} {
		if err := s.Put(key, 1); err == nil {
			t.Fatalf("Put accepted key %q", key)
		}
	}
}

// TestKeyBoundaries: the length-prefixed hash distinguishes chunk
// boundaries and is deterministic.
func TestKeyBoundaries(t *testing.T) {
	if Key([]byte("ab"), []byte("c")) == Key([]byte("a"), []byte("bc")) {
		t.Fatal("chunk boundary collision")
	}
	if Key([]byte("x")) != Key([]byte("x")) {
		t.Fatal("Key not deterministic")
	}
}
