// Critical-net routing: on a congested routing graph, compare the paper's
// non-critical-net construction (IKMB, wirelength only) with its
// critical-net arborescences (PFA, IDOM — optimal source-sink pathlengths,
// wirelength second). This is the trade-off that motivates Section 4: as
// congestion forces detours, pure wirelength minimization lets critical
// paths grow, while the arborescences pin every path to its shortest
// possible length for a small wirelength premium.
//
//	go run ./examples/criticalnet
package main

import (
	"fmt"
	"math/rand"

	"fpgarouter/internal/arbor"
	"fpgarouter/internal/congest"
	"fpgarouter/internal/core"
	"fpgarouter/internal/graph"
)

func main() {
	rng := rand.New(rand.NewSource(3))

	for _, k := range []int{0, 10, 20} {
		// A 20×20 grid congested by k pre-routed nets (Table 1's levels).
		g, err := congest.NewCongestedGrid(rng, k)
		if err != nil {
			panic(err)
		}
		// An 8-pin "critical" net.
		net := graph.RandomNet(rng, g.Graph, 8)
		cache := graph.NewSPTCache(g.Graph)

		ikmb, err := core.IKMB(cache, net)
		if err != nil {
			panic(err)
		}
		pfa, err := arbor.PFA(cache, net)
		if err != nil {
			panic(err)
		}
		idom, err := core.IDOM(cache, net)
		if err != nil {
			panic(err)
		}

		// Verify the arborescence guarantee: every source-sink path in the
		// PFA/IDOM trees equals the shortest-path distance in the graph.
		for name, tree := range map[string]graph.Tree{"PFA": pfa, "IDOM": idom} {
			if err := arbor.VerifyArborescence(cache, tree, net); err != nil {
				panic(fmt.Sprintf("%s arborescence violated: %v", name, err))
			}
		}

		mp := func(t graph.Tree) float64 {
			return graph.MaxPathlength(g.Graph, t, net[0], net[1:])
		}
		fmt.Printf("congestion k=%-2d (mean edge weight %.2f):\n", k, g.MeanWeight())
		fmt.Printf("  IKMB: wire %6.2f  maxpath %6.2f   (wirelength-only)\n", ikmb.Cost, mp(ikmb))
		fmt.Printf("  PFA : wire %6.2f  maxpath %6.2f   (shortest paths guaranteed)\n", pfa.Cost, mp(pfa))
		fmt.Printf("  IDOM: wire %6.2f  maxpath %6.2f   (shortest paths guaranteed)\n\n", idom.Cost, mp(idom))
	}
}
