// Congestion sweep: a miniature Table 1 at user-controlled congestion
// levels, showing how the relative standing of the eight constructions
// shifts as pre-routed nets consume the cheap edges: the iterated Steiner
// trees keep their wirelength lead, while the arborescences' wirelength
// premium grows with congestion (exactly the trend of Table 1).
//
//	go run ./examples/congestion -levels 0,5,10,20,40 -nets 20
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"fpgarouter/internal/congest"
	"fpgarouter/internal/experiments"
	"fpgarouter/internal/graph"
	"fpgarouter/internal/steiner"
)

func main() {
	levels := flag.String("levels", "0,10,20,40", "comma-separated pre-routed net counts")
	nets := flag.Int("nets", 20, "test nets per level")
	pins := flag.Int("pins", 5, "pins per test net")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	algs := experiments.Table1Algorithms()
	fmt.Printf("%d-pin nets on 20x20 grids, %d nets per level\n\n", *pins, *nets)
	for _, tok := range strings.Split(*levels, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(*seed))
		sumWire := make([]float64, len(algs))
		sumPath := make([]float64, len(algs))
		meanW := 0.0
		for n := 0; n < *nets; n++ {
			g, err := congest.NewCongestedGrid(rng, k)
			if err != nil {
				panic(err)
			}
			meanW += g.MeanWeight()
			net := graph.RandomNet(rng, g.Graph, *pins)
			cache := graph.NewSPTCache(g.Graph)
			kmb, err := steiner.KMB(cache, net)
			if err != nil {
				panic(err)
			}
			opt := congest.OptimalMaxPathlength(g.Graph, net)
			for i, a := range algs {
				tree, err := a.Fn(cache, net)
				if err != nil {
					panic(err)
				}
				sumWire[i] += (tree.Cost/kmb.Cost - 1) * 100
				if opt > 0 {
					mp := graph.MaxPathlength(g.Graph, tree, net[0], net[1:])
					sumPath[i] += (mp/opt - 1) * 100
				}
			}
		}
		fmt.Printf("k=%d pre-routed nets (mean edge weight %.2f):\n", k, meanW/float64(*nets))
		fmt.Printf("  %-6s %12s %12s\n", "alg", "wire% (KMB)", "path% (OPT)")
		for i, a := range algs {
			fmt.Printf("  %-6s %12.2f %12.2f\n", a.Name, sumWire[i]/float64(*nets), sumPath[i]/float64(*nets))
		}
		fmt.Println()
	}
}
