// Quickstart: route a single multi-pin net on a weighted grid graph with
// every tree construction from the paper and compare wirelength against
// maximum source-sink pathlength.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"fpgarouter/internal/arbor"
	"fpgarouter/internal/core"
	"fpgarouter/internal/graph"
	"fpgarouter/internal/steiner"
)

func main() {
	// A 10×10 grid routing graph with unit edge weights. Node (x, y) has
	// ID y*10 + x.
	g := graph.NewGrid(10, 10, 1)

	// A 5-pin net: the first pin is the signal source, the rest are sinks.
	net := []graph.NodeID{
		g.Node(1, 1), // source
		g.Node(8, 2),
		g.Node(7, 7),
		g.Node(2, 8),
		g.Node(5, 5),
	}

	// All constructions share one shortest-paths cache per graph state.
	cache := graph.NewSPTCache(g.Graph)

	type construction struct {
		name string
		fn   func(*graph.SPTCache, []graph.NodeID) (graph.Tree, error)
	}
	constructions := []construction{
		{"KMB   (Steiner, 2x bound)", steiner.KMB},
		{"ZEL   (Steiner, 11/6 bound)", steiner.ZEL},
		{"IKMB  (iterated KMB)", core.IKMB},
		{"IZEL  (iterated ZEL)", core.IZEL},
		{"DJKA  (pruned Dijkstra)", arbor.DJKA},
		{"DOM   (dominance arborescence)", arbor.DOM},
		{"PFA   (path-folding arborescence)", arbor.PFA},
		{"IDOM  (iterated dominance)", core.IDOM},
	}

	fmt.Println("5-pin net on a 10x10 grid:")
	fmt.Printf("%-34s %10s %10s\n", "construction", "wirelength", "max path")
	for _, c := range constructions {
		tree, err := c.fn(cache, net)
		if err != nil {
			fmt.Printf("%-34s failed: %v\n", c.name, err)
			continue
		}
		maxPath := graph.MaxPathlength(g.Graph, tree, net[0], net[1:])
		fmt.Printf("%-34s %10.1f %10.1f\n", c.name, tree.Cost, maxPath)
	}

	// The exact Steiner optimum (Dreyfus–Wagner) for reference.
	opt, err := steiner.ExactCost(cache, net)
	if err == nil {
		fmt.Printf("%-34s %10.1f\n", "exact Steiner optimum", opt)
	}

	// Arborescences guarantee every source-sink path is shortest: the
	// best achievable max pathlength is the source's largest shortest-path
	// distance to a sink.
	spt := g.Dijkstra(net[0])
	best := 0.0
	for _, s := range net[1:] {
		if spt.Dist[s] > best {
			best = spt.Dist[s]
		}
	}
	fmt.Printf("%-34s %21.1f\n", "optimal max pathlength", best)
}
