// Place-and-route: the combined flow the paper points to ("our routing
// algorithms easily integrate into existing layout frameworks to yield
// combined place-and-route tools"). A deliberately scrambled placement is
// improved by simulated annealing on half-perimeter wirelength, then both
// placements are routed; better placement translates directly into lower
// routed wirelength and smaller feasible channel width.
//
//	go run ./examples/placeandroute
package main

import (
	"fmt"
	"math/rand"
	"time"

	"fpgarouter/internal/circuits"
	"fpgarouter/internal/place"
	"fpgarouter/internal/router"
)

func main() {
	spec := circuits.Spec{
		Name: "scrambled", Series: circuits.Series4000,
		Cols: 8, Rows: 8, Nets2_3: 40, Nets4_10: 12,
	}
	ckt, err := circuits.Synthesize(spec, 5)
	if err != nil {
		panic(err)
	}
	// Scramble the (locality-aware) synthesized placement to simulate an
	// unplaced design.
	rng := rand.New(rand.NewSource(42))
	perm := rng.Perm(spec.Cols * spec.Rows)
	bad := &circuits.Circuit{Spec: ckt.Spec}
	for _, n := range ckt.Nets {
		nn := circuits.Net{ID: n.ID}
		for _, p := range n.Pins {
			pos := perm[p.Y*spec.Cols+p.X]
			q := p
			q.X, q.Y = pos%spec.Cols, pos/spec.Cols
			nn.Pins = append(nn.Pins, q)
		}
		bad.Nets = append(bad.Nets, nn)
	}

	start := time.Now()
	placed, st := place.Anneal(bad, 1, place.Options{})
	fmt.Printf("annealing: HPWL %.0f -> %.0f (%d/%d moves accepted, %v)\n",
		st.InitialHPWL, st.FinalHPWL, st.Accepted, st.Moves, time.Since(start).Round(time.Millisecond))

	for _, tc := range []struct {
		name string
		c    *circuits.Circuit
	}{{"scrambled", bad}, {"annealed", placed}} {
		w, res, err := router.MinWidth(tc.c, 8, router.Options{MaxPasses: 8})
		if err != nil {
			fmt.Printf("%-10s: %v\n", tc.name, err)
			continue
		}
		fmt.Printf("%-10s: min channel width %2d, routed wirelength %.0f\n",
			tc.name, w, res.Wirelength)
	}
}
