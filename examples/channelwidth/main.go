// Channel-width minimization: synthesize the paper's busc benchmark (a
// 12×13 Xilinx-3000-style FPGA with 151 nets), search for the minimum
// channel width the IKMB router needs, and print the channel-utilization
// map of the winning solution — the end-to-end flow behind Table 2.
//
//	go run ./examples/channelwidth
package main

import (
	"fmt"
	"time"

	"fpgarouter/internal/circuits"
	"fpgarouter/internal/render"
	"fpgarouter/internal/router"
)

func main() {
	spec, _ := circuits.SpecByName("busc")
	ckt, err := circuits.Synthesize(spec, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("busc: %d nets on a %dx%d array (published: CGE needs width %d, the paper's router %d)\n",
		len(ckt.Nets), spec.Cols, spec.Rows, spec.CGE, spec.PaperIKMB)

	start := time.Now()
	w, res, err := router.MinWidth(ckt, spec.PaperIKMB, router.Options{
		Algorithm: router.AlgIKMB,
		MaxPasses: 12,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("minimum channel width: %d (found in %v; %d pass(es) at that width)\n",
		w, time.Since(start).Round(time.Millisecond), res.Passes)
	fmt.Printf("total wirelength %.1f, max span utilization %d/%d\n\n",
		res.Wirelength, res.MaxUtil, w)

	// Re-route at the minimum width to obtain the committed fabric, then
	// render the utilization map (Figure 16 in the paper shows the routed
	// solution for this same circuit).
	_, fab, err := router.RouteWithFabric(ckt, w, router.Options{MaxPasses: 12})
	if err != nil {
		panic(err)
	}
	fmt.Print(render.UtilizationASCII(fab))
}
