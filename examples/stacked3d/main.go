// Three-dimensional FPGA routing: the extension the paper's conclusion
// points to. A tall 2D array is accordion-folded into a stack of layers
// joined by vias; nets that spanned the array vertically become short
// via hops, cutting total interconnect — while the routing algorithms
// themselves are unchanged, because they only ever see a weighted graph.
//
//	go run ./examples/stacked3d
package main

import (
	"fmt"

	"fpgarouter/internal/circuits"
	"fpgarouter/internal/fpga"
	"fpgarouter/internal/fpga3d"
)

func main() {
	// A hand-built netlist on a 8×16 array: half the nets span the full
	// column height (clock/control-like), half are local.
	ckt := &circuits.Circuit{Spec: circuits.Spec{
		Name: "stackdemo", Series: circuits.Series4000, Cols: 8, Rows: 16,
	}}
	id := 0
	addNet := func(pins ...fpga.Pin) {
		ckt.Nets = append(ckt.Nets, circuits.Net{ID: id, Pins: pins})
		id++
	}
	for x := 0; x < 8; x++ {
		addNet(
			fpga.Pin{X: x, Y: 0, Side: fpga.North},
			fpga.Pin{X: x, Y: 7, Side: fpga.South},
			fpga.Pin{X: x, Y: 15, Side: fpga.South, Index: 1},
		)
	}
	for y := 0; y < 15; y += 2 {
		addNet(
			fpga.Pin{X: 2, Y: y, Side: fpga.East},
			fpga.Pin{X: 3, Y: y, Side: fpga.West},
		)
	}

	for _, layers := range []int{1, 2, 4} {
		arch, nets, err := fpga3d.FoldPlacement(ckt, layers)
		if err != nil {
			panic(err)
		}
		arch.W = 16
		arch.Fc = arch.W
		fab, err := fpga3d.NewFabric3D(arch)
		if err != nil {
			panic(err)
		}
		wl, err := fab.RouteAll(nets)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%d layer(s): array %dx%d per layer, total wirelength %.1f\n",
			layers, arch.Cols, arch.Rows, wl)
	}
	fmt.Println("\nstacking shortens the column-spanning nets; the local nets are unaffected.")
}
